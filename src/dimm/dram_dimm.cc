#include "src/dimm/dram_dimm.h"

#include "src/common/check.h"

namespace pmemsim {

DramDimm::DramDimm(const DramConfig& config, Counters* counters)
    : config_(config), counters_(counters), ports_(config.ports, config.port_service) {
  PMEMSIM_CHECK(counters_ != nullptr);
}

void DramDimm::ReadInto(Addr addr, Cycles now, bool ordered, AccessRecord* out) {
  const Addr line = CacheLineBase(addr);
  counters_->dram_read_bytes += kCacheLineSize;

  Cycles start = now;
  if (const Cycles* pending = pending_visible_.Find(line)) {
    Cycles visible = *pending;
    if (!ordered && visible > now) {
      visible =
          visible > config_.unordered_read_overlap ? visible - config_.unordered_read_overlap : 0;
    }
    if (visible > now) {
      out->stalled_for = visible - now;
      counters_->rap_stall_cycles += out->stalled_for;
      ++counters_->rap_stalled_loads;
      start = visible;
    }
    if (*pending <= now) {
      pending_visible_.Erase(line);
    }
  }
  out->complete_at = ports_.Schedule(start, config_.load_latency);
  out->mem.rap_stall = out->stalled_for;
  out->mem.dram = out->complete_at - start;
}

DimmReadResult DramDimm::Read(Addr addr, Cycles now, bool ordered) {
  AccessRecord rec;
  ReadInto(addr, now, ordered, &rec);
  DimmReadResult result;
  result.complete_at = rec.complete_at;
  result.stalled_for = rec.stalled_for;
  result.stages = rec.mem;
  return result;
}

DimmWriteResult DramDimm::Write(Addr addr, Cycles now) {
  const Addr line = CacheLineBase(addr);
  counters_->dram_write_bytes += kCacheLineSize;
  const Cycles visible_at = now + config_.write_visible_delay;
  pending_visible_[line] = visible_at;
  MaybeSweep(now);
  return {visible_at, 0};
}

void DramDimm::MaybeSweep(Cycles now) {
  if (pending_visible_.size() < 65536) {
    return;
  }
  pending_visible_.EraseIf([now](Addr, Cycles visible) { return visible <= now; });
}

void DramDimm::Reset() {
  ports_.Reset();
  pending_visible_.Clear();
}

}  // namespace pmemsim
