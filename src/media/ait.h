// Address Indirection Table (AIT) translation cache.
//
// Optane DIMMs translate DIMM-physical addresses to media addresses through an
// on-media AIT; a small on-controller cache holds hot translations. The paper
// (§3.6, following LENS/MICRO'20) attributes the sharp read-latency increase
// beyond ~16 MB working sets partly to this cache overflowing. We model it as
// an LRU cache of 4 KB translation entries with a fixed coverage.

#ifndef SRC_MEDIA_AIT_H_
#define SRC_MEDIA_AIT_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "src/common/types.h"
#include "src/trace/counters.h"

namespace pmemsim {

class Ait {
 public:
  // `coverage_bytes` of media are translatable without a miss;
  // `miss_penalty` cycles are charged per miss. Entries cover 4 KB each.
  Ait(uint64_t coverage_bytes, Cycles miss_penalty, Counters* counters);

  // Translates the page containing `addr`. Returns the cycle cost (0 on hit).
  Cycles Access(Addr addr);

  // Test hooks.
  size_t entry_count() const { return map_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  using LruList = std::list<Addr>;

  void Touch(Addr page);

  size_t capacity_;
  Cycles miss_penalty_;
  Counters* counters_;

  LruList lru_;  // front = most recent
  std::unordered_map<Addr, LruList::iterator> map_;
};

}  // namespace pmemsim

#endif  // SRC_MEDIA_AIT_H_
