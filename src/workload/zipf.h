// Zipfian distribution generator (Gray et al. / YCSB-style) with rejection-
// free inverse-CDF sampling over a precomputed harmonic table for small N and
// the Jim Gray approximation for large N.

#ifndef SRC_WORKLOAD_ZIPF_H_
#define SRC_WORKLOAD_ZIPF_H_

#include <cstdint>

#include "src/common/random.h"

namespace pmemsim {

class ZipfGenerator {
 public:
  // Items in [0, n); `theta` is the skew (0.99 = YCSB default).
  ZipfGenerator(uint64_t n, double theta, uint64_t seed);

  uint64_t Next();

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double threshold1_;
  double threshold2_;
  Rng rng_;
};

}  // namespace pmemsim

#endif  // SRC_WORKLOAD_ZIPF_H_
