// Tests for the speculative helper-thread prefetcher beyond the integration
// coverage: SMT scaling lifecycle, skip-ahead when the helper falls behind,
// and the end-to-end effect on a CCEH worker.

#include <gtest/gtest.h>

#include "src/core/platform.h"
#include "src/cpu/scheduler.h"
#include "src/datastores/cceh.h"
#include "src/prefetch/helper_thread.h"
#include "src/workload/ycsb.h"

namespace pmemsim {
namespace {

TEST(HelperThreadTest, SmtScaleAppliedWhileActiveAndRestored) {
  auto system = MakeG1System(1);
  ThreadContext& worker = system->CreateThread();
  ThreadContext& helper = system->CreateThread();
  size_t n = 0;
  SpeculativeHelperPair pair(
      &worker, &helper, 5, [&](ThreadContext& c, size_t) { c.AddCompute(10); ++n; },
      [](ThreadContext& c, size_t) { c.AddCompute(1); }, HelperConfig{2, 1.5});
  EXPECT_DOUBLE_EQ(worker.smt_scale(), 1.5);
  EXPECT_DOUBLE_EQ(helper.smt_scale(), 1.5);
  std::vector<SimJob> jobs;
  pair.AppendJobs(jobs);
  Scheduler::Run(jobs);
  EXPECT_EQ(n, 5u);
  EXPECT_DOUBLE_EQ(worker.smt_scale(), 1.0);  // restored at completion
  EXPECT_DOUBLE_EQ(helper.smt_scale(), 1.0);
}

TEST(HelperThreadTest, HelperSkipsAheadWhenBehind) {
  auto system = MakeG1System(1);
  ThreadContext& worker = system->CreateThread();
  ThreadContext& helper = system->CreateThread();
  std::vector<size_t> prefetched;
  // Helper far slower than the worker: it must skip stale indices rather
  // than prefetch keys the worker already passed.
  SpeculativeHelperPair pair(
      &worker, &helper, 50, [](ThreadContext& c, size_t) { c.AddCompute(10); },
      [&](ThreadContext& c, size_t i) {
        c.AddCompute(500);
        prefetched.push_back(i);
      },
      HelperConfig{4, 1.0});
  std::vector<SimJob> jobs;
  pair.AppendJobs(jobs);
  Scheduler::Run(jobs);
  for (size_t i = 1; i < prefetched.size(); ++i) {
    EXPECT_GT(prefetched[i], prefetched[i - 1]);  // strictly forward
  }
  EXPECT_LT(prefetched.size(), 50u);  // it skipped
}

TEST(HelperThreadTest, PrefetchingWarmsWorkerReads) {
  // End-to-end: with a helper replaying the CCEH probe path, the worker's
  // demand misses to memory drop substantially.
  auto run = [](bool with_helper) {
    PlatformConfig cfg = G1Platform();
    cfg.cache.l3.size_bytes = MiB(3);
    cfg.cache.l3.ways = 12;
    auto system = std::make_unique<System>(cfg, 1);
    ThreadContext& init = system->CreateThread();
    Cceh table(system.get(), init, 6, MemoryKind::kOptane);
    const auto keys = MakeLoadKeys(60000, 5);
    ThreadContext& worker = system->CreateThread();
    std::vector<SimJob> jobs;
    size_t cursor = 0;
    std::unique_ptr<SpeculativeHelperPair> pair;
    if (with_helper) {
      ThreadContext& helper = system->CreateThread();
      pair = std::make_unique<SpeculativeHelperPair>(
          &worker, &helper, keys.size(),
          [&](ThreadContext& c, size_t i) { table.Insert(c, keys[i], 1); },
          [&](ThreadContext& c, size_t i) { table.PrefetchProbePath(c, keys[i]); },
          HelperConfig{8, 1.3});
      pair->AppendJobs(jobs);
    } else {
      jobs.push_back({&worker, [&]() {
                        if (cursor >= keys.size()) {
                          return StepResult::kDone;
                        }
                        table.Insert(worker, keys[cursor++], 1);
                        return StepResult::kProgress;
                      }});
    }
    Scheduler::Run(jobs);
    return worker.clock();
  };
  const Cycles baseline = run(false);
  const Cycles with_helper = run(true);
  EXPECT_LT(with_helper, baseline);
}

}  // namespace
}  // namespace pmemsim
