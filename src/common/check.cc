#include "src/common/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>

namespace pmemsim {

namespace {
// Per-thread capture depth: sweep-runner workers enable capture around each
// point; everything else keeps the abort-on-failure contract.
thread_local int g_capture_depth = 0;
// Process-wide unwind hook (atomic: Enable may race sweep workers failing).
std::atomic<void (*)()> g_unwind_hook{nullptr};
// Additive hook table for RegisterCaptureUnwindHook. CAS-appended, never
// cleared; hooks are trampolines that consult their own (clearable) state.
constexpr int kMaxUnwindHooks = 4;
std::atomic<void (*)()> g_unwind_hooks[kMaxUnwindHooks]{};

void RunUnwindHook() {
  if (void (*hook)() = g_unwind_hook.load(std::memory_order_acquire)) {
    hook();
  }
  for (auto& slot : g_unwind_hooks) {
    if (void (*hook)() = slot.load(std::memory_order_acquire)) {
      hook();
    }
  }
}
}  // namespace

ScopedCheckCapture::ScopedCheckCapture() : uncaught_(std::uncaught_exceptions()) {
  ++g_capture_depth;
}

ScopedCheckCapture::~ScopedCheckCapture() {
  --g_capture_depth;
  // Unwinding from a failure inside the scope: give buffered debug sinks
  // (the trace emitter) a chance to persist before the catch discards state.
  if (std::uncaught_exceptions() > uncaught_) {
    RunUnwindHook();
  }
}

void SetCaptureUnwindHook(void (*hook)()) {
  g_unwind_hook.store(hook, std::memory_order_release);
}

bool RegisterCaptureUnwindHook(void (*hook)()) {
  for (auto& slot : g_unwind_hooks) {
    void (*cur)() = slot.load(std::memory_order_acquire);
    if (cur == hook) {
      return true;  // idempotent: tools register once per process, lazily
    }
    if (cur == nullptr) {
      void (*expected)() = nullptr;
      if (slot.compare_exchange_strong(expected, hook, std::memory_order_acq_rel)) {
        return true;
      }
      if (expected == hook) {
        return true;  // lost the race to ourselves on another thread
      }
    }
  }
  return false;
}

namespace internal {

void CheckFailed(const char* file, int line, const char* cond, const char* msg) {
  char buf[512];
  if (msg != nullptr) {
    std::snprintf(buf, sizeof(buf), "CHECK failed at %s:%d: %s (%s)", file, line, cond, msg);
  } else {
    std::snprintf(buf, sizeof(buf), "CHECK failed at %s:%d: %s", file, line, cond);
  }
  std::fprintf(stderr, "%s\n", buf);
  if (g_capture_depth > 0) {
    throw CheckFailure(buf);
  }
  RunUnwindHook();  // the process is going down: last chance to flush
  std::abort();
}

}  // namespace internal
}  // namespace pmemsim
