# Empty compiler generated dependencies file for fig02_read_buffer.
# This may be replaced when dependencies are built.
