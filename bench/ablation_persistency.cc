// Ablation: the persistency-model spectrum (paper §3.6 discussion of strict
// vs relaxed, and the epoch/strand models of Pelley et al. it cites).
//
// Sweeps the epoch length for the Fig. 8 element-update workload: epoch = 1
// is strict persistency, epoch = WSS is the paper's relaxed model. The paper's
// takeaway — reducing persists to the same XPLine matters more than reducing
// the number of XPLines persisted, and all models converge once the media is
// the bottleneck — shows up as the curves collapsing at large WSS.
//
// Output: CSV  wss_kb,epoch_len,cycles_per_element

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/sweep_runner.h"
#include "src/core/platform.h"
#include "src/datastores/chase_list.h"

namespace {

using namespace pmemsim;

double Measure(uint64_t wss, uint64_t epoch_len) {
  auto system = MakeG1System(1);
  ThreadContext& ctx = system->CreateThread();
  const PmRegion region = system->AllocatePm(wss, kXPLineSize);
  ChaseList list(system.get(), region, /*sequential=*/false, 0xE9);
  const Persistency model = epoch_len == 1 ? Persistency::kStrict : Persistency::kEpoch;
  list.TraverseUpdate(ctx, 4000, PersistMode::kClwbSfence, model, epoch_len);
  const Cycles t = list.TraverseUpdate(ctx, 8000, PersistMode::kClwbSfence, model, epoch_len);
  return static_cast<double>(t) / 8000.0;
}

}  // namespace

int main(int argc, char** argv) {
  pmemsim_bench::Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::printf("usage: ablation_persistency\n%s", pmemsim_bench::kTelemetryFlagsHelp);
    return 0;
  }
  pmemsim_bench::BenchReport report(flags, "ablation_persistency");
  pmemsim_bench::SweepRunner runner(flags);
  flags.RejectUnknown();
  pmemsim_bench::PrintHeader("Ablation", "persistency spectrum: strict -> epoch -> relaxed");
  std::printf("wss_kb,epoch_len,cycles_per_element\n");
  for (const uint64_t kb : {8ull, 64ull, 1024ull, 16384ull}) {
    for (const uint64_t epoch : {1ull, 4ull, 16ull, 64ull, 1024ull}) {
      const std::string label =
          std::to_string(kb) + "kb/epoch" + std::to_string(epoch);
      runner.Add(label, [=](pmemsim_bench::SweepPoint& point) {
        const double cycles = Measure(KiB(kb), epoch);
        point.Printf("%llu,%llu,%.1f\n", static_cast<unsigned long long>(kb),
                     static_cast<unsigned long long>(epoch), cycles);
        point.AddRow().Set("wss_kb", kb).Set("epoch_len", epoch).Set("cycles_per_element",
                                                                     cycles);
      });
    }
  }
  return runner.Finish(report);
}
