#include "src/buffers/write_buffer.h"

#include <algorithm>

#include "src/common/check.h"

namespace pmemsim {

WriteBuffer::WriteBuffer(const WriteBufferConfig& config, Counters* counters)
    : config_(config),
      counters_(counters),
      rng_(config.rng_seed),
      capacity_entries_(static_cast<size_t>(config.capacity_bytes / kXPLineSize)) {
  PMEMSIM_CHECK(counters_ != nullptr);
  PMEMSIM_CHECK(capacity_entries_ > 0);
  PMEMSIM_CHECK(config.partial_reserve_entries < capacity_entries_);
  partial_capacity_ = capacity_entries_ - config.partial_reserve_entries;
}

size_t WriteBuffer::CountPartial() const {
  size_t n = 0;
  for (const auto& [addr, e] : map_) {
    if (IsPartial(e)) {
      ++n;
    }
  }
  return n;
}

bool WriteBuffer::Write(Addr line_addr, Cycles now, Cycles visible_at,
                        std::vector<WritebackRequest>& writebacks) {
  Tick(now, writebacks);
  const Addr xpline = XPLineBase(line_addr);
  const uint8_t bit = static_cast<uint8_t>(1u << LineIndexInXPLine(line_addr));

  auto it = map_.find(xpline);
  if (it != map_.end()) {
    Entry& e = it->second;
    e.dirty_mask |= bit;
    e.valid_mask |= bit;
    const uint64_t idx = LineIndexInXPLine(line_addr);
    e.visible_at[idx] = std::max(e.visible_at[idx], visible_at);
    e.clean = false;
    ++counters_->write_buffer_hits;
    return true;
  }

  ++counters_->write_buffer_misses;
  EnsureRoom(writebacks);
  Entry e;
  e.dirty_mask = bit;
  e.valid_mask = bit;
  e.visible_at[LineIndexInXPLine(line_addr)] = visible_at;
  map_.emplace(xpline, e);
  key_pos_[xpline] = keys_.size();
  keys_.push_back(xpline);
  return false;
}

void WriteBuffer::Tick(Cycles now, std::vector<WritebackRequest>& writebacks) {
  if (!config_.periodic_full_writeback ||
      now < last_periodic_tick_ + config_.full_writeback_period) {
    return;
  }
  last_periodic_tick_ = now;
  // Iterate keys_, not map_: unordered_map iteration order differs across
  // standard libraries, and the write-back order must be bit-for-bit
  // reproducible for the figure-regression gate.
  for (const Addr addr : keys_) {
    Entry& e = map_.find(addr)->second;
    if (e.dirty_mask == 0x0F) {
      writebacks.push_back({addr, /*needs_rmw=*/false, /*periodic=*/true});
      e.dirty_mask = 0;
      e.clean = true;
      ++counters_->periodic_writebacks;
    }
  }
}

bool WriteBuffer::HoldsLine(Addr line_addr) const {
  auto it = map_.find(XPLineBase(line_addr));
  if (it == map_.end()) {
    return false;
  }
  return (it->second.valid_mask >> LineIndexInXPLine(line_addr)) & 1u;
}

bool WriteBuffer::ContainsXPLine(Addr addr) const { return map_.count(XPLineBase(addr)) != 0; }

Cycles WriteBuffer::VisibleAt(Addr line_addr) const {
  auto it = map_.find(XPLineBase(line_addr));
  if (it == map_.end()) {
    return 0;
  }
  const Entry& e = it->second;
  const uint64_t idx = LineIndexInXPLine(line_addr);
  if (!(e.valid_mask & (1u << idx))) {
    return 0;
  }
  return e.visible_at[idx];
}

void WriteBuffer::InstallTransition(Addr line_addr, Cycles now, Cycles visible_at,
                                    std::vector<WritebackRequest>& writebacks) {
  Tick(now, writebacks);
  const Addr xpline = XPLineBase(line_addr);
  PMEMSIM_DCHECK(map_.find(xpline) == map_.end());
  EnsureRoom(writebacks);
  Entry e;
  e.dirty_mask = static_cast<uint8_t>(1u << LineIndexInXPLine(line_addr));
  e.valid_mask = 0x0F;  // the read buffer held the whole XPLine
  e.visible_at[LineIndexInXPLine(line_addr)] = visible_at;
  map_.emplace(xpline, e);
  key_pos_[xpline] = keys_.size();
  keys_.push_back(xpline);
  ++counters_->read_write_transitions;
  ++counters_->write_buffer_hits;  // the 64 B write itself did not miss
}

bool WriteBuffer::AbsorbFill(Addr addr) {
  auto it = map_.find(XPLineBase(addr));
  if (it == map_.end()) {
    return false;
  }
  it->second.valid_mask = 0x0F;
  return true;
}

void WriteBuffer::EnsureRoom(std::vector<WritebackRequest>& writebacks) {
  // Total-capacity constraint.
  while (map_.size() >= capacity_entries_) {
    EvictOne(writebacks);
  }
  // Partial-entry constraint (the G1 12 KB knee).
  size_t partial = CountPartial();
  if (partial < partial_capacity_) {
    return;
  }
  const size_t target =
      config_.batch_evict
          ? static_cast<size_t>(static_cast<double>(partial_capacity_) *
                                config_.batch_evict_keep_fraction)
          : partial_capacity_ - 1;
  while (partial > target) {
    // Evict a *partial* victim chosen by the configured policy.
    Addr victim = 0;
    bool found = false;
    if (config_.eviction == WriteBufferEviction::kOldest) {
      for (const Addr cand : keys_) {
        if (IsPartial(map_[cand])) {
          victim = cand;
          found = true;
          break;
        }
      }
    } else {
      for (int tries = 0; tries < 64 && !found; ++tries) {
        const Addr cand = keys_[rng_.NextBelow(keys_.size())];
        if (IsPartial(map_[cand])) {
          victim = cand;
          found = true;
        }
      }
    }
    if (!found) {
      // Fallback scan over keys_ (deterministic across stdlibs).
      for (const Addr cand : keys_) {
        if (IsPartial(map_.find(cand)->second)) {
          victim = cand;
          found = true;
          break;
        }
      }
    }
    PMEMSIM_CHECK(found);
    EvictVictim(victim, writebacks);
    --partial;
  }
}

Addr WriteBuffer::PickRandomishVictim() {
  if (config_.eviction == WriteBufferEviction::kOldest) {
    return keys_.front();  // insertion order survives until eviction swaps
  }
  return keys_[rng_.NextBelow(keys_.size())];
}

void WriteBuffer::EvictOne(std::vector<WritebackRequest>& writebacks) {
  PMEMSIM_CHECK(!keys_.empty());
  // Prefer a clean entry (free to drop); otherwise a policy victim. Scan
  // keys_ so the victim does not depend on the stdlib's unordered_map
  // iteration order.
  for (const Addr addr : keys_) {
    const Entry& e = map_.find(addr)->second;
    if (e.clean && e.dirty_mask == 0) {
      EvictVictim(addr, writebacks);
      return;
    }
  }
  EvictVictim(PickRandomishVictim(), writebacks);
}

void WriteBuffer::EvictVictim(Addr xpline, std::vector<WritebackRequest>& writebacks) {
  auto it = map_.find(xpline);
  PMEMSIM_CHECK(it != map_.end());
  const Entry& e = it->second;
  if (e.dirty_mask != 0) {
    // Partially dirty entries whose remaining lines are not held (valid_mask
    // short of full) must fetch the rest of the XPLine before programming.
    writebacks.push_back({xpline, /*needs_rmw=*/e.valid_mask != 0x0F, /*periodic=*/false});
    ++counters_->write_buffer_evictions;
  }
  const size_t pos = key_pos_[xpline];
  if (config_.eviction == WriteBufferEviction::kOldest) {
    // Preserve insertion order (n <= 64, the erase is cheap).
    keys_.erase(keys_.begin() + static_cast<ptrdiff_t>(pos));
    for (size_t i = pos; i < keys_.size(); ++i) {
      key_pos_[keys_[i]] = i;
    }
  } else {
    const Addr last = keys_.back();
    keys_[pos] = last;
    key_pos_[last] = pos;
    keys_.pop_back();
  }
  key_pos_.erase(xpline);
  map_.erase(it);
}

void WriteBuffer::DrainAll(std::vector<WritebackRequest>& writebacks) {
  // Drain in keys_ order, for reproducible write-back sequences.
  for (const Addr addr : keys_) {
    const Entry& e = map_.find(addr)->second;
    if (e.dirty_mask != 0) {
      writebacks.push_back({addr, e.valid_mask != 0x0F, false});
      ++counters_->write_buffer_evictions;
    }
  }
  Clear();
}

void WriteBuffer::Clear() {
  map_.clear();
  keys_.clear();
  key_pos_.clear();
}

}  // namespace pmemsim
