# Empty dependencies file for ablation_eadr.
# This may be replaced when dependencies are built.
