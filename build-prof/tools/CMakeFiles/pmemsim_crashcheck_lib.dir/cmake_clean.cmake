file(REMOVE_RECURSE
  "CMakeFiles/pmemsim_crashcheck_lib.dir/crashcheck_lib.cc.o"
  "CMakeFiles/pmemsim_crashcheck_lib.dir/crashcheck_lib.cc.o.d"
  "libpmemsim_crashcheck_lib.a"
  "libpmemsim_crashcheck_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemsim_crashcheck_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
