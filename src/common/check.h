// Lightweight invariant-checking macros.
//
// The simulator is deterministic; invariant violations are programming errors,
// so CHECK aborts with a message rather than throwing. DCHECK compiles away in
// release builds and is used on hot paths.
//
// Exception: harnesses that run many independent simulations in one process
// (the bench sweep runner) can scope a ScopedCheckCapture around each run;
// within that scope a failed CHECK on the same thread throws CheckFailure
// instead of aborting, so one bad sweep point cannot kill the whole sweep.

#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <stdexcept>
#include <string>

namespace pmemsim {

// Thrown for a failed CHECK while a ScopedCheckCapture is active on the
// failing thread. what() carries the file:line and condition text.
class CheckFailure : public std::runtime_error {
 public:
  explicit CheckFailure(const std::string& what) : std::runtime_error(what) {}
};

// While alive, failed CHECKs on the constructing thread throw CheckFailure
// (still printed to stderr) instead of aborting. Nestable.
class ScopedCheckCapture {
 public:
  ScopedCheckCapture();
  ~ScopedCheckCapture();
  ScopedCheckCapture(const ScopedCheckCapture&) = delete;
  ScopedCheckCapture& operator=(const ScopedCheckCapture&) = delete;

 private:
  // Uncaught-exception count at construction: a higher count at destruction
  // means this scope is unwinding from a failure (see SetCaptureUnwindHook).
  int uncaught_ = 0;
};

// Registers a process-wide hook (nullptr clears) invoked whenever invariant
// failure tears execution down: when a ScopedCheckCapture unwinds because an
// exception is propagating through it, and just before a non-captured CHECK
// failure aborts. Debug sinks holding buffered state use it to get that state
// onto disk before it is lost — the trace emitter flushes its event buffer so
// a failed sweep point's trace survives the failure-isolation catch (and a
// hard abort). Hooks must be safe to call multiple times.
void SetCaptureUnwindHook(void (*hook)());

// Additive registration for additional unwind hooks (the single
// SetCaptureUnwindHook slot stays owned by the trace emitter): appends `hook`
// to a small fixed table unless already present (idempotent). Returns false
// when the table is full. Registered hooks cannot be removed — register a
// trampoline that consults its own state rather than a state-owning function.
bool RegisterCaptureUnwindHook(void (*hook)());

namespace internal {
// Prints the failure, then throws CheckFailure (capture active) or aborts.
[[noreturn]] void CheckFailed(const char* file, int line, const char* cond, const char* msg);
}  // namespace internal

}  // namespace pmemsim

#define PMEMSIM_CHECK(cond)                                                \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::pmemsim::internal::CheckFailed(__FILE__, __LINE__, #cond, nullptr); \
    }                                                                      \
  } while (0)

#define PMEMSIM_CHECK_MSG(cond, msg)                                     \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::pmemsim::internal::CheckFailed(__FILE__, __LINE__, #cond, (msg)); \
    }                                                                    \
  } while (0)

#ifdef NDEBUG
#define PMEMSIM_DCHECK(cond) \
  do {                       \
  } while (0)
#else
#define PMEMSIM_DCHECK(cond) PMEMSIM_CHECK(cond)
#endif

#endif  // SRC_COMMON_CHECK_H_
