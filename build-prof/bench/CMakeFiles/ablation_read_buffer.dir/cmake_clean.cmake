file(REMOVE_RECURSE
  "CMakeFiles/ablation_read_buffer.dir/ablation_read_buffer.cc.o"
  "CMakeFiles/ablation_read_buffer.dir/ablation_read_buffer.cc.o.d"
  "ablation_read_buffer"
  "ablation_read_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_read_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
