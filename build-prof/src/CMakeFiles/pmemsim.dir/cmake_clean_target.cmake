file(REMOVE_RECURSE
  "libpmemsim.a"
)
