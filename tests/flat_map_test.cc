// Tests for the open-addressing FlatMap that carries the engine's per-access
// hot paths (write/read buffer indexes, AIT, DRAM pending-writes). The
// backward-shift erase is the subtle part, so it gets targeted chain tests
// plus a randomized mirror against std::unordered_map.

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/flat_map.h"
#include "src/common/random.h"
#include "src/common/types.h"

namespace pmemsim {
namespace {

TEST(FlatMapTest, EmptyFindsNothing) {
  FlatMap<Addr, uint32_t> m;
  EXPECT_EQ(m.size(), 0u);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.Find(0), nullptr);
  EXPECT_FALSE(m.Contains(42));
  EXPECT_FALSE(m.Erase(42));
}

TEST(FlatMapTest, InsertFindErase) {
  FlatMap<Addr, uint32_t> m;
  EXPECT_TRUE(m.Insert(256, 7));
  EXPECT_FALSE(m.Insert(256, 9));  // duplicate insert rejected, value kept
  ASSERT_NE(m.Find(256), nullptr);
  EXPECT_EQ(*m.Find(256), 7u);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.Erase(256));
  EXPECT_EQ(m.Find(256), nullptr);
  EXPECT_EQ(m.size(), 0u);
}

TEST(FlatMapTest, BracketDefaultConstructsAndUpdates) {
  FlatMap<Addr, uint64_t> m;
  EXPECT_EQ(m[100], 0u);  // default-constructed
  m[100] = 55;
  m[100] += 1;
  EXPECT_EQ(*m.Find(100), 56u);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMapTest, GrowthPreservesEntries) {
  FlatMap<Addr, uint32_t> m;
  for (uint32_t i = 0; i < 1000; ++i) {
    m[i * kXPLineSize] = i;
  }
  EXPECT_EQ(m.size(), 1000u);
  for (uint32_t i = 0; i < 1000; ++i) {
    ASSERT_NE(m.Find(i * kXPLineSize), nullptr) << i;
    EXPECT_EQ(*m.Find(i * kXPLineSize), i);
  }
}

TEST(FlatMapTest, EraseClosesProbeChains) {
  // Saturate well past several growths, then erase every other key; the
  // survivors must all remain reachable (backward-shift must close every
  // chain it cuts, including wrapped ones).
  FlatMap<Addr, uint32_t> m;
  const uint32_t n = 4096;
  for (uint32_t i = 0; i < n; ++i) {
    m[i * 64] = i;
  }
  for (uint32_t i = 0; i < n; i += 2) {
    EXPECT_TRUE(m.Erase(i * 64));
  }
  EXPECT_EQ(m.size(), n / 2);
  for (uint32_t i = 0; i < n; ++i) {
    if (i % 2 == 0) {
      EXPECT_EQ(m.Find(i * 64), nullptr) << i;
    } else {
      ASSERT_NE(m.Find(i * 64), nullptr) << i;
      EXPECT_EQ(*m.Find(i * 64), i);
    }
  }
}

TEST(FlatMapTest, ClearKeepsEntriesOut) {
  FlatMap<Addr, uint32_t> m;
  for (uint32_t i = 0; i < 100; ++i) {
    m[i] = i;
  }
  const size_t cap = m.capacity();
  m.Clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.capacity(), cap);  // allocation retained for refill
  EXPECT_EQ(m.Find(5), nullptr);
  m[5] = 50;
  EXPECT_EQ(*m.Find(5), 50u);
}

TEST(FlatMapTest, ReservePreventsGrowth) {
  FlatMap<Addr, uint32_t> m;
  m.Reserve(1000);
  const size_t cap = m.capacity();
  EXPECT_GE(cap * 3, 1000u * 4);  // room for 1000 at 3/4 load
  for (uint32_t i = 0; i < 1000; ++i) {
    m[i] = i;
  }
  EXPECT_EQ(m.capacity(), cap);
}

TEST(FlatMapTest, ForEachVisitsEveryEntryOnce) {
  FlatMap<Addr, uint32_t> m;
  for (uint32_t i = 0; i < 257; ++i) {
    m[i * 4096] = i;
  }
  std::vector<bool> seen(257, false);
  m.ForEach([&](Addr key, uint32_t value) {
    EXPECT_EQ(key, static_cast<Addr>(value) * 4096);
    EXPECT_FALSE(seen[value]);
    seen[value] = true;
  });
  for (uint32_t i = 0; i < 257; ++i) {
    EXPECT_TRUE(seen[i]) << i;
  }
}

TEST(FlatMapTest, EraseIfSweepsMatchingEntries) {
  FlatMap<Addr, uint64_t> m;
  for (uint64_t i = 0; i < 500; ++i) {
    m[i] = i;
  }
  // Idempotent sweep semantics: a wrapped backward shift may defer an entry
  // to a later call, so sweep until a pass removes nothing.
  size_t erased = 0;
  while (true) {
    const size_t pass = m.EraseIf([](Addr, uint64_t v) { return v % 2 == 0; });
    erased += pass;
    if (pass == 0) {
      break;
    }
  }
  EXPECT_EQ(erased, 250u);
  EXPECT_EQ(m.size(), 250u);
  for (uint64_t i = 0; i < 500; ++i) {
    EXPECT_EQ(m.Contains(i), i % 2 == 1) << i;
  }
}

// Randomized mirror against std::unordered_map: same operation stream, same
// observable contents, across heavy insert/erase churn (the long-simulation
// usage pattern that tombstone-free deletion exists for).
class FlatMapFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FlatMapFuzz, MatchesUnorderedMap) {
  FlatMap<Addr, uint64_t> m;
  std::unordered_map<Addr, uint64_t> ref;
  Rng rng(GetParam());
  for (int op = 0; op < 60000; ++op) {
    // Small key space => constant collision/erase churn.
    const Addr key = rng.NextBelow(512) * kCacheLineSize;
    switch (rng.NextBelow(4)) {
      case 0:
      case 1:
        m[key] = static_cast<uint64_t>(op);
        ref[key] = static_cast<uint64_t>(op);
        break;
      case 2:
        EXPECT_EQ(m.Erase(key), ref.erase(key) != 0);
        break;
      default: {
        const uint64_t* found = m.Find(key);
        const auto it = ref.find(key);
        ASSERT_EQ(found != nullptr, it != ref.end()) << "key " << key;
        if (found != nullptr) {
          EXPECT_EQ(*found, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(m.size(), ref.size());
  }
  // Full-content sweep at the end.
  size_t visited = 0;
  m.ForEach([&](Addr key, uint64_t value) {
    const auto it = ref.find(key);
    ASSERT_NE(it, ref.end()) << "phantom key " << key;
    EXPECT_EQ(value, it->second);
    ++visited;
  });
  EXPECT_EQ(visited, ref.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatMapFuzz, ::testing::Values(11u, 22u, 33u));

}  // namespace
}  // namespace pmemsim
