file(REMOVE_RECURSE
  "CMakeFiles/imc_test.dir/imc_test.cc.o"
  "CMakeFiles/imc_test.dir/imc_test.cc.o.d"
  "imc_test"
  "imc_test.pdb"
  "imc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
