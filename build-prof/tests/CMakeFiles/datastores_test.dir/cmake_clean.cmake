file(REMOVE_RECURSE
  "CMakeFiles/datastores_test.dir/datastores_test.cc.o"
  "CMakeFiles/datastores_test.dir/datastores_test.cc.o.d"
  "datastores_test"
  "datastores_test.pdb"
  "datastores_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datastores_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
