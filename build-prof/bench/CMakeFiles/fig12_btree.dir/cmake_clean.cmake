file(REMOVE_RECURSE
  "CMakeFiles/fig12_btree.dir/fig12_btree.cc.o"
  "CMakeFiles/fig12_btree.dir/fig12_btree.cc.o.d"
  "fig12_btree"
  "fig12_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
