// Ablation: what would eADR have bought? (paper §6 discussion)
//
// The paper's G2 testbed ran with eADR disabled; with eADR the CPU caches are
// in the persistence domain and cacheline flushes become unnecessary. This
// bench contrasts G2 vs G2+eADR on two paper workloads:
//   * the Fig. 8 strict-persistency element update (flush+fence per element)
//   * the Fig. 12 in-place B+-tree insert (a flush per key shift)
// Under eADR the flush cost disappears and with it most of the remaining
// persistency overhead — the in-place B+-tree no longer needs redo logging.
//
// Output: CSV  workload,platform,value_cycles

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/sweep_runner.h"
#include "src/common/config.h"
#include "src/core/system.h"
#include "src/datastores/chase_list.h"
#include "src/datastores/fast_fair.h"
#include "src/workload/ycsb.h"

namespace {

using namespace pmemsim;

double ElementUpdate(const PlatformConfig& cfg) {
  auto system = std::make_unique<System>(cfg, 1);
  ThreadContext& ctx = system->CreateThread();
  const PmRegion region = system->AllocatePm(MiB(1), kXPLineSize);
  ChaseList list(system.get(), region, false, 0xEAD);
  list.TraverseUpdate(ctx, 4000, PersistMode::kClwbSfence, Persistency::kStrict);
  const Cycles t =
      list.TraverseUpdate(ctx, 8000, PersistMode::kClwbSfence, Persistency::kStrict);
  return static_cast<double>(t) / 8000.0;
}

double BtreeInsert(const PlatformConfig& cfg) {
  auto system = std::make_unique<System>(cfg, 1);
  ThreadContext& ctx = system->CreateThread();
  FastFairTree tree(system.get(), ctx);
  const std::vector<uint64_t> keys = MakeLoadKeys(40000, 0xEAD2);
  const Cycles t0 = ctx.clock();
  for (const uint64_t k : keys) {
    tree.Insert(ctx, k, k, BTreeUpdateMode::kInPlace);
  }
  return static_cast<double>(ctx.clock() - t0) / static_cast<double>(keys.size());
}

}  // namespace

int main(int argc, char** argv) {
  pmemsim_bench::Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::printf("usage: ablation_eadr [--platform=g1|g2|g2-eadr]\n%s",
                pmemsim_bench::kTelemetryFlagsHelp);
    return 0;
  }
  // Default: the paper's contrast pair (G2 vs G2+eADR). --platform narrows
  // the run to one named preset; unknown names exit(2) via the flag path.
  const std::string platform_arg = flags.Get("platform", "");
  pmemsim_bench::BenchReport report(flags, "ablation_eadr");
  pmemsim_bench::SweepRunner runner(flags);
  flags.RejectUnknown();
  std::vector<PlatformConfig> platforms;
  if (platform_arg.empty()) {
    platforms = {G2Platform(), G2EadrPlatform()};
  } else {
    const auto platform = PlatformByName(platform_arg);
    if (!platform) {
      pmemsim_bench::Flags::BadValue("platform", platform_arg, "g1|g2|g2-eadr");
    }
    platforms = {*platform};
  }
  pmemsim_bench::PrintHeader("Ablation", "G2 with and without eADR (paper §6)");
  std::printf("workload,platform,cycles\n");
  struct Case {
    const char* workload;
    double (*run)(const PlatformConfig&);
  };
  const Case cases[] = {
      {"element-update-strict", &ElementUpdate},
      {"btree-inplace-insert", &BtreeInsert},
  };
  for (const Case& c : cases) {
    for (const PlatformConfig& platform : platforms) {
      const std::string label = std::string(c.workload) + "/" + platform.name;
      runner.Add(label, [=](pmemsim_bench::SweepPoint& point) {
        const double cycles = c.run(platform);
        point.Printf("%s,%s,%.1f\n", c.workload, platform.name.c_str(), cycles);
        point.AddRow()
            .Set("workload", c.workload)
            .Set("platform", platform.name)
            .Set("cycles", cycles);
      });
    }
  }
  return runner.Finish(report);
}
