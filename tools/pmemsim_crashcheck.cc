// CLI entry point; the driver lives in crashcheck_lib so the determinism
// property test can run the same pipeline in-process.

#include "tools/crashcheck_lib.h"

int main(int argc, char** argv) { return pmemsim_crashcheck::RunCrashcheck(argc, argv); }
