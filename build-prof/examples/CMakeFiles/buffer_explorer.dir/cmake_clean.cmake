file(REMOVE_RECURSE
  "CMakeFiles/buffer_explorer.dir/buffer_explorer.cc.o"
  "CMakeFiles/buffer_explorer.dir/buffer_explorer.cc.o.d"
  "buffer_explorer"
  "buffer_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
