// Log-structured write patterns: the three small workloads behind
// pmemsim_trace's record/replay scenarios (DESIGN.md §8).
//
//  - log_store: persistent log append. Each append streams a value into the
//    next log slot (wrapping within a fixed arena), fences, then commits by
//    bumping one of a small set of rotating counter slots with a
//    store + clwb + sfence sequence — the classic "append then publish"
//    shape whose commit lines are re-dirtied every `counter_slots` appends.
//  - circular_writes: Raft-style circular log. Each round bumps a version
//    word and non-temporally rewrites buffer (i % num_buffers) in full, then
//    fences — sized against the XPBuffer, the buffer-count/write-size plane
//    sweeps the on-DIMM write-buffer hit ratio.
//  - cacheline_versions: per-cacheline version stamping. Each round stamps a
//    version into every cacheline head of a flat arena, rewrites the arena
//    body, then re-stamps and flushes — the torn-write detection idiom whose
//    double touch per line doubles front-end stores without doubling media
//    writes.
//
// Each instance owns its own regions (Setup uses the System bump allocator),
// so multi-threaded runs give every thread a private instance and regions
// stay disjoint by construction.

#ifndef SRC_WORKLOAD_LOG_PATTERNS_H_
#define SRC_WORKLOAD_LOG_PATTERNS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/system.h"
#include "src/cpu/thread_context.h"

namespace pmemsim {

struct LogPatternOptions {
  uint64_t ops = 1000;            // appends / write rounds per thread
  uint64_t seed = 1;              // payload-content seed
  uint64_t value_bytes = 128;     // log_store: payload per append
  uint64_t counter_slots = 4;     // log_store: rotating commit-counter slots
  uint64_t log_bytes = MiB(1);    // log_store: arena size (appends wrap)
  uint64_t write_bytes = 256;     // circular_writes: bytes per round
  uint64_t num_buffers = 16;      // circular_writes: ring length
  uint64_t buffer_bytes = KiB(4); // cacheline_versions: arena size
};

class LogPatternWorkload {
 public:
  virtual ~LogPatternWorkload() = default;

  virtual const char* name() const = 0;
  // Allocates this instance's PM regions. Call once, before Run/RunOne.
  virtual void Setup(System& system) = 0;
  // Performs operation `i` (call with i = 0, 1, ... opts.ops-1 in order; the
  // payload generator is sequential state). Exposed so multi-threaded runs
  // can interleave threads one operation at a time under the Scheduler.
  virtual void RunOne(ThreadContext& ctx, uint64_t i) = 0;
  // Performs all opts.ops operations. Deterministic for fixed options.
  void Run(ThreadContext& ctx);

  uint64_t ops() const { return ops_; }

  // Total payload bytes written per Run (for MB/s-style reporting).
  virtual uint64_t payload_bytes() const = 0;

  // Factory over Names(); returns nullptr for unknown names.
  static std::unique_ptr<LogPatternWorkload> Create(std::string_view name,
                                                    const LogPatternOptions& opts);
  static std::vector<std::string> Names();

 protected:
  explicit LogPatternWorkload(uint64_t ops) : ops_(ops) {}

 private:
  uint64_t ops_ = 0;
};

}  // namespace pmemsim

#endif  // SRC_WORKLOAD_LOG_PATTERNS_H_
