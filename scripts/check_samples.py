#!/usr/bin/env python3
"""Validate an interval-sampler time series against its run's global counters.

The sampler's contract (src/trace/sampler.h) is that the per-interval series
is a *partition* of the run: the field-wise sum of every sample's counter
deltas equals the global counter delta over the sampled span exactly, and the
samples tile simulated time contiguously. This script gates that identity in
CI from the outside, using only the JSON artifacts:

  * --samples: the --samples_json file (JSON array of samples);
  * --stats:   the bench's --stats_json report, whose counters section must
               carry the run's global delta under --counters_label
               (pmemsim_watch writes it as "global_delta").

Checks performed:
  1. schema: every sample has index/t_begin/t_end/partial/delta/gauges, with
     sequential indices and contiguous [t_begin, t_end) spans;
  2. only the final sample may be marked partial;
  3. for every counter field: sum of sample deltas == global delta, exactly.

Usage:
    check_samples.py --samples /tmp/watch_samples.json \
        --stats /tmp/watch_stats.json [--report]
"""

import argparse
import json
import sys

REQUIRED_SAMPLE_KEYS = ("index", "t_begin", "t_end", "partial", "delta", "gauges")
REQUIRED_GAUGE_KEYS = ("wpq_occupancy", "read_buffer_entries", "write_buffer_entries")


def fail(msg):
    sys.exit(f"error: {msg}")


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")


def counter_fields(counters):
    """The integer counter fields of a serialized Counters object.

    Counters::ToJson emits the raw fields flat plus a "derived" sub-object of
    float ratios; only the raw fields participate in the partition identity.
    """
    return {k: v for k, v in counters.items() if k != "derived"}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", required=True, help="--samples_json output (JSON array)")
    parser.add_argument("--stats", required=True, help="--stats_json report with the global delta")
    parser.add_argument(
        "--counters_label",
        default="global_delta",
        help="counters-section label holding the run's global delta (default: global_delta)",
    )
    parser.add_argument("--report", action="store_true", help="print the per-field comparison")
    args = parser.parse_args()

    samples = load_json(args.samples)
    stats = load_json(args.stats)

    if not isinstance(samples, list) or not samples:
        fail(f"{args.samples}: expected a non-empty JSON array of samples")

    counters_section = stats.get("counters", {})
    if args.counters_label not in counters_section:
        fail(f"{args.stats}: no counters[{args.counters_label!r}] section")
    global_delta = counter_fields(counters_section[args.counters_label])
    if not global_delta:
        fail(f"{args.stats}: counters[{args.counters_label!r}] has no counter fields")

    # 1. Schema + contiguity.
    prev_end = None
    for i, s in enumerate(samples):
        for key in REQUIRED_SAMPLE_KEYS:
            if key not in s:
                fail(f"sample {i}: missing key {key!r}")
        for key in REQUIRED_GAUGE_KEYS:
            if key not in s["gauges"]:
                fail(f"sample {i}: gauges missing key {key!r}")
        if s["index"] != i:
            fail(f"sample {i}: non-sequential index {s['index']}")
        if prev_end is not None and s["t_begin"] != prev_end:
            fail(f"sample {i}: t_begin {s['t_begin']} != previous t_end {prev_end} (gap/overlap)")
        if s["t_end"] < s["t_begin"]:
            fail(f"sample {i}: t_end {s['t_end']} < t_begin {s['t_begin']}")
        prev_end = s["t_end"]

    # 2. Partial samples only close the series.
    for i, s in enumerate(samples[:-1]):
        if s["partial"]:
            fail(f"sample {i}: marked partial but is not the final sample")

    # 3. The partition identity, exact per field.
    mismatches = []
    for field, expected in sorted(global_delta.items()):
        total = 0
        for i, s in enumerate(samples):
            if field not in counter_fields(s["delta"]):
                fail(f"sample {i}: delta missing counter field {field!r}")
            total += s["delta"][field]
        status = "ok" if total == expected else "FAIL"
        if args.report or status == "FAIL":
            print(f"{status:4} {field}: sum(samples) = {total}, global = {expected}")
        if status == "FAIL":
            mismatches.append(field)

    if mismatches:
        print(
            f"{len(mismatches)} counter field(s) violate the partition identity",
            file=sys.stderr,
        )
        return 1
    print(
        f"{len(samples)} samples over [{samples[0]['t_begin']}, {samples[-1]['t_end']}) cycles: "
        f"all {len(global_delta)} counter fields sum exactly to the global delta"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
