#include "src/dimm/optane_dimm.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/trace/trace_events.h"

namespace pmemsim {

OptaneDimm::OptaneDimm(const OptaneDimmConfig& config, Counters* counters, uint64_t rng_seed)
    : read_impl_(config.periodic_full_writeback ? &OptaneDimm::ReadImpl<true>
                                                : &OptaneDimm::ReadImpl<false>),
      config_(config),
      counters_(counters),
      ait_(config.ait_cache_coverage_bytes, config.ait_miss_penalty, counters),
      media_(config.media_read_ports, config.media_read_latency, config.media_write_ports,
             config.media_write_latency, counters),
      read_buffer_(config.read_buffer_bytes, counters,
                   config.read_buffer_eviction == 0 ? ReadBufferEviction::kFifo
                                                    : ReadBufferEviction::kLru,
                   config.read_buffer_exclusive),
      write_buffer_(
          WriteBufferConfig{
              .eviction = config.write_buffer_eviction == 0 ? WriteBufferEviction::kRandom
                                                            : WriteBufferEviction::kOldest,
              .capacity_bytes = config.write_buffer_bytes,
              .partial_reserve_entries = config.write_buffer_partial_reserve,
              .periodic_full_writeback = config.periodic_full_writeback,
              .full_writeback_period = config.full_writeback_period,
              .batch_evict = config.batch_evict,
              .batch_evict_keep_fraction = config.batch_evict_keep_fraction,
              .rng_seed = rng_seed,
          },
          counters) {
  PMEMSIM_CHECK(counters_ != nullptr);
}

DimmReadResult OptaneDimm::Read(Addr addr, Cycles now, bool ordered) {
  AccessRecord rec;
  ReadInto(addr, now, ordered, &rec);
  DimmReadResult result;
  result.complete_at = rec.complete_at;
  result.stalled_for = rec.stalled_for;
  result.stages = rec.mem;
  return result;
}

template <bool kPeriodicWb>
void OptaneDimm::ReadImpl(Addr addr, Cycles now, bool ordered, AccessRecord* out) {
  const Addr line = CacheLineBase(addr);
  counters_->imc_read_bytes += kCacheLineSize;

  if constexpr (kPeriodicWb) {
    // Let the periodic write-back clock advance even on pure-read phases.
    if (write_buffer_.TickDue(now)) {
      writeback_scratch_.clear();
      write_buffer_.Tick(now, writeback_scratch_);
      if (!writeback_scratch_.empty()) {
        PerformWritebacks(writeback_scratch_, now);
      }
    }
  }

  // One write-buffer probe answers steps 1 and 2 (the old path asked
  // HoldsLine, VisibleAt and ContainsXPLine separately).
  const WriteBuffer::ReadSnoopResult snoop = write_buffer_.ReadSnoop(line);

  // 1. Freshest data may still be in the write buffer. DDR-T reads snoop it;
  //    a read to a line whose persist is in flight stalls until the write is
  //    applied (the read-after-persist effect, paper §3.5).
  if (snoop.holds_line) {
    Cycles visible = snoop.visible_at;
    if (!ordered && visible > now) {
      // Loads not ordered by a full fence issue early in the out-of-order
      // window, hiding part of the apply pipeline.
      visible =
          visible > config_.unordered_read_overlap ? visible - config_.unordered_read_overlap : 0;
    }
    Cycles start = now;
    if (visible > now) {
      out->stalled_for = visible - now;
      counters_->rap_stall_cycles += out->stalled_for;
      ++counters_->rap_stalled_loads;
      start = visible;
    }
    out->complete_at = start + config_.buffer_hit_latency;
    out->mem.rap_stall = out->stalled_for;
    out->mem.buffer = config_.buffer_hit_latency;
    return;
  }

  // 2. The XPLine may be write-buffered with this particular line not yet
  //    valid: the read triggers the deferred read-modify-write merge — the
  //    whole XPLine is fetched from media into the *write* buffer (which,
  //    unlike the read buffer, is not exclusive; §3.3's transition test).
  if (snoop.contains_xpline) {
    const Cycles ait_cost = ait_.Access(line);
    const Cycles media_done = media_.ReadXPLine(line, now + ait_cost);
    ++counters_->rmw_media_reads;
    write_buffer_.AbsorbFill(line);
    out->complete_at = media_done + config_.buffer_hit_latency;
    out->mem.ait = ait_cost;
    out->mem.media = media_done - (now + ait_cost);
    out->mem.buffer = config_.buffer_hit_latency;
    return;
  }

  // 3. On-DIMM read buffer (exclusive: the hit consumes the line).
  if (read_buffer_.ConsumeLine(line)) {
    out->complete_at = now + config_.buffer_hit_latency;
    out->mem.buffer = config_.buffer_hit_latency;
    return;
  }

  // 4. Media fetch of the whole XPLine, via the AIT, filling the read buffer.
  //    The requested line is handed straight to the requester (consuming its
  //    valid bit under exclusivity) without counting a buffer hit — the miss
  //    was already recorded by the failed ConsumeLine in step 3.
  const Cycles ait_cost = ait_.Access(line);
  const Cycles media_done = media_.ReadXPLine(line, now + ait_cost);
  read_buffer_.FillForDelivery(line);
  if (trace_track_ != 0) {
    TraceEmitter::Global().Instant(trace_track_, "read_buffer_fill", now);
  }
  out->complete_at = media_done + config_.buffer_hit_latency;
  out->mem.ait = ait_cost;
  out->mem.media = media_done - (now + ait_cost);
  out->mem.buffer = config_.buffer_hit_latency;
}

template void OptaneDimm::ReadImpl<true>(Addr, Cycles, bool, AccessRecord*);
template void OptaneDimm::ReadImpl<false>(Addr, Cycles, bool, AccessRecord*);

DimmWriteResult OptaneDimm::Write(Addr addr, Cycles now) {
  const Addr line = CacheLineBase(addr);
  counters_->imc_write_bytes += kCacheLineSize;

  const Cycles visible_at = now + config_.write_visible_delay;
  writeback_scratch_.clear();

  // §3.3: a write to an XPLine resident in the read buffer (and not already
  // write-buffered) updates it in place; the XPLine transitions to the write
  // buffer's management. Probing the (often empty) read buffer first lets the
  // common case fall through to Write() without a separate occupancy lookup.
  if (read_buffer_.ContainsXPLine(line) && !write_buffer_.ContainsXPLine(line)) {
    read_buffer_.Remove(line);
    write_buffer_.InstallTransition(line, now, visible_at, writeback_scratch_);
  } else {
    write_buffer_.Write(line, now, visible_at, writeback_scratch_);
  }

  if (trace_track_ != 0) {
    TraceEmitter::Global().CounterEvent(trace_track_, "write_buffer_entries", now,
                                        static_cast<double>(write_buffer_.occupied_entries()));
  }

  DimmWriteResult result;
  result.visible_at = visible_at;
  if (!writeback_scratch_.empty()) {
    PerformWritebacks(writeback_scratch_, now);
    bool evicted = false;
    for (const WritebackRequest& req : writeback_scratch_) {
      evicted |= !req.periodic;
    }
    if (evicted) {
      // Media write ports are the drain bottleneck once the buffer overflows.
      result.backpressure_until = media_.NextWriteSlot();
    }
  }
  return result;
}

void OptaneDimm::PerformWritebacks(const std::vector<WritebackRequest>& requests, Cycles now) {
  for (const WritebackRequest& req : requests) {
    Cycles t = now + ait_.Access(req.xpline);
    if (req.needs_rmw) {
      // Missing cachelines must be fetched from media before programming.
      ++counters_->rmw_media_reads;
      t = media_.ReadXPLine(req.xpline, t);
    }
    media_.WriteXPLine(req.xpline, t);
    if (trace_track_ != 0) {
      TraceEmitter::Global().Instant(
          trace_track_, req.periodic ? "periodic_writeback" : "write_buffer_evict", now, "rmw",
          req.needs_rmw ? 1.0 : 0.0);
    }
  }
}

void OptaneDimm::Reset() {
  media_.Reset();
  read_buffer_.Clear();
  write_buffer_.Clear();
}

}  // namespace pmemsim
