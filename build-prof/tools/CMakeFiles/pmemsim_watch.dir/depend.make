# Empty dependencies file for pmemsim_watch.
# This may be replaced when dependencies are built.
