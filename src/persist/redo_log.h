// Out-of-place redo logging (paper §4.2, Fig. 11).
//
// Instead of updating a PM cacheline in place (which on G1 stalls on the
// still-in-flight previous persist of that same line), every update is
// appended to a *fresh* log cacheline on PM via an nt-store and fenced there;
// a DRAM-side shadow holds the same updates. Once all updates for a target
// cacheline are logged, a commit entry (again a fresh log cacheline) seals
// the group, and the shadow is written back to the real location with plain
// cached stores — no flushes: the log already guarantees durability, and the
// node lines reach PM later as ordinary dirty evictions (this is where the
// paper's "doubled PM writes" come from).
//
// Layout: a ring of 64 B records. Update record:
//   [0..8) target address | [8..12) length | [12..16) kUpdateMagic
//   [16..24) epoch         | [24..24+len) payload (len <= 40)
// Commit record:
//   [0..8) group size | [8..12) unused | [12..16) kCommitMagic | [16..24) epoch
//
// The epoch increments on every ring wrap-around, so stale records from
// earlier laps are ignored. Recovery replays, in ring order, every update
// record of the newest epoch that is covered by a commit record; replay is
// idempotent (re-applying logged values in order reproduces the same state).
// Groups that were never committed are discarded — the crash-consistency
// contract of redo logging.

#ifndef SRC_PERSIST_REDO_LOG_H_
#define SRC_PERSIST_REDO_LOG_H_

#include <cstdint>
#include <vector>

#include "src/common/types.h"
#include "src/core/system.h"
#include "src/cpu/thread_context.h"

namespace pmemsim {

class RedoLog {
 public:
  static constexpr uint64_t kRecordSize = kCacheLineSize;
  static constexpr uint32_t kMaxPayload = 40;
  static constexpr uint32_t kUpdateMagic = 0x5244554C;  // "RDUL"
  static constexpr uint32_t kCommitMagic = 0x5244434D;  // "RDCM"

  // Record field offsets. The commit-deciding magic lives at [12..16) and the
  // length at [8..12): both inside the single aligned 8-byte word [8..16).
  // x86 guarantees failure atomicity only per aligned 8-byte unit, so a crash
  // mid-persist tears a log cacheline at word granularity — the magic word is
  // then either entirely old (not a commit: the group is discarded) or
  // entirely new (a commit whose updates a prior fence already made durable).
  // Recovery may therefore never observe a half-written commit flag; a torn
  // record is torn in its *other* words, which recovery tolerates (length
  // sanity check, group-size clamp). The static_asserts pin this layout: if
  // the magic ever straddles two words, a torn flag could read as committed.
  static constexpr uint64_t kTargetOffset = 0;
  static constexpr uint64_t kLenOffset = 8;
  static constexpr uint64_t kMagicOffset = 12;
  static constexpr uint64_t kEpochOffset = 16;
  static constexpr uint64_t kPayloadOffset = 24;
  static_assert(kMagicOffset / 8 == (kMagicOffset + sizeof(uint32_t) - 1) / 8,
                "commit/update magic must sit inside one aligned 8-byte word "
                "(the x86 failure-atomicity unit) or a torn flag could be "
                "misread as a commit");
  static_assert(kMagicOffset % 8 + sizeof(uint32_t) <= 8,
                "magic may not straddle the 8-byte atomicity boundary");
  static_assert(kPayloadOffset + kMaxPayload <= kRecordSize, "payload overflows the record");

  // `log_region` must be PM, cacheline aligned, and hold >= 4 records.
  RedoLog(System* system, PmRegion log_region);

  // Appends one update to the open group and persists the log record.
  void LogUpdate(ThreadContext& ctx, Addr target, const void* data, uint32_t len);

  // Persists the group's commit record. After this returns the group is
  // durable and recovery will replay it.
  void Commit(ThreadContext& ctx);

  // Writes the shadowed updates back to their targets with cached stores
  // (no flushes — see header comment) and opens a new group.
  void Apply(ThreadContext& ctx);

  // Crash recovery on a fresh RedoLog over an existing region: replays all
  // committed groups of the newest epoch in order, discards the rest, and
  // repositions the ring. Returns the number of updates replayed.
  size_t Recover(ThreadContext& ctx);

  size_t open_entries() const { return shadow_.size(); }
  uint64_t capacity_records() const { return region_.size / kRecordSize; }
  uint64_t epoch() const { return epoch_; }

 private:
  struct ShadowUpdate {
    Addr target;
    uint32_t len;
    uint8_t data[kMaxPayload];
  };

  Addr RecordAddr(uint64_t index) const { return region_.base + kRecordSize * index; }
  void Advance(ThreadContext& ctx);

  System* system_;
  PmRegion region_;
  std::vector<ShadowUpdate> shadow_;  // DRAM-side copy of the open group
  uint64_t next_record_ = 0;
  uint64_t epoch_ = 1;
  uint64_t open_group_size_ = 0;
};

}  // namespace pmemsim

#endif  // SRC_PERSIST_REDO_LOG_H_
