// Ablation: which write-buffer design reproduces Figures 3 & 4?
//
// The paper infers random-victim eviction (graceful hit-ratio decay under
// random writes, Fig. 4) and, on G1, periodic write-back of fully written
// XPLines (WA = 1 for full writes even at tiny WSS, Fig. 3). This bench flips
// each choice:
//   * oldest-first eviction -> under a cyclic write pattern the hit ratio
//     collapses to ~0 past capacity (no graceful decay)
//   * periodic write-back off -> full-write WA stays 0 below capacity
//
// Output: CSV  experiment,policy,wss_kb,value

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/sweep_runner.h"
#include "src/common/config.h"
#include "src/common/random.h"
#include "src/core/platform.h"
#include "src/trace/counters.h"

namespace {

using namespace pmemsim;

std::unique_ptr<System> MakeAblatedSystem(uint8_t wb_eviction, bool periodic) {
  PlatformConfig cfg = G1Platform();
  cfg.optane.write_buffer_eviction = wb_eviction;
  cfg.optane.periodic_full_writeback = periodic;
  cfg.optane.batch_evict = false;  // isolate the victim-choice policy
  return std::make_unique<System>(cfg, 1);
}

// Cyclic single-line writes: random eviction decays gracefully, oldest-first
// (FIFO) thrashes exactly like Fig. 2's read cliff.
double CyclicHitRatio(uint8_t wb_eviction, uint64_t wss) {
  auto system = MakeAblatedSystem(wb_eviction, false);
  ThreadContext& ctx = system->CreateThread();
  SetPrefetchers(ctx, false, false, false);
  const PmRegion region = system->AllocatePm(wss, kXPLineSize);
  const uint64_t xplines = wss / kXPLineSize;
  auto run = [&](uint64_t writes) {
    for (uint64_t i = 0; i < writes; ++i) {
      ctx.NtStore64(region.base + (i % xplines) * kXPLineSize, i);
    }
    ctx.Sfence();
  };
  run(4 * xplines);
  CounterDelta d(&system->counters());
  run(12 * xplines);
  return d.Delta().WriteBufferHitRatio();
}

double FullWriteWa(bool periodic, uint64_t wss) {
  auto system = MakeAblatedSystem(0, periodic);
  ThreadContext& ctx = system->CreateThread();
  SetPrefetchers(ctx, false, false, false);
  const PmRegion region = system->AllocatePm(wss, kXPLineSize);
  auto run = [&](int passes) {
    for (int p = 0; p < passes; ++p) {
      for (Addr a = region.base; a < region.end(); a += kCacheLineSize) {
        ctx.NtStore64(a, p);
      }
      ctx.Sfence();
    }
  };
  run(3);
  CounterDelta d(&system->counters());
  run(8);
  return d.Delta().WriteAmplification();
}

}  // namespace

int main(int argc, char** argv) {
  pmemsim_bench::Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::printf("usage: ablation_write_buffer [--max_kb=32]\n%s",
                pmemsim_bench::kTelemetryFlagsHelp);
    return 0;
  }
  const uint64_t max_kb = flags.GetU64("max_kb", 32);
  pmemsim_bench::BenchReport report(flags, "ablation_write_buffer");
  pmemsim_bench::SweepRunner runner(flags);
  flags.RejectUnknown();

  pmemsim_bench::PrintHeader("Ablation", "write-buffer eviction & periodic write-back");
  std::printf("experiment,policy,wss_kb,value\n");
  auto emit = [](pmemsim_bench::SweepPoint& point, const char* experiment, const char* policy,
                 uint64_t kb, double value) {
    point.Printf("%s,%s,%llu,%.3f\n", experiment, policy, static_cast<unsigned long long>(kb),
                 value);
    point.AddRow()
        .Set("experiment", experiment)
        .Set("policy", policy)
        .Set("wss_kb", kb)
        .Set("value", value);
  };
  for (uint64_t kb = 4; kb <= max_kb; kb += 4) {
    runner.Add("cyclic-hit-ratio/" + std::to_string(kb) + "kb",
               [=](pmemsim_bench::SweepPoint& point) {
                 emit(point, "cyclic-hit-ratio", "random", kb, CyclicHitRatio(0, KiB(kb)));
                 emit(point, "cyclic-hit-ratio", "oldest-first", kb, CyclicHitRatio(1, KiB(kb)));
               });
  }
  for (uint64_t kb = 4; kb <= max_kb; kb += 4) {
    runner.Add("full-write-wa/" + std::to_string(kb) + "kb",
               [=](pmemsim_bench::SweepPoint& point) {
                 emit(point, "full-write-wa", "periodic-on (G1 hardware)", kb,
                      FullWriteWa(true, KiB(kb)));
                 emit(point, "full-write-wa", "periodic-off (G2-like)", kb,
                      FullWriteWa(false, KiB(kb)));
               });
  }
  return runner.Finish(report);
}
