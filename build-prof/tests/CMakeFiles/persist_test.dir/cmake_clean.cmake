file(REMOVE_RECURSE
  "CMakeFiles/persist_test.dir/persist_test.cc.o"
  "CMakeFiles/persist_test.dir/persist_test.cc.o.d"
  "persist_test"
  "persist_test.pdb"
  "persist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
