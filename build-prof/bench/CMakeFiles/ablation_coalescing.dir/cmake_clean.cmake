file(REMOVE_RECURSE
  "CMakeFiles/ablation_coalescing.dir/ablation_coalescing.cc.o"
  "CMakeFiles/ablation_coalescing.dir/ablation_coalescing.cc.o.d"
  "ablation_coalescing"
  "ablation_coalescing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_coalescing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
