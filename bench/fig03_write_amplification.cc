// Figure 3 (paper §3.2): write amplification vs working set size for
// nt-store write patterns updating 25/50/75/100% of each XPLine.
//
// On G1: partial writes are absorbed (WA = 0) until the ~12 KB usable
// write-buffer capacity, then WA climbs toward the theoretical 4/2/1.33;
// full writes are written back periodically, so WA ≈ 1 from small WSS.
// On G2 all four curves rise gracefully past a >12 KB knee.
//
// Output: CSV  gen,wss_kb,write_pct,write_amplification

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/sweep_runner.h"
#include "src/common/random.h"
#include "src/core/platform.h"
#include "src/trace/counters.h"

namespace {

using namespace pmemsim;

double MeasureWa(Generation gen, uint64_t wss_bytes, uint32_t lines_per_xpline, bool random) {
  auto system = MakeSystem(gen, /*optane_dimm_count=*/1);
  ThreadContext& ctx = system->CreateThread();
  SetPrefetchers(ctx, false, false, false);

  const PmRegion region = system->AllocatePm(wss_bytes, kXPLineSize);
  const uint64_t xplines = wss_bytes / kXPLineSize;

  std::vector<uint64_t> order(xplines);
  for (uint64_t i = 0; i < xplines; ++i) {
    order[i] = i;
  }
  Rng rng(0x5EED + wss_bytes);
  if (random) {
    rng.Shuffle(order);
  }

  auto run_pass = [&](int passes) {
    for (int p = 0; p < passes; ++p) {
      for (const uint64_t xp : order) {
        const Addr base = region.base + xp * kXPLineSize;
        // Sequentially update the first `lines_per_xpline` cachelines.
        for (uint32_t cl = 0; cl < lines_per_xpline; ++cl) {
          ctx.NtStore64(base + cl * kCacheLineSize, p);
        }
      }
      ctx.Sfence();
    }
  };

  run_pass(3);
  CounterDelta delta(&system->counters());
  run_pass(8);
  return delta.Delta().WriteAmplification();
}

}  // namespace

int main(int argc, char** argv) {
  pmemsim_bench::Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::printf(
        "usage: fig03_write_amplification [--gen=g1|g2|both] [--max_kb=32] [--random]\n"
        "The paper notes WA is independent of the cross-XPLine pattern; --random verifies.\n%s",
        pmemsim_bench::kTelemetryFlagsHelp);
    return 0;
  }
  const std::string gen_flag = flags.Get("gen", "both");
  const uint64_t max_kb = flags.GetU64("max_kb", 32);
  const bool random = flags.Has("random");
  pmemsim_bench::BenchReport report(flags, "fig03_write_amplification");
  pmemsim_bench::SweepRunner runner(flags);
  flags.RejectUnknown();

  pmemsim_bench::PrintHeader("Figure 3", "write amplification vs WSS (nt-store partial/full)");
  std::printf("gen,wss_kb,write_pct,write_amplification\n");
  for (Generation gen : {Generation::kG1, Generation::kG2}) {
    if ((gen == Generation::kG1 && gen_flag == "g2") ||
        (gen == Generation::kG2 && gen_flag == "g1")) {
      continue;
    }
    const char* gen_name = gen == Generation::kG1 ? "G1" : "G2";
    for (uint64_t kb = 1; kb <= max_kb; ++kb) {
      for (uint32_t lines = 1; lines <= 4; ++lines) {
        const std::string label =
            std::string(gen_name) + "/" + std::to_string(kb) + "kb/" +
            std::to_string(lines * 25) + "pct";
        runner.Add(label, [=](pmemsim_bench::SweepPoint& point) {
          const double wa = MeasureWa(gen, KiB(kb), lines, random);
          point.Printf("%s,%llu,%u,%.3f\n", gen_name, static_cast<unsigned long long>(kb),
                       lines * 25, wa);
          point.AddRow()
              .Set("gen", gen_name)
              .Set("wss_kb", kb)
              .Set("write_pct", lines * 25)
              .Set("write_amplification", wa);
        });
      }
    }
  }
  return runner.Finish(report);
}
