#!/usr/bin/env python3
"""Validate a .pmtrace file with an independent decoder.

Re-implements the .pmtrace v1 format (DESIGN.md §8, src/trace/recorder.cc)
in Python so a bug in the C++ serializer cannot vouch for itself. Checks:

  * header schema: magic, format version, generation/eADR bounds, string
    sizes, segment count;
  * record streams decode exactly: every segment's payload is consumed
    byte-for-byte with no trailing bytes, ops are in range, thread ids are
    within the declared thread table;
  * per-thread clocks are monotone non-decreasing (structural in the delta
    encoding — an unsigned varint cannot decrease — but the decoder verifies
    the decoded values anyway so an encoder bug cannot hide behind it);
  * footer total reconciles with the sum of per-segment record counts;
  * with --stats: each segment's record count matches the "records" cell of
    the stats row emitted by the run (pmemsim_trace record/replay), keying
    rows to segments by order.

Usage:
    check_trace.py TRACE.pmtrace [--stats STATS.json] [--report]

Exits 0 when the file validates, 1 on any validation failure, 2 on usage
errors or unreadable files.
"""

import argparse
import json
import struct
import sys

MAGIC = b"pmtrace\x00"
END_MAGIC = b"EOTR"
FORMAT_VERSION = 1
OP_COUNT = 18
OP_NAMES = [
    "load64", "load_line", "load_noprefetch", "store64", "store_line",
    "read", "write", "ntstore64", "ntstore_line", "ntwrite", "clwb",
    "clflushopt", "sfence", "mfence", "stream_copy", "load_multi",
    "compute", "marker",
]
OP_LOAD_MULTI = 15
# Ops with no leading address field (addresses of load_multi live in its list).
NO_ADDR_OPS = {12, 13, 15, 16, 17}  # sfence, mfence, load_multi, compute, marker
AUX_OPS = {5, 6, 9, 14, 15, 16, 17}  # read, write, ntwrite, stream_copy, load_multi, compute, marker

MAX_STRING = 4096
MAX_META = 1024
MAX_THREADS = 65536
MAX_SEGMENTS = 1 << 20


class TraceError(Exception):
    pass


class Cursor:
    def __init__(self, data):
        self.data = data
        self.pos = 0

    def need(self, n):
        if len(self.data) - self.pos < n:
            raise TraceError(f"truncated at byte {self.pos} (need {n} more bytes)")

    def bytes(self, n):
        self.need(n)
        out = self.data[self.pos:self.pos + n]
        self.pos += n
        return out

    def u8(self):
        return self.bytes(1)[0]

    def u16(self):
        return struct.unpack("<H", self.bytes(2))[0]

    def u32(self):
        return struct.unpack("<I", self.bytes(4))[0]

    def u64(self):
        return struct.unpack("<Q", self.bytes(8))[0]

    def varint(self):
        v = 0
        for shift in range(0, 64, 7):
            b = self.u8()
            v |= (b & 0x7F) << shift
            if not b & 0x80:
                if shift == 63 and b > 1:
                    raise TraceError(f"non-canonical varint at byte {self.pos}")
                return v
        raise TraceError(f"unterminated varint at byte {self.pos}")

    def string16(self):
        n = self.u16()
        if n > MAX_STRING:
            raise TraceError(f"string length {n} over limit at byte {self.pos}")
        return self.bytes(n).decode("utf-8")


def unzigzag(v):
    return (v >> 1) ^ -(v & 1)


def parse(data):
    c = Cursor(data)
    if c.bytes(8) != MAGIC:
        raise TraceError("bad magic (not a .pmtrace file)")
    version = c.u32()
    if version != FORMAT_VERSION:
        raise TraceError(f"unsupported format version {version} (expected {FORMAT_VERSION})")
    header = {
        "version": version,
        "fingerprint": c.u64(),
        "platform": c.string16(),
    }
    gen = c.u8()
    if gen > 1:
        raise TraceError(f"bad generation {gen}")
    eadr = c.u8()
    if eadr > 1:
        raise TraceError(f"bad eadr flag {eadr}")
    header["generation"] = "G1" if gen == 0 else "G2"
    header["eadr"] = bool(eadr)
    header["dimm_count"] = c.u32()
    header["scenario"] = c.string16()

    segment_count = c.u32()
    if segment_count > MAX_SEGMENTS:
        raise TraceError(f"segment count {segment_count} over limit")

    segments = []
    for s in range(segment_count):
        label = c.string16()
        meta_count = c.u16()
        if meta_count > MAX_META:
            raise TraceError(f"segment '{label}': metadata count {meta_count} over limit")
        meta = {}
        for _ in range(meta_count):
            k = c.string16()
            v = c.string16()
            meta[k] = v
        thread_count = c.u32()
        if thread_count == 0 or thread_count > MAX_THREADS:
            raise TraceError(f"segment '{label}': bad thread count {thread_count}")
        thread_nodes = [c.u8() for _ in range(thread_count)]
        record_count = c.u64()
        payload_bytes = c.u64()
        c.need(payload_bytes)
        payload_end = c.pos + payload_bytes
        if record_count > payload_bytes:
            raise TraceError(f"segment '{label}': record count exceeds payload capacity")

        last_addr = [0] * thread_count
        last_clock = [0] * thread_count
        op_histogram = [0] * OP_COUNT
        for r in range(record_count):
            op = c.u8()
            if op >= OP_COUNT:
                raise TraceError(f"segment '{label}' record {r}: bad op code {op}")
            tid = c.varint()
            if tid >= thread_count:
                raise TraceError(f"segment '{label}' record {r}: thread {tid} out of range")
            if op not in NO_ADDR_OPS:
                last_addr[tid] = (last_addr[tid] + unzigzag(c.varint())) & (2**64 - 1)
            if op == OP_LOAD_MULTI:
                count = c.varint()
                for _ in range(count):
                    last_addr[tid] = (last_addr[tid] + unzigzag(c.varint())) & (2**64 - 1)
            elif op in AUX_OPS:
                c.varint()
            clock = last_clock[tid] + c.varint()
            if clock < last_clock[tid]:
                raise TraceError(
                    f"segment '{label}' record {r}: thread {tid} clock went backward"
                )
            last_clock[tid] = clock
            op_histogram[op] += 1
            if c.pos > payload_end:
                raise TraceError(f"segment '{label}' record {r}: overruns segment payload")
        if c.pos != payload_end:
            raise TraceError(
                f"segment '{label}': {payload_end - c.pos} trailing payload byte(s)"
            )
        segments.append({
            "label": label,
            "meta": meta,
            "threads": thread_count,
            "nodes": thread_nodes,
            "records": record_count,
            "op_histogram": op_histogram,
        })

    total = c.u64()
    if c.bytes(4) != END_MAGIC:
        raise TraceError("missing end-of-trace footer")
    declared = sum(seg["records"] for seg in segments)
    if total != declared:
        raise TraceError(f"footer total {total} != sum of segment counts {declared}")
    if c.pos != len(data):
        raise TraceError(f"{len(data) - c.pos} trailing byte(s) after footer")
    return header, segments


def cross_check_stats(segments, stats_path):
    """Reconcile segment record counts against the run's stats rows."""
    try:
        with open(stats_path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read stats {stats_path}: {e}")
    rows = doc.get("rows", [])
    if len(rows) != len(segments):
        raise TraceError(f"stats has {len(rows)} row(s) but trace has {len(segments)} segment(s)")
    for i, (row, seg) in enumerate(zip(rows, segments)):
        if "records" not in row:
            raise TraceError(f"stats row {i} has no 'records' cell")
        if row["records"] != seg["records"]:
            raise TraceError(
                f"segment '{seg['label']}': trace has {seg['records']} records but "
                f"stats row {i} claims {row['records']}"
            )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help=".pmtrace file to validate")
    parser.add_argument("--stats", help="stats JSON from the recording/replaying run")
    parser.add_argument("--report", action="store_true", help="print header and per-segment detail")
    args = parser.parse_args()

    try:
        with open(args.trace, "rb") as f:
            data = f.read()
    except OSError as e:
        sys.exit(f"error: cannot read {args.trace}: {e}")

    try:
        header, segments = parse(data)
        if args.stats:
            cross_check_stats(segments, args.stats)
    except TraceError as e:
        print(f"FAIL {args.trace}: {e}", file=sys.stderr)
        return 1

    if args.report:
        print(f"platform {header['platform']} ({header['generation']}"
              f"{', eADR' if header['eadr'] else ''}), {header['dimm_count']} dimm(s), "
              f"fingerprint {header['fingerprint']:016x}")
        print(f"scenario {header['scenario']}: {len(segments)} segment(s)")
        for seg in segments:
            print(f"  {seg['label']}: {seg['threads']} thread(s), {seg['records']} records")
            for op, n in enumerate(seg["op_histogram"]):
                if n:
                    print(f"    {OP_NAMES[op]:<16} {n}")
    total = sum(seg["records"] for seg in segments)
    checked = f", reconciled against {args.stats}" if args.stats else ""
    print(f"ok: {args.trace}: {len(segments)} segment(s), {total} records validate{checked}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
