// pmemsim_serve — the sharded KV request-serving tier.
//
// Stands up N shards (each its own datastore instance with M worker threads
// and a bounded admission queue) on one simulated machine per configuration,
// drives YCSB core mixes from closed-loop (fixed clients, exponential think)
// or open-loop (Poisson arrivals) client populations, and reports throughput
// plus exact-rank p50/p99/p999 sojourn tails per shard and globally. The
// per-shard memory-side decomposition (media/buffer/RAP/WPQ) comes from the
// attribution layer and lands in the --stats_json "serve" section.
//
//   $ pmemsim_serve --store=fastfair --mixes=a,b --loop=both --shards=4
//   $ pmemsim_serve --store=cceh --mixes=a --loop=open --arrival_interval=300
//       --queue_depth=16 --stats_json=serve.json
//
// Each (mix, loop) combination is one sweep point with its own System and
// seed-derived randomness, so --jobs=N parallelism keeps stdout and the JSON
// report byte-identical to a serial run.

#include <cinttypes>
#include <cstdio>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/sweep_runner.h"
#include "src/common/check.h"
#include "src/core/platform.h"
#include "src/serve/domain_tier.h"
#include "src/serve/tier.h"
#include "src/trace/json.h"
#include "src/trace/serve_metrics.h"
#include "src/workload/ycsb.h"

namespace {

using namespace pmemsim;

struct ServeCliConfig {
  PlatformConfig platform;
  uint32_t dimms = 0;  // 0 = one DIMM per shard (legacy) / per domain (partitioned)
  ServeConfig serve;
  std::vector<std::string> mixes;
  std::vector<LoopMode> loops;
  bool partitioned = false;  // --engine_threads present: run the DomainTier engine
  bool quiet = false;
  // Serve observability (all off by default: the hot path pays nothing).
  Cycles sample_interval = 0;     // telemetry window width; 0 = windowing off
  uint64_t slo_p99 = 0;           // per-window p99 SLO threshold; 0 = monitor off
  std::string timeline_path;      // --timeline_json artifact
  std::string spans_path;         // --spans_json compact columnar span export
  std::string span_trace_path;    // --span_trace chrome://tracing span export
  bool observe = false;           // any of the above requested
};

// The sweep point currently running on this worker thread, for the hard-abort
// flush below. Captured failures never reach the process-wide hook (the sweep
// runner catches them in the same frame as its capture scope), so this only
// matters when a CHECK fails outside any capture and the process is about to
// abort.
thread_local ServeTimeline* g_active_timeline = nullptr;
const std::string* g_timeline_path = nullptr;  // set once before runner.Run

void FlushTimelineOnAbort() {
  ServeTimeline* timeline = g_active_timeline;
  if (timeline == nullptr) {
    return;
  }
  timeline->FlushTruncated();
  if (g_timeline_path == nullptr || g_timeline_path->empty()) {
    return;
  }
  // main() never assembles the multi-point artifact on this path; persist the
  // failing point alone, at a side path so the real artifact stays absent.
  const std::string path = *g_timeline_path + ".aborted";
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    const std::string json = timeline->ToJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }
}

// Serializes the point's timeline into its artifact slot on every exit path.
// Normal completion writes the tier-finalized timeline; a propagating failure
// first flushes it truncated at the last observed event, so a failed sweep
// point still yields a well-formed (marked truncated) timeline. The guard
// must live INSIDE the point body: the sweep runner catches the exception in
// the same frame that holds its ScopedCheckCapture, so only an object in the
// point's own frame destructs while the exception is still in flight.
class TimelineSlotGuard {
 public:
  TimelineSlotGuard(ServeTimeline* timeline, std::string* slot)
      : timeline_(timeline), slot_(slot) {
    if (timeline_ != nullptr) {
      g_active_timeline = timeline_;
      RegisterCaptureUnwindHook(&FlushTimelineOnAbort);  // hard-abort cover
    }
  }
  ~TimelineSlotGuard() {
    if (timeline_ == nullptr) {
      return;
    }
    g_active_timeline = nullptr;
    timeline_->FlushTruncated();  // no-op after the tier's normal Finalize
    *slot_ = timeline_->ToJson();
  }
  TimelineSlotGuard(const TimelineSlotGuard&) = delete;
  TimelineSlotGuard& operator=(const TimelineSlotGuard&) = delete;

 private:
  ServeTimeline* timeline_;
  std::string* slot_;
};

bool WriteFileOrComplain(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  if (std::fclose(f) != 0 || !ok) {
    std::fprintf(stderr, "error: short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t comma = s.find(',', start);
    const size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) {
      out.push_back(s.substr(start, end - start));
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return out;
}

void EmitScope(pmemsim_bench::SweepPoint& point, const ServeCliConfig& cli,
               const std::string& mix, LoopMode loop, const std::string& scope,
               const ServiceStats& stats, Cycles serve_start) {
  const double ghz = cli.platform.cpu_ghz;
  const double ops_sec = stats.OpsPerSec(ghz, serve_start);
  const uint64_t p50 = stats.sojourn.Quantile(0.50);
  const uint64_t p99 = stats.sojourn.Quantile(0.99);
  const uint64_t p999 = stats.sojourn.Quantile(0.999);
  if (!cli.quiet) {
    point.Printf("%s,%s,%s,%s,%.0f,%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
                 ",%" PRIu64 "\n",
                 mix.c_str(), LoopModeName(loop), StoreName(cli.serve.store), scope.c_str(),
                 ops_sec, p50, p99, p999, stats.offered, stats.rejected, stats.completed);
  }
  point.AddRow()
      .Set("mix", mix)
      .Set("loop", LoopModeName(loop))
      .Set("store", StoreName(cli.serve.store))
      .Set("scope", scope)
      .Set("shards", cli.serve.shards)
      .Set("workers_per_shard", cli.serve.workers_per_shard)
      .Set("ops_per_sec", ops_sec)
      .Set("sojourn_p50", p50)
      .Set("sojourn_p99", p99)
      .Set("sojourn_p999", p999)
      .Set("offered", stats.offered)
      .Set("rejected", stats.rejected)
      .Set("completed", stats.completed);
}

void RunPoint(const ServeCliConfig& cli, const std::string& mix, LoopMode loop,
              pmemsim_bench::SweepPoint& point, std::string* serve_json,
              ServeTimeline* timeline, std::string* timeline_json) {
  TimelineSlotGuard flush_guard(timeline, timeline_json);
  ServeConfig cfg = cli.serve;
  cfg.mix_name = mix;
  cfg.mix = *MixByName(mix);
  cfg.loop = loop;
  if (cli.partitioned) {
    // Partitioned engine: one System per shard domain. --dimms counts DIMMs
    // per domain here (default 1), matching the legacy default of one DIMM
    // per shard in aggregate.
    const uint32_t dimms = cli.dimms != 0 ? cli.dimms : 1;
    DomainTier tier(cli.platform, dimms, cfg);
    tier.AttachTimeline(timeline);
    tier.Run();
    EmitScope(point, cli, mix, loop, "global", tier.GlobalStats(), tier.serve_start());
    for (const auto& domain : tier.domains()) {
      char scope[16];
      std::snprintf(scope, sizeof(scope), "shard%u", domain->index());
      EmitScope(point, cli, mix, loop, scope, domain->stats(), tier.serve_start());
    }
    *serve_json = tier.ToJson();
    return;
  }
  const uint32_t dimms = cli.dimms != 0 ? cli.dimms : cfg.shards;
  System system(cli.platform, dimms);
  ServiceTier tier(&system, cfg);
  tier.AttachTimeline(timeline);
  tier.Run();
  EmitScope(point, cli, mix, loop, "global", tier.GlobalStats(), tier.serve_start());
  for (const auto& shard : tier.shards()) {
    char scope[16];
    std::snprintf(scope, sizeof(scope), "shard%u", shard->index());
    EmitScope(point, cli, mix, loop, scope, shard->stats(), tier.serve_start());
  }
  *serve_json = tier.ToJson();
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: pmemsim_serve [--store=cceh|fastfair|flatlog] [--mixes=a,b,c,d,e,f]\n"
      "                     [--loop=closed|open|both] [--shards=4] [--workers=2]\n"
      "                     [--queue_depth=64] [--batch=8] [--clients=8] [--think=4000]\n"
      "                     [--arrival_interval=1500] [--ops=20000] [--keys=20000]\n"
      "                     [--theta=0.99] [--scan_len=16] [--seed=42]\n"
      "                     [--platform=g1|g2|g2-eadr] [--dimms=0] [--jobs=1]\n"
      "                     [--engine_threads=N] [--dispatch_latency=2048] [--quiet]\n"
      "                     [--sample_interval_cycles=C] [--timeline_json=<path>]\n"
      "                     [--slo_p99_cycles=C] [--spans_json=<path>]\n"
      "                     [--span_trace=<path>]\n"
      "%s"
      "serve observability (off by default; the serve hot path pays nothing):\n"
      "  --sample_interval_cycles=C  windowed serve telemetry: per-C-cycle\n"
      "                      throughput/shed/queue-depth/windowed tails\n"
      "  --timeline_json=<path>  write the per-window timeline artifact\n"
      "                      (enables windowing; default window 20000 cycles)\n"
      "  --slo_p99_cycles=C  per-window p99 sojourn SLO monitor (violations +\n"
      "                      burn rate in the timeline and a 'slo' stats\n"
      "                      section); requires windowing\n"
      "  --spans_json=<path>  per-request spans, columnar JSON (single sweep\n"
      "                      point only: one mix x one loop)\n"
      "  --span_trace=<path>  per-request spans as chrome://tracing events\n"
      "                      (single sweep point only)\n"
      "parallelism (two independent axes; both keep output byte-identical):\n"
      "  --jobs=N            ACROSS sweep points: run N (mix,loop) points\n"
      "                      concurrently, each on its own simulated machine\n"
      "  --engine_threads=N  WITHIN one sweep point: select the partitioned\n"
      "                      engine and advance its shard domains on N host\n"
      "                      threads. Changes the simulated model (per-shard\n"
      "                      machines + client dispatch latency), never the\n"
      "                      results for a given model: any N compares equal\n"
      "  --dispatch_latency=C  partitioned engine only: client->shard dispatch\n"
      "                      latency in cycles (the epoch window; 0 = eager\n"
      "                      sequential fallback)\n",
      pmemsim_bench::kTelemetryFlagsHelp);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  pmemsim_bench::Flags flags(argc, argv);
  if (flags.Has("help")) {
    return Usage();
  }

  ServeCliConfig cli;
  const std::string platform_name = flags.Get("platform", "g1");
  const auto platform = PlatformByName(platform_name);
  if (!platform) {
    pmemsim_bench::Flags::BadValue("platform", platform_name, "g1|g2|g2-eadr");
  }
  cli.platform = *platform;
  cli.dimms = static_cast<uint32_t>(flags.GetU64("dimms", 0));

  const std::string store_name = flags.Get("store", "fastfair");
  const auto store = StoreByName(store_name);
  if (!store) {
    pmemsim_bench::Flags::BadValue("store", store_name, "cceh|fastfair|flatlog");
  }
  cli.serve.store = *store;

  cli.mixes = SplitCsv(flags.Get("mixes", "a,b,c,d,e,f"));
  if (cli.mixes.empty()) {
    pmemsim_bench::Flags::BadValue("mixes", flags.Get("mixes", ""), "comma list of a..f");
  }
  for (const std::string& mix : cli.mixes) {
    if (!MixByName(mix)) {
      pmemsim_bench::Flags::BadValue("mixes", mix, "YCSB core mix a..f");
    }
  }

  const std::string loop = flags.Get("loop", "both");
  if (loop == "closed") {
    cli.loops = {LoopMode::kClosed};
  } else if (loop == "open") {
    cli.loops = {LoopMode::kOpen};
  } else if (loop == "both") {
    cli.loops = {LoopMode::kClosed, LoopMode::kOpen};
  } else {
    pmemsim_bench::Flags::BadValue("loop", loop, "closed|open|both");
  }

  cli.serve.shards = static_cast<uint32_t>(flags.GetU64("shards", 4));
  cli.serve.workers_per_shard = static_cast<uint32_t>(flags.GetU64("workers", 2));
  cli.serve.queue_depth = flags.GetU64("queue_depth", 64);
  cli.serve.batch = flags.GetU64("batch", 8);
  cli.serve.clients = static_cast<uint32_t>(flags.GetU64("clients", 8));
  cli.serve.think_cycles = flags.GetDouble("think", 4000);
  cli.serve.interarrival_cycles = flags.GetDouble("arrival_interval", 1500);
  cli.serve.ops = flags.GetU64("ops", 20000);
  cli.serve.keys = flags.GetU64("keys", 20000);
  cli.serve.theta = flags.GetDouble("theta", 0.99);
  cli.serve.scan_len = static_cast<uint32_t>(flags.GetU64("scan_len", 16));
  cli.serve.seed = flags.GetU64("seed", 42);

  // --engine_threads opts into the partitioned (shard-parallel) engine; its
  // value is host threads per sweep point. --dispatch_latency belongs to that
  // engine's simulated model, so it is rejected without --engine_threads.
  cli.partitioned = !flags.Get("engine_threads", "").empty();
  if (cli.partitioned) {
    cli.serve.engine_threads = static_cast<uint32_t>(flags.GetU64("engine_threads", 1));
    if (cli.serve.engine_threads == 0) {
      pmemsim_bench::Flags::BadValue("engine_threads", "0", "host thread count >= 1");
    }
    cli.serve.dispatch_latency = flags.GetU64("dispatch_latency", 2048);
    if (!flags.Get("trace_out", "").empty() && cli.serve.engine_threads > 1) {
      std::fprintf(stderr,
                   "note: --trace_out forces --engine_threads=1 (the trace "
                   "emitter is a global sink; order must stay deterministic)\n");
      cli.serve.engine_threads = 1;
    }
  } else if (!flags.Get("dispatch_latency", "").empty()) {
    pmemsim_bench::Flags::BadValue("dispatch_latency", flags.Get("dispatch_latency", ""),
                                   "--engine_threads to be set (partitioned engine only)");
  }
  cli.quiet = flags.Has("quiet");
  if (cli.serve.shards == 0 || cli.serve.workers_per_shard == 0 || cli.serve.queue_depth == 0 ||
      cli.serve.batch == 0 || cli.serve.keys == 0) {
    pmemsim_bench::Flags::BadValue("shards", "0", "positive counts");
  }

  // Serve observability: any of the flags below switches the timeline on for
  // every sweep point. --timeline_json / span export imply windowing with a
  // default interval; --slo_p99_cycles is meaningless without windows.
  cli.sample_interval = flags.GetU64("sample_interval_cycles", 0);
  cli.slo_p99 = flags.GetU64("slo_p99_cycles", 0);
  cli.timeline_path = flags.Get("timeline_json", "");
  cli.spans_path = flags.Get("spans_json", "");
  cli.span_trace_path = flags.Get("span_trace", "");
  const bool spans_requested = !cli.spans_path.empty() || !cli.span_trace_path.empty();
  cli.observe =
      cli.sample_interval > 0 || !cli.timeline_path.empty() || spans_requested;
  if (cli.slo_p99 > 0 && !cli.observe) {
    pmemsim_bench::Flags::BadValue(
        "slo_p99_cycles", flags.Get("slo_p99_cycles", ""),
        "windowing to be enabled (--timeline_json or --sample_interval_cycles)");
  }
  if (cli.observe && cli.sample_interval == 0) {
    cli.sample_interval = 20000;  // default telemetry window
  }
  if (spans_requested && cli.mixes.size() * cli.loops.size() != 1) {
    pmemsim_bench::Flags::BadValue(
        "spans_json", !cli.spans_path.empty() ? cli.spans_path : cli.span_trace_path,
        "a single sweep point (one mix, --loop=closed|open)");
  }

  pmemsim_bench::BenchReport report(flags, "pmemsim_serve");
  pmemsim_bench::SweepRunner runner(flags);
  flags.RejectUnknown();

  pmemsim_bench::PrintHeader("pmemsim_serve",
                             "sharded KV serving tier: YCSB mixes, admission, tail latency");
  std::printf("mix,loop,store,scope,ops_per_sec,sojourn_p50,sojourn_p99,sojourn_p999,offered,"
              "rejected,completed\n");

  // One sweep point per (mix, loop): its own System, deterministic per seed.
  // Per-point tier JSON lands in a pre-sized slot so --jobs parallelism keeps
  // the assembled "serve" section in submission order. Timelines live here in
  // main's frame — they must outlive a failing point's unwinding so the flush
  // guard can serialize the truncated artifact into its slot.
  const size_t n_points = cli.mixes.size() * cli.loops.size();
  std::vector<std::string> serve_sections(n_points);
  std::vector<std::unique_ptr<ServeTimeline>> timelines(cli.observe ? n_points : 0);
  std::vector<std::string> timeline_sections(cli.observe ? n_points : 0);
  g_timeline_path = &cli.timeline_path;
  size_t index = 0;
  for (const std::string& mix : cli.mixes) {
    for (const LoopMode mode : cli.loops) {
      std::string* slot = &serve_sections[index];
      ServeTimeline* timeline = nullptr;
      std::string* timeline_slot = nullptr;
      if (cli.observe) {
        ServeTimeline::Config tcfg;
        tcfg.mix = mix;
        tcfg.loop = LoopModeName(mode);
        tcfg.store = StoreName(cli.serve.store);
        tcfg.engine = cli.partitioned ? "partitioned" : "interleaved";
        tcfg.shards = cli.serve.shards;
        tcfg.interval_cycles = cli.sample_interval;
        tcfg.slo_p99_cycles = cli.slo_p99;
        timelines[index] = std::make_unique<ServeTimeline>(tcfg);
        if (spans_requested) {
          timelines[index]->EnableSpans();
        }
        timeline = timelines[index].get();
        timeline_slot = &timeline_sections[index];
      }
      ++index;
      const std::string label = "mix-" + mix + "/" + LoopModeName(mode);
      runner.Add(label,
                 [&cli, mix, mode, slot, timeline, timeline_slot](pmemsim_bench::SweepPoint& point) {
                   RunPoint(cli, mix, mode, point, slot, timeline, timeline_slot);
                 });
    }
  }

  const int failed = runner.Run(report);
  pmemsim::JsonWriter serve;
  serve.BeginArray();
  for (const std::string& section : serve_sections) {
    if (section.empty()) {
      serve.Null();  // failed point: row carries the error, keep indexes stable
    } else {
      serve.Raw(section);
    }
  }
  serve.EndArray();
  report.AddSection("serve", serve.str());

  int io_rc = 0;
  if (cli.slo_p99 > 0) {
    // SLO summary per point, mirrored into the stats report so the monitor is
    // visible without parsing the full timeline artifact.
    pmemsim::JsonWriter slo;
    slo.BeginArray();
    index = 0;
    for (const std::string& mix : cli.mixes) {
      for (const LoopMode mode : cli.loops) {
        const ServeTimeline::SloSummary s = timelines[index++]->Slo();
        slo.BeginObject();
        slo.Key("mix").Value(mix);
        slo.Key("loop").Value(LoopModeName(mode));
        slo.Key("slo_p99_cycles").Value(cli.slo_p99);
        slo.Key("violations").Value(s.violations);
        slo.Key("windows").Value(s.windows);
        slo.Key("windows_with_traffic").Value(s.windows_with_traffic);
        slo.Key("burn_rate").Value(s.burn_rate);
        slo.EndObject();
      }
    }
    slo.EndArray();
    report.AddSection("slo", slo.str());
  }
  if (!cli.timeline_path.empty()) {
    pmemsim::JsonWriter timeline;
    timeline.BeginObject();
    timeline.Key("schema_version").Value(uint64_t{1});
    timeline.Key("bench").Value("pmemsim_serve");
    timeline.Key("points").BeginArray();
    for (const std::string& section : timeline_sections) {
      if (section.empty()) {
        timeline.Null();  // point never ran; keep indexes aligned with rows
      } else {
        timeline.Raw(section);
      }
    }
    timeline.EndArray();
    timeline.EndObject();
    if (!WriteFileOrComplain(cli.timeline_path, timeline.str())) {
      io_rc = 1;
    }
  }
  if (!cli.spans_path.empty() &&
      !WriteFileOrComplain(cli.spans_path, timelines[0]->SpansToJson())) {
    io_rc = 1;
  }
  if (!cli.span_trace_path.empty() &&
      !WriteFileOrComplain(cli.span_trace_path, timelines[0]->SpansToChromeTrace())) {
    io_rc = 1;
  }

  const int rc = report.Finish();
  if (failed > 0) {
    std::fprintf(stderr, "pmemsim_serve: %d point(s) failed\n", failed);
    return 1;
  }
  return rc != 0 ? rc : io_rc;
}
