# Empty dependencies file for fig03_write_amplification.
# This may be replaced when dependencies are built.
