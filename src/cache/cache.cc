#include "src/cache/cache.h"

#include <algorithm>
#include <bit>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "src/common/check.h"

namespace pmemsim {

namespace {

// Ask the kernel to back a large long-lived array with huge pages. The block
// array of a realistically sized L3 is tens of megabytes probed at random
// set indices: under 4 KB pages every probe is also a dTLB miss, and x86
// drops software prefetches whose translation misses — which defeats the
// PrefetchSet overlap scheme entirely. 2 MB pages make the whole array a
// handful of dTLB entries. Purely a host-side hint; harmless where
// unsupported.
void AdviseHugePages(void* p, size_t bytes) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  constexpr uintptr_t kHuge = 2u << 20;
  const uintptr_t start = (reinterpret_cast<uintptr_t>(p) + kHuge - 1) & ~(kHuge - 1);
  const uintptr_t end = (reinterpret_cast<uintptr_t>(p) + bytes) & ~(kHuge - 1);
  if (end > start) {
    (void)madvise(reinterpret_cast<void*>(start), end - start, MADV_HUGEPAGE);
  }
#else
  (void)p;
  (void)bytes;
#endif
}

}  // namespace

SetAssocCache::SetAssocCache(const CacheLevelConfig& config) : config_(config) {
  PMEMSIM_CHECK(config.ways > 0);
  PMEMSIM_CHECK(config.ways <= 32);  // valid/ready/pending masks: one bit per way
  PMEMSIM_CHECK(config.size_bytes >= kCacheLineSize * config.ways);
  sets_ = static_cast<size_t>(config.size_bytes / (kCacheLineSize * config.ways));
  PMEMSIM_CHECK(sets_ > 0);
  set_mask_ = (sets_ & (sets_ - 1)) == 0 ? sets_ - 1 : 0;
  if (set_mask_ != 0) {
    mod_mul_ = 0;
  } else {
    // ceil(2^64 / sets_): sets_ does not divide 2^64 here (not a power of
    // two), so floor((2^64 - 1) / sets_) + 1 is the ceiling. The multiply-
    // shift modulo in SetIndex is exact while the line number stays below
    // 2^64/sets_ - sets_; line numbers are bounded by the DRAM address space
    // top (~2^47 / 64 = 2^41), so cap the non-pow2 set count well under
    // 2^64 / 2^41 = 2^23 to keep a wide safety margin.
    PMEMSIM_CHECK(sets_ < (size_t{1} << 20));
    mod_mul_ = ~uint64_t{0} / sets_ + 1;
  }
  stride_ = (4 * config.ways + 7) & ~size_t{7};  // whole 64 B lines per set
  ways_mask_ = config.ways == 32 ? ~0u : (1u << config.ways) - 1u;
  block_words_ = sets_ * stride_;
  blocks_.reset(static_cast<uint64_t*>(
      ::operator new[](block_words_ * sizeof(uint64_t), std::align_val_t{64})));
  AdviseHugePages(blocks_.get(), block_words_ * sizeof(uint64_t));
  std::fill_n(blocks_.get(), block_words_, 0);
  valid_mask_.assign(sets_, 0);
  ready_mask_.assign(sets_, 0);
  pending_mask_.assign(sets_, 0);
}

SetAssocCache::InvalidateResult SetAssocCache::Invalidate(Addr line_addr) {
  // Invalidation is unconditional: even lines with scheduled (not yet due)
  // invalidations are found by the valid-way scan.
  const Addr line = CacheLineBase(line_addr);
  const size_t set = SetIndex(line);
  const size_t base = set * stride_;
  for (uint32_t m = valid_mask_[set]; m != 0; m &= m - 1) {
    const uint32_t i = static_cast<uint32_t>(std::countr_zero(m));
    Addr& t = Tag(base + i);
    if (TagMatches(t, line)) {
      InvalidateResult r{true, (t & kDirty) != 0};
      t &= ~kDirty;
      ClearValid(set, base + i);
      ClearPending(set, base + i);
      return r;
    }
  }
  return {};
}

SetAssocCache::InvalidateResult SetAssocCache::WriteBack(Addr line_addr, Cycles invalidate_at,
                                                         bool retain) {
  const Addr line = CacheLineBase(line_addr);
  const size_t set = SetIndex(line);
  const size_t base = set * stride_;
  for (uint32_t m = valid_mask_[set]; m != 0; m &= m - 1) {
    const uint32_t i = static_cast<uint32_t>(std::countr_zero(m));
    Addr& t = Tag(base + i);
    if (TagMatches(t, line)) {
      InvalidateResult r{true, (t & kDirty) != 0};
      t &= ~kDirty;
      if (!retain) {
        if (invalidate_at != 0) {
          PendingAt(base + i) = invalidate_at;
          pending_mask_[set] |= 1u << i;
        } else {
          pending_mask_[set] &= ~(1u << i);
        }
      }
      return r;
    }
  }
  return {};
}

bool SetAssocCache::ConsumePrefetchedFlag(Addr line_addr, Cycles now) {
  size_t set;
  const size_t w = FindWay(line_addr, now, &set);
  if (w == kNone || (Tag(w) & kPrefetched) == 0) {
    return false;
  }
  Tag(w) &= ~kPrefetched;
  return true;
}

void SetAssocCache::ApplyPendingInvalidate(Addr line_addr) {
  const Addr line = CacheLineBase(line_addr);
  const size_t set = SetIndex(line);
  const size_t base = set * stride_;
  for (uint32_t m = valid_mask_[set] & pending_mask_[set]; m != 0; m &= m - 1) {
    const uint32_t i = static_cast<uint32_t>(std::countr_zero(m));
    Addr& t = Tag(base + i);
    if (TagMatches(t, line)) {
      t &= ~kDirty;
      ClearValid(set, base + i);
      ClearPending(set, base + i);
      return;
    }
  }
}

void SetAssocCache::Clear() {
  std::fill_n(blocks_.get(), block_words_, 0);
  valid_mask_.assign(valid_mask_.size(), 0);
  ready_mask_.assign(ready_mask_.size(), 0);
  pending_mask_.assign(pending_mask_.size(), 0);
  // tick_ deliberately not reset: LRU order is relative, and Clear() between
  // benchmark configurations must not make two runs' tick streams collide.
}

}  // namespace pmemsim
