# Empty dependencies file for sec33_buffer_separation.
# This may be replaced when dependencies are built.
