#include "src/common/backing_store.h"

#include <algorithm>

#include "src/common/check.h"

namespace pmemsim {

const BackingStore::Page* BackingStore::FindPage(Addr addr) const {
  auto it = pages_.find(PageBase(addr));
  return it == pages_.end() ? nullptr : it->second.get();
}

BackingStore::Page& BackingStore::EnsurePage(Addr addr) {
  std::unique_ptr<Page>& slot = pages_[PageBase(addr)];
  if (!slot) {
    slot = std::make_unique<Page>();
    slot->fill(0);
  }
  return *slot;
}

void BackingStore::Read(Addr addr, void* out, size_t len) const {
  uint8_t* dst = static_cast<uint8_t*>(out);
  while (len > 0) {
    const uint64_t in_page = addr - PageBase(addr);
    const size_t chunk = static_cast<size_t>(std::min<uint64_t>(len, kPageSize - in_page));
    if (const Page* page = FindPage(addr)) {
      std::memcpy(dst, page->data() + in_page, chunk);
    } else {
      std::memset(dst, 0, chunk);
    }
    dst += chunk;
    addr += chunk;
    len -= chunk;
  }
}

void BackingStore::Write(Addr addr, const void* data, size_t len) {
  const uint8_t* src = static_cast<const uint8_t*>(data);
  while (len > 0) {
    const uint64_t in_page = addr - PageBase(addr);
    const size_t chunk = static_cast<size_t>(std::min<uint64_t>(len, kPageSize - in_page));
    std::memcpy(EnsurePage(addr).data() + in_page, src, chunk);
    src += chunk;
    addr += chunk;
    len -= chunk;
  }
}

uint64_t BackingStore::ReadU64(Addr addr) const {
  uint64_t v = 0;
  Read(addr, &v, sizeof(v));
  return v;
}

void BackingStore::WriteU64(Addr addr, uint64_t value) { Write(addr, &value, sizeof(value)); }

void BackingStore::Zero(Addr addr, uint64_t len) {
  while (len > 0) {
    const uint64_t in_page = addr - PageBase(addr);
    const uint64_t chunk = std::min<uint64_t>(len, kPageSize - in_page);
    if (in_page == 0 && chunk == kPageSize) {
      pages_.erase(addr);  // whole page: drop it; reads return zeros
    } else if (const Page* page = FindPage(addr)) {
      std::memset(const_cast<Page*>(page)->data() + in_page, 0, static_cast<size_t>(chunk));
    }
    addr += chunk;
    len -= chunk;
  }
}

}  // namespace pmemsim
