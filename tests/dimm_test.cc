// Tests for the DIMM models: Optane read/write paths, amplification
// bookkeeping, read-after-persist stalls, buffer transitions; DRAM baseline.

#include <gtest/gtest.h>

#include "src/common/config.h"
#include "src/dimm/dram_dimm.h"
#include "src/dimm/optane_dimm.h"

namespace pmemsim {
namespace {

OptaneDimmConfig G1Dimm() { return G1Platform().optane; }
OptaneDimmConfig G2Dimm() { return G2Platform().optane; }

TEST(OptaneDimmTest, ColdReadFetchesWholeXPLine) {
  Counters c;
  OptaneDimm dimm(G1Dimm(), &c);
  const DimmReadResult r = dimm.Read(64, 1000, false);
  EXPECT_GT(r.complete_at, 1000 + G1Dimm().media_read_latency);
  EXPECT_EQ(c.media_read_bytes, kXPLineSize);
  EXPECT_EQ(c.imc_read_bytes, kCacheLineSize);
}

TEST(OptaneDimmTest, AdjacentLinesHitReadBuffer) {
  Counters c;
  OptaneDimm dimm(G1Dimm(), &c);
  dimm.Read(0, 1000, false);
  const Cycles media_after_first = c.media_read_bytes;
  const DimmReadResult r2 = dimm.Read(64, 100000, false);
  EXPECT_EQ(c.media_read_bytes, media_after_first);  // buffer hit
  EXPECT_EQ(r2.complete_at, 100000 + G1Dimm().buffer_hit_latency);
}

TEST(OptaneDimmTest, RereadRefetches) {
  // Exclusive read buffer: the same line read twice costs two media fetches.
  Counters c;
  OptaneDimm dimm(G1Dimm(), &c);
  dimm.Read(0, 1000, false);
  dimm.Read(0, 100000, false);
  EXPECT_EQ(c.media_read_bytes, 2 * kXPLineSize);
}

TEST(OptaneDimmTest, WriteIsAbsorbedWithoutMedia) {
  Counters c;
  OptaneDimm dimm(G1Dimm(), &c);
  const DimmWriteResult w = dimm.Write(0, 1000);
  EXPECT_EQ(w.visible_at, 1000 + G1Dimm().write_visible_delay);
  EXPECT_EQ(c.media_write_bytes, 0u);
  EXPECT_EQ(c.imc_write_bytes, kCacheLineSize);
}

TEST(OptaneDimmTest, ReadAfterPersistStallsUntilVisible) {
  Counters c;
  OptaneDimm dimm(G1Dimm(), &c);
  const DimmWriteResult w = dimm.Write(0, 1000);
  const DimmReadResult r = dimm.Read(0, 1200, /*ordered=*/true);
  EXPECT_EQ(r.stalled_for, w.visible_at - 1200);
  EXPECT_EQ(r.complete_at, w.visible_at + G1Dimm().buffer_hit_latency);
  EXPECT_EQ(c.rap_stalled_loads, 1u);
}

TEST(OptaneDimmTest, UnorderedReadHidesPartOfStall) {
  Counters c;
  OptaneDimm dimm(G1Dimm(), &c);
  dimm.Write(0, 1000);
  const DimmReadResult ordered = dimm.Read(0, 1200, true);
  Counters c2;
  OptaneDimm dimm2(G1Dimm(), &c2);
  dimm2.Write(0, 1000);
  const DimmReadResult unordered = dimm2.Read(0, 1200, false);
  EXPECT_EQ(ordered.stalled_for - unordered.stalled_for, G1Dimm().unordered_read_overlap);
}

TEST(OptaneDimmTest, OldPersistDoesNotStall) {
  Counters c;
  OptaneDimm dimm(G1Dimm(), &c);
  const DimmWriteResult w = dimm.Write(0, 1000);
  const DimmReadResult r = dimm.Read(0, w.visible_at + 1, true);
  EXPECT_EQ(r.stalled_for, 0u);
}

TEST(OptaneDimmTest, ReadToWriteBufferTransition) {
  Counters c;
  OptaneDimm dimm(G1Dimm(), &c);
  dimm.Read(0, 1000, false);      // XPLine into the read buffer
  dimm.Write(64, 2000);           // write to another line of the same XPLine
  EXPECT_EQ(c.read_write_transitions, 1u);
  EXPECT_TRUE(dimm.write_buffer().HoldsLine(128));  // whole XPLine absorbed
  EXPECT_FALSE(dimm.read_buffer().ContainsXPLine(0));
}

TEST(OptaneDimmTest, OnDemandRmwMergeServesLaterReads) {
  // §3.3 experiment B: write line 0, then read lines 1-3 — the first read
  // pulls the XPLine into the write buffer; later reads hit it.
  Counters c;
  OptaneDimm dimm(G1Dimm(), &c);
  dimm.Write(0, 1000);
  dimm.Read(64, 2000, false);
  EXPECT_EQ(c.media_read_bytes, kXPLineSize);  // one on-demand merge
  dimm.Read(128, 3000, false);
  dimm.Read(192, 4000, false);
  dimm.Read(64, 5000, false);  // write buffer is not exclusive: still a hit
  EXPECT_EQ(c.media_read_bytes, kXPLineSize);
}

TEST(OptaneDimmTest, SameLineStallOnlyOnG1) {
  OptaneDimmConfig g1 = G1Dimm();
  OptaneDimmConfig g2 = G2Dimm();
  Counters c1, c2;
  OptaneDimm d1(g1, &c1), d2(g2, &c2);
  d1.Write(0, 1000);
  d2.Write(0, 1000);
  EXPECT_GT(d1.SameLineStallUntil(0), 1000u);
  EXPECT_EQ(d2.SameLineStallUntil(0), 0u);
}

TEST(OptaneDimmTest, PartialEvictionCountsRmw) {
  Counters c;
  OptaneDimmConfig cfg = G1Dimm();
  cfg.periodic_full_writeback = false;
  OptaneDimm dimm(cfg, &c);
  // Overflow the partial capacity with single-line writes.
  for (uint64_t xp = 0; xp < 80; ++xp) {
    dimm.Write(xp * kXPLineSize, 1000 + xp);
  }
  EXPECT_GT(c.write_buffer_evictions, 0u);
  EXPECT_EQ(c.rmw_media_reads, c.write_buffer_evictions);
  EXPECT_EQ(c.media_write_bytes, c.write_buffer_evictions * kXPLineSize);
}

TEST(DramDimmTest, FlatLoadLatency) {
  Counters c;
  DramConfig cfg = G1Platform().dram;
  DramDimm dimm(cfg, &c);
  const DimmReadResult r = dimm.Read(0, 1000, false);
  EXPECT_EQ(r.complete_at, 1000 + cfg.load_latency);
  EXPECT_EQ(c.dram_read_bytes, kCacheLineSize);
}

TEST(DramDimmTest, RapShorterThanOptane) {
  Counters c;
  DramConfig cfg = G1Platform().dram;
  DramDimm dimm(cfg, &c);
  const DimmWriteResult w = dimm.Write(0, 1000);
  EXPECT_EQ(w.visible_at, 1000 + cfg.write_visible_delay);
  const DimmReadResult r = dimm.Read(0, 1001, true);
  EXPECT_EQ(r.stalled_for, w.visible_at - 1001);
  EXPECT_LT(cfg.write_visible_delay, G1Dimm().write_visible_delay / 4);
}

TEST(DramDimmTest, NoSameLineStall) {
  Counters c;
  DramDimm dimm(G1Platform().dram, &c);
  dimm.Write(0, 1000);
  EXPECT_EQ(dimm.SameLineStallUntil(0), 0u);
}

// Property: over any random mixed workload, media read/write bytes are
// multiples of the XPLine size and iMC bytes multiples of the cacheline size,
// with amplification bounded by 4 (the paper's §2.4 bound).
class DimmInvariantProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DimmInvariantProperty, AmplificationBounds) {
  Counters c;
  OptaneDimm dimm(G1Dimm(), &c);
  Rng rng(GetParam());
  Cycles now = 1000;
  for (int i = 0; i < 5000; ++i) {
    const Addr line = rng.NextBelow(256) * kCacheLineSize;
    if (rng.NextBelow(2) == 0) {
      dimm.Read(line, now, rng.NextBelow(2) == 0);
    } else {
      dimm.Write(line, now);
    }
    now += 50 + rng.NextBelow(400);
  }
  EXPECT_EQ(c.media_read_bytes % kXPLineSize, 0u);
  EXPECT_EQ(c.media_write_bytes % kXPLineSize, 0u);
  EXPECT_EQ(c.imc_read_bytes % kCacheLineSize, 0u);
  EXPECT_EQ(c.imc_write_bytes % kCacheLineSize, 0u);
  EXPECT_LE(c.WriteAmplification(), 4.0 + 1e-9);
  // RA counts on-demand RMW merges too, still bounded by 4 per 64 B read.
  EXPECT_LE(c.ReadAmplification(), 4.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DimmInvariantProperty, ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace pmemsim
