#include "src/workload/ycsb.h"

#include <cctype>
#include <cmath>

#include "src/common/check.h"
#include "src/workload/zipf.h"

namespace pmemsim {

const char* ServeOpName(ServeOp op) {
  switch (op) {
    case ServeOp::kRead:
      return "read";
    case ServeOp::kUpdate:
      return "update";
    case ServeOp::kInsert:
      return "insert";
    case ServeOp::kScan:
      return "scan";
    case ServeOp::kRmw:
      return "rmw";
  }
  return "?";
}

std::optional<YcsbMix> MixByName(const std::string& name) {
  if (name.size() != 1) {
    return std::nullopt;
  }
  switch (std::tolower(static_cast<unsigned char>(name[0]))) {
    case 'a':
      return YcsbMix{0.50, 0.50, 0, 0, 0};
    case 'b':
      return YcsbMix{0.95, 0.05, 0, 0, 0};
    case 'c':
      return YcsbMix{1.00, 0, 0, 0, 0};
    case 'd':
      return YcsbMix{0.95, 0, 0.05, 0, 0};
    case 'e':
      return YcsbMix{0, 0, 0.05, 0.95, 0};
    case 'f':
      return YcsbMix{0.50, 0, 0, 0, 0.50};
    default:
      return std::nullopt;
  }
}

MixSampler::MixSampler(const YcsbMix& mix, uint64_t seed) : rng_(seed) {
  const double shares[kServeOpCount] = {mix.read, mix.update, mix.insert, mix.scan, mix.rmw};
  double cum = 0.0;
  for (int i = 0; i < kServeOpCount; ++i) {
    PMEMSIM_CHECK(shares[i] >= 0.0);
    cum += shares[i];
    cum_[i] = cum;
  }
  PMEMSIM_CHECK(std::abs(cum - 1.0) < 1e-9);
  // Absorb rounding into the last band with a positive share, so a sum that
  // lands epsilon short of 1.0 can never draw a zero-share op.
  for (int i = kServeOpCount - 1; i >= 0; --i) {
    if (shares[i] > 0.0) {
      for (int j = i; j < kServeOpCount; ++j) {
        cum_[j] = 1.0;
      }
      break;
    }
  }
}

ServeOp MixSampler::Next() {
  const double u = rng_.NextDouble();
  for (int i = 0; i < kServeOpCount - 1; ++i) {
    if (u < cum_[i]) {
      return static_cast<ServeOp>(i);
    }
  }
  return static_cast<ServeOp>(kServeOpCount - 1);
}

PoissonArrivalGenerator::PoissonArrivalGenerator(double mean_interarrival_cycles, uint64_t seed)
    : mean_(mean_interarrival_cycles), rng_(seed) {
  PMEMSIM_CHECK(mean_ > 0.0);
}

double PoissonArrivalGenerator::NextInterarrival() {
  // Inverse-CDF sampling; NextDouble is in [0, 1), so 1-u is in (0, 1] and
  // the log is finite.
  return -mean_ * std::log(1.0 - rng_.NextDouble());
}

Cycles PoissonArrivalGenerator::Next() {
  t_ += NextInterarrival();
  return static_cast<Cycles>(t_);
}

std::vector<uint64_t> MakeLoadKeys(uint64_t count, uint64_t seed) {
  std::vector<uint64_t> keys(count);
  for (uint64_t i = 0; i < count; ++i) {
    keys[i] = i + 1;  // keys must be non-zero
  }
  Rng rng(seed);
  rng.Shuffle(keys);
  return keys;
}

std::vector<std::vector<uint64_t>> ShardKeys(const std::vector<uint64_t>& keys, uint32_t shards) {
  PMEMSIM_CHECK(shards > 0);
  std::vector<std::vector<uint64_t>> out(shards);
  const uint64_t per = keys.size() / shards;
  for (uint32_t s = 0; s < shards; ++s) {
    const uint64_t begin = s * per;
    const uint64_t end = s + 1 == shards ? keys.size() : begin + per;
    out[s].assign(keys.begin() + static_cast<ptrdiff_t>(begin),
                  keys.begin() + static_cast<ptrdiff_t>(end));
  }
  return out;
}

std::vector<uint64_t> MakeRequestKeys(const std::vector<uint64_t>& loaded, uint64_t count,
                                      KeyDistribution dist, uint64_t seed) {
  PMEMSIM_CHECK(!loaded.empty());
  std::vector<uint64_t> out;
  out.reserve(count);
  if (dist == KeyDistribution::kUniform) {
    Rng rng(seed);
    for (uint64_t i = 0; i < count; ++i) {
      out.push_back(loaded[rng.NextBelow(loaded.size())]);
    }
  } else {
    ZipfGenerator zipf(loaded.size(), 0.99, seed);
    for (uint64_t i = 0; i < count; ++i) {
      out.push_back(loaded[zipf.Next()]);
    }
  }
  return out;
}

}  // namespace pmemsim
