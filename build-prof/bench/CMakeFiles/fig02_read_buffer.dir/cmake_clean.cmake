file(REMOVE_RECURSE
  "CMakeFiles/fig02_read_buffer.dir/fig02_read_buffer.cc.o"
  "CMakeFiles/fig02_read_buffer.dir/fig02_read_buffer.cc.o.d"
  "fig02_read_buffer"
  "fig02_read_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_read_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
