// Tests for workload generation: load-key permutations, sharding, zipfian
// skew properties.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "src/workload/ycsb.h"
#include "src/workload/zipf.h"

namespace pmemsim {
namespace {

TEST(YcsbTest, LoadKeysArePermutationOfRange) {
  const auto keys = MakeLoadKeys(1000, 42);
  ASSERT_EQ(keys.size(), 1000u);
  std::set<uint64_t> s(keys.begin(), keys.end());
  EXPECT_EQ(s.size(), 1000u);
  EXPECT_EQ(*s.begin(), 1u);
  EXPECT_EQ(*s.rbegin(), 1000u);
}

TEST(YcsbTest, LoadKeysShuffled) {
  const auto keys = MakeLoadKeys(1000, 42);
  uint64_t ascending_runs = 0;
  for (size_t i = 1; i < keys.size(); ++i) {
    ascending_runs += keys[i] == keys[i - 1] + 1 ? 1 : 0;
  }
  EXPECT_LT(ascending_runs, 50u);  // nowhere near sorted
}

TEST(YcsbTest, DeterministicPerSeed) {
  EXPECT_EQ(MakeLoadKeys(100, 7), MakeLoadKeys(100, 7));
  EXPECT_NE(MakeLoadKeys(100, 7), MakeLoadKeys(100, 8));
}

TEST(YcsbTest, ShardsPartitionKeys) {
  const auto keys = MakeLoadKeys(1003, 1);
  const auto shards = ShardKeys(keys, 4);
  ASSERT_EQ(shards.size(), 4u);
  size_t total = 0;
  std::set<uint64_t> seen;
  for (const auto& shard : shards) {
    total += shard.size();
    seen.insert(shard.begin(), shard.end());
  }
  EXPECT_EQ(total, keys.size());
  EXPECT_EQ(seen.size(), keys.size());
}

TEST(YcsbTest, UniformRequestsCoverKeys) {
  const auto keys = MakeLoadKeys(100, 2);
  const auto reqs = MakeRequestKeys(keys, 10000, KeyDistribution::kUniform, 3);
  ASSERT_EQ(reqs.size(), 10000u);
  std::set<uint64_t> seen(reqs.begin(), reqs.end());
  EXPECT_GT(seen.size(), 95u);
  for (const uint64_t r : reqs) {
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 100u);
  }
}

TEST(ZipfTest, InRange) {
  ZipfGenerator zipf(1000, 0.99, 5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Next(), 1000u);
  }
}

TEST(ZipfTest, SkewConcentratesOnHotItems) {
  ZipfGenerator zipf(1000, 0.99, 5);
  uint64_t hot = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    hot += zipf.Next() < 10 ? 1 : 0;
  }
  // With theta=0.99 the top-1% of items draw a large share of requests.
  EXPECT_GT(static_cast<double>(hot) / n, 0.3);
}

TEST(ZipfTest, LowThetaApproachesUniform) {
  ZipfGenerator zipf(1000, 0.01, 6);
  uint64_t hot = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    hot += zipf.Next() < 10 ? 1 : 0;
  }
  EXPECT_LT(static_cast<double>(hot) / n, 0.05);
}

TEST(ZipfTest, HeadFrequenciesMatchTheory) {
  // Regression for the cached-threshold fast path: the shortcuts for ranks 0
  // and 1 must fire with exactly the Zipf head probabilities p(0) = 1/zeta(n)
  // and p(1) = 0.5^theta/zeta(n). A chi-squared statistic over the partition
  // {rank 0, rank 1, everything else} catches a miscomputed threshold (e.g.
  // a dropped zetan factor) far outside the noise floor.
  const uint64_t n = 1000;
  const double theta = 0.99;
  double zetan = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    zetan += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  const double p0 = 1.0 / zetan;
  const double p1 = std::pow(0.5, theta) / zetan;

  ZipfGenerator zipf(n, theta, 11);
  const int samples = 200000;
  double c0 = 0, c1 = 0, rest = 0;
  for (int i = 0; i < samples; ++i) {
    const uint64_t r = zipf.Next();
    if (r == 0) {
      ++c0;
    } else if (r == 1) {
      ++c1;
    } else {
      ++rest;
    }
  }
  const double e0 = samples * p0;
  const double e1 = samples * p1;
  const double er = samples * (1.0 - p0 - p1);
  const double chi2 = (c0 - e0) * (c0 - e0) / e0 + (c1 - e1) * (c1 - e1) / e1 +
                      (rest - er) * (rest - er) / er;
  // df=2; the 99.9th percentile is 13.8. A wrong threshold shifts chi2 into
  // the thousands, so 20 leaves margin against seed sensitivity.
  EXPECT_LT(chi2, 20.0) << "p0_obs=" << c0 / samples << " p0=" << p0
                        << " p1_obs=" << c1 / samples << " p1=" << p1;
}

TEST(ZipfTest, DeterministicPerSeed) {
  ZipfGenerator a(500, 0.8, 99);
  ZipfGenerator b(500, 0.8, 99);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next()) << i;
  }
}

TEST(ZipfTest, RankFrequencyMonotone) {
  ZipfGenerator zipf(100, 0.9, 7);
  std::vector<uint64_t> counts(100, 0);
  for (int i = 0; i < 200000; ++i) {
    ++counts[zipf.Next()];
  }
  // Aggregate over coarse buckets to tolerate sampling noise.
  uint64_t first = 0, mid = 0, tail = 0;
  for (int i = 0; i < 10; ++i) {
    first += counts[i];
  }
  for (int i = 40; i < 50; ++i) {
    mid += counts[i];
  }
  for (int i = 90; i < 100; ++i) {
    tail += counts[i];
  }
  EXPECT_GT(first, mid);
  EXPECT_GT(mid, tail);
}

}  // namespace
}  // namespace pmemsim
