// Quickstart: the pmemsim public API in one file.
//
//   $ ./build/examples/quickstart
//
// Builds the paper's G1 testbed (Xeon + one Optane DIMM), runs a few
// persistent stores and loads, and shows the two headline behaviours:
// asynchronous persists are cheap, but reading a just-persisted line stalls
// (read-after-persist), and the on-DIMM buffers make adjacent reads cheap.

#include <cstdio>

#include "src/core/platform.h"
#include "src/persist/barrier.h"

using namespace pmemsim;

int main() {
  // A simulated machine: CPU caches + iMC + one 128 GB Optane DIMM.
  std::unique_ptr<System> system = MakeG1System(/*optane_dimm_count=*/1);
  ThreadContext& cpu = system->CreateThread();
  SetPrefetchers(cpu, false, false, false);  // keep the buffer story legible

  // Reserve 1 MB of persistent memory (think: a pmem_map_file region).
  const PmRegion region = system->AllocatePm(MiB(1));
  std::printf("allocated %llu KB of PM at 0x%llx\n",
              static_cast<unsigned long long>(region.size / 1024),
              static_cast<unsigned long long>(region.base));

  // Store + persist a value the textbook way: store, clwb, fence. The mfence
  // variant also orders the following load after the flush (Algorithm 1).
  Cycles t0 = cpu.clock();
  PersistentStore64(cpu, region.base, 0xCAFEF00D, PersistMode::kClwbMfence);
  std::printf("persist(store+clwb+mfence) took %llu cycles\n",
              static_cast<unsigned long long>(cpu.clock() - t0));

  // Read it straight back: on G1, clwb invalidated the cacheline, and the
  // DIMM makes the load wait for the in-flight persist (the RAP effect).
  t0 = cpu.clock();
  const uint64_t value = cpu.Load64(region.base);
  std::printf("read-after-persist took %llu cycles (value 0x%llx)\n",
              static_cast<unsigned long long>(cpu.clock() - t0),
              static_cast<unsigned long long>(value));

  // A cold random read costs a full 256 B XPLine fetch from the media...
  t0 = cpu.clock();
  cpu.Load64(region.base + KiB(512));
  std::printf("cold media read took %llu cycles\n",
              static_cast<unsigned long long>(cpu.clock() - t0));

  // ...but its XPLine neighbours were pulled into the on-DIMM read buffer.
  cpu.hierarchy().InvalidateAll(region.base + KiB(512) + 64);  // dodge the CPU cache
  t0 = cpu.clock();
  cpu.Load64(region.base + KiB(512) + 64);
  std::printf("adjacent read (read-buffer hit) took %llu cycles\n",
              static_cast<unsigned long long>(cpu.clock() - t0));

  // Telemetry: what ipmwatch would have shown.
  std::printf("\ncounters: %s\n", system->counters().ToString().c_str());
  return 0;
}
