# Empty compiler generated dependencies file for ablation_persistency.
# This may be replaced when dependencies are built.
