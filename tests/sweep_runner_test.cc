// Tests for the parallel sweep runner: submission-order emission at any job
// count, byte-identical --stats_json output, and per-point failure isolation.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/sweep_runner.h"
#include "src/common/check.h"

namespace pmemsim_bench {
namespace {

// Builds Flags from a convenient literal list (Flags wants argc/argv).
Flags MakeFlags(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  static std::vector<char*> argv;
  argv.clear();
  argv.push_back(const_cast<char*>("test"));
  for (std::string& a : storage) {
    argv.push_back(a.data());
  }
  return Flags(static_cast<int>(argv.size()), argv.data());
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Runs a 12-point sweep whose points busy-work different amounts (so that
// with several workers the completion order differs from submission order)
// and returns {captured stdout, stats_json contents, exit code}.
struct SweepResult {
  std::string out;
  std::string stats;
  int rc;
};

SweepResult RunStaggeredSweep(uint32_t jobs, const std::string& stats_path) {
  const Flags flags =
      MakeFlags({"--jobs=" + std::to_string(jobs), "--stats_json=" + stats_path});
  BenchReport report(flags, "sweep_runner_test");
  SweepRunner runner(flags);
  for (int i = 0; i < 12; ++i) {
    runner.Add("p" + std::to_string(i), [i](SweepPoint& point) {
      // Later points finish first: descending busy-work per index.
      volatile uint64_t sink = 0;
      for (uint64_t k = 0; k < (12u - static_cast<uint64_t>(i)) * 20000u; ++k) {
        sink = sink + k;
      }
      point.Printf("point,%d,%llu\n", i, static_cast<unsigned long long>(sink % 7));
      point.AddRow().Set("index", i).Set("label", "p" + std::to_string(i));
    });
  }
  testing::internal::CaptureStdout();
  const int rc = runner.Finish(report);
  SweepResult r;
  r.out = testing::internal::GetCapturedStdout();
  r.stats = ReadFile(stats_path);
  r.rc = rc;
  return r;
}

TEST(SweepRunnerTest, ParallelOutputMatchesSerialByteForByte) {
  const std::string dir = testing::TempDir();
  const SweepResult serial = RunStaggeredSweep(1, dir + "/sweep_j1.json");
  const SweepResult sharded = RunStaggeredSweep(4, dir + "/sweep_j4.json");
  EXPECT_EQ(serial.rc, 0);
  EXPECT_EQ(sharded.rc, 0);
  EXPECT_FALSE(serial.out.empty());
  EXPECT_EQ(serial.out, sharded.out);
  EXPECT_FALSE(serial.stats.empty());
  EXPECT_EQ(serial.stats, sharded.stats);
  // Submission order, not completion order: p0 (slowest) still prints first.
  EXPECT_EQ(serial.out.rfind("point,0,", 0), 0u);
}

TEST(SweepRunnerTest, ThrowingPointIsIsolated) {
  const Flags flags = MakeFlags({"--jobs=4"});
  BenchReport report(flags, "sweep_runner_test");
  SweepRunner runner(flags);
  int survivors = 0;
  runner.Add("ok_before", [&](SweepPoint& point) {
    point.Printf("ok_before\n");
    ++survivors;
  });
  runner.Add("boom", [](SweepPoint&) { throw std::runtime_error("deliberate"); });
  runner.Add("ok_after", [&](SweepPoint& point) {
    point.Printf("ok_after\n");
    ++survivors;
  });
  testing::internal::CaptureStdout();
  testing::internal::CaptureStderr();
  const int rc = runner.Finish(report);
  const std::string out = testing::internal::GetCapturedStdout();
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(rc, 0);
  EXPECT_EQ(survivors, 2);  // the failure did not stop the sweep
  EXPECT_NE(out.find("ok_before\n"), std::string::npos);
  EXPECT_NE(out.find("error,boom\n"), std::string::npos);
  EXPECT_NE(out.find("ok_after\n"), std::string::npos);
  EXPECT_NE(err.find("deliberate"), std::string::npos);
}

TEST(SweepRunnerTest, CheckFailureBecomesErrorRowNotAbort) {
  const Flags flags = MakeFlags({"--jobs=2"});
  BenchReport report(flags, "sweep_runner_test");
  SweepRunner runner(flags);
  runner.Add("check_fails", [](SweepPoint&) { PMEMSIM_CHECK_MSG(false, "tripped"); });
  runner.Add("fine", [](SweepPoint& point) { point.Printf("fine\n"); });
  testing::internal::CaptureStdout();
  testing::internal::CaptureStderr();
  const int rc = runner.Finish(report);
  const std::string out = testing::internal::GetCapturedStdout();
  testing::internal::GetCapturedStderr();
  EXPECT_NE(rc, 0);
  EXPECT_NE(out.find("error,check_fails\n"), std::string::npos);
  EXPECT_NE(out.find("fine\n"), std::string::npos);
}

TEST(SweepRunnerTest, JobsZeroClampsToOne) {
  const Flags flags = MakeFlags({"--jobs=0"});
  SweepRunner runner(flags);
  EXPECT_EQ(runner.jobs(), 1u);
}

TEST(SweepRunnerTest, UnqueriedEngineThreadsFlagExitsTwo) {
  // --engine_threads parallelizes WITHIN one sweep point and only the
  // partitioned serving engine implements it. Benches that never query the
  // flag (every fig*/ablation_* sweep) must reject it loudly at exit 2 via
  // RejectUnknown, not silently run single-domain and report wrong context.
  const Flags flags = MakeFlags({"--jobs=2", "--engine_threads=4"});
  SweepRunner runner(flags);  // queries --jobs; --engine_threads stays unknown
  EXPECT_EXIT(flags.RejectUnknown(), testing::ExitedWithCode(2),
              "unrecognized flag '--engine_threads'");
}

}  // namespace
}  // namespace pmemsim_bench
