# Empty dependencies file for perf_hotpath.
# This may be replaced when dependencies are built.
