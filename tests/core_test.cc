// Tests for the System facade and the telemetry layer.

#include <gtest/gtest.h>

#include "src/core/platform.h"
#include "src/trace/counters.h"

namespace pmemsim {
namespace {

TEST(SystemTest, RegionsDoNotOverlap) {
  auto system = MakeG1System(1);
  std::vector<PmRegion> regions;
  for (int i = 0; i < 20; ++i) {
    regions.push_back(system->AllocatePm(1 + static_cast<uint64_t>(i) * 100));
    regions.push_back(system->AllocateDram(1 + static_cast<uint64_t>(i) * 77));
  }
  for (size_t a = 0; a < regions.size(); ++a) {
    for (size_t b = a + 1; b < regions.size(); ++b) {
      const bool disjoint =
          regions[a].end() <= regions[b].base || regions[b].end() <= regions[a].base;
      EXPECT_TRUE(disjoint) << a << " vs " << b;
    }
  }
}

TEST(SystemTest, PmAndDramLiveInDistinctSpaces) {
  auto system = MakeG1System(1);
  const PmRegion pm = system->AllocatePm(KiB(4));
  const PmRegion dram = system->AllocateDram(KiB(4));
  EXPECT_EQ(pm.kind, MemoryKind::kOptane);
  EXPECT_EQ(dram.kind, MemoryKind::kDram);
  EXPECT_EQ(MemoryController::KindOf(pm.base), MemoryKind::kOptane);
  EXPECT_EQ(MemoryController::KindOf(dram.base), MemoryKind::kDram);
}

TEST(SystemTest, AlignmentHonored) {
  auto system = MakeG1System(1);
  system->AllocatePm(100);  // misalign the bump pointer
  const PmRegion r = system->AllocatePm(KiB(1), kXPLineSize);
  EXPECT_TRUE(IsXPLineAligned(r.base));
  const PmRegion page = system->AllocatePm(KiB(1), kPageSize);
  EXPECT_EQ(PageBase(page.base), page.base);
}

TEST(SystemTest, ThreadsShareDataButNotClocks) {
  auto system = MakeG1System(1);
  ThreadContext& a = system->CreateThread();
  ThreadContext& b = system->CreateThread();
  const PmRegion region = system->AllocatePm(KiB(4));
  a.Store64(region.base, 0x1234);
  EXPECT_EQ(b.Load64(region.base), 0x1234u);  // shared backing store
  a.AddCompute(10000);
  EXPECT_NE(a.clock(), b.clock());  // private clocks
}

TEST(SystemTest, ResetMicroarchKeepsData) {
  auto system = MakeG1System(1);
  ThreadContext& ctx = system->CreateThread();
  const PmRegion region = system->AllocatePm(KiB(4));
  ctx.Store64(region.base, 77);
  system->ResetMicroarchState();
  EXPECT_EQ(ctx.Load64(region.base), 77u);
  EXPECT_EQ(ctx.last_access().hit_level, 0);  // caches were dropped
}

TEST(CountersTest, DeltaIsolatesPhases) {
  auto system = MakeG1System(1);
  ThreadContext& ctx = system->CreateThread();
  SetPrefetchers(ctx, false, false, false);
  const PmRegion region = system->AllocatePm(KiB(16));
  ctx.LoadLine(region.base);
  CounterDelta delta(&system->counters());
  ctx.LoadLine(region.base + KiB(8));
  const Counters d = delta.Delta();
  EXPECT_EQ(d.imc_read_bytes, kCacheLineSize);
  EXPECT_EQ(d.media_read_bytes, kXPLineSize);
}

TEST(CountersTest, ArithmeticCoversEveryField) {
  Counters a;
  a.imc_read_bytes = 10;
  a.rap_stall_cycles = 5;
  a.dram_write_bytes = 3;
  Counters b = a;
  b += a;
  EXPECT_EQ(b.imc_read_bytes, 20u);
  EXPECT_EQ(b.rap_stall_cycles, 10u);
  EXPECT_EQ(b.dram_write_bytes, 6u);
  const Counters d = b - a;
  EXPECT_EQ(d.imc_read_bytes, 10u);
  EXPECT_EQ(d.dram_write_bytes, 3u);
}

TEST(CountersTest, RatioHelpers) {
  Counters c;
  c.imc_write_bytes = 64;
  c.media_write_bytes = 256;
  EXPECT_DOUBLE_EQ(c.WriteAmplification(), 4.0);
  c.imc_read_bytes = 128;
  c.media_read_bytes = 256;
  EXPECT_DOUBLE_EQ(c.ReadAmplification(), 2.0);
  c.write_buffer_hits = 3;
  c.write_buffer_misses = 1;
  EXPECT_DOUBLE_EQ(c.WriteBufferHitRatio(), 0.75);
  const Counters zero;
  EXPECT_EQ(zero.WriteAmplification(), 0.0);  // no division by zero
}

TEST(PlatformTest, PresetFactories) {
  EXPECT_EQ(MakeG1System()->config().generation, Generation::kG1);
  EXPECT_EQ(MakeG2System()->config().generation, Generation::kG2);
  EXPECT_EQ(MakeSystem(Generation::kG2, 3)->mc().optane_dimm_count(), 3u);
  EXPECT_TRUE(G2EadrPlatform().eadr_enabled);
  EXPECT_FALSE(G2Platform().eadr_enabled);
}

}  // namespace
}  // namespace pmemsim
