file(REMOVE_RECURSE
  "CMakeFiles/buffers_test.dir/buffers_test.cc.o"
  "CMakeFiles/buffers_test.dir/buffers_test.cc.o.d"
  "buffers_test"
  "buffers_test.pdb"
  "buffers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
