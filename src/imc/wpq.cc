#include "src/imc/wpq.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/trace/trace_events.h"

namespace pmemsim {

Wpq::Wpq(const WpqConfig& config, Counters* counters) : config_(config), counters_(counters) {
  PMEMSIM_CHECK(config.entries > 0);
  PMEMSIM_CHECK(counters_ != nullptr);
}

Wpq::AcceptResult Wpq::Accept(Cycles now, Cycles dimm_backpressure_until) {
  // Retire entries that have drained by now.
  while (!inflight_.empty() && inflight_.front() <= now) {
    inflight_.pop_front();
  }

  Cycles start = now;
  if (inflight_.size() >= config_.entries) {
    // Queue full: the store waits for the oldest entry to leave. The entry
    // retires at its drain time (not now): popping it early would make
    // OccupancyAt and the wpq_occupancy trace under-report during the stall.
    const Cycles wait_until = inflight_.front();
    counters_->wpq_stall_cycles += wait_until - start;
    start = wait_until;
    while (!inflight_.empty() && inflight_.front() <= start) {
      inflight_.pop_front();
    }
  }

  AcceptResult r;
  r.accepted_at = start + config_.accept_latency;

  const Cycles drain_start =
      std::max({r.accepted_at, drain_free_at_, dimm_backpressure_until});
  r.drained_at = drain_start + config_.drain_latency;
  drain_free_at_ = r.drained_at;
  inflight_.push_back(r.drained_at);
  if (trace_track_ != 0) {
    TraceEmitter::Global().CounterEvent(trace_track_, "wpq_occupancy", now,
                                        static_cast<double>(inflight_.size()));
  }
  return r;
}

void Wpq::DelayDrain(Cycles until) { drain_free_at_ = std::max(drain_free_at_, until); }

size_t Wpq::OccupancyAt(Cycles now) const {
  size_t n = 0;
  for (const Cycles t : inflight_) {
    if (t > now) {
      ++n;
    }
  }
  return n;
}

void Wpq::Reset() {
  inflight_.clear();
  drain_free_at_ = 0;
}

}  // namespace pmemsim
