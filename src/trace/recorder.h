// Trace record substrate: captures the exact operation stream a simulated
// run drives through its ThreadContexts, as a compact versioned binary file
// (".pmtrace") that the replayer can feed back through the full access path.
//
// The format is the contract (see DESIGN.md §8 for the byte-level layout and
// scripts/check_trace.py for the independent Python decoder):
//
//   file    := header segment* footer
//   header  := magic "pmtrace\0" | u32 version | u64 platform fingerprint |
//              platform name | generation | eadr | dimm count | scenario name |
//              u32 segment count
//   segment := label | metadata k/v strings | per-thread NUMA nodes |
//              u64 record count | u64 payload bytes | payload
//   payload := records in recorded (global execution) order, each
//              u8 op | varint thread | [zigzag addr delta] | [varint aux] |
//              varint clock delta — address and clock deltas are relative to
//              the previous record of the *same thread*, so per-thread clocks
//              are monotone by construction.
//   footer  := u64 total records | "EOTR"
//
// Records carry the clock *after* the op retired on its thread: the replayer
// verifies every replayed op lands on the recorded clock, which is what makes
// a replayed run trustworthy as a byte-identical reproduction.
//
// A TraceRecorder hangs off ThreadContext behind one pointer test (the same
// pattern as the attribution collector): with no recorder attached the whole
// subsystem costs one branch per operation.

#ifndef SRC_TRACE_RECORDER_H_
#define SRC_TRACE_RECORDER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/config.h"
#include "src/common/types.h"

namespace pmemsim {

// Current .pmtrace format version. Bump on any layout change; the parser
// rejects other versions (never guesses).
inline constexpr uint32_t kTraceFormatVersion = 1;

// Operation kinds. Values are part of the on-disk format — append only.
enum class TraceOp : uint8_t {
  kLoad64 = 0,
  kLoadLine = 1,
  kLoadNoPrefetch = 2,
  kStore64 = 3,
  kStoreLine = 4,
  kRead = 5,        // aux = byte length
  kWrite = 6,       // aux = byte length
  kNtStore64 = 7,
  kNtStoreLine = 8,
  kNtWrite = 9,     // aux = byte length
  kClwb = 10,
  kClflushopt = 11,
  kSfence = 12,
  kMfence = 13,
  kStreamCopy = 14,  // addr = PM XPLine, aux = DRAM bounce buffer address
  kLoadMulti = 15,   // aux = address count; payload carries the address list
  kCompute = 16,     // aux = unscaled compute cycles
  kMarker = 17,      // aux = marker id (phase boundary; replay fires a callback)
  kOpCount = 18,
};

bool TraceOpHasAddr(TraceOp op);
bool TraceOpHasAux(TraceOp op);
const char* TraceOpName(TraceOp op);

// One recorded operation. `clock` is the issuing thread's clock after the op.
struct TraceRecord {
  TraceOp op = TraceOp::kSfence;
  uint32_t thread = 0;
  Addr addr = 0;
  uint64_t aux = 0;
  Cycles clock = 0;
  std::vector<Addr> multi;  // kLoadMulti only: the parallel-load address list

  bool operator==(const TraceRecord& rhs) const {
    return op == rhs.op && thread == rhs.thread && addr == rhs.addr && aux == rhs.aux &&
           clock == rhs.clock && multi == rhs.multi;
  }
};

// One captured run on one System: the global-order record stream plus the
// thread table and the harness metadata needed to rebuild the stats row.
struct TraceSegment {
  std::string label;
  std::vector<std::pair<std::string, std::string>> meta;
  std::vector<NodeId> thread_nodes;  // index = thread id used in records
  std::vector<TraceRecord> records;  // recorded (global execution) order

  // Metadata lookup; nullptr when the key is absent.
  const std::string* FindMeta(const std::string& key) const;
};

struct TraceFileHeader {
  uint32_t version = kTraceFormatVersion;
  uint64_t fingerprint = 0;  // PlatformFingerprint() of the recording machine
  std::string platform_name;
  Generation generation = Generation::kG1;
  bool eadr = false;
  uint32_t dimm_count = 1;
  std::string scenario;
};

// A parsed (or to-be-written) trace file.
struct TraceFile {
  TraceFileHeader header;
  std::vector<TraceSegment> segments;

  uint64_t TotalRecords() const;

  // Serializes to the byte format above. Aborts (PMEMSIM_CHECK) on internal
  // inconsistencies such as a record naming a thread outside the table.
  std::string Serialize() const;
  bool WriteTo(const std::string& path, std::string* error) const;

  // Strict parse: returns false (with a message naming the offending offset)
  // on a bad magic, an unsupported version, any truncation, or any
  // out-of-bounds field. Never reads past `bytes`.
  static bool Parse(const std::string& bytes, TraceFile* out, std::string* error);
  static bool Load(const std::string& path, TraceFile* out, std::string* error);
};

// Stable 64-bit digest of everything that shapes replay timing: the platform
// preset's structural and latency constants plus the DIMM population. Two
// machines replay each other's traces only when these match exactly.
uint64_t PlatformFingerprint(const PlatformConfig& config, uint32_t dimm_count);

// Collects the operation stream of one System run. Threads are declared once
// (System::SetTraceRecorder does this) and then append records through the
// ThreadContext hooks.
class TraceRecorder {
 public:
  // Declares `tid` (dense, starting at 0) running on `node`. Idempotent.
  void DeclareThread(uint32_t tid, NodeId node);

  void Record(uint32_t tid, TraceOp op, Addr addr, uint64_t aux, Cycles clock);
  void RecordMulti(uint32_t tid, const Addr* addrs, size_t count, Cycles clock);

  uint64_t record_count() const { return records_.size(); }
  uint32_t thread_count() const { return static_cast<uint32_t>(thread_nodes_.size()); }

  // Moves the accumulated stream out as a segment, leaving the recorder empty
  // (thread declarations are kept, so a recorder can produce phase-separated
  // segments from one run).
  TraceSegment Take(std::string label, std::vector<std::pair<std::string, std::string>> meta);

 private:
  std::vector<NodeId> thread_nodes_;
  std::vector<TraceRecord> records_;
};

}  // namespace pmemsim

#endif  // SRC_TRACE_RECORDER_H_
