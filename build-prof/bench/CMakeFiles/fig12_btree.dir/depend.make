# Empty dependencies file for fig12_btree.
# This may be replaced when dependencies are built.
