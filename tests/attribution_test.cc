// Latency-attribution tests: the conservation identity (per-stage cycle
// totals sum exactly to end-to-end latency, which sums exactly to the clock
// advance of the recorded operations), remainder crediting, and the JSON /
// critical-path renderings.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/core/platform.h"
#include "src/trace/attribution.h"
#include "src/trace/json.h"

namespace pmemsim {
namespace {

TEST(Attribution, RemainderIsCreditedToCore) {
  AttributionCollector attr;
  AttributionCollector::StageDurations stages;
  stages.v[AttributionCollector::kMediaRead] = 60;
  stages.v[AttributionCollector::kAitLookup] = 10;
  attr.RecordAccess(AttributionCollector::kLoad, 100, stages);

  EXPECT_EQ(attr.access_count(), 1u);
  EXPECT_EQ(attr.end_to_end_total(), 100u);
  EXPECT_EQ(attr.stage_total(AttributionCollector::kMediaRead), 60u);
  EXPECT_EQ(attr.stage_total(AttributionCollector::kAitLookup), 10u);
  // The unattributed 30 cycles land in core, so the sum conserves exactly.
  EXPECT_EQ(attr.stage_total(AttributionCollector::kCore), 30u);
  EXPECT_EQ(attr.StageTotalSum(), attr.end_to_end_total());
}

TEST(Attribution, AsyncAcceptStaysOutsideConservation) {
  AttributionCollector attr;
  attr.RecordAccess(AttributionCollector::kNtStore, 10, {});
  attr.RecordAsyncAccept(500);
  EXPECT_EQ(attr.end_to_end_total(), 10u);
  EXPECT_EQ(attr.StageTotalSum(), 10u);
  EXPECT_EQ(attr.async_accept_hist().count(), 1u);
  EXPECT_EQ(attr.async_accept_hist().Max(), 500u);
}

// The identity the module exists for: drive a mixed trace through a real G1
// system and check cycles are conserved at both levels — stages vs end-to-end
// per the collector, and recorded end-to-end vs the thread's clock advance
// (every op used here records exactly its clock advance).
TEST(Attribution, MixedTraceConservesCyclesExactly) {
  auto system = MakeG1System(1);
  AttributionCollector attr;
  system->SetAttribution(&attr);
  ThreadContext& ctx = system->CreateThread();
  const PmRegion region = system->AllocatePm(KiB(512), kXPLineSize);
  const uint64_t lines = region.size / kCacheLineSize;

  const Cycles start = ctx.clock();
  uint64_t ops = 0;
  uint64_t sink = 0;
  for (uint64_t i = 0; i < 400; ++i) {
    const Addr a = region.At(((i * 7) % lines) * kCacheLineSize);
    switch (i % 5) {
      case 0:
        sink += ctx.Load64(a);
        ops += 1;
        break;
      case 1:
        ctx.Store64(a, i);
        ctx.Clwb(a);
        ctx.Sfence();
        ops += 3;
        break;
      case 2:
        ctx.NtStore64(a, i);
        ctx.Sfence();
        ops += 2;
        break;
      case 3:
        ctx.Store64(a, i);
        ctx.Clflushopt(a);
        ctx.Mfence();
        ops += 3;
        break;
      case 4:
        sink += ctx.Load64(a);
        ops += 1;
        break;
    }
  }
  (void)sink;

  // Every operation recorded exactly once.
  EXPECT_EQ(attr.access_count(), ops);
  uint64_t per_op = 0;
  for (int op = 0; op < AttributionCollector::kOpCount; ++op) {
    per_op += attr.op_hist(static_cast<AttributionCollector::Op>(op)).count();
  }
  EXPECT_EQ(per_op, ops);

  // Conservation level 1: stage totals sum to recorded end-to-end, exactly.
  EXPECT_EQ(attr.StageTotalSum(), attr.end_to_end_total());
  // Conservation level 2: recorded end-to-end sums to the clock advance of
  // the trace, exactly — no simulated cycle is double-counted or dropped.
  EXPECT_EQ(attr.end_to_end_total(), static_cast<uint64_t>(ctx.clock() - start));

  // The trace exercised the memory side: media reads, buffer service and
  // WPQ waits must all have accumulated cycles.
  EXPECT_GT(attr.stage_total(AttributionCollector::kMediaRead), 0u);
  EXPECT_GT(attr.stage_total(AttributionCollector::kReadBuffer), 0u);
  EXPECT_GT(attr.stage_total(AttributionCollector::kWpqWait), 0u);
  EXPECT_GT(attr.async_accept_hist().count(), 0u);
}

TEST(Attribution, JsonSharesSumToOneAndReconcile) {
  auto system = MakeG1System(1);
  AttributionCollector attr;
  system->SetAttribution(&attr);
  ThreadContext& ctx = system->CreateThread();
  const PmRegion region = system->AllocatePm(KiB(64), kXPLineSize);
  for (uint64_t i = 0; i < 200; ++i) {
    const Addr a = region.At((i * kCacheLineSize) % region.size);
    ctx.Store64(a, i);
    ctx.Clwb(a);
    ctx.Sfence();
  }

  JsonValue v;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(attr.ToJson(), &v, &error)) << error;
  EXPECT_EQ(v.Find("accesses")->AsUint(), attr.access_count());
  EXPECT_EQ(v.Find("end_to_end_total")->AsUint(), attr.end_to_end_total());
  EXPECT_EQ(v.Find("stage_total_sum")->AsUint(), attr.StageTotalSum());

  // Only stages that accumulated cycles appear; omitted means exactly zero,
  // so the emitted totals/shares still reconcile with the global sums.
  const JsonValue* stages = v.Find("stages");
  ASSERT_NE(stages, nullptr);
  uint64_t total = 0;
  double share = 0.0;
  for (int s = 0; s < AttributionCollector::kStageCount; ++s) {
    const auto stage_id = static_cast<AttributionCollector::Stage>(s);
    const char* name = AttributionCollector::StageName(stage_id);
    const JsonValue* stage = stages->Find(name);
    if (stage == nullptr) {
      EXPECT_EQ(attr.stage_total(stage_id), 0u) << name;
      continue;
    }
    EXPECT_EQ(stage->Find("total_cycles")->AsUint(), attr.stage_total(stage_id)) << name;
    total += stage->Find("total_cycles")->AsUint();
    share += stage->Find("share")->AsDouble();
    // A present stage always carries a populated percentile histogram.
    const JsonValue* hist = stage->Find("hist");
    ASSERT_NE(hist, nullptr) << name;
    EXPECT_GT(hist->Find("count")->AsUint(), 0u) << name;
    EXPECT_NE(hist->Find("p50")->type, JsonValue::Type::kNull) << name;
  }
  EXPECT_EQ(total, attr.end_to_end_total());
  EXPECT_NEAR(share, 1.0, 1e-9);

  const JsonValue* async = v.Find("async");
  ASSERT_NE(async, nullptr);
  ASSERT_NE(async->Find("wpq_accept"), nullptr);

  // The critical-path rendering names the dominant stages.
  const std::string table = attr.CriticalPathTable();
  EXPECT_NE(table.find("stage"), std::string::npos);
  EXPECT_NE(table.find("core"), std::string::npos);
  EXPECT_NE(table.find("wpq_accept"), std::string::npos);
}

TEST(Attribution, CollectorAbsentMeansNoRecording) {
  // The default path: no collector installed. Nothing to assert about the
  // collector itself — this guards that a normal run doesn't require one.
  auto system = MakeG1System(1);
  ThreadContext& ctx = system->CreateThread();
  const PmRegion region = system->AllocatePm(KiB(4), kXPLineSize);
  ctx.Store64(region.At(0), 1);
  ctx.Clwb(region.At(0));
  ctx.Sfence();
  EXPECT_GT(ctx.clock(), 0u);

  // Installing a collector mid-run starts recording from that point only.
  AttributionCollector attr;
  system->SetAttribution(&attr);
  const Cycles t0 = ctx.clock();
  (void)ctx.Load64(region.At(0));
  EXPECT_EQ(attr.access_count(), 1u);
  EXPECT_EQ(attr.end_to_end_total(), static_cast<uint64_t>(ctx.clock() - t0));
}

}  // namespace
}  // namespace pmemsim
