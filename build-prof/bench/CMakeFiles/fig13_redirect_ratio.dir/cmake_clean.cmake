file(REMOVE_RECURSE
  "CMakeFiles/fig13_redirect_ratio.dir/fig13_redirect_ratio.cc.o"
  "CMakeFiles/fig13_redirect_ratio.dir/fig13_redirect_ratio.cc.o.d"
  "fig13_redirect_ratio"
  "fig13_redirect_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_redirect_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
