// Deterministic, fast pseudo-random number generation.
//
// Every stochastic choice in the simulator (write-buffer random eviction,
// workload key orders, shuffles) draws from one of these generators so that
// runs are reproducible from a single seed.

#ifndef SRC_COMMON_RANDOM_H_
#define SRC_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pmemsim {

// SplitMix64: used for seeding and for cheap stateless mixing.
uint64_t SplitMix64(uint64_t& state);

// Stateless 64-bit finalizer (useful as a hash).
uint64_t Mix64(uint64_t x);

// xoshiro256**: the simulator's workhorse generator.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  uint64_t Next();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace pmemsim

#endif  // SRC_COMMON_RANDOM_H_
