file(REMOVE_RECURSE
  "CMakeFiles/fig04_write_buffer_hit.dir/fig04_write_buffer_hit.cc.o"
  "CMakeFiles/fig04_write_buffer_hit.dir/fig04_write_buffer_hit.cc.o.d"
  "fig04_write_buffer_hit"
  "fig04_write_buffer_hit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_write_buffer_hit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
