file(REMOVE_RECURSE
  "CMakeFiles/ablation_persistency.dir/ablation_persistency.cc.o"
  "CMakeFiles/ablation_persistency.dir/ablation_persistency.cc.o.d"
  "ablation_persistency"
  "ablation_persistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_persistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
