# Empty dependencies file for datastores_ext_test.
# This may be replaced when dependencies are built.
