file(REMOVE_RECURSE
  "CMakeFiles/pmemsim_bench_util.dir/sweep_runner.cc.o"
  "CMakeFiles/pmemsim_bench_util.dir/sweep_runner.cc.o.d"
  "libpmemsim_bench_util.a"
  "libpmemsim_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemsim_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
