#include "src/trace/sampler.h"

#include "src/common/check.h"
#include "src/trace/json.h"

namespace pmemsim {

Sampler::Sampler(const Counters* counters, Cycles interval_cycles, Cycles origin)
    : counters_(counters), interval_(interval_cycles), delta_(counters) {
  PMEMSIM_CHECK(counters != nullptr);
  PMEMSIM_CHECK_MSG(interval_cycles > 0, "sample interval must be positive");
  last_boundary_ = origin;
  next_boundary_ = origin + interval_;
}

void Sampler::Emit(Cycles t_end, bool partial) {
  if (samples_.size() >= kMaxSamples) {
    ++dropped_;
    // The delta still rebases so later samples (if the cap is ever raised)
    // and SumOfDeltas stay consistent with what was kept: dropped intervals
    // are simply missing from the partition, which the owner can detect via
    // dropped_samples().
    delta_.Rebase();
    last_boundary_ = t_end;
    ++index_;
    return;
  }
  Sample s;
  s.index = index_++;
  s.t_begin = last_boundary_;
  s.t_end = t_end;
  s.partial = partial;
  s.delta = delta_.Delta();
  delta_.Rebase();
  if (gauge_fn_) {
    s.gauges = gauge_fn_(t_end);
  }
  samples_.push_back(s);
  if (on_sample_) {
    on_sample_(samples_.back());
  }
  last_boundary_ = t_end;
}

void Sampler::AdvanceTo(Cycles now) {
  while (now >= next_boundary_) {
    Emit(next_boundary_, /*partial=*/false);
    next_boundary_ += interval_;
  }
}

void Sampler::Finalize(Cycles end) {
  PMEMSIM_CHECK_MSG(!finalized_, "Sampler::Finalize called twice");
  AdvanceTo(end);
  // Close the open interval if it holds any time or residual counter deltas
  // (events can land after the last AdvanceTo observation).
  const Counters residual = delta_.Delta();
  const Counters zero;
  if (end > last_boundary_ || residual != zero) {
    Emit(end > last_boundary_ ? end : last_boundary_, /*partial=*/true);
  }
  finalized_ = true;
}

Counters Sampler::SumOfDeltas() const {
  Counters sum;
  for (const Sample& s : samples_) {
    sum += s.delta;
  }
  return sum;
}

void Sampler::ToJson(JsonWriter& w) const {
  w.BeginArray();
  for (const Sample& s : samples_) {
    w.BeginObject();
    w.Key("index").Value(s.index);
    w.Key("t_begin").Value(static_cast<uint64_t>(s.t_begin));
    w.Key("t_end").Value(static_cast<uint64_t>(s.t_end));
    w.Key("partial").Value(s.partial);
    w.Key("delta");
    s.delta.ToJson(w);
    w.Key("gauges").BeginObject();
    w.Key("wpq_occupancy").Value(s.gauges.wpq_occupancy);
    w.Key("read_buffer_entries").Value(s.gauges.read_buffer_entries);
    w.Key("write_buffer_entries").Value(s.gauges.write_buffer_entries);
    w.Key("serve_queue_depth").Value(s.gauges.serve_queue_depth);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
}

std::string Sampler::ToJson() const {
  JsonWriter w;
  ToJson(w);
  return w.str();
}

}  // namespace pmemsim
