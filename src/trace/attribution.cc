#include "src/trace/attribution.h"

#include <algorithm>
#include <cstdio>

#include "src/common/check.h"
#include "src/trace/json.h"

namespace pmemsim {

const char* AttributionCollector::OpName(Op op) {
  switch (op) {
    case kLoad:
      return "load";
    case kStore:
      return "store";
    case kNtStore:
      return "ntstore";
    case kFlush:
      return "flush";
    case kFence:
      return "fence";
    default:
      return "?";
  }
}

const char* AttributionCollector::StageName(Stage stage) {
  switch (stage) {
    case kCore:
      return "core";
    case kL1Hit:
      return "l1_hit";
    case kL2Hit:
      return "l2_hit";
    case kL3Hit:
      return "l3_hit";
    case kImcTransit:
      return "imc_transit";
    case kRapStall:
      return "rap_stall";
    case kReadBuffer:
      return "read_buffer";
    case kAitLookup:
      return "ait_lookup";
    case kMediaRead:
      return "media_read";
    case kDram:
      return "dram";
    case kWpqWait:
      return "wpq_wait";
    default:
      return "?";
  }
}

void AttributionCollector::RecordAccess(Op op, Cycles end_to_end,
                                        const StageDurations& stages) {
  Cycles attributed = 0;
  for (int s = 0; s < kStageCount; ++s) {
    attributed += stages.v[s];
  }
  PMEMSIM_CHECK_MSG(attributed <= end_to_end,
                    "attribution: stage sum exceeds end-to-end latency");
  ++access_count_;
  end_to_end_total_ += end_to_end;
  op_hist_[op].Add(end_to_end);
  for (int s = 0; s < kStageCount; ++s) {
    Cycles v = stages.v[s];
    if (s == kCore) {
      v += end_to_end - attributed;  // conservation: remainder -> core
    }
    if (v == 0) {
      continue;
    }
    stage_total_[s] += v;
    stage_hist_[s].Add(v);
  }
}

void AttributionCollector::RecordAsyncAccept(Cycles delay) {
  async_accept_hist_.Add(delay);
}

uint64_t AttributionCollector::StageTotalSum() const {
  uint64_t sum = 0;
  for (int s = 0; s < kStageCount; ++s) {
    sum += stage_total_[s];
  }
  return sum;
}

void AttributionCollector::ToJson(JsonWriter& w) const {
  w.BeginObject();
  w.Key("accesses").Value(access_count_);
  w.Key("end_to_end_total").Value(end_to_end_total_);
  w.Key("stage_total_sum").Value(StageTotalSum());
  w.Key("ops").BeginObject();
  for (int op = 0; op < kOpCount; ++op) {
    if (op_hist_[op].count() == 0) {
      continue;
    }
    w.Key(OpName(static_cast<Op>(op)));
    op_hist_[op].ToJson(w);
  }
  w.EndObject();
  w.Key("stages").BeginObject();
  const double total = end_to_end_total_ > 0
                           ? static_cast<double>(end_to_end_total_)
                           : 1.0;
  for (int s = 0; s < kStageCount; ++s) {
    if (stage_hist_[s].count() == 0 && stage_total_[s] == 0) {
      continue;
    }
    w.Key(StageName(static_cast<Stage>(s))).BeginObject();
    w.Key("total_cycles").Value(stage_total_[s]);
    w.Key("share").Value(static_cast<double>(stage_total_[s]) / total);
    w.Key("hist");
    stage_hist_[s].ToJson(w);
    w.EndObject();
  }
  w.EndObject();
  w.Key("async").BeginObject();
  w.Key("wpq_accept");
  async_accept_hist_.ToJson(w);
  w.EndObject();
  w.EndObject();
}

std::string AttributionCollector::ToJson() const {
  JsonWriter w;
  ToJson(w);
  return w.str();
}

std::string AttributionCollector::CriticalPathTable() const {
  std::string out;
  char line[192];
  std::snprintf(line, sizeof(line),
                "latency attribution: %llu accesses, %llu cycles end-to-end\n",
                static_cast<unsigned long long>(access_count_),
                static_cast<unsigned long long>(end_to_end_total_));
  out += line;
  std::snprintf(line, sizeof(line), "%-12s %14s %7s %10s %10s %10s %10s\n",
                "stage", "cycles", "share", "count", "p50", "p90", "p99");
  out += line;
  int order[kStageCount];
  for (int s = 0; s < kStageCount; ++s) {
    order[s] = s;
  }
  std::stable_sort(order, order + kStageCount, [this](int a, int b) {
    return stage_total_[a] > stage_total_[b];
  });
  const double total = end_to_end_total_ > 0
                           ? static_cast<double>(end_to_end_total_)
                           : 1.0;
  for (int i = 0; i < kStageCount; ++i) {
    const int s = order[i];
    if (stage_total_[s] == 0 && stage_hist_[s].count() == 0) {
      continue;
    }
    std::snprintf(line, sizeof(line),
                  "%-12s %14llu %6.1f%% %10llu %10llu %10llu %10llu\n",
                  StageName(static_cast<Stage>(s)),
                  static_cast<unsigned long long>(stage_total_[s]),
                  100.0 * static_cast<double>(stage_total_[s]) / total,
                  static_cast<unsigned long long>(stage_hist_[s].count()),
                  static_cast<unsigned long long>(stage_hist_[s].Percentile(50)),
                  static_cast<unsigned long long>(stage_hist_[s].Percentile(90)),
                  static_cast<unsigned long long>(stage_hist_[s].Percentile(99)));
    out += line;
  }
  if (async_accept_hist_.count() > 0) {
    std::snprintf(
        line, sizeof(line),
        "async wpq_accept: n=%llu p50=%llu p99=%llu (outside conservation)\n",
        static_cast<unsigned long long>(async_accept_hist_.count()),
        static_cast<unsigned long long>(async_accept_hist_.Percentile(50)),
        static_cast<unsigned long long>(async_accept_hist_.Percentile(99)));
    out += line;
  }
  return out;
}

}  // namespace pmemsim
