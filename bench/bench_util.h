// Shared helpers for the figure-regeneration benches: tiny flag parsing and
// CSV emission. Every bench prints a header comment naming the paper figure,
// then CSV rows matching the figure's axes.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace pmemsim_bench {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      args_.emplace_back(argv[i]);
    }
  }

  bool Has(const std::string& name) const {
    for (const std::string& a : args_) {
      if (a == "--" + name) {
        return true;
      }
    }
    return false;
  }

  std::string Get(const std::string& name, const std::string& def) const {
    const std::string prefix = "--" + name + "=";
    for (const std::string& a : args_) {
      if (a.rfind(prefix, 0) == 0) {
        return a.substr(prefix.size());
      }
    }
    return def;
  }

  uint64_t GetU64(const std::string& name, uint64_t def) const {
    const std::string v = Get(name, "");
    return v.empty() ? def : std::stoull(v);
  }

  double GetDouble(const std::string& name, double def) const {
    const std::string v = Get(name, "");
    return v.empty() ? def : std::stod(v);
  }

 private:
  std::vector<std::string> args_;
};

inline void PrintHeader(const char* figure, const char* description) {
  std::printf("# %s — %s\n", figure, description);
}

}  // namespace pmemsim_bench

#endif  // BENCH_BENCH_UTIL_H_
