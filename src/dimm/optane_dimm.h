// Optane DCPMM DIMM model: 3D-Xpoint media behind separate on-DIMM read and
// write buffers, with an AIT translation cache and an asynchronous write
// pipeline. Composition of the structures the paper infers in §3.1-§3.5.
//
// Read path:  write buffer (freshest data; may stall on in-flight persist)
//             -> read buffer (exclusive, FIFO)
//             -> AIT + media XPLine fetch (fills the read buffer).
// Write path: merge into write buffer / transition from read buffer /
//             allocate entry (evictions write back to media, partial lines
//             via RMW). Visibility lags acceptance by write_visible_delay.

#ifndef SRC_DIMM_OPTANE_DIMM_H_
#define SRC_DIMM_OPTANE_DIMM_H_

#include <vector>

#include "src/buffers/read_buffer.h"
#include "src/buffers/write_buffer.h"
#include "src/common/access_record.h"
#include "src/common/config.h"
#include "src/common/types.h"
#include "src/dimm/dimm.h"
#include "src/media/ait.h"
#include "src/media/xpoint_media.h"
#include "src/trace/counters.h"

namespace pmemsim {

class OptaneDimm : public Dimm {
 public:
  OptaneDimm(const OptaneDimmConfig& config, Counters* counters, uint64_t rng_seed = 0xD1337);

  // In-place read: fills complete_at / stalled_for / mem of `out` (which must
  // arrive value-initialized). Dispatches through a member-function pointer
  // resolved once at construction to the generation-specialized path: G1
  // (periodic full write-back) checks the write-back clock per read, G2/eADR
  // skips that work entirely. The virtual Read() below wraps this.
  void ReadInto(Addr line_addr, Cycles now, bool ordered, AccessRecord* out) {
    (this->*read_impl_)(line_addr, now, ordered, out);
  }

  DimmReadResult Read(Addr line_addr, Cycles now, bool ordered) override;
  DimmWriteResult Write(Addr line_addr, Cycles now) override;
  MemoryKind kind() const override { return MemoryKind::kOptane; }
  Cycles PendingVisibleAt(Addr line_addr) const override {
    return write_buffer_.VisibleAt(line_addr);
  }
  Cycles SameLineStallUntil(Addr line_addr) const override {
    if (!config_.same_line_flush_stall) {
      return 0;
    }
    const Cycles visible = write_buffer_.VisibleAt(line_addr);
    if (visible == 0) {
      return 0;
    }
    const Cycles drained = visible > config_.write_visible_delay
                               ? visible - config_.write_visible_delay
                               : 0;
    return drained + config_.same_line_stall_window;
  }
  void Reset() override;

  // Host-side hint: warm the AIT translation chain a media fetch for this
  // line would walk, plus the read/write-buffer index buckets the snoop will
  // probe. Issued at access start so the fetches overlap the cache hierarchy
  // walk. No simulated effect.
  void PrefetchRead(Addr line_addr) const {
    ait_.Prefetch(line_addr);
    read_buffer_.PrefetchLookup(line_addr);
  }

  // Test/introspection hooks.
  const ReadBuffer& read_buffer() const { return read_buffer_; }
  const WriteBuffer& write_buffer() const { return write_buffer_; }
  const OptaneDimmConfig& config() const { return config_; }

  // Chrome-trace row for this DIMM's buffer events (0 = emit nothing).
  void SetTraceTrack(int track) { trace_track_ = track; }

 private:
  // Read-path body, specialized on whether this generation runs the periodic
  // full-XPLine write-back (true on G1, false on G2 and eADR presets).
  template <bool kPeriodicWb>
  void ReadImpl(Addr line_addr, Cycles now, bool ordered, AccessRecord* out);

  void PerformWritebacks(const std::vector<WritebackRequest>& requests, Cycles now);

  using ReadImplFn = void (OptaneDimm::*)(Addr, Cycles, bool, AccessRecord*);
  ReadImplFn read_impl_;  // bound in the constructor from the config

  OptaneDimmConfig config_;
  Counters* counters_;
  int trace_track_ = 0;
  Ait ait_;
  XpointMedia media_;
  ReadBuffer read_buffer_;
  WriteBuffer write_buffer_;
  std::vector<WritebackRequest> writeback_scratch_;
};

}  // namespace pmemsim

#endif  // SRC_DIMM_OPTANE_DIMM_H_
