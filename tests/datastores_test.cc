// Functional tests for the case-study data structures: CCEH and the
// FAST&FAIR-style B+-tree are validated against std:: reference containers
// (property-style), plus ChaseList structure checks.

#include <gtest/gtest.h>

#include <map>
#include <unordered_map>

#include "src/core/platform.h"
#include "src/datastores/cceh.h"
#include "src/datastores/chase_list.h"
#include "src/datastores/fast_fair.h"
#include "src/persist/redo_log.h"
#include "src/workload/ycsb.h"

namespace pmemsim {
namespace {

struct Fixture {
  std::unique_ptr<System> system = MakeG1System(1);
  ThreadContext* ctx = &system->CreateThread();
};

// ---------- CCEH ----------

TEST(CcehTest, InsertAndGet) {
  Fixture f;
  Cceh table(f.system.get(), *f.ctx, 2, MemoryKind::kOptane);
  EXPECT_TRUE(table.Insert(*f.ctx, 42, 4200));
  uint64_t v = 0;
  EXPECT_TRUE(table.Get(*f.ctx, 42, &v));
  EXPECT_EQ(v, 4200u);
  EXPECT_FALSE(table.Get(*f.ctx, 43, &v));
}

TEST(CcehTest, UpdateOverwrites) {
  Fixture f;
  Cceh table(f.system.get(), *f.ctx, 2, MemoryKind::kOptane);
  table.Insert(*f.ctx, 7, 1);
  table.Insert(*f.ctx, 7, 2);
  uint64_t v = 0;
  EXPECT_TRUE(table.Get(*f.ctx, 7, &v));
  EXPECT_EQ(v, 2u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(CcehTest, GrowsThroughSplitsAndDirectoryDoubling) {
  Fixture f;
  Cceh table(f.system.get(), *f.ctx, 2, MemoryKind::kOptane);
  const uint32_t initial_depth = table.global_depth();
  const uint64_t initial_segments = table.segment_count();
  for (uint64_t k = 1; k <= 20000; ++k) {
    ASSERT_TRUE(table.Insert(*f.ctx, k, k * 2));
  }
  EXPECT_GT(table.segment_count(), initial_segments);
  EXPECT_GT(table.global_depth(), initial_depth);
  EXPECT_GT(table.breakdown().splits, 0u);
}

class CcehProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CcehProperty, MatchesReferenceMap) {
  Fixture f;
  Cceh table(f.system.get(), *f.ctx, 4, MemoryKind::kOptane);
  std::unordered_map<uint64_t, uint64_t> reference;
  Rng rng(GetParam());
  for (int i = 0; i < 30000; ++i) {
    const uint64_t key = 1 + rng.NextBelow(8000);  // collisions and updates
    const uint64_t value = rng.Next();
    ASSERT_TRUE(table.Insert(*f.ctx, key, value));
    reference[key] = value;
  }
  EXPECT_EQ(table.size(), reference.size());
  for (const auto& [key, value] : reference) {
    uint64_t v = 0;
    ASSERT_TRUE(table.Get(*f.ctx, key, &v)) << "key " << key;
    EXPECT_EQ(v, value) << "key " << key;
  }
  // Absent keys stay absent.
  for (uint64_t k = 8001; k < 8101; ++k) {
    EXPECT_FALSE(table.Get(*f.ctx, k, nullptr));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CcehProperty, ::testing::Values(11u, 22u, 33u));

TEST(CcehTest, DramVariantWorks) {
  Fixture f;
  Cceh table(f.system.get(), *f.ctx, 2, MemoryKind::kDram);
  for (uint64_t k = 1; k <= 5000; ++k) {
    ASSERT_TRUE(table.Insert(*f.ctx, k, k));
  }
  uint64_t v = 0;
  EXPECT_TRUE(table.Get(*f.ctx, 4321, &v));
  EXPECT_EQ(v, 4321u);
  EXPECT_GT(f.system->counters().dram_read_bytes, 0u);
  EXPECT_EQ(f.system->counters().media_read_bytes, 0u);
}

TEST(CcehTest, PrefetchProbePathTouchesIndexOnly) {
  Fixture f;
  Cceh table(f.system.get(), *f.ctx, 4, MemoryKind::kOptane);
  for (uint64_t k = 1; k <= 1000; ++k) {
    table.Insert(*f.ctx, k, k);
  }
  const uint64_t stores_before = f.system->counters().demand_stores;
  ThreadContext& helper = f.system->CreateThread();
  table.PrefetchProbePath(helper, 500);
  EXPECT_EQ(f.system->counters().demand_stores, stores_before);  // loads only
  EXPECT_EQ(helper.outstanding_persists(), 0u);
}

// ---------- FAST&FAIR B+-tree ----------

TEST(FastFairTest, InsertAndGetBothModes) {
  for (const BTreeUpdateMode mode : {BTreeUpdateMode::kInPlace, BTreeUpdateMode::kRedoLog}) {
    Fixture f;
    FastFairTree tree(f.system.get(), *f.ctx);
    RedoLog log(f.system.get(), f.system->AllocatePm(KiB(16)));
    tree.Insert(*f.ctx, 10, 100, mode, &log);
    tree.Insert(*f.ctx, 5, 50, mode, &log);
    tree.Insert(*f.ctx, 20, 200, mode, &log);
    uint64_t v = 0;
    EXPECT_TRUE(tree.Get(*f.ctx, 10, &v));
    EXPECT_EQ(v, 100u);
    EXPECT_TRUE(tree.Get(*f.ctx, 5, &v));
    EXPECT_EQ(v, 50u);
    EXPECT_FALSE(tree.Get(*f.ctx, 15, &v));
  }
}

TEST(FastFairTest, SplitsGrowHeight) {
  Fixture f;
  FastFairTree tree(f.system.get(), *f.ctx);
  for (uint64_t k = 1; k <= 2000; ++k) {
    tree.Insert(*f.ctx, k, k, BTreeUpdateMode::kInPlace);
  }
  EXPECT_GT(tree.height(), 2u);
  EXPECT_GT(tree.node_count(), 50u);
  for (uint64_t k = 1; k <= 2000; k += 97) {
    uint64_t v = 0;
    ASSERT_TRUE(tree.Get(*f.ctx, k, &v)) << k;
    EXPECT_EQ(v, k);
  }
}

class FastFairProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, BTreeUpdateMode>> {};

TEST_P(FastFairProperty, MatchesReferenceMap) {
  const uint64_t seed = std::get<0>(GetParam());
  const BTreeUpdateMode mode = std::get<1>(GetParam());
  Fixture f;
  FastFairTree tree(f.system.get(), *f.ctx);
  RedoLog log(f.system.get(), f.system->AllocatePm(KiB(16)));
  std::map<uint64_t, uint64_t> reference;
  Rng rng(seed);
  for (int i = 0; i < 8000; ++i) {
    uint64_t key = 1 + rng.NextBelow(1u << 30);
    if (reference.count(key)) {
      continue;  // unique keys, as in the YCSB load phase
    }
    tree.Insert(*f.ctx, key, key ^ seed, mode, &log);
    reference[key] = key ^ seed;
  }
  EXPECT_EQ(tree.size(), reference.size());
  size_t checked = 0;
  for (const auto& [key, value] : reference) {
    uint64_t v = 0;
    ASSERT_TRUE(tree.Get(*f.ctx, key, &v)) << key;
    ASSERT_EQ(v, value) << key;
    if (++checked > 2000) {
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndModes, FastFairProperty,
    ::testing::Combine(::testing::Values(3u, 5u),
                       ::testing::Values(BTreeUpdateMode::kInPlace, BTreeUpdateMode::kRedoLog)));

TEST(FastFairTest, ModesProduceIdenticalContents) {
  Fixture a, b;
  FastFairTree in_place(a.system.get(), *a.ctx);
  FastFairTree redo(b.system.get(), *b.ctx);
  RedoLog log(b.system.get(), b.system->AllocatePm(KiB(16)));
  const std::vector<uint64_t> keys = MakeLoadKeys(3000, 9);
  for (const uint64_t k : keys) {
    in_place.Insert(*a.ctx, k, k * 7, BTreeUpdateMode::kInPlace);
    redo.Insert(*b.ctx, k, k * 7, BTreeUpdateMode::kRedoLog, &log);
  }
  for (uint64_t k = 1; k <= 3000; k += 13) {
    uint64_t va = 0, vb = 0;
    ASSERT_TRUE(in_place.Get(*a.ctx, k, &va));
    ASSERT_TRUE(redo.Get(*b.ctx, k, &vb));
    EXPECT_EQ(va, vb);
  }
}

TEST(FastFairTest, RedoCheaperThanInPlaceOnG1) {
  Fixture a, b;
  FastFairTree in_place(a.system.get(), *a.ctx);
  FastFairTree redo(b.system.get(), *b.ctx);
  RedoLog log(b.system.get(), b.system->AllocatePm(KiB(16)));
  const std::vector<uint64_t> keys = MakeLoadKeys(4000, 4);
  const Cycles a0 = a.ctx->clock(), b0 = b.ctx->clock();
  for (const uint64_t k : keys) {
    in_place.Insert(*a.ctx, k, k, BTreeUpdateMode::kInPlace);
  }
  for (const uint64_t k : keys) {
    redo.Insert(*b.ctx, k, k, BTreeUpdateMode::kRedoLog, &log);
  }
  EXPECT_LT(b.ctx->clock() - b0, a.ctx->clock() - a0);
}

// ---------- ChaseList ----------

TEST(ChaseListTest, FormsSingleCycle) {
  for (const bool sequential : {true, false}) {
    Fixture f;
    const PmRegion region = f.system->AllocatePm(KiB(16), kXPLineSize);
    ChaseList list(f.system.get(), region, sequential, 77);
    const uint64_t n = list.size();
    ASSERT_EQ(n, KiB(16) / kXPLineSize);
    Addr cur = list.head();
    std::set<Addr> seen;
    for (uint64_t i = 0; i < n; ++i) {
      EXPECT_TRUE(seen.insert(cur).second) << "revisited before cycle end";
      EXPECT_TRUE(IsXPLineAligned(cur));
      cur = f.system->backing().ReadU64(cur);
    }
    EXPECT_EQ(cur, list.head());  // closes exactly after n hops
  }
}

TEST(ChaseListTest, SequentialOrderIsAddressOrder) {
  Fixture f;
  const PmRegion region = f.system->AllocatePm(KiB(4), kXPLineSize);
  ChaseList list(f.system.get(), region, /*sequential=*/true, 1);
  const auto& order = list.order();
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_EQ(order[i], order[i - 1] + ChaseList::kElementSize);
  }
}

TEST(ChaseListTest, TraversalsAdvanceCursor) {
  Fixture f;
  const PmRegion region = f.system->AllocatePm(KiB(4), kXPLineSize);
  ChaseList list(f.system.get(), region, false, 3);
  const Cycles c1 = list.TraverseRead(*f.ctx, 8);
  const Cycles c2 = list.TraverseRead(*f.ctx, 8);
  EXPECT_GT(c1, 0u);
  EXPECT_GT(c2, 0u);
}

TEST(ChaseListTest, UpdateWritesData) {
  Fixture f;
  const PmRegion region = f.system->AllocatePm(KiB(4), kXPLineSize);
  ChaseList list(f.system.get(), region, true, 3);
  list.TraverseUpdate(*f.ctx, list.size(), PersistMode::kClwbSfence, Persistency::kStrict);
  // Every element's pad cacheline was stored to (values are loop indices).
  uint64_t nonzero = 0;
  for (const Addr e : list.order()) {
    nonzero += f.system->backing().ReadU64(e + ChaseList::kPadOffset) != 0 ? 1 : 0;
  }
  EXPECT_GE(nonzero, list.size() - 1);  // index 0 stores value 0
}

}  // namespace
}  // namespace pmemsim
