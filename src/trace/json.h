// Minimal JSON support for the telemetry layer: a streaming writer used by
// Counters/stats serialization and the bench --stats_json reports, plus a
// small recursive-descent parser used by tests and tools to validate
// round-trips.
//
// Deliberately not a general-purpose JSON library. The one non-obvious design
// point: numbers keep a lossless unsigned-integer fast path (`is_integer`),
// because counter values routinely exceed 2^53 and must survive a
// serialize/parse round-trip exactly.

#ifndef SRC_TRACE_JSON_H_
#define SRC_TRACE_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pmemsim {

// Streaming JSON writer: builds a syntactically valid document in a string,
// tracking commas and nesting so callers only state structure.
//
//   JsonWriter w;
//   w.BeginObject().Key("hits").Value(uint64_t{3}).EndObject();
//   w.str();  // {"hits":3}
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(const std::string& name);

  JsonWriter& Value(const std::string& s);
  JsonWriter& Value(const char* s);
  JsonWriter& Value(uint64_t v);
  JsonWriter& Value(int v);
  JsonWriter& Value(double v);
  JsonWriter& Value(bool v);
  JsonWriter& Null();
  // Splices `json` — assumed to be one complete, valid JSON value (typically
  // another writer's str()) — in value position. Lets reports embed sections
  // serialized by their owners (sampler arrays, attribution objects) without
  // re-walking them through this writer.
  JsonWriter& Raw(const std::string& json);

  bool complete() const { return depth_ == 0 && started_; }
  const std::string& str() const { return out_; }

 private:
  void BeforeValue();

  std::string out_;
  // Per-nesting-level flag: true once the first element was written (the next
  // element needs a leading comma).
  std::vector<bool> has_element_;
  int depth_ = 0;
  bool started_ = false;
  bool pending_key_ = false;
};

std::string JsonEscape(const std::string& s);

// Parsed JSON value. Objects preserve key order (counters serialize in
// declaration order; tests rely on lookups, not order).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  // Lossless path for non-negative integers (counter values exceed 2^53).
  bool is_integer = false;
  uint64_t integer = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  uint64_t AsUint() const { return is_integer ? integer : static_cast<uint64_t>(number); }
  double AsDouble() const { return is_integer ? static_cast<double>(integer) : number; }

  // Parses `text` into `*out`. On failure returns false and, when `error` is
  // non-null, stores a message with the byte offset.
  static bool Parse(const std::string& text, JsonValue* out, std::string* error = nullptr);
};

}  // namespace pmemsim

#endif  // SRC_TRACE_JSON_H_
