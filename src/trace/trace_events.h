// Optional chrome://tracing (catapult JSON) event emitter for debugging model
// changes: WPQ occupancy, write-buffer allocations/evictions, periodic
// write-backs. Disabled by default; the only cost on the hot path is one
// branch on `enabled()`. Enable per-run via the benches' --trace_out=<path>
// flag or TraceEmitter::Global().Enable(path).
//
// Timestamps are simulated cycles reported in the trace's microsecond field,
// so one trace "us" == one model cycle. Each emitting component registers a
// named track (rendered as a thread row in the viewer) to keep per-DIMM
// streams separate.
//
// The emitter is process-wide and the sweep runner constructs Systems on
// worker threads, so track registration and event pushes are mutex-guarded.
// (The interleaving of events from concurrently running sweep points is not
// deterministic; the runner pins tracing runs to --jobs=1 for that reason.)

#ifndef SRC_TRACE_TRACE_EVENTS_H_
#define SRC_TRACE_TRACE_EVENTS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace pmemsim {

class TraceEmitter {
 public:
  // Process-wide instance: the emitter is a debugging tap, and threading it
  // through every component constructor would dwarf the feature.
  static TraceEmitter& Global();

  // Starts buffering events; they are written to `path` on Flush()/Disable().
  void Enable(const std::string& path);
  // Flushes and stops emitting. Returns false if the file write failed.
  bool Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Tracks render as separate rows in the viewer. Returns a track id to pass
  // to the event calls; track 0 is a default "sim" row. Thread-safe.
  int RegisterTrack(const std::string& name);

  // Instant event ("i" phase), e.g. an eviction.
  void Instant(int track, const std::string& name, Cycles ts);
  // Instant event with one numeric argument, e.g. a batch write-back count.
  void Instant(int track, const std::string& name, Cycles ts, const std::string& arg_name,
               double arg_value);
  // Counter series ("C" phase), e.g. WPQ occupancy over time.
  void CounterEvent(int track, const std::string& name, Cycles ts, double value);

  // Writes the buffered events as {"traceEvents": [...]}; keeps emitting.
  bool Flush();

  size_t event_count() const;
  uint64_t dropped_events() const;

 private:
  struct Event {
    char phase;  // 'i' or 'C'
    int track;
    std::string name;
    Cycles ts;
    bool has_arg = false;
    std::string arg_name;
    double arg_value = 0.0;
  };

  void Push(Event e);
  bool FlushLocked();

  // Bounds memory for long runs; beyond this, events are counted as dropped.
  static constexpr size_t kMaxEvents = 1 << 22;

  // Guards tracks_, events_, dropped_, path_ against concurrent sweep-point
  // workers (System construction registers per-DIMM tracks).
  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  std::string path_;
  std::vector<std::string> tracks_;
  std::vector<Event> events_;
  uint64_t dropped_ = 0;
};

}  // namespace pmemsim

#endif  // SRC_TRACE_TRACE_EVENTS_H_
