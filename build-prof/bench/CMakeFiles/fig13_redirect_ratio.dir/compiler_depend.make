# Empty compiler generated dependencies file for fig13_redirect_ratio.
# This may be replaced when dependencies are built.
