#include "src/cache/hierarchy.h"

#include "src/common/check.h"

namespace pmemsim {

CacheHierarchy::CacheHierarchy(const CacheConfig& config, SetAssocCache* shared_l3,
                               MemoryController* mc, Counters* counters, NodeId node,
                               uint64_t rng_seed)
    : config_(config),
      l1_(config.l1),
      l2_(config.l2),
      l3_(shared_l3),
      mc_(mc),
      counters_(counters),
      node_(node),
      engine_(config, this, rng_seed) {
  PMEMSIM_CHECK(shared_l3 != nullptr);
  PMEMSIM_CHECK(mc != nullptr);
  PMEMSIM_CHECK(counters != nullptr);
}

void CacheHierarchy::Load(Addr addr, Cycles now, bool ordered, bool train,
                          HierAccessResult* out) {
  ++counters_->demand_loads;
  AccessInternal(addr, now, /*is_store=*/false, ordered, train, out);
}

void CacheHierarchy::Store(Addr addr, Cycles now, HierAccessResult* out) {
  ++counters_->demand_stores;
  AccessInternal(addr, now, /*is_store=*/true, /*ordered=*/false, /*train=*/true, out);
}

void CacheHierarchy::AccessInternal(Addr addr, Cycles now, bool is_store, bool ordered,
                                    bool train, HierAccessResult* out) {
  const Addr line = CacheLineBase(addr);
  PrefetchEngine::DemandInfo info;
  info.line = line;
  info.now = now;

  bool ft = false;
  Cycles avail = now;
  if (l1_.Access(line, now, is_store, &ft, &avail)) {
    ++counters_->l1_hits;
    info.l1_hit = true;
    info.first_touch_prefetched = ft;
    out->complete_at = avail + l1_.hit_latency();
    out->hit_level = 1;
    if (train) {
      TrainEngine(info);
    }
    return;
  }

  // L1 missed: the rest of the walk may touch the L3 set block, the DIMM
  // translation cache, and the on-DIMM buffer indexes — all cold in the host
  // caches for the big-working-set shapes. Start those fetches now so they
  // proceed in parallel with the L2/L3 probes (one round of concurrent host
  // misses instead of a serial dependence chain), unless an explicit hint
  // already warmed this line one operation ago. No simulated effect.
  if (line != last_hint_line_) {
    l3_->PrefetchSet(line);
    mc_->PrefetchRead(line);
  }

  if (l2_.Access(line, now, /*mark_dirty=*/false, &ft, &avail)) {
    ++counters_->l2_hits;
    info.l2_hit = true;
    info.first_touch_prefetched = ft;
    out->complete_at = avail + l2_.hit_latency();
    out->hit_level = 2;
    FillInto(l1_, 1, line, now, is_store, /*prefetched=*/false);
    if (train) {
      TrainEngine(info);
    }
    return;
  }

  if (l3_->Access(line, now, /*mark_dirty=*/false, &ft, &avail)) {
    ++counters_->l3_hits;
    info.first_touch_prefetched = ft;
    out->complete_at = avail + l3_->hit_latency();
    out->hit_level = 3;
    FillInto(l2_, 2, line, now, /*dirty=*/false, /*prefetched=*/false);
    FillInto(l1_, 1, line, now, is_store, /*prefetched=*/false);
    if (train) {
      TrainEngine(info);
    }
    return;
  }

  // Full miss: fetch from memory. Stores are RFOs and then dirty the line.
  // The iMC and DIMM write their latency shares straight into `out`.
  ++counters_->cache_misses;
  mc_->ReadInto(line, now, node_, ordered, out);
  out->hit_level = 0;
  FillInto(*l3_, 3, line, now, /*dirty=*/false, /*prefetched=*/false);
  FillInto(l2_, 2, line, now, /*dirty=*/false, /*prefetched=*/false);
  FillInto(l1_, 1, line, now, is_store, /*prefetched=*/false);
  if (train) {
    TrainEngine(info);
  }
}

void CacheHierarchy::FillInto(SetAssocCache& level, int level_idx, Addr line, Cycles now,
                              bool dirty, bool prefetched, Cycles ready_at) {
  const EvictedLine evicted = level.Insert(line, now, dirty, prefetched, ready_at);
  if (!evicted.valid || !evicted.dirty) {
    return;
  }
  // Cascade dirty victims toward memory.
  if (level_idx == 1) {
    if (!l2_.Access(evicted.line, now, /*mark_dirty=*/true)) {
      FillInto(l2_, 2, evicted.line, now, /*dirty=*/true, /*prefetched=*/false);
    }
  } else if (level_idx == 2) {
    if (!l3_->Access(evicted.line, now, /*mark_dirty=*/true)) {
      FillInto(*l3_, 3, evicted.line, now, /*dirty=*/true, /*prefetched=*/false);
    }
  } else {
    // Dirty L3 eviction: a write-back enters the persist path (ADR on PM).
    mc_->Write(evicted.line, now, node_);
  }
}

FlushResult CacheHierarchy::Clwb(Addr addr, Cycles now) {
  const Addr line = CacheLineBase(addr);
  FlushResult result;
  result.cost = 2;  // issue cost; draining is asynchronous

  const bool retain = config_.clwb_retains_line;
  const Cycles invalidate_at = now + config_.clwb_dispatch_delay;
  bool dirty = false;
  dirty |= l1_.WriteBack(line, invalidate_at, retain).was_dirty;
  dirty |= l2_.WriteBack(line, invalidate_at, retain).was_dirty;
  dirty |= l3_->WriteBack(line, invalidate_at, retain).was_dirty;
  if (dirty) {
    const McWriteResult w = mc_->Write(line, now, node_);
    result.wrote = true;
    result.accepted_at = w.accepted_at;
  }
  return result;
}

FlushResult CacheHierarchy::Clflushopt(Addr addr, Cycles now) {
  const Addr line = CacheLineBase(addr);
  FlushResult result;
  result.cost = 2;

  // clflushopt always invalidates (both generations); the invalidation is
  // subject to the same dispatch window as clwb on the way out.
  const Cycles invalidate_at = now + config_.clwb_dispatch_delay;
  bool dirty = false;
  dirty |= l1_.WriteBack(line, invalidate_at, /*retain=*/false).was_dirty;
  dirty |= l2_.WriteBack(line, invalidate_at, /*retain=*/false).was_dirty;
  dirty |= l3_->WriteBack(line, invalidate_at, /*retain=*/false).was_dirty;
  if (dirty) {
    const McWriteResult w = mc_->Write(line, now, node_);
    result.wrote = true;
    result.accepted_at = w.accepted_at;
  }
  return result;
}

void CacheHierarchy::InvalidateAll(Addr addr) {
  const Addr line = CacheLineBase(addr);
  l1_.Invalidate(line);
  l2_.Invalidate(line);
  l3_->Invalidate(line);
}

void CacheHierarchy::ForcePendingInvalidate(Addr addr) {
  const Addr line = CacheLineBase(addr);
  l1_.ApplyPendingInvalidate(line);
  l2_.ApplyPendingInvalidate(line);
  l3_->ApplyPendingInvalidate(line);
}

bool CacheHierarchy::ProbeAny(Addr addr, Cycles now) const {
  const Addr line = CacheLineBase(addr);
  return l1_.Probe(line, now) || l2_.Probe(line, now) || l3_->Probe(line, now);
}

void CacheHierarchy::PrefetchFill(Addr line_addr, Cycles now, bool into_l1) {
  if (in_prefetch_fill_) {
    return;  // prefetch fills never cascade into more prefetches
  }
  const Addr line = CacheLineBase(line_addr);
  if (ProbeAny(line, now)) {
    return;
  }
  in_prefetch_fill_ = true;
  ++counters_->prefetch_requests;
  const McReadResult mr = mc_->Read(line, now, node_, /*ordered=*/false);
  FillInto(*l3_, 3, line, now, /*dirty=*/false, /*prefetched=*/true, mr.complete_at);
  FillInto(l2_, 2, line, now, /*dirty=*/false, /*prefetched=*/true, mr.complete_at);
  if (into_l1) {
    FillInto(l1_, 1, line, now, /*dirty=*/false, /*prefetched=*/true, mr.complete_at);
  }
  in_prefetch_fill_ = false;
}

void CacheHierarchy::ClearPrivate() {
  l1_.Clear();
  l2_.Clear();
  engine_.Reset();
}

}  // namespace pmemsim
