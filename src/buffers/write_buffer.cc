#include "src/buffers/write_buffer.h"

#include <algorithm>

#include "src/common/check.h"

namespace pmemsim {

WriteBuffer::WriteBuffer(const WriteBufferConfig& config, Counters* counters)
    : config_(config),
      counters_(counters),
      rng_(config.rng_seed),
      capacity_entries_(static_cast<size_t>(config.capacity_bytes / kXPLineSize)) {
  PMEMSIM_CHECK(counters_ != nullptr);
  PMEMSIM_CHECK(capacity_entries_ > 0);
  PMEMSIM_CHECK(config.partial_reserve_entries < capacity_entries_);
  partial_capacity_ = capacity_entries_ - config.partial_reserve_entries;
  keys_.reserve(capacity_entries_);
  entries_.reserve(capacity_entries_);
  index_.Reserve(capacity_entries_);
}

size_t WriteBuffer::CountPartial() const {
  size_t n = 0;
  for (const Entry& e : entries_) {
    if (IsPartial(e)) {
      ++n;
    }
  }
  return n;
}

void WriteBuffer::Append(Addr xpline, const Entry& e) {
  index_[xpline] = static_cast<uint32_t>(keys_.size());
  keys_.push_back(xpline);
  entries_.push_back(e);
  NotePartialChange(false, IsPartial(e));
}

bool WriteBuffer::Write(Addr line_addr, Cycles now, Cycles visible_at,
                        std::vector<WritebackRequest>& writebacks) {
  Tick(now, writebacks);
  const Addr xpline = XPLineBase(line_addr);
  const uint8_t bit = static_cast<uint8_t>(1u << LineIndexInXPLine(line_addr));

  if (const uint32_t* pos = index_.Find(xpline)) {
    Entry& e = entries_[*pos];
    const bool was_partial = IsPartial(e);
    e.dirty_mask |= bit;
    e.valid_mask |= bit;
    const uint64_t idx = LineIndexInXPLine(line_addr);
    e.visible_at[idx] = std::max(e.visible_at[idx], visible_at);
    e.clean = false;
    NotePartialChange(was_partial, IsPartial(e));
    ++counters_->write_buffer_hits;
    return true;
  }

  ++counters_->write_buffer_misses;
  EnsureRoom(writebacks);
  Entry e;
  e.dirty_mask = bit;
  e.valid_mask = bit;
  e.visible_at[LineIndexInXPLine(line_addr)] = visible_at;
  Append(xpline, e);
  return false;
}

void WriteBuffer::Tick(Cycles now, std::vector<WritebackRequest>& writebacks) {
  if (!config_.periodic_full_writeback ||
      now < last_periodic_tick_ + config_.full_writeback_period) {
    return;
  }
  last_periodic_tick_ = now;
  // Iterate the dense insertion-ordered storage: the write-back order must be
  // bit-for-bit reproducible for the figure-regression gate.
  for (size_t i = 0; i < keys_.size(); ++i) {
    Entry& e = entries_[i];
    if (e.dirty_mask == 0x0F) {
      writebacks.push_back({keys_[i], /*needs_rmw=*/false, /*periodic=*/true});
      e.dirty_mask = 0;
      e.clean = true;
      ++counters_->periodic_writebacks;
    }
  }
}

bool WriteBuffer::HoldsLine(Addr line_addr) const {
  const uint32_t* pos = index_.Find(XPLineBase(line_addr));
  if (pos == nullptr) {
    return false;
  }
  return (entries_[*pos].valid_mask >> LineIndexInXPLine(line_addr)) & 1u;
}

bool WriteBuffer::ContainsXPLine(Addr addr) const {
  return index_.Contains(XPLineBase(addr));
}

Cycles WriteBuffer::VisibleAt(Addr line_addr) const {
  const uint32_t* pos = index_.Find(XPLineBase(line_addr));
  if (pos == nullptr) {
    return 0;
  }
  const Entry& e = entries_[*pos];
  const uint64_t idx = LineIndexInXPLine(line_addr);
  if (!(e.valid_mask & (1u << idx))) {
    return 0;
  }
  return e.visible_at[idx];
}

void WriteBuffer::InstallTransition(Addr line_addr, Cycles now, Cycles visible_at,
                                    std::vector<WritebackRequest>& writebacks) {
  Tick(now, writebacks);
  const Addr xpline = XPLineBase(line_addr);
  PMEMSIM_DCHECK(!index_.Contains(xpline));
  EnsureRoom(writebacks);
  Entry e;
  e.dirty_mask = static_cast<uint8_t>(1u << LineIndexInXPLine(line_addr));
  e.valid_mask = 0x0F;  // the read buffer held the whole XPLine
  e.visible_at[LineIndexInXPLine(line_addr)] = visible_at;
  Append(xpline, e);
  ++counters_->read_write_transitions;
  ++counters_->write_buffer_hits;  // the 64 B write itself did not miss
}

bool WriteBuffer::AbsorbFill(Addr addr) {
  const uint32_t* pos = index_.Find(XPLineBase(addr));
  if (pos == nullptr) {
    return false;
  }
  entries_[*pos].valid_mask = 0x0F;
  return true;
}

void WriteBuffer::EnsureRoom(std::vector<WritebackRequest>& writebacks) {
  // Total-capacity constraint.
  while (keys_.size() >= capacity_entries_) {
    EvictOne(writebacks);
  }
  // Partial-entry constraint (the G1 12 KB knee).
  PMEMSIM_DCHECK(partial_count_ == static_cast<ptrdiff_t>(CountPartial()));
  if (partial_count_ < static_cast<ptrdiff_t>(partial_capacity_)) {
    return;
  }
  const ptrdiff_t target = static_cast<ptrdiff_t>(
      config_.batch_evict ? static_cast<size_t>(static_cast<double>(partial_capacity_) *
                                                config_.batch_evict_keep_fraction)
                          : partial_capacity_ - 1);
  while (partial_count_ > target) {
    // Evict a *partial* victim chosen by the configured policy.
    size_t victim = 0;
    bool found = false;
    if (config_.eviction == WriteBufferEviction::kOldest) {
      for (size_t i = 0; i < keys_.size(); ++i) {
        if (IsPartial(entries_[i])) {
          victim = i;
          found = true;
          break;
        }
      }
    } else {
      for (int tries = 0; tries < 64 && !found; ++tries) {
        const size_t cand = static_cast<size_t>(rng_.NextBelow(keys_.size()));
        if (IsPartial(entries_[cand])) {
          victim = cand;
          found = true;
        }
      }
    }
    if (!found) {
      // Fallback scan in insertion order (deterministic across stdlibs).
      for (size_t i = 0; i < keys_.size(); ++i) {
        if (IsPartial(entries_[i])) {
          victim = i;
          found = true;
          break;
        }
      }
    }
    PMEMSIM_CHECK(found);
    EvictVictimAt(victim, writebacks);
  }
}

size_t WriteBuffer::PickRandomishVictimPos() {
  if (config_.eviction == WriteBufferEviction::kOldest) {
    return 0;  // insertion order survives until eviction shifts
  }
  return static_cast<size_t>(rng_.NextBelow(keys_.size()));
}

void WriteBuffer::EvictOne(std::vector<WritebackRequest>& writebacks) {
  PMEMSIM_CHECK(!keys_.empty());
  // Prefer a clean entry (free to drop); otherwise a policy victim. Scan the
  // dense insertion-ordered storage so the victim does not depend on any
  // hash-table iteration order.
  for (size_t i = 0; i < keys_.size(); ++i) {
    const Entry& e = entries_[i];
    if (e.clean && e.dirty_mask == 0) {
      EvictVictimAt(i, writebacks);
      return;
    }
  }
  EvictVictimAt(PickRandomishVictimPos(), writebacks);
}

void WriteBuffer::EvictVictimAt(size_t pos, std::vector<WritebackRequest>& writebacks) {
  PMEMSIM_DCHECK(pos < keys_.size());
  const Addr xpline = keys_[pos];
  const Entry& e = entries_[pos];
  if (e.dirty_mask != 0) {
    // Partially dirty entries whose remaining lines are not held (valid_mask
    // short of full) must fetch the rest of the XPLine before programming.
    writebacks.push_back({xpline, /*needs_rmw=*/e.valid_mask != 0x0F, /*periodic=*/false});
    ++counters_->write_buffer_evictions;
  }
  NotePartialChange(IsPartial(e), false);
  if (config_.eviction == WriteBufferEviction::kOldest) {
    // Preserve insertion order (n <= 64, the erase is cheap).
    keys_.erase(keys_.begin() + static_cast<ptrdiff_t>(pos));
    entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(pos));
    for (size_t i = pos; i < keys_.size(); ++i) {
      index_[keys_[i]] = static_cast<uint32_t>(i);
    }
  } else if (pos + 1 == keys_.size()) {
    keys_.pop_back();
    entries_.pop_back();
  } else {
    keys_[pos] = keys_.back();
    entries_[pos] = entries_.back();
    index_[keys_[pos]] = static_cast<uint32_t>(pos);
    keys_.pop_back();
    entries_.pop_back();
  }
  index_.Erase(xpline);
}

void WriteBuffer::DrainAll(std::vector<WritebackRequest>& writebacks) {
  // Drain in insertion order, for reproducible write-back sequences.
  for (size_t i = 0; i < keys_.size(); ++i) {
    const Entry& e = entries_[i];
    if (e.dirty_mask != 0) {
      writebacks.push_back({keys_[i], e.valid_mask != 0x0F, false});
      ++counters_->write_buffer_evictions;
    }
  }
  Clear();
}

void WriteBuffer::Clear() {
  keys_.clear();
  entries_.clear();
  index_.Clear();
  partial_count_ = 0;
}

}  // namespace pmemsim
