# Empty dependencies file for pmemsim_bench_util.
# This may be replaced when dependencies are built.
