// ServiceTier: the whole serving deployment for one configuration — N shards,
// each with its own store and worker ThreadContexts, run through the lockstep
// scheduler in two phases:
//
//   1. load — each shard's first worker preloads cfg.keys records (one store
//      insert per scheduler step, so shards contend realistically for the
//      shared memory system);
//   2. serve — every worker context is first aligned to the same start cycle
//      t0 (max clock after loading), then workers loop: catch up admissions
//      to their clock, claim a batch, execute one request per step. A worker
//      with no work parks just past the shard's next arrival (or an idle
//      quantum when it waits on peers) and retires once the shard is drained.
//
// Per-shard AttributionCollectors are installed on the workers for the serve
// phase only, so the reported memory-side decomposition covers serving, not
// the preload.
//
// Determinism: the tier runs on one OS thread; all randomness derives from
// cfg.seed. Running independent tiers on separate System instances (one per
// sweep point) is what makes the CLI's --jobs parallelism byte-stable.

#ifndef SRC_SERVE_TIER_H_
#define SRC_SERVE_TIER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/system.h"
#include "src/cpu/scheduler.h"
#include "src/cpu/thread_context.h"
#include "src/serve/shard.h"
#include "src/serve/service_stats.h"

namespace pmemsim {

class JsonWriter;

class ServiceTier {
 public:
  // Creates cfg.shards shards and cfg.workers_per_shard workers each on
  // `system` (construction builds the stores; preload happens in Run).
  ServiceTier(System* system, const ServeConfig& cfg);

  // Attaches (before Run) the serve-phase observability sink: per-shard
  // windowed metrics + spans, a global memory-plane sampler over the shared
  // System, and the serve-queue-depth gauge on System::ReadGauges. The tier
  // Begins the timeline at serve_start_ and Finalizes it at the serve
  // engine's end. Pass nullptr (default) for zero-cost serving.
  void AttachTimeline(ServeTimeline* timeline) { timeline_ = timeline; }

  // Runs load then serve to completion. Idempotent guard: call once.
  void Run();

  Cycles load_end() const { return load_end_; }
  Cycles serve_start() const { return serve_start_; }
  // Max completion cycle across shards (== makespan end of the serve phase).
  Cycles end_cycle() const;

  const ServeConfig& config() const { return cfg_; }
  const std::vector<std::unique_ptr<Shard>>& shards() const { return shards_; }
  ServiceStats GlobalStats() const;  // merged across shards

  // {"config":{...},"serve_start":..,"global":{ServiceStats},
  //  "shards":[{"shard":0,"queue":{...},"stats":{...},"attribution":{...}}]}
  void ToJson(JsonWriter& w) const;
  std::string ToJson() const;

 private:
  struct Worker {
    ThreadContext* ctx = nullptr;
    uint32_t shard = 0;
    std::vector<Request> claimed;
    size_t next = 0;  // cursor into `claimed`
  };

  StepResult WorkerStep(Worker& wk);

  System* system_;
  ServeConfig cfg_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<Worker> workers_;
  ServeTimeline* timeline_ = nullptr;  // not owned
  Cycles load_end_ = 0;
  Cycles serve_start_ = 0;
  bool ran_ = false;
};

}  // namespace pmemsim

#endif  // SRC_SERVE_TIER_H_
