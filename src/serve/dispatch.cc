#include "src/serve/dispatch.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace pmemsim {
namespace {

// Dispatcher stream ids live in the ServeSubSeed slot one past the last
// shard, so they never collide with the legacy engine's per-shard streams.
constexpr uint32_t kMixStream = 0;
constexpr uint32_t kZipfStream = 1;
constexpr uint32_t kThinkStream = 2;
constexpr uint32_t kSaltStream = 3;
constexpr uint32_t kArrivalStream = 4;
constexpr uint32_t kLoadKeyStream = 5;
constexpr uint32_t kRouteStream = 6;

}  // namespace

TierDispatcher::TierDispatcher(const ServeConfig& cfg)
    : cfg_(cfg),
      shards_(cfg.shards),
      global_keys_(cfg.keys * cfg.shards),
      budget_(cfg.ops * cfg.shards),
      latency_(cfg.dispatch_latency),
      mix_sampler_(cfg.mix, ServeSubSeed(cfg.seed, cfg.shards, kMixStream)),
      zipf_(global_keys_, cfg.theta, ServeSubSeed(cfg.seed, cfg.shards, kZipfStream)),
      think_rng_(ServeSubSeed(cfg.seed, cfg.shards, kThinkStream)),
      // Global arrival rate: the per-shard mean divided by the shard count,
      // so the tier carries the same total offered load as the legacy engine.
      arrivals_(cfg.interarrival_cycles / cfg.shards,
                ServeSubSeed(cfg.seed, cfg.shards, kArrivalStream)),
      route_salt_(ServeSubSeed(cfg.seed, cfg.shards, kRouteStream)),
      key_scramble_salt_(ServeSubSeed(cfg.seed, cfg.shards, kSaltStream)),
      next_insert_key_(global_keys_ + 1) {
  PMEMSIM_CHECK(cfg.shards > 0 && cfg.keys > 0);
  PMEMSIM_CHECK_MSG(budget_ <= UINT32_MAX, "open-loop sequence ids are 32-bit");
  latest_skew_ = !cfg.mix_name.empty() && (cfg.mix_name[0] == 'd' || cfg.mix_name[0] == 'D');
}

uint32_t TierDispatcher::Route(uint64_t key) const {
  return static_cast<uint32_t>(Mix64(key ^ route_salt_) % shards_);
}

std::vector<std::vector<uint64_t>> TierDispatcher::PartitionLoadKeys() const {
  const std::vector<uint64_t> all =
      MakeLoadKeys(global_keys_, ServeSubSeed(cfg_.seed, cfg_.shards, kLoadKeyStream));
  std::vector<std::vector<uint64_t>> per_shard(shards_);
  for (uint32_t s = 0; s < shards_; ++s) {
    per_shard[s].reserve(global_keys_ / shards_ + 1);
  }
  for (const uint64_t key : all) {
    per_shard[Route(key)].push_back(key);
  }
  return per_shard;
}

void TierDispatcher::SetDeliverFn(std::function<void(uint32_t, const Request&)> fn) {
  deliver_ = std::move(fn);
}

void TierDispatcher::StartServing(Cycles t0) {
  PMEMSIM_CHECK(deliver_ != nullptr);
  serve_start_ = t0;
  if (cfg_.loop == LoopMode::kClosed) {
    const uint64_t clients = uint64_t{cfg_.clients} * shards_;
    const uint64_t first = std::min(clients, budget_);
    for (uint32_t c = 0; c < first; ++c) {
      Deliver(Materialize(t0 + ThinkDraw() + latency_, c));
      ++issued_;
    }
  } else if (budget_ > 0) {
    next_open_issue_ = t0 + arrivals_.Next();
  }
}

void TierDispatcher::DeliverUpTo(Cycles epoch_end) {
  if (cfg_.loop != LoopMode::kOpen) {
    return;
  }
  while (issued_ < budget_ && next_open_issue_ + latency_ < epoch_end) {
    Deliver(Materialize(next_open_issue_ + latency_, open_seq_++));
    ++issued_;
    if (issued_ < budget_) {
      next_open_issue_ = serve_start_ + arrivals_.Next();
    }
  }
}

void TierDispatcher::ProcessEvents(std::vector<DomainEvent>* events) {
  std::sort(events->begin(), events->end());
  for (const DomainEvent& ev : *events) {
    OnEvent(ev.time, ev.client);
  }
  events->clear();
}

void TierDispatcher::Pump(Cycles now) {
  if (cfg_.loop != LoopMode::kOpen) {
    return;
  }
  while (issued_ < budget_ && next_open_issue_ + latency_ <= now) {
    Deliver(Materialize(next_open_issue_ + latency_, open_seq_++));
    ++issued_;
    if (issued_ < budget_) {
      next_open_issue_ = serve_start_ + arrivals_.Next();
    }
  }
}

void TierDispatcher::OnEvent(Cycles time, uint32_t client) {
  if (cfg_.loop != LoopMode::kClosed || issued_ >= budget_) {
    return;  // budget spent: the client retires
  }
  Deliver(Materialize(time + ThinkDraw() + latency_, client));
  ++issued_;
}

std::optional<Cycles> TierDispatcher::NextArrivalHint() const {
  if (cfg_.loop == LoopMode::kOpen && issued_ < budget_) {
    return next_open_issue_ + latency_;
  }
  return std::nullopt;
}

bool TierDispatcher::Exhausted() const {
  return cfg_.loop == LoopMode::kClosed || issued_ >= budget_;
}

Request TierDispatcher::Materialize(Cycles arrival, uint32_t client) {
  Request r;
  r.arrival = arrival;
  r.client = client;
  r.op = mix_sampler_.Next();
  switch (r.op) {
    case ServeOp::kInsert:
      r.key = next_insert_key_++;
      break;
    case ServeOp::kScan:
      r.key = SkewedKey();
      r.scan_len = cfg_.scan_len;
      break;
    default:
      r.key = SkewedKey();
      break;
  }
  return r;
}

uint64_t TierDispatcher::SkewedKey() {
  const uint64_t population = next_insert_key_ - 1;  // keys 1..population exist
  const uint64_t rank = zipf_.Next();
  if (latest_skew_) {
    return population - rank % population;
  }
  return 1 + Mix64(rank ^ key_scramble_salt_) % population;
}

Cycles TierDispatcher::ThinkDraw() {
  const double u = think_rng_.NextDouble();
  const double cycles = -cfg_.think_cycles * std::log(1.0 - u);
  return cycles < 1.0 ? Cycles{1} : static_cast<Cycles>(cycles);
}

void TierDispatcher::Deliver(const Request& r) { deliver_(Route(r.key), r); }

}  // namespace pmemsim
