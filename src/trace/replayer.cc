#include "src/trace/replayer.h"

#include <cinttypes>
#include <cstdio>
#include <vector>

namespace pmemsim {
namespace {

void FormatDivergence(ReplayResult* res, uint64_t index, const TraceRecord& rec, Cycles got) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "replay diverged at record %" PRIu64 " (thread %u, op %s, addr 0x%" PRIx64
                "): clock %" PRIu64 " vs recorded %" PRIu64,
                index, rec.thread, TraceOpName(rec.op), rec.addr, static_cast<uint64_t>(got),
                static_cast<uint64_t>(rec.clock));
  res->error = buf;
}

}  // namespace

ReplayResult ReplaySegment(const TraceSegment& seg, System& system, const ReplayOptions& opts) {
  ReplayResult res;

  std::vector<ThreadContext*> ctxs;
  ctxs.reserve(seg.thread_nodes.size());
  for (const NodeId node : seg.thread_nodes) {
    ctxs.push_back(&system.CreateThread(node));
    if (opts.on_thread_created) {
      opts.on_thread_created(*ctxs.back(), static_cast<uint32_t>(ctxs.size() - 1));
    }
  }

  // Payload bytes are not recorded (statistics and timing are address- and
  // order-driven), so data-carrying ops replay zeroes.
  std::vector<uint8_t> scratch;
  const uint8_t zero_line[kCacheLineSize] = {};

  for (uint64_t i = 0; i < seg.records.size(); ++i) {
    const TraceRecord& rec = seg.records[i];
    ThreadContext& ctx = *ctxs[rec.thread];
    switch (rec.op) {
      case TraceOp::kLoad64:
        (void)ctx.Load64(rec.addr);
        break;
      case TraceOp::kLoadLine:
        ctx.LoadLine(rec.addr);
        break;
      case TraceOp::kLoadNoPrefetch:
        (void)ctx.Load64NoPrefetch(rec.addr);
        break;
      case TraceOp::kStore64:
        ctx.Store64(rec.addr, 0);
        break;
      case TraceOp::kStoreLine:
        ctx.StoreLine(rec.addr);
        break;
      case TraceOp::kRead:
        scratch.resize(rec.aux);
        ctx.Read(rec.addr, scratch.data(), rec.aux);
        break;
      case TraceOp::kWrite:
        scratch.assign(rec.aux, 0);
        ctx.Write(rec.addr, scratch.data(), rec.aux);
        break;
      case TraceOp::kNtStore64:
        ctx.NtStore64(rec.addr, 0);
        break;
      case TraceOp::kNtStoreLine:
        ctx.NtStoreLine(rec.addr, zero_line);
        break;
      case TraceOp::kNtWrite:
        scratch.assign(rec.aux, 0);
        ctx.NtWrite(rec.addr, scratch.data(), rec.aux);
        break;
      case TraceOp::kClwb:
        ctx.Clwb(rec.addr);
        break;
      case TraceOp::kClflushopt:
        ctx.Clflushopt(rec.addr);
        break;
      case TraceOp::kSfence:
        ctx.Sfence();
        break;
      case TraceOp::kMfence:
        ctx.Mfence();
        break;
      case TraceOp::kStreamCopy:
        ctx.StreamCopyXPLine(rec.addr, rec.aux);
        break;
      case TraceOp::kLoadMulti:
        ctx.LoadMulti(rec.multi.data(), rec.multi.size());
        break;
      case TraceOp::kCompute:
        ctx.AddCompute(rec.aux);
        break;
      case TraceOp::kMarker:
        // Re-emit through the context so a replay under a fresh recorder
        // re-records the marker at the same stream position.
        ctx.TraceMarker(static_cast<uint32_t>(rec.aux));
        if (opts.on_marker) {
          opts.on_marker(static_cast<uint32_t>(rec.aux), rec.thread);
        }
        break;
      case TraceOp::kOpCount:
        res.error = "invalid op in segment";
        return res;
    }
    if (opts.verify_clocks && ctx.clock() != rec.clock) {
      FormatDivergence(&res, i, rec, ctx.clock());
      return res;
    }
    ++res.records_applied;
  }

  for (const ThreadContext* ctx : ctxs) {
    res.end_clock = std::max(res.end_clock, ctx->clock());
  }
  res.ok = true;
  return res;
}

}  // namespace pmemsim
