# Empty dependencies file for imc_test.
# This may be replaced when dependencies are built.
