// YCSB-style workload driver (paper §4: 16 M 16 B key-value inserts; scaled
// key counts preserve the shape since behaviour is working-set driven).

#ifndef SRC_WORKLOAD_YCSB_H_
#define SRC_WORKLOAD_YCSB_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"

namespace pmemsim {

enum class KeyDistribution : uint8_t {
  kUniform,   // uniformly random existing key
  kZipfian,   // theta = 0.99
};

// Request-op categories of the standard YCSB core workloads.
enum class ServeOp : uint8_t { kRead, kUpdate, kInsert, kScan, kRmw };
inline constexpr int kServeOpCount = 5;
const char* ServeOpName(ServeOp op);

// One core-workload operation mix; the shares sum to 1.
struct YcsbMix {
  double read = 0;
  double update = 0;
  double insert = 0;
  double scan = 0;
  double rmw = 0;
};

// The standard core mixes by letter ("a".."f", case-insensitive):
//   A 50/50 read/update   B 95/5 read/update      C read-only
//   D 95/5 read/insert    E 95/5 scan/insert      F 50/50 read/rmw
// Returns nullopt for unknown names so callers route the error through their
// flag-rejection path (like PlatformByName).
std::optional<YcsbMix> MixByName(const std::string& name);

// Draws op categories i.i.d. with the mix's shares (cumulative thresholds
// over one uniform double, so the draw order is stable per seed).
class MixSampler {
 public:
  MixSampler(const YcsbMix& mix, uint64_t seed);
  ServeOp Next();

 private:
  double cum_[kServeOpCount];
  Rng rng_;
};

// Open-loop Poisson arrival process: exponential inter-arrival times with the
// given mean (in cycles), accumulated into absolute arrival cycles.
class PoissonArrivalGenerator {
 public:
  PoissonArrivalGenerator(double mean_interarrival_cycles, uint64_t seed);

  // Absolute cycle of the next arrival (monotone non-decreasing).
  Cycles Next();
  // The raw exponential draw, exposed for distribution tests.
  double NextInterarrival();

 private:
  double mean_;
  double t_ = 0.0;
  Rng rng_;
};

// The YCSB load phase: `count` unique non-zero keys in randomized order.
std::vector<uint64_t> MakeLoadKeys(uint64_t count, uint64_t seed);

// Splits keys into `shards` contiguous chunks (one per worker thread).
std::vector<std::vector<uint64_t>> ShardKeys(const std::vector<uint64_t>& keys, uint32_t shards);

// A request stream of `count` operations against `loaded` keys.
std::vector<uint64_t> MakeRequestKeys(const std::vector<uint64_t>& loaded, uint64_t count,
                                      KeyDistribution dist, uint64_t seed);

}  // namespace pmemsim

#endif  // SRC_WORKLOAD_YCSB_H_
