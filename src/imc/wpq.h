// Write Pending Queue: the per-DIMM store queue inside the iMC's ADR domain.
//
// DDR-T stores are asynchronous (paper §1, §3.5): a store/flush *persists* the
// moment it is accepted into the WPQ, long before the data reaches the DIMM's
// write buffer or the 3D-Xpoint media. The WPQ is bounded; when the DIMM's
// write path backs up (media write ports saturated), acceptance stalls and
// store latency finally becomes visible to the program.

#ifndef SRC_IMC_WPQ_H_
#define SRC_IMC_WPQ_H_

#include <cstdint>
#include <deque>

#include "src/common/types.h"
#include "src/trace/counters.h"

namespace pmemsim {

struct WpqConfig {
  uint32_t entries = 16;
  Cycles accept_latency = 55;  // iMC processing before the store is in ADR
  Cycles drain_latency = 110;  // WPQ -> DIMM transfer (DDR-T write slot)
};

class Wpq {
 public:
  Wpq(const WpqConfig& config, Counters* counters);

  struct AcceptResult {
    Cycles accepted_at = 0;  // persist point (what fences wait for)
    Cycles drained_at = 0;   // when the entry reaches the DIMM write buffer
  };

  // Accepts a 64 B entry arriving at `now`. If the queue is full, acceptance
  // waits for the oldest entry to drain (counted as wpq_stall_cycles).
  // `dimm_backpressure_until` lets the owner delay this entry's drain start
  // (e.g. the DIMM's media write ports are saturated).
  AcceptResult Accept(Cycles now, Cycles dimm_backpressure_until);

  // Registers extra back-pressure discovered after the previous drain (the
  // DIMM reports eviction pressure only once the write lands).
  void DelayDrain(Cycles until);

  size_t OccupancyAt(Cycles now) const;

  void Reset();

  // Chrome-trace row for this queue's occupancy series (0 = emit nothing).
  void SetTraceTrack(int track) { trace_track_ = track; }

 private:
  WpqConfig config_;
  Counters* counters_;
  int trace_track_ = 0;

  // Drain-completion times of entries still logically in the queue.
  std::deque<Cycles> inflight_;
  Cycles drain_free_at_ = 0;  // single drain port
};

}  // namespace pmemsim

#endif  // SRC_IMC_WPQ_H_
