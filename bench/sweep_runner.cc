#include "bench/sweep_runner.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdarg>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>

#include "src/common/check.h"

namespace pmemsim_bench {

void SweepPoint::Printf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (n > 0) {
    const size_t old = text_.size();
    text_.resize(old + static_cast<size_t>(n) + 1);
    std::vsnprintf(&text_[old], static_cast<size_t>(n) + 1, fmt, args_copy);
    text_.resize(old + static_cast<size_t>(n));  // drop the NUL
  }
  va_end(args_copy);
}

BenchReport::Row& SweepPoint::AddRow() {
  rows_.emplace_back();
  return rows_.back();
}

SweepRunner::SweepRunner(const Flags& flags) {
  const uint64_t jobs = flags.GetU64("jobs", 1);
  jobs_ = jobs == 0 ? 1 : static_cast<uint32_t>(jobs);
  if (jobs_ > 1 && pmemsim::TraceEmitter::Global().enabled()) {
    std::fprintf(stderr,
                 "note: --trace_out uses the process-wide trace buffer; "
                 "running with --jobs=1 for a deterministic trace\n");
    jobs_ = 1;
  }
}

void SweepRunner::Add(std::string label, std::function<void(SweepPoint&)> fn) {
  points_.push_back(Point{std::move(label), std::move(fn)});
}

namespace {

// Execution state of one queued point, filled in by a worker.
struct PointState {
  SweepPoint output;
  std::string error;  // non-empty <=> the point failed
  bool failed = false;
  bool done = false;
};

// Runs one point with failure isolation: CHECK failures (rethrown as
// pmemsim::CheckFailure under the capture scope) and exceptions become an
// error recorded on the state instead of killing the process.
void RunPoint(const std::function<void(SweepPoint&)>& fn, PointState& state) {
  pmemsim::ScopedCheckCapture capture;
  try {
    fn(state.output);
  } catch (const std::exception& e) {
    state.failed = true;
    state.error = e.what();
  } catch (...) {
    state.failed = true;
    state.error = "unknown exception";
  }
}

}  // namespace

int SweepRunner::Run(BenchReport& report) {
  PMEMSIM_CHECK_MSG(!ran_, "SweepRunner::Run called twice");
  ran_ = true;

  std::vector<PointState> states(points_.size());

  // Deterministic emission: submission order, whatever the completion order.
  int failures = 0;
  auto emit = [&](size_t i) {
    PointState& state = states[i];
    if (state.failed) {
      ++failures;
      std::fprintf(stderr, "sweep point failed: %s: %s\n", points_[i].label.c_str(),
                   state.error.c_str());
      std::printf("error,%s\n", points_[i].label.c_str());
      report.AddRow().Set("point", points_[i].label).Set("error", state.error);
    } else {
      if (!state.output.text_.empty()) {
        std::fwrite(state.output.text_.data(), 1, state.output.text_.size(), stdout);
      }
      report.AppendRows(std::move(state.output.rows_));
    }
    std::fflush(stdout);
  };

  if (jobs_ <= 1 || points_.size() <= 1) {
    // Serial path: run on the calling thread, emitting as each point ends.
    // Identical to the historical per-bench loops, plus failure isolation.
    for (size_t i = 0; i < points_.size(); ++i) {
      RunPoint(points_[i].fn, states[i]);
      states[i].done = true;
      emit(i);
    }
  } else {
    // Sharded path: workers claim points via an atomic cursor; the main
    // thread streams each point's output as soon as every earlier point has
    // been emitted. Each point builds its own System from fixed seeds, so
    // its output is independent of which worker runs it or when.
    std::atomic<size_t> next{0};
    std::mutex mu;
    std::condition_variable cv;
    auto worker = [&]() {
      while (true) {
        const size_t i = next.fetch_add(1);
        if (i >= points_.size()) {
          return;
        }
        PointState& state = states[i];
        RunPoint(points_[i].fn, state);
        {
          std::lock_guard<std::mutex> lock(mu);
          state.done = true;
        }
        cv.notify_one();
      }
    };
    const uint32_t n = static_cast<uint32_t>(std::min<size_t>(jobs_, points_.size()));
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (uint32_t t = 0; t < n; ++t) {
      threads.emplace_back(worker);
    }
    {
      std::unique_lock<std::mutex> lock(mu);
      for (size_t i = 0; i < states.size(); ++i) {
        cv.wait(lock, [&] { return states[i].done; });
        lock.unlock();
        emit(i);  // emission off-lock: workers keep claiming points
        lock.lock();
      }
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }
  return failures;
}

int SweepRunner::Finish(BenchReport& report) {
  const size_t total = points_.size();
  const int failures = Run(report);
  const int report_rc = report.Finish();
  if (failures > 0) {
    std::fprintf(stderr, "sweep: %d of %zu points failed\n", failures, total);
    return 1;
  }
  return report_rc;
}

}  // namespace pmemsim_bench
