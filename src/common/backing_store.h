// Sparse byte-addressable backing store for the simulated physical address
// space. Timing is handled elsewhere; this holds the actual data so persistent
// data structures built on the simulator are functionally real.
//
// Pages materialize on first write; reads of untouched pages return zeros
// without allocating (large cold regions stay cheap).

#ifndef SRC_COMMON_BACKING_STORE_H_
#define SRC_COMMON_BACKING_STORE_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "src/common/types.h"

namespace pmemsim {

class BackingStore {
 public:
  void Read(Addr addr, void* out, size_t len) const;
  void Write(Addr addr, const void* data, size_t len);

  uint64_t ReadU64(Addr addr) const;
  void WriteU64(Addr addr, uint64_t value);

  // Zero-fills a range (drops whole pages where possible).
  void Zero(Addr addr, uint64_t len);

  size_t allocated_pages() const { return pages_.size(); }

 private:
  using Page = std::array<uint8_t, kPageSize>;

  const Page* FindPage(Addr addr) const;
  Page& EnsurePage(Addr addr);

  std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
};

}  // namespace pmemsim

#endif  // SRC_COMMON_BACKING_STORE_H_
