#include "src/common/config.h"

#include <cctype>

namespace pmemsim {

PlatformConfig G1Platform() {
  PlatformConfig p;
  p.name = "G1-Optane";
  p.generation = Generation::kG1;
  p.cpu_ghz = 2.1;

  // Xeon Gold 6320: 32 KB L1d, 1 MB L2, 27.5 MB L3.
  p.cache.l1 = {KiB(32), 8, 4};
  p.cache.l2 = {MiB(1), 16, 14};
  p.cache.l3 = {MiB(27) + KiB(512), 11, 48};
  p.cache.clwb_retains_line = false;  // G1 clwb behaves like clflushopt
  p.cache.clwb_dispatch_delay = 420;

  // 128 GB 100-series Optane DIMM.
  p.optane.read_buffer_bytes = KiB(16);
  p.optane.write_buffer_bytes = KiB(16);
  p.optane.write_buffer_partial_reserve = 16;  // 12 KB usable for partial lines
  p.optane.periodic_full_writeback = true;
  p.optane.full_writeback_period = 5000;
  p.optane.batch_evict = true;
  p.optane.batch_evict_keep_fraction = 0.5;
  p.optane.buffer_hit_latency = 90;
  p.optane.media_read_latency = 420;
  p.optane.media_write_latency = 480;
  p.optane.media_read_ports = 12;
  p.optane.media_write_ports = 4;
  p.optane.ait_cache_coverage_bytes = MiB(16);
  p.optane.ait_miss_penalty = 210;
  p.optane.write_visible_delay = 2100;
  p.optane.unordered_read_overlap = 800;
  p.optane.same_line_flush_stall = true;
  p.optane.same_line_stall_window = 550;

  p.dram.load_latency = 190;
  p.dram.store_accept_latency = 35;
  p.dram.write_visible_delay = 420;
  p.dram.unordered_read_overlap = 380;

  p.imc.numa_hop_latency = 180;
  return p;
}

PlatformConfig G2Platform() {
  PlatformConfig p = G1Platform();
  p.name = "G2-Optane";
  p.generation = Generation::kG2;
  p.cpu_ghz = 3.0;

  // Xeon Gold 5317 (Ice Lake): larger private L2, 36 MB L3. Cycle latencies
  // are higher at 3 GHz and the retained-after-clwb coherence cost shows up
  // as a larger hit latency on memory-side accesses (paper §3.5).
  p.cache.l1 = {KiB(48), 12, 5};
  p.cache.l2 = {MiB(1) + KiB(256), 20, 16};
  p.cache.l3 = {MiB(36), 12, 54};
  p.cache.clwb_retains_line = true;  // G2 clwb keeps the line cached
  p.cache.clwb_dispatch_delay = 420;

  // 200-series: slightly larger read buffer (22 KB), no periodic write-back of
  // fully written XPLines, single-victim random eviction, knee beyond 12 KB.
  p.optane.read_buffer_bytes = KiB(22);
  p.optane.write_buffer_bytes = KiB(16);
  p.optane.write_buffer_partial_reserve = 0;  // full 16 KB usable
  p.optane.periodic_full_writeback = false;
  p.optane.batch_evict = false;
  p.optane.buffer_hit_latency = 150;  // coherence upkeep makes buffer hits dearer
  p.optane.media_read_latency = 560;  // ~same ns at a higher clock
  p.optane.media_write_latency = 640;
  p.optane.ait_cache_coverage_bytes = MiB(16);
  p.optane.ait_miss_penalty = 260;
  p.optane.write_visible_delay = 1750;
  p.optane.unordered_read_overlap = 1100;
  p.optane.same_line_flush_stall = false;

  p.dram.load_latency = 260;  // higher cycles at 3 GHz + coherence cost
  p.dram.store_accept_latency = 40;
  p.dram.write_visible_delay = 500;
  p.dram.unordered_read_overlap = 430;

  p.imc.numa_hop_latency = 210;
  return p;
}

PlatformConfig G2EadrPlatform() {
  PlatformConfig p = G2Platform();
  p.name = "G2-Optane-eADR";
  p.eadr_enabled = true;
  return p;
}

PlatformConfig PlatformFor(Generation gen) {
  return gen == Generation::kG1 ? G1Platform() : G2Platform();
}

std::optional<PlatformConfig> PlatformByName(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "g1") {
    return G1Platform();
  }
  if (lower == "g2") {
    return G2Platform();
  }
  if (lower == "g2-eadr") {
    return G2EadrPlatform();
  }
  return std::nullopt;
}

}  // namespace pmemsim
