# Empty compiler generated dependencies file for ablation_coalescing.
# This may be replaced when dependencies are built.
