#include "src/cpu/thread_context.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/trace/recorder.h"

namespace pmemsim {

ThreadContext::ThreadContext(const PlatformConfig& config, BackingStore* backing,
                             MemoryController* mc, SetAssocCache* shared_l3, Counters* counters,
                             NodeId node, uint64_t rng_seed)
    : cpu_(config.cpu),
      eadr_(config.eadr_enabled),
      backing_(backing),
      mc_(mc),
      counters_(counters),
      node_(node),
      own_hierarchy_(config.cache, shared_l3, mc, counters, node, rng_seed),
      hier_(&own_hierarchy_) {
  PMEMSIM_CHECK(backing != nullptr);
  PMEMSIM_CHECK(mc != nullptr);
  BindPlatformDispatch();
}

ThreadContext::ThreadContext(const PlatformConfig& config, BackingStore* backing,
                             MemoryController* mc, Counters* counters, ThreadContext* sibling)
    : cpu_(config.cpu),
      eadr_(config.eadr_enabled),
      backing_(backing),
      mc_(mc),
      counters_(counters),
      node_(sibling->node_),
      own_hierarchy_(config.cache, &sibling->hierarchy().shared_l3(), mc, counters,
                     sibling->node_, 0),
      hier_(&sibling->hierarchy()) {
  PMEMSIM_CHECK(backing != nullptr);
  PMEMSIM_CHECK(mc != nullptr);
  clock_ = sibling->clock_;
  BindPlatformDispatch();
}

void ThreadContext::BindPlatformDispatch() {
  // Resolve the per-platform flush paths once: eADR presets retire flushes as
  // cheap no-ops, ADR presets run the real write-back machinery.
  clwb_impl_ = eadr_ ? &ThreadContext::ClwbEadr : &ThreadContext::ClwbAdr;
  clflushopt_impl_ = eadr_ ? &ThreadContext::ClflushoptEadr : &ThreadContext::ClflushoptAdr;
  outstanding_.Init(cpu_.store_buffer_depth);
}

void ThreadContext::AdvanceTo(Cycles t) { clock_ = std::max(clock_, t); }

Cycles ThreadContext::ScaleCore(Cycles c) const {
  return smt_scale_ == 1.0 ? c : static_cast<Cycles>(static_cast<double>(c) * smt_scale_);
}

void ThreadContext::RecordMemAccess(AttributionCollector::Op op, Cycles end_to_end,
                                    const HierAccessResult& r) {
  AttributionCollector::StageDurations stages;
  switch (r.hit_level) {
    case 1:
      stages.v[AttributionCollector::kL1Hit] = end_to_end;
      break;
    case 2:
      stages.v[AttributionCollector::kL2Hit] = end_to_end;
      break;
    case 3:
      stages.v[AttributionCollector::kL3Hit] = end_to_end;
      break;
    default:
      // Full miss: the memory side reported where the span went; the fields
      // sum exactly to end_to_end, so nothing lands in the core remainder.
      stages.v[AttributionCollector::kImcTransit] = r.mem.imc_transit;
      stages.v[AttributionCollector::kRapStall] = r.mem.rap_stall;
      stages.v[AttributionCollector::kReadBuffer] = r.mem.buffer;
      stages.v[AttributionCollector::kAitLookup] = r.mem.ait;
      stages.v[AttributionCollector::kMediaRead] = r.mem.media;
      stages.v[AttributionCollector::kDram] = r.mem.dram;
      break;
  }
  attribution_->RecordAccess(op, end_to_end, stages);
}

void ThreadContext::RecordPersistOp(AttributionCollector::Op op, Cycles t0, Cycles wpq_wait,
                                    Cycles accepted_at) {
  AttributionCollector::StageDurations stages;
  stages.v[AttributionCollector::kWpqWait] = wpq_wait;
  attribution_->RecordAccess(op, clock_ - t0, stages);
  // The acceptance delay itself is asynchronous — it surfaces at the next
  // fence — so it is tracked outside the conservation identity.
  if (accepted_at > t0) {
    attribution_->RecordAsyncAccept(accepted_at - t0);
  }
}

uint64_t ThreadContext::LoadInternal(Addr addr, bool train) {
  // Every load ends with backing_->ReadU64(addr), so start the host fetch of
  // that page first: it overlaps the whole simulated walk. No simulated
  // effect (dependent-chase shapes cannot hint their next address early, so
  // this entry-point overlap is all the host parallelism they get). Skipped
  // when an explicit hint already warmed the line one operation ago.
  if (CacheLineBase(addr) != hint_line_) {
    backing_->PrefetchRead(addr);
  }
  // Out-of-order early execution: an unordered load targeting a just-flushed
  // line can issue before the flush's invalidation retires and hit the cache.
  if (!loads_ordered_ && recent_flush_count_ != 0) {
    const Addr line = CacheLineBase(addr);
    for (uint32_t i = 0; i < recent_flush_count_; ++i) {
      if (recent_flushes_[i] == line && hier_->ProbeAny(line, /*now=*/0)) {
        const Cycles latency = ScaleCore(hier_->l1().hit_latency());
        last_access_ = {1, latency, 0};
        clock_ += latency;
        if (attribution_ != nullptr) {
          HierAccessResult early;
          early.hit_level = 1;
          RecordMemAccess(AttributionCollector::kLoad, latency, early);
        }
        return backing_->ReadU64(addr);
      }
    }
  }
  HierAccessResult& r = *arena_.Alloc();
  hier_->Load(addr, clock_, loads_ordered_, train, &r);
  Cycles latency = r.complete_at - clock_;
  if (r.hit_level >= 1) {
    latency = ScaleCore(latency);  // core-local: subject to SMT sharing
  }
  last_access_ = {r.hit_level, latency, r.stalled_for};
  clock_ += latency;
  if (attribution_ != nullptr) {
    RecordMemAccess(AttributionCollector::kLoad, latency, r);
  }
  return backing_->ReadU64(addr);
}

void ThreadContext::LoadMulti(const Addr* addrs, size_t count) {
  const Cycles start = clock_;
  Cycles latest = start;
  for (size_t i = 0; i < count; ++i) {
    clock_ = start;
    (void)LoadInternal(addrs[i], /*train=*/true);
    latest = std::max(latest, clock_);
  }
  clock_ = latest;
  if (recorder_ != nullptr) {
    recorder_->RecordMulti(trace_tid_, addrs, count, clock_);
  }
}

uint64_t ThreadContext::Load64(Addr addr) {
  const uint64_t v = LoadInternal(addr, /*train=*/true);
  if (recorder_ != nullptr) {
    recorder_->Record(trace_tid_, TraceOp::kLoad64, addr, 0, clock_);
  }
  return v;
}

uint64_t ThreadContext::Load64NoPrefetch(Addr addr) {
  const uint64_t v = LoadInternal(addr, /*train=*/false);
  if (recorder_ != nullptr) {
    recorder_->Record(trace_tid_, TraceOp::kLoadNoPrefetch, addr, 0, clock_);
  }
  return v;
}

void ThreadContext::LoadLine(Addr addr) {
  (void)LoadInternal(addr, /*train=*/true);
  if (recorder_ != nullptr) {
    recorder_->Record(trace_tid_, TraceOp::kLoadLine, addr, 0, clock_);
  }
}

void ThreadContext::RecordCompute(Cycles c) {
  recorder_->Record(trace_tid_, TraceOp::kCompute, 0, c, clock_);
}

void ThreadContext::TraceMarker(uint32_t id) {
  if (recorder_ != nullptr) {
    recorder_->Record(trace_tid_, TraceOp::kMarker, 0, id, clock_);
  }
}

void ThreadContext::StoreTimed(Addr addr) {
  const Cycles t0 = clock_;
  HierAccessResult& r = *arena_.Alloc();
  hier_->Store(addr, clock_, &r);
  Cycles latency;
  if (r.hit_level >= 1) {
    latency = ScaleCore(r.complete_at - clock_);
  } else {
    // Posted store: the RFO proceeds in the background (its bandwidth and
    // cache fills have been accounted); the pipeline pays a fixed cost.
    latency = ScaleCore(cpu_.store_miss_post_cost);
  }
  last_access_ = {r.hit_level, latency, r.stalled_for};
  clock_ += latency + ScaleCore(cpu_.store_issue_cost);
  if (attribution_ != nullptr) {
    AttributionCollector::StageDurations stages;
    switch (r.hit_level) {
      case 1:
        stages.v[AttributionCollector::kL1Hit] = latency;
        break;
      case 2:
        stages.v[AttributionCollector::kL2Hit] = latency;
        break;
      case 3:
        stages.v[AttributionCollector::kL3Hit] = latency;
        break;
      default:
        // Posted miss: the RFO's memory latency is off the critical path, so
        // the pipeline cost stays in core (the background traffic is visible
        // in the bandwidth counters, not here).
        break;
    }
    attribution_->RecordAccess(AttributionCollector::kStore, clock_ - t0, stages);
  }
}

void ThreadContext::Store64(Addr addr, uint64_t value) {
  StoreTimed(addr);
  backing_->WriteU64(addr, value);
  if (observer_ != nullptr) {
    observer_->OnStore(addr, sizeof(value), clock_);
  }
  if (recorder_ != nullptr) {
    recorder_->Record(trace_tid_, TraceOp::kStore64, addr, 0, clock_);
  }
}

void ThreadContext::StoreLine(Addr addr) {
  StoreTimed(addr);
  if (recorder_ != nullptr) {
    recorder_->Record(trace_tid_, TraceOp::kStoreLine, addr, 0, clock_);
  }
}

void ThreadContext::Read(Addr addr, void* out, size_t len) {
  // Touch each covered cacheline once for timing, then copy the bytes.
  for (Addr line = CacheLineBase(addr); line < addr + len; line += kCacheLineSize) {
    (void)LoadInternal(line, /*train=*/true);
  }
  backing_->Read(addr, out, len);
  if (recorder_ != nullptr) {
    recorder_->Record(trace_tid_, TraceOp::kRead, addr, len, clock_);
  }
}

void ThreadContext::Write(Addr addr, const void* data, size_t len) {
  for (Addr line = CacheLineBase(addr); line < addr + len; line += kCacheLineSize) {
    StoreTimed(line);
  }
  backing_->Write(addr, data, len);
  if (observer_ != nullptr) {
    observer_->OnStore(addr, len, clock_);
  }
  if (recorder_ != nullptr) {
    recorder_->Record(trace_tid_, TraceOp::kWrite, addr, len, clock_);
  }
}

void ThreadContext::TrackPersist(Addr line, Cycles accepted_at, bool is_flush) {
  // Store-buffer back-pressure: too many unaccepted persists stall the core.
  if (outstanding_.size() >= cpu_.store_buffer_depth) {
    AdvanceTo(outstanding_.front().accepted_at);
    outstanding_.pop_front();
  }
  outstanding_.push_back({line, accepted_at, is_flush});
  DrainRetired();
}

void ThreadContext::DrainRetired() {
  while (!outstanding_.empty() && outstanding_.front().accepted_at <= clock_) {
    outstanding_.pop_front();
  }
}

void ThreadContext::NoteRecentFlush(Addr line) {
  for (uint32_t i = 0; i < recent_flush_count_; ++i) {
    if (recent_flushes_[i] == line) {
      return;
    }
  }
  if (recent_flush_count_ < recent_flushes_.size()) {
    recent_flushes_[recent_flush_count_++] = line;
  } else {
    // Keep the two newest lines, oldest first.
    recent_flushes_[0] = recent_flushes_[1];
    recent_flushes_[1] = line;
  }
}

void ThreadContext::ClwbEadr(Addr addr) {
  // eADR (paper §6): the CPU caches are inside the persistence domain —
  // stores are durable once globally visible, so clwb degenerates to a
  // cheap no-op and programs simply stop flushing.
  clock_ += 1;
  if (attribution_ != nullptr) {
    attribution_->RecordAccess(AttributionCollector::kFlush, 1, {});
  }
  if (recorder_ != nullptr) {
    recorder_->Record(trace_tid_, TraceOp::kClwb, addr, 0, clock_);
  }
}

void ThreadContext::ClflushoptEadr(Addr addr) {
  // Same as Clwb under eADR: the caches are already persistent, so the
  // flush (including its invalidation) buys nothing and retires as a
  // cheap no-op.
  clock_ += 1;
  if (attribution_ != nullptr) {
    attribution_->RecordAccess(AttributionCollector::kFlush, 1, {});
  }
  if (recorder_ != nullptr) {
    recorder_->Record(trace_tid_, TraceOp::kClflushopt, addr, 0, clock_);
  }
}

void ThreadContext::ClwbAdr(Addr addr) {
  const Cycles t0 = clock_;
  const FlushResult r = hier_->Clwb(addr, clock_);
  clock_ += std::max<Cycles>(r.cost, cpu_.flush_issue_cost);
  NoteRecentFlush(CacheLineBase(addr));
  const Cycles pre_track = clock_;
  if (r.wrote) {
    TrackPersist(CacheLineBase(addr), r.accepted_at, /*is_flush=*/true);
  }
  if (attribution_ != nullptr) {
    // Any clock advance inside TrackPersist is store-buffer back-pressure:
    // waiting on the oldest outstanding persist's WPQ acceptance.
    RecordPersistOp(AttributionCollector::kFlush, t0, clock_ - pre_track,
                    r.wrote ? r.accepted_at : 0);
  }
  if (recorder_ != nullptr) {
    recorder_->Record(trace_tid_, TraceOp::kClwb, addr, 0, clock_);
  }
}

void ThreadContext::ClflushoptAdr(Addr addr) {
  const Cycles t0 = clock_;
  const FlushResult r = hier_->Clflushopt(addr, clock_);
  clock_ += std::max<Cycles>(r.cost, cpu_.flush_issue_cost);
  NoteRecentFlush(CacheLineBase(addr));
  const Cycles pre_track = clock_;
  if (r.wrote) {
    TrackPersist(CacheLineBase(addr), r.accepted_at, /*is_flush=*/true);
  }
  if (attribution_ != nullptr) {
    RecordPersistOp(AttributionCollector::kFlush, t0, clock_ - pre_track,
                    r.wrote ? r.accepted_at : 0);
  }
  if (recorder_ != nullptr) {
    recorder_->Record(trace_tid_, TraceOp::kClflushopt, addr, 0, clock_);
  }
}

void ThreadContext::NtStoreLine(Addr addr, const void* data64) {
  // Data lands in the backing store before the iMC write so persist-path
  // observers (MemoryController::SetPersistWriteHook) capture the new bytes.
  const Addr line = CacheLineBase(addr);
  if (data64 != nullptr) {
    backing_->Write(line, data64, kCacheLineSize);
  }
  const Cycles t0 = clock_;
  hier_->InvalidateAll(line);
  const McWriteResult w = mc_->Write(line, clock_, node_);
  clock_ += cpu_.nt_store_issue_cost;
  const Cycles pre_track = clock_;
  TrackPersist(line, w.accepted_at, /*is_flush=*/false);
  if (attribution_ != nullptr) {
    RecordPersistOp(AttributionCollector::kNtStore, t0, clock_ - pre_track, w.accepted_at);
  }
  if (recorder_ != nullptr) {
    recorder_->Record(trace_tid_, TraceOp::kNtStoreLine, addr, 0, clock_);
  }
}

void ThreadContext::NtStore64(Addr addr, uint64_t value) {
  // Timing is line-granular (write-combining buffers merge within the line).
  const Addr line = CacheLineBase(addr);
  backing_->WriteU64(addr, value);
  const Cycles t0 = clock_;
  hier_->InvalidateAll(line);
  const McWriteResult w = mc_->Write(line, clock_, node_);
  clock_ += cpu_.nt_store_issue_cost;
  const Cycles pre_track = clock_;
  TrackPersist(line, w.accepted_at, /*is_flush=*/false);
  if (attribution_ != nullptr) {
    RecordPersistOp(AttributionCollector::kNtStore, t0, clock_ - pre_track, w.accepted_at);
  }
  if (recorder_ != nullptr) {
    recorder_->Record(trace_tid_, TraceOp::kNtStore64, addr, 0, clock_);
  }
}

void ThreadContext::NtWrite(Addr addr, const void* data, size_t len) {
  backing_->Write(addr, data, len);
  for (Addr line = CacheLineBase(addr); line < addr + len; line += kCacheLineSize) {
    const Cycles t0 = clock_;
    hier_->InvalidateAll(line);
    const McWriteResult w = mc_->Write(line, clock_, node_);
    clock_ += cpu_.nt_store_issue_cost;
    const Cycles pre_track = clock_;
    TrackPersist(line, w.accepted_at, /*is_flush=*/false);
    if (attribution_ != nullptr) {
      RecordPersistOp(AttributionCollector::kNtStore, t0, clock_ - pre_track, w.accepted_at);
    }
  }
  if (recorder_ != nullptr) {
    recorder_->Record(trace_tid_, TraceOp::kNtWrite, addr, len, clock_);
  }
}

void ThreadContext::FenceCommon(bool is_mfence) {
  const Cycles t0 = clock_;
  Cycles wait_until = clock_;
  for (size_t i = 0; i < outstanding_.size(); ++i) {
    const Outstanding& o = outstanding_.at(i);
    wait_until = std::max(wait_until, o.accepted_at);
    if (is_mfence && o.is_flush) {
      // mfence orders younger loads after the flush's effects: any scheduled
      // invalidation becomes visible to them immediately.
      hier_->ForcePendingInvalidate(o.line);
    }
  }
  clock_ = wait_until + cpu_.fence_cost;
  outstanding_.clear();
  if (is_mfence) {
    recent_flush_count_ = 0;  // younger loads are ordered after the flushes
  }
  loads_ordered_ = is_mfence;
  if (attribution_ != nullptr) {
    // The wait for outstanding WPQ acceptances is where the asynchronous
    // persist delays become synchronous: the fence's wpq_wait stage.
    AttributionCollector::StageDurations stages;
    stages.v[AttributionCollector::kWpqWait] = wait_until - t0;
    attribution_->RecordAccess(AttributionCollector::kFence, clock_ - t0, stages);
  }
  if (observer_ != nullptr) {
    observer_->OnFence(clock_);
  }
  if (recorder_ != nullptr) {
    recorder_->Record(trace_tid_, is_mfence ? TraceOp::kMfence : TraceOp::kSfence, 0, 0, clock_);
  }
}

void ThreadContext::Sfence() { FenceCommon(/*is_mfence=*/false); }

void ThreadContext::Mfence() { FenceCommon(/*is_mfence=*/true); }

void ThreadContext::StreamCopyXPLine(Addr pm_xpline, Addr dram_buffer) {
  const Addr base = XPLineBase(pm_xpline);
  uint8_t buf[kXPLineSize];
  for (uint64_t i = 0; i < kLinesPerXPLine; ++i) {
    // 512-bit load that bypasses prefetch training...
    (void)LoadInternal(base + i * kCacheLineSize, /*train=*/false);
    clock_ += cpu_.simd_copy_cost;
    // ...paired with a store into the DRAM-resident bounce buffer.
    const HierAccessResult r = hier_->Store(dram_buffer + i * kCacheLineSize, clock_);
    clock_ = r.complete_at;
  }
  backing_->Read(base, buf, kXPLineSize);
  backing_->Write(dram_buffer, buf, kXPLineSize);
  if (recorder_ != nullptr) {
    recorder_->Record(trace_tid_, TraceOp::kStreamCopy, pm_xpline, dram_buffer, clock_);
  }
}

void ThreadContext::ResetMicroarchState() {
  hier_->ClearPrivate();
  outstanding_.clear();
  recent_flush_count_ = 0;
  loads_ordered_ = false;
}

}  // namespace pmemsim
