// Tests for SMT-sibling thread contexts (shared private caches).

#include <gtest/gtest.h>

#include "src/core/platform.h"

namespace pmemsim {
namespace {

TEST(SmtSiblingTest, SharesPrivateCaches) {
  auto system = MakeG1System(1);
  ThreadContext& worker = system->CreateThread();
  ThreadContext& helper = system->CreateSmtSibling(worker);
  const PmRegion region = system->AllocatePm(KiB(4));

  // A line loaded by the helper is an L1 hit for the worker.
  helper.Load64(region.base);
  worker.AdvanceTo(helper.clock());
  const Cycles t0 = worker.clock();
  worker.Load64(region.base);
  EXPECT_EQ(worker.clock() - t0, G1Platform().cache.l1.hit_latency);
  EXPECT_EQ(&worker.hierarchy(), &helper.hierarchy());
}

TEST(SmtSiblingTest, NonSiblingsDoNotShareL1) {
  auto system = MakeG1System(1);
  ThreadContext& a = system->CreateThread();
  ThreadContext& b = system->CreateThread();
  const PmRegion region = system->AllocatePm(KiB(4));
  a.Load64(region.base);
  b.AdvanceTo(a.clock());
  const Cycles t0 = b.clock();
  b.Load64(region.base);
  // b misses its private L1/L2 but hits the shared L3.
  EXPECT_EQ(b.clock() - t0, G1Platform().cache.l3.hit_latency);
}

TEST(SmtSiblingTest, SiblingStartsAtSiblingClock) {
  auto system = MakeG1System(1);
  ThreadContext& worker = system->CreateThread();
  worker.AddCompute(12345);
  ThreadContext& helper = system->CreateSmtSibling(worker);
  EXPECT_EQ(helper.clock(), worker.clock());
  EXPECT_EQ(helper.node(), worker.node());
}

TEST(SmtSiblingTest, SiblingFillsEvictFromSharedL1) {
  auto system = MakeG1System(1);
  ThreadContext& worker = system->CreateThread();
  ThreadContext& helper = system->CreateSmtSibling(worker);
  const PmRegion region = system->AllocatePm(MiB(1));

  worker.Load64(region.base);  // worker's hot line
  // Helper streams enough conflicting lines through the shared L1 set.
  const uint64_t l1_span = worker.hierarchy().l1().sets() * kCacheLineSize;
  for (uint64_t i = 1; i <= 12; ++i) {
    helper.Load64(region.base + i * l1_span);
  }
  worker.AdvanceTo(helper.clock());
  const Cycles t0 = worker.clock();
  worker.Load64(region.base);
  EXPECT_GT(worker.clock() - t0, G1Platform().cache.l1.hit_latency);  // evicted from L1
}

}  // namespace
}  // namespace pmemsim
