// Integrated memory controller: routes cacheline requests from the CPU to the
// DIMM population, maintains per-DIMM write pending queues (the ADR domain's
// persist point), applies the PM interleave and the NUMA interconnect hop.
//
// Address map: Optane (App Direct) regions live below kDramAddressBase and
// interleave across the configured DIMM count at 4 KB granularity; DRAM
// regions live at/above kDramAddressBase and route to the DRAM model.

#ifndef SRC_IMC_MEMORY_CONTROLLER_H_
#define SRC_IMC_MEMORY_CONTROLLER_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/common/access_record.h"
#include "src/common/config.h"
#include "src/common/types.h"
#include "src/dimm/dimm.h"
#include "src/dimm/dram_dimm.h"
#include "src/dimm/optane_dimm.h"
#include "src/imc/wpq.h"
#include "src/trace/counters.h"

namespace pmemsim {

// All DRAM addresses have this bit set; PM addresses do not.
inline constexpr Addr kDramAddressBase = 1ull << 46;

struct McReadResult {
  Cycles complete_at = 0;
  Cycles stalled_for = 0;  // read-after-persist component
  // DIMM-reported stage latencies plus the iMC's own imc_transit share; the
  // populated fields sum exactly to complete_at - now.
  MemStageBreakdown stages;
};

struct McWriteResult {
  Cycles accepted_at = 0;  // in the ADR domain: this is the persist point
  Cycles visible_at = 0;   // when a subsequent read sees the value
};

class CounterRegistry;

class MemoryController {
 public:
  // `optane_dimm_count` overrides the platform's count when non-zero (the
  // paper evaluates both a single non-interleaved DIMM and 6 interleaved).
  //
  // Scoped form: creates one counter scope per Optane DIMM ("optane_dimmN",
  // shared with its WPQ), one for the DRAM channel ("dram"), and one for the
  // iMC's own stalls ("imc") — the per-DIMM `ipmwatch` view.
  MemoryController(const PlatformConfig& platform, CounterRegistry* registry,
                   uint32_t optane_dimm_count = 0);
  // Flat form for standalone use (unit tests): every component shares
  // `counters`, as if the registry had a single scope.
  MemoryController(const PlatformConfig& platform, Counters* counters,
                   uint32_t optane_dimm_count = 0);

  // 64 B cacheline read. `ordered` marks loads executing under a full fence.
  McReadResult Read(Addr addr, Cycles now, NodeId requester, bool ordered);

  // In-place form of Read: writes complete_at / stalled_for / mem of `out`
  // (which must arrive value-initialized). Routing is devirtualized — typed
  // DIMM pointers resolved at construction, with a single-DIMM fast path that
  // skips the interleave arithmetic. Read() above wraps this.
  void ReadInto(Addr addr, Cycles now, NodeId requester, bool ordered, AccessRecord* out);

  // 64 B persist-path write (clwb write-back, nt-store, or dirty eviction).
  McWriteResult Write(Addr addr, Cycles now, NodeId requester);

  static MemoryKind KindOf(Addr addr) {
    return addr >= kDramAddressBase ? MemoryKind::kDram : MemoryKind::kOptane;
  }

  // Host-side hint: warm the target DIMM's translation state for a read that
  // may miss the whole cache hierarchy. No simulated effect.
  void PrefetchRead(Addr addr) const {
    if (KindOf(addr) != MemoryKind::kDram) {
      OptaneDimm* dimm =
          sole_optane_ != nullptr ? sole_optane_ : optane_dimms_[OptaneIndexFor(addr)].get();
      dimm->PrefetchRead(addr);
    }
  }

  // Observes every persist-path write that reaches an Optane WPQ (DRAM writes
  // are not reported): `line` is the cacheline base, `issue` the cycle the
  // write left the core, `accepted_at` its ADR persist point, `drained_at`
  // when it lands in media. Used by the crash-consistency subsystem; at most
  // one hook at a time (set an empty function to clear).
  using PersistWriteHook = std::function<void(Addr line, Cycles issue, Cycles accepted_at,
                                              Cycles drained_at)>;
  void SetPersistWriteHook(PersistWriteHook hook) { persist_hook_ = std::move(hook); }

  void Reset();

  size_t optane_dimm_count() const { return optane_dimms_.size(); }
  OptaneDimm& optane_dimm(size_t i) { return *optane_dimms_[i]; }
  DramDimm& dram_dimm() { return *dram_dimm_; }
  Wpq& optane_wpq(size_t i) { return *optane_wpqs_[i]; }

  // Per-scope views (valid only when constructed with a registry; the flat
  // form aliases every pointer to the shared struct).
  const Counters& optane_dimm_counters(size_t i) const { return *optane_scope_counters_[i]; }
  const Counters& dram_counters() const { return *dram_scope_counters_; }
  const Counters& imc_counters() const { return *counters_; }

 private:
  MemoryController(const PlatformConfig& platform, CounterRegistry* registry, Counters* counters,
                   uint32_t optane_dimm_count);

  size_t OptaneIndexFor(Addr addr) const;

  ImcConfig config_;
  Counters* counters_;
  NodeId home_node_ = 0;  // all DIMMs sit on socket 0, as on the testbeds

  std::vector<std::unique_ptr<OptaneDimm>> optane_dimms_;
  std::vector<std::unique_ptr<Wpq>> optane_wpqs_;  // one per Optane DIMM
  std::unique_ptr<DramDimm> dram_dimm_;
  std::unique_ptr<Wpq> dram_wpq_;
  // Non-interleaved fast path: with one Optane DIMM every PM address routes
  // to it, so the read path skips OptaneIndexFor's divide. Null otherwise.
  OptaneDimm* sole_optane_ = nullptr;

  std::vector<const Counters*> optane_scope_counters_;
  const Counters* dram_scope_counters_ = nullptr;

  PersistWriteHook persist_hook_;
};

}  // namespace pmemsim

#endif  // SRC_IMC_MEMORY_CONTROLLER_H_
