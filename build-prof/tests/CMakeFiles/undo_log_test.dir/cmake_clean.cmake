file(REMOVE_RECURSE
  "CMakeFiles/undo_log_test.dir/undo_log_test.cc.o"
  "CMakeFiles/undo_log_test.dir/undo_log_test.cc.o.d"
  "undo_log_test"
  "undo_log_test.pdb"
  "undo_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/undo_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
