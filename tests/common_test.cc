// Tests for src/common: types/address math, RNG, stats, backing store, config.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/common/backing_store.h"
#include "src/common/config.h"
#include "src/common/random.h"
#include "src/common/stats.h"
#include "src/common/types.h"

namespace pmemsim {
namespace {

TEST(TypesTest, AddressMath) {
  EXPECT_EQ(CacheLineBase(0), 0u);
  EXPECT_EQ(CacheLineBase(63), 0u);
  EXPECT_EQ(CacheLineBase(64), 64u);
  EXPECT_EQ(XPLineBase(255), 0u);
  EXPECT_EQ(XPLineBase(256), 256u);
  EXPECT_EQ(LineIndexInXPLine(0), 0u);
  EXPECT_EQ(LineIndexInXPLine(64), 1u);
  EXPECT_EQ(LineIndexInXPLine(128), 2u);
  EXPECT_EQ(LineIndexInXPLine(192 + 63), 3u);
  EXPECT_EQ(PageBase(4097), 4096u);
  EXPECT_TRUE(IsXPLineAligned(512));
  EXPECT_FALSE(IsXPLineAligned(576));
  EXPECT_EQ(AlignUp(1, 256), 256u);
  EXPECT_EQ(AlignUp(256, 256), 256u);
  EXPECT_EQ(KiB(16), 16384u);
  EXPECT_EQ(MiB(1), 1048576u);
}

TEST(TypesTest, XPLineHoldsFourCacheLines) {
  EXPECT_EQ(kXPLineSize / kCacheLineSize, kLinesPerXPLine);
  EXPECT_EQ(kLinesPerXPLine, 4u);
}

TEST(RandomTest, DeterministicFromSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) {
    differs |= a2.Next() != c.Next();
  }
  EXPECT_TRUE(differs);
}

TEST(RandomTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RandomTest, NextBelowCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.NextBelow(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomTest, NextDoubleUnit) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RandomTest, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RandomTest, Mix64Distinct) {
  std::set<uint64_t> out;
  for (uint64_t i = 0; i < 1000; ++i) {
    out.insert(Mix64(i));
  }
  EXPECT_EQ(out.size(), 1000u);
}

TEST(StatsTest, RunningStatBasics) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  for (double x : {2.0, 4.0, 6.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.sum(), 12.0);
  EXPECT_NEAR(s.variance(), 4.0, 1e-9);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-9);
}

TEST(StatsTest, HistogramPercentiles) {
  Histogram h;
  for (uint64_t i = 1; i <= 1000; ++i) {
    h.Add(i);
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.Min(), 1u);
  EXPECT_EQ(h.Max(), 1000u);
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 500.0, 50.0);
  EXPECT_NEAR(static_cast<double>(h.Percentile(99)), 990.0, 80.0);
  EXPECT_NEAR(h.mean(), 500.5, 1e-6);
}

TEST(StatsTest, HistogramMerge) {
  Histogram a, b;
  for (uint64_t i = 0; i < 100; ++i) {
    a.Add(10);
    b.Add(1000);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.Min(), 10u);
  EXPECT_EQ(a.Max(), 1000u);
}

TEST(StatsTest, HistogramLargeValues) {
  Histogram h;
  h.Add(1ull << 40);
  h.Add(1);
  EXPECT_EQ(h.Max(), 1ull << 40);
  EXPECT_GE(h.Percentile(100), (1ull << 39));
}

TEST(BackingStoreTest, ZeroFilledReads) {
  BackingStore bs;
  EXPECT_EQ(bs.ReadU64(0x1234), 0u);
  EXPECT_EQ(bs.allocated_pages(), 0u);  // reads never allocate
}

TEST(BackingStoreTest, ReadBackWrites) {
  BackingStore bs;
  bs.WriteU64(4096, 0xDEADBEEF);
  EXPECT_EQ(bs.ReadU64(4096), 0xDEADBEEFu);
  EXPECT_EQ(bs.allocated_pages(), 1u);
}

TEST(BackingStoreTest, CrossPageAccess) {
  BackingStore bs;
  uint8_t data[100];
  for (int i = 0; i < 100; ++i) {
    data[i] = static_cast<uint8_t>(i);
  }
  const Addr addr = kPageSize - 50;  // straddles a page boundary
  bs.Write(addr, data, sizeof(data));
  uint8_t out[100] = {};
  bs.Read(addr, out, sizeof(out));
  EXPECT_EQ(std::memcmp(data, out, sizeof(data)), 0);
  EXPECT_EQ(bs.allocated_pages(), 2u);
}

TEST(BackingStoreTest, ZeroRange) {
  BackingStore bs;
  bs.WriteU64(0, 7);
  bs.WriteU64(kPageSize, 9);
  bs.Zero(0, kPageSize);  // full page: dropped
  EXPECT_EQ(bs.ReadU64(0), 0u);
  EXPECT_EQ(bs.ReadU64(kPageSize), 9u);
  bs.Zero(kPageSize, 8);  // partial page: cleared in place
  EXPECT_EQ(bs.ReadU64(kPageSize), 0u);
}

TEST(ConfigTest, G1Preset) {
  const PlatformConfig p = G1Platform();
  EXPECT_EQ(p.generation, Generation::kG1);
  EXPECT_EQ(p.optane.read_buffer_bytes, KiB(16));
  EXPECT_EQ(p.optane.write_buffer_bytes, KiB(16));
  EXPECT_TRUE(p.optane.periodic_full_writeback);
  EXPECT_TRUE(p.optane.same_line_flush_stall);
  EXPECT_FALSE(p.cache.clwb_retains_line);
  // 12 KB usable for partial XPLines.
  EXPECT_EQ(p.optane.write_buffer_partial_reserve, 16u);
}

TEST(ConfigTest, G2Preset) {
  const PlatformConfig p = G2Platform();
  EXPECT_EQ(p.generation, Generation::kG2);
  EXPECT_EQ(p.optane.read_buffer_bytes, KiB(22));
  EXPECT_FALSE(p.optane.periodic_full_writeback);
  EXPECT_FALSE(p.optane.same_line_flush_stall);
  EXPECT_TRUE(p.cache.clwb_retains_line);
  EXPECT_EQ(p.optane.write_buffer_partial_reserve, 0u);
}

TEST(ConfigTest, CacheGeometryDividesEvenly) {
  for (const PlatformConfig& p : {G1Platform(), G2Platform()}) {
    for (const CacheLevelConfig& lvl : {p.cache.l1, p.cache.l2, p.cache.l3}) {
      EXPECT_EQ(lvl.size_bytes % (kCacheLineSize * lvl.ways), 0u)
          << p.name << " level size " << lvl.size_bytes;
    }
  }
}

}  // namespace
}  // namespace pmemsim
