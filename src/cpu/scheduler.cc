#include "src/cpu/scheduler.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/trace/sampler.h"

namespace pmemsim {
namespace internal {

// Index min-heap over job clocks. Ties break toward the smaller job index,
// which reproduces the original linear scan's pick (first minimum wins), so
// multi-thread interleavings are identical to the pre-heap scheduler.
//
// Keys are SoA-packed: the heap compares against a dense clock array instead
// of chasing jobs_[i].ctx, so a sift touches one cache line of keys rather
// than one ThreadContext per level. The cache stays coherent because only the
// heap-top job's clock can change while it runs (every other job is parked),
// and UpdateTop() re-reads exactly that one entry.
class JobHeap {
 public:
  explicit JobHeap(const std::vector<SimJob>& jobs) {
    heap_.resize(jobs.size());
    clocks_.resize(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
      heap_[i] = i;
      clocks_[i] = jobs[i].ctx->clock();
    }
    for (size_t i = heap_.size() / 2; i-- > 0;) {
      SiftDown(i);
    }
  }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  size_t top() const { return heap_[0]; }
  Cycles top_clock() const { return clocks_[heap_[0]]; }

  // Smallest key among all jobs except the top; the top stays the scheduling
  // pick while its key is <= this. Call only with size() >= 2.
  // In a binary heap the runner-up is one of the root's children.
  std::pair<Cycles, size_t> RunnerUp() const {
    std::pair<Cycles, size_t> best = Key(heap_[1]);
    if (heap_.size() > 2) {
      best = std::min(best, Key(heap_[2]));
    }
    return best;
  }

  void PopTop() {
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      SiftDown(0);
    }
  }

  // Publishes the top job's new clock into the key array and restores the
  // heap invariant. The top is the only entry whose clock can be stale.
  void UpdateTop(Cycles clock) {
    clocks_[heap_[0]] = clock;
    SiftDown(0);
  }

 private:
  std::pair<Cycles, size_t> Key(size_t job) const { return {clocks_[job], job}; }

  void SiftDown(size_t pos) {
    const size_t n = heap_.size();
    while (true) {
      const size_t l = 2 * pos + 1;
      const size_t r = 2 * pos + 2;
      size_t smallest = pos;
      if (l < n && Key(heap_[l]) < Key(heap_[smallest])) {
        smallest = l;
      }
      if (r < n && Key(heap_[r]) < Key(heap_[smallest])) {
        smallest = r;
      }
      if (smallest == pos) {
        return;
      }
      std::swap(heap_[pos], heap_[smallest]);
      pos = smallest;
    }
  }

  std::vector<size_t> heap_;
  std::vector<Cycles> clocks_;  // SoA heap keys: clocks_[job] mirrors
                                // jobs[job].ctx->clock() for parked jobs
};

}  // namespace internal

Scheduler::Scheduler(std::vector<SimJob>* jobs)
    : jobs_(jobs), heap_(std::make_unique<internal::JobHeap>(*jobs)) {}

Scheduler::~Scheduler() = default;

bool Scheduler::AllDone() const { return heap_->empty(); }

Cycles Scheduler::NextEventTime() const {
  return heap_->empty() ? kNoLimit : heap_->top_clock();
}

void Scheduler::RunUntil(Cycles limit, Sampler* sampler) {
  internal::JobHeap& heap = *heap_;

  while (!heap.empty()) {
    // Heap keys are exact at the head of every batch (UpdateTop publishes the
    // running job's clock before control returns here), so the top key is the
    // true global minimum: once it reaches the window limit, every unfinished
    // job is parked at >= limit and the window is over.
    if (heap.top_clock() >= limit) {
      return;
    }
    const size_t i = heap.top();
    SimJob& job = (*jobs_)[i];
    ThreadContext* const ctx = job.ctx;

    if (heap.size() == 1) {
      // Sole runnable job: run it with no heap or runner-up maintenance at
      // all (the single-thread benches live entirely here).
      while (true) {
        const Cycles before = ctx->clock();
        if (sampler != nullptr) {
          sampler->AdvanceTo(before);
        }
        if (job.step() == StepResult::kDone) {
          heap.PopTop();
          stuck_guard_ = 0;
          break;
        }
        // Livelock guard: steps must advance time.
        if (ctx->clock() == before) {
          PMEMSIM_CHECK_MSG(++stuck_guard_ < 1000000,
                            "scheduler livelock: step did not advance clock");
        } else {
          stuck_guard_ = 0;
        }
        if (ctx->clock() >= limit) {
          heap.UpdateTop(ctx->clock());
          return;
        }
      }
      continue;
    }

    // Batch-advance invariant: while the top job runs, every other job is
    // parked, so no other clock can move and the runner-up key is constant
    // for the whole batch. Compute it once and keep stepping the top job
    // until its key passes it (ties yield to the smaller job index, exactly
    // as the per-step heap check did) — the heap is touched once per batch
    // instead of once per step. The window limit joins the batch-exit check:
    // a job at or past `limit` parks exactly where the unbounded run would
    // have yielded it.
    const std::pair<Cycles, size_t> runner_up = heap.RunnerUp();
    while (true) {
      const Cycles before = ctx->clock();
      // `before` is the global minimum clock (this job is the heap top), the
      // only monotone "now": sample boundaries close before any event that
      // can still be generated at a later cycle.
      if (sampler != nullptr) {
        sampler->AdvanceTo(before);
      }
      const StepResult r = job.step();
      if (r == StepResult::kDone) {
        heap.PopTop();
        stuck_guard_ = 0;
        break;
      }
      if (ctx->clock() == before) {
        PMEMSIM_CHECK_MSG(++stuck_guard_ < 1000000,
                          "scheduler livelock: step did not advance clock");
      } else {
        stuck_guard_ = 0;
      }
      if (ctx->clock() < limit && std::make_pair(ctx->clock(), i) < runner_up) {
        continue;  // still the unique minimum, still inside the window
      }
      heap.UpdateTop(ctx->clock());
      break;
    }
  }
}

Cycles Scheduler::Run(std::vector<SimJob>& jobs, Sampler* sampler) {
  if (jobs.empty()) {
    return 0;
  }
  Scheduler scheduler(&jobs);
  scheduler.RunUntil(kNoLimit, sampler);

  Cycles max_clock = 0;
  for (const SimJob& job : jobs) {
    max_clock = std::max(max_clock, job.ctx->clock());
  }
  return max_clock;
}

}  // namespace pmemsim
