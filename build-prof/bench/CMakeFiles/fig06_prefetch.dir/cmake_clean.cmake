file(REMOVE_RECURSE
  "CMakeFiles/fig06_prefetch.dir/fig06_prefetch.cc.o"
  "CMakeFiles/fig06_prefetch.dir/fig06_prefetch.cc.o.d"
  "fig06_prefetch"
  "fig06_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
