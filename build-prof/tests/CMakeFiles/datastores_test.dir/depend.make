# Empty dependencies file for datastores_test.
# This may be replaced when dependencies are built.
