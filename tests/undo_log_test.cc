// Tests for undo-log transactions, including crash injection at every
// protocol point.

#include <gtest/gtest.h>

#include "src/core/platform.h"
#include "src/persist/undo_log.h"

namespace pmemsim {
namespace {

struct Fixture {
  std::unique_ptr<System> system = MakeG1System(1);
  ThreadContext* ctx = &system->CreateThread();
  PmRegion data = system->AllocatePm(KiB(16));
  PmRegion log_region = system->AllocatePm(KiB(8));
};

TEST(TransactionTest, CommitMakesNewStateVisible) {
  Fixture f;
  Transaction tx(f.system.get(), f.log_region);
  f.ctx->Store64(f.data.base, 1);
  tx.Begin(*f.ctx);
  tx.Store64(*f.ctx, f.data.base, 2);
  tx.Commit(*f.ctx);
  EXPECT_EQ(f.ctx->Load64(f.data.base), 2u);
  EXPECT_FALSE(tx.active());
}

TEST(TransactionTest, AbortRestoresOldState) {
  Fixture f;
  Transaction tx(f.system.get(), f.log_region);
  f.ctx->Store64(f.data.base, 10);
  f.ctx->Store64(f.data.base + 64, 20);
  tx.Begin(*f.ctx);
  tx.Store64(*f.ctx, f.data.base, 11);
  tx.Store64(*f.ctx, f.data.base + 64, 21);
  tx.Abort(*f.ctx);
  EXPECT_EQ(f.ctx->Load64(f.data.base), 10u);
  EXPECT_EQ(f.ctx->Load64(f.data.base + 64), 20u);
}

TEST(TransactionTest, CrashMidTransactionRollsBack) {
  Fixture f;
  f.ctx->Store64(f.data.base, 100);
  f.ctx->Store64(f.data.base + 8, 200);
  {
    Transaction tx(f.system.get(), f.log_region);
    tx.Begin(*f.ctx);
    tx.Store64(*f.ctx, f.data.base, 101);
    tx.Store64(*f.ctx, f.data.base + 8, 201);
    // Crash: no commit, and the dirty new values may even be "persistent"
    // (they were stored in place) — recovery must undo them.
  }
  Transaction recovered(f.system.get(), f.log_region);
  EXPECT_EQ(recovered.Recover(*f.ctx), 2u);
  EXPECT_EQ(f.ctx->Load64(f.data.base), 100u);
  EXPECT_EQ(f.ctx->Load64(f.data.base + 8), 200u);
}

TEST(TransactionTest, CrashAfterCommitKeepsNewState) {
  Fixture f;
  f.ctx->Store64(f.data.base, 1);
  {
    Transaction tx(f.system.get(), f.log_region);
    tx.Begin(*f.ctx);
    tx.Store64(*f.ctx, f.data.base, 2);
    tx.Commit(*f.ctx);
  }
  Transaction recovered(f.system.get(), f.log_region);
  EXPECT_EQ(recovered.Recover(*f.ctx), 0u);
  EXPECT_EQ(f.ctx->Load64(f.data.base), 2u);
}

TEST(TransactionTest, LargeSnapshotSplitsRecords) {
  Fixture f;
  uint8_t blob[200];
  for (size_t i = 0; i < sizeof(blob); ++i) {
    blob[i] = static_cast<uint8_t>(i);
  }
  f.ctx->Write(f.data.base, blob, sizeof(blob));
  {
    Transaction tx(f.system.get(), f.log_region);
    tx.Begin(*f.ctx);
    tx.Snapshot(*f.ctx, f.data.base, sizeof(blob));
    EXPECT_GE(tx.snapshot_records(), sizeof(blob) / Transaction::kMaxPayload);
    uint8_t junk[200] = {};
    f.ctx->Write(f.data.base, junk, sizeof(junk));
    // Crash mid-transaction.
  }
  Transaction recovered(f.system.get(), f.log_region);
  EXPECT_GT(recovered.Recover(*f.ctx), 0u);
  uint8_t out[200];
  f.ctx->Read(f.data.base, out, sizeof(out));
  EXPECT_EQ(std::memcmp(blob, out, sizeof(blob)), 0);
}

TEST(TransactionTest, OverlappingSnapshotsRestoreOldest) {
  Fixture f;
  f.ctx->Store64(f.data.base, 1);
  {
    Transaction tx(f.system.get(), f.log_region);
    tx.Begin(*f.ctx);
    tx.Store64(*f.ctx, f.data.base, 2);  // snapshots value 1
    tx.Store64(*f.ctx, f.data.base, 3);  // snapshots value 2
  }
  Transaction recovered(f.system.get(), f.log_region);
  recovered.Recover(*f.ctx);
  EXPECT_EQ(f.ctx->Load64(f.data.base), 1u);  // the pre-transaction value
}

TEST(TransactionTest, SequentialTransactionsReuseArena) {
  Fixture f;
  Transaction tx(f.system.get(), f.log_region);
  for (uint64_t round = 0; round < 50; ++round) {
    tx.Begin(*f.ctx);
    tx.Store64(*f.ctx, f.data.base + (round % 8) * 64, round);
    tx.Commit(*f.ctx);
  }
  EXPECT_EQ(f.ctx->Load64(f.data.base + 1 * 64), 49u);
}

TEST(TransactionTest, TornSnapshotRecordStopsRollbackAtChecksum) {
  // Snapshot payload words can tear independently of the record's magic word
  // (nt-stores within one Snapshot call are unfenced); the XOR checksum must
  // catch the tear and recovery must stop there, rolling back only the
  // records persisted before it.
  Fixture f;
  {
    Transaction tx(f.system.get(), f.log_region);
    f.ctx->Store64(f.data.base, 1);
    f.ctx->Store64(f.data.base + 64, 2);
    tx.Begin(*f.ctx);
    tx.Store64(*f.ctx, f.data.base, 101);       // snapshot record 1
    tx.Store64(*f.ctx, f.data.base + 64, 102);  // snapshot record 2
    // Crash before Commit; record 2's payload word tore on the way down.
  }
  const Addr record2 = f.log_region.base + 2 * Transaction::kRecordSize;
  const uint64_t garbage = 0xDEADDEADDEADDEADull;
  f.system->backing().Write(record2 + 24, &garbage, sizeof(garbage));
  Transaction recovered(f.system.get(), f.log_region);
  EXPECT_EQ(recovered.Recover(*f.ctx), 1u);
  // The scan stops at record 2's checksum mismatch, so only record 1 rolls
  // back: the first field is restored, and the corrupt snapshot is never
  // applied over the second field's in-place value.
  EXPECT_EQ(f.ctx->Load64(f.data.base), 1u);
  EXPECT_EQ(f.ctx->Load64(f.data.base + 64), 102u);
}

TEST(TransactionTest, RecoverOnCleanLogIsNoop) {
  Fixture f;
  Transaction tx(f.system.get(), f.log_region);
  EXPECT_EQ(tx.Recover(*f.ctx), 0u);
}

}  // namespace
}  // namespace pmemsim
