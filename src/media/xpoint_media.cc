#include "src/media/xpoint_media.h"

#include <algorithm>

#include "src/common/check.h"

namespace pmemsim {

PortPool::PortPool(uint32_t ports, Cycles service_latency)
    : busy_until_(ports, 0), service_latency_(service_latency) {
  PMEMSIM_CHECK(ports > 0);
}

size_t PortPool::PickPort(Cycles /*now*/) const {
  size_t best = 0;
  for (size_t i = 1; i < busy_until_.size(); ++i) {
    if (busy_until_[i] < busy_until_[best]) {
      best = i;
    }
  }
  return best;
}

Cycles PortPool::Schedule(Cycles now) {
  const size_t p = PickPort(now);
  const Cycles start = std::max(now, busy_until_[p]);
  busy_until_[p] = start + service_latency_;
  return busy_until_[p];
}

Cycles PortPool::Schedule(Cycles now, Cycles completion_latency) {
  const size_t p = PickPort(now);
  const Cycles start = std::max(now, busy_until_[p]);
  busy_until_[p] = start + service_latency_;
  return start + completion_latency;
}

Cycles PortPool::PeekCompletion(Cycles now) const {
  const size_t p = PickPort(now);
  return std::max(now, busy_until_[p]) + service_latency_;
}

Cycles PortPool::EarliestFree() const {
  Cycles best = busy_until_[0];
  for (const Cycles b : busy_until_) {
    best = std::min(best, b);
  }
  return best;
}

void PortPool::Reset() { std::fill(busy_until_.begin(), busy_until_.end(), 0); }

XpointMedia::XpointMedia(uint32_t read_ports, Cycles read_latency, uint32_t write_ports,
                         Cycles write_latency, Counters* counters)
    : read_ports_(read_ports, read_latency),
      write_ports_(write_ports, write_latency),
      counters_(counters) {
  PMEMSIM_CHECK(counters_ != nullptr);
}

Cycles XpointMedia::ReadXPLine(Addr /*addr*/, Cycles now) {
  counters_->media_read_bytes += kXPLineSize;
  return read_ports_.Schedule(now);
}

Cycles XpointMedia::WriteXPLine(Addr /*addr*/, Cycles now) {
  counters_->media_write_bytes += kXPLineSize;
  return write_ports_.Schedule(now);
}

void XpointMedia::Reset() {
  read_ports_.Reset();
  write_ports_.Reset();
}

}  // namespace pmemsim
