# Empty compiler generated dependencies file for table1_cceh_breakdown.
# This may be replaced when dependencies are built.
