#include "src/serve/shard.h"

#include <cmath>
#include <cstring>

#include "src/common/check.h"

namespace pmemsim {
namespace {

uint32_t CcehDepthFor(uint64_t keys) {
  // One segment holds 1024 slots; start with enough segments that the preload
  // does not spend its whole life splitting (splits still grow it as needed).
  uint32_t depth = 4;
  while ((uint64_t{1} << depth) * Cceh::kBucketsPerSegment * Cceh::kSlotsPerBucket < keys &&
         depth < 24) {
    ++depth;
  }
  return depth;
}

}  // namespace

uint64_t ServeSubSeed(uint64_t seed, uint32_t shard, uint32_t stream) {
  return Mix64(seed + 0x9E3779B97F4A7C15ull * (uint64_t{shard} * 8 + stream + 1));
}

const char* StoreName(StoreKind kind) {
  switch (kind) {
    case StoreKind::kCceh:
      return "cceh";
    case StoreKind::kFastFair:
      return "fastfair";
    case StoreKind::kFlatLog:
      return "flatlog";
  }
  return "?";
}

std::optional<StoreKind> StoreByName(const std::string& name) {
  if (name == "cceh") {
    return StoreKind::kCceh;
  }
  if (name == "fastfair") {
    return StoreKind::kFastFair;
  }
  if (name == "flatlog") {
    return StoreKind::kFlatLog;
  }
  return std::nullopt;
}

const char* LoopModeName(LoopMode mode) {
  return mode == LoopMode::kClosed ? "closed" : "open";
}

ShardStore::ShardStore(System* system, StoreKind kind, uint64_t preload_keys,
                       uint64_t append_budget, ThreadContext& loader)
    : kind_(kind) {
  switch (kind_) {
    case StoreKind::kCceh:
      cceh_ = std::make_unique<Cceh>(system, loader, CcehDepthFor(preload_keys),
                                     MemoryKind::kOptane);
      break;
    case StoreKind::kFastFair:
      tree_ = std::make_unique<FastFairTree>(system, loader);
      break;
    case StoreKind::kFlatLog: {
      // Every update/insert/rmw appends one record, so size the log for the
      // preload plus the full op budget (rounded up to whole batches).
      uint64_t slots = preload_keys + append_budget + FlatLog::kSlotsPerBatch;
      slots = (slots + FlatLog::kSlotsPerBatch - 1) / FlatLog::kSlotsPerBatch *
              FlatLog::kSlotsPerBatch;
      flat_ = std::make_unique<FlatLog>(system, system->AllocatePm(slots * FlatLog::kSlotSize));
      break;
    }
  }
}

bool ShardStore::Get(ThreadContext& ctx, uint64_t key, uint64_t* value_out) {
  switch (kind_) {
    case StoreKind::kCceh:
      return cceh_->Get(ctx, key, value_out);
    case StoreKind::kFastFair:
      return tree_->Get(ctx, key, value_out);
    case StoreKind::kFlatLog: {
      uint8_t buf[FlatLog::kMaxPayload] = {};
      uint32_t len = 0;
      if (!flat_->Get(ctx, key, buf, &len)) {
        return false;
      }
      std::memcpy(value_out, buf, sizeof(*value_out));
      return true;
    }
  }
  return false;
}

bool ShardStore::Update(ThreadContext& ctx, uint64_t key, uint64_t value) {
  switch (kind_) {
    case StoreKind::kCceh:
      cceh_->Insert(ctx, key, value);  // CCEH insert updates in place
      return true;
    case StoreKind::kFastFair:
      return tree_->Update(ctx, key, value);
    case StoreKind::kFlatLog:
      if (!flat_->Put(ctx, key, &value, sizeof(value))) {
        ++store_full_;
      }
      return true;
  }
  return true;
}

void ShardStore::Insert(ThreadContext& ctx, uint64_t key, uint64_t value) {
  switch (kind_) {
    case StoreKind::kCceh:
      cceh_->Insert(ctx, key, value);
      break;
    case StoreKind::kFastFair:
      tree_->Insert(ctx, key, value, BTreeUpdateMode::kInPlace);
      break;
    case StoreKind::kFlatLog:
      if (!flat_->Put(ctx, key, &value, sizeof(value))) {
        ++store_full_;
      }
      break;
  }
}

void ShardStore::TreeScan(ThreadContext& ctx, uint64_t from, uint32_t len) {
  PMEMSIM_DCHECK(ordered());
  std::vector<std::pair<uint64_t, uint64_t>> out(len);
  tree_->Scan(ctx, from, len, out.data());
}

void ShardStore::FlushPreload(ThreadContext& ctx) {
  if (flat_ != nullptr) {
    flat_->Flush(ctx);
  }
}

Shard::Shard(System* system, const ServeConfig& cfg, uint32_t index, ThreadContext& loader)
    : cfg_(cfg),
      index_(index),
      queue_(cfg.queue_depth),
      mix_sampler_(cfg.mix, ServeSubSeed(cfg.seed, index, 0)),
      zipf_(cfg.keys, cfg.theta, ServeSubSeed(cfg.seed, index, 1)),
      think_rng_(ServeSubSeed(cfg.seed, index, 2)),
      key_scramble_salt_(ServeSubSeed(cfg.seed, index, 3)),
      next_insert_key_(cfg.keys + 1),
      store_(system, cfg.store, cfg.keys, cfg.ops, loader),
      arrivals_(cfg.interarrival_cycles, ServeSubSeed(cfg.seed, index, 4)) {
  PMEMSIM_CHECK(cfg.keys > 0);
  latest_skew_ = !cfg.mix_name.empty() && (cfg.mix_name[0] == 'd' || cfg.mix_name[0] == 'D');
  load_keys_ = MakeLoadKeys(cfg.keys, ServeSubSeed(cfg.seed, index, 5));
}

bool Shard::LoadStep(ThreadContext& ctx) {
  if (loaded_ >= cfg_.keys) {
    return false;
  }
  const uint64_t key = load_keys_[loaded_];
  StoreInsert(ctx, key, Mix64(key));
  ++loaded_;
  if (loaded_ == cfg_.keys) {
    store_.FlushPreload(ctx);  // preload durability point before serving
  }
  return true;
}

void Shard::SetObservability(ServeMetrics* metrics, SpanRecorder* spans) {
  metrics_ = metrics;
  span_recorder_ = spans;
}

void Shard::BeginSpan() {
  if (span_recorder_ == nullptr) {
    return;
  }
  for (int s = 0; s < AttributionCollector::kStageCount; ++s) {
    span_stage_base_[s] = attribution_.stage_total(static_cast<AttributionCollector::Stage>(s));
  }
}

void Shard::StartServing(Cycles t0) {
  serve_start_ = t0;
  // The serve phase is a fresh accounting window: preload-time queue state
  // (none today, but the contract holds if warm-up traffic ever precedes it)
  // must not leak into the measured offered/rejected/max_occupancy.
  queue_.BeginPhase();
  if (metrics_ != nullptr) {
    // Opening observation: window 0 starts from the real (inherited)
    // occupancy rather than the carry-forward default of zero.
    metrics_->ObserveQueueDepth(t0, queue_.size());
  }
  if (cfg_.loop == LoopMode::kClosed) {
    const uint64_t first = std::min<uint64_t>(cfg_.clients, cfg_.ops);
    for (uint32_t c = 0; c < first; ++c) {
      pending_.push(PendingArrival{t0 + ThinkDraw(), c});
      ++scheduled_;
    }
  } else if (cfg_.ops > 0) {
    next_open_arrival_ = t0 + arrivals_.Next();
  }
}

void Shard::CatchUpAdmissions(Cycles now) {
  bool folded = false;
  if (cfg_.loop == LoopMode::kClosed) {
    while (!pending_.empty() && pending_.top().time <= now) {
      const PendingArrival arr = pending_.top();
      pending_.pop();
      folded = true;
      const bool admitted = queue_.Offer(Materialize(arr.time, arr.client), now);
      if (metrics_ != nullptr) {
        admitted ? metrics_->RecordAdmission(now) : metrics_->RecordShed(now);
      }
      if (!admitted && scheduled_ < cfg_.ops) {
        // Shed: the client backs off one think time and offers a fresh op.
        pending_.push(PendingArrival{arr.time + ThinkDraw(), arr.client});
        ++scheduled_;
      }
    }
  } else {
    while (open_issued_ < cfg_.ops && next_open_arrival_ <= now) {
      folded = true;
      const bool admitted =
          queue_.Offer(Materialize(next_open_arrival_, open_seq_++), now);  // shed = dropped
      if (metrics_ != nullptr) {
        admitted ? metrics_->RecordAdmission(now) : metrics_->RecordShed(now);
      }
      ++open_issued_;
      if (open_issued_ < cfg_.ops) {
        next_open_arrival_ = serve_start_ + arrivals_.Next();
      }
    }
  }
  if (folded && metrics_ != nullptr) {
    metrics_->ObserveQueueDepth(now, queue_.size());
  }
}

size_t Shard::ClaimBatch(Cycles now, std::vector<Request>* out) {
  const size_t n = queue_.ClaimBatch(cfg_.batch, out);
  in_flight_ += n;
  if (n > 0 && metrics_ != nullptr) {
    metrics_->ObserveQueueDepth(now, queue_.size());
  }
  return n;
}

void Shard::Execute(ThreadContext& ctx, const Request& r) {
  uint64_t value = 0;
  switch (r.op) {
    case ServeOp::kRead:
      if (!StoreGet(ctx, r.key, &value)) {
        ++stats_.not_found;
      }
      break;
    case ServeOp::kUpdate:
      StoreUpdate(ctx, r.key, Mix64(r.key + r.arrival));
      break;
    case ServeOp::kInsert:
      StoreInsert(ctx, r.key, Mix64(r.key));
      break;
    case ServeOp::kScan:
      StoreScan(ctx, r.key, r.scan_len);
      break;
    case ServeOp::kRmw:
      if (!StoreGet(ctx, r.key, &value)) {
        ++stats_.not_found;
      }
      StoreUpdate(ctx, r.key, value + 1);
      break;
  }
}

void Shard::CompleteRequest(const Request& r, Cycles start, Cycles end) {
  stats_.RecordCompletion(r, start, end);
  PMEMSIM_CHECK(in_flight_ > 0);
  --in_flight_;
  if (metrics_ != nullptr) {
    metrics_->RecordCompletion(end, end - r.arrival);
  }
  if (span_recorder_ != nullptr) {
    Cycles deltas[AttributionCollector::kStageCount];
    for (int s = 0; s < AttributionCollector::kStageCount; ++s) {
      deltas[s] = attribution_.stage_total(static_cast<AttributionCollector::Stage>(s)) -
                  span_stage_base_[s];
    }
    span_recorder_->Record(r.client, static_cast<uint8_t>(r.op), r.arrival, r.admit, start, end,
                           deltas);
  }
  if (cfg_.loop == LoopMode::kClosed && scheduled_ < cfg_.ops) {
    pending_.push(PendingArrival{end + ThinkDraw(), r.client});
    ++scheduled_;
  }
}

bool Shard::Drained() const {
  if (!queue_.empty() || in_flight_ != 0) {
    return false;
  }
  return cfg_.loop == LoopMode::kClosed ? pending_.empty() : open_issued_ >= cfg_.ops;
}

std::optional<Cycles> Shard::NextArrivalTime() const {
  if (cfg_.loop == LoopMode::kClosed) {
    return pending_.empty() ? std::nullopt : std::optional<Cycles>(pending_.top().time);
  }
  return open_issued_ < cfg_.ops ? std::optional<Cycles>(next_open_arrival_) : std::nullopt;
}

void Shard::FinalizeStats() {
  stats_.offered = queue_.offered();
  stats_.rejected = queue_.rejected();
}

Request Shard::Materialize(Cycles time, uint32_t client) {
  Request r;
  r.arrival = time;
  r.client = client;
  r.op = mix_sampler_.Next();
  switch (r.op) {
    case ServeOp::kInsert:
      r.key = next_insert_key_++;
      break;
    case ServeOp::kScan:
      r.key = SkewedKey();
      r.scan_len = cfg_.scan_len;
      break;
    default:
      r.key = SkewedKey();
      break;
  }
  return r;
}

uint64_t Shard::SkewedKey() {
  const uint64_t population = next_insert_key_ - 1;  // keys 1..population exist
  const uint64_t rank = zipf_.Next();
  if (latest_skew_) {
    // Mix D: rank 0 is the newest key, per YCSB's latest distribution.
    return population - rank % population;
  }
  // YCSB-style scrambled zipfian: hot ranks scatter across the key space.
  return 1 + Mix64(rank ^ key_scramble_salt_) % population;
}

Cycles Shard::ThinkDraw() {
  const double u = think_rng_.NextDouble();
  const double cycles = -cfg_.think_cycles * std::log(1.0 - u);
  return cycles < 1.0 ? Cycles{1} : static_cast<Cycles>(cycles);
}

bool Shard::StoreGet(ThreadContext& ctx, uint64_t key, uint64_t* value_out) {
  return store_.Get(ctx, key, value_out);
}

void Shard::StoreUpdate(ThreadContext& ctx, uint64_t key, uint64_t value) {
  if (!store_.Update(ctx, key, value)) {
    ++stats_.not_found;
  }
}

void Shard::StoreInsert(ThreadContext& ctx, uint64_t key, uint64_t value) {
  store_.Insert(ctx, key, value);
}

void Shard::StoreScan(ThreadContext& ctx, uint64_t from, uint32_t len) {
  if (store_.ordered()) {
    store_.TreeScan(ctx, from, len);
    return;
  }
  // Hash-shaped stores have no key order; emulate the range as `len`
  // consecutive point reads (YCSB's usual adaptation for KV stores).
  const uint64_t population = next_insert_key_ - 1;
  uint64_t value = 0;
  for (uint32_t i = 0; i < len; ++i) {
    const uint64_t key = (from - 1 + i) % population + 1;
    if (!StoreGet(ctx, key, &value)) {
      ++stats_.not_found;
    }
  }
}

}  // namespace pmemsim
