// YCSB-style workload driver (paper §4: 16 M 16 B key-value inserts; scaled
// key counts preserve the shape since behaviour is working-set driven).

#ifndef SRC_WORKLOAD_YCSB_H_
#define SRC_WORKLOAD_YCSB_H_

#include <cstdint>
#include <vector>

#include "src/common/random.h"

namespace pmemsim {

enum class KeyDistribution : uint8_t {
  kUniform,   // uniformly random existing key
  kZipfian,   // theta = 0.99
};

// The YCSB load phase: `count` unique non-zero keys in randomized order.
std::vector<uint64_t> MakeLoadKeys(uint64_t count, uint64_t seed);

// Splits keys into `shards` contiguous chunks (one per worker thread).
std::vector<std::vector<uint64_t>> ShardKeys(const std::vector<uint64_t>& keys, uint32_t shards);

// A request stream of `count` operations against `loaded` keys.
std::vector<uint64_t> MakeRequestKeys(const std::vector<uint64_t>& loaded, uint64_t count,
                                      KeyDistribution dist, uint64_t seed);

}  // namespace pmemsim

#endif  // SRC_WORKLOAD_YCSB_H_
