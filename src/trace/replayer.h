// Deterministic trace replay: feeds a recorded segment's operations back
// through real ThreadContexts in the recorded global order, so every buffer,
// queue, and cache observes the identical request stream and the replayed
// run's counters — and therefore its --stats_json — are byte-identical to
// the original.
//
// The determinism contract (DESIGN.md §8): replay applies records in exactly
// the order they executed during recording (not re-derived from a scheduler),
// and verifies after every operation that the thread's clock equals the
// recorded post-op clock. Any divergence — a changed timing model, a platform
// mismatch that slipped past the fingerprint, a corrupted stream — fails the
// replay at the first diverging record instead of producing silently wrong
// statistics.

#ifndef SRC_TRACE_REPLAYER_H_
#define SRC_TRACE_REPLAYER_H_

#include <functional>
#include <string>

#include "src/core/system.h"
#include "src/trace/recorder.h"

namespace pmemsim {

struct ReplayOptions {
  // Compare each replayed op's post-clock against the recorded clock and fail
  // on the first mismatch. The teeth of the determinism contract; leave on.
  bool verify_clocks = true;

  // Fired when a kMarker record is replayed (after the record applies), with
  // the marker id and issuing thread. Harnesses snapshot counters here to
  // reproduce phase-delimited metrics (warm-up vs measurement windows).
  std::function<void(uint32_t id, uint32_t thread)> on_marker;

  // Fired for each thread the replayer creates, before any record applies.
  // Used to restore per-thread configuration the trace does not carry (e.g.
  // prefetcher switches, recorded in segment metadata by the harness).
  std::function<void(ThreadContext& ctx, uint32_t thread)> on_thread_created;
};

struct ReplayResult {
  bool ok = false;
  std::string error;          // set when !ok, names the first diverging record
  uint64_t records_applied = 0;
  Cycles end_clock = 0;       // max thread clock after the replay
};

// Replays `seg` into `system`, which must be freshly constructed on the same
// platform the trace was recorded on (callers compare PlatformFingerprint
// against the file header first). Creates one thread per trace thread-table
// entry, on the recorded NUMA node, in table order — matching the recorder's
// thread-id assignment.
ReplayResult ReplaySegment(const TraceSegment& seg, System& system,
                           const ReplayOptions& opts = {});

}  // namespace pmemsim

#endif  // SRC_TRACE_REPLAYER_H_
