#include "src/api/pmem.h"

#include <cstring>
#include <vector>

#include "src/common/check.h"
#include "src/persist/barrier.h"

namespace pmemsim {

PmRegion PmemMapFile(System& system, uint64_t size) {
  return system.AllocatePm(size, kPageSize);
}

bool PmemHasAutoFlush(const System& system) { return system.config().eadr_enabled; }

void PmemFlush(ThreadContext& cpu, Addr addr, size_t len) {
  FlushRange(cpu, addr, len);
}

void PmemDrain(ThreadContext& cpu) { cpu.Sfence(); }

void PmemPersist(ThreadContext& cpu, Addr addr, size_t len) {
  PmemFlush(cpu, addr, len);
  PmemDrain(cpu);
}

void PmemMemcpyNodrain(ThreadContext& cpu, Addr dst, const void* src, size_t len) {
  if (len == 0) {
    return;
  }
  const uint8_t* bytes = static_cast<const uint8_t*>(src);
  if (len < kPmemMovntThreshold) {
    // Through the caches, then flush.
    cpu.Write(dst, bytes, len);
    PmemFlush(cpu, dst, len);
    return;
  }
  // Streaming path: head/tail fragments via cached stores + flush, the
  // line-aligned body via non-temporal stores (as pmem_memcpy does).
  const Addr body_begin = AlignUp(dst, kCacheLineSize);
  const Addr body_end = (dst + len) & ~(kCacheLineSize - 1);
  if (body_begin > dst) {
    const size_t head = static_cast<size_t>(body_begin - dst);
    cpu.Write(dst, bytes, head);
    PmemFlush(cpu, dst, head);
  }
  if (body_end > body_begin) {
    cpu.NtWrite(body_begin, bytes + (body_begin - dst),
                static_cast<size_t>(body_end - body_begin));
  }
  if (dst + len > body_end) {
    const size_t tail = static_cast<size_t>(dst + len - body_end);
    cpu.Write(body_end, bytes + (body_end - dst), tail);
    PmemFlush(cpu, body_end, tail);
  }
}

void PmemMemcpyPersist(ThreadContext& cpu, Addr dst, const void* src, size_t len) {
  PmemMemcpyNodrain(cpu, dst, src, len);
  PmemDrain(cpu);
}

void PmemMemsetPersist(ThreadContext& cpu, Addr dst, int c, size_t len) {
  std::vector<uint8_t> buf(len, static_cast<uint8_t>(c));
  PmemMemcpyPersist(cpu, dst, buf.data(), len);
}

}  // namespace pmemsim
