# Empty dependencies file for crashcheck_property_test.
# This may be replaced when dependencies are built.
