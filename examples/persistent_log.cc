// Crash-consistent updates with the redo log (paper §4.2, Fig. 11).
//
// A toy "bank" keeps account balances on PM. Transfers must move money
// atomically: both balances change or neither does. Each transfer logs both
// updates, commits, then applies — and we inject a crash at every possible
// point to show what recovery preserves.
//
//   $ ./build/examples/persistent_log

#include <cstdio>

#include "src/core/platform.h"
#include "src/persist/redo_log.h"

using namespace pmemsim;

namespace {

constexpr uint64_t kAccounts = 8;
constexpr uint64_t kInitialBalance = 1000;

Addr AccountAddr(const PmRegion& bank, uint64_t account) { return bank.base + account * 64; }

uint64_t TotalMoney(ThreadContext& cpu, const PmRegion& bank) {
  uint64_t total = 0;
  for (uint64_t a = 0; a < kAccounts; ++a) {
    total += cpu.Load64(AccountAddr(bank, a));
  }
  return total;
}

// One transfer = one redo-log group of two updates.
enum class CrashPoint { kNone, kAfterLog, kAfterCommit };

void Transfer(ThreadContext& cpu, const PmRegion& bank, RedoLog& log, uint64_t from, uint64_t to,
              uint64_t amount, CrashPoint crash) {
  const uint64_t from_balance = cpu.Load64(AccountAddr(bank, from)) - amount;
  const uint64_t to_balance = cpu.Load64(AccountAddr(bank, to)) + amount;
  log.LogUpdate(cpu, AccountAddr(bank, from), &from_balance, sizeof(from_balance));
  if (crash == CrashPoint::kAfterLog) {
    return;  // power loss: group never committed
  }
  log.LogUpdate(cpu, AccountAddr(bank, to), &to_balance, sizeof(to_balance));
  log.Commit(cpu);
  if (crash == CrashPoint::kAfterCommit) {
    return;  // power loss: committed but not applied
  }
  log.Apply(cpu);
}

}  // namespace

int main() {
  std::unique_ptr<System> system = MakeG1System(1);
  ThreadContext& cpu = system->CreateThread();
  const PmRegion bank = system->AllocatePm(kAccounts * 64);
  const PmRegion log_region = system->AllocatePm(KiB(8));

  for (uint64_t a = 0; a < kAccounts; ++a) {
    cpu.Store64(AccountAddr(bank, a), kInitialBalance);
  }

  RedoLog log(system.get(), log_region);
  Transfer(cpu, bank, log, 0, 1, 250, CrashPoint::kNone);
  std::printf("after clean transfer:   account0=%llu account1=%llu total=%llu\n",
              (unsigned long long)cpu.Load64(AccountAddr(bank, 0)),
              (unsigned long long)cpu.Load64(AccountAddr(bank, 1)),
              (unsigned long long)TotalMoney(cpu, bank));

  // Crash between logging and commit: recovery discards the half-logged
  // transfer; no money moves, none is lost.
  Transfer(cpu, bank, log, 2, 3, 500, CrashPoint::kAfterLog);
  {
    RedoLog recovered(system.get(), log_region);
    const size_t replayed = recovered.Recover(cpu);
    std::printf("crash before commit:    replayed=%zu account2=%llu account3=%llu total=%llu\n",
                replayed, (unsigned long long)cpu.Load64(AccountAddr(bank, 2)),
                (unsigned long long)cpu.Load64(AccountAddr(bank, 3)),
                (unsigned long long)TotalMoney(cpu, bank));
  }

  // Crash between commit and apply: recovery replays the whole transfer.
  RedoLog log2(system.get(), log_region);
  log2.Recover(cpu);
  Transfer(cpu, bank, log2, 4, 5, 300, CrashPoint::kAfterCommit);
  {
    RedoLog recovered(system.get(), log_region);
    const size_t replayed = recovered.Recover(cpu);
    std::printf("crash after commit:     replayed=%zu account4=%llu account5=%llu total=%llu\n",
                replayed, (unsigned long long)cpu.Load64(AccountAddr(bank, 4)),
                (unsigned long long)cpu.Load64(AccountAddr(bank, 5)),
                (unsigned long long)TotalMoney(cpu, bank));
  }

  const bool conserved = TotalMoney(cpu, bank) == kAccounts * kInitialBalance;
  std::printf("money conserved across crashes: %s\n", conserved ? "YES" : "NO");
  return conserved ? 0 : 1;
}
