#!/usr/bin/env python3
"""Gate paper-figure bench results against checked-in expectation bands.

Each bench emits machine-readable results via --stats_json=<path>; each
expectation file in bench/expectations/ describes checks over those rows:

    {
      "bench": "fig02_read_buffer",
      "checks": [
        {
          "name": "g1_cpx4_inside_buffer",
          "select": {"gen": "G1", "cpx": 4, "wss_kb": {"max": 14}},
          "metric": "read_amplification",
          "agg": "max",              # one of: min, max, mean
          "band": {"min": 0.95, "max": 1.1},
          "min_rows": 5              # optional; default 1
        }
      ]
    }

`select` matches rows by equality, or by {"min": x} / {"max": y} range on
numeric fields. The aggregated metric over the selected rows must fall inside
`band`. Exits non-zero on any violation (or on empty selections), so CI can
use this directly as a regression gate.

Usage:
    check_figures.py --stats <dir or files...> \
        [--expectations bench/expectations] [--only fig02_read_buffer ...] \
        [--report]

--report prints every check's observed value (also on success), which is how
expectation bands are regenerated after an intentional model change: run the
benches, eyeball the report, update the bands.
"""

import argparse
import json
import pathlib
import sys


def row_matches(row, select):
    for field, want in select.items():
        if field not in row:
            return False
        have = row[field]
        if isinstance(want, dict):
            if not isinstance(have, (int, float)):
                return False
            if "min" in want and have < want["min"]:
                return False
            if "max" in want and have > want["max"]:
                return False
        else:
            if have != want:
                return False
    return True


def aggregate(values, how):
    if how == "min":
        return min(values)
    if how == "max":
        return max(values)
    if how == "mean":
        return sum(values) / len(values)
    raise ValueError(f"unknown agg {how!r}")


def run_check(check, rows):
    """Returns (ok, observed, detail)."""
    selected = [r for r in rows if row_matches(r, check.get("select", {}))]
    min_rows = check.get("min_rows", 1)
    if len(selected) < min_rows:
        return False, None, f"selected {len(selected)} rows, need >= {min_rows}"
    metric = check["metric"]
    values = []
    for r in selected:
        if metric not in r:
            return False, None, f"row missing metric {metric!r}: {r}"
        values.append(r[metric])
    observed = aggregate(values, check.get("agg", "mean"))
    band = check["band"]
    ok = band.get("min", float("-inf")) <= observed <= band.get("max", float("inf"))
    detail = (
        f"{check.get('agg', 'mean')}({metric}) over {len(selected)} rows = "
        f"{observed:.4f}, band [{band.get('min', '-inf')}, {band.get('max', 'inf')}]"
    )
    return ok, observed, detail


def load_stats(paths):
    """Maps bench name -> parsed stats JSON, from files or directories.

    Files named explicitly must be stats files; when scanning a directory,
    JSON files without a "bench" field (e.g. chrome traces) are skipped.
    """
    stats = {}
    files = []
    for p in paths:
        p = pathlib.Path(p)
        if p.is_dir():
            files.extend((f, False) for f in sorted(p.glob("*.json")))
        elif p.is_file():
            files.append((p, True))
        else:
            sys.exit(f"error: --stats path {p} does not exist")
    for f, explicit in files:
        with open(f, encoding="utf-8") as fh:
            try:
                doc = json.load(fh)
            except json.JSONDecodeError as e:
                sys.exit(f"error: {f} is not valid JSON: {e}")
        name = doc.get("bench") if isinstance(doc, dict) else None
        if not name:
            if explicit:
                sys.exit(f"error: {f} has no 'bench' field")
            continue
        if name in stats:
            sys.exit(f"error: bench {name!r} appears in both "
                     f"{stats[name]['_file']} and {f}")
        doc["_file"] = str(f)
        stats[name] = doc
    return stats


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--stats", nargs="+", required=True,
                        help="stats_json files, or directories of them")
    parser.add_argument("--expectations", default="bench/expectations",
                        help="directory of expectation files")
    parser.add_argument("--only", nargs="*", default=None,
                        help="restrict to these bench names")
    parser.add_argument("--report", action="store_true",
                        help="print observed values for every check")
    args = parser.parse_args()

    stats = load_stats(args.stats)
    expectation_files = sorted(pathlib.Path(args.expectations).glob("*.json"))
    if not expectation_files:
        sys.exit(f"error: no expectation files in {args.expectations}")

    failures = 0
    checked = 0
    for ef in expectation_files:
        with open(ef, encoding="utf-8") as fh:
            expect = json.load(fh)
        bench = expect["bench"]
        if args.only and bench not in args.only:
            continue
        doc = stats.get(bench)
        if doc is None:
            print(f"FAIL {bench}: no stats_json output found (looked in {args.stats})")
            failures += 1
            continue
        rows = doc.get("rows", [])
        for check in expect.get("checks", []):
            checked += 1
            ok, _, detail = run_check(check, rows)
            status = "ok  " if ok else "FAIL"
            if not ok:
                failures += 1
            if not ok or args.report:
                print(f"{status} {bench}:{check['name']}: {detail}")

    if checked == 0:
        sys.exit("error: no checks ran (bad --only filter?)")
    print(f"{checked} checks, {failures} failures")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
