#include "src/datastores/fast_fair.h"

#include <cstring>

#include "src/common/check.h"
#include "src/persist/barrier.h"

namespace pmemsim {

FastFairTree::FastFairTree(System* system, ThreadContext& ctx, MemoryKind kind)
    : system_(system), kind_(kind) {
  PMEMSIM_CHECK(system != nullptr);
  const PmRegion meta = kind_ == MemoryKind::kOptane
                            ? system_->AllocatePm(kCacheLineSize, kCacheLineSize)
                            : system_->AllocateDram(kCacheLineSize, kCacheLineSize);
  meta_ = meta.base;
  root_ = AllocateNode(ctx, /*leaf=*/true);
  PersistentStore64(ctx, meta_, root_, PersistMode::kClwbSfence);
}

Addr FastFairTree::AllocateNode(ThreadContext& ctx, bool leaf) {
  ++node_count_;
  const PmRegion node = kind_ == MemoryKind::kOptane
                            ? system_->AllocatePm(kNodeSize, kXPLineSize)
                            : system_->AllocateDram(kNodeSize, kXPLineSize);
  ctx.Store64(node.base, 0);                 // count
  ctx.Store64(node.base + 8, leaf ? 1 : 0);  // leaf flag
  ctx.Store64(node.base + 16, 0);            // sibling
  Persist(ctx, node.base, 24);
  return node.base;
}

void FastFairTree::ShiftInsert(ThreadContext& ctx, Addr node, uint64_t count, uint64_t pos,
                               uint64_t key, uint64_t value, BTreeUpdateMode mode,
                               RedoLog* log) {
  PMEMSIM_CHECK(count < kMaxEntries);
  if (mode == BTreeUpdateMode::kRedoLog) {
    PMEMSIM_CHECK(log != nullptr);
    // Out-of-place: every 16 B move is logged to a fresh PM log cacheline
    // (same write count as the baseline), committed and applied per target
    // cacheline group (Fig. 11).
    Addr group_line = ~0ull;
    auto flush_group = [&] {
      if (log->open_entries() > 0) {
        log->Commit(ctx);
        log->Apply(ctx);
      }
    };
    for (uint64_t j = count; j > pos; --j) {
      const uint64_t k = ctx.Load64(EntryAddr(node, j - 1));
      const uint64_t v = ctx.Load64(EntryAddr(node, j - 1) + 8);
      const Addr dst = EntryAddr(node, j);
      if (CacheLineBase(dst) != group_line) {
        flush_group();
        group_line = CacheLineBase(dst);
      }
      uint64_t payload[2] = {k, v};
      log->LogUpdate(ctx, dst, payload, sizeof(payload));
    }
    {
      const Addr dst = EntryAddr(node, pos);
      if (CacheLineBase(dst) != group_line) {
        flush_group();
      }
      uint64_t payload[2] = {key, value};
      log->LogUpdate(ctx, dst, payload, sizeof(payload));
      flush_group();
    }
    // Count update goes through the log as well.
    const uint64_t new_count = count + 1;
    log->LogUpdate(ctx, node, &new_count, sizeof(new_count));
    log->Commit(ctx);
    log->Apply(ctx);
    return;
  }

  // Baseline: in-place shifts, one persistence barrier per 16 B move. Moves
  // within one cacheline repeatedly flush and reload that line.
  //
  // Crash-safe order (FAST): first duplicate the last entry one slot right
  // and grow the count over it, THEN shift the remaining entries. Every
  // intermediate state keeps all committed entries inside [0, count) — a
  // crash mid-shift leaves only an adjacent duplicate, which readers discard
  // via the no-duplicate-pointer invariant. Growing the count before the
  // duplicate (or shifting first) would strand the last entry beyond the
  // count for a window, losing it on a crash.
  if (pos == count) {
    // Appending: publish the entry, then the count (entry invisible until the
    // count grows, so a crash in between simply drops the unacked insert).
    ctx.Store64(EntryAddr(node, pos), key);
    ctx.Store64(EntryAddr(node, pos) + 8, value);
    ctx.Clwb(EntryAddr(node, pos));
    ctx.Sfence();
    ctx.Store64(node, count + 1);
    ctx.Clwb(node);
    ctx.Sfence();
    return;
  }
  ctx.Store64(EntryAddr(node, count), ctx.Load64(EntryAddr(node, count - 1)));
  ctx.Store64(EntryAddr(node, count) + 8, ctx.Load64(EntryAddr(node, count - 1) + 8));
  ctx.Clwb(EntryAddr(node, count));
  ctx.Sfence();
  ctx.Store64(node, count + 1);
  ctx.Clwb(node);
  ctx.Sfence();
  for (uint64_t j = count - 1; j > pos; --j) {
    const uint64_t k = ctx.Load64(EntryAddr(node, j - 1));
    const uint64_t v = ctx.Load64(EntryAddr(node, j - 1) + 8);
    ctx.Store64(EntryAddr(node, j), k);
    ctx.Store64(EntryAddr(node, j) + 8, v);
    ctx.Clwb(EntryAddr(node, j));
    ctx.Sfence();
  }
  ctx.Store64(EntryAddr(node, pos), key);
  ctx.Store64(EntryAddr(node, pos) + 8, value);
  ctx.Clwb(EntryAddr(node, pos));
  ctx.Sfence();
}

FastFairTree::Promoted FastFairTree::SplitNode(ThreadContext& ctx, Addr node, bool leaf) {
  const uint64_t count = Count(ctx, node);
  PMEMSIM_CHECK(count == kMaxEntries);
  const uint64_t half = count / 2;
  const Addr right = AllocateNode(ctx, leaf);

  // Separator: for a leaf the middle key is duplicated into the parent; for
  // an internal node it moves up and the right node starts with the sentinel.
  const uint64_t separator = ctx.Load64(EntryAddr(node, half));

  uint64_t out = 0;
  for (uint64_t j = half; j < count; ++j) {
    uint64_t k = ctx.Load64(EntryAddr(node, j));
    const uint64_t v = ctx.Load64(EntryAddr(node, j) + 8);
    if (!leaf && j == half) {
      k = kMinKey;  // promoted key's child becomes the right node's low fence
    }
    ctx.Store64(EntryAddr(right, out), k);
    ctx.Store64(EntryAddr(right, out) + 8, v);
    ++out;
  }
  for (Addr line = CacheLineBase(EntryAddr(right, 0));
       line <= CacheLineBase(EntryAddr(right, out - 1)); line += kCacheLineSize) {
    ctx.Clwb(line);
  }
  ctx.Store64(right, out);
  // Sibling chain (leaf level).
  if (leaf) {
    const uint64_t old_sibling = ctx.Load64(node + 16);
    ctx.Store64(right + 16, old_sibling);
  }
  ctx.Clwb(right);
  ctx.Sfence();  // right node fully durable before it becomes reachable

  // Link the sibling first, then shrink the left node. With the link durable
  // the right half is reachable through the leaf chain even if the crash
  // lands before the count shrink (readers see the moved entries twice and
  // drop the second copies); shrinking first would leave those entries
  // unreachable — committed keys silently lost — for a whole barrier window.
  if (leaf) {
    ctx.Store64(node + 16, right);
    ctx.Clwb(node + 16);
    ctx.Sfence();
  }
  ctx.Store64(node, half);
  ctx.Clwb(node);
  ctx.Sfence();
  return {separator, right};
}

std::optional<FastFairTree::Promoted> FastFairTree::InsertRecurse(ThreadContext& ctx, Addr node,
                                                                  uint64_t key, uint64_t value,
                                                                  BTreeUpdateMode mode,
                                                                  RedoLog* log) {
  const uint64_t count = Count(ctx, node);
  const bool leaf = IsLeaf(ctx, node) != 0;

  if (leaf) {
    if (count == kMaxEntries) {
      Promoted p = SplitNode(ctx, node, /*leaf=*/true);
      if (key >= p.key) {
        const uint64_t right_count = Count(ctx, p.node);
        uint64_t pos = 0;
        while (pos < right_count && ctx.Load64(EntryAddr(p.node, pos)) < key) {
          ++pos;
        }
        ShiftInsert(ctx, p.node, right_count, pos, key, value, mode, log);
      } else {
        const uint64_t left_count = Count(ctx, node);
        uint64_t pos = 0;
        while (pos < left_count && ctx.Load64(EntryAddr(node, pos)) < key) {
          ++pos;
        }
        ShiftInsert(ctx, node, left_count, pos, key, value, mode, log);
      }
      return p;
    }
    uint64_t pos = 0;
    while (pos < count && ctx.Load64(EntryAddr(node, pos)) < key) {
      ++pos;
    }
    ShiftInsert(ctx, node, count, pos, key, value, mode, log);
    return std::nullopt;
  }

  // Internal: find the child covering `key` (last entry with key <= target).
  uint64_t idx = 0;
  for (uint64_t j = 1; j < count; ++j) {
    if (ctx.Load64(EntryAddr(node, j)) <= key) {
      idx = j;
    } else {
      break;
    }
  }
  const Addr child = ctx.Load64(EntryAddr(node, idx) + 8);
  std::optional<Promoted> promoted = InsertRecurse(ctx, child, key, value, mode, log);
  if (!promoted) {
    return std::nullopt;
  }

  const uint64_t cur_count = Count(ctx, node);
  if (cur_count == kMaxEntries) {
    Promoted p = SplitNode(ctx, node, /*leaf=*/false);
    Addr target = promoted->key >= p.key ? p.node : node;
    const uint64_t tcount = Count(ctx, target);
    uint64_t pos = 0;
    while (pos < tcount && ctx.Load64(EntryAddr(target, pos)) < promoted->key) {
      ++pos;
    }
    ShiftInsert(ctx, target, tcount, pos, promoted->key, promoted->node, mode, log);
    return p;
  }
  uint64_t pos = 0;
  while (pos < cur_count && ctx.Load64(EntryAddr(node, pos)) < promoted->key) {
    ++pos;
  }
  ShiftInsert(ctx, node, cur_count, pos, promoted->key, promoted->node, mode, log);
  return std::nullopt;
}

void FastFairTree::Insert(ThreadContext& ctx, uint64_t key, uint64_t value, BTreeUpdateMode mode,
                          RedoLog* log) {
  PMEMSIM_CHECK(key > kMinKey);
  std::optional<Promoted> promoted = InsertRecurse(ctx, root_, key, value, mode, log);
  if (promoted) {
    const Addr new_root = AllocateNode(ctx, /*leaf=*/false);
    ctx.Store64(EntryAddr(new_root, 0), kMinKey);
    ctx.Store64(EntryAddr(new_root, 0) + 8, root_);
    ctx.Store64(EntryAddr(new_root, 1), promoted->key);
    ctx.Store64(EntryAddr(new_root, 1) + 8, promoted->node);
    ctx.Store64(new_root, 2);
    Persist(ctx, new_root, kEntriesOffset + 2 * kEntrySize);
    root_ = new_root;
    ++height_;
    PersistentStore64(ctx, meta_, root_, PersistMode::kClwbSfence);
  }
  ++size_;
}

size_t FastFairTree::Scan(ThreadContext& ctx, uint64_t from, size_t max_results,
                          std::pair<uint64_t, uint64_t>* out) {
  if (max_results == 0) {
    return 0;
  }
  // Descend to the leaf covering `from`.
  Addr node = root_;
  while (IsLeaf(ctx, node) == 0) {
    const uint64_t count = Count(ctx, node);
    uint64_t idx = 0;
    for (uint64_t j = 1; j < count; ++j) {
      if (ctx.Load64(EntryAddr(node, j)) <= from) {
        idx = j;
      } else {
        break;
      }
    }
    node = ctx.Load64(EntryAddr(node, idx) + 8);
  }
  // Walk the sibling chain collecting keys >= from.
  size_t n = 0;
  while (node != 0 && n < max_results) {
    const uint64_t count = Count(ctx, node);
    for (uint64_t j = 0; j < count && n < max_results; ++j) {
      const uint64_t k = ctx.Load64(EntryAddr(node, j));
      if (k >= from) {
        out[n++] = {k, ctx.Load64(EntryAddr(node, j) + 8)};
      }
    }
    node = ctx.Load64(node + 16);  // leaf sibling pointer
  }
  return n;
}

bool FastFairTree::Get(ThreadContext& ctx, uint64_t key, uint64_t* value_out) {
  Addr node = root_;
  while (IsLeaf(ctx, node) == 0) {
    const uint64_t count = Count(ctx, node);
    uint64_t idx = 0;
    for (uint64_t j = 1; j < count; ++j) {
      if (ctx.Load64(EntryAddr(node, j)) <= key) {
        idx = j;
      } else {
        break;
      }
    }
    node = ctx.Load64(EntryAddr(node, idx) + 8);
  }
  const uint64_t count = Count(ctx, node);
  for (uint64_t j = 0; j < count; ++j) {
    if (ctx.Load64(EntryAddr(node, j)) == key) {
      if (value_out != nullptr) {
        *value_out = ctx.Load64(EntryAddr(node, j) + 8);
      }
      return true;
    }
  }
  return false;
}

bool FastFairTree::Update(ThreadContext& ctx, uint64_t key, uint64_t value) {
  Addr node = root_;
  while (IsLeaf(ctx, node) == 0) {
    const uint64_t count = Count(ctx, node);
    uint64_t idx = 0;
    for (uint64_t j = 1; j < count; ++j) {
      if (ctx.Load64(EntryAddr(node, j)) <= key) {
        idx = j;
      } else {
        break;
      }
    }
    node = ctx.Load64(EntryAddr(node, idx) + 8);
  }
  const uint64_t count = Count(ctx, node);
  for (uint64_t j = 0; j < count; ++j) {
    if (ctx.Load64(EntryAddr(node, j)) == key) {
      PersistentStore64(ctx, EntryAddr(node, j) + 8, value, PersistMode::kClwbSfence);
      return true;
    }
  }
  return false;
}

}  // namespace pmemsim
