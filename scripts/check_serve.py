#!/usr/bin/env python3
"""Validate a pmemsim_serve --stats_json report's accounting identities.

The serving tier's contract (src/serve/) is enforceable from the JSON alone:

  1. admission conservation: offered == completed + rejected, globally and
     per shard — every offered request is either shed at admission or served
     to completion (nothing is lost or double-counted);
  2. aggregation: the per-shard offered/rejected/completed counts sum to the
     global counts, and no shard's last_completion exceeds the global one;
  3. latency accounting: sojourn histogram count == completed, and the
     exact-rank tails are monotone (p50 <= p99 <= p999);
  4. attribution: every shard carries a memory-side attribution section with
     a positive access count (the serve phase was actually attributed);
  5. rows: every (mix, loop) point emits a "global" row plus one row per
     shard, with matching completed counts.

Usage:
    check_serve.py --stats /tmp/serve.json [--expect-shed] [--report]

--expect-shed additionally requires at least one point to have shed requests
(used by the CI overload run, which would silently stop exercising admission
control if a config change made its queue deep enough to never fill).
"""

import argparse
import json
import sys


def fail(msg):
    sys.exit(f"error: {msg}")


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")


def check_stats_block(stats, where):
    for key in ("offered", "rejected", "completed", "ops_per_sec", "latency"):
        if key not in stats:
            fail(f"{where}: missing key '{key}'")
    if stats["offered"] != stats["completed"] + stats["rejected"]:
        fail(
            f"{where}: offered ({stats['offered']}) != completed "
            f"({stats['completed']}) + rejected ({stats['rejected']})"
        )
    sojourn = stats["latency"]["sojourn"]
    if sojourn.get("count") != stats["completed"]:
        fail(
            f"{where}: sojourn histogram count {sojourn.get('count')} != "
            f"completed {stats['completed']}"
        )
    if stats["completed"] > 0:
        p50, p99, p999 = (
            stats["sojourn_p50"],
            stats["sojourn_p99"],
            stats["sojourn_p999"],
        )
        if not p50 <= p99 <= p999:
            fail(f"{where}: tails not monotone: p50={p50} p99={p99} p999={p999}")
    return stats["offered"], stats["rejected"], stats["completed"]


def check_point(point, index):
    where = f"serve[{index}]"
    for key in ("config", "global", "shards", "serve_start"):
        if key not in point:
            fail(f"{where}: missing key '{key}'")
    cfg = point["config"]
    where = f"serve[{index}] ({cfg.get('mix')}/{cfg.get('loop')})"
    g_off, g_rej, g_done = check_stats_block(point["global"], f"{where} global")

    shards = point["shards"]
    if len(shards) != cfg["shards"]:
        fail(f"{where}: {len(shards)} shard entries, config says {cfg['shards']}")
    s_off = s_rej = s_done = 0
    last = 0
    for shard in shards:
        swhere = f"{where} shard{shard.get('shard')}"
        off, rej, done = check_stats_block(shard["stats"], swhere)
        s_off += off
        s_rej += rej
        s_done += done
        last = max(last, shard["stats"]["last_completion"])
        attribution = shard.get("attribution")
        if not attribution or attribution.get("accesses", 0) <= 0:
            fail(f"{swhere}: missing or empty attribution section")
        occupancy = shard["queue"]["max_occupancy"]
        if occupancy > shard["queue"]["depth"]:
            fail(f"{swhere}: occupancy {occupancy} exceeds depth bound")
    if (s_off, s_rej, s_done) != (g_off, g_rej, g_done):
        fail(
            f"{where}: shard sums (offered={s_off}, rejected={s_rej}, "
            f"completed={s_done}) != global ({g_off}, {g_rej}, {g_done})"
        )
    if last != point["global"]["last_completion"]:
        fail(
            f"{where}: max shard last_completion {last} != global "
            f"{point['global']['last_completion']}"
        )
    return g_rej


def check_rows(report, serve):
    rows = report.get("rows")
    if not rows:
        fail("report has no rows")
    by_point = {}
    for row in rows:
        for key in ("mix", "loop", "scope", "ops_per_sec", "sojourn_p99", "completed"):
            if key not in row:
                fail(f"row missing key '{key}': {row}")
        by_point.setdefault((row["mix"], row["loop"]), {})[row["scope"]] = row
    if len(by_point) != len(serve):
        fail(f"{len(by_point)} row points vs {len(serve)} serve sections")
    for point in serve:
        cfg = point["config"]
        scopes = by_point.get((cfg["mix"], cfg["loop"]))
        if scopes is None:
            fail(f"no rows for point {cfg['mix']}/{cfg['loop']}")
        if "global" not in scopes:
            fail(f"{cfg['mix']}/{cfg['loop']}: no global row")
        if len(scopes) != 1 + cfg["shards"]:
            fail(
                f"{cfg['mix']}/{cfg['loop']}: {len(scopes)} row scopes, "
                f"expected global + {cfg['shards']} shards"
            )
        if scopes["global"]["completed"] != point["global"]["completed"]:
            fail(f"{cfg['mix']}/{cfg['loop']}: row/section completed mismatch")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--stats", required=True, help="pmemsim_serve --stats_json file")
    parser.add_argument(
        "--expect-shed",
        action="store_true",
        help="require at least one point to have rejected requests",
    )
    parser.add_argument("--report", action="store_true", help="print a summary on success")
    args = parser.parse_args()

    report = load_json(args.stats)
    if report.get("bench") != "pmemsim_serve":
        fail(f"not a pmemsim_serve report: bench={report.get('bench')}")
    serve = report.get("serve")
    if not isinstance(serve, list) or not serve:
        fail("missing or empty 'serve' section")
    if any(point is None for point in serve):
        fail("a sweep point failed (null serve entry)")

    total_rejected = 0
    for i, point in enumerate(serve):
        total_rejected += check_point(point, i)
    check_rows(report, serve)

    if args.expect_shed and total_rejected == 0:
        fail("--expect-shed: no point shed any request (queue never filled)")

    if args.report:
        print(f"ok: {len(serve)} point(s) validated, {total_rejected} total shed")


if __name__ == "__main__":
    main()
