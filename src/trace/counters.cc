#include "src/trace/counters.h"

#include <cstdio>

namespace pmemsim {

namespace {
// Applies `op(lhs_field, rhs_field)` across every counter field, keeping the
// subtraction/addition code in one place so new fields can't be missed in one
// of the operators.
template <typename Op>
void ForEachField(Counters& lhs, const Counters& rhs, Op op) {
  op(lhs.imc_read_bytes, rhs.imc_read_bytes);
  op(lhs.imc_write_bytes, rhs.imc_write_bytes);
  op(lhs.media_read_bytes, rhs.media_read_bytes);
  op(lhs.media_write_bytes, rhs.media_write_bytes);
  op(lhs.read_buffer_hits, rhs.read_buffer_hits);
  op(lhs.read_buffer_misses, rhs.read_buffer_misses);
  op(lhs.write_buffer_hits, rhs.write_buffer_hits);
  op(lhs.write_buffer_misses, rhs.write_buffer_misses);
  op(lhs.write_buffer_evictions, rhs.write_buffer_evictions);
  op(lhs.periodic_writebacks, rhs.periodic_writebacks);
  op(lhs.rmw_media_reads, rhs.rmw_media_reads);
  op(lhs.read_write_transitions, rhs.read_write_transitions);
  op(lhs.ait_hits, rhs.ait_hits);
  op(lhs.ait_misses, rhs.ait_misses);
  op(lhs.wpq_stall_cycles, rhs.wpq_stall_cycles);
  op(lhs.rap_stall_cycles, rhs.rap_stall_cycles);
  op(lhs.rap_stalled_loads, rhs.rap_stalled_loads);
  op(lhs.demand_loads, rhs.demand_loads);
  op(lhs.demand_stores, rhs.demand_stores);
  op(lhs.prefetch_requests, rhs.prefetch_requests);
  op(lhs.l1_hits, rhs.l1_hits);
  op(lhs.l2_hits, rhs.l2_hits);
  op(lhs.l3_hits, rhs.l3_hits);
  op(lhs.cache_misses, rhs.cache_misses);
  op(lhs.dram_read_bytes, rhs.dram_read_bytes);
  op(lhs.dram_write_bytes, rhs.dram_write_bytes);
}
}  // namespace

Counters Counters::operator-(const Counters& rhs) const {
  Counters out = *this;
  ForEachField(out, rhs, [](uint64_t& a, const uint64_t& b) { a -= b; });
  return out;
}

Counters& Counters::operator+=(const Counters& rhs) {
  ForEachField(*this, rhs, [](uint64_t& a, const uint64_t& b) { a += b; });
  return *this;
}

std::string Counters::ToString() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "imc r/w: %llu/%llu B, media r/w: %llu/%llu B (RA=%.2f WA=%.2f), "
                "rdbuf h/m: %llu/%llu, wrbuf h/m/e: %llu/%llu/%llu, ait h/m: %llu/%llu",
                static_cast<unsigned long long>(imc_read_bytes),
                static_cast<unsigned long long>(imc_write_bytes),
                static_cast<unsigned long long>(media_read_bytes),
                static_cast<unsigned long long>(media_write_bytes), ReadAmplification(),
                WriteAmplification(), static_cast<unsigned long long>(read_buffer_hits),
                static_cast<unsigned long long>(read_buffer_misses),
                static_cast<unsigned long long>(write_buffer_hits),
                static_cast<unsigned long long>(write_buffer_misses),
                static_cast<unsigned long long>(write_buffer_evictions),
                static_cast<unsigned long long>(ait_hits),
                static_cast<unsigned long long>(ait_misses));
  return buf;
}

}  // namespace pmemsim
