# Empty dependencies file for ablation_read_buffer.
# This may be replaced when dependencies are built.
