// Telemetry counters: the simulator's equivalent of `ipmwatch` plus internal
// buffer statistics the real hardware never exposes.
//
// Counting points mirror the paper's metric definitions (§2.4):
//   imc_*_bytes   — traffic crossing the iMC<->DIMM boundary (64 B units)
//   media_*_bytes — traffic crossing the buffer<->3D-Xpoint boundary (256 B)
//   WA = media_write_bytes / imc_write_bytes
//   RA = media_read_bytes  / imc_read_bytes

#ifndef SRC_TRACE_COUNTERS_H_
#define SRC_TRACE_COUNTERS_H_

#include <cstdint>
#include <string>

namespace pmemsim {

struct Counters {
  // iMC boundary (what the processor requested of persistent memory).
  uint64_t imc_read_bytes = 0;
  uint64_t imc_write_bytes = 0;

  // Media boundary (what actually hit the 3D-Xpoint media).
  uint64_t media_read_bytes = 0;
  uint64_t media_write_bytes = 0;

  // On-DIMM buffer behaviour.
  uint64_t read_buffer_hits = 0;
  uint64_t read_buffer_misses = 0;
  uint64_t write_buffer_hits = 0;    // 64 B write merged into a resident XPLine
  uint64_t write_buffer_misses = 0;  // 64 B write that allocated a new entry
  uint64_t write_buffer_evictions = 0;
  uint64_t periodic_writebacks = 0;
  uint64_t rmw_media_reads = 0;  // media reads forced by partial-line eviction
  uint64_t read_write_transitions = 0;  // XPLine moved read buffer -> write buffer

  // AIT translation cache.
  uint64_t ait_hits = 0;
  uint64_t ait_misses = 0;

  // iMC queues.
  uint64_t wpq_stall_cycles = 0;  // cycles stores waited for WPQ space
  uint64_t rap_stall_cycles = 0;  // cycles loads waited on in-flight persists
  uint64_t rap_stalled_loads = 0;

  // CPU-side.
  uint64_t demand_loads = 0;
  uint64_t demand_stores = 0;
  uint64_t prefetch_requests = 0;  // prefetches that reached the iMC
  uint64_t l1_hits = 0;
  uint64_t l2_hits = 0;
  uint64_t l3_hits = 0;
  uint64_t cache_misses = 0;  // demand misses that reached memory

  // DRAM boundary.
  uint64_t dram_read_bytes = 0;
  uint64_t dram_write_bytes = 0;

  double WriteAmplification() const {
    return imc_write_bytes ? static_cast<double>(media_write_bytes) /
                                 static_cast<double>(imc_write_bytes)
                           : 0.0;
  }
  double ReadAmplification() const {
    return imc_read_bytes ? static_cast<double>(media_read_bytes) /
                                static_cast<double>(imc_read_bytes)
                          : 0.0;
  }
  double WriteBufferHitRatio() const {
    const uint64_t total = write_buffer_hits + write_buffer_misses;
    return total ? static_cast<double>(write_buffer_hits) / static_cast<double>(total) : 0.0;
  }
  double ReadBufferHitRatio() const {
    const uint64_t total = read_buffer_hits + read_buffer_misses;
    return total ? static_cast<double>(read_buffer_hits) / static_cast<double>(total) : 0.0;
  }

  Counters operator-(const Counters& rhs) const;
  Counters& operator+=(const Counters& rhs);

  std::string ToString() const;
};

// RAII snapshot: captures `*counters` at construction; Delta() returns the
// difference accumulated since.
class CounterDelta {
 public:
  explicit CounterDelta(const Counters* counters) : counters_(counters), base_(*counters) {}

  Counters Delta() const { return *counters_ - base_; }
  void Rebase() { base_ = *counters_; }

 private:
  const Counters* counters_;
  Counters base_;
};

}  // namespace pmemsim

#endif  // SRC_TRACE_COUNTERS_H_
