// Figure 14 (paper §4.3): the performance tradeoff of the AVX redirect as
// thread count grows. The extra PM->DRAM copy costs latency at low thread
// counts; once the threads contend for media read bandwidth, the halved media
// traffic (no misprefetched XPLines) wins both latency and throughput — the
// paper sees the crossover at ~12 threads.
//
// Output: CSV  gen,variant,threads,cycles_per_block,throughput_gbps

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/sweep_runner.h"
#include "src/common/random.h"
#include "src/core/platform.h"
#include "src/cpu/scheduler.h"

namespace {

using namespace pmemsim;

struct Result {
  double cycles_per_block = 0;
  double gbps = 0;
};

Result RunScaling(Generation gen, bool optimized, uint32_t threads, uint64_t wss,
                  uint64_t blocks_per_thread) {
  auto system = MakeSystem(gen, /*optane_dimm_count=*/1);
  const PmRegion region = system->AllocatePm(wss, kXPLineSize);
  const uint64_t blocks = wss / kXPLineSize;

  struct Worker {
    ThreadContext* ctx;
    PmRegion bounce;
    Rng rng{0};
    uint64_t done = 0;
  };
  std::vector<Worker> workers(threads);
  for (uint32_t t = 0; t < threads; ++t) {
    workers[t].ctx = &system->CreateThread();
    SetPrefetchers(*workers[t].ctx, true, true, true);
    workers[t].bounce = system->AllocateDram(kXPLineSize, kXPLineSize);
    workers[t].rng = Rng(0x14F + t);
  }

  auto visit = [&](Worker& w) {
    const Addr base = region.base + w.rng.NextBelow(blocks) * kXPLineSize;
    if (optimized) {
      w.ctx->StreamCopyXPLine(base, w.bounce.base);
      for (uint64_t cl = 0; cl < kLinesPerXPLine; ++cl) {
        w.ctx->LoadLine(w.bounce.base + cl * kCacheLineSize);
      }
    } else {
      for (uint64_t cl = 0; cl < kLinesPerXPLine; ++cl) {
        w.ctx->LoadLine(base + cl * kCacheLineSize);
      }
    }
    for (uint64_t cl = 0; cl < kLinesPerXPLine; ++cl) {
      w.ctx->Clflushopt(base + cl * kCacheLineSize);
    }
    w.ctx->Sfence();
  };

  // Warmup.
  std::vector<SimJob> warm_jobs;
  for (Worker& w : workers) {
    warm_jobs.push_back({w.ctx, [&w, &visit, blocks_per_thread]() {
                           if (w.done >= blocks_per_thread / 4) {
                             return StepResult::kDone;
                           }
                           visit(w);
                           ++w.done;
                           return StepResult::kProgress;
                         }});
  }
  Scheduler::Run(warm_jobs);

  Cycles start_max = 0;
  for (Worker& w : workers) {
    w.done = 0;
    start_max = std::max(start_max, w.ctx->clock());
    w.ctx->AdvanceTo(start_max);
  }
  std::vector<SimJob> jobs;
  for (Worker& w : workers) {
    jobs.push_back({w.ctx, [&w, &visit, blocks_per_thread]() {
                      if (w.done >= blocks_per_thread) {
                        return StepResult::kDone;
                      }
                      visit(w);
                      ++w.done;
                      return StepResult::kProgress;
                    }});
  }
  const Cycles end_max = Scheduler::Run(jobs);

  double total_cycles = 0;
  for (Worker& w : workers) {
    total_cycles += static_cast<double>(w.ctx->clock() - start_max);
  }
  const double ghz = gen == Generation::kG1 ? 2.1 : 3.0;
  const double total_blocks = static_cast<double>(threads) * static_cast<double>(blocks_per_thread);
  Result r;
  r.cycles_per_block = total_cycles / total_blocks;
  // Program-demanded bytes per second (the paper plots GB/s of useful data).
  r.gbps = total_blocks * kXPLineSize * ghz / static_cast<double>(end_max - start_max);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  pmemsim_bench::Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::printf(
        "usage: fig14_redirect_scaling [--gen=g1|g2|both] [--wss_mb=256] [--blocks=4000]\n%s",
        pmemsim_bench::kTelemetryFlagsHelp);
    return 0;
  }
  const std::string gen_flag = flags.Get("gen", "both");
  const uint64_t wss = MiB(flags.GetU64("wss_mb", 256));
  const uint64_t blocks = flags.GetU64("blocks", 4000);
  pmemsim_bench::BenchReport report(flags, "fig14_redirect_scaling");
  pmemsim_bench::SweepRunner runner(flags);
  flags.RejectUnknown();

  pmemsim_bench::PrintHeader("Figure 14", "redirect latency/throughput vs thread count");
  std::printf("gen,variant,threads,cycles_per_block,throughput_gbps\n");
  for (Generation gen : {Generation::kG1, Generation::kG2}) {
    if ((gen == Generation::kG1 && gen_flag == "g2") ||
        (gen == Generation::kG2 && gen_flag == "g1")) {
      continue;
    }
    const uint32_t max_threads = gen == Generation::kG1 ? 16 : 24;
    for (const bool optimized : {false, true}) {
      for (uint32_t t = 1; t <= max_threads; t += (t < 4 ? 1 : 2)) {
        const char* gen_name = gen == Generation::kG1 ? "G1" : "G2";
        const char* variant = optimized ? "optimized" : "prefetching";
        const std::string label =
            std::string(gen_name) + "/" + variant + "/t" + std::to_string(t);
        runner.Add(label, [=](pmemsim_bench::SweepPoint& point) {
          const Result r = RunScaling(gen, optimized, t, wss, blocks);
          point.Printf("%s,%s,%u,%.0f,%.3f\n", gen_name, variant, t, r.cycles_per_block,
                       r.gbps);
          point.AddRow()
              .Set("gen", gen_name)
              .Set("variant", variant)
              .Set("threads", t)
              .Set("cycles_per_block", r.cycles_per_block)
              .Set("throughput_gbps", r.gbps);
        });
      }
    }
  }
  return runner.Finish(report);
}
