# Empty compiler generated dependencies file for flat_log_test.
# This may be replaced when dependencies are built.
