#include "src/persist/redo_log.h"

#include <cstring>

#include "src/common/check.h"
#include "src/persist/barrier.h"

namespace pmemsim {

RedoLog::RedoLog(System* system, PmRegion log_region) : system_(system), region_(log_region) {
  PMEMSIM_CHECK(system != nullptr);
  PMEMSIM_CHECK(region_.kind == MemoryKind::kOptane);
  PMEMSIM_CHECK(region_.size >= 4 * kRecordSize);
  PMEMSIM_CHECK(IsCacheLineAligned(region_.base));
}

void RedoLog::Advance(ThreadContext& ctx) {
  ++next_record_;
  if (next_record_ < capacity_records()) {
    return;
  }
  // Ring wrap: bump the epoch and, so that no group ever straddles epochs,
  // re-log the *open* group's updates at the start of the new lap. Any
  // sealed-but-unapplied entries stay in the shadow for the pending Apply;
  // recovery only guarantees groups committed within the newest epoch, so
  // callers should Apply() promptly after Commit() (as the B+-tree does).
  next_record_ = 0;
  ++epoch_;
  if (open_group_size_ == 0) {
    return;
  }
  PMEMSIM_CHECK(open_group_size_ <= shadow_.size());
  const std::vector<ShadowUpdate> open_suffix(
      shadow_.end() - static_cast<ptrdiff_t>(open_group_size_), shadow_.end());
  shadow_.resize(shadow_.size() - open_group_size_);
  open_group_size_ = 0;
  for (const ShadowUpdate& s : open_suffix) {
    LogUpdate(ctx, s.target, s.data, s.len);
  }
}

void RedoLog::LogUpdate(ThreadContext& ctx, Addr target, const void* data, uint32_t len) {
  PMEMSIM_CHECK(len > 0 && len <= kMaxPayload);

  uint8_t record[kRecordSize] = {};
  std::memcpy(record, &target, sizeof(target));
  std::memcpy(record + 8, &len, sizeof(len));
  const uint32_t magic = kUpdateMagic;
  std::memcpy(record + 12, &magic, sizeof(magic));
  std::memcpy(record + 16, &epoch_, sizeof(epoch_));
  std::memcpy(record + 24, data, len);
  // Fresh log cacheline: the nt-store+fence persists without ever re-flushing
  // a recently persisted line.
  ctx.NtStoreLine(RecordAddr(next_record_), record);
  ctx.Sfence();
  ++open_group_size_;

  ShadowUpdate s;
  s.target = target;
  s.len = len;
  std::memcpy(s.data, data, len);
  shadow_.push_back(s);
  Advance(ctx);
}

void RedoLog::Commit(ThreadContext& ctx) {
  if (shadow_.empty()) {
    return;
  }
  uint8_t record[kRecordSize] = {};
  std::memcpy(record, &open_group_size_, sizeof(open_group_size_));
  const uint32_t magic = kCommitMagic;
  std::memcpy(record + 12, &magic, sizeof(magic));
  std::memcpy(record + 16, &epoch_, sizeof(epoch_));
  ctx.NtStoreLine(RecordAddr(next_record_), record);
  ctx.Sfence();
  open_group_size_ = 0;
  Advance(ctx);
}

void RedoLog::Apply(ThreadContext& ctx) {
  // Plain cached stores: durability already comes from the committed log;
  // the target lines reach PM later as ordinary dirty evictions.
  for (const ShadowUpdate& s : shadow_) {
    ctx.Write(s.target, s.data, s.len);
  }
  shadow_.clear();
  open_group_size_ = 0;
}

size_t RedoLog::Recover(ThreadContext& ctx) {
  const uint64_t records = capacity_records();
  // Pass 1: find the newest epoch present.
  uint64_t max_epoch = 0;
  for (uint64_t i = 0; i < records; ++i) {
    uint8_t rec[kRecordSize];
    ctx.Read(RecordAddr(i), rec, sizeof(rec));
    uint32_t magic = 0;
    uint64_t rec_epoch = 0;
    std::memcpy(&magic, rec + 12, sizeof(magic));
    std::memcpy(&rec_epoch, rec + 16, sizeof(rec_epoch));
    if ((magic == kUpdateMagic || magic == kCommitMagic) && rec_epoch > max_epoch) {
      max_epoch = rec_epoch;
    }
  }
  if (max_epoch == 0) {
    shadow_.clear();
    next_record_ = 0;
    open_group_size_ = 0;
    epoch_ = 1;
    return 0;
  }

  // Pass 2: replay committed groups of the newest epoch in ring order.
  size_t replayed = 0;
  std::vector<ShadowUpdate> group;
  uint64_t last_seen = 0;
  for (uint64_t i = 0; i < records; ++i) {
    uint8_t rec[kRecordSize];
    ctx.Read(RecordAddr(i), rec, sizeof(rec));
    uint32_t magic = 0;
    uint64_t rec_epoch = 0;
    std::memcpy(&magic, rec + 12, sizeof(magic));
    std::memcpy(&rec_epoch, rec + 16, sizeof(rec_epoch));
    if (rec_epoch != max_epoch) {
      continue;
    }
    if (magic == kUpdateMagic) {
      ShadowUpdate s{};
      uint32_t len = 0;
      std::memcpy(&s.target, rec, sizeof(s.target));
      std::memcpy(&len, rec + 8, sizeof(len));
      if (len == 0 || len > kMaxPayload) {
        continue;  // torn record
      }
      s.len = len;
      std::memcpy(s.data, rec + 24, len);
      group.push_back(s);
      last_seen = i + 1;
    } else if (magic == kCommitMagic) {
      // Reaching here relies on the magic word's 8-byte failure atomicity
      // (static_asserted in the header): a torn commit record can never show
      // kCommitMagic with half-written neighbors in the same word, so any
      // record that *does* carry the magic was sealed by the committer's
      // fence. A commit torn away entirely reads as its old contents and the
      // group above is simply never replayed — torn commit == not committed.
      //
      // The commit record names its group size: replay exactly the last
      // `count` updates. Earlier strays (an aborted group's records) are
      // discarded — they were never covered by a commit.
      uint64_t count = 0;
      std::memcpy(&count, rec, sizeof(count));
      if (count > group.size()) {
        count = group.size();  // torn commit: replay what exists
      }
      const size_t first = group.size() - static_cast<size_t>(count);
      for (size_t g = first; g < group.size(); ++g) {
        ctx.Write(group[g].target, group[g].data, group[g].len);
        FlushRange(ctx, group[g].target, group[g].len);  // persist replayed data
      }
      ctx.Sfence();
      replayed += static_cast<size_t>(count);
      group.clear();
      last_seen = i + 1;
    }
  }
  // Uncommitted tail (the open group at crash time) is discarded.
  shadow_.clear();
  open_group_size_ = 0;
  epoch_ = max_epoch;
  next_record_ = last_seen % records;
  if (next_record_ == 0 && last_seen != 0) {
    ++epoch_;
  }
  return replayed;
}

}  // namespace pmemsim
