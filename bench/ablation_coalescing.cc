// Ablation: the paper's headline programming guideline (§3.2 implications,
// §5 FlatStore/ArchTM discussion) — coalesce small writes into XPLine-sized
// writes instead of persisting each record in place.
//
// Inserts N 16 B records two ways:
//   in-place    — store + clwb + sfence per record into a slot array (the
//                 naive persistent-table layout: 64 B-granular random writes)
//   coalesced   — FlatStore-style log batching four records into one 256 B
//                 nt-store burst with a single fence
// and reports cycles/record and the ipmwatch write amplification. The
// guideline holds when the WSS exceeds the write buffer: in-place WA tends
// toward 4 while the coalesced log stays at ~1 and runs faster.
//
// Output: CSV  layout,records,cycles_per_record,write_amplification

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/core/platform.h"
#include "src/datastores/flat_log.h"
#include "src/trace/counters.h"

namespace {

using namespace pmemsim;

struct Result {
  double cycles = 0;
  double wa = 0;
};

Result RunInPlace(uint64_t records) {
  auto system = MakeG1System(1);
  ThreadContext& ctx = system->CreateThread();
  // A slot table far larger than the write buffer; random slot order.
  const PmRegion table = system->AllocatePm(records * 64, kXPLineSize);
  std::vector<uint64_t> order(records);
  for (uint64_t i = 0; i < records; ++i) {
    order[i] = i;
  }
  Rng rng(0xC0A1);
  rng.Shuffle(order);

  CounterDelta delta(&system->counters());
  const Cycles t0 = ctx.clock();
  for (const uint64_t slot : order) {
    const Addr addr = table.base + slot * 64;
    ctx.Store64(addr, slot);       // key
    ctx.Store64(addr + 8, ~slot);  // value
    ctx.Clwb(addr);
    ctx.Sfence();
  }
  return {static_cast<double>(ctx.clock() - t0) / static_cast<double>(records),
          delta.Delta().WriteAmplification()};
}

Result RunCoalesced(uint64_t records) {
  auto system = MakeG1System(1);
  ThreadContext& ctx = system->CreateThread();
  const PmRegion log_region = system->AllocatePm(records * 64 + kXPLineSize, kXPLineSize);
  FlatLog log(system.get(), log_region);

  CounterDelta delta(&system->counters());
  const Cycles t0 = ctx.clock();
  for (uint64_t i = 0; i < records; ++i) {
    const uint64_t value = ~i;
    log.Put(ctx, i + 1, &value, sizeof(value));
  }
  log.Flush(ctx);
  return {static_cast<double>(ctx.clock() - t0) / static_cast<double>(records),
          delta.Delta().WriteAmplification()};
}

}  // namespace

int main(int argc, char** argv) {
  pmemsim_bench::Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::printf("usage: ablation_coalescing [--records=200000]\n%s",
                pmemsim_bench::kTelemetryFlagsHelp);
    return 0;
  }
  const uint64_t records = flags.GetU64("records", 200000);
  pmemsim_bench::BenchReport report(flags, "ablation_coalescing");

  pmemsim_bench::PrintHeader("Ablation",
                             "coalescing small writes into XPLines (FlatStore guideline)");
  std::printf("layout,records,cycles_per_record,write_amplification\n");
  const Result in_place = RunInPlace(records);
  std::printf("in-place,%llu,%.1f,%.3f\n", static_cast<unsigned long long>(records),
              in_place.cycles, in_place.wa);
  report.AddRow()
      .Set("layout", "in-place")
      .Set("records", records)
      .Set("cycles_per_record", in_place.cycles)
      .Set("write_amplification", in_place.wa);
  const Result coalesced = RunCoalesced(records);
  std::printf("coalesced,%llu,%.1f,%.3f\n", static_cast<unsigned long long>(records),
              coalesced.cycles, coalesced.wa);
  report.AddRow()
      .Set("layout", "coalesced")
      .Set("records", records)
      .Set("cycles_per_record", coalesced.cycles)
      .Set("write_amplification", coalesced.wa);
  return report.Finish();
}
