// TierDispatcher: the client population and front-end router of the
// partitioned serving engine (DomainTier).
//
// In the partitioned engine every shard is an isolated domain with its own
// System; the only cross-domain interaction is the client tier dispatching a
// request to the shard that owns its key. The dispatcher owns that tier:
//
//  * routing is by key hash — Route(key) = Mix64(key ^ salt) % shards — over
//    one global key space of cfg.keys * cfg.shards preloaded keys, so every
//    request's destination is a pure function of its content;
//  * each dispatched request takes cfg.dispatch_latency cycles (D) to reach
//    its shard: a request issued at t becomes admission-eligible at t + D.
//    D is the minimum cross-domain interaction latency, which makes it the
//    conservative epoch window (see src/serve/domain_tier.h);
//  * all stochastic draws (op mix, key skew, think times, Poisson arrivals,
//    insert-key allocation) live in single global streams consumed on the
//    coordinator thread only, in a deterministic order: open-loop arrivals in
//    generation order, closed-loop client feedback in (event time, client)
//    order at each epoch barrier. Results are therefore independent of how
//    many host threads advance the domains.
//
// Closed-loop feedback: a domain reports one DomainEvent per completion and
// per shed observation. The dispatcher folds one epoch's events (sorted) and
// issues each live client's next request at event.time + think + D — always
// at least one epoch ahead, which is exactly why barrier-time delivery never
// misses an admission. With zero lookahead (D == 0, the sequential fallback)
// the tier instead calls Pump/OnEvent synchronously from inside the one
// combined lockstep run, where global clock order plays the coordinator.

#ifndef SRC_SERVE_DISPATCH_H_
#define SRC_SERVE_DISPATCH_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"
#include "src/serve/request.h"
#include "src/serve/shard.h"
#include "src/workload/ycsb.h"
#include "src/workload/zipf.h"

namespace pmemsim {

// One cross-domain fact a domain reports at the epoch barrier: client
// `client`'s in-flight request resolved (completed, or was shed at admission)
// at cycle `time`. (time, client) pairs are unique within an epoch — a client
// has at most one request in flight — so sorting them is a total order.
struct DomainEvent {
  Cycles time;
  uint32_t client;
  bool operator<(const DomainEvent& o) const {
    return time != o.time ? time < o.time : client < o.client;
  }
};

class TierDispatcher {
 public:
  explicit TierDispatcher(const ServeConfig& cfg);

  // Destination shard for a key (pure function of content + seed).
  uint32_t Route(uint64_t key) const;

  // The seed-shuffled global preload key list, split by Route: element s is
  // domain s's preload list (each domain loads only the keys it owns).
  std::vector<std::vector<uint64_t>> PartitionLoadKeys() const;

  // Sink for routed requests; called on the coordinator thread only (or, in
  // eager mode, from inside the combined lockstep run). Must be set before
  // StartServing.
  void SetDeliverFn(std::function<void(uint32_t shard, const Request&)> fn);

  // Seeds the closed-loop clients (their first requests are issued at
  // t0 + think and delivered immediately — arrival times are future-dated,
  // the domain admits them when its clock gets there) or arms the open-loop
  // Poisson cursor.
  void StartServing(Cycles t0);

  // Epoch mode, open loop: generates and delivers every arrival with
  // admission-eligible time < epoch_end. Closed-loop issues come from
  // ProcessEvents instead. Call once before each epoch.
  void DeliverUpTo(Cycles epoch_end);

  // Epoch barrier: folds one epoch's domain events from all domains — sorted
  // by (time, client) so the fold order is independent of domain count and
  // host threading — issuing each client's next request while the global
  // budget lasts. `events` is sorted in place and consumed.
  void ProcessEvents(std::vector<DomainEvent>* events);

  // Eager (zero-lookahead) fallback, called from inside the combined
  // lockstep run at the globally minimal clock:
  // open loop — deliver every arrival <= now;
  void Pump(Cycles now);
  // closed loop — fold one event (completion/shed) synchronously.
  void OnEvent(Cycles time, uint32_t client);

  // Eager mode: the admission-eligible time of the next open-loop arrival
  // the dispatcher will generate (nullopt when closed-loop or exhausted).
  // Idle domain workers park just past this instead of spinning in quanta.
  std::optional<Cycles> NextArrivalHint() const;

  // True when the dispatcher will never produce another arrival on its own:
  // open loop once the budget is fully generated; always for the closed loop
  // (future work there is client feedback, visible as undrained domains).
  bool Exhausted() const;

  uint64_t global_keys() const { return global_keys_; }
  uint64_t budget() const { return budget_; }
  uint64_t issued() const { return issued_; }

 private:
  Request Materialize(Cycles arrival, uint32_t client);
  uint64_t SkewedKey();
  Cycles ThinkDraw();
  void Deliver(const Request& r);

  const ServeConfig& cfg_;
  uint32_t shards_;
  uint64_t global_keys_;  // cfg.keys * cfg.shards
  uint64_t budget_;       // cfg.ops * cfg.shards offered-op issues
  Cycles latency_;        // cfg.dispatch_latency (D)

  std::function<void(uint32_t, const Request&)> deliver_;

  MixSampler mix_sampler_;
  ZipfGenerator zipf_;
  Rng think_rng_;
  PoissonArrivalGenerator arrivals_;
  uint64_t route_salt_;
  uint64_t key_scramble_salt_;
  bool latest_skew_ = false;

  uint64_t next_insert_key_;
  Cycles serve_start_ = 0;
  Cycles next_open_issue_ = 0;  // open loop: next un-dispatched arrival cycle
  uint64_t issued_ = 0;         // open: arrivals generated; closed: attempts
  uint32_t open_seq_ = 0;
};

}  // namespace pmemsim

#endif  // SRC_SERVE_DISPATCH_H_
