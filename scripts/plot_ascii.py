#!/usr/bin/env python3
"""Dependency-free terminal plots for the bench CSV outputs.

Usage:
    build/bench/fig02_read_buffer --gen=g1 | scripts/plot_ascii.py --x=wss_kb \
        --y=read_amplification --series=cpx
    scripts/plot_ascii.py --x=distance --y=cycles --series=mode < results/fig07_rap.csv

Reads CSV (with a header line; leading '#' comment lines are skipped), groups
rows by the --series column(s), and renders each series as a column chart of
y vs x in plain Unicode.
"""

import argparse
import csv
import sys

BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values, width=70):
    if not values:
        return ""
    if len(values) > width:
        # Downsample by averaging buckets.
        bucket = len(values) / width
        values = [
            sum(values[int(i * bucket):max(int(i * bucket) + 1, int((i + 1) * bucket))])
            / max(1, len(values[int(i * bucket):max(int(i * bucket) + 1, int((i + 1) * bucket))]))
            for i in range(width)
        ]
    lo, hi = min(values), max(values)
    span = hi - lo or 1.0
    return "".join(BLOCKS[1 + int((v - lo) / span * (len(BLOCKS) - 2))] for v in values)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--x", required=True, help="x-axis column name")
    parser.add_argument("--y", required=True, help="y-axis column name")
    parser.add_argument("--series", default="", help="comma-separated grouping columns")
    parser.add_argument("file", nargs="?", help="CSV file (default: stdin)")
    args = parser.parse_args()

    stream = open(args.file) if args.file else sys.stdin
    rows = [line for line in stream if not line.startswith("#") and line.strip()]
    reader = csv.DictReader(rows)
    group_cols = [c for c in args.series.split(",") if c]

    series = {}
    for row in reader:
        if args.y not in row or row[args.y] is None:
            continue
        try:
            x = float(row[args.x])
            y = float(row[args.y])
        except (TypeError, ValueError):
            continue
        key = ",".join(f"{c}={row.get(c, '?')}" for c in group_cols) or args.y
        series.setdefault(key, []).append((x, y))

    if not series:
        sys.exit(f"no numeric rows with columns {args.x!r} and {args.y!r}")

    width = max(len(k) for k in series)
    for key, points in series.items():
        points.sort()
        ys = [y for _, y in points]
        print(f"{key:<{width}}  {sparkline(ys)}  "
              f"[{min(ys):.3g} .. {max(ys):.3g}] n={len(ys)}")


if __name__ == "__main__":
    main()
