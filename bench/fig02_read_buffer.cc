// Figure 2 (paper §3.1): read amplification vs working set size for strided
// reads touching 1..4 cachelines per XPLine (CpX). Demonstrates the 16 KB
// (G1) / 22 KB (G2) on-DIMM read buffer with FIFO eviction and exclusive
// delivery: RA = 4/CpX while the WSS fits, then a sharp jump to 4.
//
// Output: CSV  gen,wss_kb,cpx,read_amplification

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "bench/sweep_runner.h"
#include "src/core/platform.h"
#include "src/trace/counters.h"

namespace {

using namespace pmemsim;

double MeasureRa(Generation gen, uint64_t wss_bytes, uint32_t cpx) {
  // Single non-interleaved DIMM, as in the paper's buffer probes.
  auto system = MakeSystem(gen, /*optane_dimm_count=*/1);
  ThreadContext& ctx = system->CreateThread();
  SetPrefetchers(ctx, false, false, false);

  const PmRegion region = system->AllocatePm(wss_bytes, kXPLineSize);
  const uint64_t xplines = wss_bytes / kXPLineSize;

  auto run_pattern = [&](int passes) {
    for (int p = 0; p < passes; ++p) {
      for (uint32_t cl = 0; cl < cpx; ++cl) {
        for (uint64_t xp = 0; xp < xplines; ++xp) {
          const Addr addr = region.base + xp * kXPLineSize + cl * kCacheLineSize;
          ctx.LoadLine(addr);
          // Invalidate so the next visit must leave the CPU caches (§3.1).
          ctx.Clflushopt(addr);
        }
        ctx.Sfence();
      }
    }
  };

  run_pattern(3);  // warm up buffers
  CounterDelta delta(&system->counters());
  run_pattern(8);
  return delta.Delta().ReadAmplification();
}

}  // namespace

int main(int argc, char** argv) {
  pmemsim_bench::Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::printf("usage: fig02_read_buffer [--gen=g1|g2|both] [--max_kb=36]\n%s",
                pmemsim_bench::kTelemetryFlagsHelp);
    return 0;
  }
  const std::string gen_flag = flags.Get("gen", "both");
  const uint64_t max_kb = flags.GetU64("max_kb", 36);
  pmemsim_bench::BenchReport report(flags, "fig02_read_buffer");
  pmemsim_bench::SweepRunner runner(flags);
  flags.RejectUnknown();

  pmemsim_bench::PrintHeader("Figure 2", "read amplification vs WSS (strided reads, CpX=1..4)");
  std::printf("gen,wss_kb,cpx,read_amplification\n");
  for (Generation gen : {Generation::kG1, Generation::kG2}) {
    if ((gen == Generation::kG1 && gen_flag == "g2") ||
        (gen == Generation::kG2 && gen_flag == "g1")) {
      continue;
    }
    const char* gen_name = gen == Generation::kG1 ? "G1" : "G2";
    for (uint64_t kb = 1; kb <= max_kb; ++kb) {
      for (uint32_t cpx = 1; cpx <= 4; ++cpx) {
        const std::string label =
            std::string(gen_name) + "/" + std::to_string(kb) + "kb/cpx" + std::to_string(cpx);
        runner.Add(label, [=](pmemsim_bench::SweepPoint& point) {
          const double ra = MeasureRa(gen, KiB(kb), cpx);
          point.Printf("%s,%llu,%u,%.3f\n", gen_name, static_cast<unsigned long long>(kb), cpx,
                       ra);
          point.AddRow()
              .Set("gen", gen_name)
              .Set("wss_kb", kb)
              .Set("cpx", cpx)
              .Set("read_amplification", ra);
        });
      }
    }
  }
  return runner.Finish(report);
}
