// Streaming statistics helpers used by benchmarks and tests.

#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pmemsim {

class JsonWriter;

// Welford running mean/variance with min/max tracking.
class RunningStat {
 public:
  void Add(double x);

  uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  void Reset();

  // {"count":N,"mean":...,"stddev":...,"min":...,"max":...,"sum":...}
  void ToJson(JsonWriter& w) const;
  std::string ToJson() const;

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Log-bucketed latency histogram (power-of-two buckets with linear sub-buckets)
// supporting approximate percentiles. Good enough for cycle latencies spanning
// 1..10^7.
class Histogram {
 public:
  Histogram();

  void Add(uint64_t value);
  void Merge(const Histogram& other);

  uint64_t count() const { return count_; }
  double mean() const;
  // p in [0, 100]. Returns 0 on an empty histogram — callers that must
  // distinguish "no samples" from "0-cycle latency" check count() first
  // (ToJson emits nulls for exactly this reason).
  uint64_t Percentile(double p) const;
  // Exact-rank quantile extraction, q in [0, 1]: locates the bucket holding
  // the sample of rank ceil(q * count) and interpolates the rank's position
  // linearly across the bucket's value span. Values below 16 land in
  // single-value buckets, so quantiles over them are exact; wider buckets
  // bound the error by the sub-bucket resolution (1/16 relative). Returns 0
  // on an empty histogram (check count(), as with Percentile). q=0 yields
  // Min(), q=1 yields Max().
  uint64_t Quantile(double q) const;
  uint64_t Min() const { return count_ ? min_ : 0; }
  uint64_t Max() const { return count_ ? max_ : 0; }

  void Reset();

  std::string Summary() const;

  // Count/mean/min/max plus the standard percentile ladder (p50..p999).
  // An empty histogram serializes as count:0 with null statistics.
  void ToJson(JsonWriter& w) const;
  std::string ToJson() const;

 private:
  static constexpr int kSubBucketBits = 4;  // 16 linear sub-buckets per octave
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kOctaves = 40;

  static int BucketFor(uint64_t value);
  static uint64_t BucketMidpoint(int bucket);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace pmemsim

#endif  // SRC_COMMON_STATS_H_
