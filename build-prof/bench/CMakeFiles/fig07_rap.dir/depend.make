# Empty dependencies file for fig07_rap.
# This may be replaced when dependencies are built.
