// 3D-Xpoint media access model: fixed 256 B (XPLine) transfer granularity,
// a small number of read ports (reads scale to a few GB/s) and fewer write
// ports (writes saturate at low concurrency — paper §2.2 finding 1).
//
// Each port is a busy-until scheduler: a request issued at time t on the
// earliest-free port starts at max(t, port_free) and occupies the port for the
// service latency. This yields both per-request latency under contention and
// an aggregate bandwidth ceiling without a full DES.

#ifndef SRC_MEDIA_XPOINT_MEDIA_H_
#define SRC_MEDIA_XPOINT_MEDIA_H_

#include <cstdint>
#include <vector>

#include "src/common/types.h"
#include "src/trace/counters.h"

namespace pmemsim {

// A pool of identical service ports.
class PortPool {
 public:
  PortPool(uint32_t ports, Cycles service_latency);

  // Schedules a request arriving at `now`; returns its completion time.
  Cycles Schedule(Cycles now);

  // Pipelined variant: the port is occupied for the pool's service latency but
  // the request completes `completion_latency` after it starts (service acts
  // as an issue-bandwidth limit, completion as end-to-end latency).
  Cycles Schedule(Cycles now, Cycles completion_latency);

  // Completion time if scheduled, without mutating state (for probes).
  Cycles PeekCompletion(Cycles now) const;

  // Earliest time any port frees up.
  Cycles EarliestFree() const;

  void Reset();

  Cycles service_latency() const { return service_latency_; }

 private:
  size_t PickPort(Cycles now) const;

  std::vector<Cycles> busy_until_;
  Cycles service_latency_;
};

class XpointMedia {
 public:
  XpointMedia(uint32_t read_ports, Cycles read_latency, uint32_t write_ports,
              Cycles write_latency, Counters* counters);

  // Reads the XPLine containing `addr` from media. Returns completion time.
  Cycles ReadXPLine(Addr addr, Cycles now);

  // Programs the XPLine containing `addr` to media. Returns completion time.
  Cycles WriteXPLine(Addr addr, Cycles now);

  // When the write ports could accept a new request (back-pressure signal for
  // the write-buffer drain).
  Cycles NextWriteSlot() const { return write_ports_.EarliestFree(); }

  void Reset();

 private:
  PortPool read_ports_;
  PortPool write_ports_;
  Counters* counters_;
};

}  // namespace pmemsim

#endif  // SRC_MEDIA_XPOINT_MEDIA_H_
