// pmemsim_probe — a LENS-style microbenchmark driver for exploring the
// simulated DIMM interactively, the way the paper's authors probed real
// hardware with ipmwatch.
//
//   $ pmemsim_probe --gen=g1 --op=read --pattern=rand --wss=64M --threads=4
//   $ pmemsim_probe --op=write --persist=clwb --pattern=seq --wss=8K
//   $ pmemsim_probe --op=rap --distance=2
//
// Prints per-op latency percentiles, achieved bandwidth, and the ipmwatch-
// equivalent counters (amplifications, buffer hit ratios, stalls).

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/sweep_runner.h"
#include "src/common/random.h"
#include "src/common/stats.h"
#include "src/core/platform.h"
#include "src/cpu/scheduler.h"
#include "src/persist/barrier.h"

namespace {

using namespace pmemsim;

uint64_t ParseSize(const std::string& s) {
  if (s.empty()) {
    return 0;
  }
  const char suffix = s.back();
  const uint64_t base = std::strtoull(s.c_str(), nullptr, 10);
  switch (suffix) {
    case 'K':
    case 'k':
      return KiB(base);
    case 'M':
    case 'm':
      return MiB(base);
    case 'G':
    case 'g':
      return GiB(base);
    default:
      return base;
  }
}

struct ProbeConfig {
  PlatformConfig platform;        // selected by --platform (or legacy --gen)
  std::string op = "read";        // read | write | ntstore | rap | copy
  std::string pattern = "rand";   // seq | rand
  std::string persist = "none";   // none | clwb | clwb+mfence
  uint64_t wss = MiB(64);
  uint64_t stride = kCacheLineSize;
  uint32_t threads = 1;
  uint64_t ops = 100000;
  uint64_t distance = 0;  // rap distance
  uint32_t dimms = 1;
  bool prefetch = true;
  bool remote = false;
};

void RunProbe(const ProbeConfig& cfg, pmemsim_bench::SweepPoint& point) {
  auto system = std::make_unique<System>(cfg.platform, cfg.dimms);
  const PmRegion region = system->AllocatePm(cfg.wss, kXPLineSize);
  const uint64_t lines = cfg.wss / cfg.stride;

  struct Worker {
    ThreadContext* ctx;
    Rng rng{0};
    uint64_t done = 0;
    uint64_t pos = 0;
    Histogram latency;
  };
  std::vector<Worker> workers(cfg.threads);
  for (uint32_t t = 0; t < cfg.threads; ++t) {
    workers[t].ctx = &system->CreateThread(cfg.remote ? 1 : 0);
    workers[t].rng = Rng(0x9E0B + t);
    SetPrefetchers(*workers[t].ctx, cfg.prefetch, cfg.prefetch, cfg.prefetch);
  }

  const PmRegion bounce = system->AllocateDram(kXPLineSize, kXPLineSize);
  auto one_op = [&](Worker& w) {
    ThreadContext& ctx = *w.ctx;
    const uint64_t index =
        cfg.pattern == "seq" ? (w.pos++ % lines) : w.rng.NextBelow(lines);
    const Addr addr = region.base + index * cfg.stride;
    const Cycles t0 = ctx.clock();
    if (cfg.op == "read") {
      ctx.LoadLine(addr);
    } else if (cfg.op == "write") {
      ctx.Store64(addr, w.done);
      if (cfg.persist != "none") {
        ctx.Clwb(addr);
        if (cfg.persist == "clwb+mfence") {
          ctx.Mfence();
        } else {
          ctx.Sfence();
        }
      }
    } else if (cfg.op == "ntstore") {
      ctx.NtStore64(addr, w.done);
      ctx.Sfence();
    } else if (cfg.op == "rap") {
      ctx.Store64(addr, w.done);
      ctx.Clwb(addr);
      ctx.Mfence();
      const uint64_t back =
          (index + lines - cfg.distance) % lines;
      ctx.Load64(region.base + back * cfg.stride);
    } else if (cfg.op == "copy") {
      ctx.StreamCopyXPLine(XPLineBase(addr), bounce.base);
    } else {
      throw std::runtime_error("unknown --op=" + cfg.op);
    }
    w.latency.Add(ctx.clock() - t0);
  };

  // Warmup, then measured phase.
  const uint64_t per_thread = cfg.ops / cfg.threads + 1;
  std::vector<SimJob> jobs;
  for (Worker& w : workers) {
    jobs.push_back({w.ctx, [&w, &one_op, per_thread]() {
                      if (w.done >= per_thread / 4) {
                        return StepResult::kDone;
                      }
                      one_op(w);
                      ++w.done;
                      return StepResult::kProgress;
                    }});
  }
  Scheduler::Run(jobs);
  CounterDelta delta(&system->counters());
  Cycles start_max = 0;
  for (Worker& w : workers) {
    w.done = 0;
    w.latency.Reset();
    start_max = std::max(start_max, w.ctx->clock());
  }
  for (Worker& w : workers) {
    w.ctx->AdvanceTo(start_max);
  }
  std::vector<SimJob> measured;
  for (Worker& w : workers) {
    measured.push_back({w.ctx, [&w, &one_op, per_thread]() {
                          if (w.done >= per_thread) {
                            return StepResult::kDone;
                          }
                          one_op(w);
                          ++w.done;
                          return StepResult::kProgress;
                        }});
  }
  const Cycles end = Scheduler::Run(measured);

  Histogram all;
  uint64_t total_ops = 0;
  for (Worker& w : workers) {
    all.Merge(w.latency);
    total_ops += w.done;
  }
  const double seconds =
      static_cast<double>(end - start_max) / (cfg.platform.cpu_ghz * 1e9);
  const double touched =
      static_cast<double>(total_ops) * (cfg.op == "copy" ? kXPLineSize : kCacheLineSize);

  const double mops = static_cast<double>(total_ops) / seconds / 1e6;
  const double gbps = touched / seconds / 1e9;
  point.Printf("op=%s pattern=%s wss=%llu KB stride=%llu threads=%u platform=%s dimms=%u\n",
               cfg.op.c_str(), cfg.pattern.c_str(),
               static_cast<unsigned long long>(cfg.wss / 1024),
               static_cast<unsigned long long>(cfg.stride), cfg.threads,
               cfg.platform.name.c_str(), cfg.dimms);
  point.Printf("latency (cycles): %s\n", all.Summary().c_str());
  point.Printf("throughput: %.2f Mops/s, %.3f GB/s of demanded data\n", mops, gbps);
  const Counters d = delta.Delta();
  point.Printf("counters: %s\n", d.ToString().c_str());
  point.Printf("rap stalls: %llu loads, %llu cycles; wpq stalls: %llu cycles\n",
               static_cast<unsigned long long>(d.rap_stalled_loads),
               static_cast<unsigned long long>(d.rap_stall_cycles),
               static_cast<unsigned long long>(d.wpq_stall_cycles));
  point.AddRow()
      .Set("op", cfg.op)
      .Set("pattern", cfg.pattern)
      .Set("wss_kb", cfg.wss / 1024)
      .Set("threads", cfg.threads)
      .Set("mops", mops)
      .Set("gbps", gbps)
      .Set("rap_stall_cycles", d.rap_stall_cycles)
      .Set("wpq_stall_cycles", d.wpq_stall_cycles);
}

}  // namespace

int main(int argc, char** argv) {
  pmemsim_bench::Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::printf(
        "usage: pmemsim_probe [--platform=g1|g2|g2-eadr] [--op=read|write|ntstore|rap|copy]\n"
        "                     [--pattern=seq|rand] [--persist=none|clwb|clwb+mfence]\n"
        "                     [--wss=64M] [--stride=64] [--threads=1] [--ops=100000]\n"
        "                     [--distance=0] [--dimms=1] [--no_prefetch] [--remote]\n"
        "                     (--gen=g1|g2 is accepted as a legacy alias)\n%s",
        pmemsim_bench::kTelemetryFlagsHelp);
    return 0;
  }
  ProbeConfig cfg;
  // --platform selects the preset by name; --gen remains a legacy alias for
  // the two paper testbeds (--platform wins when both are given).
  const std::string gen = flags.Get("gen", "");
  std::string platform_name = flags.Get("platform", "");
  if (platform_name.empty()) {
    platform_name = gen.empty() ? "g1" : gen;
  }
  const auto platform = PlatformByName(platform_name);
  if (!platform) {
    pmemsim_bench::Flags::BadValue("platform", platform_name, "g1|g2|g2-eadr");
  }
  cfg.platform = *platform;
  cfg.op = flags.Get("op", "read");
  cfg.pattern = flags.Get("pattern", "rand");
  cfg.persist = flags.Get("persist", "none");
  cfg.wss = ParseSize(flags.Get("wss", "64M"));
  cfg.stride = flags.GetU64("stride", kCacheLineSize);
  cfg.threads = static_cast<uint32_t>(flags.GetU64("threads", 1));
  cfg.ops = flags.GetU64("ops", 100000);
  cfg.distance = flags.GetU64("distance", 0);
  cfg.dimms = static_cast<uint32_t>(flags.GetU64("dimms", 1));
  cfg.prefetch = !flags.Has("no_prefetch");
  cfg.remote = flags.Has("remote");
  pmemsim_bench::BenchReport report(flags, "pmemsim_probe");
  pmemsim_bench::SweepRunner runner(flags);
  flags.RejectUnknown();
  runner.Add(cfg.op, [=](pmemsim_bench::SweepPoint& point) { RunProbe(cfg, point); });
  return runner.Finish(report);
}
