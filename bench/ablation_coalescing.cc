// Ablation: the paper's headline programming guideline (§3.2 implications,
// §5 FlatStore/ArchTM discussion) — coalesce small writes into XPLine-sized
// writes instead of persisting each record in place.
//
// Inserts N 16 B records two ways:
//   in-place    — store + clwb + sfence per record into a slot array (the
//                 naive persistent-table layout: 64 B-granular random writes)
//   coalesced   — FlatStore-style log batching four records into one 256 B
//                 nt-store burst with a single fence
// and reports cycles/record and the ipmwatch write amplification. The
// guideline holds when the WSS exceeds the write buffer: in-place WA tends
// toward 4 while the coalesced log stays at ~1 and runs faster.
//
// Output: CSV  layout,records,cycles_per_record,write_amplification

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/sweep_runner.h"
#include "src/common/random.h"
#include "src/core/platform.h"
#include "src/datastores/flat_log.h"
#include "src/trace/counters.h"

namespace {

using namespace pmemsim;

struct Result {
  double cycles = 0;
  double wa = 0;
};

Result RunInPlace(uint64_t records) {
  auto system = MakeG1System(1);
  ThreadContext& ctx = system->CreateThread();
  // A slot table far larger than the write buffer; random slot order.
  const PmRegion table = system->AllocatePm(records * 64, kXPLineSize);
  std::vector<uint64_t> order(records);
  for (uint64_t i = 0; i < records; ++i) {
    order[i] = i;
  }
  Rng rng(0xC0A1);
  rng.Shuffle(order);

  CounterDelta delta(&system->counters());
  const Cycles t0 = ctx.clock();
  for (const uint64_t slot : order) {
    const Addr addr = table.base + slot * 64;
    ctx.Store64(addr, slot);       // key
    ctx.Store64(addr + 8, ~slot);  // value
    ctx.Clwb(addr);
    ctx.Sfence();
  }
  return {static_cast<double>(ctx.clock() - t0) / static_cast<double>(records),
          delta.Delta().WriteAmplification()};
}

Result RunCoalesced(uint64_t records) {
  auto system = MakeG1System(1);
  ThreadContext& ctx = system->CreateThread();
  const PmRegion log_region = system->AllocatePm(records * 64 + kXPLineSize, kXPLineSize);
  FlatLog log(system.get(), log_region);

  CounterDelta delta(&system->counters());
  const Cycles t0 = ctx.clock();
  for (uint64_t i = 0; i < records; ++i) {
    const uint64_t value = ~i;
    log.Put(ctx, i + 1, &value, sizeof(value));
  }
  log.Flush(ctx);
  return {static_cast<double>(ctx.clock() - t0) / static_cast<double>(records),
          delta.Delta().WriteAmplification()};
}

}  // namespace

int main(int argc, char** argv) {
  pmemsim_bench::Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::printf("usage: ablation_coalescing [--records=200000]\n%s",
                pmemsim_bench::kTelemetryFlagsHelp);
    return 0;
  }
  const uint64_t records = flags.GetU64("records", 200000);
  pmemsim_bench::BenchReport report(flags, "ablation_coalescing");
  pmemsim_bench::SweepRunner runner(flags);
  flags.RejectUnknown();

  pmemsim_bench::PrintHeader("Ablation",
                             "coalescing small writes into XPLines (FlatStore guideline)");
  std::printf("layout,records,cycles_per_record,write_amplification\n");
  struct Layout {
    const char* name;
    Result (*run)(uint64_t);
  };
  static const Layout kLayouts[] = {{"in-place", &RunInPlace}, {"coalesced", &RunCoalesced}};
  for (const Layout& layout : kLayouts) {
    runner.Add(layout.name, [=](pmemsim_bench::SweepPoint& point) {
      const Result r = layout.run(records);
      point.Printf("%s,%llu,%.1f,%.3f\n", layout.name,
                   static_cast<unsigned long long>(records), r.cycles, r.wa);
      point.AddRow()
          .Set("layout", layout.name)
          .Set("records", records)
          .Set("cycles_per_record", r.cycles)
          .Set("write_amplification", r.wa);
    });
  }
  return runner.Finish(report);
}
