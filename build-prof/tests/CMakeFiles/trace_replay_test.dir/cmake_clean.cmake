file(REMOVE_RECURSE
  "CMakeFiles/trace_replay_test.dir/trace_replay_test.cc.o"
  "CMakeFiles/trace_replay_test.dir/trace_replay_test.cc.o.d"
  "trace_replay_test"
  "trace_replay_test.pdb"
  "trace_replay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_replay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
