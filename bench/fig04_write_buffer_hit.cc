// Figure 4 (paper §3.2): write-buffer hit ratio vs working set size under
// random partial nt-stores. G1's batch eviction produces a sudden drop at
// 12 KB; G2's single-victim random eviction decays gracefully past 16 KB.
//
// Output: CSV  gen,wss_kb,hit_ratio

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/sweep_runner.h"
#include "src/common/random.h"
#include "src/core/platform.h"
#include "src/trace/counters.h"

namespace {

using namespace pmemsim;

double MeasureHitRatio(Generation gen, uint64_t wss_bytes) {
  auto system = MakeSystem(gen, /*optane_dimm_count=*/1);
  ThreadContext& ctx = system->CreateThread();
  SetPrefetchers(ctx, false, false, false);

  const PmRegion region = system->AllocatePm(wss_bytes, kXPLineSize);
  const uint64_t xplines = wss_bytes / kXPLineSize;
  Rng rng(0xBEEF + wss_bytes);

  auto run_writes = [&](uint64_t writes) {
    for (uint64_t i = 0; i < writes; ++i) {
      const uint64_t xp = rng.NextBelow(xplines);
      // Random partial write: one cacheline of the XPLine.
      const uint64_t cl = rng.NextBelow(kLinesPerXPLine);
      ctx.NtStore64(region.base + xp * kXPLineSize + cl * kCacheLineSize, i);
    }
    ctx.Sfence();
  };

  run_writes(4 * xplines + 512);
  CounterDelta delta(&system->counters());
  run_writes(16 * xplines + 2048);
  return delta.Delta().WriteBufferHitRatio();
}

}  // namespace

int main(int argc, char** argv) {
  pmemsim_bench::Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::printf("usage: fig04_write_buffer_hit [--gen=g1|g2|both] [--max_kb=32]\n%s",
                pmemsim_bench::kTelemetryFlagsHelp);
    return 0;
  }
  const std::string gen_flag = flags.Get("gen", "both");
  const uint64_t max_kb = flags.GetU64("max_kb", 32);
  pmemsim_bench::BenchReport report(flags, "fig04_write_buffer_hit");
  pmemsim_bench::SweepRunner runner(flags);
  flags.RejectUnknown();

  pmemsim_bench::PrintHeader("Figure 4", "write-buffer hit ratio vs WSS (random partial writes)");
  std::printf("gen,wss_kb,hit_ratio\n");
  for (Generation gen : {Generation::kG1, Generation::kG2}) {
    if ((gen == Generation::kG1 && gen_flag == "g2") ||
        (gen == Generation::kG2 && gen_flag == "g1")) {
      continue;
    }
    const char* gen_name = gen == Generation::kG1 ? "G1" : "G2";
    for (uint64_t kb = 2; kb <= max_kb; ++kb) {
      const std::string label = std::string(gen_name) + "/" + std::to_string(kb) + "kb";
      runner.Add(label, [=](pmemsim_bench::SweepPoint& point) {
        const double ratio = MeasureHitRatio(gen, KiB(kb));
        point.Printf("%s,%llu,%.3f\n", gen_name, static_cast<unsigned long long>(kb), ratio);
        point.AddRow().Set("gen", gen_name).Set("wss_kb", kb).Set("hit_ratio", ratio);
      });
    }
  }
  return runner.Finish(report);
}
