#include "src/workload/zipf.h"

#include <cmath>

#include "src/common/check.h"

namespace pmemsim {

double ZipfGenerator::Zeta(uint64_t n, double theta) {
  // Exact up to 10M items (fast enough, done once); callers needing more
  // should cache across instances.
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  PMEMSIM_CHECK(n > 0);
  PMEMSIM_CHECK(theta >= 0.0 && theta < 1.0);
  zetan_ = Zeta(n, theta);
  const double zeta2 = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) / (1.0 - zeta2 / zetan_);
  threshold1_ = 1.0 / zetan_;
  threshold2_ = (1.0 + std::pow(0.5, theta)) / zetan_;
}

uint64_t ZipfGenerator::Next() {
  const double u = rng_.NextDouble();
  // Head shortcuts via the thresholds cached by the constructor — this is the
  // hot path, and pow() per sample is pure waste (u < (1 + 0.5^theta)/zeta(n)
  // is exactly u*zeta(n) < 1 + 0.5^theta).
  if (u < threshold1_) {
    return 0;
  }
  if (u < threshold2_) {
    return 1;
  }
  const double v =
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_);
  uint64_t item = static_cast<uint64_t>(v);
  if (item >= n_) {
    item = n_ - 1;
  }
  return item;
}

}  // namespace pmemsim
