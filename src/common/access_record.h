// Shared per-access result record and the per-thread arena that owns them.
//
// One demand access produces exactly one AccessRecord. Instead of each layer
// (DIMM, iMC, cache hierarchy) returning its own result struct and the caller
// merging fields, every layer writes its share into the same record in place:
// the DIMM fills complete_at / stalled_for / mem stages, the iMC adds its
// transit share, the hierarchy sets hit_level. Records are arena-allocated
// per thread from a fixed power-of-two ring reused in issue order, so the hot
// path never touches the heap and the newest record stays addressable for
// introspection until kRecords further operations have issued.

#ifndef SRC_COMMON_ACCESS_RECORD_H_
#define SRC_COMMON_ACCESS_RECORD_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "src/common/types.h"
#include "src/trace/attribution.h"

namespace pmemsim {

struct AccessRecord {
  Cycles complete_at = 0;
  uint8_t hit_level = 0;   // 1..3 = cache level, 0 = memory
  Cycles stalled_for = 0;  // read-after-persist component
  // Memory-side latency attribution; populated only on full misses
  // (hit_level == 0), where the fields sum to the memory access span.
  MemStageBreakdown mem;
};

// Fixed per-thread ring of records. Alloc() hands out a value-initialized
// record; entries recycle oldest-first.
class AccessArena {
 public:
  static constexpr size_t kRecords = 64;
  static_assert((kRecords & (kRecords - 1)) == 0, "ring index masking needs a power of two");

  AccessRecord* Alloc() {
    AccessRecord* r = &ring_[next_++ & (kRecords - 1)];
    *r = AccessRecord{};
    return r;
  }

 private:
  std::array<AccessRecord, kRecords> ring_{};
  size_t next_ = 0;
};

}  // namespace pmemsim

#endif  // SRC_COMMON_ACCESS_RECORD_H_
