// Tests for persistence primitives and the redo log, including crash
// scenarios (committed groups replayed, uncommitted discarded) and ring
// wrap-around with epoch tagging.

#include <gtest/gtest.h>

#include <cstring>

#include "src/core/platform.h"
#include "src/persist/barrier.h"
#include "src/persist/redo_log.h"

namespace pmemsim {
namespace {

struct Fixture {
  std::unique_ptr<System> system = MakeG1System(1);
  ThreadContext* ctx = &system->CreateThread();
  PmRegion pm = system->AllocatePm(KiB(64));
};

TEST(BarrierTest, FlushRangeCoversEveryLine) {
  Fixture f;
  for (Addr a = f.pm.base; a < f.pm.base + 256; a += 64) {
    f.ctx->Store64(a, 1);
  }
  FlushRange(*f.ctx, f.pm.base, 256);
  f.ctx->Sfence();
  EXPECT_EQ(f.system->counters().imc_write_bytes, 4 * kCacheLineSize);
}

TEST(BarrierTest, FlushRangeHandlesUnalignedSpans) {
  Fixture f;
  f.ctx->Store64(f.pm.base + 56, 1);  // straddles into the next line
  f.ctx->Store64(f.pm.base + 64, 1);
  Persist(*f.ctx, f.pm.base + 56, 16);
  EXPECT_EQ(f.system->counters().imc_write_bytes, 2 * kCacheLineSize);
}

TEST(BarrierTest, PersistentStoreModes) {
  Fixture f;
  for (const PersistMode mode :
       {PersistMode::kClwbSfence, PersistMode::kClwbMfence, PersistMode::kNtStoreSfence,
        PersistMode::kNtStoreMfence}) {
    Fixture g;
    PersistentStore64(*g.ctx, g.pm.base, 99, mode);
    EXPECT_EQ(g.ctx->Load64(g.pm.base), 99u);
    EXPECT_EQ(g.ctx->outstanding_persists(), 0u);
    (void)mode;
  }
  (void)f;
}

TEST(BarrierTest, ModePredicates) {
  EXPECT_TRUE(UsesClwb(PersistMode::kClwbSfence));
  EXPECT_TRUE(UsesClwb(PersistMode::kClwbMfence));
  EXPECT_FALSE(UsesClwb(PersistMode::kNtStoreSfence));
  EXPECT_TRUE(UsesMfence(PersistMode::kClwbMfence));
  EXPECT_FALSE(UsesMfence(PersistMode::kClwbSfence));
}

// ---------- RedoLog ----------

struct LogFixture {
  std::unique_ptr<System> system = MakeG1System(1);
  ThreadContext* ctx = &system->CreateThread();
  PmRegion data = system->AllocatePm(KiB(16));
  PmRegion log_region = system->AllocatePm(KiB(4));
};

TEST(RedoLogTest, LogCommitApplyWritesTargets) {
  LogFixture f;
  RedoLog log(f.system.get(), f.log_region);
  const uint64_t v1 = 0x1111, v2 = 0x2222;
  log.LogUpdate(*f.ctx, f.data.base, &v1, sizeof(v1));
  log.LogUpdate(*f.ctx, f.data.base + 8, &v2, sizeof(v2));
  EXPECT_EQ(log.open_entries(), 2u);
  log.Commit(*f.ctx);
  log.Apply(*f.ctx);
  EXPECT_EQ(log.open_entries(), 0u);
  EXPECT_EQ(f.ctx->Load64(f.data.base), v1);
  EXPECT_EQ(f.ctx->Load64(f.data.base + 8), v2);
}

TEST(RedoLogTest, CommittedGroupSurvivesCrash) {
  LogFixture f;
  {
    RedoLog log(f.system.get(), f.log_region);
    const uint64_t v = 0xC0FFEE;
    log.LogUpdate(*f.ctx, f.data.base + 128, &v, sizeof(v));
    log.Commit(*f.ctx);
    // Crash before Apply: the target was never written.
  }
  EXPECT_EQ(f.ctx->Load64(f.data.base + 128), 0u);
  RedoLog recovered(f.system.get(), f.log_region);
  EXPECT_EQ(recovered.Recover(*f.ctx), 1u);
  EXPECT_EQ(f.ctx->Load64(f.data.base + 128), 0xC0FFEEu);
}

TEST(RedoLogTest, UncommittedGroupDiscarded) {
  LogFixture f;
  {
    RedoLog log(f.system.get(), f.log_region);
    const uint64_t v = 0xBAD;
    log.LogUpdate(*f.ctx, f.data.base, &v, sizeof(v));
    // Crash before Commit.
  }
  RedoLog recovered(f.system.get(), f.log_region);
  EXPECT_EQ(recovered.Recover(*f.ctx), 0u);
  EXPECT_EQ(f.ctx->Load64(f.data.base), 0u);
}

TEST(RedoLogTest, ReplayPreservesGroupOrder) {
  LogFixture f;
  {
    RedoLog log(f.system.get(), f.log_region);
    const uint64_t old_v = 1, new_v = 2;
    log.LogUpdate(*f.ctx, f.data.base, &old_v, sizeof(old_v));
    log.Commit(*f.ctx);
    log.LogUpdate(*f.ctx, f.data.base, &new_v, sizeof(new_v));
    log.Commit(*f.ctx);
    // Crash: both groups committed, neither applied.
  }
  RedoLog recovered(f.system.get(), f.log_region);
  EXPECT_EQ(recovered.Recover(*f.ctx), 2u);
  EXPECT_EQ(f.ctx->Load64(f.data.base), 2u);  // later group wins
}

TEST(RedoLogTest, WrapAroundBumpsEpoch) {
  LogFixture f;
  RedoLog log(f.system.get(), f.log_region);
  const uint64_t records = log.capacity_records();
  const uint64_t epoch0 = log.epoch();
  uint64_t v = 5;
  for (uint64_t i = 0; i < records + 4; ++i) {
    log.LogUpdate(*f.ctx, f.data.base + (i % 64) * 64, &v, sizeof(v));
    log.Commit(*f.ctx);
    log.Apply(*f.ctx);
  }
  EXPECT_GT(log.epoch(), epoch0);
}

TEST(RedoLogTest, RecoveryAfterWrapReplaysOnlyNewestEpoch) {
  LogFixture f;
  {
    RedoLog log(f.system.get(), f.log_region);
    // Fill more than one full lap; each group targets a distinct address with
    // a value encoding its sequence number.
    const uint64_t records = log.capacity_records();
    for (uint64_t i = 0; i < records * 2; ++i) {
      const uint64_t v = 1000 + i;
      log.LogUpdate(*f.ctx, f.data.base + (i % 32) * 64, &v, sizeof(v));
      log.Commit(*f.ctx);
      log.Apply(*f.ctx);
    }
    // Crash here: the ring holds the final lap's committed groups.
  }
  RedoLog recovered(f.system.get(), f.log_region);
  const size_t replayed = recovered.Recover(*f.ctx);
  EXPECT_GT(replayed, 0u);
  EXPECT_LE(replayed, f.log_region.size / RedoLog::kRecordSize);
  // Any replayed value must come from the final lap (no stale epochs).
  for (uint64_t slot = 0; slot < 32; ++slot) {
    const uint64_t v = f.ctx->Load64(f.data.base + slot * 64);
    if (v != 0) {
      EXPECT_GE(v, 1000 + recovered.capacity_records());
    }
  }
}

TEST(RedoLogTest, OpenGroupSurvivesWrap) {
  LogFixture f;
  RedoLog log(f.system.get(), f.log_region);
  const uint64_t records = log.capacity_records();
  // Leave one slot before the wrap, then log a multi-update group across it.
  uint64_t v = 7;
  for (uint64_t i = 0; i < records - 1; ++i) {
    log.LogUpdate(*f.ctx, f.data.base, &v, sizeof(v));
    log.Commit(*f.ctx);
    log.Apply(*f.ctx);
  }
  const uint64_t a = 0xA, b = 0xB;
  log.LogUpdate(*f.ctx, f.data.base + 512, &a, sizeof(a));  // wraps mid-group
  log.LogUpdate(*f.ctx, f.data.base + 576, &b, sizeof(b));
  log.Commit(*f.ctx);
  // Crash before apply: recovery must see the whole group in the new epoch.
  RedoLog recovered(f.system.get(), f.log_region);
  EXPECT_EQ(recovered.Recover(*f.ctx), 2u);
  EXPECT_EQ(f.ctx->Load64(f.data.base + 512), 0xAu);
  EXPECT_EQ(f.ctx->Load64(f.data.base + 576), 0xBu);
}

TEST(RedoLogTest, TornCommitFlagTreatedAsUncommitted) {
  // The commit protocol leans on x86 8-byte failure atomicity: kCommitMagic
  // lives inside one aligned word (the static_asserts in redo_log.h pin it
  // there), so a crash mid-commit leaves that word either fully written or
  // untouched — never half a magic. Simulate the untouched half and check
  // recovery treats the group as not committed.
  LogFixture f;
  {
    RedoLog log(f.system.get(), f.log_region);
    const uint64_t v1 = 0x11, v2 = 0x22;
    log.LogUpdate(*f.ctx, f.data.base, &v1, sizeof(v1));
    log.Commit(*f.ctx);  // group 1: cleanly committed (records 0-1)
    log.LogUpdate(*f.ctx, f.data.base + 64, &v2, sizeof(v2));
    log.Commit(*f.ctx);  // group 2: its commit flag is torn below (record 3)
  }
  // Power failed as group 2's commit record was written: the aligned word
  // holding the magic never reached the media.
  const Addr commit2 = f.log_region.base + 3 * RedoLog::kRecordSize;
  const uint64_t zero = 0;
  f.system->backing().Write(commit2 + RedoLog::kLenOffset, &zero, sizeof(zero));
  RedoLog recovered(f.system.get(), f.log_region);
  EXPECT_EQ(recovered.Recover(*f.ctx), 1u);  // only group 1 replays
  EXPECT_EQ(f.ctx->Load64(f.data.base), 0x11u);
  EXPECT_EQ(f.ctx->Load64(f.data.base + 64), 0u);
}

TEST(RedoLogTest, FreshLogLinesAvoidSameLineStalls) {
  // The design point of §4.2: consecutive log appends persist quickly because
  // they never target a recently persisted cacheline.
  LogFixture f;
  RedoLog log(f.system.get(), f.log_region);
  uint64_t v = 1;
  log.LogUpdate(*f.ctx, f.data.base, &v, sizeof(v));
  const Cycles before = f.ctx->clock();
  log.LogUpdate(*f.ctx, f.data.base + 64, &v, sizeof(v));
  const Cycles append_cost = f.ctx->clock() - before;
  EXPECT_LT(append_cost, G1Platform().optane.same_line_stall_window);
}

}  // namespace
}  // namespace pmemsim
