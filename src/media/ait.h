// Address Indirection Table (AIT) translation cache.
//
// Optane DIMMs translate DIMM-physical addresses to media addresses through an
// on-media AIT; a small on-controller cache holds hot translations. The paper
// (§3.6, following LENS/MICRO'20) attributes the sharp read-latency increase
// beyond ~16 MB working sets partly to this cache overflowing. We model it as
// an LRU cache of 4 KB translation entries with a fixed coverage.
//
// The LRU is an array of intrusive nodes (prev/next indices) addressed through
// a two-level radix over the page number — every Access is O(1) with no
// hashing and no per-entry heap traffic, and a miss recycles the evicted
// victim's node in place. A page-number radix beats a hash map here because
// an oversubscribed AIT (working set > coverage, the regime the paper's
// >16 MB cliff lives in) does an erase+insert pair on nearly every access:
// with a radix both are single slot stores, and the slots for a hot region
// pack densely into a few host cache lines.

#ifndef SRC_MEDIA_AIT_H_
#define SRC_MEDIA_AIT_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/types.h"
#include "src/trace/counters.h"

namespace pmemsim {

class Ait {
 public:
  // `coverage_bytes` of media are translatable without a miss;
  // `miss_penalty` cycles are charged per miss. Entries cover 4 KB each.
  Ait(uint64_t coverage_bytes, Cycles miss_penalty, Counters* counters);

  // Translates the page containing `addr`. Returns the cycle cost (0 on hit).
  Cycles Access(Addr addr);

  // Host-side hint: warm the translation slot for `addr` ahead of the Access
  // a media request is about to make. No simulated effect.
  void Prefetch(Addr addr) const {
    const uint64_t pageno = addr / kPageSize;
    const uint64_t chunk = pageno >> kLeafBits;
    if (chunk < index_.size() && index_[chunk]) {
      __builtin_prefetch(&index_[chunk]->slots[pageno & (kLeafSize - 1)]);
    }
  }

  // Test hooks. Each Touch either recycles a node in place or appends one,
  // so the node array's size is the live entry count.
  size_t entry_count() const { return nodes_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  static constexpr uint32_t kNil = ~uint32_t{0};

  // Radix leaf: node indices for 4096 consecutive pages (16 MB of media).
  static constexpr int kLeafBits = 12;
  static constexpr size_t kLeafSize = size_t{1} << kLeafBits;
  struct Leaf {
    std::array<uint32_t, kLeafSize> slots;  // kNil = untracked page
  };

  struct Node {
    Addr page = 0;
    uint32_t prev = kNil;
    uint32_t next = kNil;
  };

  // Slot holding the node index for `page` (a PageBase value), or nullptr if
  // its leaf was never populated.
  const uint32_t* FindSlot(Addr page) const {
    const uint64_t pageno = page / kPageSize;
    const uint64_t chunk = pageno >> kLeafBits;
    if (chunk >= index_.size() || !index_[chunk]) {
      return nullptr;
    }
    return &index_[chunk]->slots[pageno & (kLeafSize - 1)];
  }
  uint32_t* EnsureSlot(Addr page);

  void Unlink(uint32_t i);
  void PushFront(uint32_t i);
  void Touch(Addr page);

  size_t capacity_;
  Cycles miss_penalty_;
  Counters* counters_;

  std::vector<Node> nodes_;  // grows to capacity_, then nodes recycle
  uint32_t head_ = kNil;     // most recent
  uint32_t tail_ = kNil;     // eviction victim
  std::vector<std::unique_ptr<Leaf>> index_;  // page number -> node index
};

}  // namespace pmemsim

#endif  // SRC_MEDIA_AIT_H_
