# Empty dependencies file for fig10_cceh_prefetch.
# This may be replaced when dependencies are built.
