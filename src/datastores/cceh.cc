#include "src/datastores/cceh.h"

#include "src/common/check.h"
#include "src/common/random.h"
#include "src/persist/barrier.h"

namespace pmemsim {

namespace {
constexpr Cycles kHashComputeCost = 15;
}  // namespace

Cceh::Cceh(System* system, ThreadContext& ctx, uint32_t initial_depth, MemoryKind kind)
    : system_(system), kind_(kind), global_depth_(initial_depth) {
  PMEMSIM_CHECK(system != nullptr);
  PMEMSIM_CHECK(initial_depth >= 1 && initial_depth <= 24);

  const uint64_t dir_entries = 1ull << global_depth_;
  const PmRegion dir = kind_ == MemoryKind::kOptane
                           ? system_->AllocatePm(dir_entries * 8, kCacheLineSize)
                           : system_->AllocateDram(dir_entries * 8, kCacheLineSize);
  directory_ = dir.base;
  for (uint64_t i = 0; i < dir_entries; ++i) {
    const PmRegion seg = AllocateSegment();
    InitSegment(ctx, seg.base, global_depth_, i);
    ctx.Store64(directory_ + i * 8, seg.base);
  }
  Persist(ctx, directory_, dir_entries * 8);
}

uint64_t Cceh::HashOf(uint64_t key) { return Mix64(key); }

uint64_t Cceh::DirIndex(uint64_t hash) const {
  return global_depth_ == 0 ? 0 : hash >> (64 - global_depth_);
}

PmRegion Cceh::AllocateSegment() {
  ++segment_count_;
  return kind_ == MemoryKind::kOptane ? system_->AllocatePm(kSegmentSize, kXPLineSize)
                                      : system_->AllocateDram(kSegmentSize, kXPLineSize);
}

void Cceh::InitSegment(ThreadContext& ctx, Addr segment, uint64_t local_depth,
                       uint64_t pattern) {
  ctx.Store64(segment, local_depth);
  ctx.Store64(segment + 8, pattern);
  Persist(ctx, segment, 16);
}

bool Cceh::Insert(ThreadContext& ctx, uint64_t key, uint64_t value) {
  PMEMSIM_CHECK(key != kInvalidKey);
  ctx.AddCompute(kHashComputeCost);
  const uint64_t hash = HashOf(key);

  for (int attempt = 0; attempt < 64; ++attempt) {
    // Phase 1: directory walk (hot in the CPU caches).
    Cycles t0 = ctx.clock();
    const Addr segment = ctx.Load64(directory_ + DirIndex(hash) * 8);
    const Cycles t1 = ctx.clock();
    breakdown_.directory += t1 - t0;

    // Phase 2: segment access — the expensive random media read. The header
    // (local depth / pattern check) and the probe bucket line are independent
    // once the segment address is known; the out-of-order core issues both
    // together, so the exposed stall is ~one media round trip, attributed (as
    // in the paper's profile) to the segment-metadata access.
    const uint64_t bucket = BucketIndex(hash);
    const Addr first_bucket = SegmentBucketAddr(segment, bucket);
    const Addr seg_loads[2] = {segment, first_bucket};
    ctx.LoadMulti(seg_loads, 2);
    const Cycles t2 = ctx.clock();
    breakdown_.segment_meta += t2 - t1;

    // Phase 3: bucket probe (linear probing over adjacent buckets exhibits
    // the spatial locality the paper notes: later lines hit the read buffer).
    // Two passes over the probe window: the key may already exist past the
    // first empty slot (splits punch holes), so matches take priority.
    Addr target_slot = 0;
    bool update = false;
    for (uint32_t probe = 0; probe < kLinearProbeBuckets && !update; ++probe) {
      const Addr bucket_addr =
          SegmentBucketAddr(segment, (bucket + probe) % kBucketsPerSegment);
      for (uint64_t slot = 0; slot < kSlotsPerBucket; ++slot) {
        const Addr slot_addr = bucket_addr + slot * kSlotSize;
        const uint64_t slot_key = ctx.Load64(slot_addr);
        if (slot_key == key) {
          target_slot = slot_addr;
          update = true;
          break;
        }
        if (slot_key == kInvalidKey && target_slot == 0) {
          target_slot = slot_addr;  // first free slot, kept unless a match shows
        }
      }
    }
    if (target_slot != 0) {
      const Cycles t3 = ctx.clock();
      breakdown_.bucket_probe += t3 - t2;

      // Phase 4: commit. Value first, then the 8-byte key write commits the
      // slot; one cacheline flush + fence persists the bucket line.
      ctx.Store64(target_slot + 8, value);
      ctx.Store64(target_slot, key);
      if (!skip_persist_for_test_) {
        ctx.Clwb(target_slot);
        ctx.Sfence();
      }
      breakdown_.persist += ctx.clock() - t3;
      ++breakdown_.inserts;
      if (!update) {
        ++size_;
      }
      return true;
    }
    breakdown_.bucket_probe += ctx.clock() - t2;

    // Phase 5: no slot in the probe window — split and retry.
    t0 = ctx.clock();
    Split(ctx, segment, hash);
    breakdown_.split += ctx.clock() - t0;
  }
  return false;
}

bool Cceh::Get(ThreadContext& ctx, uint64_t key, uint64_t* value_out) {
  PMEMSIM_CHECK(key != kInvalidKey);
  ctx.AddCompute(kHashComputeCost);
  const uint64_t hash = HashOf(key);
  const Addr segment = ctx.Load64(directory_ + DirIndex(hash) * 8);
  const uint64_t bucket = BucketIndex(hash);
  const Addr seg_loads[2] = {segment, SegmentBucketAddr(segment, bucket)};
  ctx.LoadMulti(seg_loads, 2);  // header pattern check + probe line, overlapped
  for (uint32_t probe = 0; probe < kLinearProbeBuckets; ++probe) {
    const Addr bucket_addr = SegmentBucketAddr(segment, (bucket + probe) % kBucketsPerSegment);
    for (uint64_t slot = 0; slot < kSlotsPerBucket; ++slot) {
      const Addr slot_addr = bucket_addr + slot * kSlotSize;
      if (ctx.Load64(slot_addr) == key) {
        if (value_out != nullptr) {
          *value_out = ctx.Load64(slot_addr + 8);
        }
        return true;
      }
    }
  }
  return false;
}

bool Cceh::Erase(ThreadContext& ctx, uint64_t key) {
  PMEMSIM_CHECK(key != kInvalidKey);
  ctx.AddCompute(kHashComputeCost);
  const uint64_t hash = HashOf(key);
  const Addr segment = ctx.Load64(directory_ + DirIndex(hash) * 8);
  const uint64_t bucket = BucketIndex(hash);
  const Addr seg_loads[2] = {segment, SegmentBucketAddr(segment, bucket)};
  ctx.LoadMulti(seg_loads, 2);
  for (uint32_t probe = 0; probe < kLinearProbeBuckets; ++probe) {
    const Addr bucket_addr = SegmentBucketAddr(segment, (bucket + probe) % kBucketsPerSegment);
    for (uint64_t slot = 0; slot < kSlotsPerBucket; ++slot) {
      const Addr slot_addr = bucket_addr + slot * kSlotSize;
      if (ctx.Load64(slot_addr) == key) {
        // The 8-byte key write is the atomic commit point, as for inserts.
        ctx.Store64(slot_addr, kInvalidKey);
        ctx.Clwb(slot_addr);
        ctx.Sfence();
        --size_;
        return true;
      }
    }
  }
  return false;
}

void Cceh::PrefetchProbePath(ThreadContext& ctx, uint64_t key) {
  ctx.AddCompute(kHashComputeCost);
  const uint64_t hash = HashOf(key);
  const Addr segment = ctx.Load64(directory_ + DirIndex(hash) * 8);
  // Header and the first half of the linear-probe window are independent once
  // the directory entry is known: issue them with memory-level parallelism
  // (the paper's helper visits "directory entries, segments, and buckets").
  const uint64_t bucket = BucketIndex(hash);
  Addr addrs[1 + kLinearProbeBuckets];
  addrs[0] = segment;
  for (uint32_t p = 0; p < kLinearProbeBuckets; ++p) {
    addrs[1 + p] = SegmentBucketAddr(segment, (bucket + p) % kBucketsPerSegment);
  }
  ctx.LoadMulti(addrs, 1 + kLinearProbeBuckets);
}

void Cceh::Split(ThreadContext& ctx, Addr segment, uint64_t hash) {
  ++breakdown_.splits;
  const uint64_t local_depth = ctx.Load64(segment);
  const uint64_t pattern = ctx.Load64(segment + 8);

  if (local_depth == global_depth_) {
    DoubleDirectory(ctx);
  }
  PMEMSIM_CHECK(local_depth < global_depth_);

  // Allocate and initialize the sibling segment covering the 1-branch.
  const PmRegion new_seg = AllocateSegment();
  InitSegment(ctx, new_seg.base, local_depth + 1, (pattern << 1) | 1);

  // Redistribute: COPY keys whose (local_depth+1)-th top bit is set into the
  // sibling — the old slots stay intact until after publication, so a crash
  // anywhere before the directory update still finds every key through the
  // old segment (CCEH's lazy-deletion split protocol).
  const uint64_t shift = 64 - (local_depth + 1);
  for (uint64_t b = 0; b < kBucketsPerSegment; ++b) {
    const Addr old_bucket = SegmentBucketAddr(segment, b);
    const Addr new_bucket = SegmentBucketAddr(new_seg.base, b);
    bool new_dirty = false;
    for (uint64_t slot = 0; slot < kSlotsPerBucket; ++slot) {
      const Addr slot_addr = old_bucket + slot * kSlotSize;
      const uint64_t slot_key = ctx.Load64(slot_addr);
      if (slot_key == kInvalidKey) {
        continue;
      }
      const uint64_t key_hash = HashOf(slot_key);
      if (((key_hash >> shift) & 1) == 0) {
        continue;
      }
      const uint64_t slot_value = ctx.Load64(slot_addr + 8);
      ctx.Store64(new_bucket + slot * kSlotSize + 8, slot_value);
      ctx.Store64(new_bucket + slot * kSlotSize, slot_key);
      new_dirty = true;
    }
    if (new_dirty) {
      ctx.Clwb(new_bucket);
    }
  }
  ctx.Sfence();  // new segment content durable before publication

  // Bump the surviving segment's depth and pattern.
  ctx.Store64(segment, local_depth + 1);
  ctx.Store64(segment + 8, pattern << 1);
  Persist(ctx, segment, 16);

  // Publish: redirect the 1-branch directory entries to the new segment.
  const uint64_t span = 1ull << (global_depth_ - local_depth);
  const uint64_t first = pattern << (global_depth_ - local_depth);
  for (uint64_t i = first + span / 2; i < first + span; ++i) {
    ctx.Store64(directory_ + i * 8, new_seg.base);
    ctx.Clwb(directory_ + i * 8);
  }
  ctx.Sfence();

  // Cleanup: now that the directory routes 1-branch hashes to the sibling,
  // lazily invalidate the moved copies. A crash mid-cleanup only leaves
  // unreachable duplicates behind, never a lost key.
  for (uint64_t b = 0; b < kBucketsPerSegment; ++b) {
    const Addr old_bucket = SegmentBucketAddr(segment, b);
    bool old_dirty = false;
    for (uint64_t slot = 0; slot < kSlotsPerBucket; ++slot) {
      const Addr slot_addr = old_bucket + slot * kSlotSize;
      const uint64_t slot_key = ctx.Load64(slot_addr);
      if (slot_key == kInvalidKey) {
        continue;
      }
      if (((HashOf(slot_key) >> shift) & 1) == 0) {
        continue;
      }
      ctx.Store64(slot_addr, kInvalidKey);
      old_dirty = true;
    }
    if (old_dirty) {
      ctx.Clwb(old_bucket);
    }
  }
  ctx.Sfence();

  (void)hash;
}

void Cceh::DoubleDirectory(ThreadContext& ctx) {
  const uint64_t old_entries = 1ull << global_depth_;
  const uint64_t new_entries = old_entries * 2;
  const PmRegion dir = kind_ == MemoryKind::kOptane
                           ? system_->AllocatePm(new_entries * 8, kCacheLineSize)
                           : system_->AllocateDram(new_entries * 8, kCacheLineSize);
  for (uint64_t i = 0; i < old_entries; ++i) {
    const uint64_t entry = ctx.Load64(directory_ + i * 8);
    ctx.Store64(dir.base + (2 * i) * 8, entry);
    ctx.Store64(dir.base + (2 * i + 1) * 8, entry);
  }
  Persist(ctx, dir.base, new_entries * 8);
  directory_ = dir.base;
  ++global_depth_;
}

}  // namespace pmemsim
