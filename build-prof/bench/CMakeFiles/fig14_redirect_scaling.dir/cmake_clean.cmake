file(REMOVE_RECURSE
  "CMakeFiles/fig14_redirect_scaling.dir/fig14_redirect_scaling.cc.o"
  "CMakeFiles/fig14_redirect_scaling.dir/fig14_redirect_scaling.cc.o.d"
  "fig14_redirect_scaling"
  "fig14_redirect_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_redirect_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
