// Bounded per-shard admission queue with batched claim.
//
// Admission control is a hard queue-depth bound: an arrival that finds the
// queue full is shed (counted, never retried by the queue itself — the loop
// model decides whether the client retries). Workers claim FIFO batches of up
// to `max` requests in one operation, which amortizes queue bookkeeping the
// way real servers batch their accept/dispatch loops.
//
// Accounting is phase-scoped: BeginPhase() — called by the tier at each
// TraceMarker phase boundary (e.g. when the measured serve window opens) —
// resets offered/rejected/max_occupancy to the new phase, so warm-up
// occupancy and warm-up sheds cannot leak into the measured window's stats.
// Lifetime totals stay available through the lifetime_*() accessors.
//
// The queue is single-(OS-)threaded like the rest of the simulator: arrivals
// and claims are interleaved in simulated-clock order by the lockstep
// scheduler, so occupancy evolves exactly as the event order dictates and the
// shed decisions are deterministic for a given seed.

#ifndef SRC_SERVE_REQUEST_QUEUE_H_
#define SRC_SERVE_REQUEST_QUEUE_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/serve/request.h"

namespace pmemsim {

class RequestQueue {
 public:
  explicit RequestQueue(size_t depth);

  // Admits `r` if the queue holds fewer than `depth` requests; returns false
  // (and counts the shed) when full. Every call counts as one offered op.
  // `now` is the admitting worker's clock, stamped into the request's admit
  // field (the span layer's queue-entry time). The one-argument form stamps
  // admit = arrival.
  bool Offer(const Request& r, Cycles now);
  bool Offer(const Request& r) { return Offer(r, r.arrival); }

  // Pops up to `max` requests FIFO into `out` (appended). Returns the number
  // claimed.
  size_t ClaimBatch(size_t max, std::vector<Request>* out);

  // Opens a new accounting phase: offered()/rejected()/claimed() restart at
  // zero, max_occupancy() restarts at the current queue size, and
  // inherited_occupancy() snapshots that size (requests already queued are
  // real occupancy the new phase inherits — the gauge snapshot resets
  // consistently with the phase-scoped counters, so within a phase
  // size() == inherited_occupancy() + admitted - claimed holds exactly).
  // Queued requests are not dropped; lifetime totals are unaffected.
  void BeginPhase();

  bool empty() const { return q_.empty(); }
  size_t size() const { return q_.size(); }
  size_t depth() const { return depth_; }
  // Phase-scoped counts (since the last BeginPhase, or construction).
  uint64_t offered() const { return offered_ - phase_offered_base_; }
  uint64_t rejected() const { return rejected_ - phase_rejected_base_; }
  uint64_t claimed() const { return claimed_ - phase_claimed_base_; }
  uint64_t max_occupancy() const { return max_occupancy_; }
  // Queue size at the last BeginPhase: the occupancy the phase started with.
  uint64_t inherited_occupancy() const { return inherited_occupancy_; }
  // Lifetime totals across all phases.
  uint64_t lifetime_offered() const { return offered_; }
  uint64_t lifetime_rejected() const { return rejected_; }
  uint64_t lifetime_max_occupancy() const { return lifetime_max_occupancy_; }

 private:
  std::deque<Request> q_;
  size_t depth_;
  uint64_t offered_ = 0;
  uint64_t rejected_ = 0;
  uint64_t claimed_ = 0;
  uint64_t max_occupancy_ = 0;  // within the current phase
  uint64_t inherited_occupancy_ = 0;
  uint64_t lifetime_max_occupancy_ = 0;
  uint64_t phase_offered_base_ = 0;
  uint64_t phase_rejected_base_ = 0;
  uint64_t phase_claimed_base_ = 0;
};

}  // namespace pmemsim

#endif  // SRC_SERVE_REQUEST_QUEUE_H_
