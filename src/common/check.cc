#include "src/common/check.h"

#include <cstdio>
#include <cstdlib>

namespace pmemsim {

namespace {
// Per-thread capture depth: sweep-runner workers enable capture around each
// point; everything else keeps the abort-on-failure contract.
thread_local int g_capture_depth = 0;
}  // namespace

ScopedCheckCapture::ScopedCheckCapture() { ++g_capture_depth; }
ScopedCheckCapture::~ScopedCheckCapture() { --g_capture_depth; }

namespace internal {

void CheckFailed(const char* file, int line, const char* cond, const char* msg) {
  char buf[512];
  if (msg != nullptr) {
    std::snprintf(buf, sizeof(buf), "CHECK failed at %s:%d: %s (%s)", file, line, cond, msg);
  } else {
    std::snprintf(buf, sizeof(buf), "CHECK failed at %s:%d: %s", file, line, cond);
  }
  std::fprintf(stderr, "%s\n", buf);
  if (g_capture_depth > 0) {
    throw CheckFailure(buf);
  }
  std::abort();
}

}  // namespace internal
}  // namespace pmemsim
