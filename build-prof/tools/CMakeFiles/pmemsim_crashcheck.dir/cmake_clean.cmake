file(REMOVE_RECURSE
  "CMakeFiles/pmemsim_crashcheck.dir/pmemsim_crashcheck.cc.o"
  "CMakeFiles/pmemsim_crashcheck.dir/pmemsim_crashcheck.cc.o.d"
  "pmemsim_crashcheck"
  "pmemsim_crashcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemsim_crashcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
