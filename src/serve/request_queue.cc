#include "src/serve/request_queue.h"

#include <algorithm>

#include "src/common/check.h"

namespace pmemsim {

RequestQueue::RequestQueue(size_t depth) : depth_(depth) { PMEMSIM_CHECK(depth > 0); }

bool RequestQueue::Offer(const Request& r, Cycles now) {
  ++offered_;
  if (q_.size() >= depth_) {
    ++rejected_;
    return false;
  }
  q_.push_back(r);
  q_.back().admit = now;
  max_occupancy_ = std::max<uint64_t>(max_occupancy_, q_.size());
  lifetime_max_occupancy_ = std::max(lifetime_max_occupancy_, max_occupancy_);
  return true;
}

size_t RequestQueue::ClaimBatch(size_t max, std::vector<Request>* out) {
  const size_t n = std::min(max, q_.size());
  for (size_t i = 0; i < n; ++i) {
    out->push_back(q_.front());
    q_.pop_front();
  }
  claimed_ += n;
  return n;
}

void RequestQueue::BeginPhase() {
  phase_offered_base_ = offered_;
  phase_rejected_base_ = rejected_;
  phase_claimed_base_ = claimed_;
  max_occupancy_ = q_.size();
  inherited_occupancy_ = q_.size();
}

}  // namespace pmemsim
