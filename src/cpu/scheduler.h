// Lockstep multi-thread driver.
//
// The simulator runs in a single OS thread; simulated concurrency interleaves
// whole operations (e.g. one hash-table insert) across ThreadContexts in
// simulated-clock order: the runnable context with the smallest clock executes
// its next step. Shared resources (media ports, WPQs, the shared L3) observe
// the interleaved request times, which is what produces contention effects.
//
// Contract: every Step() call must either advance its context's clock or
// return kDone. A step that is logically blocked (e.g. a helper thread capped
// at its prefetch depth) should AdvanceTo() just past the clock of whatever it
// waits for and return kProgress.
//
// Run() advances the minimum-clock job in batches: while the top job runs,
// every other job is parked, so the runner-up heap key is constant and is
// computed once per batch rather than once per step (see DESIGN.md §9).

#ifndef SRC_CPU_SCHEDULER_H_
#define SRC_CPU_SCHEDULER_H_

#include <functional>
#include <vector>

#include "src/cpu/thread_context.h"

namespace pmemsim {

class Sampler;

enum class StepResult {
  kProgress,
  kDone,
};

struct SimJob {
  ThreadContext* ctx = nullptr;
  std::function<StepResult()> step;
};

class Scheduler {
 public:
  // Runs all jobs to completion. Returns the max final clock across jobs.
  //
  // When `sampler` is non-null, its AdvanceTo is called with the global
  // minimum job clock before every step — the only monotone notion of "now"
  // under interleaving — so interval samples observe events in simulated-time
  // order. The caller still owns Sampler::Finalize (warm-up phases may run
  // before the sampled one).
  static Cycles Run(std::vector<SimJob>& jobs, Sampler* sampler = nullptr);
};

}  // namespace pmemsim

#endif  // SRC_CPU_SCHEDULER_H_
