// Property: pmemsim_crashcheck with the same seed and points produces a
// byte-identical JSON verdict regardless of --jobs. The sweep runner emits
// rows in submission order and every per-point computation is seeded from
// (seed, event_index), so parallelism must not leak into the output.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/crashcheck_lib.h"

namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

int RunWithArgs(const std::vector<std::string>& args) {
  std::vector<std::string> storage;
  storage.emplace_back("pmemsim_crashcheck");
  storage.insert(storage.end(), args.begin(), args.end());
  std::vector<char*> argv;
  argv.reserve(storage.size());
  for (std::string& s : storage) {
    argv.push_back(s.data());
  }
  return pmemsim_crashcheck::RunCrashcheck(static_cast<int>(argv.size()), argv.data());
}

TEST(CrashcheckPropertyTest, JsonIdenticalAcrossJobCounts) {
  const std::string path1 = ::testing::TempDir() + "/crashcheck_j1.json";
  const std::string path4 = ::testing::TempDir() + "/crashcheck_j4.json";
  const std::vector<std::string> common = {
      "--store=flatlog", "--points=6", "--ops=200", "--seed=7",
  };

  std::vector<std::string> args1 = common;
  args1.push_back("--stats_json=" + path1);
  args1.push_back("--jobs=1");
  EXPECT_EQ(RunWithArgs(args1), 0);

  std::vector<std::string> args4 = common;
  args4.push_back("--stats_json=" + path4);
  args4.push_back("--jobs=4");
  EXPECT_EQ(RunWithArgs(args4), 0);

  const std::string json1 = Slurp(path1);
  const std::string json4 = Slurp(path4);
  ASSERT_FALSE(json1.empty());
  EXPECT_EQ(json1, json4);
  std::remove(path1.c_str());
  std::remove(path4.c_str());
}

}  // namespace
