
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/pmem.cc" "src/CMakeFiles/pmemsim.dir/api/pmem.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/api/pmem.cc.o.d"
  "/root/repo/src/buffers/read_buffer.cc" "src/CMakeFiles/pmemsim.dir/buffers/read_buffer.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/buffers/read_buffer.cc.o.d"
  "/root/repo/src/buffers/write_buffer.cc" "src/CMakeFiles/pmemsim.dir/buffers/write_buffer.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/buffers/write_buffer.cc.o.d"
  "/root/repo/src/cache/cache.cc" "src/CMakeFiles/pmemsim.dir/cache/cache.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/cache/cache.cc.o.d"
  "/root/repo/src/cache/hierarchy.cc" "src/CMakeFiles/pmemsim.dir/cache/hierarchy.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/cache/hierarchy.cc.o.d"
  "/root/repo/src/cache/prefetcher.cc" "src/CMakeFiles/pmemsim.dir/cache/prefetcher.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/cache/prefetcher.cc.o.d"
  "/root/repo/src/common/backing_store.cc" "src/CMakeFiles/pmemsim.dir/common/backing_store.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/common/backing_store.cc.o.d"
  "/root/repo/src/common/check.cc" "src/CMakeFiles/pmemsim.dir/common/check.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/common/check.cc.o.d"
  "/root/repo/src/common/config.cc" "src/CMakeFiles/pmemsim.dir/common/config.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/common/config.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/pmemsim.dir/common/random.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/common/random.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/pmemsim.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/common/stats.cc.o.d"
  "/root/repo/src/core/platform.cc" "src/CMakeFiles/pmemsim.dir/core/platform.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/core/platform.cc.o.d"
  "/root/repo/src/core/system.cc" "src/CMakeFiles/pmemsim.dir/core/system.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/core/system.cc.o.d"
  "/root/repo/src/cpu/scheduler.cc" "src/CMakeFiles/pmemsim.dir/cpu/scheduler.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/cpu/scheduler.cc.o.d"
  "/root/repo/src/cpu/thread_context.cc" "src/CMakeFiles/pmemsim.dir/cpu/thread_context.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/cpu/thread_context.cc.o.d"
  "/root/repo/src/crash/crash_injector.cc" "src/CMakeFiles/pmemsim.dir/crash/crash_injector.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/crash/crash_injector.cc.o.d"
  "/root/repo/src/crash/persist_tracker.cc" "src/CMakeFiles/pmemsim.dir/crash/persist_tracker.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/crash/persist_tracker.cc.o.d"
  "/root/repo/src/crash/recovery_validator.cc" "src/CMakeFiles/pmemsim.dir/crash/recovery_validator.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/crash/recovery_validator.cc.o.d"
  "/root/repo/src/crash/workloads.cc" "src/CMakeFiles/pmemsim.dir/crash/workloads.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/crash/workloads.cc.o.d"
  "/root/repo/src/datastores/cceh.cc" "src/CMakeFiles/pmemsim.dir/datastores/cceh.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/datastores/cceh.cc.o.d"
  "/root/repo/src/datastores/chase_list.cc" "src/CMakeFiles/pmemsim.dir/datastores/chase_list.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/datastores/chase_list.cc.o.d"
  "/root/repo/src/datastores/fast_fair.cc" "src/CMakeFiles/pmemsim.dir/datastores/fast_fair.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/datastores/fast_fair.cc.o.d"
  "/root/repo/src/datastores/flat_log.cc" "src/CMakeFiles/pmemsim.dir/datastores/flat_log.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/datastores/flat_log.cc.o.d"
  "/root/repo/src/dimm/dram_dimm.cc" "src/CMakeFiles/pmemsim.dir/dimm/dram_dimm.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/dimm/dram_dimm.cc.o.d"
  "/root/repo/src/dimm/optane_dimm.cc" "src/CMakeFiles/pmemsim.dir/dimm/optane_dimm.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/dimm/optane_dimm.cc.o.d"
  "/root/repo/src/imc/memory_controller.cc" "src/CMakeFiles/pmemsim.dir/imc/memory_controller.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/imc/memory_controller.cc.o.d"
  "/root/repo/src/imc/wpq.cc" "src/CMakeFiles/pmemsim.dir/imc/wpq.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/imc/wpq.cc.o.d"
  "/root/repo/src/media/ait.cc" "src/CMakeFiles/pmemsim.dir/media/ait.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/media/ait.cc.o.d"
  "/root/repo/src/media/xpoint_media.cc" "src/CMakeFiles/pmemsim.dir/media/xpoint_media.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/media/xpoint_media.cc.o.d"
  "/root/repo/src/persist/barrier.cc" "src/CMakeFiles/pmemsim.dir/persist/barrier.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/persist/barrier.cc.o.d"
  "/root/repo/src/persist/redo_log.cc" "src/CMakeFiles/pmemsim.dir/persist/redo_log.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/persist/redo_log.cc.o.d"
  "/root/repo/src/persist/undo_log.cc" "src/CMakeFiles/pmemsim.dir/persist/undo_log.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/persist/undo_log.cc.o.d"
  "/root/repo/src/prefetch/helper_thread.cc" "src/CMakeFiles/pmemsim.dir/prefetch/helper_thread.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/prefetch/helper_thread.cc.o.d"
  "/root/repo/src/trace/attribution.cc" "src/CMakeFiles/pmemsim.dir/trace/attribution.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/trace/attribution.cc.o.d"
  "/root/repo/src/trace/counters.cc" "src/CMakeFiles/pmemsim.dir/trace/counters.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/trace/counters.cc.o.d"
  "/root/repo/src/trace/json.cc" "src/CMakeFiles/pmemsim.dir/trace/json.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/trace/json.cc.o.d"
  "/root/repo/src/trace/recorder.cc" "src/CMakeFiles/pmemsim.dir/trace/recorder.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/trace/recorder.cc.o.d"
  "/root/repo/src/trace/registry.cc" "src/CMakeFiles/pmemsim.dir/trace/registry.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/trace/registry.cc.o.d"
  "/root/repo/src/trace/replayer.cc" "src/CMakeFiles/pmemsim.dir/trace/replayer.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/trace/replayer.cc.o.d"
  "/root/repo/src/trace/sampler.cc" "src/CMakeFiles/pmemsim.dir/trace/sampler.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/trace/sampler.cc.o.d"
  "/root/repo/src/trace/trace_events.cc" "src/CMakeFiles/pmemsim.dir/trace/trace_events.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/trace/trace_events.cc.o.d"
  "/root/repo/src/workload/log_patterns.cc" "src/CMakeFiles/pmemsim.dir/workload/log_patterns.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/workload/log_patterns.cc.o.d"
  "/root/repo/src/workload/ycsb.cc" "src/CMakeFiles/pmemsim.dir/workload/ycsb.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/workload/ycsb.cc.o.d"
  "/root/repo/src/workload/zipf.cc" "src/CMakeFiles/pmemsim.dir/workload/zipf.cc.o" "gcc" "src/CMakeFiles/pmemsim.dir/workload/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
