#include "src/persist/barrier.h"

namespace pmemsim {

void FlushRange(ThreadContext& ctx, Addr addr, uint64_t len) {
  for (Addr line = CacheLineBase(addr); line < addr + len; line += kCacheLineSize) {
    ctx.Clwb(line);
  }
}

void FlushInvalidateRange(ThreadContext& ctx, Addr addr, uint64_t len) {
  for (Addr line = CacheLineBase(addr); line < addr + len; line += kCacheLineSize) {
    ctx.Clflushopt(line);
  }
}

void Persist(ThreadContext& ctx, Addr addr, uint64_t len, bool use_mfence) {
  FlushRange(ctx, addr, len);
  if (use_mfence) {
    ctx.Mfence();
  } else {
    ctx.Sfence();
  }
}

void PersistentStore64(ThreadContext& ctx, Addr addr, uint64_t value, PersistMode mode) {
  if (UsesClwb(mode)) {
    ctx.Store64(addr, value);
    ctx.Clwb(addr);
  } else {
    ctx.NtStore64(addr, value);
  }
  if (UsesMfence(mode)) {
    ctx.Mfence();
  } else {
    ctx.Sfence();
  }
}

}  // namespace pmemsim
