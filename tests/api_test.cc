// Tests for the libpmem-flavoured API layer.

#include <gtest/gtest.h>

#include <cstring>

#include "src/api/pmem.h"
#include "src/core/platform.h"

namespace pmemsim {
namespace {

struct Fixture {
  std::unique_ptr<System> system = MakeG1System(1);
  ThreadContext* cpu = &system->CreateThread();
};

TEST(PmemApiTest, MapFileReservesRange) {
  Fixture f;
  const PmRegion a = PmemMapFile(*f.system, MiB(1));
  const PmRegion b = PmemMapFile(*f.system, MiB(1));
  EXPECT_EQ(a.kind, MemoryKind::kOptane);
  EXPECT_GE(b.base, a.end());
}

TEST(PmemApiTest, AutoFlushReflectsEadr) {
  Fixture f;
  EXPECT_FALSE(PmemHasAutoFlush(*f.system));
  auto eadr_system = std::make_unique<System>(G2EadrPlatform(), 1);
  EXPECT_TRUE(PmemHasAutoFlush(*eadr_system));
}

TEST(PmemApiTest, MemcpyPersistRoundTrip) {
  Fixture f;
  const PmRegion region = PmemMapFile(*f.system, KiB(64));
  uint8_t src[1000];
  for (size_t i = 0; i < sizeof(src); ++i) {
    src[i] = static_cast<uint8_t>(i * 13);
  }
  PmemMemcpyPersist(*f.cpu, region.base + 24, src, sizeof(src));  // unaligned
  uint8_t out[1000];
  f.cpu->Read(region.base + 24, out, sizeof(out));
  EXPECT_EQ(std::memcmp(src, out, sizeof(src)), 0);
  EXPECT_EQ(f.cpu->outstanding_persists(), 0u);  // drained
}

TEST(PmemApiTest, SmallCopyGoesThroughCaches) {
  Fixture f;
  const PmRegion region = PmemMapFile(*f.system, KiB(4));
  const uint64_t v = 0x77;
  PmemMemcpyPersist(*f.cpu, region.base, &v, sizeof(v));
  // Cached path: the iMC saw one cacheline write-back from the flush.
  EXPECT_EQ(f.system->counters().imc_write_bytes, kCacheLineSize);
}

TEST(PmemApiTest, LargeCopyStreams) {
  Fixture f;
  const PmRegion region = PmemMapFile(*f.system, KiB(64));
  std::vector<uint8_t> buf(KiB(4), 0xAB);
  const uint64_t loads_before = f.system->counters().demand_loads;
  PmemMemcpyPersist(*f.cpu, region.base, buf.data(), buf.size());
  // Streaming nt-store path: no RFO reads of the destination.
  EXPECT_EQ(f.system->counters().demand_loads, loads_before);
  EXPECT_EQ(f.system->counters().imc_write_bytes, KiB(4));
  // Destination lines are not cached afterward.
  EXPECT_FALSE(f.cpu->hierarchy().ProbeAny(region.base, f.cpu->clock()));
}

TEST(PmemApiTest, MemsetPersist) {
  Fixture f;
  const PmRegion region = PmemMapFile(*f.system, KiB(4));
  PmemMemsetPersist(*f.cpu, region.base, 0x5A, 300);
  uint8_t out[300];
  f.cpu->Read(region.base, out, sizeof(out));
  for (const uint8_t b : out) {
    ASSERT_EQ(b, 0x5A);
  }
}

TEST(PmemApiTest, NodrainLeavesPersistsOutstanding) {
  Fixture f;
  const PmRegion region = PmemMapFile(*f.system, KiB(64));
  std::vector<uint8_t> buf(KiB(1), 1);
  PmemMemcpyNodrain(*f.cpu, region.base, buf.data(), buf.size());
  EXPECT_GT(f.cpu->outstanding_persists(), 0u);
  PmemDrain(*f.cpu);
  EXPECT_EQ(f.cpu->outstanding_persists(), 0u);
}

}  // namespace
}  // namespace pmemsim
