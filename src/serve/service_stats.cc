#include "src/serve/service_stats.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/trace/json.h"

namespace pmemsim {

void ServiceStats::RecordCompletion(const Request& r, Cycles start, Cycles end) {
  PMEMSIM_CHECK(r.arrival <= start && start <= end);
  const Cycles wait_c = start - r.arrival;
  const Cycles service_c = end - start;
  const Cycles sojourn_c = end - r.arrival;
  ++completed;
  ++op_counts[static_cast<size_t>(r.op)];
  wait_total += wait_c;
  service_total += service_c;
  sojourn_total += sojourn_c;
  wait.Add(wait_c);
  service.Add(service_c);
  sojourn.Add(sojourn_c);
  last_completion = std::max(last_completion, end);
}

void ServiceStats::Merge(const ServiceStats& other) {
  completed += other.completed;
  for (int i = 0; i < kServeOpCount; ++i) {
    op_counts[i] += other.op_counts[i];
  }
  not_found += other.not_found;
  sojourn_total += other.sojourn_total;
  wait_total += other.wait_total;
  service_total += other.service_total;
  sojourn.Merge(other.sojourn);
  wait.Merge(other.wait);
  service.Merge(other.service);
  last_completion = std::max(last_completion, other.last_completion);
  offered += other.offered;
  rejected += other.rejected;
}

double ServiceStats::OpsPerSec(double cpu_ghz, Cycles serve_start) const {
  if (completed == 0 || last_completion <= serve_start) {
    return 0.0;
  }
  const double seconds =
      static_cast<double>(last_completion - serve_start) / (cpu_ghz * 1e9);
  return static_cast<double>(completed) / seconds;
}

void ServiceStats::ToJson(JsonWriter& w, double cpu_ghz, Cycles serve_start) const {
  w.BeginObject();
  w.Key("offered").Value(offered);
  w.Key("rejected").Value(rejected);
  w.Key("completed").Value(completed);
  w.Key("not_found").Value(not_found);
  w.Key("ops").BeginObject();
  for (int i = 0; i < kServeOpCount; ++i) {
    w.Key(ServeOpName(static_cast<ServeOp>(i))).Value(op_counts[i]);
  }
  w.EndObject();
  w.Key("ops_per_sec").Value(OpsPerSec(cpu_ghz, serve_start));
  w.Key("last_completion").Value(static_cast<uint64_t>(last_completion));
  if (sojourn.count() == 0) {
    w.Key("sojourn_p50").Null();
    w.Key("sojourn_p99").Null();
    w.Key("sojourn_p999").Null();
  } else {
    w.Key("sojourn_p50").Value(sojourn.Quantile(0.50));
    w.Key("sojourn_p99").Value(sojourn.Quantile(0.99));
    w.Key("sojourn_p999").Value(sojourn.Quantile(0.999));
  }
  w.Key("latency").BeginObject();
  w.Key("sojourn");
  sojourn.ToJson(w);
  w.Key("queue_wait");
  wait.ToJson(w);
  w.Key("service");
  service.ToJson(w);
  w.EndObject();
  w.EndObject();
}

std::string ServiceStats::ToJson(double cpu_ghz, Cycles serve_start) const {
  JsonWriter w;
  ToJson(w, cpu_ghz, serve_start);
  return w.str();
}

}  // namespace pmemsim
