# Empty compiler generated dependencies file for fig14_redirect_scaling.
# This may be replaced when dependencies are built.
