file(REMOVE_RECURSE
  "CMakeFiles/pmemsim_probe.dir/pmemsim_probe.cc.o"
  "CMakeFiles/pmemsim_probe.dir/pmemsim_probe.cc.o.d"
  "pmemsim_probe"
  "pmemsim_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemsim_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
