// Windowed serve-phase telemetry: the serving tier's `ipmwatch`.
//
// End-of-run aggregates hide exactly the pathologies the paper's methodology
// is built to expose — a shed burst, a warm-up tail, a write-buffer thrash
// episode are visible only in the *timeline*. ServeMetrics reproduces the
// interval view for the request plane: per `interval_cycles` window of
// simulated time it reports throughput (completions), admissions, sheds, the
// queue-depth gauge at window close, and windowed p50/p99/p999 sojourn
// quantiles, optionally joined with the memory-plane interval series (a
// Sampler over the same origin/interval, so windows align exactly).
//
// Determinism: events are bucketed by their *simulated* timestamps, and every
// per-window aggregate is commutative (counts sum, histogram adds commute),
// so the materialized timeline depends only on the simulated event set —
// never on host interleaving. The one order-sensitive reading, the
// queue-depth gauge, takes the last observation per window in the owning
// engine's step order, which is itself deterministic per domain. That is what
// makes the emitted timeline byte-identical at any --jobs x --engine_threads.
//
// Conservation (gated by tests and scripts/check_timeline.py): the windows
// tile [origin, end) contiguously (only the final window may be partial), and
// the field-wise window sums equal the whole-run totals exactly — completed,
// admitted, and shed events each land in exactly one window.
//
// ServeTimeline bundles one ServeMetrics (plus optional SpanRecorder) per
// shard, merges them into the global per-window view, evaluates the SLO
// monitor (--slo_p99_cycles), and serializes the --timeline_json artifact.
// It is also the unwind-flush target: FlushTruncated() finalizes whatever was
// observed so a failed sweep point still emits a well-formed (marked
// truncated) timeline.

#ifndef SRC_TRACE_SERVE_METRICS_H_
#define SRC_TRACE_SERVE_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/trace/counters.h"
#include "src/trace/sampler.h"
#include "src/trace/span.h"

namespace pmemsim {

class JsonWriter;

// One materialized telemetry window: [t_begin, t_end), except the closing
// window which also owns events stamped exactly at its t_end.
struct ServeWindow {
  uint64_t index = 0;
  Cycles t_begin = 0;
  Cycles t_end = 0;
  bool partial = false;  // closing window cut short by Finalize
  uint64_t completed = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;
  uint64_t queue_depth = 0;  // occupancy at window close (carried forward)
  Histogram sojourn;         // per-window sojourn latencies -> windowed tails
  bool has_mem = false;      // memory-plane interval joined in
  Counters mem_delta;
  SampleGauges mem_gauges;
};

// Per-shard windowed serve metrics. All recording calls happen on the shard's
// engine thread (lockstep, or the domain's host thread within an epoch);
// Begin/Finalize happen on the coordinator outside engine execution.
class ServeMetrics {
 public:
  explicit ServeMetrics(Cycles interval_cycles);

  // Opens the series at the serve-phase origin. Must precede any Record*.
  void Begin(Cycles origin);

  // Joins a memory-plane interval series: a Sampler over `counters` aligned
  // to this series' origin/interval. Call after Begin; the owner drives the
  // returned sampler (Scheduler::Run / RunUntil observation hooks).
  Sampler* AttachMemSampler(const Counters* counters, Sampler::GaugeFn gauges);
  Sampler* mem_sampler() { return sampler_.get(); }

  void RecordAdmission(Cycles t);
  void RecordShed(Cycles t);
  void RecordCompletion(Cycles end, Cycles sojourn);
  // Queue-occupancy gauge: the last observation per window (in call order,
  // which is the owning engine's deterministic step order) closes the window.
  void ObserveQueueDepth(Cycles t, uint64_t depth);

  // Materializes the contiguous window list over [origin, end], emitting
  // zero windows for idle intervals and folding the joined mem samples in.
  // Idempotent (later calls are ignored), so the unwind flush may race a
  // completed normal finalize without harm.
  void Finalize(Cycles end);
  bool finalized() const { return finalized_; }

  Cycles origin() const { return origin_; }
  Cycles interval_cycles() const { return interval_; }
  bool begun() const { return begun_; }
  // Largest event timestamp observed; the truncated-flush finalize point.
  Cycles max_observed() const { return max_observed_; }
  uint64_t total_completed() const { return total_completed_; }
  uint64_t total_admitted() const { return total_admitted_; }
  uint64_t total_shed() const { return total_shed_; }

  const std::vector<ServeWindow>& windows() const { return windows_; }

 private:
  struct Bucket {
    uint64_t completed = 0;
    uint64_t admitted = 0;
    uint64_t shed = 0;
    Histogram sojourn;
    bool has_depth = false;
    Cycles depth_time = 0;
    uint64_t depth = 0;
  };

  Bucket& BucketFor(Cycles t);

  Cycles interval_;
  Cycles origin_ = 0;
  bool begun_ = false;
  bool finalized_ = false;
  Cycles max_observed_ = 0;
  uint64_t total_completed_ = 0;
  uint64_t total_admitted_ = 0;
  uint64_t total_shed_ = 0;
  std::map<uint64_t, Bucket> buckets_;  // sparse, keyed by window index
  std::unique_ptr<Sampler> sampler_;
  std::vector<ServeWindow> windows_;
};

// The whole-point serve timeline: one ServeMetrics (and optionally one
// SpanRecorder) per shard, merged to a global per-window view, SLO monitor,
// and the --timeline_json / span-export serializers.
class ServeTimeline {
 public:
  struct Config {
    std::string mix;
    std::string loop;
    std::string store;
    // "interleaved" (legacy shared-System tier) or "partitioned" (DomainTier).
    // Deliberately no engine_threads anywhere in the artifact: the timeline
    // must byte-compare across host thread counts.
    std::string engine;
    uint32_t shards = 1;
    Cycles interval_cycles = 0;
    uint64_t slo_p99_cycles = 0;  // 0 = SLO monitor off
  };

  struct SloSummary {
    uint64_t violations = 0;
    uint64_t windows = 0;
    uint64_t windows_with_traffic = 0;
    double burn_rate = 0.0;  // violations / windows_with_traffic
  };

  explicit ServeTimeline(const Config& cfg);

  // Creates one SpanRecorder per shard (off by default: pay-for-use).
  void EnableSpans();

  ServeMetrics* shard(uint32_t s) { return metrics_[s].get(); }
  // nullptr unless EnableSpans() was called.
  SpanRecorder* spans(uint32_t s) {
    return recorders_.empty() ? nullptr : recorders_[s].get();
  }

  // Opens every shard series at the serve-phase origin.
  void Begin(Cycles origin);

  // Legacy engine: one memory-plane series over the shared System (the
  // partitioned engine attaches per-shard samplers instead). Call after
  // Begin.
  Sampler* AttachGlobalMemSampler(const Counters* counters, Sampler::GaugeFn gauges);
  Sampler* global_mem_sampler() { return global_sampler_.get(); }

  // Normal close at the engine's serve end (every shard at the same end, so
  // window counts line up across shards).
  void Finalize(Cycles end);

  // Unwind-flush path: finalizes at the maximum observed event time so a
  // failing sweep point still yields a well-formed timeline, marked
  // truncated. Safe to call at any point in the lifecycle, repeatedly.
  void FlushTruncated();
  bool truncated() const { return truncated_; }

  // Valid after Finalize/FlushTruncated.
  const std::vector<ServeWindow>& global_windows() const { return global_windows_; }
  SloSummary Slo() const;

  // The per-point --timeline_json artifact (see scripts/check_timeline.py
  // for the schema this must satisfy).
  void ToJson(JsonWriter& w) const;
  std::string ToJson() const;

  // Compact span export: columnar arrays, one row per span, shards
  // concatenated in index order.
  std::string SpansToJson() const;
  // chrome://tracing export: one "X" (complete) event per span, pid = shard,
  // tid = client, ts/dur in simulated cycles, stage breakdown in args.
  std::string SpansToChromeTrace() const;

 private:
  void MergeGlobal();
  void WindowToJson(JsonWriter& w, const ServeWindow& win, bool with_slo) const;

  Config cfg_;
  std::vector<std::unique_ptr<ServeMetrics>> metrics_;
  std::vector<std::unique_ptr<SpanRecorder>> recorders_;
  std::unique_ptr<Sampler> global_sampler_;
  std::vector<ServeWindow> global_windows_;
  Cycles origin_ = 0;
  Cycles end_ = 0;
  bool begun_ = false;
  bool finalized_ = false;
  bool truncated_ = false;
};

}  // namespace pmemsim

#endif  // SRC_TRACE_SERVE_METRICS_H_
