// Cacheline-Conscious Extendible Hashing (CCEH, FAST'19) on the simulator —
// the paper's §4.1 case-study workload.
//
// Structure (paper Fig. 9): a global directory of segment addresses indexed by
// the key hash's top `global_depth` bits; 16 KB segments of 256 cacheline-
// sized buckets behind a one-cacheline header (local depth + pattern); each
// bucket holds four 16 B key-value slots. Collisions linear-probe up to four
// adjacent buckets; a failed probe splits the segment (doubling the directory
// when local depth reaches global depth).
//
// Insertions are phase-timed so Table 1's breakdown can be regenerated:
//   directory  — directory entry load (cached, hot)
//   segment    — segment header load (the expensive random media read)
//   bucket     — bucket probe loads + slot scans
//   persist    — stores + clwb + fence for the committed slot
//   split      — segment split + directory maintenance
//
// Crash consistency follows CCEH: the 8-byte key write commits a slot (value
// is written first), and splits persist the new segment before publishing it
// in the directory.

#ifndef SRC_DATASTORES_CCEH_H_
#define SRC_DATASTORES_CCEH_H_

#include <cstdint>

#include "src/common/types.h"
#include "src/core/system.h"
#include "src/cpu/thread_context.h"

namespace pmemsim {

struct CcehBreakdown {
  Cycles directory = 0;
  Cycles segment_meta = 0;
  Cycles bucket_probe = 0;
  Cycles persist = 0;
  Cycles split = 0;
  uint64_t inserts = 0;
  uint64_t splits = 0;

  Cycles total() const { return directory + segment_meta + bucket_probe + persist + split; }
};

class Cceh {
 public:
  static constexpr uint64_t kBucketsPerSegment = 256;
  static constexpr uint64_t kSlotsPerBucket = 4;
  static constexpr uint64_t kSlotSize = 16;  // 8 B key + 8 B value
  static constexpr uint64_t kSegmentHeaderSize = kCacheLineSize;
  static constexpr uint64_t kSegmentSize =
      kSegmentHeaderSize + kBucketsPerSegment * kCacheLineSize;
  static constexpr uint32_t kLinearProbeBuckets = 4;
  static constexpr uint64_t kInvalidKey = 0;  // keys must be non-zero

  // Builds an empty table with 2^initial_depth segments. `kind` selects PM or
  // DRAM placement (the paper's Fig. 10 DRAM baseline keeps the persistence
  // barriers and only changes the device). Construction is timed on `ctx`.
  Cceh(System* system, ThreadContext& ctx, uint32_t initial_depth, MemoryKind kind);

  // Inserts (or updates) key -> value. Keys must be non-zero. Returns false
  // only if the key could not be placed (never happens: splits retry).
  bool Insert(ThreadContext& ctx, uint64_t key, uint64_t value);

  bool Get(ThreadContext& ctx, uint64_t key, uint64_t* value_out);

  // Removes the key (8-byte atomic slot invalidation + persist). Returns
  // false if the key is absent.
  bool Erase(ThreadContext& ctx, uint64_t key);

  // Helper-thread path (§4.1): replays only the index-walk loads for `key` —
  // directory entry, segment header, and the probe bucket line — with memory-
  // level parallelism and no stores, fences, or synchronization.
  void PrefetchProbePath(ThreadContext& ctx, uint64_t key);

  CcehBreakdown& breakdown() { return breakdown_; }
  uint32_t global_depth() const { return global_depth_; }
  uint64_t segment_count() const { return segment_count_; }
  uint64_t size() const { return size_; }
  Addr directory_addr() const { return directory_; }

  // Test-only (crashcheck --break_persist): drop the clwb+sfence after the
  // slot commit so the validator can demonstrate it catches the omission.
  void set_skip_persist_for_test(bool skip) { skip_persist_for_test_ = skip; }

 private:
  static uint64_t HashOf(uint64_t key);
  uint64_t DirIndex(uint64_t hash) const;
  static uint64_t BucketIndex(uint64_t hash) { return hash & (kBucketsPerSegment - 1); }

  Addr SegmentBucketAddr(Addr segment, uint64_t bucket) const {
    return segment + kSegmentHeaderSize + bucket * kCacheLineSize;
  }

  PmRegion AllocateSegment();
  // Initializes a fresh segment header (timed, persisted).
  void InitSegment(ThreadContext& ctx, Addr segment, uint64_t local_depth, uint64_t pattern);

  // Splits the segment holding `hash`; returns after directory update.
  void Split(ThreadContext& ctx, Addr segment, uint64_t hash);
  void DoubleDirectory(ThreadContext& ctx);

  System* system_;
  MemoryKind kind_;
  Addr directory_ = 0;      // region of 2^global_depth 8 B entries
  uint32_t global_depth_ = 0;
  uint64_t segment_count_ = 0;
  uint64_t size_ = 0;
  bool skip_persist_for_test_ = false;
  CcehBreakdown breakdown_;
};

}  // namespace pmemsim

#endif  // SRC_DATASTORES_CCEH_H_
