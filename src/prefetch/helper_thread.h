// Speculative helper-thread prefetching (paper §4.1).
//
// A helper context — bound to the worker's sibling hyperthread on the real
// machine — replays only the index-walk *loads* of upcoming operations,
// unconstrained by the worker's persistence barriers. With 100% accurate
// "prediction" (it reads the same future key stream) the worker's random
// media reads become L3/read-buffer hits. The prefetch depth caps how far the
// helper runs ahead so the buffers are not thrashed (the paper found depth 8
// best).
//
// SpeculativeHelperPair packages the worker/helper coupling as Scheduler jobs.

#ifndef SRC_PREFETCH_HELPER_THREAD_H_
#define SRC_PREFETCH_HELPER_THREAD_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "src/cpu/scheduler.h"
#include "src/cpu/thread_context.h"

namespace pmemsim {

struct HelperConfig {
  uint32_t prefetch_depth = 8;
  // SMT co-run penalty applied to both hyperthreads' core-local work while
  // the pair is active (1.0 = none).
  double smt_scale = 1.6;
};

class SpeculativeHelperPair {
 public:
  using WorkFn = std::function<void(ThreadContext&, size_t index)>;

  // Executes `count` operations: `work` runs on the worker for index i while
  // `prefetch` runs on the helper for indices up to i + depth.
  SpeculativeHelperPair(ThreadContext* worker, ThreadContext* helper, size_t count, WorkFn work,
                        WorkFn prefetch, HelperConfig config = {});

  // Appends the coupled worker+helper jobs. Lifetime: this object must
  // outlive Scheduler::Run.
  void AppendJobs(std::vector<SimJob>& jobs);

  size_t worker_index() const { return worker_index_; }

 private:
  StepResult WorkerStep();
  StepResult HelperStep();

  ThreadContext* worker_;
  ThreadContext* helper_;
  size_t count_;
  WorkFn work_;
  WorkFn prefetch_;
  HelperConfig config_;

  size_t worker_index_ = 0;
  size_t helper_index_ = 0;
};

}  // namespace pmemsim

#endif  // SRC_PREFETCH_HELPER_THREAD_H_
