// Shared helpers for the figure-regeneration benches: tiny flag parsing, CSV
// emission, and the structured-telemetry flags every bench accepts:
//
//   --stats_json=<path>    write the bench's rows as machine-readable JSON
//                          (consumed by scripts/check_figures.py in CI)
//   --trace_out=<path>     emit a chrome://tracing event file for the run
//   --samples_json=<path>  write the interval sampler's time series (benches
//                          that run a Sampler; validated by
//                          scripts/check_samples.py in CI)
//
// Every bench prints a header comment naming the paper figure, then CSV rows
// matching the figure's axes; the same rows go into the JSON report.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/trace/counters.h"
#include "src/trace/json.h"
#include "src/trace/trace_events.h"

namespace pmemsim_bench {

// Tiny --name / --name=value parser. Every Has/Get* call registers the name
// as recognized; after querying all its flags, a bench calls RejectUnknown()
// so a typo (--stats-json for --stats_json) fails loudly instead of silently
// no-opping. Malformed numeric values exit(2) with the offending flag named.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      args_.emplace_back(argv[i]);
    }
  }

  bool Has(const std::string& name) const {
    known_.insert(name);
    for (const std::string& a : args_) {
      if (a == "--" + name) {
        return true;
      }
    }
    return false;
  }

  std::string Get(const std::string& name, const std::string& def) const {
    known_.insert(name);
    const std::string prefix = "--" + name + "=";
    for (const std::string& a : args_) {
      if (a.rfind(prefix, 0) == 0) {
        return a.substr(prefix.size());
      }
    }
    return def;
  }

  uint64_t GetU64(const std::string& name, uint64_t def) const {
    const std::string v = Get(name, "");
    if (v.empty()) {
      return def;
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(v.c_str(), &end, 10);
    if (errno != 0 || end == v.c_str() || *end != '\0' || v[0] == '-') {
      BadValue(name, v, "unsigned integer");
    }
    return parsed;
  }

  double GetDouble(const std::string& name, double def) const {
    const std::string v = Get(name, "");
    if (v.empty()) {
      return def;
    }
    errno = 0;
    char* end = nullptr;
    const double parsed = std::strtod(v.c_str(), &end);
    if (errno != 0 || end == v.c_str() || *end != '\0') {
      BadValue(name, v, "number");
    }
    return parsed;
  }

  // Exits(2) naming a flag with an unusable value. Public so benches can
  // reject domain-invalid values (e.g. an unknown --platform name) through
  // the same error path as malformed numbers.
  [[noreturn]] static void BadValue(const std::string& name, const std::string& v,
                                    const char* expected) {
    std::fprintf(stderr, "error: invalid value for --%s: '%s' (expected %s)\n", name.c_str(),
                 v.c_str(), expected);
    std::exit(2);
  }

  // Exits(2) naming any --flag whose name was never queried. Call after the
  // last Get/Has (flag queries register names, so order matters).
  void RejectUnknown() const {
    for (const std::string& a : args_) {
      if (a.rfind("--", 0) != 0) {
        std::fprintf(stderr, "error: unexpected argument '%s'\n", a.c_str());
        std::exit(2);
      }
      const size_t eq = a.find('=');
      const std::string name =
          eq == std::string::npos ? a.substr(2) : a.substr(2, eq - 2);
      if (known_.count(name) == 0) {
        std::fprintf(stderr, "error: unrecognized flag '--%s' (see --help)\n", name.c_str());
        std::exit(2);
      }
    }
  }

 private:
  std::vector<std::string> args_;
  // Names queried so far; mutable because Get/Has are logically const reads.
  mutable std::set<std::string> known_;
};

inline void PrintHeader(const char* figure, const char* description) {
  std::printf("# %s — %s\n", figure, description);
}

// Collects the bench's result rows and writes them as JSON when the user
// passed --stats_json. Also enables the chrome-trace emitter for --trace_out.
//
//   BenchReport report(flags, "fig02_read_buffer");
//   report.AddRow().Set("gen", "G1").Set("wss_kb", kb).Set("read_amplification", ra);
//   return report.Finish();   // from main()
class BenchReport {
 public:
  class Row {
   public:
    Row& Set(const char* name, const std::string& v) {
      cells_.emplace_back(name, Cell{Cell::kString, 0, 0.0, v});
      return *this;
    }
    Row& Set(const char* name, const char* v) { return Set(name, std::string(v)); }
    Row& Set(const char* name, double v) {
      cells_.emplace_back(name, Cell{Cell::kDouble, 0, v, {}});
      return *this;
    }
    Row& Set(const char* name, uint64_t v) {
      cells_.emplace_back(name, Cell{Cell::kUint, v, 0.0, {}});
      return *this;
    }
    Row& Set(const char* name, int v) { return Set(name, static_cast<uint64_t>(v)); }
    Row& Set(const char* name, uint32_t v) { return Set(name, static_cast<uint64_t>(v)); }

   private:
    friend class BenchReport;
    struct Cell {
      enum Kind { kUint, kDouble, kString } kind;
      uint64_t u;
      double d;
      std::string s;
    };
    std::vector<std::pair<std::string, Cell>> cells_;
  };

  // `default_stats_path` lets a bench opt into writing its report even when
  // --stats_json is absent (perf_hotpath commits its trajectory baseline at
  // the repo root); pass --stats_json= (empty) to suppress it.
  BenchReport(const Flags& flags, const std::string& bench_name,
              const std::string& default_stats_path = "")
      : bench_name_(bench_name),
        stats_path_(flags.Get("stats_json", default_stats_path)),
        samples_path_(flags.Get("samples_json", "")) {
    const std::string trace_path = flags.Get("trace_out", "");
    if (!trace_path.empty()) {
      pmemsim::TraceEmitter::Global().Enable(trace_path);
      trace_enabled_ = true;
    }
  }

  Row& AddRow() {
    rows_.emplace_back();
    return rows_.back();
  }

  // Appends rows built elsewhere (the sweep runner collects each point's rows
  // on a worker thread and splices them in deterministic point order).
  void AppendRows(std::vector<Row>&& rows) {
    for (Row& row : rows) {
      rows_.push_back(std::move(row));
    }
    rows.clear();
  }

  // Attaches a labelled counter snapshot (e.g. the final system counters).
  void AddCounters(const std::string& label, const pmemsim::Counters& counters) {
    counters_.emplace_back(label, counters);
  }

  // True when the user asked for the interval-sampler time series; benches
  // use this to decide whether to attach a Sampler to their run.
  bool WantsSamples() const { return !samples_path_.empty(); }

  // Supplies the sampler's serialized time series (Sampler::ToJson), written
  // to the --samples_json path by Finish().
  void SetSamplesJson(std::string samples_json) { samples_json_ = std::move(samples_json); }

  // Embeds `raw_json` — one complete JSON value — as a top-level section of
  // the stats report (e.g. "attribution" for AttributionCollector::ToJson).
  void AddSection(const std::string& key, std::string raw_json) {
    sections_.emplace_back(key, std::move(raw_json));
  }

  // Writes the JSON report and/or trace if requested. Returns a process exit
  // code: 0 on success (or nothing to write), 1 on I/O failure.
  int Finish() {
    int rc = 0;
    if (trace_enabled_) {
      if (!pmemsim::TraceEmitter::Global().Disable()) {
        std::fprintf(stderr, "error: failed to write trace_out file\n");
        rc = 1;
      }
      trace_enabled_ = false;
    }
    if (!samples_path_.empty()) {
      if (samples_json_.empty()) {
        std::fprintf(stderr,
                     "error: --samples_json requested but this bench did not "
                     "produce a sample series\n");
        rc = 1;
      } else if (!WriteFile(samples_path_, samples_json_)) {
        rc = 1;
      }
      samples_path_.clear();
    }
    if (stats_path_.empty()) {
      return rc;
    }
    pmemsim::JsonWriter w;
    w.BeginObject();
    w.Key("schema_version").Value(uint64_t{1});
    w.Key("bench").Value(bench_name_);
    w.Key("rows").BeginArray();
    for (const Row& row : rows_) {
      w.BeginObject();
      for (const auto& [name, cell] : row.cells_) {
        w.Key(name);
        switch (cell.kind) {
          case Row::Cell::kUint:
            w.Value(cell.u);
            break;
          case Row::Cell::kDouble:
            w.Value(cell.d);
            break;
          case Row::Cell::kString:
            w.Value(cell.s);
            break;
        }
      }
      w.EndObject();
    }
    w.EndArray();
    if (!counters_.empty()) {
      w.Key("counters").BeginObject();
      for (const auto& [label, counters] : counters_) {
        w.Key(label);
        counters.ToJson(w);
      }
      w.EndObject();
    }
    for (const auto& [key, raw] : sections_) {
      w.Key(key).Raw(raw);
    }
    w.EndObject();

    if (!WriteFile(stats_path_, w.str())) {
      return 1;
    }
    stats_path_.clear();
    return rc;
  }

 private:
  static bool WriteFile(const std::string& path, const std::string& text) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
      return false;
    }
    const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
    if (std::fclose(f) != 0 || !ok) {
      std::fprintf(stderr, "error: short write to %s\n", path.c_str());
      return false;
    }
    return true;
  }

  std::string bench_name_;
  std::string stats_path_;
  std::string samples_path_;
  std::string samples_json_;
  bool trace_enabled_ = false;
  std::vector<Row> rows_;
  std::vector<std::pair<std::string, pmemsim::Counters>> counters_;
  std::vector<std::pair<std::string, std::string>> sections_;
};

inline const char* kTelemetryFlagsHelp =
    "  --stats_json=<path>    write rows as JSON (for scripts/check_figures.py)\n"
    "  --trace_out=<path>     write a chrome://tracing event file\n"
    "  --samples_json=<path>  write the interval-sampler time series as JSON\n"
    "  --jobs=N               host parallelism ACROSS sweep points: N points\n"
    "                         run concurrently, each a complete independent\n"
    "                         simulation; output stays byte-identical to\n"
    "                         --jobs=1. Not to be confused with\n"
    "                         --engine_threads, the host parallelism WITHIN\n"
    "                         one point that benches with a partitioned\n"
    "                         serving tier (pmemsim_serve) accept; benches\n"
    "                         without a domain partition reject it.\n";

}  // namespace pmemsim_bench

#endif  // BENCH_BENCH_UTIL_H_
