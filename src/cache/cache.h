// Set-associative write-back cache with LRU replacement and lazy, timed
// invalidation (used to model the window between a clwb retiring and its
// cache-side invalidation becoming visible to younger unordered loads on G1).

#ifndef SRC_CACHE_CACHE_H_
#define SRC_CACHE_CACHE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/config.h"
#include "src/common/types.h"

namespace pmemsim {

struct EvictedLine {
  Addr line = 0;
  bool valid = false;
  bool dirty = false;
};

class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheLevelConfig& config);

  // Touches the line if present: updates LRU, optionally marks dirty.
  // Returns true on hit. Applies any due pending invalidation first.
  // `was_prefetched` (optional) reports whether this was the first demand
  // touch of a prefetched line (the flag is cleared by the touch).
  // `available_at` (optional) reports when the data is usable: an in-flight
  // prefetch fill hit is not ready before its memory access completes.
  bool Access(Addr line_addr, Cycles now, bool mark_dirty, bool* was_prefetched = nullptr,
              Cycles* available_at = nullptr);

  // Non-mutating presence check (honors pending invalidations).
  bool Probe(Addr line_addr, Cycles now) const;

  // Inserts the line, evicting the set's LRU way if needed. `ready_at` marks
  // when the fill's data arrives (prefetch fills are issued asynchronously).
  EvictedLine Insert(Addr line_addr, Cycles now, bool dirty, bool prefetched,
                     Cycles ready_at = 0);

  struct InvalidateResult {
    bool was_present = false;
    bool was_dirty = false;
  };

  // Immediate invalidation (clflush/clflushopt effect, nt-store snoop).
  InvalidateResult Invalidate(Addr line_addr);

  // clwb effect: clears dirty. If `retain` (G2) the line stays valid clean;
  // otherwise (G1) it is scheduled to invalidate at `invalidate_at`.
  InvalidateResult WriteBack(Addr line_addr, Cycles invalidate_at, bool retain);

  // If the line is present and was filled by a prefetch that has not been
  // demand-touched yet, clears the flag and returns true.
  bool ConsumePrefetchedFlag(Addr line_addr, Cycles now);

  // Applies a scheduled (pending) invalidation immediately, if one exists.
  // Used by mfence, which orders younger loads after the flush's effects.
  void ApplyPendingInvalidate(Addr line_addr);

  Cycles hit_latency() const { return config_.hit_latency; }
  size_t sets() const { return sets_; }
  uint32_t ways() const { return config_.ways; }

  void Clear();

 private:
  struct Way {
    Addr tag = 0;
    uint64_t lru = 0;
    Cycles pending_invalidate_at = 0;  // 0 = none scheduled
    Cycles ready_at = 0;               // fill arrival time (0 = ready)
    bool valid = false;
    bool dirty = false;
    bool prefetched = false;
  };

  size_t SetIndex(Addr line_addr) const {
    return static_cast<size_t>((line_addr / kCacheLineSize) % sets_);
  }
  // Returns the way holding the line or nullptr; applies lazy invalidation.
  Way* Find(Addr line_addr, Cycles now);
  const Way* FindConst(Addr line_addr, Cycles now) const;

  CacheLevelConfig config_;
  size_t sets_;
  std::vector<Way> ways_;
  uint64_t tick_ = 0;
};

}  // namespace pmemsim

#endif  // SRC_CACHE_CACHE_H_
