// Set-associative write-back cache with LRU replacement and lazy, timed
// invalidation (used to model the window between a clwb retiring and its
// cache-side invalidation becoming visible to younger unordered loads on G1).
//
// Storage is struct-of-arrays, tuned for the scan-dominated access pattern:
// every simulated load probes (and every nt-store snoops) all ways of a set
// in each level, and most of those scans miss. The per-way hot word packs the
// 64-aligned line tag with the valid/dirty/prefetched flags in its low bits,
// so a whole 8-way set scan reads one host cache line instead of a dozen.
// A per-set valid-way bitmask drives every scan — probes, snoops and victim
// picks visit only occupied ways, and an nt-store stream invalidating
// against caches it never fills (the ntstore hot-path shape) costs one load
// per level instead of a tag walk. The rest of a set's state (LRU ticks,
// fill-ready times, scheduled invalidations) lives in the same contiguous
// per-set block right behind its tag words, so a probe's memory fetch also
// covers the victim scan and LRU update of the insert that typically
// follows a miss — the dominant cost at simulation scale is host cache
// misses on these arrays, not instructions. Way-order semantics — victim
// choice, LRU updates, lazy invalidation — are identical to the
// straightforward array-of-structs implementation this replaces.

#ifndef SRC_CACHE_CACHE_H_
#define SRC_CACHE_CACHE_H_

#include <bit>
#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "src/common/config.h"
#include "src/common/types.h"

namespace pmemsim {

struct EvictedLine {
  Addr line = 0;
  bool valid = false;
  bool dirty = false;
};

class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheLevelConfig& config);

  // Touches the line if present: updates LRU, optionally marks dirty.
  // Returns true on hit. Applies any due pending invalidation first.
  // `was_prefetched` (optional) reports whether this was the first demand
  // touch of a prefetched line (the flag is cleared by the touch).
  // `available_at` (optional) reports when the data is usable: an in-flight
  // prefetch fill hit is not ready before its memory access completes.
  bool Access(Addr line_addr, Cycles now, bool mark_dirty, bool* was_prefetched = nullptr,
              Cycles* available_at = nullptr);

  // Non-mutating presence check (honors pending invalidations).
  bool Probe(Addr line_addr, Cycles now) const;

  // Inserts the line, evicting the set's LRU way if needed. `ready_at` marks
  // when the fill's data arrives (prefetch fills are issued asynchronously).
  EvictedLine Insert(Addr line_addr, Cycles now, bool dirty, bool prefetched,
                     Cycles ready_at = 0);

  struct InvalidateResult {
    bool was_present = false;
    bool was_dirty = false;
  };

  // Immediate invalidation (clflush/clflushopt effect, nt-store snoop).
  InvalidateResult Invalidate(Addr line_addr);

  // clwb effect: clears dirty. If `retain` (G2) the line stays valid clean;
  // otherwise (G1) it is scheduled to invalidate at `invalidate_at`.
  InvalidateResult WriteBack(Addr line_addr, Cycles invalidate_at, bool retain);

  // If the line is present and was filled by a prefetch that has not been
  // demand-touched yet, clears the flag and returns true.
  bool ConsumePrefetchedFlag(Addr line_addr, Cycles now);

  // Applies a scheduled (pending) invalidation immediately, if one exists.
  // Used by mfence, which orders younger loads after the flush's effects.
  void ApplyPendingInvalidate(Addr line_addr);

  Cycles hit_latency() const { return config_.hit_latency; }
  size_t sets() const { return sets_; }
  uint32_t ways() const { return config_.ways; }

  // Host-side hint: start fetching the set's hot words (tags + LRU) ahead of
  // the probe/insert that is about to scan them. No simulated effect — purely
  // overlaps the host memory latency of multi-level lookups.
  void PrefetchSet(Addr line_addr) const {
    const size_t set = SetIndex(CacheLineBase(line_addr));
    __builtin_prefetch(&valid_mask_[set]);
    const uint64_t* block = blocks_.get() + set * stride_;
    // Cover the tag and LRU words (the demand path's whole footprint).
    for (uint32_t off = 0; off < 2 * config_.ways; off += 8) {
      __builtin_prefetch(block + off);
    }
  }

  void Clear();

 private:
  // Hot per-way word: 64-aligned line tag | flags (line addresses leave the
  // low 6 bits free).
  static constexpr Addr kValid = 1;
  static constexpr Addr kDirty = 2;
  static constexpr Addr kPrefetched = 4;
  static constexpr Addr kTagMask = ~Addr{63};

  // True iff the way holds `line` (a CacheLineBase value) and is valid.
  static bool TagMatches(Addr hot, Addr line) {
    return ((hot ^ line) & (kTagMask | kValid)) == kValid;
  }

  size_t SetIndex(Addr line_addr) const {
    const uint64_t n = line_addr / kCacheLineSize;
    // Real set counts are usually powers of two; skip the hardware divide
    // when they are (it sits on every probe's address path otherwise).
    if (set_mask_ != 0) {
      return static_cast<size_t>(n & set_mask_);
    }
    // Non-pow2 (the G1/G2 L3s): division-free multiply-shift modulo.
    // With M = ceil(2^64 / d) precomputed, r = mulhi((M * n) mod 2^64, d)
    // equals n % d exactly while n < 2^64/d - d (proof sketch: write
    // n = q*d + r; then M*n mod 2^64 = q*e + M*r where e = M*d - 2^64 < d,
    // and mulhi of that by d is r + floor((q*e + r*e)/2^64)*... = r because
    // q*e + M*r stays below 2^64 under the bound). The constructor enforces
    // the bound for every address the simulator can produce.
    using U128 = unsigned __int128;
    const uint64_t frac = mod_mul_ * n;  // (M * n) mod 2^64
    return static_cast<size_t>(static_cast<uint64_t>((static_cast<U128>(frac) * sets_) >> 64));
  }

  // A set's state is one contiguous 64 B-aligned block of stride_ words —
  // [tags][lru][ready_at][pending_at] (padded to a whole host line) — so the
  // probe's fetch of the tag words also pulls (or hardware-prefetches) the
  // LRU words the insert after a miss scans. The ready_at/pending_at
  // quarters are cold: per-set ready/pending bitmasks gate every read and
  // write of them, so the demand path never touches those lines at all.
  // `w` below is a block-coordinate way handle: set * stride_ + way.
  Addr& Tag(size_t w) { return blocks_[w]; }
  Addr Tag(size_t w) const { return blocks_[w]; }
  uint64_t& Lru(size_t w) { return blocks_[w + config_.ways]; }
  Cycles& ReadyAt(size_t w) { return blocks_[w + 2 * config_.ways]; }
  Cycles ReadyAt(size_t w) const { return blocks_[w + 2 * config_.ways]; }
  Cycles& PendingAt(size_t w) { return blocks_[w + 3 * config_.ways]; }
  Cycles PendingAt(size_t w) const { return blocks_[w + 3 * config_.ways]; }

  static constexpr size_t kNone = ~size_t{0};
  // Returns the block-coordinate way handle holding the line or kNone;
  // applies lazy invalidation. `set_out` receives the set index.
  size_t FindWay(Addr line_addr, Cycles now, size_t* set_out);
  size_t FindWayConst(Addr line_addr, Cycles now) const;
  // The mask bit is the truth for pending/ready state; the block words are
  // only meaningful while their bit is set, so clearing is a bit operation.
  void ClearPending(size_t set, size_t w) {
    pending_mask_[set] &= ~(1u << (w - set * stride_));
  }
  void ClearValid(size_t set, size_t w) {
    Tag(w) &= ~kValid;
    valid_mask_[set] &= ~(1u << (w - set * stride_));
  }

  struct Aligned64Delete {
    void operator()(uint64_t* p) const { ::operator delete[](p, std::align_val_t{64}); }
  };

  CacheLevelConfig config_;
  size_t sets_;
  size_t stride_;         // 4 * ways rounded up to whole 64 B lines
  size_t block_words_;    // sets_ * stride_
  uint64_t set_mask_;     // sets_ - 1 when sets_ is a power of two, else 0
  uint64_t mod_mul_;      // ceil(2^64 / sets_) when set_mask_ == 0, else 0
  uint32_t ways_mask_;    // low config_.ways bits set
  std::unique_ptr<uint64_t[], Aligned64Delete> blocks_;  // set-contiguous
  std::vector<uint32_t> valid_mask_;    // per set: bit i = way i valid
  std::vector<uint32_t> ready_mask_;    // per set: bit i = way i has a
                                        // nonzero fill-ready time
  std::vector<uint32_t> pending_mask_;  // per set: bit i = way i has a
                                        // scheduled invalidation
  uint64_t tick_ = 0;
};

// Inline definitions for the four members on the per-access hot path
// (probe, touch, fill). They are called several times per simulated load —
// once per level — from other translation units; defining them here lets
// those call sites fold the set-index math and mask loads together instead
// of paying an opaque cross-TU call per level.

inline size_t SetAssocCache::FindWay(Addr line_addr, Cycles now, size_t* set_out) {
  const Addr line = CacheLineBase(line_addr);
  const size_t set = SetIndex(line);
  *set_out = set;
  const size_t base = set * stride_;
  const uint32_t pending = pending_mask_[set];
  for (uint32_t m = valid_mask_[set]; m != 0; m &= m - 1) {
    const uint32_t i = static_cast<uint32_t>(std::countr_zero(m));
    if (TagMatches(Tag(base + i), line)) {
      if ((pending & (1u << i)) != 0 && now >= PendingAt(base + i)) {
        ClearValid(set, base + i);  // the scheduled invalidation has taken effect
        return kNone;
      }
      return base + i;
    }
  }
  return kNone;
}

inline size_t SetAssocCache::FindWayConst(Addr line_addr, Cycles now) const {
  const Addr line = CacheLineBase(line_addr);
  const size_t set = SetIndex(line);
  const size_t base = set * stride_;
  const uint32_t pending = pending_mask_[set];
  for (uint32_t m = valid_mask_[set]; m != 0; m &= m - 1) {
    const uint32_t i = static_cast<uint32_t>(std::countr_zero(m));
    if (TagMatches(Tag(base + i), line)) {
      if ((pending & (1u << i)) != 0 && now >= PendingAt(base + i)) {
        return kNone;
      }
      return base + i;
    }
  }
  return kNone;
}

inline bool SetAssocCache::Access(Addr line_addr, Cycles now, bool mark_dirty,
                                  bool* was_prefetched, Cycles* available_at) {
  size_t set;
  const size_t w = FindWay(line_addr, now, &set);
  if (w == kNone) {
    if (was_prefetched != nullptr) {
      *was_prefetched = false;
    }
    return false;
  }
  const uint32_t bit = 1u << (w - set * stride_);
  Lru(w) = ++tick_;
  if (mark_dirty) {
    Tag(w) |= kDirty;
    // A new store supersedes any scheduled clwb invalidation.
    pending_mask_[set] &= ~bit;
  }
  if (was_prefetched != nullptr) {
    *was_prefetched = (Tag(w) & kPrefetched) != 0;
  }
  if (available_at != nullptr) {
    *available_at = (ready_mask_[set] & bit) != 0 && ReadyAt(w) > now ? ReadyAt(w) : now;
  }
  Tag(w) &= ~kPrefetched;
  ready_mask_[set] &= ~bit;  // data is (or becomes) demand-visible now
  return true;
}

inline bool SetAssocCache::Probe(Addr line_addr, Cycles now) const {
  return FindWayConst(line_addr, now) != kNone;
}

inline EvictedLine SetAssocCache::Insert(Addr line_addr, Cycles now, bool dirty, bool prefetched,
                                         Cycles ready_at) {
  const Addr line = CacheLineBase(line_addr);
  const size_t set = SetIndex(line);
  const size_t base = set * stride_;

  // Already present: refresh in place.
  for (uint32_t m = valid_mask_[set]; m != 0; m &= m - 1) {
    const uint32_t i = static_cast<uint32_t>(std::countr_zero(m));
    Addr& t = Tag(base + i);
    if (TagMatches(t, line)) {
      Lru(base + i) = ++tick_;
      if (dirty) {
        t |= kDirty;
      }
      if (!prefetched) {
        t &= ~kPrefetched;
      }
      pending_mask_[set] &= ~(1u << i);
      return {};
    }
  }

  // Pick the first invalid-or-expired way in way order (expired pending
  // invalidations count as invalid and are dropped, not evicted), else the
  // LRU way.
  uint32_t free = ~valid_mask_[set] & ways_mask_;
  for (uint32_t m = pending_mask_[set] & valid_mask_[set]; m != 0; m &= m - 1) {
    const uint32_t i = static_cast<uint32_t>(std::countr_zero(m));
    if (now >= PendingAt(base + i)) {
      free |= 1u << i;
    }
  }
  size_t victim;
  if (free != 0) {
    victim = base + static_cast<uint32_t>(std::countr_zero(free));
    ClearValid(set, victim);
  } else {
    victim = base;
    for (uint32_t i = 1; i < config_.ways; ++i) {
      if (Lru(base + i) < Lru(victim)) {
        victim = base + i;
      }
    }
  }

  EvictedLine evicted;
  if ((Tag(victim) & kValid) != 0) {
    evicted = {Tag(victim) & kTagMask, true, (Tag(victim) & kDirty) != 0};
  }
  const uint32_t bit = 1u << (victim - base);
  Tag(victim) = line | kValid | (dirty ? kDirty : 0) | (prefetched ? kPrefetched : 0);
  valid_mask_[set] |= bit;
  pending_mask_[set] &= ~bit;
  if (ready_at != 0) {
    ReadyAt(victim) = ready_at;
    ready_mask_[set] |= bit;
  } else {
    ready_mask_[set] &= ~bit;
  }
  Lru(victim) = ++tick_;
  return evicted;
}

}  // namespace pmemsim

#endif  // SRC_CACHE_CACHE_H_
