// Abstract memory DIMM as seen by the integrated memory controller: a sink
// for 64 B cacheline reads and writes with its own notion of time.

#ifndef SRC_DIMM_DIMM_H_
#define SRC_DIMM_DIMM_H_

#include "src/common/types.h"
#include "src/trace/attribution.h"
#include "src/trace/counters.h"

namespace pmemsim {

struct DimmReadResult {
  Cycles complete_at = 0;   // when the data is available at the iMC
  Cycles stalled_for = 0;   // portion spent waiting on an in-flight persist
  // Latency attribution: populated fields sum exactly to complete_at - now
  // (the span the DIMM charged this read). Plain field writes of values the
  // timing code already computed; consumed only when --breakdown is on.
  MemStageBreakdown stages;
};

struct DimmWriteResult {
  // When the written value becomes readable on the DIMM. DDR-T writes are
  // asynchronous: acceptance is persistence, visibility lags (paper §3.5).
  Cycles visible_at = 0;
  // Back-pressure signal: the earliest time the DIMM wants the next write
  // (non-zero when absorbing this write forced media evictions and the media
  // write ports are saturated). The WPQ delays subsequent drains until then.
  Cycles backpressure_until = 0;
};

class Dimm {
 public:
  virtual ~Dimm() = default;

  // Serves a 64 B read request arriving at `now`. `ordered` marks loads that
  // execute under a full memory fence: their read-after-persist stalls are
  // fully exposed, while unordered loads overlap part of the stall with other
  // work in the out-of-order window.
  virtual DimmReadResult Read(Addr line_addr, Cycles now, bool ordered) = 0;

  // Accepts a 64 B write draining from the WPQ at `now`.
  virtual DimmWriteResult Write(Addr line_addr, Cycles now) = 0;

  virtual MemoryKind kind() const = 0;

  // If the cacheline has a persist in flight, the time it becomes visible;
  // 0 otherwise (read-after-persist stalls).
  virtual Cycles PendingVisibleAt(Addr line_addr) const = 0;

  // Earliest time a new persist to the line may be accepted (same-address
  // write ordering); 0 = no constraint.
  virtual Cycles SameLineStallUntil(Addr line_addr) const = 0;

  // Drops all buffered state and port schedules (fresh benchmark runs).
  virtual void Reset() = 0;
};

}  // namespace pmemsim

#endif  // SRC_DIMM_DIMM_H_
