# Empty dependencies file for dimm_test.
# This may be replaced when dependencies are built.
