# Empty dependencies file for pmemsim_crashcheck.
# This may be replaced when dependencies are built.
