// Platform configuration: every tunable constant of the simulated machine.
//
// Two presets mirror the paper's testbeds:
//   G1: dual Xeon Gold 6320 @ 2.1 GHz + 100-series Optane DCPMM
//   G2: dual Xeon Gold 5317 @ 3.0 GHz + 200-series Optane DCPMM
//
// Latency constants are calibrated so the paper's anchor measurements hold
// (see DESIGN.md §1); every structural parameter (buffer sizes, policies,
// granularities) comes directly from the paper's findings.

#ifndef SRC_COMMON_CONFIG_H_
#define SRC_COMMON_CONFIG_H_

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "src/common/types.h"

namespace pmemsim {

// One CPU cache level.
struct CacheLevelConfig {
  uint64_t size_bytes = 0;
  uint32_t ways = 8;
  Cycles hit_latency = 4;
};

struct CacheConfig {
  CacheLevelConfig l1;
  CacheLevelConfig l2;
  CacheLevelConfig l3;

  // G2 platforms retain the cacheline (clean) after clwb; G1 invalidates it.
  bool clwb_retains_line = false;

  // Cycles between a clwb retiring and its cache-side effect (invalidation on
  // G1) plus its dispatch toward the iMC becoming architecturally visible to
  // younger, unordered loads. Models the out-of-order window that lets a load
  // under sfence still hit the cache for very recently flushed lines.
  Cycles clwb_dispatch_delay = 400;

  // Default prefetcher enables (each is runtime-toggleable as with the BIOS
  // switches on the testbeds).
  bool adjacent_line_prefetch = true;
  bool dcu_streamer_prefetch = true;
  bool l2_stream_prefetch = true;

  // How many lines ahead the L2 stream prefetcher runs once a stream locks.
  uint32_t stream_prefetch_degree = 2;
};

// Optane DIMM internals (per DIMM).
struct OptaneDimmConfig {
  // --- on-DIMM read buffer (paper §3.1) ---
  uint64_t read_buffer_bytes = KiB(16);  // 16 KB on G1, 22 KB on G2
  // Ablation knobs; hardware behaves FIFO + exclusive (DESIGN.md).
  uint8_t read_buffer_eviction = 0;   // 0 = FIFO, 1 = LRU
  bool read_buffer_exclusive = true;
  uint8_t write_buffer_eviction = 0;  // 0 = random, 1 = oldest-first

  // --- on-DIMM write-combining buffer (paper §3.2) ---
  uint64_t write_buffer_bytes = KiB(16);
  // Entries reserved for write-back staging; usable capacity for partially
  // written XPLines is (write_buffer_bytes/256 - reserve). 16 on G1 yields the
  // observed 12 KB knee.
  uint32_t write_buffer_partial_reserve = 16;
  // G1 writes fully-modified XPLines back to media periodically (~5000 cycles);
  // G2 disables this.
  bool periodic_full_writeback = true;
  Cycles full_writeback_period = 5000;
  // G1 evicts in a batch when the buffer overflows (sharp hit-ratio cliff);
  // G2 evicts one random victim at a time (graceful decay).
  bool batch_evict = true;
  // Fraction of occupied entries retained after a batch eviction.
  double batch_evict_keep_fraction = 0.5;

  // --- service latencies (cycles) ---
  Cycles buffer_hit_latency = 90;    // DDR-T round trip hitting an on-DIMM buffer
  Cycles media_read_latency = 420;   // 256 B XPLine fetch from 3D-Xpoint media
  Cycles media_write_latency = 480;  // 256 B XPLine program to media

  // Media access ports: limits concurrency (reads scale, writes do not).
  uint32_t media_read_ports = 12;
  uint32_t media_write_ports = 4;

  // --- address indirection table (AIT) ---
  // On-DIMM AIT cache covers this much of the media before translations miss.
  uint64_t ait_cache_coverage_bytes = MiB(16);
  Cycles ait_miss_penalty = 210;

  // --- asynchronous write pipeline (DDR-T; paper §3.5) ---
  // Delay between a write being accepted at the WPQ and its value becoming
  // readable on the DIMM. Reads to a line with an in-flight persist stall
  // until it elapses: the source of read-after-persist latency.
  Cycles write_visible_delay = 2100;

  // G1 enforces same-address ordering at the DIMM: a second persist to a
  // cacheline arriving within `same_line_stall_window` of the previous one
  // stalls until the window elapses (the repeated-flush penalty behind the
  // B+-tree case study, §4.2). G2 merges same-line writes and does not stall.
  bool same_line_flush_stall = true;
  Cycles same_line_stall_window = 550;

  // Portion of a read-after-persist stall hidden by the out-of-order window
  // when the load is NOT ordered by a full fence (clwb+sfence leaves loads
  // free to issue early; clwb+mfence exposes the whole stall — Fig. 7).
  Cycles unordered_read_overlap = 800;
};

// Conventional DRAM DIMM model.
struct DramConfig {
  Cycles load_latency = 190;
  Cycles store_accept_latency = 35;
  // DDR4 writes are synchronous; the visible delay is short.
  Cycles write_visible_delay = 420;
  Cycles unordered_read_overlap = 380;
  uint32_t ports = 12;
  Cycles port_service = 30;
};

// Integrated memory controller.
struct ImcConfig {
  uint32_t wpq_entries = 16;        // per-DIMM write pending queue depth
  Cycles wpq_accept_latency = 120;   // store/flush acceptance into the ADR domain
  Cycles wpq_drain_latency = 30;    // WPQ -> DIMM write-buffer transfer
  uint32_t rpq_entries = 32;        // read pending queue depth (bookkeeping)
  Cycles read_overhead = 25;        // iMC processing per read request
  uint32_t optane_dimm_count = 6;
  uint64_t interleave_granularity = kPageSize;  // 4 KB PM interleave
  Cycles numa_hop_latency = 180;    // one-way socket interconnect hop
};

// Core execution-model constants.
struct CpuConfig {
  // Outstanding (not yet WPQ-accepted) flushes/nt-stores a thread may have
  // before issuing another stalls — the store-buffer back-pressure that bounds
  // relaxed-persistency throughput.
  uint32_t store_buffer_depth = 48;
  Cycles fence_cost = 8;        // sfence/mfence pipeline cost beyond waiting
  Cycles store_issue_cost = 2;  // retire cost of a cached store
  // A store that misses the caches is posted: the RFO runs in the background
  // (bandwidth is consumed, the line fills) while the pipeline only pays this
  // store-buffer cost. Write latency staying flat across WSS (Fig. 8c) rests
  // on this.
  Cycles store_miss_post_cost = 18;
  Cycles nt_store_issue_cost = 6;
  Cycles flush_issue_cost = 2;  // clwb/clflushopt retire cost
  Cycles simd_copy_cost = 14;   // per-64 B AVX load+store pair (Algorithm 2)
};

struct PlatformConfig {
  std::string name;
  Generation generation = Generation::kG1;
  double cpu_ghz = 2.1;

  CacheConfig cache;
  CpuConfig cpu;
  OptaneDimmConfig optane;
  DramConfig dram;
  ImcConfig imc;

  // Extended ADR: CPU caches are persistent, no flushes needed. The paper's
  // G2 testbed runs with eADR disabled; kept as a hook for experiments.
  bool eadr_enabled = false;
};

// Paper testbed presets.
PlatformConfig G1Platform();
PlatformConfig G2Platform();

// The platform the paper could not yet measure (§6): G2 with eADR enabled —
// CPU caches inside the persistence domain, cacheline flushes unnecessary.
PlatformConfig G2EadrPlatform();

// Convenience: preset selected by generation.
PlatformConfig PlatformFor(Generation gen);

// Preset selected by a command-line name: "g1", "g2", or "g2-eadr"
// (case-insensitive). Returns nullopt for unknown names so callers can route
// the error through their own flag-rejection path.
std::optional<PlatformConfig> PlatformByName(std::string_view name);

}  // namespace pmemsim

#endif  // SRC_COMMON_CONFIG_H_
