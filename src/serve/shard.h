// One shard of the serving tier: a datastore instance (CCEH, FAST&FAIR, or
// FlatLog) behind a bounded admission queue, fed by a closed- or open-loop
// client population and served by M worker ThreadContexts.
//
// Event model (all in simulated time, driven by the lockstep scheduler):
//  * arrivals live in a pending set — a (time, client) min-heap for the
//    closed loop, a lazily-advanced Poisson cursor for the open loop;
//  * admission is processed by whichever worker observes simulated time
//    first: CatchUpAdmissions(now) folds every arrival <= now into the
//    bounded queue in arrival order, shedding on full. Because the lockstep
//    scheduler only ever steps the minimum-clock job, claims and catch-ups
//    happen in global clock order, so queue occupancy — and therefore every
//    shed decision — is a pure function of the seed;
//  * a shed open-loop arrival is dropped; a shed closed-loop client backs
//    off one think time and retries (each retry is a new offered op);
//  * request content (op category, key) is materialized at admission time
//    from the shard's MixSampler and skewed key generator, so the request
//    stream is deterministic per seed whatever the worker interleaving.
//
// The shard owns a per-shard AttributionCollector; the tier installs it on
// the shard's worker contexts for the serving phase so the memory-side tail
// decomposition (media/buffer/RAP/WPQ-wait) is reported per shard.
//
// The datastore itself lives behind ShardStore, shared with the partitioned
// engine's Domain (src/serve/domain_tier.*): one class owns store
// construction/sizing and the per-kind op dispatch, so both engines serve
// byte-identical store behaviour.

#ifndef SRC_SERVE_SHARD_H_
#define SRC_SERVE_SHARD_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"
#include "src/core/system.h"
#include "src/cpu/thread_context.h"
#include "src/datastores/cceh.h"
#include "src/datastores/fast_fair.h"
#include "src/datastores/flat_log.h"
#include "src/serve/request.h"
#include "src/serve/request_queue.h"
#include "src/serve/service_stats.h"
#include "src/trace/attribution.h"
#include "src/trace/serve_metrics.h"
#include "src/trace/span.h"
#include "src/workload/ycsb.h"
#include "src/workload/zipf.h"

namespace pmemsim {

enum class StoreKind : uint8_t { kCceh, kFastFair, kFlatLog };
const char* StoreName(StoreKind kind);
// nullopt for unknown names ("cceh" | "fastfair" | "flatlog").
std::optional<StoreKind> StoreByName(const std::string& name);

enum class LoopMode : uint8_t { kClosed, kOpen };
const char* LoopModeName(LoopMode mode);

// Decorrelated per-(shard, stream) seed so every stochastic source — load-key
// order, op mix, key skew, think times, arrivals — draws from its own stream.
// Shared by the legacy shard and the partitioned engine's tier dispatcher.
uint64_t ServeSubSeed(uint64_t seed, uint32_t shard, uint32_t stream);

// TraceMarker id emitted on every worker context when the measured serve
// phase opens. The marker is the trace-visible twin of the queue's
// BeginPhase() accounting boundary (src/serve/request_queue.h).
constexpr uint32_t kServePhaseMarker = 0x5345u;  // "SE"

// Tier-wide configuration; every count is per shard unless noted.
struct ServeConfig {
  StoreKind store = StoreKind::kFastFair;
  LoopMode loop = LoopMode::kClosed;
  std::string mix_name = "b";
  YcsbMix mix = YcsbMix{0.95, 0.05, 0, 0, 0};
  uint32_t shards = 4;
  uint32_t workers_per_shard = 2;
  uint64_t queue_depth = 64;
  uint64_t batch = 8;              // max requests a worker claims at once
  uint32_t clients = 8;            // closed loop: client population
  double think_cycles = 4000;      // closed loop: mean exponential think time
  double interarrival_cycles = 1500;  // open loop: mean Poisson inter-arrival
  uint64_t ops = 20000;            // admission attempts (offered ops) budget
  uint64_t keys = 20000;           // preloaded key population
  double theta = 0.99;             // Zipfian skew of the hot-key distribution
  uint32_t scan_len = 16;          // YCSB-E scan length
  uint64_t seed = 42;
  // Partitioned engine only (DomainTier): host threads advancing the shard
  // domains of one point, and the modelled client->shard dispatch latency in
  // cycles — also the conservative epoch window. engine_threads does not
  // change any simulated result (that is the determinism contract);
  // dispatch_latency does (it is part of the simulated model).
  uint32_t engine_threads = 1;
  Cycles dispatch_latency = 2048;
};

// One datastore instance of `kind` behind a uniform point-op API. Owns store
// construction and sizing: `preload_keys` records will be inserted before
// serving and append-only stores additionally reserve `append_budget` writes.
// Construction is timed on `loader`, like a real preload.
class ShardStore {
 public:
  ShardStore(System* system, StoreKind kind, uint64_t preload_keys, uint64_t append_budget,
             ThreadContext& loader);

  bool Get(ThreadContext& ctx, uint64_t key, uint64_t* value_out);
  // False when the key was absent (FAST&FAIR in-place update miss); append
  // exhaustion on FlatLog is counted in store_full() instead.
  bool Update(ThreadContext& ctx, uint64_t key, uint64_t value);
  void Insert(ThreadContext& ctx, uint64_t key, uint64_t value);
  // Ordered range scan; valid only when ordered() (callers emulate ranges on
  // hash-shaped stores as consecutive point reads).
  void TreeScan(ThreadContext& ctx, uint64_t from, uint32_t len);
  bool ordered() const { return kind_ == StoreKind::kFastFair; }
  // Durability point after the preload (FlatLog batches its appends).
  void FlushPreload(ThreadContext& ctx);
  uint64_t store_full() const { return store_full_; }

 private:
  StoreKind kind_;
  // Exactly one store is non-null, selected by `kind`.
  std::unique_ptr<Cceh> cceh_;
  std::unique_ptr<FastFairTree> tree_;
  std::unique_ptr<FlatLog> flat_;
  uint64_t store_full_ = 0;  // FlatLog appends refused (log exhausted)
};

class Shard {
 public:
  // Builds the shard's store (construction is timed on `loader`, the shard's
  // first worker context, like a real preload).
  Shard(System* system, const ServeConfig& cfg, uint32_t index, ThreadContext& loader);

  // --- load phase (one preloaded key per call, timed on `ctx`) ---
  bool LoadStep(ThreadContext& ctx);  // false once all cfg.keys are loaded

  // --- serving phase ---
  void StartServing(Cycles t0);

  // Installs (or clears, with nullptrs) the observability sinks for the serve
  // phase. Pay-for-use: with none installed, the hot path costs one pointer
  // test per event. Install before StartServing (which emits the opening
  // queue-depth observation); either pointer may be null independently.
  void SetObservability(ServeMetrics* metrics, SpanRecorder* spans);

  // Snapshots the shard collector's per-stage totals before a request's
  // Execute; CompleteRequest reads the deltas back as the request's stage
  // decomposition. One Execute runs within one uninterrupted scheduler step
  // of one worker, so the delta belongs to exactly that request. No-op
  // without a span recorder.
  void BeginSpan();

  // Folds every pending arrival with time <= now into the bounded queue, in
  // arrival order, shedding on full (see file comment for the loop policies).
  void CatchUpAdmissions(Cycles now);

  // Claims up to cfg.batch queued requests for a worker observing simulated
  // time `now` (the post-claim queue-depth gauge point). Returns the count.
  size_t ClaimBatch(Cycles now, std::vector<Request>* out);

  // Executes one request against the store on `ctx` (clock advances).
  void Execute(ThreadContext& ctx, const Request& r);

  // Records the completion and, in the closed loop, schedules the client's
  // next request one think time after `end`.
  void CompleteRequest(const Request& r, Cycles start, Cycles end);

  // True when no arrival is pending, the queue is empty, and no claimed
  // request is still in flight — the shard will never produce work again.
  bool Drained() const;

  // The next pending arrival time (> the last CatchUpAdmissions clock), or
  // nullopt when none is scheduled. Idle workers park just past this.
  std::optional<Cycles> NextArrivalTime() const;

  uint32_t index() const { return index_; }
  const RequestQueue& queue() const { return queue_; }
  ServiceStats& stats() { return stats_; }
  const ServiceStats& stats() const { return stats_; }
  AttributionCollector& attribution() { return attribution_; }
  // Copies the queue's offered/rejected counters into stats() (end of run).
  void FinalizeStats();

 private:
  struct PendingArrival {
    Cycles time;
    uint32_t client;
    bool operator>(const PendingArrival& o) const {
      return time != o.time ? time > o.time : client > o.client;
    }
  };

  Request Materialize(Cycles time, uint32_t client);
  uint64_t SkewedKey();
  Cycles ThinkDraw();  // exponential, mean cfg.think_cycles, >= 1
  // Store dispatch (via store_; scan emulation for hash-shaped stores).
  bool StoreGet(ThreadContext& ctx, uint64_t key, uint64_t* value_out);
  void StoreUpdate(ThreadContext& ctx, uint64_t key, uint64_t value);
  void StoreInsert(ThreadContext& ctx, uint64_t key, uint64_t value);
  void StoreScan(ThreadContext& ctx, uint64_t from, uint32_t len);

  const ServeConfig& cfg_;
  uint32_t index_;

  RequestQueue queue_;
  ServiceStats stats_;
  AttributionCollector attribution_;
  ServeMetrics* metrics_ = nullptr;       // not owned; null = observability off
  SpanRecorder* span_recorder_ = nullptr; // not owned
  Cycles span_stage_base_[AttributionCollector::kStageCount] = {};

  MixSampler mix_sampler_;
  ZipfGenerator zipf_;
  Rng think_rng_;
  bool latest_skew_ = false;  // mix D: reads target the newest keys
  uint64_t key_scramble_salt_;

  uint64_t next_insert_key_;
  ShardStore store_;

  std::vector<uint64_t> load_keys_;
  uint64_t loaded_ = 0;

  // Closed loop: pending client re-issues. Open loop: the Poisson cursor.
  std::priority_queue<PendingArrival, std::vector<PendingArrival>, std::greater<PendingArrival>>
      pending_;
  PoissonArrivalGenerator arrivals_;
  Cycles serve_start_ = 0;
  Cycles next_open_arrival_ = 0;
  uint64_t open_issued_ = 0;   // open loop: arrivals issued so far
  uint64_t scheduled_ = 0;     // closed loop: attempts issued or pending
  uint32_t open_seq_ = 0;
  uint64_t in_flight_ = 0;     // claimed but not yet completed
};

}  // namespace pmemsim

#endif  // SRC_SERVE_SHARD_H_
