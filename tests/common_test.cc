// Tests for src/common: types/address math, RNG, stats, backing store, config.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <map>
#include <set>
#include <vector>

#include "src/common/backing_store.h"
#include "src/common/config.h"
#include "src/common/random.h"
#include "src/common/stats.h"
#include "src/common/types.h"

namespace pmemsim {
namespace {

TEST(TypesTest, AddressMath) {
  EXPECT_EQ(CacheLineBase(0), 0u);
  EXPECT_EQ(CacheLineBase(63), 0u);
  EXPECT_EQ(CacheLineBase(64), 64u);
  EXPECT_EQ(XPLineBase(255), 0u);
  EXPECT_EQ(XPLineBase(256), 256u);
  EXPECT_EQ(LineIndexInXPLine(0), 0u);
  EXPECT_EQ(LineIndexInXPLine(64), 1u);
  EXPECT_EQ(LineIndexInXPLine(128), 2u);
  EXPECT_EQ(LineIndexInXPLine(192 + 63), 3u);
  EXPECT_EQ(PageBase(4097), 4096u);
  EXPECT_TRUE(IsXPLineAligned(512));
  EXPECT_FALSE(IsXPLineAligned(576));
  EXPECT_EQ(AlignUp(1, 256), 256u);
  EXPECT_EQ(AlignUp(256, 256), 256u);
  EXPECT_EQ(KiB(16), 16384u);
  EXPECT_EQ(MiB(1), 1048576u);
}

TEST(TypesTest, XPLineHoldsFourCacheLines) {
  EXPECT_EQ(kXPLineSize / kCacheLineSize, kLinesPerXPLine);
  EXPECT_EQ(kLinesPerXPLine, 4u);
}

TEST(RandomTest, DeterministicFromSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) {
    differs |= a2.Next() != c.Next();
  }
  EXPECT_TRUE(differs);
}

TEST(RandomTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RandomTest, NextBelowCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.NextBelow(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomTest, NextDoubleUnit) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RandomTest, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RandomTest, Mix64Distinct) {
  std::set<uint64_t> out;
  for (uint64_t i = 0; i < 1000; ++i) {
    out.insert(Mix64(i));
  }
  EXPECT_EQ(out.size(), 1000u);
}

TEST(StatsTest, RunningStatBasics) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  for (double x : {2.0, 4.0, 6.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.sum(), 12.0);
  EXPECT_NEAR(s.variance(), 4.0, 1e-9);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-9);
}

TEST(StatsTest, HistogramPercentiles) {
  Histogram h;
  for (uint64_t i = 1; i <= 1000; ++i) {
    h.Add(i);
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.Min(), 1u);
  EXPECT_EQ(h.Max(), 1000u);
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 500.0, 50.0);
  EXPECT_NEAR(static_cast<double>(h.Percentile(99)), 990.0, 80.0);
  EXPECT_NEAR(h.mean(), 500.5, 1e-6);
}

TEST(StatsTest, HistogramMerge) {
  Histogram a, b;
  for (uint64_t i = 0; i < 100; ++i) {
    a.Add(10);
    b.Add(1000);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.Min(), 10u);
  EXPECT_EQ(a.Max(), 1000u);
}

TEST(StatsTest, HistogramLargeValues) {
  Histogram h;
  h.Add(1ull << 40);
  h.Add(1);
  EXPECT_EQ(h.Max(), 1ull << 40);
  EXPECT_GE(h.Percentile(100), (1ull << 39));
}

// Reference model for Quantile: the exact rank-ceil(q*n) order statistic.
uint64_t ExactQuantile(std::vector<uint64_t> values, double q) {
  std::sort(values.begin(), values.end());
  size_t rank = static_cast<size_t>(std::ceil(q * static_cast<double>(values.size())));
  if (rank == 0) {
    rank = 1;
  }
  return values[rank - 1];
}

TEST(StatsTest, QuantileEmptyHistogramReturnsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.0), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
  EXPECT_EQ(h.Quantile(1.0), 0u);
}

TEST(StatsTest, QuantileExactForSingleValueBuckets) {
  // Values below 16 land in exact single-value buckets, so every quantile
  // must equal the reference order statistic exactly.
  Histogram h;
  std::vector<uint64_t> values;
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.NextBelow(16);
    h.Add(v);
    values.push_back(v);
  }
  for (double q : {0.01, 0.25, 0.50, 0.90, 0.99, 0.999}) {
    EXPECT_EQ(h.Quantile(q), ExactQuantile(values, q)) << "q=" << q;
  }
}

TEST(StatsTest, QuantileMatchesReferenceWithinBucketResolution) {
  // Wider log buckets bound the error by the sub-bucket width: 1/16 relative.
  Histogram h;
  std::vector<uint64_t> values;
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = 1 + rng.NextBelow(1u << 20);
    h.Add(v);
    values.push_back(v);
  }
  for (double q : {0.50, 0.90, 0.99, 0.999}) {
    const double expect = static_cast<double>(ExactQuantile(values, q));
    const double got = static_cast<double>(h.Quantile(q));
    EXPECT_NEAR(got, expect, expect / 8.0) << "q=" << q;
  }
}

TEST(StatsTest, QuantileEndpointsAndMonotonicity) {
  Histogram h;
  Rng rng(13);
  for (int i = 0; i < 3000; ++i) {
    h.Add(5 + rng.NextBelow(100000));
  }
  EXPECT_EQ(h.Quantile(0.0), h.Min());
  EXPECT_EQ(h.Quantile(1.0), h.Max());
  uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const uint64_t v = h.Quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

TEST(StatsTest, QuantileSingleSample) {
  Histogram h;
  h.Add(1234);
  for (double q : {0.0, 0.5, 0.999, 1.0}) {
    EXPECT_EQ(h.Quantile(q), 1234u);
  }
}

TEST(BackingStoreTest, ZeroFilledReads) {
  BackingStore bs;
  EXPECT_EQ(bs.ReadU64(0x1234), 0u);
  EXPECT_EQ(bs.allocated_pages(), 0u);  // reads never allocate
}

TEST(BackingStoreTest, ReadBackWrites) {
  BackingStore bs;
  bs.WriteU64(4096, 0xDEADBEEF);
  EXPECT_EQ(bs.ReadU64(4096), 0xDEADBEEFu);
  EXPECT_EQ(bs.allocated_pages(), 1u);
}

TEST(BackingStoreTest, CrossPageAccess) {
  BackingStore bs;
  uint8_t data[100];
  for (int i = 0; i < 100; ++i) {
    data[i] = static_cast<uint8_t>(i);
  }
  const Addr addr = kPageSize - 50;  // straddles a page boundary
  bs.Write(addr, data, sizeof(data));
  uint8_t out[100] = {};
  bs.Read(addr, out, sizeof(out));
  EXPECT_EQ(std::memcmp(data, out, sizeof(data)), 0);
  EXPECT_EQ(bs.allocated_pages(), 2u);
}

TEST(BackingStoreTest, ZeroRange) {
  BackingStore bs;
  bs.WriteU64(0, 7);
  bs.WriteU64(kPageSize, 9);
  bs.Zero(0, kPageSize);  // full page: dropped
  EXPECT_EQ(bs.ReadU64(0), 0u);
  EXPECT_EQ(bs.ReadU64(kPageSize), 9u);
  bs.Zero(kPageSize, 8);  // partial page: cleared in place
  EXPECT_EQ(bs.ReadU64(kPageSize), 0u);
}

TEST(BackingStoreTest, ColdReadsNeverAllocate) {
  BackingStore bs;
  uint8_t out[256];
  // Scattered cold reads across both radix regions (PM low, DRAM high) and
  // page boundaries: all zeros, no page materializes.
  const Addr probes[] = {0,
                         kPageSize - 1,
                         123 * kPageSize + 17,
                         (1ull << 30) + 5,
                         BackingStore::kDramRadixBase,
                         BackingStore::kDramRadixBase + 77 * kPageSize + 100};
  for (const Addr addr : probes) {
    EXPECT_EQ(bs.ReadU64(addr), 0u) << addr;
    bs.Read(addr, out, sizeof(out));
    for (uint8_t b : out) {
      ASSERT_EQ(b, 0u) << addr;
    }
  }
  EXPECT_EQ(bs.allocated_pages(), 0u);
}

TEST(BackingStoreTest, DramRegionIsIndependent) {
  // PM and DRAM addresses hang off separate radixes; same page offset in
  // each region must not alias.
  BackingStore bs;
  const Addr pm = 5 * kPageSize + 8;
  const Addr dram = BackingStore::kDramRadixBase + 5 * kPageSize + 8;
  bs.WriteU64(pm, 0xAAAA);
  bs.WriteU64(dram, 0xBBBB);
  EXPECT_EQ(bs.ReadU64(pm), 0xAAAAu);
  EXPECT_EQ(bs.ReadU64(dram), 0xBBBBu);
  EXPECT_EQ(bs.allocated_pages(), 2u);
  bs.Zero(pm - 8, kPageSize);
  EXPECT_EQ(bs.ReadU64(pm), 0u);
  EXPECT_EQ(bs.ReadU64(dram), 0xBBBBu);
  EXPECT_EQ(bs.allocated_pages(), 1u);
}

TEST(BackingStoreTest, ZeroDropsWholePagesAndClearsEdges) {
  BackingStore bs;
  // Three consecutive pages with data at the edges of each.
  for (int p = 0; p < 3; ++p) {
    bs.WriteU64(static_cast<Addr>(p) * kPageSize, 0x11);
    bs.WriteU64(static_cast<Addr>(p) * kPageSize + kPageSize - 8, 0x22);
  }
  ASSERT_EQ(bs.allocated_pages(), 3u);
  // Zero from mid-page 0 through mid-page 2: page 1 is dropped whole, the
  // partial edges are cleared in place, bytes outside the range survive.
  bs.Zero(kPageSize / 2, 2 * kPageSize);
  EXPECT_EQ(bs.allocated_pages(), 2u);  // page 1 gone
  EXPECT_EQ(bs.ReadU64(0), 0x11u);                          // before the range
  EXPECT_EQ(bs.ReadU64(kPageSize - 8), 0u);                 // page-0 tail cleared
  EXPECT_EQ(bs.ReadU64(kPageSize), 0u);                     // dropped page reads zero
  EXPECT_EQ(bs.ReadU64(2 * kPageSize), 0u);                 // page-2 head cleared
  EXPECT_EQ(bs.ReadU64(2 * kPageSize + kPageSize - 8), 0x22u);  // after the range
  // Zeroing never-written pages allocates nothing.
  bs.Zero(100 * kPageSize + 64, 3 * kPageSize);
  EXPECT_EQ(bs.allocated_pages(), 2u);
}

TEST(BackingStoreTest, AllocatedPagesStableAcrossChurn) {
  BackingStore bs;
  for (int round = 0; round < 3; ++round) {
    for (Addr p = 0; p < 8; ++p) {
      bs.WriteU64(p * kPageSize + 8 * p, 0xC0FFEE + p);
    }
    EXPECT_EQ(bs.allocated_pages(), 8u) << round;
    bs.Zero(0, 8 * kPageSize);
    EXPECT_EQ(bs.allocated_pages(), 0u) << round;
  }
  // Dropping then re-touching the last-page cache's page must re-materialize.
  bs.WriteU64(kPageSize, 1);
  bs.Zero(kPageSize, kPageSize);
  EXPECT_EQ(bs.ReadU64(kPageSize), 0u);
  bs.WriteU64(kPageSize, 2);
  EXPECT_EQ(bs.ReadU64(kPageSize), 2u);
  EXPECT_EQ(bs.allocated_pages(), 1u);
}

// Randomized mirror against a std::map-based reference store: same byte
// contents AND the same materialized-page set after arbitrary interleavings
// of Write/WriteU64/Read/ReadU64/Zero over both address regions.
class BackingStoreRadixFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BackingStoreRadixFuzz, MatchesReferenceStore) {
  BackingStore bs;
  std::map<Addr, std::array<uint8_t, kPageSize>> ref;  // page base -> bytes
  Rng rng(GetParam());
  const Addr span = 6 * kPageSize;

  auto ref_write = [&](Addr addr, const uint8_t* data, size_t len) {
    for (size_t k = 0; k < len; ++k) {
      const Addr a = addr + k;
      auto [it, fresh] = ref.try_emplace(PageBase(a));
      if (fresh) {
        it->second.fill(0);
      }
      it->second[a - PageBase(a)] = data[k];
    }
  };
  auto ref_read = [&](Addr a) -> uint8_t {
    const auto it = ref.find(PageBase(a));
    return it == ref.end() ? 0 : it->second[a - PageBase(a)];
  };

  for (int op = 0; op < 6000; ++op) {
    // Half the traffic in PM, half in DRAM address space.
    const Addr region = rng.NextBelow(2) == 0 ? 0 : BackingStore::kDramRadixBase;
    const Addr addr = region + rng.NextBelow(span);
    switch (rng.NextBelow(5)) {
      case 0: {  // bulk write, possibly page-straddling
        uint8_t data[300];
        const size_t len = 1 + rng.NextBelow(sizeof(data));
        for (size_t k = 0; k < len; ++k) {
          data[k] = static_cast<uint8_t>(rng.Next());
        }
        bs.Write(addr, data, len);
        ref_write(addr, data, len);
        break;
      }
      case 1: {  // u64 write (the hot path)
        const uint64_t v = rng.Next();
        const Addr a = region + (rng.NextBelow(span) & ~7ull);
        bs.WriteU64(a, v);
        uint8_t bytes[8];
        std::memcpy(bytes, &v, 8);
        ref_write(a, bytes, 8);
        break;
      }
      case 2: {  // zero a range; whole pages inside it vanish from ref too
        const uint64_t len = 1 + rng.NextBelow(2 * kPageSize);
        bs.Zero(addr, len);
        for (Addr a = addr; a < addr + len;) {
          const uint64_t in_page = a - PageBase(a);
          const uint64_t chunk = std::min<uint64_t>(addr + len - a, kPageSize - in_page);
          if (in_page == 0 && chunk == kPageSize) {
            ref.erase(a);
          } else if (const auto it = ref.find(PageBase(a)); it != ref.end()) {
            std::memset(it->second.data() + in_page, 0, static_cast<size_t>(chunk));
          }
          a += chunk;
        }
        break;
      }
      case 3: {  // u64 read (the hot path)
        const Addr a = region + (rng.NextBelow(span) & ~7ull);
        uint64_t expected = 0;
        uint8_t bytes[8];
        for (int k = 0; k < 8; ++k) {
          bytes[k] = ref_read(a + static_cast<Addr>(k));
        }
        std::memcpy(&expected, bytes, 8);
        ASSERT_EQ(bs.ReadU64(a), expected) << "addr " << a;
        break;
      }
      default: {  // bulk read
        uint8_t out[300];
        const size_t len = 1 + rng.NextBelow(sizeof(out));
        bs.Read(addr, out, len);
        for (size_t k = 0; k < len; ++k) {
          ASSERT_EQ(out[k], ref_read(addr + k)) << "addr " << addr + k;
        }
        break;
      }
    }
    ASSERT_EQ(bs.allocated_pages(), ref.size()) << "op " << op;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackingStoreRadixFuzz, ::testing::Values(17u, 34u, 51u));

TEST(ConfigTest, G1Preset) {
  const PlatformConfig p = G1Platform();
  EXPECT_EQ(p.generation, Generation::kG1);
  EXPECT_EQ(p.optane.read_buffer_bytes, KiB(16));
  EXPECT_EQ(p.optane.write_buffer_bytes, KiB(16));
  EXPECT_TRUE(p.optane.periodic_full_writeback);
  EXPECT_TRUE(p.optane.same_line_flush_stall);
  EXPECT_FALSE(p.cache.clwb_retains_line);
  // 12 KB usable for partial XPLines.
  EXPECT_EQ(p.optane.write_buffer_partial_reserve, 16u);
}

TEST(ConfigTest, G2Preset) {
  const PlatformConfig p = G2Platform();
  EXPECT_EQ(p.generation, Generation::kG2);
  EXPECT_EQ(p.optane.read_buffer_bytes, KiB(22));
  EXPECT_FALSE(p.optane.periodic_full_writeback);
  EXPECT_FALSE(p.optane.same_line_flush_stall);
  EXPECT_TRUE(p.cache.clwb_retains_line);
  EXPECT_EQ(p.optane.write_buffer_partial_reserve, 0u);
}

TEST(ConfigTest, CacheGeometryDividesEvenly) {
  for (const PlatformConfig& p : {G1Platform(), G2Platform()}) {
    for (const CacheLevelConfig& lvl : {p.cache.l1, p.cache.l2, p.cache.l3}) {
      EXPECT_EQ(lvl.size_bytes % (kCacheLineSize * lvl.ways), 0u)
          << p.name << " level size " << lvl.size_bytes;
    }
  }
}

}  // namespace
}  // namespace pmemsim
