// Engine-scaling harness for the partitioned serving engine (not a paper
// figure): measures how many simulated serving ops per wall-clock second
// DomainTier sustains on an 8-shard open-loop YCSB-B point as the host
// thread count (--engine_threads) grows, and writes a trajectory baseline
// (BENCH_serve.json at the repo root) that CI's perf-smoke job gates with
// scripts/check_perf.py.
//
// Output: CSV  workload,threads,ops,wall_ms,sim_mops_per_sec,speedup_vs_1t
//
// The harness is also a determinism gate in its own right: every rep at every
// thread count must produce a byte-identical tier report (DomainTier::ToJson),
// and the run fails loudly if any pair diverges — wall time is the ONLY thing
// host threading may change.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/platform.h"
#include "src/serve/domain_tier.h"
#include "src/workload/ycsb.h"

namespace {

using namespace pmemsim;

double Now() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RunResult {
  double wall_sec = 0.0;
  uint64_t completed = 0;
  std::string report_json;
};

RunResult RunOnce(const PlatformConfig& platform, const ServeConfig& cfg) {
  RunResult r;
  const double t0 = Now();
  DomainTier tier(platform, /*dimms_per_domain=*/1, cfg);
  tier.Run();
  r.wall_sec = Now() - t0;
  r.completed = tier.GlobalStats().completed;
  r.report_json = tier.ToJson();
  return r;
}

std::vector<uint32_t> ParseThreads(const std::string& csv) {
  std::vector<uint32_t> out;
  size_t start = 0;
  while (start < csv.size()) {
    const size_t comma = csv.find(',', start);
    const size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) {
      const unsigned long v = std::strtoul(csv.substr(start, end - start).c_str(), nullptr, 10);
      if (v == 0) {
        pmemsim_bench::Flags::BadValue("threads", csv, "comma list of thread counts >= 1");
      }
      out.push_back(static_cast<uint32_t>(v));
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  if (out.empty()) {
    pmemsim_bench::Flags::BadValue("threads", csv, "comma list of thread counts >= 1");
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  pmemsim_bench::Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::printf(
        "usage: perf_serve [--quick] [--ops_scale=<pct>] [--threads=1,4] [--reps=<n>]\n"
        "  --quick        1/8 of the default per-shard op budget (CI perf-smoke mode)\n"
        "  --ops_scale=N  scale the default op budget to N%% (overrides --quick)\n"
        "  --threads=CSV  --engine_threads values to measure (default 1,4)\n"
        "  --reps=N       repetitions per thread count (default 3), interleaved\n"
        "                 round-robin so host-load drift biases every thread\n"
        "                 count equally; reported throughput is the median\n"
        "  --stats_json defaults to BENCH_serve.json (pass --stats_json= to disable)\n"
        "The simulated point: 8-shard open-loop YCSB-B on fastfair, G1 platform.\n"
        "Every rep at every thread count must byte-match the same tier report;\n"
        "wall time is the only thing host threading may change.\n%s",
        pmemsim_bench::kTelemetryFlagsHelp);
    return 0;
  }
  const bool quick = flags.Has("quick");
  const uint64_t ops_scale = flags.GetU64("ops_scale", quick ? 100 / 8 : 100);
  const uint64_t reps = std::max<uint64_t>(1, flags.GetU64("reps", 3));
  const std::vector<uint32_t> threads = ParseThreads(flags.Get("threads", "1,4"));
  pmemsim_bench::BenchReport report(flags, "perf_serve", "BENCH_serve.json");
  flags.RejectUnknown();

  const PlatformConfig platform = *PlatformByName("g1");
  ServeConfig cfg;
  cfg.store = StoreKind::kFastFair;
  cfg.loop = LoopMode::kOpen;
  cfg.mix_name = "b";
  cfg.mix = *MixByName("b");
  cfg.shards = 8;
  cfg.workers_per_shard = 2;
  cfg.ops = std::max<uint64_t>(1, 50000 * ops_scale / 100);  // per shard
  cfg.keys = 20000;                                          // per shard
  cfg.seed = 42;

  pmemsim_bench::PrintHeader("perf_serve",
                             "partitioned-engine scaling: simulated serving ops per wall second");
  std::printf("workload,threads,ops,wall_ms,sim_mops_per_sec,speedup_vs_1t\n");
  int rc = 0;

  // Interleaved repetitions (rep 0 of every thread count, then rep 1, ...) so
  // ambient host load drifts across every thread count's sample set equally.
  std::vector<std::vector<RunResult>> samples(threads.size());
  for (uint64_t rep = 0; rep < reps; ++rep) {
    for (size_t ti = 0; ti < threads.size(); ++ti) {
      ServeConfig point = cfg;
      point.engine_threads = threads[ti];
      samples[ti].push_back(RunOnce(platform, point));
    }
  }

  // Determinism gate: one canonical report, every sample must byte-match it.
  const std::string& canonical = samples[0][0].report_json;
  for (size_t ti = 0; ti < threads.size(); ++ti) {
    for (const RunResult& s : samples[ti]) {
      if (s.report_json != canonical) {
        std::fprintf(stderr,
                     "error: tier report diverges at --engine_threads=%u — the "
                     "partitioned engine is nondeterministic\n",
                     threads[ti]);
        rc = 1;
      }
    }
  }

  double base_mops = 0.0;
  for (size_t ti = 0; ti < threads.size(); ++ti) {
    const RunResult& first = samples[ti].front();
    std::vector<double> walls;
    for (const RunResult& s : samples[ti]) {
      walls.push_back(s.wall_sec);
    }
    std::sort(walls.begin(), walls.end());
    const double wall_sec = walls.size() % 2 == 1
                                ? walls[walls.size() / 2]
                                : 0.5 * (walls[walls.size() / 2 - 1] + walls[walls.size() / 2]);
    if (wall_sec <= 0.0 || first.completed == 0) {
      std::fprintf(stderr, "error: measured nothing at --engine_threads=%u\n", threads[ti]);
      rc = 1;
      continue;
    }
    const double mops = static_cast<double>(first.completed) / wall_sec / 1e6;
    if (ti == 0) {
      base_mops = mops;
    }
    const double speedup = base_mops > 0.0 ? mops / base_mops : 0.0;
    char name[32];
    std::snprintf(name, sizeof(name), "serve_et%u", threads[ti]);
    std::printf("%s,%u,%llu,%.1f,%.3f,%.2f\n", name, threads[ti],
                static_cast<unsigned long long>(first.completed), wall_sec * 1e3, mops, speedup);
    report.AddRow()
        .Set("workload", name)
        .Set("threads", threads[ti])
        .Set("reps", reps)
        .Set("ops", first.completed)
        .Set("wall_ms", wall_sec * 1e3)
        .Set("sim_mops_per_sec", mops)
        .Set("speedup_vs_1t", speedup);
  }
  const int finish_rc = report.Finish();
  return rc != 0 ? rc : finish_rc;
}
