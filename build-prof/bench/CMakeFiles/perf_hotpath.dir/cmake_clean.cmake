file(REMOVE_RECURSE
  "CMakeFiles/perf_hotpath.dir/perf_hotpath.cc.o"
  "CMakeFiles/perf_hotpath.dir/perf_hotpath.cc.o.d"
  "perf_hotpath"
  "perf_hotpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_hotpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
