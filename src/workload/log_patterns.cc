#include "src/workload/log_patterns.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/random.h"

namespace pmemsim {
namespace {

// Deterministic payload bytes: content does not affect timing, but the
// backing store holds real data, so fills are seeded rather than zeroed.
void FillPayload(Rng& rng, std::vector<uint8_t>& buf) {
  for (size_t i = 0; i < buf.size(); i += sizeof(uint64_t)) {
    const uint64_t v = rng.Next();
    const size_t n = std::min(sizeof(uint64_t), buf.size() - i);
    std::copy_n(reinterpret_cast<const uint8_t*>(&v), n, buf.data() + i);
  }
}

class LogStoreWorkload final : public LogPatternWorkload {
 public:
  explicit LogStoreWorkload(const LogPatternOptions& opts)
      : LogPatternWorkload(opts.ops), opts_(opts), rng_(opts.seed), payload_(opts.value_bytes) {
    PMEMSIM_CHECK(opts_.counter_slots > 0);
    PMEMSIM_CHECK(opts_.value_bytes > 0);
    stride_ = AlignUp(opts_.value_bytes, kXPLineSize);
    PMEMSIM_CHECK_MSG(opts_.log_bytes >= stride_, "log arena smaller than one entry");
  }

  const char* name() const override { return "log_store"; }

  void Setup(System& system) override {
    counters_ = system.AllocatePm(opts_.counter_slots * kCacheLineSize, kXPLineSize);
    log_ = system.AllocatePm(opts_.log_bytes, kXPLineSize);
  }

  void RunOne(ThreadContext& ctx, uint64_t i) override {
    FillPayload(rng_, payload_);
    // Stream the entry into the next slot (wrapping), then publish it by
    // bumping the rotating commit counter: store + clwb + sfence.
    const uint64_t slots_per_arena = opts_.log_bytes / stride_;
    const Addr entry = log_.At((i % slots_per_arena) * stride_);
    ctx.NtWrite(entry, payload_.data(), payload_.size());
    ctx.Sfence();
    const Addr slot = counters_.At((i % opts_.counter_slots) * kCacheLineSize);
    ctx.Store64(slot, i + 1);
    ctx.Clwb(slot);
    ctx.Sfence();
  }

  uint64_t payload_bytes() const override { return opts_.ops * opts_.value_bytes; }

 private:
  LogPatternOptions opts_;
  Rng rng_;
  std::vector<uint8_t> payload_;
  uint64_t stride_ = 0;
  PmRegion counters_;
  PmRegion log_;
};

class CircularWritesWorkload final : public LogPatternWorkload {
 public:
  explicit CircularWritesWorkload(const LogPatternOptions& opts)
      : LogPatternWorkload(opts.ops), opts_(opts), rng_(opts.seed), payload_(opts.write_bytes) {
    PMEMSIM_CHECK(opts_.num_buffers > 0);
    PMEMSIM_CHECK(opts_.write_bytes > 0);
    stride_ = AlignUp(opts_.write_bytes, kXPLineSize);
  }

  const char* name() const override { return "circular_writes"; }

  void Setup(System& system) override {
    header_ = system.AllocatePm(kCacheLineSize, kXPLineSize);
    ring_ = system.AllocatePm(opts_.num_buffers * stride_, kXPLineSize);
  }

  void RunOne(ThreadContext& ctx, uint64_t i) override {
    FillPayload(rng_, payload_);
    // Version bump in the header line, then the full buffer rewrite — the
    // circular_writes shape: buffer reuse distance is num_buffers rounds.
    ctx.Store64(header_.At(0), i + 1);
    ctx.Clwb(header_.At(0));
    const Addr buf = ring_.At((i % opts_.num_buffers) * stride_);
    ctx.NtWrite(buf, payload_.data(), payload_.size());
    ctx.Sfence();
  }

  uint64_t payload_bytes() const override { return opts_.ops * opts_.write_bytes; }

 private:
  LogPatternOptions opts_;
  Rng rng_;
  std::vector<uint8_t> payload_;
  uint64_t stride_ = 0;
  PmRegion header_;
  PmRegion ring_;
};

class CachelineVersionsWorkload final : public LogPatternWorkload {
 public:
  explicit CachelineVersionsWorkload(const LogPatternOptions& opts)
      : LogPatternWorkload(opts.ops), opts_(opts), rng_(opts.seed), payload_(opts.buffer_bytes) {
    PMEMSIM_CHECK(opts_.buffer_bytes >= kCacheLineSize);
  }

  const char* name() const override { return "cacheline_versions"; }

  void Setup(System& system) override {
    arena_ = system.AllocatePm(AlignUp(opts_.buffer_bytes, kXPLineSize), kXPLineSize);
  }

  void RunOne(ThreadContext& ctx, uint64_t round) override {
    // Pre-stamp every line head with the round's version, write the body,
    // then re-stamp and flush: a reader observing mismatched stamps knows
    // the line is torn. Each line is dirtied twice per round.
    const uint64_t lines = opts_.buffer_bytes / kCacheLineSize;
    for (uint64_t l = 0; l < lines; ++l) {
      ctx.Store64(arena_.At(l * kCacheLineSize), round);
    }
    ctx.Sfence();
    FillPayload(rng_, payload_);
    ctx.Write(arena_.At(0), payload_.data(), payload_.size());
    for (uint64_t l = 0; l < lines; ++l) {
      const Addr line = arena_.At(l * kCacheLineSize);
      ctx.Store64(line, round + 1);
      ctx.Clwb(line);
    }
    ctx.Sfence();
  }

  uint64_t payload_bytes() const override { return opts_.ops * opts_.buffer_bytes; }

 private:
  LogPatternOptions opts_;
  Rng rng_;
  std::vector<uint8_t> payload_;
  PmRegion arena_;
};

}  // namespace

void LogPatternWorkload::Run(ThreadContext& ctx) {
  for (uint64_t i = 0; i < ops_; ++i) {
    RunOne(ctx, i);
  }
}

std::unique_ptr<LogPatternWorkload> LogPatternWorkload::Create(std::string_view name,
                                                               const LogPatternOptions& opts) {
  if (name == "log_store") {
    return std::make_unique<LogStoreWorkload>(opts);
  }
  if (name == "circular_writes") {
    return std::make_unique<CircularWritesWorkload>(opts);
  }
  if (name == "cacheline_versions") {
    return std::make_unique<CachelineVersionsWorkload>(opts);
  }
  return nullptr;
}

std::vector<std::string> LogPatternWorkload::Names() {
  return {"log_store", "circular_writes", "cacheline_versions"};
}

}  // namespace pmemsim
