// Serving-tier tests: admission-queue mechanics, closed/open-loop completion,
// shed determinism, per-shard/global aggregation, and the latency identity
// sojourn == queue wait + service.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/platform.h"
#include "src/serve/request_queue.h"
#include "src/serve/tier.h"
#include "src/trace/json.h"

namespace pmemsim {
namespace {

// ---------- RequestQueue ----------

TEST(RequestQueueTest, BoundedDepthShedsWhenFull) {
  RequestQueue q(3);
  Request r;
  EXPECT_TRUE(q.Offer(r));
  EXPECT_TRUE(q.Offer(r));
  EXPECT_TRUE(q.Offer(r));
  EXPECT_FALSE(q.Offer(r));  // depth 3: the fourth is shed
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.offered(), 4u);
  EXPECT_EQ(q.rejected(), 1u);
  EXPECT_EQ(q.max_occupancy(), 3u);
}

TEST(RequestQueueTest, BeginPhaseResetsAccountingButKeepsQueueAndLifetime) {
  // Regression for phase-scoped accounting: warm-up offers/sheds/occupancy
  // must not leak into the measured window opened at a phase boundary.
  RequestQueue q(3);
  Request r;
  EXPECT_TRUE(q.Offer(r));
  EXPECT_TRUE(q.Offer(r));
  EXPECT_TRUE(q.Offer(r));
  EXPECT_FALSE(q.Offer(r));  // warm-up shed
  EXPECT_EQ(q.max_occupancy(), 3u);

  std::vector<Request> batch;
  q.ClaimBatch(2, &batch);  // occupancy drops to 1 before the boundary
  q.BeginPhase();

  // Phase counters restart; max occupancy restarts at the REAL current size
  // (queued requests are occupancy the new phase inherits), not at zero.
  EXPECT_EQ(q.offered(), 0u);
  EXPECT_EQ(q.rejected(), 0u);
  EXPECT_EQ(q.max_occupancy(), 1u);
  EXPECT_EQ(q.size(), 1u);  // queued requests are not dropped

  EXPECT_TRUE(q.Offer(r));
  EXPECT_TRUE(q.Offer(r));
  EXPECT_FALSE(q.Offer(r));  // measured-phase shed
  EXPECT_EQ(q.offered(), 3u);
  EXPECT_EQ(q.rejected(), 1u);
  EXPECT_EQ(q.max_occupancy(), 3u);

  // Lifetime totals span both phases.
  EXPECT_EQ(q.lifetime_offered(), 7u);
  EXPECT_EQ(q.lifetime_rejected(), 2u);
  EXPECT_EQ(q.lifetime_max_occupancy(), 3u);
}

TEST(RequestQueueTest, ClaimBatchIsFifoAndBounded) {
  RequestQueue q(16);
  for (uint64_t k = 1; k <= 10; ++k) {
    Request r;
    r.key = k;
    ASSERT_TRUE(q.Offer(r));
  }
  std::vector<Request> batch;
  EXPECT_EQ(q.ClaimBatch(4, &batch), 4u);
  EXPECT_EQ(q.ClaimBatch(100, &batch), 6u);  // the remainder, appended
  EXPECT_EQ(q.ClaimBatch(4, &batch), 0u);
  ASSERT_EQ(batch.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(batch[i].key, i + 1) << "FIFO order";
  }
  EXPECT_TRUE(q.empty());
}

// ---------- ServiceTier ----------

ServeConfig SmallConfig() {
  ServeConfig cfg;
  cfg.shards = 2;
  cfg.workers_per_shard = 2;
  cfg.keys = 400;
  cfg.ops = 400;
  cfg.clients = 4;
  cfg.think_cycles = 800;
  cfg.interarrival_cycles = 400;
  cfg.seed = 7;
  return cfg;
}

std::string RunTierJson(const ServeConfig& cfg) {
  auto system = MakeG1System(2);
  ServiceTier tier(system.get(), cfg);
  tier.Run();
  return tier.ToJson();
}

TEST(ServiceTierTest, ClosedLoopCompletesTheOfferedBudget) {
  ServeConfig cfg = SmallConfig();
  cfg.loop = LoopMode::kClosed;
  cfg.mix = *MixByName("a");
  cfg.mix_name = "a";
  auto system = MakeG1System(2);
  ServiceTier tier(system.get(), cfg);
  tier.Run();
  const ServiceStats global = tier.GlobalStats();
  // A deep-enough queue sheds nothing, so every offered attempt completes and
  // the budget is exactly ops per shard.
  EXPECT_EQ(global.offered, cfg.ops * cfg.shards);
  EXPECT_EQ(global.rejected, 0u);
  EXPECT_EQ(global.completed, cfg.ops * cfg.shards);
  EXPECT_GT(global.OpsPerSec(system->config().cpu_ghz, tier.serve_start()), 0.0);
}

TEST(ServiceTierTest, SojournIsWaitPlusServiceExactly) {
  ServeConfig cfg = SmallConfig();
  cfg.loop = LoopMode::kClosed;
  cfg.mix = *MixByName("f");  // rmw exercises read + write per request
  cfg.mix_name = "f";
  auto system = MakeG1System(2);
  ServiceTier tier(system.get(), cfg);
  tier.Run();
  for (const auto& shard : tier.shards()) {
    const ServiceStats& s = shard->stats();
    EXPECT_EQ(s.sojourn_total, s.wait_total + s.service_total) << "shard " << shard->index();
  }
  const ServiceStats global = tier.GlobalStats();
  EXPECT_EQ(global.sojourn_total, global.wait_total + global.service_total);
}

TEST(ServiceTierTest, GlobalAggregatesShards) {
  ServeConfig cfg = SmallConfig();
  cfg.loop = LoopMode::kOpen;
  cfg.mix = *MixByName("b");
  cfg.mix_name = "b";
  auto system = MakeG1System(2);
  ServiceTier tier(system.get(), cfg);
  tier.Run();
  uint64_t completed = 0, offered = 0, rejected = 0;
  Cycles last = 0;
  for (const auto& shard : tier.shards()) {
    completed += shard->stats().completed;
    offered += shard->stats().offered;
    rejected += shard->stats().rejected;
    last = std::max(last, shard->stats().last_completion);
  }
  const ServiceStats global = tier.GlobalStats();
  EXPECT_EQ(global.completed, completed);
  EXPECT_EQ(global.offered, offered);
  EXPECT_EQ(global.rejected, rejected);
  EXPECT_EQ(global.last_completion, last);
  EXPECT_EQ(global.offered, global.completed + global.rejected);
  EXPECT_EQ(global.sojourn.count(), global.completed);
}

TEST(ServiceTierTest, OpenLoopTightQueueShedsDeterministically) {
  ServeConfig cfg = SmallConfig();
  cfg.loop = LoopMode::kOpen;
  cfg.mix = *MixByName("a");
  cfg.mix_name = "a";
  cfg.queue_depth = 2;
  cfg.interarrival_cycles = 60;  // overload: arrivals outpace service
  const std::string first = RunTierJson(cfg);
  const std::string second = RunTierJson(cfg);
  EXPECT_EQ(first, second) << "same seed must reproduce every shed decision";
  JsonValue parsed;
  ASSERT_TRUE(JsonValue::Parse(first, &parsed));
  const JsonValue* global = parsed.Find("global");
  ASSERT_NE(global, nullptr);
  EXPECT_GT(global->Find("rejected")->AsUint(), 0u) << "overload must shed";
  EXPECT_EQ(global->Find("offered")->AsUint(), cfg.ops * cfg.shards);
  EXPECT_EQ(global->Find("offered")->AsUint(),
            global->Find("completed")->AsUint() + global->Find("rejected")->AsUint());
}

TEST(ServiceTierTest, BatchSizeVariantsAllComplete) {
  for (const uint64_t batch : {uint64_t{1}, uint64_t{4}, uint64_t{32}}) {
    ServeConfig cfg = SmallConfig();
    cfg.loop = LoopMode::kClosed;
    cfg.mix = *MixByName("c");
    cfg.mix_name = "c";
    cfg.batch = batch;
    auto system = MakeG1System(2);
    ServiceTier tier(system.get(), cfg);
    tier.Run();
    EXPECT_EQ(tier.GlobalStats().completed, cfg.ops * cfg.shards) << "batch " << batch;
  }
}

TEST(ServiceTierTest, AttributionCoversTheServePhase) {
  ServeConfig cfg = SmallConfig();
  cfg.loop = LoopMode::kClosed;
  cfg.mix = *MixByName("b");
  cfg.mix_name = "b";
  auto system = MakeG1System(2);
  ServiceTier tier(system.get(), cfg);
  tier.Run();
  for (const auto& shard : tier.shards()) {
    const AttributionCollector& attr = shard->attribution();
    EXPECT_GT(attr.access_count(), 0u) << "shard " << shard->index();
    // Exact conservation per access: stage totals sum to end-to-end.
    EXPECT_EQ(attr.StageTotalSum(), attr.end_to_end_total());
    EXPECT_LE(attr.OpQuantile(AttributionCollector::kLoad, 0.5),
              attr.OpQuantile(AttributionCollector::kLoad, 0.999));
  }
}

TEST(ServiceTierTest, EveryStoreServesEveryMix) {
  for (const StoreKind store : {StoreKind::kCceh, StoreKind::kFastFair, StoreKind::kFlatLog}) {
    for (const char* mix : {"a", "b", "c", "d", "e", "f"}) {
      ServeConfig cfg = SmallConfig();
      cfg.keys = 150;
      cfg.ops = 150;
      cfg.shards = 1;
      cfg.store = store;
      cfg.mix = *MixByName(mix);
      cfg.mix_name = mix;
      cfg.scan_len = 8;
      auto system = MakeG1System(1);
      ServiceTier tier(system.get(), cfg);
      tier.Run();
      const ServiceStats global = tier.GlobalStats();
      EXPECT_EQ(global.completed + global.rejected, global.offered)
          << StoreName(store) << "/" << mix;
      EXPECT_GT(global.completed, 0u) << StoreName(store) << "/" << mix;
    }
  }
}

}  // namespace
}  // namespace pmemsim