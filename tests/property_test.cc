// Heavier randomized property suites: reference-model equivalence for the
// cache and backing store, whole-system determinism, and crash-point fuzzing
// of the redo log's atomicity contract.

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <unordered_map>

#include "src/cache/cache.h"
#include "src/common/backing_store.h"
#include "src/common/random.h"
#include "src/core/platform.h"
#include "src/datastores/cceh.h"
#include "src/persist/redo_log.h"
#include "src/workload/ycsb.h"

namespace pmemsim {
namespace {

// ---------- SetAssocCache vs a reference LRU model ----------

class ReferenceLru {
 public:
  ReferenceLru(size_t sets, size_t ways) : sets_(sets), ways_(ways), lists_(sets) {}

  bool Access(Addr line) {
    auto& lru = lists_[Index(line)];
    for (auto it = lru.begin(); it != lru.end(); ++it) {
      if (*it == line) {
        lru.erase(it);
        lru.push_front(line);
        return true;
      }
    }
    return false;
  }

  void Insert(Addr line) {
    auto& lru = lists_[Index(line)];
    if (Access(line)) {
      return;
    }
    if (lru.size() >= ways_) {
      lru.pop_back();
    }
    lru.push_front(line);
  }

  void Invalidate(Addr line) {
    auto& lru = lists_[Index(line)];
    lru.remove(line);
  }

 private:
  size_t Index(Addr line) const { return static_cast<size_t>((line / kCacheLineSize) % sets_); }

  size_t sets_, ways_;
  std::vector<std::list<Addr>> lists_;
};

class CacheEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CacheEquivalence, MatchesReferenceLru) {
  const CacheLevelConfig cfg{KiB(8), 4, 4};  // 32 sets x 4 ways
  SetAssocCache cache(cfg);
  ReferenceLru ref(cache.sets(), cfg.ways);
  Rng rng(GetParam());
  Cycles now = 0;
  for (int i = 0; i < 50000; ++i) {
    const Addr line = rng.NextBelow(512) * kCacheLineSize;
    ++now;
    switch (rng.NextBelow(3)) {
      case 0: {
        const bool hit = cache.Access(line, now, false);
        ASSERT_EQ(hit, ref.Access(line)) << "op " << i;
        break;
      }
      case 1:
        cache.Insert(line, now, rng.NextBelow(2) == 0, false);
        ref.Insert(line);
        break;
      default:
        cache.Invalidate(line);
        ref.Invalidate(line);
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheEquivalence, ::testing::Values(101u, 202u, 303u));

// ---------- BackingStore vs a reference byte map ----------

class BackingStoreFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BackingStoreFuzz, MatchesReferenceBytes) {
  BackingStore bs;
  std::map<Addr, uint8_t> ref;
  Rng rng(GetParam());
  const Addr span = 4 * kPageSize;
  for (int i = 0; i < 4000; ++i) {
    const Addr addr = rng.NextBelow(span);
    const size_t len = 1 + rng.NextBelow(200);
    if (rng.NextBelow(3) != 0) {
      std::vector<uint8_t> data(len);
      for (auto& b : data) {
        b = static_cast<uint8_t>(rng.Next());
      }
      bs.Write(addr, data.data(), len);
      for (size_t k = 0; k < len; ++k) {
        ref[addr + k] = data[k];
      }
    } else {
      std::vector<uint8_t> out(len);
      bs.Read(addr, out.data(), len);
      for (size_t k = 0; k < len; ++k) {
        const auto it = ref.find(addr + k);
        const uint8_t expected = it == ref.end() ? 0 : it->second;
        ASSERT_EQ(out[k], expected) << "addr " << addr + k;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackingStoreFuzz, ::testing::Values(7u, 8u));

// ---------- Whole-system determinism ----------

TEST(Determinism, IdenticalRunsProduceIdenticalClocksAndCounters) {
  auto run = [] {
    auto system = MakeG1System(2);
    ThreadContext& ctx = system->CreateThread();
    Cceh table(system.get(), ctx, 4, MemoryKind::kOptane);
    const auto keys = MakeLoadKeys(20000, 1234);
    for (const uint64_t k : keys) {
      table.Insert(ctx, k, k);
    }
    return std::make_pair(ctx.clock(), system->counters().media_write_bytes);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

// ---------- RedoLog crash-point fuzz: group atomicity ----------

class RedoCrashFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RedoCrashFuzz, GroupsAreAllOrNothing) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    auto system = MakeG1System(1);
    ThreadContext& ctx = system->CreateThread();
    const PmRegion data = system->AllocatePm(KiB(4));
    const PmRegion log_region = system->AllocatePm(KiB(4));

    // Each group writes a distinct marker value to a set of slots; a crash is
    // injected after a random number of protocol steps.
    const uint64_t groups = 1 + rng.NextBelow(5);
    const uint64_t crash_step = rng.NextBelow(groups * 3 + 1);
    std::vector<bool> committed(groups, false);
    uint64_t step = 0;
    bool crashed = false;
    {
      RedoLog log(system.get(), log_region);
      for (uint64_t g = 0; g < groups && !crashed; ++g) {
        const uint64_t slots = 1 + rng.NextBelow(4);
        for (uint64_t s2 = 0; s2 < slots && !crashed; ++s2) {
          const uint64_t value = (g + 1) * 1000 + s2;
          log.LogUpdate(ctx, data.base + (g * 8 + s2) * 64, &value, sizeof(value));
          crashed = ++step == crash_step;
        }
        if (crashed) {
          break;
        }
        log.Commit(ctx);
        committed[g] = true;
        crashed = ++step == crash_step;
        if (crashed) {
          break;
        }
        log.Apply(ctx);
        crashed = ++step == crash_step;
      }
    }

    RedoLog recovered(system.get(), log_region);
    recovered.Recover(ctx);
    for (uint64_t g = 0; g < groups; ++g) {
      const uint64_t first_slot_value = ctx.Load64(data.base + g * 8 * 64);
      if (committed[g]) {
        EXPECT_EQ(first_slot_value, (g + 1) * 1000) << "trial " << trial << " group " << g;
      } else {
        // Never committed: either untouched (0) — it must NOT be partially
        // applied with garbage (values always match the marker scheme if set).
        if (first_slot_value != 0) {
          EXPECT_EQ(first_slot_value, (g + 1) * 1000);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RedoCrashFuzz, ::testing::Values(41u, 42u, 43u, 44u));

// ---------- CCEH under mixed insert/erase/get churn ----------

TEST(CcehChurn, StaysConsistentUnderMixedOps) {
  auto system = MakeG1System(1);
  ThreadContext& ctx = system->CreateThread();
  Cceh table(system.get(), ctx, 4, MemoryKind::kOptane);
  std::unordered_map<uint64_t, uint64_t> ref;
  Rng rng(555);
  for (int i = 0; i < 40000; ++i) {
    const uint64_t key = 1 + rng.NextBelow(3000);
    switch (rng.NextBelow(4)) {
      case 0:
      case 1: {
        const uint64_t value = rng.Next() | 1;
        table.Insert(ctx, key, value);
        ref[key] = value;
        break;
      }
      case 2: {
        const bool erased = table.Erase(ctx, key);
        EXPECT_EQ(erased, ref.erase(key) > 0) << "key " << key;
        break;
      }
      default: {
        uint64_t v = 0;
        const bool found = table.Get(ctx, key, &v);
        const auto it = ref.find(key);
        ASSERT_EQ(found, it != ref.end()) << "key " << key;
        if (found) {
          EXPECT_EQ(v, it->second);
        }
        break;
      }
    }
  }
  EXPECT_EQ(table.size(), ref.size());
}

}  // namespace
}  // namespace pmemsim
