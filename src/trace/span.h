// Per-request spans for the serving tier: one record per completed request
// capturing the full lifecycle timestamps (arrival -> admit -> start -> end)
// plus the per-stage service-time decomposition read out of the shard's
// AttributionCollector around the request's Execute call.
//
// Conservation contract (checked at Record time, gated by tests and
// scripts/check_timeline.py):
//   arrival <= admit <= start <= end            (lifecycle order)
//   (admit-arrival) + (start-admit) + (end-start) == end-arrival  (exact)
//   sum(stages) == end - start                  (stage partition of service)
// The stage partition follows the attribution layer's convention: the
// recorder credits any service time the per-access stages do not cover
// (AddCompute advances, issue costs) to the kCore stage, so the identity is
// exact by construction rather than approximate.
//
// Recording is pay-for-use: shards test one pointer per completion when no
// recorder is installed. A recorder is single-(OS-)thread confined to its
// shard's engine (the lockstep scheduler, or one domain's host thread in the
// partitioned engine), so recording needs no synchronization; per-shard span
// vectors are concatenated in shard-index order at export, which keeps the
// serialized form byte-identical across --jobs and --engine_threads.

#ifndef SRC_TRACE_SPAN_H_
#define SRC_TRACE_SPAN_H_

#include <cstdint>
#include <vector>

#include "src/common/types.h"
#include "src/trace/attribution.h"

namespace pmemsim {

struct RequestSpan {
  uint32_t shard = 0;
  uint32_t client = 0;  // closed loop: client id; open loop: arrival sequence
  uint8_t op = 0;       // ServeOp index (names resolved at export)
  Cycles arrival = 0;   // client issue time
  Cycles admit = 0;     // admission into the bounded queue
  Cycles start = 0;     // worker begins Execute
  Cycles end = 0;       // completion

  Cycles wait() const { return start - arrival; }
  Cycles service() const { return end - start; }
  Cycles sojourn() const { return end - arrival; }

  // Service-time decomposition; sums to service() exactly (remainder in
  // kCore). Indexed by AttributionCollector::Stage.
  Cycles stages[AttributionCollector::kStageCount] = {};
};

class SpanRecorder {
 public:
  // Bounds memory for pathological op budgets; excess spans are counted in
  // dropped() and omitted (the windowed metrics still see every event).
  static constexpr size_t kMaxSpans = size_t{1} << 20;

  explicit SpanRecorder(uint32_t shard) : shard_(shard) {}

  // Records one completed request. `stage_deltas` holds the shard collector's
  // per-stage totals accumulated across this request's Execute (kStageCount
  // entries); the service-time remainder is credited to kCore here. CHECKs
  // the lifecycle order and that the stages do not exceed the service time.
  void Record(uint32_t client, uint8_t op, Cycles arrival, Cycles admit, Cycles start, Cycles end,
              const Cycles* stage_deltas);

  uint32_t shard() const { return shard_; }
  const std::vector<RequestSpan>& spans() const { return spans_; }
  uint64_t dropped() const { return dropped_; }

 private:
  uint32_t shard_;
  std::vector<RequestSpan> spans_;
  uint64_t dropped_ = 0;
};

}  // namespace pmemsim

#endif  // SRC_TRACE_SPAN_H_
