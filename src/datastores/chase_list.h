// The §3.6 workload: a circular linked list of 256 B, XPLine-aligned elements
// traversed by pointer chasing, updating one cacheline per element.
//
//   typedef struct working_set_unit {
//     struct working_set_unit *next;
//     uint64_t pad[NPAD];
//   } working_set_unit_t;
//
// The next pointer lives in the element's first cacheline; the updated pad
// word lives in its third, so persisting the data never invalidates cached
// pointers (as in the paper's benchmark).

#ifndef SRC_DATASTORES_CHASE_LIST_H_
#define SRC_DATASTORES_CHASE_LIST_H_

#include <cstdint>
#include <vector>

#include "src/common/types.h"
#include "src/core/system.h"
#include "src/cpu/thread_context.h"
#include "src/persist/barrier.h"

namespace pmemsim {

class ChaseList {
 public:
  static constexpr uint64_t kElementSize = kXPLineSize;
  static constexpr uint64_t kPadOffset = 2 * kCacheLineSize;  // updated cacheline

  // Builds a circular list over `region` (construction is untimed). With
  // `sequential`, element i points to element i+1; otherwise the cycle order
  // is a random permutation.
  ChaseList(System* system, PmRegion region, bool sequential, uint64_t seed);

  uint64_t size() const { return count_; }
  Addr head() const { return order_.front(); }
  // Traversals resume where the previous call stopped (the list is circular),
  // so partial measurement passes still walk cold elements.
  void ResetCursor() { cursor_ = order_.front(); cursor_index_ = 0; }
  // Element addresses in traversal order (used by the pure-write benchmark,
  // which keeps addresses in DRAM and never reads PM).
  const std::vector<Addr>& order() const { return order_; }

  // Full traversal: chase pointers, update one cacheline per element, persist
  // per `mode`/`persistency`. `epoch_len` applies to Persistency::kEpoch
  // (a fence every epoch_len elements). Returns cycles consumed.
  Cycles TraverseUpdate(ThreadContext& ctx, uint64_t elements, PersistMode mode,
                        Persistency persistency, uint64_t epoch_len = 8);

  // Pure read: pointer chase only.
  Cycles TraverseRead(ThreadContext& ctx, uint64_t elements);

  // Pure write: iterate the DRAM-held address list, store + persist the pad
  // cacheline of each element without reading PM.
  Cycles PureWrite(ThreadContext& ctx, uint64_t elements, PersistMode mode,
                   Persistency persistency, uint64_t epoch_len = 8);

 private:
  System* system_;
  PmRegion region_;
  uint64_t count_;
  std::vector<Addr> order_;
  Addr cursor_ = 0;
  uint64_t cursor_index_ = 0;
};

}  // namespace pmemsim

#endif  // SRC_DATASTORES_CHASE_LIST_H_
