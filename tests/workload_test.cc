// Tests for workload generation: load-key permutations, sharding, zipfian
// skew properties.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "src/workload/ycsb.h"
#include "src/workload/zipf.h"

namespace pmemsim {
namespace {

TEST(YcsbTest, LoadKeysArePermutationOfRange) {
  const auto keys = MakeLoadKeys(1000, 42);
  ASSERT_EQ(keys.size(), 1000u);
  std::set<uint64_t> s(keys.begin(), keys.end());
  EXPECT_EQ(s.size(), 1000u);
  EXPECT_EQ(*s.begin(), 1u);
  EXPECT_EQ(*s.rbegin(), 1000u);
}

TEST(YcsbTest, LoadKeysShuffled) {
  const auto keys = MakeLoadKeys(1000, 42);
  uint64_t ascending_runs = 0;
  for (size_t i = 1; i < keys.size(); ++i) {
    ascending_runs += keys[i] == keys[i - 1] + 1 ? 1 : 0;
  }
  EXPECT_LT(ascending_runs, 50u);  // nowhere near sorted
}

TEST(YcsbTest, DeterministicPerSeed) {
  EXPECT_EQ(MakeLoadKeys(100, 7), MakeLoadKeys(100, 7));
  EXPECT_NE(MakeLoadKeys(100, 7), MakeLoadKeys(100, 8));
}

TEST(YcsbTest, ShardsPartitionKeys) {
  const auto keys = MakeLoadKeys(1003, 1);
  const auto shards = ShardKeys(keys, 4);
  ASSERT_EQ(shards.size(), 4u);
  size_t total = 0;
  std::set<uint64_t> seen;
  for (const auto& shard : shards) {
    total += shard.size();
    seen.insert(shard.begin(), shard.end());
  }
  EXPECT_EQ(total, keys.size());
  EXPECT_EQ(seen.size(), keys.size());
}

TEST(YcsbTest, UniformRequestsCoverKeys) {
  const auto keys = MakeLoadKeys(100, 2);
  const auto reqs = MakeRequestKeys(keys, 10000, KeyDistribution::kUniform, 3);
  ASSERT_EQ(reqs.size(), 10000u);
  std::set<uint64_t> seen(reqs.begin(), reqs.end());
  EXPECT_GT(seen.size(), 95u);
  for (const uint64_t r : reqs) {
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 100u);
  }
}

TEST(ZipfTest, InRange) {
  ZipfGenerator zipf(1000, 0.99, 5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Next(), 1000u);
  }
}

TEST(ZipfTest, SkewConcentratesOnHotItems) {
  ZipfGenerator zipf(1000, 0.99, 5);
  uint64_t hot = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    hot += zipf.Next() < 10 ? 1 : 0;
  }
  // With theta=0.99 the top-1% of items draw a large share of requests.
  EXPECT_GT(static_cast<double>(hot) / n, 0.3);
}

TEST(ZipfTest, LowThetaApproachesUniform) {
  ZipfGenerator zipf(1000, 0.01, 6);
  uint64_t hot = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    hot += zipf.Next() < 10 ? 1 : 0;
  }
  EXPECT_LT(static_cast<double>(hot) / n, 0.05);
}

TEST(ZipfTest, HeadFrequenciesMatchTheory) {
  // Regression for the cached-threshold fast path: the shortcuts for ranks 0
  // and 1 must fire with exactly the Zipf head probabilities p(0) = 1/zeta(n)
  // and p(1) = 0.5^theta/zeta(n). A chi-squared statistic over the partition
  // {rank 0, rank 1, everything else} catches a miscomputed threshold (e.g.
  // a dropped zetan factor) far outside the noise floor.
  const uint64_t n = 1000;
  const double theta = 0.99;
  double zetan = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    zetan += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  const double p0 = 1.0 / zetan;
  const double p1 = std::pow(0.5, theta) / zetan;

  ZipfGenerator zipf(n, theta, 11);
  const int samples = 200000;
  double c0 = 0, c1 = 0, rest = 0;
  for (int i = 0; i < samples; ++i) {
    const uint64_t r = zipf.Next();
    if (r == 0) {
      ++c0;
    } else if (r == 1) {
      ++c1;
    } else {
      ++rest;
    }
  }
  const double e0 = samples * p0;
  const double e1 = samples * p1;
  const double er = samples * (1.0 - p0 - p1);
  const double chi2 = (c0 - e0) * (c0 - e0) / e0 + (c1 - e1) * (c1 - e1) / e1 +
                      (rest - er) * (rest - er) / er;
  // df=2; the 99.9th percentile is 13.8. A wrong threshold shifts chi2 into
  // the thousands, so 20 leaves margin against seed sensitivity.
  EXPECT_LT(chi2, 20.0) << "p0_obs=" << c0 / samples << " p0=" << p0
                        << " p1_obs=" << c1 / samples << " p1=" << p1;
}

TEST(ZipfTest, DeterministicPerSeed) {
  ZipfGenerator a(500, 0.8, 99);
  ZipfGenerator b(500, 0.8, 99);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next()) << i;
  }
}

TEST(ZipfTest, RankFrequencyMonotone) {
  ZipfGenerator zipf(100, 0.9, 7);
  std::vector<uint64_t> counts(100, 0);
  for (int i = 0; i < 200000; ++i) {
    ++counts[zipf.Next()];
  }
  // Aggregate over coarse buckets to tolerate sampling noise.
  uint64_t first = 0, mid = 0, tail = 0;
  for (int i = 0; i < 10; ++i) {
    first += counts[i];
  }
  for (int i = 40; i < 50; ++i) {
    mid += counts[i];
  }
  for (int i = 90; i < 100; ++i) {
    tail += counts[i];
  }
  EXPECT_GT(first, mid);
  EXPECT_GT(mid, tail);
}

TEST(MixTest, MixByNameKnowsTheCoreWorkloads) {
  // The canonical shares of YCSB A-F, case-insensitive lookup.
  const auto a = MixByName("a");
  ASSERT_TRUE(a.has_value());
  EXPECT_DOUBLE_EQ(a->read, 0.50);
  EXPECT_DOUBLE_EQ(a->update, 0.50);
  const auto b = MixByName("B");
  ASSERT_TRUE(b.has_value());
  EXPECT_DOUBLE_EQ(b->read, 0.95);
  EXPECT_DOUBLE_EQ(b->update, 0.05);
  const auto c = MixByName("c");
  ASSERT_TRUE(c.has_value());
  EXPECT_DOUBLE_EQ(c->read, 1.0);
  const auto d = MixByName("d");
  ASSERT_TRUE(d.has_value());
  EXPECT_DOUBLE_EQ(d->read, 0.95);
  EXPECT_DOUBLE_EQ(d->insert, 0.05);
  const auto e = MixByName("e");
  ASSERT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(e->scan, 0.95);
  EXPECT_DOUBLE_EQ(e->insert, 0.05);
  const auto f = MixByName("f");
  ASSERT_TRUE(f.has_value());
  EXPECT_DOUBLE_EQ(f->read, 0.50);
  EXPECT_DOUBLE_EQ(f->rmw, 0.50);
  EXPECT_FALSE(MixByName("g").has_value());
  EXPECT_FALSE(MixByName("").has_value());
  EXPECT_FALSE(MixByName("ab").has_value());
}

TEST(MixTest, SampledRatiosMatchEveryCoreMix) {
  // Mirrors ZipfTest.HeadFrequenciesMatchTheory: a chi-squared statistic over
  // the op-category partition of each core mix. Every core mix has at most
  // two positive-share categories (df <= 1; the 99.9th percentile of chi2(1)
  // is 10.8), so 20 leaves margin against seed sensitivity. Zero-share
  // categories must never be drawn at all — the sampler pins the cumulative
  // tail to exactly 1.0 so rounding can't leak them in.
  const int samples = 100000;
  for (const char* name : {"a", "b", "c", "d", "e", "f"}) {
    const auto mix = MixByName(name);
    ASSERT_TRUE(mix.has_value()) << name;
    const double share[kServeOpCount] = {mix->read, mix->update, mix->insert, mix->scan,
                                         mix->rmw};
    MixSampler sampler(*mix, 17);
    uint64_t counts[kServeOpCount] = {};
    for (int i = 0; i < samples; ++i) {
      ++counts[static_cast<size_t>(sampler.Next())];
    }
    double chi2 = 0.0;
    for (int op = 0; op < kServeOpCount; ++op) {
      if (share[op] == 0.0) {
        EXPECT_EQ(counts[op], 0u) << "mix " << name << " drew zero-share op "
                                  << ServeOpName(static_cast<ServeOp>(op));
        continue;
      }
      const double expected = samples * share[op];
      chi2 += (counts[op] - expected) * (counts[op] - expected) / expected;
    }
    EXPECT_LT(chi2, 20.0) << "mix " << name;
  }
}

TEST(MixTest, SamplerDeterministicPerSeed) {
  const auto mix = MixByName("a");
  ASSERT_TRUE(mix.has_value());
  MixSampler a(*mix, 31);
  MixSampler b(*mix, 31);
  MixSampler c(*mix, 32);
  bool diverged = false;
  for (int i = 0; i < 2000; ++i) {
    const ServeOp va = a.Next();
    ASSERT_EQ(va, b.Next()) << i;
    diverged = diverged || va != c.Next();
  }
  EXPECT_TRUE(diverged);  // a different seed gives a different stream
}

TEST(PoissonTest, ArrivalsAreMonotoneWithCorrectMean) {
  const double mean = 500.0;
  PoissonArrivalGenerator gen(mean, 23);
  Cycles prev = 0;
  const int n = 100000;
  Cycles last = 0;
  for (int i = 0; i < n; ++i) {
    const Cycles t = gen.Next();
    ASSERT_GE(t, prev) << i;
    prev = t;
    last = t;
  }
  // Sum of n exponentials has mean n*mean and stddev sqrt(n)*mean: a +-5
  // sigma band around the expected total is a robust mean check.
  const double expect = n * mean;
  const double sigma = std::sqrt(static_cast<double>(n)) * mean;
  EXPECT_NEAR(static_cast<double>(last), expect, 5.0 * sigma);
}

TEST(PoissonTest, InterarrivalsAreExponential) {
  // Chi-squared over equal-probability bins of the exponential CDF: bin k of
  // K catches draws in [-mean*ln(1-k/K), -mean*ln(1-(k+1)/K)), each with
  // probability 1/K. df=15; the 99.9th percentile of chi2(15) is 37.7, and a
  // uniform (non-exponential) generator lands in the thousands.
  const double mean = 1000.0;
  PoissonArrivalGenerator gen(mean, 41);
  constexpr int kBins = 16;
  const int samples = 160000;
  uint64_t counts[kBins] = {};
  for (int i = 0; i < samples; ++i) {
    const double x = gen.NextInterarrival();
    ASSERT_GE(x, 0.0);
    // CDF(x) = 1 - exp(-x/mean) in [0, 1) maps to its equal-probability bin.
    const double u = 1.0 - std::exp(-x / mean);
    int bin = static_cast<int>(u * kBins);
    if (bin >= kBins) {
      bin = kBins - 1;
    }
    ++counts[bin];
  }
  const double expected = static_cast<double>(samples) / kBins;
  double chi2 = 0.0;
  for (uint64_t c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 45.0);
}

TEST(PoissonTest, DeterministicPerSeed) {
  PoissonArrivalGenerator a(700.0, 5);
  PoissonArrivalGenerator b(700.0, 5);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next()) << i;
  }
}

}  // namespace
}  // namespace pmemsim
