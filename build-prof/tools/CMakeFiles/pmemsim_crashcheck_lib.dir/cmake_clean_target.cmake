file(REMOVE_RECURSE
  "libpmemsim_crashcheck_lib.a"
)
