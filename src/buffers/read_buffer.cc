#include "src/buffers/read_buffer.h"

#include "src/common/check.h"

namespace pmemsim {

ReadBuffer::ReadBuffer(uint64_t capacity_bytes, Counters* counters,
                       ReadBufferEviction eviction, bool exclusive)
    : counters_(counters),
      eviction_(eviction),
      exclusive_(exclusive),
      slots_(static_cast<size_t>(capacity_bytes / kXPLineSize)) {
  PMEMSIM_CHECK(!slots_.empty());
  PMEMSIM_CHECK(counters_ != nullptr);
}

bool ReadBuffer::Probe(Addr line_addr) const {
  auto it = map_.find(XPLineBase(line_addr));
  if (it == map_.end()) {
    return false;
  }
  const Slot& slot = slots_[it->second];
  return (slot.valid_mask >> LineIndexInXPLine(line_addr)) & 1u;
}

bool ReadBuffer::ConsumeLine(Addr line_addr) {
  auto it = map_.find(XPLineBase(line_addr));
  if (it == map_.end()) {
    ++counters_->read_buffer_misses;
    return false;
  }
  Slot& slot = slots_[it->second];
  const uint8_t bit = static_cast<uint8_t>(1u << LineIndexInXPLine(line_addr));
  if (!(slot.valid_mask & bit)) {
    ++counters_->read_buffer_misses;
    return false;
  }
  if (exclusive_) {
    // Exclusive with the CPU caches: once a line moves up, drop our copy.
    slot.valid_mask = static_cast<uint8_t>(slot.valid_mask & ~bit);
  }
  slot.last_touch = ++touch_tick_;
  ++counters_->read_buffer_hits;
  return true;
}

size_t ReadBuffer::PickVictim() {
  if (eviction_ == ReadBufferEviction::kFifo) {
    const size_t v = next_fill_;
    next_fill_ = (next_fill_ + 1) % slots_.size();
    return v;
  }
  size_t best = 0;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].in_use) {
      return i;
    }
    if (slots_[i].last_touch < slots_[best].last_touch) {
      best = i;
    }
  }
  return best;
}

void ReadBuffer::Fill(Addr addr) {
  const Addr xpline = XPLineBase(addr);
  auto it = map_.find(xpline);
  if (it != map_.end()) {
    // Refetch of an XPLine still occupying a slot: refresh in place.
    slots_[it->second].valid_mask = 0x0F;
    slots_[it->second].last_touch = ++touch_tick_;
    return;
  }
  const size_t victim = PickVictim();
  Slot& slot = slots_[victim];
  if (slot.in_use) {
    map_.erase(slot.xpline);
  }
  slot.xpline = xpline;
  slot.valid_mask = 0x0F;
  slot.in_use = true;
  slot.last_touch = ++touch_tick_;
  map_[xpline] = victim;
}

bool ReadBuffer::ContainsXPLine(Addr addr) const {
  auto it = map_.find(XPLineBase(addr));
  return it != map_.end() && slots_[it->second].valid_mask != 0;
}

bool ReadBuffer::Remove(Addr addr) {
  auto it = map_.find(XPLineBase(addr));
  if (it == map_.end()) {
    return false;
  }
  slots_[it->second].in_use = false;
  slots_[it->second].valid_mask = 0;
  map_.erase(it);
  return true;
}

void ReadBuffer::Clear() {
  for (Slot& s : slots_) {
    s = Slot{};
  }
  map_.clear();
  next_fill_ = 0;
}

}  // namespace pmemsim
