// Per-access latency attribution: where each demand access's cycles went.
//
// The paper explains latency by decomposing it along the access path — core
// issue, cache walk, iMC transit, read-after-persist stalls, on-DIMM buffer
// service, AIT translation, media port waits, WPQ acceptance — and so do the
// companion characterizations (Izraelevitz et al.; Yang et al., FAST '20).
// This module reproduces that decomposition in the model.
//
// Mechanics: the memory side of the path reports its components *in its
// result structs* (MemStageBreakdown rides DimmReadResult -> McReadResult ->
// HierAccessResult), so nothing on the hot path consults a collector — the
// components are plain field writes already computed by the timing code.
// ThreadContext is the single recording point: when a collector is installed
// (System::SetAttribution, the benches' --breakdown flag), each operation
// records its end-to-end latency and the reported stages; the unattributed
// remainder (issue costs, cache-walk latency, SMT scaling) lands in the
// `core` stage, so per-stage totals sum to end-to-end latency EXACTLY — the
// conservation identity tests/attribution_test.cc gates on. When no collector
// is installed the only cost is one pointer test per operation.
//
// Synchronous vs asynchronous: DDR-T persists are accepted long after the
// issuing store retires, so WPQ acceptance delay is *not* part of a store's
// end-to-end latency — it surfaces at fences (recorded as the wpq_wait stage
// of the fence op) and is additionally tracked per nt-store/flush in the
// async_accept histogram, which deliberately sits outside the conservation
// identity.

#ifndef SRC_TRACE_ATTRIBUTION_H_
#define SRC_TRACE_ATTRIBUTION_H_

#include <cstdint>
#include <string>

#include "src/common/stats.h"
#include "src/common/types.h"

namespace pmemsim {

class JsonWriter;

// Memory-side latency components of one demand access, threaded up through
// the result structs. Each producer guarantees the populated fields sum to
// the span it reports (DIMM: complete_at - now; iMC adds its transit), so a
// full cache miss's breakdown sums exactly to the memory access latency.
struct MemStageBreakdown {
  Cycles imc_transit = 0;  // iMC processing + interconnect hops
  Cycles rap_stall = 0;    // read-after-persist wait (write in flight)
  Cycles buffer = 0;       // on-DIMM buffer service (DDR-T round trip)
  Cycles ait = 0;          // address-indirection-table translation
  Cycles media = 0;        // 3D-Xpoint port wait + XPLine fetch
  Cycles dram = 0;         // conventional-DRAM service (DRAM-routed reads)
};

class AttributionCollector {
 public:
  enum Op : uint8_t { kLoad, kStore, kNtStore, kFlush, kFence, kOpCount };
  enum Stage : uint8_t {
    kCore,  // issue/retire costs, cache-walk latency, SMT scaling remainder
    kL1Hit,
    kL2Hit,
    kL3Hit,
    kImcTransit,
    kRapStall,
    kReadBuffer,
    kAitLookup,
    kMediaRead,
    kDram,
    kWpqWait,  // fence-time wait for outstanding persist acceptance
    kStageCount
  };

  static const char* OpName(Op op);
  static const char* StageName(Stage stage);

  struct StageDurations {
    Cycles v[kStageCount] = {};
  };

  // Records one completed operation. Stages must not exceed `end_to_end`;
  // the difference is credited to kCore so conservation holds per access.
  void RecordAccess(Op op, Cycles end_to_end, const StageDurations& stages);

  // Records an asynchronous persist-acceptance delay (nt-store/flush issue to
  // WPQ acceptance). Outside the conservation identity by design.
  void RecordAsyncAccept(Cycles delay);

  uint64_t access_count() const { return access_count_; }
  uint64_t end_to_end_total() const { return end_to_end_total_; }
  uint64_t stage_total(Stage stage) const { return stage_total_[stage]; }
  uint64_t StageTotalSum() const;
  const Histogram& op_hist(Op op) const { return op_hist_[op]; }
  const Histogram& stage_hist(Stage stage) const { return stage_hist_[stage]; }
  // Exact-rank tail extraction (Histogram::Quantile, q in [0,1]) over one op
  // class or stage — how the serving tier reads its per-shard memory-op and
  // wpq-wait tails out of the attribution layer.
  uint64_t OpQuantile(Op op, double q) const { return op_hist_[op].Quantile(q); }
  uint64_t StageQuantile(Stage stage, double q) const { return stage_hist_[stage].Quantile(q); }
  const Histogram& async_accept_hist() const { return async_accept_hist_; }

  // {"accesses":N,"end_to_end_total":..,"ops":{load:{hist}..},
  //  "stages":{core:{"total_cycles":..,"share":..,hist}..},
  //  "async":{"wpq_accept":{hist}}}
  void ToJson(JsonWriter& w) const;
  std::string ToJson() const;

  // Human-readable critical-path table: one row per stage, sorted by total
  // cycles, with share-of-total and percentiles (pmemsim_watch/--breakdown).
  std::string CriticalPathTable() const;

 private:
  Histogram op_hist_[kOpCount];
  Histogram stage_hist_[kStageCount];
  Histogram async_accept_hist_;
  uint64_t stage_total_[kStageCount] = {};
  uint64_t end_to_end_total_ = 0;
  uint64_t access_count_ = 0;
};

}  // namespace pmemsim

#endif  // SRC_TRACE_ATTRIBUTION_H_
