file(REMOVE_RECURSE
  "CMakeFiles/fig07_rap.dir/fig07_rap.cc.o"
  "CMakeFiles/fig07_rap.dir/fig07_rap.cc.o.d"
  "fig07_rap"
  "fig07_rap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_rap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
