// Open-addressing flat hash map for the simulator's per-access hot paths.
//
// Every simulated load/store used to walk one or more std::unordered_map
// lookups (write buffer, read buffer, AIT, DRAM pending-writes, backing
// store), so the engine's wall-clock was dominated by hashing and node
// pointer-chasing rather than model logic. FlatMap replaces those with a
// single contiguous probe:
//
//  * power-of-two capacity, linear probing over a byte metadata array
//    (1 control byte per slot: empty, or a 7-bit hash fragment — most
//    non-matching slots are rejected without touching the key array);
//  * tombstone-free erase by backward shift (Knuth 6.4 R), so probe chains
//    never accumulate deleted markers and lookup cost stays flat over the
//    long churn of a simulation;
//  * grows at 3/4 load; Clear() keeps the allocation.
//
// Scope: keys must be integral (simulated addresses); values should be cheap
// to move. Iteration order is a function of the hash, NOT insertion order —
// any caller whose results depend on ordering (eviction policy scans,
// write-back sequences) must keep iterating its own dense key vector, exactly
// as the unordered_map-based code did. ForEach/EraseIf exist for
// order-insensitive bookkeeping only (e.g. sweeping expired entries).

#ifndef SRC_COMMON_FLAT_MAP_H_
#define SRC_COMMON_FLAT_MAP_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/random.h"

namespace pmemsim {

template <typename K, typename V>
class FlatMap {
  static_assert(std::is_integral_v<K>, "FlatMap keys are simulated addresses / integers");

 public:
  FlatMap() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return slots_.size(); }

  // Drops every entry but keeps the allocation (hot structures clear between
  // benchmark configurations and immediately refill to a similar size).
  void Clear() {
    if (size_ != 0) {
      meta_.assign(meta_.size(), kEmpty);
      size_ = 0;
    }
  }

  // Pre-sizes so `n` entries fit without growing.
  void Reserve(size_t n) {
    size_t cap = kMinCapacity;
    while (cap * 3 < n * 4) {
      cap <<= 1;
    }
    if (cap > slots_.size()) {
      Rehash(cap);
    }
  }

  V* Find(K key) {
    return const_cast<V*>(static_cast<const FlatMap*>(this)->Find(key));
  }

  const V* Find(K key) const {
    if (size_ == 0) {
      return nullptr;
    }
    const uint64_t hash = HashKey(key);
    const size_t mask = slots_.size() - 1;
    size_t i = static_cast<size_t>(hash) & mask;
    const uint8_t fragment = Fragment(hash);
    while (meta_[i] != kEmpty) {
      if (meta_[i] == fragment && slots_[i].key == key) {
        return &slots_[i].value;
      }
      i = (i + 1) & mask;
    }
    return nullptr;
  }

  bool Contains(K key) const { return Find(key) != nullptr; }

  // Host-side hint: start fetching the probe chain's home slot for `key`
  // ahead of a Find/Insert that is about to walk it. No simulated effect.
  void Prefetch(K key) const {
    if (size_ == 0) {
      return;
    }
    const size_t i = static_cast<size_t>(HashKey(key)) & (slots_.size() - 1);
    __builtin_prefetch(&meta_[i]);
    __builtin_prefetch(&slots_[i]);
  }

  // Returns the value for `key`, default-constructing it if absent.
  V& operator[](K key) {
    EnsureRoomForOne();
    const uint64_t hash = HashKey(key);
    const size_t mask = slots_.size() - 1;
    size_t i = static_cast<size_t>(hash) & mask;
    const uint8_t fragment = Fragment(hash);
    while (meta_[i] != kEmpty) {
      if (meta_[i] == fragment && slots_[i].key == key) {
        return slots_[i].value;
      }
      i = (i + 1) & mask;
    }
    meta_[i] = fragment;
    slots_[i].key = key;
    slots_[i].value = V{};
    ++size_;
    return slots_[i].value;
  }

  // Inserts key -> value. Returns false (leaving the map unchanged) if the
  // key is already present.
  bool Insert(K key, V value) {
    EnsureRoomForOne();
    const uint64_t hash = HashKey(key);
    const size_t mask = slots_.size() - 1;
    size_t i = static_cast<size_t>(hash) & mask;
    const uint8_t fragment = Fragment(hash);
    while (meta_[i] != kEmpty) {
      if (meta_[i] == fragment && slots_[i].key == key) {
        return false;
      }
      i = (i + 1) & mask;
    }
    meta_[i] = fragment;
    slots_[i].key = key;
    slots_[i].value = std::move(value);
    ++size_;
    return true;
  }

  // Removes the key. Returns false if it was absent.
  bool Erase(K key) {
    if (size_ == 0) {
      return false;
    }
    const uint64_t hash = HashKey(key);
    const size_t mask = slots_.size() - 1;
    size_t i = static_cast<size_t>(hash) & mask;
    const uint8_t fragment = Fragment(hash);
    while (meta_[i] != kEmpty) {
      if (meta_[i] == fragment && slots_[i].key == key) {
        EraseSlot(i);
        return true;
      }
      i = (i + 1) & mask;
    }
    return false;
  }

  // Visits every entry in unspecified order. `fn(key, value)`; the value
  // reference is mutable on non-const maps.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (meta_[i] != kEmpty) {
        fn(slots_[i].key, slots_[i].value);
      }
    }
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (meta_[i] != kEmpty) {
        fn(slots_[i].key, slots_[i].value);
      }
    }
  }

  // Erases every entry for which `pred(key, value)` holds; returns the number
  // erased. Visit order is unspecified, and an entry relocated by a wrapping
  // backward shift into an already-visited slot is only seen on the next
  // call — callers use this for idempotent sweeps (expired-entry cleanup),
  // where a one-pass miss is re-collected later.
  template <typename Pred>
  size_t EraseIf(Pred&& pred) {
    size_t erased = 0;
    for (size_t i = 0; i < slots_.size();) {
      if (meta_[i] != kEmpty && pred(slots_[i].key, slots_[i].value)) {
        EraseSlot(i);
        ++erased;  // re-examine slot i: the shift may have refilled it
      } else {
        ++i;
      }
    }
    return erased;
  }

 private:
  struct Slot {
    K key;
    V value;
  };

  static constexpr size_t kMinCapacity = 16;
  static constexpr uint8_t kEmpty = 0;

  static uint64_t HashKey(K key) { return Mix64(static_cast<uint64_t>(key)); }

  // High hash bits as a non-zero control byte: cheap first-pass rejection.
  static uint8_t Fragment(uint64_t hash) { return static_cast<uint8_t>((hash >> 57) | 0x80); }

  void EnsureRoomForOne() {
    if (slots_.empty()) {
      Rehash(kMinCapacity);
    } else if ((size_ + 1) * 4 > slots_.size() * 3) {
      Rehash(slots_.size() * 2);
    }
  }

  void Rehash(size_t new_capacity) {
    PMEMSIM_DCHECK((new_capacity & (new_capacity - 1)) == 0);
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<uint8_t> old_meta = std::move(meta_);
    slots_.assign(new_capacity, Slot{});
    meta_.assign(new_capacity, kEmpty);
    const size_t mask = new_capacity - 1;
    for (size_t i = 0; i < old_slots.size(); ++i) {
      if (old_meta[i] == kEmpty) {
        continue;
      }
      const uint64_t hash = HashKey(old_slots[i].key);
      size_t j = static_cast<size_t>(hash) & mask;
      while (meta_[j] != kEmpty) {
        j = (j + 1) & mask;
      }
      meta_[j] = Fragment(hash);
      slots_[j] = std::move(old_slots[i]);
    }
  }

  // Backward-shift deletion: closes the probe chain through `hole` so no
  // tombstone is needed. A successor slot moves into the hole iff its home
  // position lies cyclically outside (hole, successor].
  void EraseSlot(size_t hole) {
    const size_t mask = slots_.size() - 1;
    size_t i = hole;
    size_t j = i;
    while (true) {
      j = (j + 1) & mask;
      if (meta_[j] == kEmpty) {
        break;
      }
      const size_t home = static_cast<size_t>(HashKey(slots_[j].key)) & mask;
      if (((j - home) & mask) >= ((j - i) & mask)) {
        slots_[i] = std::move(slots_[j]);
        meta_[i] = meta_[j];
        i = j;
      }
    }
    meta_[i] = kEmpty;
    --size_;
  }

  std::vector<Slot> slots_;
  std::vector<uint8_t> meta_;  // kEmpty, or the slot's hash fragment
  size_t size_ = 0;
};

}  // namespace pmemsim

#endif  // SRC_COMMON_FLAT_MAP_H_
