#include "src/crash/recovery_validator.h"

#include <algorithm>
#include <cstring>

#include "src/common/random.h"
#include "src/datastores/cceh.h"
#include "src/datastores/fast_fair.h"
#include "src/datastores/flat_log.h"
#include "src/persist/redo_log.h"
#include "src/persist/undo_log.h"

namespace pmemsim {

namespace {

std::string U64(uint64_t v) { return std::to_string(v); }

}  // namespace

void ValidateCceh(ThreadContext& ctx, const CcehExpectation& exp, ValidationReport* report) {
  const uint64_t dir_entries = 1ull << exp.global_depth;

  // Every acked insert must be found by the published probe procedure.
  for (const auto& [key, value] : exp.acked) {
    const uint64_t hash = Mix64(key);
    const uint64_t dir_index = exp.global_depth == 0 ? 0 : hash >> (64 - exp.global_depth);
    const Addr segment = ctx.Load64(exp.directory + dir_index * 8);
    const uint64_t bucket = hash & (Cceh::kBucketsPerSegment - 1);
    bool found = false;
    uint64_t got = 0;
    for (uint32_t probe = 0; probe < Cceh::kLinearProbeBuckets && !found; ++probe) {
      const uint64_t b = (bucket + probe) & (Cceh::kBucketsPerSegment - 1);
      const Addr bucket_addr = segment + Cceh::kSegmentHeaderSize + b * kCacheLineSize;
      for (uint64_t slot = 0; slot < Cceh::kSlotsPerBucket; ++slot) {
        const Addr slot_addr = bucket_addr + slot * Cceh::kSlotSize;
        if (ctx.Load64(slot_addr) == key) {
          got = ctx.Load64(slot_addr + 8);
          found = true;
          break;
        }
      }
    }
    report->Check(found, "cceh: acked key " + U64(key) + " not found");
    if (found) {
      report->Check(got == value, "cceh: key " + U64(key) + " has value " + U64(got) +
                                      ", want " + U64(value));
    }
  }

  // Phantom scan: every non-empty slot of every live segment must hold an
  // attempted key. Segments are deduplicated and sorted so message order is
  // deterministic.
  std::vector<Addr> segments;
  segments.reserve(dir_entries);
  for (uint64_t i = 0; i < dir_entries; ++i) {
    segments.push_back(ctx.Load64(exp.directory + i * 8));
  }
  std::sort(segments.begin(), segments.end());
  segments.erase(std::unique(segments.begin(), segments.end()), segments.end());
  for (const Addr segment : segments) {
    for (uint64_t b = 0; b < Cceh::kBucketsPerSegment; ++b) {
      const Addr bucket_addr = segment + Cceh::kSegmentHeaderSize + b * kCacheLineSize;
      for (uint64_t slot = 0; slot < Cceh::kSlotsPerBucket; ++slot) {
        const uint64_t key = ctx.Load64(bucket_addr + slot * Cceh::kSlotSize);
        if (key != Cceh::kInvalidKey && exp.attempted.count(key) == 0) {
          report->Fail("cceh: phantom key " + U64(key) + " in segment " + U64(segment));
        }
      }
    }
  }
}

void ValidateFastFair(ThreadContext& ctx, const FastFairExpectation& exp,
                      ValidationReport* report) {
  // Descend entry-0 children to the leftmost leaf. Entry 0 of an internal
  // node is never shifted (insert positions are >= 1 past the kMinKey
  // sentinel), so this path is stable across in-flight insertions.
  Addr node = ctx.Load64(exp.meta);
  for (int depth = 0; ctx.Load64(node + 8) == 0; ++depth) {
    if (depth > 64) {
      report->Fail("fastfair: descent exceeded 64 levels");
      return;
    }
    node = ctx.Load64(FastFairTree::kEntriesOffset + node + 8);
  }

  // Walk the leaf sibling chain left to right.
  std::unordered_map<uint64_t, uint64_t> found;  // first occurrence wins
  uint64_t nodes = 0;
  uint64_t prev_key = 0;
  bool have_prev = false;
  while (node != 0) {
    if (++nodes > exp.max_nodes) {
      report->Fail("fastfair: leaf chain exceeded " + U64(exp.max_nodes) +
                   " nodes (cycle?)");
      break;
    }
    const uint64_t count = ctx.Load64(node);
    if (count > FastFairTree::kMaxEntries) {
      report->Fail("fastfair: node " + U64(node) + " count " + U64(count) + " out of range");
      break;
    }
    uint64_t keys[FastFairTree::kMaxEntries];
    uint64_t vals[FastFairTree::kMaxEntries];
    bool valid[FastFairTree::kMaxEntries];
    for (uint64_t i = 0; i < count; ++i) {
      const Addr entry = node + FastFairTree::kEntriesOffset + i * FastFairTree::kEntrySize;
      keys[i] = ctx.Load64(entry);
      vals[i] = ctx.Load64(entry + 8);
    }
    // FAST&FAIR's transient-state filter. Rule 1: an entry whose value
    // duplicates its left neighbor's is a mid-shift copy (the left one is
    // authoritative). Rule 2: a value duplicating the RIGHT neighbor under a
    // different key is the not-yet-overwritten source of a shift. Rule 3: of
    // two surviving entries with the SAME key, the right one is authoritative
    // — the left is a torn insert that kept the old key word.
    for (uint64_t i = 0; i < count; ++i) {
      valid[i] = true;
      if (i > 0 && vals[i] == vals[i - 1]) {
        valid[i] = false;
      } else if (i + 1 < count && vals[i] == vals[i + 1] && keys[i] != keys[i + 1]) {
        valid[i] = false;
      }
    }
    for (uint64_t i = 0; i + 1 < count; ++i) {
      if (valid[i] && valid[i + 1] && keys[i] == keys[i + 1]) {
        valid[i] = false;
      }
    }
    for (uint64_t i = 0; i < count; ++i) {
      if (!valid[i]) {
        continue;
      }
      // An exact (key, value) duplicate of an entry already seen is the
      // link-first split transient: the right sibling is linked while the
      // left node still holds the (identical) upper half. Readers dedup
      // these, so they are exempt from the sortedness check.
      auto prior = found.find(keys[i]);
      if (prior != found.end() && prior->second == vals[i]) {
        continue;
      }
      if (have_prev) {
        report->Check(keys[i] >= prev_key, "fastfair: key " + U64(keys[i]) +
                                               " out of order after " + U64(prev_key));
      }
      prev_key = keys[i];
      have_prev = true;
      auto it = exp.attempted.find(keys[i]);
      if (it == exp.attempted.end()) {
        report->Fail("fastfair: phantom key " + U64(keys[i]));
      } else {
        report->Check(it->second == vals[i], "fastfair: key " + U64(keys[i]) + " has value " +
                                                 U64(vals[i]) + ", want " + U64(it->second));
        found.emplace(keys[i], vals[i]);
      }
    }
    node = ctx.Load64(node + 16);  // sibling pointer
  }

  for (const auto& [key, value] : exp.acked) {
    auto it = found.find(key);
    report->Check(it != found.end(), "fastfair: acked key " + U64(key) + " not found");
    if (it != found.end()) {
      report->Check(it->second == value, "fastfair: acked key " + U64(key) + " has value " +
                                             U64(it->second) + ", want " + U64(value));
    }
  }
}

void ValidateFlatLog(System* fresh, ThreadContext& ctx, const FlatLogExpectation& exp,
                     ValidationReport* report) {
  // Acked (batch-flushed) slots must match the staged images byte for byte.
  for (uint64_t slot = 0; slot < exp.acked_slots; ++slot) {
    uint8_t got[FlatLog::kSlotSize];
    ctx.Read(exp.region.base + slot * FlatLog::kSlotSize, got, sizeof(got));
    report->Check(std::memcmp(got, exp.slot_images[slot].data(), sizeof(got)) == 0,
                  "flatlog: acked slot " + U64(slot) + " image mismatch");
  }

  // The unacked tail: torn nt-store batches over fresh (zero) slots. A slot
  // that parses as a record must carry an attempted key, or key 0 when the
  // key word itself was lost.
  const uint64_t capacity = exp.region.size / FlatLog::kSlotSize;
  for (uint64_t slot = exp.acked_slots; slot < capacity; ++slot) {
    uint8_t raw[FlatLog::kSlotSize];
    ctx.Read(exp.region.base + slot * FlatLog::kSlotSize, raw, sizeof(raw));
    uint32_t magic = 0, len = 0;
    uint64_t key = 0;
    std::memcpy(&key, raw, sizeof(key));
    std::memcpy(&len, raw + 8, sizeof(len));
    std::memcpy(&magic, raw + 12, sizeof(magic));
    if (magic != FlatLog::kRecordMagic) {
      continue;
    }
    if (key != 0 && exp.attempted.count(key) == 0) {
      report->Fail("flatlog: phantom key " + U64(key) + " in unacked slot " + U64(slot));
    }
  }

  // Real recovery: rebuild the index and point-read every acked key.
  FlatLog log(fresh, exp.region);
  log.Recover(ctx);
  for (const auto& [key, payload] : exp.acked_kv) {
    uint8_t out[FlatLog::kMaxPayload];
    uint32_t len = 0;
    const bool ok = log.Get(ctx, key, out, &len);
    report->Check(ok, "flatlog: acked key " + U64(key) + " missing after Recover");
    if (ok) {
      report->Check(len == payload.size() && std::memcmp(out, payload.data(), len) == 0,
                    "flatlog: acked key " + U64(key) + " payload mismatch");
    }
  }
}

void ValidateRedo(System* fresh, ThreadContext& ctx, const RedoExpectation& exp,
                  ValidationReport* report) {
  RedoLog log(fresh, exp.log_region);
  log.Recover(ctx);

  uint64_t took_new = 0, took_old = 0;
  for (size_t i = 0; i < exp.targets.size(); ++i) {
    const uint64_t got = ctx.Load64(exp.targets[i]);
    const uint64_t old_value = exp.committed[i];
    auto it = std::find_if(exp.inflight.begin(), exp.inflight.end(),
                           [i](const auto& p) { return p.first == i; });
    if (it == exp.inflight.end()) {
      report->Check(got == old_value, "redo: target " + U64(i) + " holds " + U64(got) +
                                          ", want committed " + U64(old_value));
      continue;
    }
    if (got == old_value) {
      ++took_old;
      ++report->checks;
    } else if (exp.inflight_reached_commit && got == it->second) {
      ++took_new;
      ++report->checks;
    } else {
      report->Fail("redo: in-flight target " + U64(i) + " holds " + U64(got) +
                   ", want " + U64(old_value) +
                   (exp.inflight_reached_commit ? " or " + U64(it->second) : ""));
    }
  }
  // The commit record covers the whole group: recovery must replay all of
  // the in-flight transaction or none of it.
  report->Check(took_new == 0 || took_old == 0,
                "redo: in-flight transaction partially applied (" + U64(took_new) +
                    " new, " + U64(took_old) + " old)");
}

void ValidateUndo(System* fresh, ThreadContext& ctx, const UndoExpectation& exp,
                  ValidationReport* report) {
  Transaction tx(fresh, exp.log_region);
  tx.Recover(ctx);

  std::vector<uint64_t> image(exp.fields.size());
  for (size_t i = 0; i < exp.fields.size(); ++i) {
    image[i] = ctx.Load64(exp.fields[i]);
  }
  std::vector<uint64_t> state_b = exp.committed;
  for (const auto& [index, value] : exp.inflight) {
    state_b[index] = value;
  }
  const bool is_a = image == exp.committed;
  const bool is_b = exp.inflight_reached_commit && image == state_b;
  report->Check(is_a || is_b, "undo: recovered image is neither state A nor state B");
  if (!(is_a || is_b)) {
    for (size_t i = 0; i < image.size(); ++i) {
      if (image[i] != exp.committed[i] && image[i] != state_b[i]) {
        report->Fail("undo: field " + U64(i) + " holds " + U64(image[i]) + ", want " +
                     U64(exp.committed[i]) + " or " + U64(state_b[i]));
      }
    }
  }
}

}  // namespace pmemsim
