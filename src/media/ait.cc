#include "src/media/ait.h"

#include "src/common/check.h"

namespace pmemsim {

Ait::Ait(uint64_t coverage_bytes, Cycles miss_penalty, Counters* counters)
    : capacity_(static_cast<size_t>(coverage_bytes / kPageSize)),
      miss_penalty_(miss_penalty),
      counters_(counters) {
  PMEMSIM_CHECK(capacity_ > 0);
  PMEMSIM_CHECK(counters_ != nullptr);
  nodes_.reserve(capacity_);
}

uint32_t* Ait::EnsureSlot(Addr page) {
  const uint64_t pageno = page / kPageSize;
  const uint64_t chunk = pageno >> kLeafBits;
  if (chunk >= index_.size()) {
    index_.resize(chunk + 1);
  }
  if (!index_[chunk]) {
    index_[chunk] = std::make_unique<Leaf>();
    index_[chunk]->slots.fill(kNil);
  }
  return &index_[chunk]->slots[pageno & (kLeafSize - 1)];
}

Cycles Ait::Access(Addr addr) {
  const Addr page = PageBase(addr);
  if (const uint32_t* pos = FindSlot(page); pos != nullptr && *pos != kNil) {
    ++counters_->ait_hits;
    Unlink(*pos);
    PushFront(*pos);
    return 0;
  }
  ++counters_->ait_misses;
  Touch(page);
  return miss_penalty_;
}

void Ait::Unlink(uint32_t i) {
  Node& n = nodes_[i];
  if (n.prev != kNil) {
    nodes_[n.prev].next = n.next;
  } else if (head_ == i) {
    head_ = n.next;
  }
  if (n.next != kNil) {
    nodes_[n.next].prev = n.prev;
  } else if (tail_ == i) {
    tail_ = n.prev;
  }
  n.prev = kNil;
  n.next = kNil;
}

void Ait::PushFront(uint32_t i) {
  Node& n = nodes_[i];
  n.prev = kNil;
  n.next = head_;
  if (head_ != kNil) {
    nodes_[head_].prev = i;
  }
  head_ = i;
  if (tail_ == kNil) {
    tail_ = i;
  }
}

void Ait::Touch(Addr page) {
  uint32_t i;
  if (nodes_.size() >= capacity_) {
    // Recycle the least-recently-used node in place.
    i = tail_;
    PMEMSIM_DCHECK(i != kNil);
    *EnsureSlot(nodes_[i].page) = kNil;
    Unlink(i);
  } else {
    i = static_cast<uint32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  nodes_[i].page = page;
  PushFront(i);
  *EnsureSlot(page) = i;
}

}  // namespace pmemsim
