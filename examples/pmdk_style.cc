// PMDK-style persistent programming on the simulator: the libpmem copy/flush
// API plus undo-log transactions, used to keep a small persistent array of
// records failure-atomic.
//
//   $ ./build/examples/pmdk_style

#include <cstdio>
#include <cstring>

#include "src/api/pmem.h"
#include "src/core/platform.h"
#include "src/persist/undo_log.h"

using namespace pmemsim;

namespace {

struct Record {
  uint64_t id;
  uint64_t version;
  char name[48];
};
static_assert(sizeof(Record) == 64, "one cacheline per record");

}  // namespace

int main() {
  std::unique_ptr<System> system = MakeG1System(6);
  ThreadContext& cpu = system->CreateThread();

  // "pmem_map_file": a persistent array of 64 records + a transaction arena.
  const PmRegion pool = PmemMapFile(*system, 64 * sizeof(Record));
  const PmRegion tx_arena = system->AllocatePm(KiB(8));
  std::printf("auto-flush platform: %s\n", PmemHasAutoFlush(*system) ? "yes (eADR)" : "no (ADR)");

  // Bulk-initialize with pmem_memcpy_persist (streams past the threshold).
  std::vector<Record> init(64);
  for (uint64_t i = 0; i < init.size(); ++i) {
    init[i] = {i, 1, {}};
    std::snprintf(init[i].name, sizeof(init[i].name), "record-%llu",
                  static_cast<unsigned long long>(i));
  }
  PmemMemcpyPersist(cpu, pool.base, init.data(), init.size() * sizeof(Record));
  std::printf("initialized %zu records (%zu bytes) with pmem_memcpy_persist\n", init.size(),
              init.size() * sizeof(Record));

  // Update two records atomically inside an undo-log transaction.
  Transaction tx(system.get(), tx_arena);
  tx.Begin(cpu);
  const Addr rec3 = pool.base + 3 * sizeof(Record);
  const Addr rec9 = pool.base + 9 * sizeof(Record);
  tx.Snapshot(cpu, rec3, sizeof(Record));
  tx.Snapshot(cpu, rec9, sizeof(Record));
  Record r{};
  cpu.Read(rec3, &r, sizeof(r));
  r.version++;
  std::strcpy(r.name, "renamed-in-tx");
  cpu.Write(rec3, &r, sizeof(r));
  cpu.Read(rec9, &r, sizeof(r));
  r.version++;
  cpu.Write(rec9, &r, sizeof(r));
  tx.Commit(cpu);
  cpu.Read(rec3, &r, sizeof(r));
  std::printf("committed tx: record 3 -> version %llu, name \"%s\"\n",
              static_cast<unsigned long long>(r.version), r.name);

  // A transaction that crashes mid-flight rolls back on recovery.
  {
    Transaction doomed(system.get(), tx_arena);
    doomed.Begin(cpu);
    doomed.Store64(cpu, rec3 + 8, 999);  // version = 999
    // Crash: no commit.
  }
  Transaction recovered(system.get(), tx_arena);
  const size_t rolled_back = recovered.Recover(cpu);
  cpu.Read(rec3, &r, sizeof(r));
  std::printf("recovery rolled back %zu snapshots: record 3 version is %llu again\n",
              rolled_back, static_cast<unsigned long long>(r.version));

  std::printf("\ncounters: %s\n", system->counters().ToString().c_str());
  return r.version == 2 ? 0 : 1;
}
