// Tests for ThreadContext (the x86-flavoured op set + clock) and the
// lockstep Scheduler.

#include <gtest/gtest.h>

#include <cstring>

#include "src/api/pmem.h"
#include "src/core/platform.h"
#include "src/cpu/scheduler.h"

namespace pmemsim {
namespace {

struct Fixture {
  std::unique_ptr<System> system;
  ThreadContext* ctx;
  PmRegion pm;
  PmRegion dram;

  explicit Fixture(Generation gen = Generation::kG1) {
    system = MakeSystem(gen, 1);
    ctx = &system->CreateThread();
    SetPrefetchers(*ctx, false, false, false);
    pm = system->AllocatePm(KiB(64));
    dram = system->AllocateDram(KiB(64));
  }
};

TEST(ThreadContextTest, DataRoundTrip) {
  Fixture f;
  f.ctx->Store64(f.pm.base, 0xABCD);
  EXPECT_EQ(f.ctx->Load64(f.pm.base), 0xABCDu);
  uint8_t blob[300];
  for (size_t i = 0; i < sizeof(blob); ++i) {
    blob[i] = static_cast<uint8_t>(i * 7);
  }
  f.ctx->Write(f.pm.base + 1000, blob, sizeof(blob));
  uint8_t out[300];
  f.ctx->Read(f.pm.base + 1000, out, sizeof(out));
  EXPECT_EQ(std::memcmp(blob, out, sizeof(blob)), 0);
}

TEST(ThreadContextTest, ClockMonotonicallyAdvances) {
  Fixture f;
  Cycles prev = f.ctx->clock();
  for (int i = 0; i < 100; ++i) {
    f.ctx->Load64(f.pm.base + static_cast<uint64_t>(i) * 512);
    EXPECT_GT(f.ctx->clock(), prev);
    prev = f.ctx->clock();
  }
}

TEST(ThreadContextTest, CachedLoadIsCheap) {
  Fixture f;
  f.ctx->Load64(f.pm.base);
  const Cycles before = f.ctx->clock();
  f.ctx->Load64(f.pm.base);
  EXPECT_EQ(f.ctx->clock() - before, G1Platform().cache.l1.hit_latency);
  EXPECT_EQ(f.ctx->last_access().hit_level, 1);
}

TEST(ThreadContextTest, MissCostsMemoryLatency) {
  Fixture f;
  f.ctx->Load64(f.pm.base);
  const Cycles before = f.ctx->clock();
  f.ctx->Load64(f.pm.base + KiB(32));
  EXPECT_GT(f.ctx->clock() - before, G1Platform().optane.media_read_latency);
  EXPECT_EQ(f.ctx->last_access().hit_level, 0);
}

TEST(ThreadContextTest, StoreMissIsPosted) {
  Fixture f;
  const Cycles before = f.ctx->clock();
  f.ctx->Store64(f.pm.base + KiB(48), 1);  // cold line
  EXPECT_LT(f.ctx->clock() - before, 100u);  // far below a media round trip
}

TEST(ThreadContextTest, NtStoreBypassesCaches) {
  Fixture f;
  f.ctx->Load64(f.pm.base);  // cache the line
  f.ctx->NtStore64(f.pm.base, 42);
  EXPECT_FALSE(f.ctx->hierarchy().ProbeAny(f.pm.base, f.ctx->clock()));
  EXPECT_EQ(f.ctx->Load64(f.pm.base), 42u);  // data still correct
}

TEST(ThreadContextTest, SfenceWaitsForAcceptance) {
  Fixture f;
  f.ctx->NtStore64(f.pm.base, 1);
  EXPECT_EQ(f.ctx->outstanding_persists(), 1u);
  const Cycles before = f.ctx->clock();
  f.ctx->Sfence();
  EXPECT_GT(f.ctx->clock(), before);
  EXPECT_EQ(f.ctx->outstanding_persists(), 0u);
}

TEST(ThreadContextTest, G1RapMfenceVsSfence) {
  // Distance-0 RAP: under sfence the load still hits the cache; under mfence
  // it stalls for the persist pipeline (Fig. 7 a).
  Fixture sfence_fix, mfence_fix;
  auto iteration = [](Fixture& f, bool use_mfence) {
    f.ctx->Store64(f.pm.base, 7);
    f.ctx->Clwb(f.pm.base);
    if (use_mfence) {
      f.ctx->Mfence();
    } else {
      f.ctx->Sfence();
    }
    const Cycles before = f.ctx->clock();
    f.ctx->Load64(f.pm.base);
    return f.ctx->clock() - before;
  };
  const Cycles sfence_load = iteration(sfence_fix, false);
  const Cycles mfence_load = iteration(mfence_fix, true);
  EXPECT_LT(sfence_load, 20u);
  EXPECT_GT(mfence_load, 1000u);
}

TEST(ThreadContextTest, G2ClwbLoadAlwaysHits) {
  Fixture f(Generation::kG2);
  f.ctx->Store64(f.pm.base, 7);
  f.ctx->Clwb(f.pm.base);
  f.ctx->Mfence();
  const Cycles before = f.ctx->clock();
  f.ctx->Load64(f.pm.base);
  EXPECT_LT(f.ctx->clock() - before, 20u);
}

TEST(ThreadContextTest, G2NtStoreStillRaps) {
  Fixture f(Generation::kG2);
  f.ctx->NtStore64(f.pm.base, 7);
  f.ctx->Mfence();
  const Cycles before = f.ctx->clock();
  f.ctx->Load64(f.pm.base);
  EXPECT_GT(f.ctx->clock() - before, 800u);
}

TEST(ThreadContextTest, LoadMultiOverlaps) {
  Fixture f;
  // Two independent cold lines: overlapped cost is far below the serial sum.
  Fixture serial;
  const Addr a = serial.pm.base, b = serial.pm.base + KiB(32);
  const Cycles s0 = serial.ctx->clock();
  serial.ctx->Load64(a);
  serial.ctx->Load64(b);
  const Cycles serial_cost = serial.ctx->clock() - s0;

  const Addr addrs[2] = {f.pm.base, f.pm.base + KiB(32)};
  const Cycles m0 = f.ctx->clock();
  f.ctx->LoadMulti(addrs, 2);
  const Cycles multi_cost = f.ctx->clock() - m0;
  EXPECT_LT(multi_cost, serial_cost);
  EXPECT_GE(multi_cost, serial_cost / 2);
}

TEST(ThreadContextTest, StreamCopyMovesData) {
  Fixture f;
  uint8_t src[kXPLineSize];
  for (size_t i = 0; i < sizeof(src); ++i) {
    src[i] = static_cast<uint8_t>(255 - i % 251);
  }
  f.system->backing().Write(f.pm.base, src, sizeof(src));
  f.ctx->StreamCopyXPLine(f.pm.base, f.dram.base);
  uint8_t dst[kXPLineSize];
  f.system->backing().Read(f.dram.base, dst, sizeof(dst));
  EXPECT_EQ(std::memcmp(src, dst, sizeof(src)), 0);
}

TEST(ThreadContextTest, SmtScaleInflatesCoreWork) {
  Fixture f;
  f.ctx->Load64(f.pm.base);
  const Cycles base_before = f.ctx->clock();
  f.ctx->Load64(f.pm.base);
  const Cycles unscaled = f.ctx->clock() - base_before;
  f.ctx->SetSmtScale(2.0);
  const Cycles scaled_before = f.ctx->clock();
  f.ctx->Load64(f.pm.base);
  EXPECT_EQ(f.ctx->clock() - scaled_before, 2 * unscaled);
}

TEST(ThreadContextTest, StoreBufferBackpressure) {
  Fixture f;
  // Unfenced persists beyond the store-buffer depth force waiting.
  const uint32_t depth = G1Platform().cpu.store_buffer_depth;
  for (uint32_t i = 0; i < depth + 10; ++i) {
    f.ctx->NtStore64(f.pm.base + i * kCacheLineSize, i);
  }
  EXPECT_LE(f.ctx->outstanding_persists(), depth);
}

TEST(SchedulerTest, InterleavesByClock) {
  auto system = MakeG1System(1);
  ThreadContext& a = system->CreateThread();
  ThreadContext& b = system->CreateThread();
  std::vector<int> order;
  int na = 0, nb = 0;
  std::vector<SimJob> jobs;
  jobs.push_back({&a, [&]() {
                    if (na >= 3) {
                      return StepResult::kDone;
                    }
                    order.push_back(0);
                    a.AddCompute(100);
                    ++na;
                    return StepResult::kProgress;
                  }});
  jobs.push_back({&b, [&]() {
                    if (nb >= 3) {
                      return StepResult::kDone;
                    }
                    order.push_back(1);
                    b.AddCompute(100);
                    ++nb;
                    return StepResult::kProgress;
                  }});
  const Cycles end = Scheduler::Run(jobs);
  EXPECT_EQ(end, 300u);
  // Equal step costs must interleave strictly.
  const std::vector<int> expected{0, 1, 0, 1, 0, 1};
  EXPECT_EQ(order, expected);
}

TEST(SchedulerTest, CollidingClocksBreakTiesByJobIndex) {
  // The heap scheduler keys on (clock, job index), reproducing the linear
  // scan's first-minimum-wins rule: with N jobs at identical clocks, each
  // round steps them in submission order. The golden sequence below is what
  // the pre-heap scheduler produced.
  auto system = MakeG1System(1);
  constexpr int kJobs = 5;
  std::vector<ThreadContext*> ctxs;
  for (int i = 0; i < kJobs; ++i) {
    ctxs.push_back(&system->CreateThread());
  }
  std::vector<int> order;
  std::vector<int> counts(kJobs, 0);
  std::vector<SimJob> jobs;
  for (int i = 0; i < kJobs; ++i) {
    jobs.push_back({ctxs[i], [&, i]() {
                      if (counts[i] >= 3) {
                        return StepResult::kDone;
                      }
                      order.push_back(i);
                      ctxs[i]->AddCompute(50);  // all clocks collide every round
                      ++counts[i];
                      return StepResult::kProgress;
                    }});
  }
  Scheduler::Run(jobs);
  const std::vector<int> expected{0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 0, 1, 2, 3, 4};
  EXPECT_EQ(order, expected);
}

TEST(SchedulerTest, BatchBoundaryTieYieldsToSmallerJobIndex) {
  // Pins the batch-advance tie rule at the exact boundary: job 0 batches up
  // from behind and its clock lands *equal* to parked job 1's. The batch
  // comparison is (clock, index) < runner-up, so the equal-clock step still
  // belongs to job 0 (smaller index) — the same first-minimum-wins order the
  // per-step linear scan produced. A strict clock-only comparison would hand
  // the tied step to job 1 and shift every subsequent interleaving.
  auto system = MakeG1System(1);
  ThreadContext& a = system->CreateThread();
  ThreadContext& b = system->CreateThread();
  b.AdvanceTo(50);
  std::vector<int> order;
  int na = 0, nb = 0;
  std::vector<SimJob> jobs;
  jobs.push_back({&a, [&]() {
                    if (na >= 4) {
                      return StepResult::kDone;
                    }
                    order.push_back(0);
                    a.AddCompute(25);
                    ++na;
                    return StepResult::kProgress;
                  }});
  jobs.push_back({&b, [&]() {
                    if (nb >= 4) {
                      return StepResult::kDone;
                    }
                    order.push_back(1);
                    b.AddCompute(25);
                    ++nb;
                    return StepResult::kProgress;
                  }});
  Scheduler::Run(jobs);
  // Clocks: A 0->25->50 (ties B), A again at 50, B at 50 (ties A at 75),
  // A at 75 (done), then B runs out alone.
  const std::vector<int> expected{0, 0, 0, 1, 0, 1, 1, 1};
  EXPECT_EQ(order, expected);
}

TEST(SchedulerTest, IdenticalRunsProduceIdenticalInterleavings) {
  // Two runs of the same mixed-cost workload must interleave identically —
  // the heap must not introduce any ordering dependence on its internal
  // layout. Step costs are chosen so clocks repeatedly collide.
  auto run_once = [] {
    auto system = MakeG1System(1);
    constexpr int kJobs = 4;
    const Cycles costs[kJobs] = {30, 60, 30, 90};
    std::vector<ThreadContext*> ctxs;
    for (int i = 0; i < kJobs; ++i) {
      ctxs.push_back(&system->CreateThread());
    }
    std::vector<int> order;
    std::vector<int> counts(kJobs, 0);
    std::vector<SimJob> jobs;
    for (int i = 0; i < kJobs; ++i) {
      jobs.push_back({ctxs[i], [&, i]() {
                        if (counts[i] >= 12) {
                          return StepResult::kDone;
                        }
                        order.push_back(i);
                        ctxs[i]->AddCompute(costs[i]);
                        ++counts[i];
                        return StepResult::kProgress;
                      }});
    }
    Scheduler::Run(jobs);
    return order;
  };
  const std::vector<int> first = run_once();
  const std::vector<int> second = run_once();
  ASSERT_EQ(first.size(), 4u * 12u);
  EXPECT_EQ(first, second);
}

TEST(SchedulerTest, BatchedFastPathMatchesGoldenSequence) {
  // One job far behind the others: the sole-minimum fast path lets it step
  // repeatedly without heap churn, but the observable order must equal the
  // per-step linear scan's. Job 0 steps in 10-cycle increments while jobs 1
  // and 2 sit at clock 100/200 until job 0 passes them.
  auto system = MakeG1System(1);
  ThreadContext& a = system->CreateThread();
  ThreadContext& b = system->CreateThread();
  ThreadContext& c = system->CreateThread();
  b.AdvanceTo(100);
  c.AdvanceTo(200);
  std::vector<int> order;
  int na = 0, nb = 0, nc = 0;
  std::vector<SimJob> jobs;
  jobs.push_back({&a, [&]() {
                    if (na >= 25) {
                      return StepResult::kDone;
                    }
                    order.push_back(0);
                    a.AddCompute(10);
                    ++na;
                    return StepResult::kProgress;
                  }});
  jobs.push_back({&b, [&]() {
                    if (nb >= 1) {
                      return StepResult::kDone;
                    }
                    order.push_back(1);
                    b.AddCompute(500);
                    ++nb;
                    return StepResult::kProgress;
                  }});
  jobs.push_back({&c, [&]() {
                    if (nc >= 1) {
                      return StepResult::kDone;
                    }
                    order.push_back(2);
                    c.AddCompute(500);
                    ++nc;
                    return StepResult::kProgress;
                  }});
  Scheduler::Run(jobs);
  EXPECT_EQ(order.size(), 27u);
  EXPECT_EQ(na, 25);
  EXPECT_EQ(nb, 1);
  EXPECT_EQ(nc, 1);
  // Golden order from a reference linear scan with first-minimum-wins ties —
  // exactly the pre-heap scheduler's policy.
  std::vector<int> golden;
  struct J {
    Cycles clock;
    int steps_left;
    Cycles cost;
  };
  J sim[3] = {{0, 25, 10}, {100, 1, 500}, {200, 1, 500}};
  while (sim[0].steps_left || sim[1].steps_left || sim[2].steps_left) {
    int best = -1;
    for (int i = 0; i < 3; ++i) {
      if (sim[i].steps_left &&
          (best < 0 || sim[i].clock < sim[best].clock)) {
        best = i;
      }
    }
    golden.push_back(best);
    sim[best].clock += sim[best].cost;
    --sim[best].steps_left;
  }
  EXPECT_EQ(order, golden);
}

TEST(SchedulerTest, SlowThreadYieldsToFast) {
  auto system = MakeG1System(1);
  ThreadContext& slow = system->CreateThread();
  ThreadContext& fast = system->CreateThread();
  int ns = 0, nf = 0;
  std::vector<SimJob> jobs;
  jobs.push_back({&slow, [&]() {
                    if (ns >= 1) {
                      return StepResult::kDone;
                    }
                    slow.AddCompute(1000);
                    ++ns;
                    return StepResult::kProgress;
                  }});
  jobs.push_back({&fast, [&]() {
                    if (nf >= 10) {
                      return StepResult::kDone;
                    }
                    fast.AddCompute(10);
                    ++nf;
                    return StepResult::kProgress;
                  }});
  Scheduler::Run(jobs);
  EXPECT_EQ(ns, 1);
  EXPECT_EQ(nf, 10);
}

// ---------- eADR semantics ----------

struct EadrFixture {
  std::unique_ptr<System> system = std::make_unique<System>(G2EadrPlatform(), 1);
  ThreadContext* ctx = &system->CreateThread();
  PmRegion pm = system->AllocatePm(KiB(64));

  EadrFixture() { SetPrefetchers(*ctx, false, false, false); }
};

TEST(EadrTest, FlushesAreLatencyFreeNoOps) {
  // With the caches inside the persistence domain, clwb and clflushopt do
  // nothing but advance the clock by a cycle — and queue no persist.
  EadrFixture f;
  f.ctx->Store64(f.pm.base, 0xE1);
  Cycles t0 = f.ctx->clock();
  f.ctx->Clwb(f.pm.base);
  EXPECT_EQ(f.ctx->clock() - t0, 1u);
  t0 = f.ctx->clock();
  f.ctx->Clflushopt(f.pm.base);
  EXPECT_EQ(f.ctx->clock() - t0, 1u);
  EXPECT_EQ(f.ctx->outstanding_persists(), 0u);
  EXPECT_EQ(f.system->counters().imc_write_bytes, 0u);
  // Contrast: the same sequence on plain G2 issues a real write-back.
  Fixture g2(Generation::kG2);
  g2.ctx->Store64(g2.pm.base, 0xE1);
  g2.ctx->Clwb(g2.pm.base);
  EXPECT_EQ(g2.ctx->outstanding_persists(), 1u);
}

TEST(EadrTest, FencesStillOrderWpqDrains) {
  // eADR removes flushes, not fences: an nt-store still traverses the iMC and
  // sfence/mfence must still wait for its WPQ drain.
  EadrFixture f;
  f.ctx->NtStore64(f.pm.base, 0xE2);
  EXPECT_GT(f.ctx->outstanding_persists(), 0u);
  f.ctx->Sfence();
  EXPECT_EQ(f.ctx->outstanding_persists(), 0u);
  f.ctx->NtStore64(f.pm.base + 64, 0xE3);
  EXPECT_GT(f.ctx->outstanding_persists(), 0u);
  f.ctx->Mfence();
  EXPECT_EQ(f.ctx->outstanding_persists(), 0u);
}

TEST(EadrTest, PmemHasAutoFlushAgreesWithFlushBehavior) {
  // The API-level predicate must match what ThreadContext actually does:
  // auto-flush platforms are exactly those whose Clwb queues no persist.
  for (const auto& platform : {G1Platform(), G2Platform(), G2EadrPlatform()}) {
    auto system = std::make_unique<System>(platform, 1);
    ThreadContext& ctx = system->CreateThread();
    SetPrefetchers(ctx, false, false, false);
    const PmRegion pm = system->AllocatePm(KiB(4));
    ctx.Store64(pm.base, 1);
    ctx.Clwb(pm.base);
    const bool flush_was_noop = ctx.outstanding_persists() == 0;
    EXPECT_EQ(PmemHasAutoFlush(*system), flush_was_noop) << platform.name;
    ctx.Sfence();
  }
}

// --- RunUntil (epoch-window) form of the scheduler -------------------------

// Builds a deterministic multi-job workload whose jobs advance by differing,
// phase-shifted strides (so clocks collide, interleave, and overtake), records
// the exact step order, and returns (order, final clocks).
struct WindowedWorkload {
  std::unique_ptr<System> system = MakeG1System(1);
  std::vector<ThreadContext*> ctxs;
  std::vector<int> counts;
  std::vector<int> order;
  std::vector<SimJob> jobs;

  WindowedWorkload(int n_jobs, int steps_per_job) {
    counts.assign(n_jobs, 0);
    for (int i = 0; i < n_jobs; ++i) {
      ctxs.push_back(&system->CreateThread());
    }
    for (int i = 0; i < n_jobs; ++i) {
      jobs.push_back({ctxs[i], [this, i, steps_per_job]() {
                        if (counts[i] >= steps_per_job) {
                          return StepResult::kDone;
                        }
                        order.push_back(i);
                        // Strides 40/50/60/... with a collision-rich pattern.
                        ctxs[i]->AddCompute(40 + 10 * (i % 3) + (counts[i] % 2) * 30);
                        ++counts[i];
                        return StepResult::kProgress;
                      }});
    }
  }
};

TEST(SchedulerTest, RunUntilWindowSplitReplaysIdenticalInterleaving) {
  // Splitting a run into ANY sequence of epoch windows must replay the exact
  // (clock, job-index) step order of the single-shot Run() — the property the
  // partitioned serving engine's determinism contract rests on.
  WindowedWorkload golden(5, 8);
  Scheduler::Run(golden.jobs);

  for (const Cycles window : {Cycles{1}, Cycles{37}, Cycles{64}, Cycles{1000}}) {
    WindowedWorkload split(5, 8);
    Scheduler scheduler(&split.jobs);
    Cycles limit = window;
    while (!scheduler.AllDone()) {
      scheduler.RunUntil(limit);
      limit += window;
    }
    EXPECT_EQ(split.order, golden.order) << "window=" << window;
    for (size_t i = 0; i < split.ctxs.size(); ++i) {
      EXPECT_EQ(split.ctxs[i]->clock(), golden.ctxs[i]->clock()) << "window=" << window;
    }
  }
}

TEST(SchedulerTest, RunUntilNoLimitMatchesRun) {
  WindowedWorkload golden(4, 6);
  Scheduler::Run(golden.jobs);

  WindowedWorkload once(4, 6);
  Scheduler scheduler(&once.jobs);
  EXPECT_FALSE(scheduler.AllDone());
  scheduler.RunUntil(Scheduler::kNoLimit);
  EXPECT_TRUE(scheduler.AllDone());
  EXPECT_EQ(scheduler.NextEventTime(), Scheduler::kNoLimit);
  EXPECT_EQ(once.order, golden.order);
}

TEST(SchedulerTest, RunUntilStopsAtWindowEdgeAndResumesInOrder) {
  // A job parked exactly AT the window edge must not step in that window,
  // and the next window must resume ties in (clock, job-index) order.
  auto system = MakeG1System(1);
  ThreadContext& a = system->CreateThread();
  ThreadContext& b = system->CreateThread();
  std::vector<int> order;
  int na = 0, nb = 0;
  std::vector<SimJob> jobs;
  jobs.push_back({&a, [&]() {
                    if (na >= 2) {
                      return StepResult::kDone;
                    }
                    order.push_back(0);
                    a.AddCompute(100);
                    ++na;
                    return StepResult::kProgress;
                  }});
  jobs.push_back({&b, [&]() {
                    if (nb >= 2) {
                      return StepResult::kDone;
                    }
                    order.push_back(1);
                    b.AddCompute(100);
                    ++nb;
                    return StepResult::kProgress;
                  }});
  Scheduler scheduler(&jobs);
  scheduler.RunUntil(100);  // both jobs step once, land exactly at 100
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(scheduler.NextEventTime(), 100u);  // parked at the edge, not run
  scheduler.RunUntil(100);                     // zero-width: must be a no-op
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  scheduler.RunUntil(201);  // tie at 100 resolves by job index, then at 200
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 1}));
  scheduler.RunUntil(Scheduler::kNoLimit);  // drain the kDone returns
  EXPECT_TRUE(scheduler.AllDone());
}

TEST(SchedulerTest, RunUntilJobWithNoWorkDoesNotStallWindow) {
  // A job that parks itself far past every window must not be stepped again
  // until a window reaches its clock — idle domains cost one step, not spins.
  auto system = MakeG1System(1);
  ThreadContext& busy = system->CreateThread();
  ThreadContext& idle = system->CreateThread();
  int busy_steps = 0, idle_steps = 0;
  std::vector<SimJob> jobs;
  jobs.push_back({&busy, [&]() {
                    if (busy_steps >= 50) {
                      return StepResult::kDone;
                    }
                    ++busy_steps;
                    busy.AddCompute(10);
                    return StepResult::kProgress;
                  }});
  jobs.push_back({&idle, [&]() {
                    ++idle_steps;
                    idle.AdvanceTo(idle.clock() + 10000);  // park far ahead
                    return idle_steps >= 2 ? StepResult::kDone : StepResult::kProgress;
                  }});
  Scheduler scheduler(&jobs);
  for (Cycles limit = 100; limit <= 500; limit += 100) {
    scheduler.RunUntil(limit);
  }
  EXPECT_EQ(busy_steps, 50);
  EXPECT_EQ(idle_steps, 1);  // parked at 10000; windows up to 500 skip it
}

}  // namespace
}  // namespace pmemsim
