// Figure 8 (paper §3.6): user-perceived per-element latency vs working set
// size for the 256 B pointer-chase element workload:
//   (a) writes under strict persistency (barrier per element)
//   (b) writes under relaxed persistency (one fence per pass)
//   (c) latency breakdown: pure reads vs pure writes
// with sequential and random element orders, clwb and nt-store persists.
//
// Expected shapes (paper): three latency levels — low while the WSS fits the
// on-DIMM buffers, a ~400-cycle plateau up to ~16 MB, then a steep climb to
// ~1000+ for random access as the AIT and L3 overflow. Write latency stays
// flat at any WSS; reads dominate beyond the LLC.
//
// Output: CSV  gen,panel,series,wss_kb,cycles_per_element

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "bench/sweep_runner.h"
#include "src/core/platform.h"
#include "src/datastores/chase_list.h"

namespace {

using namespace pmemsim;

struct Series {
  const char* name;
  bool sequential;
  PersistMode mode;
};

double MeasureUpdate(Generation gen, uint64_t wss, bool sequential, PersistMode mode,
                     Persistency persistency, uint64_t max_ops) {
  auto system = MakeSystem(gen, /*optane_dimm_count=*/1);
  ThreadContext& ctx = system->CreateThread();
  const PmRegion region = system->AllocatePm(wss, kXPLineSize);
  ChaseList list(system.get(), region, sequential, /*seed=*/0x11 + wss);

  const uint64_t count = list.size();
  const uint64_t warm = std::max<uint64_t>(std::min<uint64_t>(count, max_ops), 2000);
  const uint64_t measured = std::max<uint64_t>(std::min<uint64_t>(2 * count, max_ops), 4000);
  list.TraverseUpdate(ctx, warm, mode, persistency);
  const Cycles cycles = list.TraverseUpdate(ctx, measured, mode, persistency);
  return static_cast<double>(cycles) / static_cast<double>(measured);
}

double MeasureRead(Generation gen, uint64_t wss, bool sequential, uint64_t max_ops) {
  auto system = MakeSystem(gen, /*optane_dimm_count=*/1);
  ThreadContext& ctx = system->CreateThread();
  const PmRegion region = system->AllocatePm(wss, kXPLineSize);
  ChaseList list(system.get(), region, sequential, /*seed=*/0x22 + wss);

  const uint64_t count = list.size();
  const uint64_t warm = std::max<uint64_t>(std::min<uint64_t>(count, max_ops), 2000);
  const uint64_t measured = std::max<uint64_t>(std::min<uint64_t>(2 * count, max_ops), 4000);
  list.TraverseRead(ctx, warm);
  const Cycles cycles = list.TraverseRead(ctx, measured);
  return static_cast<double>(cycles) / static_cast<double>(measured);
}

double MeasurePureWrite(Generation gen, uint64_t wss, bool sequential, PersistMode mode,
                        uint64_t max_ops) {
  auto system = MakeSystem(gen, /*optane_dimm_count=*/1);
  ThreadContext& ctx = system->CreateThread();
  const PmRegion region = system->AllocatePm(wss, kXPLineSize);
  ChaseList list(system.get(), region, sequential, /*seed=*/0x33 + wss);

  const uint64_t count = list.size();
  const uint64_t warm = std::max<uint64_t>(std::min<uint64_t>(count, max_ops), 2000);
  const uint64_t measured = std::max<uint64_t>(std::min<uint64_t>(2 * count, max_ops), 4000);
  list.PureWrite(ctx, warm, mode, Persistency::kStrict);
  const Cycles cycles = list.PureWrite(ctx, measured, mode, Persistency::kStrict);
  return static_cast<double>(cycles) / static_cast<double>(measured);
}

}  // namespace

int main(int argc, char** argv) {
  pmemsim_bench::Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::printf(
        "usage: fig08_latency [--gen=g1|g2|both] [--max_mb=1024] [--max_ops=200000]\n"
        "Panels: strict, relaxed, breakdown (pure read / pure write).\n%s",
        pmemsim_bench::kTelemetryFlagsHelp);
    return 0;
  }
  const std::string gen_flag = flags.Get("gen", "g1");
  const uint64_t max_mb = flags.GetU64("max_mb", 1024);
  const uint64_t max_ops = flags.GetU64("max_ops", 120000);
  pmemsim_bench::BenchReport report(flags, "fig08_latency");
  pmemsim_bench::SweepRunner runner(flags);
  flags.RejectUnknown();

  static const Series kWriteSeries[] = {
      {"seq_clwb", true, PersistMode::kClwbSfence},
      {"rand_clwb", false, PersistMode::kClwbSfence},
      {"seq_nt-store", true, PersistMode::kNtStoreSfence},
      {"rand_nt-store", false, PersistMode::kNtStoreSfence},
  };

  std::vector<uint64_t> wss_points;
  for (uint64_t kb = 4; kb <= max_mb * 1024; kb *= 2) {
    wss_points.push_back(KiB(kb));
  }

  pmemsim_bench::PrintHeader("Figure 8", "per-element latency vs WSS (linked-list elements)");
  std::printf("gen,panel,series,wss_kb,cycles\n");
  for (Generation gen : {Generation::kG1, Generation::kG2}) {
    if ((gen == Generation::kG1 && gen_flag == "g2") ||
        (gen == Generation::kG2 && gen_flag == "g1")) {
      continue;
    }
    const char* gname = gen == Generation::kG1 ? "G1" : "G2";
    for (const uint64_t wss : wss_points) {
      for (const Series& s : kWriteSeries) {
        const std::string label = std::string(gname) + "/" + s.name + "/" +
                                  std::to_string(wss / 1024) + "kb";
        runner.Add(label, [=](pmemsim_bench::SweepPoint& point) {
          const double strict =
              MeasureUpdate(gen, wss, s.sequential, s.mode, Persistency::kStrict, max_ops);
          point.Printf("%s,strict,%s,%llu,%.1f\n", gname, s.name,
                       static_cast<unsigned long long>(wss / 1024), strict);
          point.AddRow().Set("gen", gname).Set("panel", "strict").Set("series", s.name)
              .Set("wss_kb", wss / 1024).Set("cycles", strict);
          const double relaxed =
              MeasureUpdate(gen, wss, s.sequential, s.mode, Persistency::kRelaxed, max_ops);
          point.Printf("%s,relaxed,%s,%llu,%.1f\n", gname, s.name,
                       static_cast<unsigned long long>(wss / 1024), relaxed);
          point.AddRow().Set("gen", gname).Set("panel", "relaxed").Set("series", s.name)
              .Set("wss_kb", wss / 1024).Set("cycles", relaxed);
          const double pure = MeasurePureWrite(gen, wss, s.sequential, s.mode, max_ops);
          point.Printf("%s,breakdown,%s,%llu,%.1f\n", gname, s.name,
                       static_cast<unsigned long long>(wss / 1024), pure);
          point.AddRow().Set("gen", gname).Set("panel", "breakdown").Set("series", s.name)
              .Set("wss_kb", wss / 1024).Set("cycles", pure);
        });
      }
      for (const bool sequential : {true, false}) {
        const std::string label = std::string(gname) + "/" + (sequential ? "seq" : "rand") +
                                  "_rd/" + std::to_string(wss / 1024) + "kb";
        runner.Add(label, [=](pmemsim_bench::SweepPoint& point) {
          const double read = MeasureRead(gen, wss, sequential, max_ops);
          point.Printf("%s,breakdown,%s_rd,%llu,%.1f\n", gname, sequential ? "seq" : "rand",
                       static_cast<unsigned long long>(wss / 1024), read);
          point.AddRow().Set("gen", gname).Set("panel", "breakdown")
              .Set("series", std::string(sequential ? "seq" : "rand") + "_rd")
              .Set("wss_kb", wss / 1024).Set("cycles", read);
        });
      }
    }
  }
  return runner.Finish(report);
}
