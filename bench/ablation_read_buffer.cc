// Ablation: which read-buffer design reproduces Figure 2?
//
// The paper infers (§3.1) that the read buffer evicts FIFO and is exclusive
// of the CPU caches (RA jumps sharply past capacity, and never drops below
// 1). This bench re-runs the Fig. 2 probe under the alternatives:
//   * LRU eviction     -> the RA cliff softens (re-referenced XPLines survive)
//   * inclusive buffer -> RA drops below 1 when the WSS fits (recurring reads
//                         hit the buffer instead of the media)
// Only FIFO+exclusive matches the measurements.
//
// Output: CSV  policy,wss_kb,cpx,read_amplification

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/sweep_runner.h"
#include "src/common/config.h"
#include "src/core/platform.h"
#include "src/trace/counters.h"

namespace {

using namespace pmemsim;

double MeasureRa(const OptaneDimmConfig& dimm_cfg, uint64_t wss, uint32_t cpx) {
  PlatformConfig cfg = G1Platform();
  cfg.optane = dimm_cfg;
  auto system = std::make_unique<System>(cfg, 1);
  ThreadContext& ctx = system->CreateThread();
  SetPrefetchers(ctx, false, false, false);

  const PmRegion region = system->AllocatePm(wss, kXPLineSize);
  const uint64_t xplines = wss / kXPLineSize;
  auto run = [&](int passes) {
    for (int p = 0; p < passes; ++p) {
      for (uint32_t cl = 0; cl < cpx; ++cl) {
        for (uint64_t xp = 0; xp < xplines; ++xp) {
          const Addr a = region.base + xp * kXPLineSize + cl * kCacheLineSize;
          ctx.LoadLine(a);
          ctx.Clflushopt(a);
        }
        ctx.Sfence();
      }
    }
  };
  run(3);
  CounterDelta d(&system->counters());
  run(8);
  return d.Delta().ReadAmplification();
}

}  // namespace

int main(int argc, char** argv) {
  pmemsim_bench::Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::printf("usage: ablation_read_buffer [--max_kb=32]\n%s",
                pmemsim_bench::kTelemetryFlagsHelp);
    return 0;
  }
  const uint64_t max_kb = flags.GetU64("max_kb", 32);
  pmemsim_bench::BenchReport report(flags, "ablation_read_buffer");
  pmemsim_bench::SweepRunner runner(flags);
  flags.RejectUnknown();

  struct Policy {
    const char* name;
    uint8_t eviction;
    bool exclusive;
  };
  static const Policy kPolicies[] = {
      {"fifo-exclusive (hardware)", 0, true},
      {"lru-exclusive", 1, true},
      {"fifo-inclusive", 0, false},
  };

  pmemsim_bench::PrintHeader("Ablation", "read-buffer eviction & exclusivity vs Figure 2");
  std::printf("policy,wss_kb,cpx,read_amplification\n");
  for (const Policy& p : kPolicies) {
    OptaneDimmConfig dimm = G1Platform().optane;
    dimm.read_buffer_eviction = p.eviction;
    dimm.read_buffer_exclusive = p.exclusive;
    for (uint64_t kb = 4; kb <= max_kb; kb += 4) {
      for (uint32_t cpx = 1; cpx <= 4; cpx += 3) {
        const std::string label =
            std::string(p.name) + "/" + std::to_string(kb) + "kb/cpx" + std::to_string(cpx);
        runner.Add(label, [=](pmemsim_bench::SweepPoint& point) {
          const double ra = MeasureRa(dimm, KiB(kb), cpx);
          point.Printf("%s,%llu,%u,%.3f\n", p.name, static_cast<unsigned long long>(kb), cpx,
                       ra);
          point.AddRow()
              .Set("policy", p.name)
              .Set("wss_kb", kb)
              .Set("cpx", cpx)
              .Set("read_amplification", ra);
        });
      }
    }
  }
  return runner.Finish(report);
}
