// Persistence-barrier helpers: the idioms persistent programs use to make
// stores durable on ADR platforms (paper §2.1). A persistence barrier is one
// or more cacheline flushes (or nt-stores) followed by a store fence; the
// fence's return guarantees WPQ acceptance (= persistence), not completion.

#ifndef SRC_PERSIST_BARRIER_H_
#define SRC_PERSIST_BARRIER_H_

#include <cstdint>

#include "src/common/types.h"
#include "src/cpu/thread_context.h"

namespace pmemsim {

// How a store becomes persistent.
enum class PersistMode : uint8_t {
  kClwbSfence,     // store, clwb, sfence
  kClwbMfence,     // store, clwb, mfence
  kNtStoreSfence,  // nt-store, sfence
  kNtStoreMfence,  // nt-store, mfence
};

// Ordering discipline across a sequence of updates.
enum class Persistency : uint8_t {
  kStrict,   // a barrier after every update
  kRelaxed,  // flushes issued unfenced; one fence at the end of the batch
  kEpoch,    // a barrier every epoch of updates (between strict and relaxed)
};

// Issues clwb for every cacheline covering [addr, addr+len).
void FlushRange(ThreadContext& ctx, Addr addr, uint64_t len);

// Issues clflushopt for every cacheline covering [addr, addr+len).
void FlushInvalidateRange(ThreadContext& ctx, Addr addr, uint64_t len);

// FlushRange + fence: the canonical persistence barrier.
void Persist(ThreadContext& ctx, Addr addr, uint64_t len, bool use_mfence = false);

// Stores a 64-bit value and makes it durable per `mode`.
void PersistentStore64(ThreadContext& ctx, Addr addr, uint64_t value, PersistMode mode);

// True if the mode flushes via clwb (vs nt-store).
constexpr bool UsesClwb(PersistMode mode) {
  return mode == PersistMode::kClwbSfence || mode == PersistMode::kClwbMfence;
}

constexpr bool UsesMfence(PersistMode mode) {
  return mode == PersistMode::kClwbMfence || mode == PersistMode::kNtStoreMfence;
}

}  // namespace pmemsim

#endif  // SRC_PERSIST_BARRIER_H_
