# Empty dependencies file for pmemsim.
# This may be replaced when dependencies are built.
