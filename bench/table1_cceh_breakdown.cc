// Table 1 (paper §4.1): time breakdown of key insertion in CCEH under
// {1, 5} worker threads and {1, 6} Optane DIMMs.
//
// The paper's profile attributes ~50% of insert time to the random segment
// read, ~22-26% to persists, and the rest to "Misc." — the key claim being
// that the random reads inside the segment, not the persists, bottleneck this
// write-intensive workload regardless of thread or DIMM count. Our simulator
// separates the segment-header read from the bucket-probe read (both random
// media reads that perf-level attribution lumps together; see EXPERIMENTS.md).
//
// Output: rows of percentages per configuration.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/sweep_runner.h"
#include "src/common/config.h"
#include "src/core/platform.h"
#include "src/cpu/scheduler.h"
#include "src/datastores/cceh.h"
#include "src/workload/ycsb.h"

namespace {

using namespace pmemsim;

struct Row {
  double directory, segment_meta, bucket, persist, split, total_cycles_per_insert;
};

Row RunBreakdown(uint32_t threads, uint32_t dimms, uint64_t total_keys, bool scaled_cache) {
  PlatformConfig cfg = G1Platform();
  if (scaled_cache) {
    cfg.cache.l3.size_bytes = MiB(3);  // scaled testbed: see EXPERIMENTS.md
    cfg.cache.l3.ways = 12;
  }
  auto system = std::make_unique<System>(cfg, dimms);
  ThreadContext& init_ctx = system->CreateThread();
  Cceh table(system.get(), init_ctx, /*initial_depth=*/8, MemoryKind::kOptane);

  const std::vector<uint64_t> keys = MakeLoadKeys(total_keys, /*seed=*/0x7AB1E);
  const std::vector<std::vector<uint64_t>> shards = ShardKeys(keys, threads);

  std::vector<size_t> cursors(threads, 0);
  std::vector<ThreadContext*> ctxs;
  for (uint32_t t = 0; t < threads; ++t) {
    ctxs.push_back(&system->CreateThread());
  }
  // Phase 1: grow the table past the LLC (the paper's table holds 16 M pairs,
  // ~256 MB — far beyond any cache). The breakdown is profiled in steady
  // state, over the last quarter of the load.
  auto run_until = [&](double fraction) {
    std::vector<SimJob> jobs;
    for (uint32_t t = 0; t < threads; ++t) {
      const size_t limit = static_cast<size_t>(fraction * static_cast<double>(shards[t].size()));
      jobs.push_back({ctxs[t], [&, t, limit]() {
                        if (cursors[t] >= limit) {
                          return StepResult::kDone;
                        }
                        const uint64_t key = shards[t][cursors[t]++];
                        table.Insert(*ctxs[t], key, key * 3);
                        return StepResult::kProgress;
                      }});
    }
    Scheduler::Run(jobs);
  };
  run_until(0.75);
  table.breakdown() = CcehBreakdown{};
  run_until(1.0);

  const CcehBreakdown& b = table.breakdown();
  const double total = static_cast<double>(b.total());
  return {100.0 * static_cast<double>(b.directory) / total,
          100.0 * static_cast<double>(b.segment_meta) / total,
          100.0 * static_cast<double>(b.bucket_probe) / total,
          100.0 * static_cast<double>(b.persist) / total,
          100.0 * static_cast<double>(b.split) / total,
          total / static_cast<double>(b.inserts)};
}

}  // namespace

int main(int argc, char** argv) {
  pmemsim_bench::Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::printf("usage: table1_cceh_breakdown [--keys=400000]\n%s",
                pmemsim_bench::kTelemetryFlagsHelp);
    return 0;
  }
  const uint64_t keys = flags.GetU64("keys", 2000000);
  const bool scaled_cache = !flags.Has("full_cache");
  pmemsim_bench::BenchReport report(flags, "table1_cceh_breakdown");
  pmemsim_bench::SweepRunner runner(flags);
  flags.RejectUnknown();

  pmemsim_bench::PrintHeader("Table 1", "time breakdown of key insertion in CCEH (G1)");
  std::printf(
      "config,directory_pct,segment_meta_pct,bucket_probe_pct,persist_pct,split_pct,"
      "cycles_per_insert\n");
  struct Config {
    uint32_t threads, dimms;
    const char* name;
  };
  static const Config kConfigs[] = {
      {1, 1, "1T/1-DIMM"}, {5, 1, "5T/1-DIMM"}, {1, 6, "1T/6-DIMM"}, {5, 6, "5T/6-DIMM"}};
  for (const Config& c : kConfigs) {
    runner.Add(c.name, [=](pmemsim_bench::SweepPoint& point) {
      const Row r = RunBreakdown(c.threads, c.dimms, keys, scaled_cache);
      point.Printf("%s,%.1f,%.1f,%.1f,%.1f,%.1f,%.0f\n", c.name, r.directory, r.segment_meta,
                   r.bucket, r.persist, r.split, r.total_cycles_per_insert);
      point.AddRow()
          .Set("config", c.name)
          .Set("directory_pct", r.directory)
          .Set("segment_meta_pct", r.segment_meta)
          .Set("bucket_probe_pct", r.bucket)
          .Set("persist_pct", r.persist)
          .Set("split_pct", r.split)
          .Set("cycles_per_insert", r.total_cycles_per_insert);
    });
  }
  return runner.Finish(report);
}
