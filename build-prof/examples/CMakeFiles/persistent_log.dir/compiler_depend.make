# Empty compiler generated dependencies file for persistent_log.
# This may be replaced when dependencies are built.
