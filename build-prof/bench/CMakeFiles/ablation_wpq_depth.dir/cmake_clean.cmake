file(REMOVE_RECURSE
  "CMakeFiles/ablation_wpq_depth.dir/ablation_wpq_depth.cc.o"
  "CMakeFiles/ablation_wpq_depth.dir/ablation_wpq_depth.cc.o.d"
  "ablation_wpq_depth"
  "ablation_wpq_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wpq_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
