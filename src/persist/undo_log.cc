#include "src/persist/undo_log.h"

#include <cstring>

#include "src/common/check.h"
#include "src/persist/barrier.h"

namespace pmemsim {

Transaction::Transaction(System* system, PmRegion log_region)
    : system_(system), region_(log_region) {
  PMEMSIM_CHECK(system != nullptr);
  PMEMSIM_CHECK(region_.kind == MemoryKind::kOptane);
  PMEMSIM_CHECK(region_.size >= 4 * kRecordSize);
  PMEMSIM_CHECK(IsCacheLineAligned(region_.base));
}

void Transaction::WriteHead(ThreadContext& ctx, uint64_t state, uint64_t seq) {
  uint8_t head[kRecordSize] = {};
  const uint32_t magic = kHeadMagic;
  std::memcpy(head, &magic, sizeof(magic));
  std::memcpy(head + 4, &state, 4);
  std::memcpy(head + 8, &seq, sizeof(seq));
  ctx.NtStoreLine(region_.base, head);
  ctx.Sfence();
}

void Transaction::Begin(ThreadContext& ctx) {
  PMEMSIM_CHECK_MSG(!active_, "transactions do not nest");
  ++seq_;
  next_record_ = 1;
  shadows_.clear();
  WriteHead(ctx, kStateActive, seq_);
  active_ = true;
}

void Transaction::AppendSnapshotRecord(ThreadContext& ctx, Addr target,
                                       const uint8_t* old_bytes, uint32_t len) {
  PMEMSIM_CHECK_MSG(next_record_ < capacity_records(), "undo log arena full");
  uint8_t rec[kRecordSize] = {};
  std::memcpy(rec, &target, sizeof(target));
  std::memcpy(rec + 8, &len, sizeof(len));
  const uint32_t magic = kSnapMagic;
  std::memcpy(rec + 12, &magic, sizeof(magic));
  std::memcpy(rec + 16, &seq_, sizeof(seq_));
  std::memcpy(rec + 24, old_bytes, len);
  ctx.NtStoreLine(RecordAddr(next_record_), rec);
  ++next_record_;

  Shadow s;
  s.target = target;
  s.len = len;
  std::memcpy(s.old_bytes, old_bytes, len);
  shadows_.push_back(s);
}

void Transaction::Snapshot(ThreadContext& ctx, Addr addr, uint32_t len) {
  PMEMSIM_CHECK_MSG(active_, "Snapshot outside a transaction");
  PMEMSIM_CHECK(len > 0);
  uint8_t buf[kMaxPayload];
  while (len > 0) {
    const uint32_t chunk = len < kMaxPayload ? len : kMaxPayload;
    ctx.Read(addr, buf, chunk);  // the old image, timed
    AppendSnapshotRecord(ctx, addr, buf, chunk);
    addr += chunk;
    len -= chunk;
  }
  // The snapshot must be durable before the caller's in-place stores.
  ctx.Sfence();
}

void Transaction::Store64(ThreadContext& ctx, Addr addr, uint64_t value) {
  Snapshot(ctx, addr, sizeof(value));
  ctx.Store64(addr, value);
}

void Transaction::Commit(ThreadContext& ctx) {
  PMEMSIM_CHECK_MSG(active_, "Commit outside a transaction");
  // Persist the new in-place data for every snapshotted range.
  for (const Shadow& s : shadows_) {
    FlushRange(ctx, s.target, s.len);
  }
  ctx.Sfence();
  WriteHead(ctx, kStateIdle, seq_);
  active_ = false;
  shadows_.clear();
  next_record_ = 1;
}

void Transaction::Abort(ThreadContext& ctx) {
  PMEMSIM_CHECK_MSG(active_, "Abort outside a transaction");
  // Restore old images in reverse order (overlapping snapshots restore the
  // oldest state last).
  for (auto it = shadows_.rbegin(); it != shadows_.rend(); ++it) {
    ctx.Write(it->target, it->old_bytes, it->len);
    FlushRange(ctx, it->target, it->len);
  }
  ctx.Sfence();
  WriteHead(ctx, kStateIdle, seq_);
  active_ = false;
  shadows_.clear();
  next_record_ = 1;
}

size_t Transaction::Recover(ThreadContext& ctx) {
  uint8_t head[kRecordSize];
  ctx.Read(region_.base, head, sizeof(head));
  uint32_t magic = 0;
  uint64_t state = 0, seq = 0;
  std::memcpy(&magic, head, sizeof(magic));
  std::memcpy(&state, head + 4, 4);
  std::memcpy(&seq, head + 8, sizeof(seq));

  active_ = false;
  shadows_.clear();
  next_record_ = 1;
  if (magic != kHeadMagic || state != kStateActive) {
    seq_ = magic == kHeadMagic ? seq : 0;
    return 0;  // no transaction was in flight
  }

  // Collect this transaction's snapshot records, then roll back in reverse.
  struct Rec {
    Addr target;
    uint32_t len;
    uint8_t bytes[kMaxPayload];
  };
  std::vector<Rec> records;
  for (uint64_t i = 1; i < capacity_records(); ++i) {
    uint8_t rec[kRecordSize];
    ctx.Read(RecordAddr(i), rec, sizeof(rec));
    uint32_t rec_magic = 0, len = 0;
    uint64_t rec_seq = 0;
    std::memcpy(&rec_magic, rec + 12, sizeof(rec_magic));
    std::memcpy(&len, rec + 8, sizeof(len));
    std::memcpy(&rec_seq, rec + 16, sizeof(rec_seq));
    if (rec_magic != kSnapMagic || rec_seq != seq) {
      break;  // end of this transaction's contiguous records
    }
    if (len == 0 || len > kMaxPayload) {
      break;  // torn record: everything after it is unreliable
    }
    Rec r;
    std::memcpy(&r.target, rec, sizeof(r.target));
    r.len = len;
    std::memcpy(r.bytes, rec + 24, len);
    records.push_back(r);
  }
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    ctx.Write(it->target, it->bytes, it->len);
    FlushRange(ctx, it->target, it->len);
  }
  ctx.Sfence();
  WriteHead(ctx, kStateIdle, seq);
  seq_ = seq;
  return records.size();
}

}  // namespace pmemsim
