#include "src/core/system.h"

#include <string>

#include "src/common/check.h"
#include "src/common/random.h"
#include "src/trace/recorder.h"

namespace pmemsim {

System::System(const PlatformConfig& config, uint32_t optane_dimm_count) : config_(config) {
  counters_.BindAggregate(&registry_);
  mc_ = std::make_unique<MemoryController>(config_, &registry_, optane_dimm_count);
  l3_ = std::make_unique<SetAssocCache>(config_.cache.l3);
}

PmRegion System::AllocatePm(uint64_t bytes, uint64_t align) {
  PMEMSIM_CHECK(bytes > 0);
  pm_next_ = AlignUp(pm_next_, align);
  const PmRegion region{pm_next_, bytes, MemoryKind::kOptane};
  pm_next_ += AlignUp(bytes, align);
  PMEMSIM_CHECK_MSG(pm_next_ < kDramAddressBase, "PM address space exhausted");
  return region;
}

PmRegion System::AllocateDram(uint64_t bytes, uint64_t align) {
  PMEMSIM_CHECK(bytes > 0);
  dram_next_ = AlignUp(dram_next_, align);
  const PmRegion region{dram_next_, bytes, MemoryKind::kDram};
  dram_next_ += AlignUp(bytes, align);
  return region;
}

ThreadContext& System::CreateThread(NodeId node) {
  thread_seed_ = Mix64(thread_seed_ + 0x9E3779B97F4A7C15ull);
  Counters* scope = registry_.CreateScope("thread" + std::to_string(threads_.size()));
  threads_.push_back(std::make_unique<ThreadContext>(config_, &backing_, mc_.get(), l3_.get(),
                                                     scope, node, thread_seed_));
  threads_.back()->SetPersistObserver(persist_observer_);
  threads_.back()->SetAttribution(attribution_);
  if (trace_recorder_ != nullptr) {
    const uint32_t tid = static_cast<uint32_t>(threads_.size() - 1);
    trace_recorder_->DeclareThread(tid, node);
    threads_.back()->SetTraceRecorder(trace_recorder_, tid);
  }
  return *threads_.back();
}

ThreadContext& System::CreateSmtSibling(ThreadContext& sibling) {
  Counters* scope = registry_.CreateScope("thread" + std::to_string(threads_.size()));
  threads_.push_back(
      std::make_unique<ThreadContext>(config_, &backing_, mc_.get(), scope, &sibling));
  threads_.back()->SetPersistObserver(persist_observer_);
  threads_.back()->SetAttribution(attribution_);
  if (trace_recorder_ != nullptr) {
    const uint32_t tid = static_cast<uint32_t>(threads_.size() - 1);
    trace_recorder_->DeclareThread(tid, sibling.node());
    threads_.back()->SetTraceRecorder(trace_recorder_, tid);
  }
  return *threads_.back();
}

void System::SetPersistObserver(PersistObserver* observer) {
  persist_observer_ = observer;
  for (auto& t : threads_) {
    t->SetPersistObserver(observer);
  }
}

void System::SetAttribution(AttributionCollector* collector) {
  attribution_ = collector;
  for (auto& t : threads_) {
    t->SetAttribution(collector);
  }
}

void System::SetTraceRecorder(TraceRecorder* recorder) {
  trace_recorder_ = recorder;
  for (uint32_t tid = 0; tid < threads_.size(); ++tid) {
    if (recorder != nullptr) {
      recorder->DeclareThread(tid, threads_[tid]->node());
    }
    threads_[tid]->SetTraceRecorder(recorder, tid);
  }
}

SampleGauges System::ReadGauges(Cycles now) {
  SampleGauges g;
  for (size_t i = 0; i < mc_->optane_dimm_count(); ++i) {
    g.wpq_occupancy += static_cast<double>(mc_->optane_wpq(i).OccupancyAt(now));
    g.read_buffer_entries += mc_->optane_dimm(i).read_buffer().occupied_entries();
    g.write_buffer_entries += mc_->optane_dimm(i).write_buffer().occupied_entries();
  }
  if (extra_gauges_) {
    extra_gauges_(now, &g);
  }
  return g;
}

void System::ResetMicroarchState() {
  mc_->Reset();
  l3_->Clear();
  for (auto& t : threads_) {
    t->ResetMicroarchState();
  }
}

}  // namespace pmemsim
