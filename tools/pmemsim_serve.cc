// pmemsim_serve — the sharded KV request-serving tier.
//
// Stands up N shards (each its own datastore instance with M worker threads
// and a bounded admission queue) on one simulated machine per configuration,
// drives YCSB core mixes from closed-loop (fixed clients, exponential think)
// or open-loop (Poisson arrivals) client populations, and reports throughput
// plus exact-rank p50/p99/p999 sojourn tails per shard and globally. The
// per-shard memory-side decomposition (media/buffer/RAP/WPQ) comes from the
// attribution layer and lands in the --stats_json "serve" section.
//
//   $ pmemsim_serve --store=fastfair --mixes=a,b --loop=both --shards=4
//   $ pmemsim_serve --store=cceh --mixes=a --loop=open --arrival_interval=300
//       --queue_depth=16 --stats_json=serve.json
//
// Each (mix, loop) combination is one sweep point with its own System and
// seed-derived randomness, so --jobs=N parallelism keeps stdout and the JSON
// report byte-identical to a serial run.

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/sweep_runner.h"
#include "src/core/platform.h"
#include "src/serve/domain_tier.h"
#include "src/serve/tier.h"
#include "src/trace/json.h"
#include "src/workload/ycsb.h"

namespace {

using namespace pmemsim;

struct ServeCliConfig {
  PlatformConfig platform;
  uint32_t dimms = 0;  // 0 = one DIMM per shard (legacy) / per domain (partitioned)
  ServeConfig serve;
  std::vector<std::string> mixes;
  std::vector<LoopMode> loops;
  bool partitioned = false;  // --engine_threads present: run the DomainTier engine
  bool quiet = false;
};

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t comma = s.find(',', start);
    const size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) {
      out.push_back(s.substr(start, end - start));
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return out;
}

void EmitScope(pmemsim_bench::SweepPoint& point, const ServeCliConfig& cli,
               const std::string& mix, LoopMode loop, const std::string& scope,
               const ServiceStats& stats, Cycles serve_start) {
  const double ghz = cli.platform.cpu_ghz;
  const double ops_sec = stats.OpsPerSec(ghz, serve_start);
  const uint64_t p50 = stats.sojourn.Quantile(0.50);
  const uint64_t p99 = stats.sojourn.Quantile(0.99);
  const uint64_t p999 = stats.sojourn.Quantile(0.999);
  if (!cli.quiet) {
    point.Printf("%s,%s,%s,%s,%.0f,%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
                 ",%" PRIu64 "\n",
                 mix.c_str(), LoopModeName(loop), StoreName(cli.serve.store), scope.c_str(),
                 ops_sec, p50, p99, p999, stats.offered, stats.rejected, stats.completed);
  }
  point.AddRow()
      .Set("mix", mix)
      .Set("loop", LoopModeName(loop))
      .Set("store", StoreName(cli.serve.store))
      .Set("scope", scope)
      .Set("shards", cli.serve.shards)
      .Set("workers_per_shard", cli.serve.workers_per_shard)
      .Set("ops_per_sec", ops_sec)
      .Set("sojourn_p50", p50)
      .Set("sojourn_p99", p99)
      .Set("sojourn_p999", p999)
      .Set("offered", stats.offered)
      .Set("rejected", stats.rejected)
      .Set("completed", stats.completed);
}

void RunPoint(const ServeCliConfig& cli, const std::string& mix, LoopMode loop,
              pmemsim_bench::SweepPoint& point, std::string* serve_json) {
  ServeConfig cfg = cli.serve;
  cfg.mix_name = mix;
  cfg.mix = *MixByName(mix);
  cfg.loop = loop;
  if (cli.partitioned) {
    // Partitioned engine: one System per shard domain. --dimms counts DIMMs
    // per domain here (default 1), matching the legacy default of one DIMM
    // per shard in aggregate.
    const uint32_t dimms = cli.dimms != 0 ? cli.dimms : 1;
    DomainTier tier(cli.platform, dimms, cfg);
    tier.Run();
    EmitScope(point, cli, mix, loop, "global", tier.GlobalStats(), tier.serve_start());
    for (const auto& domain : tier.domains()) {
      char scope[16];
      std::snprintf(scope, sizeof(scope), "shard%u", domain->index());
      EmitScope(point, cli, mix, loop, scope, domain->stats(), tier.serve_start());
    }
    *serve_json = tier.ToJson();
    return;
  }
  const uint32_t dimms = cli.dimms != 0 ? cli.dimms : cfg.shards;
  System system(cli.platform, dimms);
  ServiceTier tier(&system, cfg);
  tier.Run();
  EmitScope(point, cli, mix, loop, "global", tier.GlobalStats(), tier.serve_start());
  for (const auto& shard : tier.shards()) {
    char scope[16];
    std::snprintf(scope, sizeof(scope), "shard%u", shard->index());
    EmitScope(point, cli, mix, loop, scope, shard->stats(), tier.serve_start());
  }
  *serve_json = tier.ToJson();
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: pmemsim_serve [--store=cceh|fastfair|flatlog] [--mixes=a,b,c,d,e,f]\n"
      "                     [--loop=closed|open|both] [--shards=4] [--workers=2]\n"
      "                     [--queue_depth=64] [--batch=8] [--clients=8] [--think=4000]\n"
      "                     [--arrival_interval=1500] [--ops=20000] [--keys=20000]\n"
      "                     [--theta=0.99] [--scan_len=16] [--seed=42]\n"
      "                     [--platform=g1|g2|g2-eadr] [--dimms=0] [--jobs=1]\n"
      "                     [--engine_threads=N] [--dispatch_latency=2048] [--quiet]\n"
      "%s"
      "parallelism (two independent axes; both keep output byte-identical):\n"
      "  --jobs=N            ACROSS sweep points: run N (mix,loop) points\n"
      "                      concurrently, each on its own simulated machine\n"
      "  --engine_threads=N  WITHIN one sweep point: select the partitioned\n"
      "                      engine and advance its shard domains on N host\n"
      "                      threads. Changes the simulated model (per-shard\n"
      "                      machines + client dispatch latency), never the\n"
      "                      results for a given model: any N compares equal\n"
      "  --dispatch_latency=C  partitioned engine only: client->shard dispatch\n"
      "                      latency in cycles (the epoch window; 0 = eager\n"
      "                      sequential fallback)\n",
      pmemsim_bench::kTelemetryFlagsHelp);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  pmemsim_bench::Flags flags(argc, argv);
  if (flags.Has("help")) {
    return Usage();
  }

  ServeCliConfig cli;
  const std::string platform_name = flags.Get("platform", "g1");
  const auto platform = PlatformByName(platform_name);
  if (!platform) {
    pmemsim_bench::Flags::BadValue("platform", platform_name, "g1|g2|g2-eadr");
  }
  cli.platform = *platform;
  cli.dimms = static_cast<uint32_t>(flags.GetU64("dimms", 0));

  const std::string store_name = flags.Get("store", "fastfair");
  const auto store = StoreByName(store_name);
  if (!store) {
    pmemsim_bench::Flags::BadValue("store", store_name, "cceh|fastfair|flatlog");
  }
  cli.serve.store = *store;

  cli.mixes = SplitCsv(flags.Get("mixes", "a,b,c,d,e,f"));
  if (cli.mixes.empty()) {
    pmemsim_bench::Flags::BadValue("mixes", flags.Get("mixes", ""), "comma list of a..f");
  }
  for (const std::string& mix : cli.mixes) {
    if (!MixByName(mix)) {
      pmemsim_bench::Flags::BadValue("mixes", mix, "YCSB core mix a..f");
    }
  }

  const std::string loop = flags.Get("loop", "both");
  if (loop == "closed") {
    cli.loops = {LoopMode::kClosed};
  } else if (loop == "open") {
    cli.loops = {LoopMode::kOpen};
  } else if (loop == "both") {
    cli.loops = {LoopMode::kClosed, LoopMode::kOpen};
  } else {
    pmemsim_bench::Flags::BadValue("loop", loop, "closed|open|both");
  }

  cli.serve.shards = static_cast<uint32_t>(flags.GetU64("shards", 4));
  cli.serve.workers_per_shard = static_cast<uint32_t>(flags.GetU64("workers", 2));
  cli.serve.queue_depth = flags.GetU64("queue_depth", 64);
  cli.serve.batch = flags.GetU64("batch", 8);
  cli.serve.clients = static_cast<uint32_t>(flags.GetU64("clients", 8));
  cli.serve.think_cycles = flags.GetDouble("think", 4000);
  cli.serve.interarrival_cycles = flags.GetDouble("arrival_interval", 1500);
  cli.serve.ops = flags.GetU64("ops", 20000);
  cli.serve.keys = flags.GetU64("keys", 20000);
  cli.serve.theta = flags.GetDouble("theta", 0.99);
  cli.serve.scan_len = static_cast<uint32_t>(flags.GetU64("scan_len", 16));
  cli.serve.seed = flags.GetU64("seed", 42);

  // --engine_threads opts into the partitioned (shard-parallel) engine; its
  // value is host threads per sweep point. --dispatch_latency belongs to that
  // engine's simulated model, so it is rejected without --engine_threads.
  cli.partitioned = !flags.Get("engine_threads", "").empty();
  if (cli.partitioned) {
    cli.serve.engine_threads = static_cast<uint32_t>(flags.GetU64("engine_threads", 1));
    if (cli.serve.engine_threads == 0) {
      pmemsim_bench::Flags::BadValue("engine_threads", "0", "host thread count >= 1");
    }
    cli.serve.dispatch_latency = flags.GetU64("dispatch_latency", 2048);
    if (!flags.Get("trace_out", "").empty() && cli.serve.engine_threads > 1) {
      std::fprintf(stderr,
                   "note: --trace_out forces --engine_threads=1 (the trace "
                   "emitter is a global sink; order must stay deterministic)\n");
      cli.serve.engine_threads = 1;
    }
  } else if (!flags.Get("dispatch_latency", "").empty()) {
    pmemsim_bench::Flags::BadValue("dispatch_latency", flags.Get("dispatch_latency", ""),
                                   "--engine_threads to be set (partitioned engine only)");
  }
  cli.quiet = flags.Has("quiet");
  if (cli.serve.shards == 0 || cli.serve.workers_per_shard == 0 || cli.serve.queue_depth == 0 ||
      cli.serve.batch == 0 || cli.serve.keys == 0) {
    pmemsim_bench::Flags::BadValue("shards", "0", "positive counts");
  }

  pmemsim_bench::BenchReport report(flags, "pmemsim_serve");
  pmemsim_bench::SweepRunner runner(flags);
  flags.RejectUnknown();

  pmemsim_bench::PrintHeader("pmemsim_serve",
                             "sharded KV serving tier: YCSB mixes, admission, tail latency");
  std::printf("mix,loop,store,scope,ops_per_sec,sojourn_p50,sojourn_p99,sojourn_p999,offered,"
              "rejected,completed\n");

  // One sweep point per (mix, loop): its own System, deterministic per seed.
  // Per-point tier JSON lands in a pre-sized slot so --jobs parallelism keeps
  // the assembled "serve" section in submission order.
  std::vector<std::string> serve_sections(cli.mixes.size() * cli.loops.size());
  size_t index = 0;
  for (const std::string& mix : cli.mixes) {
    for (const LoopMode mode : cli.loops) {
      std::string* slot = &serve_sections[index++];
      const std::string label = "mix-" + mix + "/" + LoopModeName(mode);
      runner.Add(label, [&cli, mix, mode, slot](pmemsim_bench::SweepPoint& point) {
        RunPoint(cli, mix, mode, point, slot);
      });
    }
  }

  const int failed = runner.Run(report);
  pmemsim::JsonWriter serve;
  serve.BeginArray();
  for (const std::string& section : serve_sections) {
    if (section.empty()) {
      serve.Null();  // failed point: row carries the error, keep indexes stable
    } else {
      serve.Raw(section);
    }
  }
  serve.EndArray();
  report.AddSection("serve", serve.str());
  const int rc = report.Finish();
  if (failed > 0) {
    std::fprintf(stderr, "pmemsim_serve: %d point(s) failed\n", failed);
    return 1;
  }
  return rc;
}
