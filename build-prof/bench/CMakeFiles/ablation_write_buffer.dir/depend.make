# Empty dependencies file for ablation_write_buffer.
# This may be replaced when dependencies are built.
