#!/usr/bin/env python3
"""Gate engine throughput against a committed perf baseline.

Compares a fresh perf-bench stats export (any bench whose rows carry
`workload` and `sim_mops_per_sec`: perf_hotpath vs BENCH_hotpath.json,
perf_serve vs BENCH_serve.json) against the checked-in baseline and fails
when any workload's simulated-ops/sec falls below `1 / --max_regression` of
its baseline (default: a 2x slowdown).

The gate also ratchets upward: a measurement *exceeding* the baseline by more
than --max_improvement (default 4x) fails too. A real optimization that large
should land with a refreshed baseline file so the regression floor rises
with it — otherwise the stale baseline quietly grants all future changes that
much headroom before the floor can trip.

The bars are deliberately loose: CI runners are noisy shared machines and the
committed baseline comes from a different host, so this gate only catches
catastrophic regressions (an accidental O(n) scan on a hot path, a debug
build slipping into the perf job) and wildly stale baselines, not
percent-level drift. Tighten the margins locally for real A/B work.

Usage:
    check_perf.py --baseline BENCH_hotpath.json --current /tmp/hotpath.json \
        [--max_regression 2.0] [--max_improvement 4.0] [--report]
"""

import argparse
import json
import sys


def load_rows(path):
    """Strict row loader: exits 2 on unreadable/invalid files or malformed rows.

    The perf floor must not be dodgeable by a missing stats file or a renamed
    workload/metric key, so every schema problem is a hard error rather than
    an empty comparison that "passes".
    """
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        sys.exit(f"error: cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        sys.exit(f"error: {path} is not valid JSON: {e}")
    rows = doc.get("rows", [])
    if not rows:
        sys.exit(f"error: {path} has no rows")
    out = {}
    for i, row in enumerate(rows):
        if "workload" not in row:
            sys.exit(f"error: {path} row {i} has no 'workload' key")
        if "sim_mops_per_sec" not in row:
            sys.exit(f"error: {path} row {i} ({row['workload']}) has no 'sim_mops_per_sec' key")
        out[row["workload"]] = row
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, help="committed BENCH_hotpath.json")
    parser.add_argument("--current", required=True, help="freshly generated stats JSON")
    parser.add_argument(
        "--max_regression",
        type=float,
        default=2.0,
        help="fail when baseline/current throughput exceeds this ratio (default 2.0)",
    )
    parser.add_argument(
        "--max_improvement",
        type=float,
        default=4.0,
        help="fail when current/baseline throughput exceeds this ratio without a "
        "baseline refresh (default 4.0); 0 disables the ratchet",
    )
    parser.add_argument("--report", action="store_true", help="print every comparison")
    args = parser.parse_args()

    baseline = load_rows(args.baseline)
    current = load_rows(args.current)

    failures = []
    for workload, base_row in sorted(baseline.items()):
        cur_row = current.get(workload)
        if cur_row is None:
            failures.append(f"{workload}: missing from current run")
            continue
        base = base_row["sim_mops_per_sec"]
        cur = cur_row["sim_mops_per_sec"]
        if cur <= 0:
            failures.append(f"{workload}: nonpositive throughput {cur}")
            continue
        ratio = base / cur
        status = "FAIL" if ratio > args.max_regression else "ok"
        if args.report or status == "FAIL":
            print(
                f"{status:4} {workload}: {cur:.3f} Mops/s vs baseline {base:.3f} "
                f"(slowdown {ratio:.2f}x, limit {args.max_regression:.2f}x)"
            )
        if status == "FAIL":
            failures.append(workload)
            continue
        if args.max_improvement > 0 and cur / base > args.max_improvement:
            print(
                f"FAIL {workload}: {cur:.3f} Mops/s is {cur / base:.2f}x the baseline "
                f"{base:.3f} (ratchet limit {args.max_improvement:.2f}x) — "
                f"refresh {args.baseline} so the floor rises with the gain"
            )
            failures.append(workload)

    # A workload present in the current run but absent from the baseline is
    # ungated — a rename would otherwise slip the floor. Require a baseline
    # refresh instead of silently skipping it.
    for workload in sorted(set(current) - set(baseline)):
        failures.append(f"{workload}: not in baseline (renamed? refresh {args.baseline})")
        print(f"FAIL {workload}: present in current run but not in baseline")

    if failures:
        print(f"{len(failures)} workload(s) regressed past the floor", file=sys.stderr)
        return 1
    print(f"{len(baseline)} workloads within {args.max_regression:.2f}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
