#include "src/cache/prefetcher.h"

#include <cstdlib>

#include "src/common/check.h"

namespace pmemsim {

PrefetchEngine::PrefetchEngine(const CacheConfig& config, PrefetchSink* sink, uint64_t rng_seed)
    : sink_(sink),
      rng_(rng_seed),
      adjacent_enabled_(config.adjacent_line_prefetch),
      dcu_enabled_(config.dcu_streamer_prefetch),
      stream_enabled_(config.l2_stream_prefetch),
      stream_degree_(config.stream_prefetch_degree) {
  PMEMSIM_CHECK(sink_ != nullptr);
}

void PrefetchEngine::SetEnabled(bool adjacent, bool dcu, bool stream) {
  adjacent_enabled_ = adjacent;
  dcu_enabled_ = dcu;
  stream_enabled_ = stream;
}

void PrefetchEngine::OnDemandAccess(const DemandInfo& info) {
  const Addr line = CacheLineBase(info.line);

  if (dcu_enabled_ && last_demand_line_ != ~0ull &&
      line == last_demand_line_ + kCacheLineSize) {
    sink_->PrefetchFill(line + kCacheLineSize, info.now, /*into_l1=*/true);
  }
  last_demand_line_ = line;

  if (adjacent_enabled_) {
    const bool l2_demand_miss = !info.l1_hit && !info.l2_hit;
    if (l2_demand_miss || info.first_touch_prefetched) {
      sink_->PrefetchFill(line + kCacheLineSize, info.now, /*into_l1=*/false);
    }
  }

  if (stream_enabled_ && !info.l1_hit) {
    StreamTrain(line, info.now);
  }
}

void PrefetchEngine::StreamTrain(Addr line, Cycles now) {
  const Addr page = PageBase(line);
  StreamEntry* entry = nullptr;
  StreamEntry* victim = &streams_[0];
  for (StreamEntry& e : streams_) {
    if (e.valid && e.page == page) {
      entry = &e;
      break;
    }
    if (!e.valid || e.lru < victim->lru) {
      victim = &e;
    }
  }
  if (entry == nullptr) {
    *victim = StreamEntry{};
    victim->valid = true;
    victim->page = page;
    victim->last_line = line;
    victim->lru = ++stream_tick_;
    return;
  }
  entry->lru = ++stream_tick_;

  const int64_t stride = static_cast<int64_t>(line) - static_cast<int64_t>(entry->last_line);
  entry->last_line = line;
  if (stride == 0) {
    return;
  }
  if (stride != entry->stride || std::llabs(stride) > 2048) {
    entry->stride = stride;
    entry->steps = 1;
    entry->locked = false;
    return;
  }
  ++entry->steps;
  if (!entry->locked && entry->steps >= 3) {
    // Lock arbitration: modeled stochastically (see header).
    if (rng_.NextDouble() < stream_lock_probability_) {
      entry->locked = true;
    } else {
      entry->steps = 0;  // lost arbitration; retrain
      return;
    }
  }
  if (entry->locked) {
    for (uint32_t d = 1; d <= stream_degree_; ++d) {
      const int64_t target = static_cast<int64_t>(line) + entry->stride * static_cast<int64_t>(d);
      if (target >= 0) {
        sink_->PrefetchFill(static_cast<Addr>(target), now, /*into_l1=*/false);
      }
    }
  }
}

void PrefetchEngine::Reset() {
  last_demand_line_ = ~0ull;
  streams_ = {};
  stream_tick_ = 0;
}

}  // namespace pmemsim
