// System: the top-level facade a pmemsim user interacts with.
//
// Owns the simulated machine — backing store, memory controller (Optane DIMMs
// + DRAM), the shared L3 — and hands out PmRegions (address ranges) and
// ThreadContexts (execution streams). See examples/quickstart.cc for usage.

#ifndef SRC_CORE_SYSTEM_H_
#define SRC_CORE_SYSTEM_H_

#include <deque>
#include <functional>
#include <memory>
#include <utility>

#include "src/cache/cache.h"
#include "src/common/backing_store.h"
#include "src/common/config.h"
#include "src/common/types.h"
#include "src/cpu/thread_context.h"
#include "src/imc/memory_controller.h"
#include "src/trace/counters.h"
#include "src/trace/registry.h"
#include "src/trace/sampler.h"

namespace pmemsim {

// A reserved range of the simulated address space.
struct PmRegion {
  Addr base = 0;
  uint64_t size = 0;
  MemoryKind kind = MemoryKind::kOptane;

  Addr At(uint64_t offset) const { return base + offset; }
  Addr end() const { return base + size; }
};

class System {
 public:
  // `optane_dimm_count` overrides the platform preset when non-zero (the
  // paper measures both a single non-interleaved DIMM and 6 interleaved).
  explicit System(const PlatformConfig& config, uint32_t optane_dimm_count = 0);

  // Region allocation (bump allocator; regions are never freed).
  PmRegion AllocatePm(uint64_t bytes, uint64_t align = kXPLineSize);
  PmRegion AllocateDram(uint64_t bytes, uint64_t align = kCacheLineSize);

  // Creates an execution stream pinned to `node` (node 1 = remote socket).
  ThreadContext& CreateThread(NodeId node = 0);

  // Creates an execution stream on `sibling`'s other hyperthread: it shares
  // that thread's private caches and prefetch engine.
  ThreadContext& CreateSmtSibling(ThreadContext& sibling);

  const PlatformConfig& config() const { return config_; }
  // System-wide totals: a live aggregation over the per-DIMM/per-thread
  // scopes, re-materialized on every access (and by CounterDelta).
  Counters& counters() {
    counters_.Sync();
    return counters_;
  }
  const Counters& counters() const {
    counters_.Sync();
    return counters_;
  }
  // Per-writer scopes ("optane_dimmN", "dram", "imc", "threadN").
  const CounterRegistry& counter_registry() const { return registry_; }
  MemoryController& mc() { return *mc_; }
  SetAssocCache& shared_l3() { return *l3_; }
  BackingStore& backing() { return backing_; }

  // Drops all timing state (caches, buffers, queues, clocks) but keeps data
  // and counters. Used between benchmark configurations.
  void ResetMicroarchState();

  // Installs (or clears, with nullptr) a store/fence observer on every
  // existing thread and every thread created afterwards. Used by the
  // crash-consistency subsystem's PersistTracker.
  void SetPersistObserver(PersistObserver* observer);

  // Installs (or clears, with nullptr) the latency-attribution collector on
  // every existing thread and every thread created afterwards (--breakdown).
  void SetAttribution(AttributionCollector* collector);

  // Installs (or clears, with nullptr) the trace recorder on every existing
  // thread and every thread created afterwards. Trace thread ids follow
  // creation order, and each thread is declared to the recorder's thread
  // table together with its NUMA node so replay recreates the same topology.
  void SetTraceRecorder(TraceRecorder* recorder);

  // Instantaneous occupancy across the machine's Optane DIMMs and WPQs — the
  // gauge source for interval sampling (Sampler::SetGaugeSource).
  SampleGauges ReadGauges(Cycles now);

  // Installs (or clears, with an empty function) an additional gauge filler
  // consulted by ReadGauges after the DIMM sweep. Higher layers (the serving
  // tier's request queues) use it to surface their occupancy through the same
  // sampling path without the core layer depending on them.
  using ExtraGaugeFn = std::function<void(Cycles now, SampleGauges* g)>;
  void SetExtraGaugeSource(ExtraGaugeFn fn) { extra_gauges_ = std::move(fn); }

 private:
  PlatformConfig config_;
  CounterRegistry registry_;
  Counters counters_;  // aggregate view, bound to registry_
  BackingStore backing_;
  std::unique_ptr<MemoryController> mc_;
  std::unique_ptr<SetAssocCache> l3_;
  std::deque<std::unique_ptr<ThreadContext>> threads_;
  ExtraGaugeFn extra_gauges_;

  Addr pm_next_ = kPageSize;
  Addr dram_next_ = kDramAddressBase;
  uint64_t thread_seed_ = 0xA11CE;
  PersistObserver* persist_observer_ = nullptr;
  AttributionCollector* attribution_ = nullptr;
  TraceRecorder* trace_recorder_ = nullptr;
};

}  // namespace pmemsim

#endif  // SRC_CORE_SYSTEM_H_
