// Tests for the memory controller: WPQ acceptance/stall semantics, PM
// interleave routing, NUMA hop, and the same-line persist ordering.

#include <gtest/gtest.h>

#include "src/common/config.h"
#include "src/imc/memory_controller.h"
#include "src/imc/wpq.h"

namespace pmemsim {
namespace {

TEST(WpqTest, AcceptanceBeforeDrain) {
  Counters c;
  Wpq wpq({16, 150, 30}, &c);
  const Wpq::AcceptResult r = wpq.Accept(1000, 0);
  EXPECT_EQ(r.accepted_at, 1150u);
  EXPECT_EQ(r.drained_at, 1180u);
}

TEST(WpqTest, DrainSerializes) {
  Counters c;
  Wpq wpq({16, 150, 30}, &c);
  const Wpq::AcceptResult a = wpq.Accept(0, 0);
  const Wpq::AcceptResult b = wpq.Accept(0, 0);
  EXPECT_EQ(b.drained_at, a.drained_at + 30);
}

TEST(WpqTest, FullQueueStallsAcceptance) {
  Counters c;
  Wpq wpq({4, 10, 100}, &c);
  Cycles last_accept = 0;
  for (int i = 0; i < 4; ++i) {
    last_accept = wpq.Accept(0, 0).accepted_at;
  }
  EXPECT_EQ(c.wpq_stall_cycles, 0u);
  const Wpq::AcceptResult r = wpq.Accept(0, 0);  // 5th entry: queue full
  EXPECT_GT(c.wpq_stall_cycles, 0u);
  EXPECT_GT(r.accepted_at, last_accept);
}

TEST(WpqTest, FullQueueRetainsEntriesUntilDrainTime) {
  // Regression: the full-queue path used to pop the oldest entry the moment a
  // stalled store arrived, before that entry's drain time — OccupancyAt (and
  // the wpq_occupancy trace) under-reported exactly when the queue mattered
  // most. Entries must retire at their drain time, not at stall start.
  Counters c;
  Wpq wpq({2, 10, 100}, &c);
  const Wpq::AcceptResult a = wpq.Accept(0, 0);  // drains at 110
  const Wpq::AcceptResult b = wpq.Accept(0, 0);  // drains at 210
  EXPECT_EQ(a.drained_at, 110u);
  EXPECT_EQ(b.drained_at, 210u);
  EXPECT_EQ(wpq.OccupancyAt(50), 2u);

  // Third store at t=0: the queue is full, so acceptance waits for the front
  // entry's drain at 110 and exactly that entry retires then.
  const Wpq::AcceptResult r = wpq.Accept(0, 0);
  EXPECT_EQ(c.wpq_stall_cycles, 110u);
  EXPECT_EQ(r.accepted_at, 120u);   // stall end + accept latency
  EXPECT_EQ(r.drained_at, 310u);    // serialized behind entry b's drain
  // During the stall window both original entries were still queued; after
  // it, b and the new entry remain in flight.
  EXPECT_EQ(wpq.OccupancyAt(50), 2u);
  EXPECT_EQ(wpq.OccupancyAt(150), 2u);   // b (210) and r (310)
  EXPECT_EQ(wpq.OccupancyAt(250), 1u);   // only r
  EXPECT_EQ(wpq.OccupancyAt(310), 0u);
}

TEST(WpqTest, StallTimingUnchangedByRetireAtDrain) {
  // The accounting fix must not shift accept/drain times: consecutive stalled
  // stores still pipeline at one drain per drain_latency.
  Counters c;
  Wpq wpq({2, 10, 100}, &c);
  wpq.Accept(0, 0);
  wpq.Accept(0, 0);
  Cycles prev_accept = 0;
  Cycles prev_drain = 0;
  for (int i = 0; i < 4; ++i) {
    const Wpq::AcceptResult r = wpq.Accept(0, 0);
    if (i > 0) {
      EXPECT_EQ(r.accepted_at - prev_accept, 100u) << i;  // one drain period
      EXPECT_EQ(r.drained_at - prev_drain, 100u) << i;
    }
    prev_accept = r.accepted_at;
    prev_drain = r.drained_at;
  }
}

TEST(WpqTest, BackpressureDelaysDrains) {
  Counters c;
  Wpq wpq({16, 10, 30}, &c);
  wpq.Accept(0, 0);
  wpq.DelayDrain(5000);
  const Wpq::AcceptResult r = wpq.Accept(0, 0);
  EXPECT_GE(r.drained_at, 5030u);
}

TEST(WpqTest, OccupancyTracksTime) {
  Counters c;
  Wpq wpq({16, 10, 100}, &c);
  const Wpq::AcceptResult r = wpq.Accept(0, 0);
  EXPECT_EQ(wpq.OccupancyAt(0), 1u);
  EXPECT_EQ(wpq.OccupancyAt(r.drained_at), 0u);
}

TEST(McTest, KindRouting) {
  EXPECT_EQ(MemoryController::KindOf(0x1000), MemoryKind::kOptane);
  EXPECT_EQ(MemoryController::KindOf(kDramAddressBase + 64), MemoryKind::kDram);
}

TEST(McTest, InterleaveAcrossDimms) {
  Counters c;
  MemoryController mc(G1Platform(), &c, /*optane_dimm_count=*/6);
  // Writes landing on different 4 KB pages hit different DIMM write buffers.
  for (uint64_t page = 0; page < 6; ++page) {
    mc.Write(page * kPageSize, 1000, 0);
  }
  size_t populated = 0;
  for (size_t i = 0; i < mc.optane_dimm_count(); ++i) {
    populated += mc.optane_dimm(i).write_buffer().occupied_entries() > 0 ? 1 : 0;
  }
  EXPECT_EQ(populated, 6u);
}

TEST(McTest, SingleDimmTakesAll) {
  Counters c;
  MemoryController mc(G1Platform(), &c, 1);
  for (uint64_t page = 0; page < 6; ++page) {
    mc.Write(page * kPageSize, 1000, 0);
  }
  EXPECT_EQ(mc.optane_dimm(0).write_buffer().occupied_entries(), 6u);
}

TEST(McTest, NumaHopAddsRoundTrip) {
  const PlatformConfig p = G1Platform();
  Counters c1, c2;
  MemoryController local(p, &c1, 1);
  MemoryController remote(p, &c2, 1);
  const McReadResult rl = local.Read(0, 1000, /*requester=*/0, false);
  const McReadResult rr = remote.Read(0, 1000, /*requester=*/1, false);
  EXPECT_EQ(rr.complete_at - rl.complete_at, 2 * p.imc.numa_hop_latency);
}

TEST(McTest, PersistPointPrecedesVisibility) {
  Counters c;
  MemoryController mc(G1Platform(), &c, 1);
  const McWriteResult w = mc.Write(0, 1000, 0);
  EXPECT_GT(w.accepted_at, 1000u);
  EXPECT_GT(w.visible_at, w.accepted_at);
  // ADR: acceptance is the persist point; visibility lags by the pipeline.
  EXPECT_GE(w.visible_at - w.accepted_at, G1Platform().optane.write_visible_delay / 2);
}

TEST(McTest, SameLinePersistStallsOnG1) {
  Counters c;
  MemoryController mc(G1Platform(), &c, 1);
  const McWriteResult w1 = mc.Write(0, 1000, 0);
  const McWriteResult w2 = mc.Write(0, 1100, 0);  // same line, within window
  EXPECT_GT(w2.accepted_at - 1100, G1Platform().imc.wpq_accept_latency);
  (void)w1;
  EXPECT_GT(c.wpq_stall_cycles, 0u);

  Counters c2;
  MemoryController mc2(G2Platform(), &c2, 1);
  mc2.Write(0, 1000, 0);
  const McWriteResult g2w = mc2.Write(0, 1100, 0);
  EXPECT_EQ(g2w.accepted_at, 1100 + G2Platform().imc.wpq_accept_latency);
}

TEST(McTest, DifferentLinesDoNotStall) {
  Counters c;
  MemoryController mc(G1Platform(), &c, 1);
  mc.Write(0, 1000, 0);
  const McWriteResult w2 = mc.Write(kCacheLineSize, 1100, 0);
  EXPECT_EQ(w2.accepted_at, 1100 + G1Platform().imc.wpq_accept_latency);
}

TEST(McTest, DramWritesRouteToDramModel) {
  Counters c;
  MemoryController mc(G1Platform(), &c, 1);
  mc.Write(kDramAddressBase, 1000, 0);
  EXPECT_EQ(c.dram_write_bytes, kCacheLineSize);
  EXPECT_EQ(c.imc_write_bytes, 0u);  // PM-side counter untouched
}

}  // namespace
}  // namespace pmemsim
