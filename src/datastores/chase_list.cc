#include "src/datastores/chase_list.h"

#include "src/common/check.h"
#include "src/common/random.h"

namespace pmemsim {

ChaseList::ChaseList(System* system, PmRegion region, bool sequential, uint64_t seed)
    : system_(system), region_(region), count_(region.size / kElementSize) {
  PMEMSIM_CHECK(system != nullptr);
  PMEMSIM_CHECK(count_ >= 2);
  PMEMSIM_CHECK(IsXPLineAligned(region.base));

  std::vector<uint64_t> perm(count_);
  for (uint64_t i = 0; i < count_; ++i) {
    perm[i] = i;
  }
  if (!sequential) {
    Rng rng(seed);
    rng.Shuffle(perm);
  }

  order_.reserve(count_);
  for (uint64_t i = 0; i < count_; ++i) {
    order_.push_back(region_.base + perm[i] * kElementSize);
  }
  // Link the cycle directly in the backing store (untimed construction).
  BackingStore& backing = system_->backing();
  for (uint64_t i = 0; i < count_; ++i) {
    backing.WriteU64(order_[i], order_[(i + 1) % count_]);
  }
  cursor_ = order_.front();
}

Cycles ChaseList::TraverseUpdate(ThreadContext& ctx, uint64_t elements, PersistMode mode,
                                 Persistency persistency, uint64_t epoch_len) {
  const Cycles start = ctx.clock();
  Addr element = cursor_;
  for (uint64_t i = 0; i < elements; ++i) {
    const Addr next = ctx.Load64(element);
    const Addr pad = element + kPadOffset;
    if (UsesClwb(mode)) {
      ctx.Store64(pad, i);
      ctx.Clwb(pad);
    } else {
      ctx.NtStore64(pad, i);
    }
    if (persistency == Persistency::kStrict ||
        (persistency == Persistency::kEpoch && (i + 1) % epoch_len == 0)) {
      if (UsesMfence(mode)) {
        ctx.Mfence();
      } else {
        ctx.Sfence();
      }
    }
    element = next;
  }
  if (persistency != Persistency::kStrict) {
    ctx.Sfence();  // close the pass (relaxed) or the trailing epoch
  }
  cursor_ = element;
  return ctx.clock() - start;
}

Cycles ChaseList::TraverseRead(ThreadContext& ctx, uint64_t elements) {
  const Cycles start = ctx.clock();
  Addr element = cursor_;
  for (uint64_t i = 0; i < elements; ++i) {
    element = ctx.Load64(element);
  }
  cursor_ = element;
  return ctx.clock() - start;
}

Cycles ChaseList::PureWrite(ThreadContext& ctx, uint64_t elements, PersistMode mode,
                            Persistency persistency, uint64_t epoch_len) {
  const Cycles start = ctx.clock();
  for (uint64_t i = 0; i < elements; ++i) {
    const Addr pad = order_[(cursor_index_ + i) % count_] + kPadOffset;
    if (UsesClwb(mode)) {
      ctx.Store64(pad, i);
      ctx.Clwb(pad);
    } else {
      ctx.NtStore64(pad, i);
    }
    if (persistency == Persistency::kStrict ||
        (persistency == Persistency::kEpoch && (i + 1) % epoch_len == 0)) {
      if (UsesMfence(mode)) {
        ctx.Mfence();
      } else {
        ctx.Sfence();
      }
    }
  }
  if (persistency != Persistency::kStrict) {
    ctx.Sfence();
  }
  cursor_index_ = (cursor_index_ + elements) % count_;
  return ctx.clock() - start;
}

}  // namespace pmemsim
