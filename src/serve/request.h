// Request-serving tier (pmemsim_serve): one client request against a shard's
// datastore, tagged with the simulated-time points the service stats need.
//
// A request is born at `arrival` (the client issue time), passes admission at
// some worker's clock >= arrival, waits in the shard's bounded queue, and is
// executed by a worker ThreadContext. Queue wait and service time are derived
// from these stamps by ServiceStats::RecordCompletion.

#ifndef SRC_SERVE_REQUEST_H_
#define SRC_SERVE_REQUEST_H_

#include <cstdint>

#include "src/common/types.h"
#include "src/workload/ycsb.h"

namespace pmemsim {

struct Request {
  ServeOp op = ServeOp::kRead;
  uint64_t key = 0;
  uint32_t scan_len = 0;
  // Closed loop: the issuing client's id (its re-issue identity).
  // Open loop: the arrival's sequence number within its shard.
  uint32_t client = 0;
  Cycles arrival = 0;
  // Admission time: the worker clock at which the queue accepted this
  // request (== arrival when admitted by the legacy one-argument Offer).
  Cycles admit = 0;
};

}  // namespace pmemsim

#endif  // SRC_SERVE_REQUEST_H_
