# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for crashcheck_property_test.
