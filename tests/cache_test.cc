// Tests for the CPU cache model: set-associative behavior, LRU, flush
// semantics (G1 invalidate vs G2 retain), timed pending invalidation,
// prefetch fill arrival, and the three prefetcher trigger rules.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/cache/cache.h"
#include "src/cache/hierarchy.h"
#include "src/cache/prefetcher.h"
#include "src/common/config.h"
#include "src/imc/memory_controller.h"

namespace pmemsim {
namespace {

CacheLevelConfig SmallCache() { return {KiB(4), 4, 4}; }  // 16 sets x 4 ways

TEST(SetAssocCacheTest, MissThenHit) {
  SetAssocCache cache(SmallCache());
  EXPECT_FALSE(cache.Access(0, 0, false));
  cache.Insert(0, 0, false, false);
  EXPECT_TRUE(cache.Access(0, 1, false));
}

TEST(SetAssocCacheTest, LruEvictionWithinSet) {
  SetAssocCache cache(SmallCache());
  const uint64_t stride = cache.sets() * kCacheLineSize;  // same set
  for (uint64_t i = 0; i < 4; ++i) {
    cache.Insert(i * stride, 0, false, false);
  }
  cache.Access(0, 10, false);  // refresh way 0
  const EvictedLine e = cache.Insert(4 * stride, 11, false, false);
  EXPECT_TRUE(e.valid);
  EXPECT_EQ(e.line, 1 * stride);  // LRU victim, not the refreshed one
  EXPECT_TRUE(cache.Probe(0, 12));
}

TEST(SetAssocCacheTest, DirtyEvictionReported) {
  SetAssocCache cache(SmallCache());
  const uint64_t stride = cache.sets() * kCacheLineSize;
  cache.Insert(0, 0, /*dirty=*/true, false);
  for (uint64_t i = 1; i <= 4; ++i) {
    const EvictedLine e = cache.Insert(i * stride, static_cast<Cycles>(i), false, false);
    if (e.valid && e.line == 0) {
      EXPECT_TRUE(e.dirty);
      return;
    }
  }
  FAIL() << "dirty line never evicted";
}

TEST(SetAssocCacheTest, InvalidateReturnsDirtiness) {
  SetAssocCache cache(SmallCache());
  cache.Insert(0, 0, true, false);
  const auto r = cache.Invalidate(0);
  EXPECT_TRUE(r.was_present);
  EXPECT_TRUE(r.was_dirty);
  EXPECT_FALSE(cache.Probe(0, 1));
}

TEST(SetAssocCacheTest, WriteBackRetainKeepsLineClean) {
  SetAssocCache cache(SmallCache());
  cache.Insert(0, 0, true, false);
  const auto r = cache.WriteBack(0, /*invalidate_at=*/1000, /*retain=*/true);
  EXPECT_TRUE(r.was_dirty);
  EXPECT_TRUE(cache.Probe(0, 100000));  // stays valid forever (G2 clwb)
  const auto r2 = cache.WriteBack(0, 2000, true);
  EXPECT_FALSE(r2.was_dirty);  // now clean
}

TEST(SetAssocCacheTest, TimedPendingInvalidation) {
  SetAssocCache cache(SmallCache());
  cache.Insert(0, 0, true, false);
  cache.WriteBack(0, /*invalidate_at=*/1000, /*retain=*/false);
  EXPECT_TRUE(cache.Probe(0, 999));    // still visible inside the window
  EXPECT_FALSE(cache.Probe(0, 1000));  // gone at the deadline
}

TEST(SetAssocCacheTest, StoreCancelsPendingInvalidation) {
  SetAssocCache cache(SmallCache());
  cache.Insert(0, 0, true, false);
  cache.WriteBack(0, 1000, false);
  EXPECT_TRUE(cache.Access(0, 500, /*mark_dirty=*/true));  // re-store
  EXPECT_TRUE(cache.Probe(0, 5000));                        // invalidation gone
}

TEST(SetAssocCacheTest, ApplyPendingInvalidateIsImmediate) {
  SetAssocCache cache(SmallCache());
  cache.Insert(0, 0, true, false);
  cache.WriteBack(0, 100000, false);
  cache.ApplyPendingInvalidate(0);  // mfence ordering
  EXPECT_FALSE(cache.Probe(0, 1));
}

TEST(SetAssocCacheTest, PrefetchedFirstTouchFlag) {
  SetAssocCache cache(SmallCache());
  cache.Insert(0, 0, false, /*prefetched=*/true);
  bool was_prefetched = false;
  EXPECT_TRUE(cache.Access(0, 1, false, &was_prefetched));
  EXPECT_TRUE(was_prefetched);
  EXPECT_TRUE(cache.Access(0, 2, false, &was_prefetched));
  EXPECT_FALSE(was_prefetched);  // cleared by the first touch
}

TEST(SetAssocCacheTest, FillReadyAtDelaysAvailability) {
  SetAssocCache cache(SmallCache());
  cache.Insert(0, 0, false, true, /*ready_at=*/500);
  Cycles avail = 0;
  EXPECT_TRUE(cache.Access(0, 100, false, nullptr, &avail));
  EXPECT_EQ(avail, 500u);
  // Ready time is consumed by the first access.
  EXPECT_TRUE(cache.Access(0, 600, false, nullptr, &avail));
  EXPECT_EQ(avail, 600u);
}

// ---------- Hierarchy + prefetchers ----------

struct HierFixture {
  Counters counters;
  PlatformConfig platform = G1Platform();
  std::unique_ptr<MemoryController> mc;
  std::unique_ptr<SetAssocCache> l3;
  std::unique_ptr<CacheHierarchy> hier;

  explicit HierFixture(bool g2 = false) {
    platform = g2 ? G2Platform() : G1Platform();
    mc = std::make_unique<MemoryController>(platform, &counters, 1);
    l3 = std::make_unique<SetAssocCache>(platform.cache.l3);
    hier = std::make_unique<CacheHierarchy>(platform.cache, l3.get(), mc.get(), &counters, 0);
    hier->prefetch_engine().SetEnabled(false, false, false);
  }
};

TEST(HierarchyTest, MissFillsAllLevels) {
  HierFixture f;
  const HierAccessResult r = f.hier->Load(0, 1000, false);
  EXPECT_EQ(r.hit_level, 0);
  EXPECT_TRUE(f.hier->l1().Probe(0, 2000));
  EXPECT_TRUE(f.hier->l2().Probe(0, 2000));
  EXPECT_TRUE(f.l3->Probe(0, 2000));
  const HierAccessResult r2 = f.hier->Load(0, 3000, false);
  EXPECT_EQ(r2.hit_level, 1);
  EXPECT_EQ(r2.complete_at, 3000 + f.platform.cache.l1.hit_latency);
}

TEST(HierarchyTest, StoreMakesDirtyAndClwbWritesBack) {
  HierFixture f;
  f.hier->Store(0, 1000);
  const FlushResult flush = f.hier->Clwb(0, 2000);
  EXPECT_TRUE(flush.wrote);
  EXPECT_GT(flush.accepted_at, 2000u);
  EXPECT_EQ(f.counters.imc_write_bytes, kCacheLineSize);
  // Second clwb: line now clean, nothing written.
  const FlushResult again = f.hier->Clwb(0, 3000);
  EXPECT_FALSE(again.wrote);
}

TEST(HierarchyTest, CleanFlushSendsNothing) {
  HierFixture f;
  f.hier->Load(0, 1000, false);
  EXPECT_FALSE(f.hier->Clflushopt(0, 2000).wrote);
  EXPECT_EQ(f.counters.imc_write_bytes, 0u);
}

TEST(HierarchyTest, G1ClwbEventuallyInvalidates) {
  HierFixture f;
  f.hier->Store(0, 1000);
  f.hier->Clwb(0, 2000);
  EXPECT_TRUE(f.hier->ProbeAny(0, 2100));  // within the dispatch window
  EXPECT_FALSE(f.hier->ProbeAny(0, 2000 + f.platform.cache.clwb_dispatch_delay));
}

TEST(HierarchyTest, G2ClwbRetains) {
  HierFixture f(/*g2=*/true);
  f.hier->Store(0, 1000);
  f.hier->Clwb(0, 2000);
  EXPECT_TRUE(f.hier->ProbeAny(0, 1000000));
}

TEST(HierarchyTest, DirtyL3EvictionEntersPersistPath) {
  HierFixture f;
  // Dirty a line, then force it out of all levels by filling its sets.
  f.hier->Store(0, 1000);
  const uint64_t l1_stride = f.hier->l1().sets() * kCacheLineSize;
  // Evict from L1/L2 by conflict; lines land dirty in lower levels and the
  // L3 eviction finally writes to the iMC. The stride aliases the same set at
  // every level, so enough fills push the dirty line all the way out.
  const uint64_t l3_stride = f.l3->sets() * kCacheLineSize;
  (void)l1_stride;
  for (uint64_t i = 1; i <= 3 * (f.platform.cache.l3.ways + f.platform.cache.l2.ways); ++i) {
    f.hier->Load(i * l3_stride, 1000 + i * 10, false);
  }
  EXPECT_GE(f.counters.imc_write_bytes, kCacheLineSize);
}

TEST(PrefetcherTest, AdjacentTriggersOnL2Miss) {
  HierFixture f;
  f.hier->prefetch_engine().SetEnabled(true, false, false);
  f.hier->Load(0, 1000, false);
  EXPECT_EQ(f.counters.prefetch_requests, 1u);
  EXPECT_TRUE(f.hier->l2().Probe(kCacheLineSize, 2000));
  EXPECT_FALSE(f.hier->l1().Probe(kCacheLineSize, 2000));  // L2 prefetcher
}

TEST(PrefetcherTest, AdjacentTriggersOnPrefetchedFirstTouch) {
  HierFixture f;
  f.hier->prefetch_engine().SetEnabled(true, false, false);
  f.hier->Load(0, 1000, false);          // prefetches line 1
  f.hier->Load(kCacheLineSize, 2000, false);  // first touch -> prefetches line 2
  EXPECT_EQ(f.counters.prefetch_requests, 2u);
  EXPECT_TRUE(f.hier->l2().Probe(2 * kCacheLineSize, 3000));
}

TEST(PrefetcherTest, DcuTriggersOnAscendingPair) {
  HierFixture f;
  f.hier->prefetch_engine().SetEnabled(false, true, false);
  f.hier->Load(0, 1000, false);
  EXPECT_EQ(f.counters.prefetch_requests, 0u);
  f.hier->Load(kCacheLineSize, 2000, false);  // ascending pair
  EXPECT_EQ(f.counters.prefetch_requests, 1u);
  EXPECT_TRUE(f.hier->l1().Probe(2 * kCacheLineSize, 3000));  // DCU fills L1
}

TEST(PrefetcherTest, DcuIgnoresNonAdjacent) {
  HierFixture f;
  f.hier->prefetch_engine().SetEnabled(false, true, false);
  f.hier->Load(0, 1000, false);
  f.hier->Load(10 * kCacheLineSize, 2000, false);
  EXPECT_EQ(f.counters.prefetch_requests, 0u);
}

TEST(PrefetcherTest, StreamLocksOnConstantStride) {
  HierFixture f;
  f.hier->prefetch_engine().SetEnabled(false, false, true);
  // Long 256 B-stride run: the stochastic lock arbitration must engage well
  // within 64 in-stride accesses (P(miss) ~ 0.6^20).
  for (uint64_t i = 0; i < 64; ++i) {
    f.hier->Load(i * kXPLineSize, 1000 + i * 100, false);
  }
  EXPECT_GT(f.counters.prefetch_requests, 0u);
}

TEST(PrefetcherTest, StreamIgnoresRandomAccesses) {
  HierFixture f;
  f.hier->prefetch_engine().SetEnabled(false, false, true);
  Rng rng(99);
  for (int i = 0; i < 100; ++i) {
    f.hier->Load(rng.NextBelow(1u << 20) * kCacheLineSize * 7, 1000 + i * 100, false);
  }
  EXPECT_EQ(f.counters.prefetch_requests, 0u);
}

TEST(PrefetcherTest, PrefetchFillsDoNotCascade) {
  HierFixture f;
  f.hier->prefetch_engine().SetEnabled(true, true, true);
  f.hier->Load(0, 1000, false);
  // Bounded prefetching from a single demand access.
  EXPECT_LE(f.counters.prefetch_requests, 3u);
}

TEST(PrefetcherTest, PrefetchedLineArrivesLater) {
  HierFixture f;
  f.hier->prefetch_engine().SetEnabled(true, false, false);
  f.hier->Load(0, 1000, false);  // issues prefetch of line 1 at ~1000
  // An immediate demand hit on the prefetched line waits for its fill.
  const HierAccessResult r = f.hier->Load(kCacheLineSize, 1001, false);
  EXPECT_EQ(r.hit_level, 2);
  EXPECT_GT(r.complete_at, 1001 + f.platform.cache.l2.hit_latency);
}

}  // namespace
}  // namespace pmemsim
