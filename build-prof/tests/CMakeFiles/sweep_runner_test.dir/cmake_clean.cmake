file(REMOVE_RECURSE
  "CMakeFiles/sweep_runner_test.dir/sweep_runner_test.cc.o"
  "CMakeFiles/sweep_runner_test.dir/sweep_runner_test.cc.o.d"
  "sweep_runner_test"
  "sweep_runner_test.pdb"
  "sweep_runner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
