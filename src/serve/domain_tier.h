// DomainTier: the shard-parallel (partitioned) serving engine.
//
// The legacy ServiceTier interleaves all N shards x M workers on ONE shared
// System through one lockstep heap — a single host thread per sweep point.
// DomainTier instead partitions the deployment into N independent *domains*:
// each shard owns its own System (DIMMs, iMC, caches, counter registry),
// store, bounded admission queue, stats, attribution collector, and worker
// ThreadContexts, and shares nothing with its peers. The only cross-domain
// interaction is the client tier (TierDispatcher) routing requests to shards
// by key hash with a modelled dispatch latency of D = cfg.dispatch_latency
// cycles.
//
// Conservative epoch execution (D > 0):
//   Because every cross-domain message issued at time t arrives at t + D at
//   the earliest, a domain advancing inside the window [E, E + D) can never
//   receive an arrival it has not already been handed: all deliveries due
//   before E + D are staged at the preceding barrier. So the engine runs
//
//     loop:  deliver arrivals < epoch_end       (coordinator)
//            every domain: RunUntil(epoch_end)  (cfg.engine_threads host
//                                                threads, no shared state)
//            barrier: fold domain events sorted by (time, client),
//                     issue closed-loop re-dispatches  (coordinator)
//
//   Within a domain the scheduler preserves the exact (clock, job-index)
//   lockstep order; across domains nothing is shared; and every coordinator
//   fold happens in a deterministic sorted order. Results are therefore
//   byte-identical at any --engine_threads — that is the determinism
//   contract, gated in CI exactly like --jobs.
//
// Zero lookahead (D == 0) removes the conservative window, so the engine
// falls back to one combined sequential Scheduler::Run over all domains'
// workers (engine_threads is ignored): the lockstep global clock order plays
// the coordinator, and the dispatcher is pumped synchronously at admission
// time.
//
// Stats merge is order-independent: every per-domain counter is an integer
// sum or a histogram bucket count, merged by addition on the coordinator in
// fixed domain-index order (see DESIGN.md §11).

#ifndef SRC_SERVE_DOMAIN_TIER_H_
#define SRC_SERVE_DOMAIN_TIER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "src/common/config.h"
#include "src/core/system.h"
#include "src/cpu/scheduler.h"
#include "src/cpu/thread_context.h"
#include "src/serve/dispatch.h"
#include "src/serve/request_queue.h"
#include "src/serve/service_stats.h"
#include "src/serve/shard.h"
#include "src/trace/attribution.h"

namespace pmemsim {

class JsonWriter;

// One isolated shard domain: its own simulated machine plus the serving state
// of exactly one shard. All methods are called either from the coordinator
// between epochs or from the single host thread advancing this domain inside
// an epoch — never concurrently.
class ServeDomain {
 public:
  // `load_keys` is this domain's slice of the global preload key space
  // (TierDispatcher::PartitionLoadKeys); `append_budget` sizes append-only
  // stores for the tier-wide op budget (any op can route anywhere).
  ServeDomain(const PlatformConfig& platform, uint32_t dimms, const ServeConfig& cfg,
              uint32_t index, std::vector<uint64_t> load_keys, uint64_t append_budget);

  // Preloads the owned keys on the first worker (domains load in parallel —
  // each on its own System, there is nothing to contend on).
  void RunLoad();
  Cycles load_end() const { return load_end_; }

  // Aligns workers to the common serve origin t0, installs attribution,
  // opens the queue's serve accounting phase, and prepares the engine:
  // epoch mode (eager_dispatcher == nullptr) builds this domain's own
  // Scheduler; eager mode records the dispatcher to pump synchronously and
  // the tier-wide quiescence predicate that retires idle workers.
  void BeginServe(Cycles t0, TierDispatcher* eager_dispatcher, std::function<bool()> all_quiet);

  // Installs (or clears) the domain's observability sinks — same contract as
  // Shard::SetObservability. Install before BeginServe (which emits the
  // opening queue-depth observation). The domain drives the metrics'
  // mem-sampler from its private scheduler (epoch mode) or from its worker
  // steps (eager mode), so the memory-plane series stays per-domain.
  void SetObservability(ServeMetrics* metrics, SpanRecorder* spans);

  // Delivery sink for the dispatcher (arrival times may be far future; the
  // domain admits them when its clock gets there).
  void Accept(const Request& r);

  // Epoch mode: advances this domain's workers until every one is parked at
  // clock >= epoch_end. Runs on one host thread; touches only domain state.
  void RunEpoch(Cycles epoch_end);

  // The epoch's cross-domain event log (closed loop), drained at the barrier.
  std::vector<DomainEvent>& events() { return events_; }

  // Eager mode: appends one SimJob per worker for the combined lockstep run.
  void AppendEagerJobs(std::vector<SimJob>* out);

  // No pending arrival, empty queue, nothing in flight.
  bool Drained() const;

  // Clears attribution hooks and copies queue counters into stats().
  void FinalizeServe();

  uint32_t index() const { return index_; }
  System& system() { return system_; }
  const RequestQueue& queue() const { return queue_; }
  const ServiceStats& stats() const { return stats_; }
  AttributionCollector& attribution() { return attribution_; }

 private:
  struct Worker {
    ThreadContext* ctx = nullptr;
    std::vector<Request> claimed;
    size_t next = 0;
  };
  struct ArrivalOrder {
    bool operator()(const Request& a, const Request& b) const {
      return a.arrival != b.arrival ? a.arrival > b.arrival : a.client > b.client;
    }
  };

  StepResult WorkerStep(Worker& wk);
  void CatchUpAdmissions(Cycles now);
  void Execute(ThreadContext& ctx, const Request& r);
  void CompleteRequest(const Request& r, Cycles start, Cycles end);
  void Scan(ThreadContext& ctx, uint64_t from, uint32_t len);
  std::optional<Cycles> NextArrivalTime() const;

  const ServeConfig& cfg_;
  uint32_t index_;
  System system_;
  RequestQueue queue_;
  ServiceStats stats_;
  AttributionCollector attribution_;
  ServeMetrics* metrics_ = nullptr;        // not owned; null = observability off
  SpanRecorder* span_recorder_ = nullptr;  // not owned
  Cycles span_stage_base_[AttributionCollector::kStageCount] = {};
  std::vector<Worker> workers_;
  std::unique_ptr<ShardStore> store_;
  std::vector<uint64_t> load_keys_;
  std::vector<uint64_t> owned_sorted_;  // hash-store scan emulation order

  std::priority_queue<Request, std::vector<Request>, ArrivalOrder> pending_;
  std::vector<DomainEvent> events_;
  std::vector<SimJob> jobs_;
  std::unique_ptr<Scheduler> engine_;
  TierDispatcher* eager_dispatcher_ = nullptr;  // non-null <=> eager mode
  std::function<bool()> all_quiet_;
  Cycles load_end_ = 0;
  Cycles epoch_end_ = 0;
  uint64_t in_flight_ = 0;
};

class DomainTier {
 public:
  // One System per shard domain, each with `dimms_per_domain` Optane DIMMs.
  DomainTier(const PlatformConfig& platform, uint32_t dimms_per_domain, const ServeConfig& cfg);

  // Attaches (before Run) the serve-phase observability sink: per-domain
  // windowed metrics + spans and a per-domain memory-plane sampler over each
  // domain's private System (the global timeline view is the field-wise sum).
  // Timeline Begin/Finalize happen on the coordinator at serve_start_ and the
  // engine's final cycle. Pass nullptr (default) for zero-cost serving.
  void AttachTimeline(ServeTimeline* timeline) { timeline_ = timeline; }

  // Load (parallel across domains) then serve to completion. One-shot.
  void Run();

  Cycles load_end() const { return load_end_; }
  Cycles serve_start() const { return serve_start_; }
  Cycles end_cycle() const;

  const ServeConfig& config() const { return cfg_; }
  const std::vector<std::unique_ptr<ServeDomain>>& domains() const { return domains_; }
  ServiceStats GlobalStats() const;  // merged in domain-index order

  // Same shape as ServiceTier::ToJson (scripts/check_serve.py schema), plus
  // config.engine = "partitioned" and config.dispatch_latency. Deliberately
  // excludes engine_threads: the report must byte-compare across thread
  // counts.
  void ToJson(JsonWriter& w) const;
  std::string ToJson() const;

 private:
  void RunEpochLoop();
  void RunEager();
  void BeginTimeline();
  bool AllDrained() const;

  PlatformConfig platform_;
  ServeConfig cfg_;
  TierDispatcher dispatcher_;
  std::vector<std::unique_ptr<ServeDomain>> domains_;
  ServeTimeline* timeline_ = nullptr;  // not owned
  Cycles load_end_ = 0;
  Cycles serve_start_ = 0;
  Cycles serve_end_ = 0;
  bool ran_ = false;
};

}  // namespace pmemsim

#endif  // SRC_SERVE_DOMAIN_TIER_H_
