// Core value types and address arithmetic shared by every pmemsim subsystem.
//
// The simulator models a single-socket (optionally two-node) physical address
// space. All latencies are expressed in CPU cycles of the simulated platform.

#ifndef SRC_COMMON_TYPES_H_
#define SRC_COMMON_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace pmemsim {

// A simulated physical address (byte granularity).
using Addr = uint64_t;

// A point in simulated time or a duration, in CPU cycles.
using Cycles = uint64_t;

// CPU cacheline granularity: the unit of every CPU<->iMC transfer.
inline constexpr uint64_t kCacheLineSize = 64;

// 3D-Xpoint media access granularity (an "XPLine"): the unit of every
// on-DIMM-buffer<->media transfer. One XPLine holds four cachelines.
inline constexpr uint64_t kXPLineSize = 256;

inline constexpr uint64_t kLinesPerXPLine = kXPLineSize / kCacheLineSize;

// Sparse backing-store page size (also the PM interleave granularity used by
// the platforms the paper evaluates).
inline constexpr uint64_t kPageSize = 4096;

inline constexpr Addr CacheLineBase(Addr a) { return a & ~(kCacheLineSize - 1); }
inline constexpr Addr XPLineBase(Addr a) { return a & ~(kXPLineSize - 1); }
inline constexpr Addr PageBase(Addr a) { return a & ~(kPageSize - 1); }

// Index of the cacheline within its XPLine, in [0, 4).
inline constexpr uint64_t LineIndexInXPLine(Addr a) {
  return (a & (kXPLineSize - 1)) / kCacheLineSize;
}

inline constexpr bool IsCacheLineAligned(Addr a) { return (a & (kCacheLineSize - 1)) == 0; }
inline constexpr bool IsXPLineAligned(Addr a) { return (a & (kXPLineSize - 1)) == 0; }

inline constexpr uint64_t AlignUp(uint64_t v, uint64_t align) {
  return (v + align - 1) & ~(align - 1);
}

inline constexpr uint64_t KiB(uint64_t v) { return v << 10; }
inline constexpr uint64_t MiB(uint64_t v) { return v << 20; }
inline constexpr uint64_t GiB(uint64_t v) { return v << 30; }

// Memory device class backing a region of the address space.
enum class MemoryKind : uint8_t {
  kOptane,  // Optane DCPMM (App Direct)
  kDram,    // conventional DRAM
};

// Optane DCPMM generation. Selects buffer sizing / write-back / clwb policy.
enum class Generation : uint8_t {
  kG1,  // 100-series Optane, Cascade Lake-era platform
  kG2,  // 200-series Optane, Ice Lake-era platform
};

// NUMA node of a thread or region. The paper's testbeds have two sockets with
// all DIMMs on node 0; "remote" experiments run the thread on the other node.
using NodeId = uint8_t;

}  // namespace pmemsim

#endif  // SRC_COMMON_TYPES_H_
