// ThreadContext: the per-(simulated-)thread execution engine. Owns the thread
// clock and the private L1/L2 caches, and exposes an x86-flavoured operation
// set — loads, stores, cacheline flushes, non-temporal stores, fences, and
// the AVX streaming copy of Algorithm 2 — each advancing the clock by the
// mechanistically computed latency.
//
// Data is real: every operation also reads/writes the shared BackingStore, so
// data structures built on top behave like genuine persistent structures.

#ifndef SRC_CPU_THREAD_CONTEXT_H_
#define SRC_CPU_THREAD_CONTEXT_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/cache/hierarchy.h"
#include "src/common/access_record.h"
#include "src/common/backing_store.h"
#include "src/common/config.h"
#include "src/common/types.h"
#include "src/cpu/persist_observer.h"
#include "src/imc/memory_controller.h"
#include "src/trace/attribution.h"
#include "src/trace/counters.h"

namespace pmemsim {

class TraceRecorder;

class ThreadContext {
 public:
  ThreadContext(const PlatformConfig& config, BackingStore* backing, MemoryController* mc,
                SetAssocCache* shared_l3, Counters* counters, NodeId node, uint64_t rng_seed);

  // An SMT sibling shares `sibling`'s core: its private L1/L2 caches and
  // prefetch engine are the same objects (the paper binds the helper thread
  // to the worker's sibling hyperthread, §4.1).
  ThreadContext(const PlatformConfig& config, BackingStore* backing, MemoryController* mc,
                Counters* counters, ThreadContext* sibling);

  // --- clock ---
  Cycles clock() const { return clock_; }
  void AdvanceTo(Cycles t);
  void AddCompute(Cycles c) {
    clock_ += ScaleCore(c);
    if (recorder_ != nullptr) {
      RecordCompute(c);
    }
  }

  // --- demand accesses (timed + data) ---
  uint64_t Load64(Addr addr);
  void Store64(Addr addr, uint64_t value);
  // Timing-only cacheline touches.
  void LoadLine(Addr addr);
  void StoreLine(Addr addr);
  // Bulk, line-granular timed accesses.
  void Read(Addr addr, void* out, size_t len);
  void Write(Addr addr, const void* data, size_t len);

  // A load that does not train the prefetchers (AVX/streaming access path).
  uint64_t Load64NoPrefetch(Addr addr);

  // Host-side hint that `addr` is the next access: warms the cache-model set
  // blocks, the DIMM translation state, and the backing-store data behind it.
  // No simulated effect (no clock, counters, or cache-state change) — callers
  // that know their next address issue it one operation early so the host
  // memory fetches overlap the current operation's simulation work.
  void HostPrefetchHint(Addr addr) const {
    backing_->PrefetchRead(addr);
    hier_->HostPrefetchHint(addr);
    hint_line_ = CacheLineBase(addr);
  }

  // Issues independent loads with full memory-level parallelism: the clock
  // advances to the latest completion rather than the sum (helper-thread
  // prefetch loops have no dependent chain across addresses).
  void LoadMulti(const Addr* addrs, size_t count);

  // SMT co-run penalty: scales core-local costs (cache hits, compute, issue
  // and fence costs) while memory-side latencies stay physical. Set to ~1.3
  // when a sibling hyperthread (e.g. a helper prefetcher) shares the core.
  void SetSmtScale(double scale) { smt_scale_ = scale; }
  double smt_scale() const { return smt_scale_; }

  // --- persistence ops ---
  // Both flushes dispatch through a member-function pointer bound once at
  // construction: the eADR presets route to a no-op retire (caches are in the
  // persistence domain), ADR platforms to the real write-back path — no
  // per-call branch on the platform flag.
  void Clwb(Addr addr) { (this->*clwb_impl_)(addr); }
  void Clflushopt(Addr addr) { (this->*clflushopt_impl_)(addr); }
  // Non-temporal 64 B store: bypasses (and snoop-invalidates) the caches,
  // heads straight for the WPQ.
  void NtStoreLine(Addr addr, const void* data64);
  void NtStore64(Addr addr, uint64_t value);
  // Non-temporal write of an arbitrary range (line granular under the hood).
  void NtWrite(Addr addr, const void* data, size_t len);
  void Sfence();
  void Mfence();

  // Algorithm 2: copy one XPLine from PM into a DRAM-resident buffer with
  // four 512-bit moves that bypass prefetch training, then return the copy's
  // completion. Subsequent reads should target `dram_buffer`.
  void StreamCopyXPLine(Addr pm_xpline, Addr dram_buffer);

  // --- introspection ---
  struct LastAccess {
    uint8_t hit_level = 0;
    Cycles latency = 0;
    Cycles stalled_for = 0;
  };
  const LastAccess& last_access() const { return last_access_; }
  size_t outstanding_persists() const { return outstanding_.size(); }

  CacheHierarchy& hierarchy() { return *hier_; }
  BackingStore& backing() { return *backing_; }
  NodeId node() const { return node_; }

  // Installs (or clears, with nullptr) a store/fence observer. Used by the
  // crash-consistency subsystem's PersistTracker; at most one at a time.
  void SetPersistObserver(PersistObserver* observer) { observer_ = observer; }

  // Installs (or clears, with nullptr) the per-access latency-attribution
  // collector (the benches' --breakdown flag). Every timed operation then
  // records its end-to-end latency and stage decomposition; with no collector
  // the only hot-path cost is one pointer test per operation.
  void SetAttribution(AttributionCollector* collector) { attribution_ = collector; }

  // Installs (or clears, with nullptr) the trace recorder; `tid` is this
  // thread's id in the trace's thread table (System::SetTraceRecorder assigns
  // creation order). Every public timed operation then appends one record;
  // with no recorder the only hot-path cost is one pointer test per op.
  void SetTraceRecorder(TraceRecorder* recorder, uint32_t tid) {
    recorder_ = recorder;
    trace_tid_ = tid;
  }

  // Emits a phase-boundary marker into the trace (no clock or counter effect;
  // a no-op without a recorder). The replayer fires its on_marker callback at
  // the same stream position, so phase-delimited metrics reproduce exactly.
  void TraceMarker(uint32_t id);

  // Test helper: drop private cache state and pending persist tracking.
  void ResetMicroarchState();

 private:
  struct Outstanding {
    Addr line = 0;
    Cycles accepted_at = 0;
    bool is_flush = false;  // clwb/clflushopt (has a scheduled invalidation)
  };

  // Fixed-capacity power-of-two ring of outstanding persists. Occupancy is
  // bounded by the store-buffer depth (TrackPersist retires the oldest entry
  // before exceeding it), so the ring never reallocates after Init.
  class OutstandingRing {
   public:
    void Init(size_t capacity) {
      size_t cap = 1;
      while (cap < capacity) {
        cap <<= 1;
      }
      buf_.assign(cap, Outstanding{});
      mask_ = cap - 1;
      clear();
    }
    bool empty() const { return size_ == 0; }
    size_t size() const { return size_; }
    const Outstanding& front() const { return buf_[head_ & mask_]; }
    const Outstanding& at(size_t i) const { return buf_[(head_ + i) & mask_]; }
    void pop_front() {
      ++head_;
      --size_;
    }
    void push_back(const Outstanding& o) {
      buf_[(head_ + size_) & mask_] = o;
      ++size_;
    }
    void clear() {
      head_ = 0;
      size_ = 0;
    }

   private:
    std::vector<Outstanding> buf_;
    size_t mask_ = 0;
    size_t head_ = 0;
    size_t size_ = 0;
  };

  void TrackPersist(Addr line, Cycles accepted_at, bool is_flush);
  void DrainRetired();
  uint64_t LoadInternal(Addr addr, bool train);
  // Binds the flush member-function pointers and sizes the persist ring
  // (shared tail of both constructors).
  void BindPlatformDispatch();
  // Flush-dispatch targets (see Clwb/Clflushopt above).
  void ClwbAdr(Addr addr);
  void ClflushoptAdr(Addr addr);
  void ClwbEadr(Addr addr);
  void ClflushoptEadr(Addr addr);
  void FenceCommon(bool is_mfence);
  Cycles ScaleCore(Cycles c) const;
  void StoreTimed(Addr addr);
  void NoteRecentFlush(Addr line);
  // Attribution recording (called only with attribution_ != nullptr).
  void RecordMemAccess(AttributionCollector::Op op, Cycles end_to_end, const HierAccessResult& r);
  void RecordPersistOp(AttributionCollector::Op op, Cycles t0, Cycles wpq_wait, Cycles accepted_at);
  // Trace recording for AddCompute (called only with recorder_ != nullptr).
  void RecordCompute(Cycles c);

  CpuConfig cpu_;
  bool eadr_ = false;  // caches are persistent: flushes are unnecessary
  BackingStore* backing_;
  MemoryController* mc_;
  Counters* counters_;
  NodeId node_;

  CacheHierarchy own_hierarchy_;
  CacheHierarchy* hier_;  // == &own_hierarchy_, or the SMT sibling's
  Cycles clock_ = 0;
  LastAccess last_access_;

  PersistObserver* observer_ = nullptr;
  AttributionCollector* attribution_ = nullptr;
  TraceRecorder* recorder_ = nullptr;
  uint32_t trace_tid_ = 0;
  OutstandingRing outstanding_;
  bool loads_ordered_ = false;  // true after mfence, false after sfence
  // Lines flushed by the most recent clwb/clflushopt ops whose cache-side
  // invalidation has not architecturally retired for younger unordered loads
  // (the out-of-order window that keeps sfence RAP low at distance <= 1).
  // At most the two newest such lines matter, so a two-slot array suffices.
  std::array<Addr, 2> recent_flushes_{};
  uint32_t recent_flush_count_ = 0;
  double smt_scale_ = 1.0;
  // Per-thread arena for access-result records: every timed load/store
  // allocates its record here and the memory layers fill it in place.
  AccessArena arena_;
  using FlushFn = void (ThreadContext::*)(Addr);
  FlushFn clwb_impl_ = nullptr;        // bound in the constructors
  FlushFn clflushopt_impl_ = nullptr;  // bound in the constructors
  // Last line warmed by HostPrefetchHint; the load entry point skips its
  // backing-data prefetch for it. Host-only state, never read by timing code.
  mutable Addr hint_line_ = ~Addr{0};
};

}  // namespace pmemsim

#endif  // SRC_CPU_THREAD_CONTEXT_H_
