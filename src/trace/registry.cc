#include "src/trace/registry.h"

#include "src/common/check.h"
#include "src/trace/json.h"

namespace pmemsim {

Counters* CounterRegistry::CreateScope(const std::string& name) {
  PMEMSIM_CHECK_MSG(FindScope(name) == nullptr, "duplicate counter scope name");
  scopes_.push_back(Scope{name, Counters{}});
  return &scopes_.back().counters;
}

const Counters* CounterRegistry::FindScope(const std::string& name) const {
  for (const Scope& s : scopes_) {
    if (s.name == name) {
      return &s.counters;
    }
  }
  return nullptr;
}

Counters CounterRegistry::Aggregate() const {
  Counters total;
  for (const Scope& s : scopes_) {
    total += s.counters;
  }
  return total;
}

void CounterRegistry::AggregateInto(Counters* out) const {
  *out = Aggregate();  // value-only assignment; `out`'s binding survives
}

void CounterRegistry::ToJson(JsonWriter& w) const {
  w.BeginObject();
  for (const Scope& s : scopes_) {
    w.Key(s.name);
    s.counters.ToJson(w);
  }
  w.EndObject();
}

std::string CounterRegistry::ToJson() const {
  JsonWriter w;
  ToJson(w);
  return w.str();
}

}  // namespace pmemsim
