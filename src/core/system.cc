#include "src/core/system.h"

#include "src/common/check.h"
#include "src/common/random.h"

namespace pmemsim {

System::System(const PlatformConfig& config, uint32_t optane_dimm_count) : config_(config) {
  mc_ = std::make_unique<MemoryController>(config_, &counters_, optane_dimm_count);
  l3_ = std::make_unique<SetAssocCache>(config_.cache.l3);
}

PmRegion System::AllocatePm(uint64_t bytes, uint64_t align) {
  PMEMSIM_CHECK(bytes > 0);
  pm_next_ = AlignUp(pm_next_, align);
  const PmRegion region{pm_next_, bytes, MemoryKind::kOptane};
  pm_next_ += AlignUp(bytes, align);
  PMEMSIM_CHECK_MSG(pm_next_ < kDramAddressBase, "PM address space exhausted");
  return region;
}

PmRegion System::AllocateDram(uint64_t bytes, uint64_t align) {
  PMEMSIM_CHECK(bytes > 0);
  dram_next_ = AlignUp(dram_next_, align);
  const PmRegion region{dram_next_, bytes, MemoryKind::kDram};
  dram_next_ += AlignUp(bytes, align);
  return region;
}

ThreadContext& System::CreateThread(NodeId node) {
  thread_seed_ = Mix64(thread_seed_ + 0x9E3779B97F4A7C15ull);
  threads_.push_back(std::make_unique<ThreadContext>(config_, &backing_, mc_.get(), l3_.get(),
                                                     &counters_, node, thread_seed_));
  return *threads_.back();
}

ThreadContext& System::CreateSmtSibling(ThreadContext& sibling) {
  threads_.push_back(
      std::make_unique<ThreadContext>(config_, &backing_, mc_.get(), &counters_, &sibling));
  return *threads_.back();
}

void System::ResetMicroarchState() {
  mc_->Reset();
  l3_->Clear();
  for (auto& t : threads_) {
    t->ResetMicroarchState();
  }
}

}  // namespace pmemsim
