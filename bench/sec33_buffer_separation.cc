// §3.3 (no figure): evidence that the read and write buffers are separate,
// and that XPLines transition between them.
//
// Experiment A (separation): a 16 KB read region and an 8 KB write region are
// accessed with interleaved reads (clflushopt'd after each load) and
// nt-stores. Each working set individually fits its buffer but the aggregate
// (24 KB) would overflow a shared 16 KB space. Observed: RA stays 1 and no
// data is written to the media — the buffers do not contend.
//
// Experiment B (transition): one nt-store to the first cacheline of an
// XPLine, followed by reads of its other three cachelines, over an 8 KB
// region. Observed: media traffic far below iMC traffic in both directions —
// reads hit the write buffer, writes update read-buffer-resident XPLines
// (counted by the read_write_transitions counter) and avoid RMW media reads.
//
// Output: measurements plus PASS/FAIL verdicts against the paper's claims.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/sweep_runner.h"
#include "src/core/platform.h"
#include "src/trace/counters.h"

namespace {

using namespace pmemsim;

void RunSeparation(Generation gen, pmemsim_bench::SweepPoint& point) {
  auto system = MakeSystem(gen, /*optane_dimm_count=*/1);
  ThreadContext& ctx = system->CreateThread();
  SetPrefetchers(ctx, false, false, false);

  const PmRegion read_region = system->AllocatePm(KiB(16), kXPLineSize);
  const PmRegion write_region = system->AllocatePm(KiB(8), kXPLineSize);
  const uint64_t read_lines = read_region.size / kCacheLineSize;
  const uint64_t write_xplines = write_region.size / kXPLineSize;

  auto pass = [&](int rounds) {
    for (int p = 0; p < rounds; ++p) {
      for (uint64_t i = 0; i < read_lines; ++i) {
        const Addr raddr = read_region.base + i * kCacheLineSize;
        ctx.LoadLine(raddr);
        ctx.Clflushopt(raddr);
        // Partial writes: one cacheline per XPLine of the write region.
        const Addr waddr = write_region.base + (i % write_xplines) * kXPLineSize;
        ctx.NtStore64(waddr, i);
      }
      ctx.Sfence();
    }
  };

  pass(3);
  CounterDelta delta(&system->counters());
  pass(8);
  const Counters d = delta.Delta();
  const double ra = d.ReadAmplification();
  const bool no_media_write = d.media_write_bytes == 0;
  const char* gen_name = gen == Generation::kG1 ? "G1" : "G2";
  const char* verdict = (ra < 1.05 && no_media_write) ? "SEPARATE-BUFFERS" : "SHARED-BUFFERS";
  point.Printf("%s,separation,RA=%.3f,media_write_bytes=%llu,verdict=%s\n", gen_name, ra,
               static_cast<unsigned long long>(d.media_write_bytes), verdict);
  point.AddRow()
      .Set("gen", gen_name)
      .Set("experiment", "separation")
      .Set("read_amplification", ra)
      .Set("media_write_bytes", d.media_write_bytes)
      .Set("verdict", verdict);
}

void RunTransition(Generation gen, pmemsim_bench::SweepPoint& point) {
  auto system = MakeSystem(gen, /*optane_dimm_count=*/1);
  ThreadContext& ctx = system->CreateThread();
  SetPrefetchers(ctx, false, false, false);

  const PmRegion region = system->AllocatePm(KiB(8), kXPLineSize);
  const uint64_t xplines = region.size / kXPLineSize;

  auto pass = [&](int rounds) {
    for (int p = 0; p < rounds; ++p) {
      for (uint64_t xp = 0; xp < xplines; ++xp) {
        const Addr base = region.base + xp * kXPLineSize;
        ctx.NtStore64(base, p);  // write the first cacheline...
        for (uint64_t cl = 1; cl < kLinesPerXPLine; ++cl) {
          ctx.LoadLine(base + cl * kCacheLineSize);  // ...read the other three
          ctx.Clflushopt(base + cl * kCacheLineSize);
        }
      }
      ctx.Sfence();
    }
  };

  pass(3);
  CounterDelta delta(&system->counters());
  pass(8);
  const Counters d = delta.Delta();
  const double media_vs_imc_read =
      static_cast<double>(d.media_read_bytes) /
      static_cast<double>(d.imc_read_bytes ? d.imc_read_bytes : 1);
  const double media_vs_imc_write =
      static_cast<double>(d.media_write_bytes) /
      static_cast<double>(d.imc_write_bytes ? d.imc_write_bytes : 1);
  const char* gen_name = gen == Generation::kG1 ? "G1" : "G2";
  const char* verdict =
      (media_vs_imc_read < 0.5 && media_vs_imc_write < 1.2) ? "BUFFER-HITS" : "MEDIA-BOUND";
  point.Printf(
      "%s,transition,media/imc_read=%.3f,media/imc_write=%.3f,transitions=%llu,verdict=%s\n",
      gen_name, media_vs_imc_read, media_vs_imc_write,
      static_cast<unsigned long long>(d.read_write_transitions), verdict);
  point.AddRow()
      .Set("gen", gen_name)
      .Set("experiment", "transition")
      .Set("media_imc_read_ratio", media_vs_imc_read)
      .Set("media_imc_write_ratio", media_vs_imc_write)
      .Set("transitions", d.read_write_transitions)
      .Set("verdict", verdict);
}

}  // namespace

int main(int argc, char** argv) {
  pmemsim_bench::Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::printf("usage: sec33_buffer_separation [--gen=g1|g2|both]\n%s",
                pmemsim_bench::kTelemetryFlagsHelp);
    return 0;
  }
  pmemsim_bench::BenchReport report(flags, "sec33_buffer_separation");
  pmemsim_bench::SweepRunner runner(flags);
  flags.RejectUnknown();
  pmemsim_bench::PrintHeader("Section 3.3", "read/write buffer separation and XPLine transition");
  for (Generation gen : {Generation::kG1, Generation::kG2}) {
    const char* gen_name = gen == Generation::kG1 ? "G1" : "G2";
    runner.Add(std::string(gen_name) + "/separation",
               [=](pmemsim_bench::SweepPoint& point) { RunSeparation(gen, point); });
    runner.Add(std::string(gen_name) + "/transition",
               [=](pmemsim_bench::SweepPoint& point) { RunTransition(gen, point); });
  }
  return runner.Finish(report);
}
