#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/common/check.h"
#include "src/trace/json.h"

namespace pmemsim {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::Reset() { *this = RunningStat(); }

void RunningStat::ToJson(JsonWriter& w) const {
  w.BeginObject();
  w.Key("count").Value(count_);
  w.Key("mean").Value(mean());
  w.Key("stddev").Value(stddev());
  w.Key("min").Value(min());
  w.Key("max").Value(max());
  w.Key("sum").Value(sum());
  w.EndObject();
}

std::string RunningStat::ToJson() const {
  JsonWriter w;
  ToJson(w);
  return w.str();
}

Histogram::Histogram() : buckets_(static_cast<size_t>(kOctaves) * kSubBuckets, 0) {}

int Histogram::BucketFor(uint64_t value) {
  if (value < kSubBuckets) {
    return static_cast<int>(value);
  }
  const int msb = 63 - __builtin_clzll(value);
  const int octave = msb - kSubBucketBits + 1;
  const int sub = static_cast<int>((value >> (msb - kSubBucketBits)) & (kSubBuckets - 1));
  int bucket = (octave + 1) * kSubBuckets + sub;
  return std::min<int>(bucket, kOctaves * kSubBuckets - 1);
}

uint64_t Histogram::BucketMidpoint(int bucket) {
  if (bucket < kSubBuckets) {
    return static_cast<uint64_t>(bucket);
  }
  const int octave = bucket / kSubBuckets - 1;
  const int sub = bucket % kSubBuckets;
  const uint64_t base = (static_cast<uint64_t>(kSubBuckets) | static_cast<uint64_t>(sub))
                        << (octave - 1);
  const uint64_t width = 1ull << std::max(0, octave - 1);
  return base + width / 2;
}

void Histogram::Add(uint64_t value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += static_cast<double>(value);
  ++buckets_[static_cast<size_t>(BucketFor(value))];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
}

double Histogram::mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  PMEMSIM_CHECK(p >= 0.0 && p <= 100.0);
  const uint64_t target =
      static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_)));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      return std::clamp(BucketMidpoint(static_cast<int>(i)), min_, max_);
    }
  }
  return max_;
}

uint64_t Histogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  PMEMSIM_CHECK(q >= 0.0 && q <= 1.0);
  const uint64_t target =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_))));
  // The extreme ranks are tracked exactly; skip the in-bucket interpolation,
  // which can only blur them.
  if (target == 1) {
    return min_;
  }
  if (target == count_) {
    return max_;
  }
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const uint64_t in_bucket = buckets_[i];
    if (in_bucket == 0) {
      continue;
    }
    if (seen + in_bucket >= target) {
      // The rank-`target` sample is the (target - seen)-th of this bucket's
      // samples; spread the bucket's population uniformly over its value span
      // and read the rank's position off that line.
      const int b = static_cast<int>(i);
      uint64_t lo;
      uint64_t width;
      if (b < kSubBuckets) {
        lo = static_cast<uint64_t>(b);
        width = 1;
      } else {
        const int octave = b / kSubBuckets - 1;
        const int sub = b % kSubBuckets;
        lo = (static_cast<uint64_t>(kSubBuckets) | static_cast<uint64_t>(sub)) << (octave - 1);
        width = 1ull << std::max(0, octave - 1);
      }
      const double pos =
          (static_cast<double>(target - seen) - 0.5) / static_cast<double>(in_bucket);
      const uint64_t v = lo + static_cast<uint64_t>(pos * static_cast<double>(width));
      return std::clamp(v, min_, max_);
    }
    seen += in_bucket;
  }
  return max_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = max_ = 0;
  sum_ = 0.0;
}

std::string Histogram::Summary() const {
  if (count_ == 0) {
    return "n=0 (empty)";
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1f p50=%llu p90=%llu p99=%llu min=%llu max=%llu",
                static_cast<unsigned long long>(count_), mean(),
                static_cast<unsigned long long>(Percentile(50)),
                static_cast<unsigned long long>(Percentile(90)),
                static_cast<unsigned long long>(Percentile(99)),
                static_cast<unsigned long long>(Min()),
                static_cast<unsigned long long>(Max()));
  return buf;
}

void Histogram::ToJson(JsonWriter& w) const {
  w.BeginObject();
  w.Key("count").Value(count_);
  if (count_ == 0) {
    // An empty histogram has no summary statistics: nulls, not zeros, so a
    // consumer cannot mistake "never sampled" for "measured zero latency".
    w.Key("mean").Null();
    w.Key("min").Null();
    w.Key("max").Null();
    w.Key("p50").Null();
    w.Key("p90").Null();
    w.Key("p99").Null();
    w.Key("p999").Null();
    w.EndObject();
    return;
  }
  w.Key("mean").Value(mean());
  w.Key("min").Value(Min());
  w.Key("max").Value(Max());
  w.Key("p50").Value(Percentile(50));
  w.Key("p90").Value(Percentile(90));
  w.Key("p99").Value(Percentile(99));
  w.Key("p999").Value(Percentile(99.9));
  w.EndObject();
}

std::string Histogram::ToJson() const {
  JsonWriter w;
  ToJson(w);
  return w.str();
}

}  // namespace pmemsim
