#include "src/trace/recorder.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "src/common/check.h"

namespace pmemsim {
namespace {

constexpr char kMagic[8] = {'p', 'm', 't', 'r', 'a', 'c', 'e', '\0'};
constexpr char kEndMagic[4] = {'E', 'O', 'T', 'R'};

// Sanity bounds: generous for real traces, tight enough that a corrupt file
// cannot drive pathological allocations in the parser or the replayer.
constexpr uint64_t kMaxStringBytes = 4096;
constexpr uint64_t kMaxMetaEntries = 1024;
constexpr uint64_t kMaxThreads = 65536;
constexpr uint64_t kMaxSegments = 1 << 20;
constexpr uint64_t kMaxRangeBytes = MiB(64);   // kRead/kWrite/kNtWrite lengths
constexpr uint64_t kMaxMultiAddrs = 65536;     // kLoadMulti address-list size

void PutU8(std::string& out, uint8_t v) { out.push_back(static_cast<char>(v)); }

void PutU16(std::string& out, uint16_t v) {
  for (int i = 0; i < 2; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutVarint(std::string& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

uint64_t Zigzag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t Unzigzag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void PutString16(std::string& out, const std::string& s) {
  PMEMSIM_CHECK_MSG(s.size() <= kMaxStringBytes, "trace string too long");
  PutU16(out, static_cast<uint16_t>(s.size()));
  out.append(s);
}

// Bounds-checked reader over the serialized bytes. Every accessor fails soft
// (ok() goes false, value-returning calls yield 0) so the parser can report
// one error at the recorded offset instead of reading out of bounds.
class Cursor {
 public:
  Cursor(const std::string& bytes) : data_(bytes.data()), size_(bytes.size()) {}

  bool ok() const { return ok_; }
  size_t pos() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }

  uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }
  uint16_t U16() { return static_cast<uint16_t>(Little(2)); }
  uint32_t U32() { return static_cast<uint32_t>(Little(4)); }
  uint64_t U64() { return Little(8); }

  uint64_t Varint() {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (!Need(1)) return 0;
      const uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
      v |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        // Reject non-canonical 10-byte encodings that would overflow u64.
        if (shift == 63 && byte > 1) {
          ok_ = false;
          return 0;
        }
        return v;
      }
    }
    ok_ = false;  // unterminated varint
    return 0;
  }

  bool Bytes(std::string* out, size_t n) {
    if (!Need(n)) return false;
    out->assign(data_ + pos_, n);
    pos_ += n;
    return true;
  }

  bool String16(std::string* out) {
    const uint16_t n = U16();
    if (!ok_ || n > kMaxStringBytes) {
      ok_ = false;
      return false;
    }
    return Bytes(out, n);
  }

 private:
  bool Need(size_t n) {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  uint64_t Little(int n) {
    if (!Need(n)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < n; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += static_cast<size_t>(n);
    return v;
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

bool Fail(std::string* error, size_t offset, const char* what) {
  if (error != nullptr) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "trace parse error at byte %zu: %s", offset, what);
    *error = buf;
  }
  return false;
}

}  // namespace

bool TraceOpHasAddr(TraceOp op) {
  switch (op) {
    case TraceOp::kSfence:
    case TraceOp::kMfence:
    case TraceOp::kCompute:
    case TraceOp::kMarker:
    case TraceOp::kLoadMulti:  // addresses live in the multi list
      return false;
    default:
      return true;
  }
}

bool TraceOpHasAux(TraceOp op) {
  switch (op) {
    case TraceOp::kRead:
    case TraceOp::kWrite:
    case TraceOp::kNtWrite:
    case TraceOp::kStreamCopy:
    case TraceOp::kLoadMulti:
    case TraceOp::kCompute:
    case TraceOp::kMarker:
      return true;
    default:
      return false;
  }
}

const char* TraceOpName(TraceOp op) {
  switch (op) {
    case TraceOp::kLoad64: return "load64";
    case TraceOp::kLoadLine: return "load_line";
    case TraceOp::kLoadNoPrefetch: return "load_noprefetch";
    case TraceOp::kStore64: return "store64";
    case TraceOp::kStoreLine: return "store_line";
    case TraceOp::kRead: return "read";
    case TraceOp::kWrite: return "write";
    case TraceOp::kNtStore64: return "ntstore64";
    case TraceOp::kNtStoreLine: return "ntstore_line";
    case TraceOp::kNtWrite: return "ntwrite";
    case TraceOp::kClwb: return "clwb";
    case TraceOp::kClflushopt: return "clflushopt";
    case TraceOp::kSfence: return "sfence";
    case TraceOp::kMfence: return "mfence";
    case TraceOp::kStreamCopy: return "stream_copy";
    case TraceOp::kLoadMulti: return "load_multi";
    case TraceOp::kCompute: return "compute";
    case TraceOp::kMarker: return "marker";
    case TraceOp::kOpCount: break;
  }
  return "unknown";
}

const std::string* TraceSegment::FindMeta(const std::string& key) const {
  for (const auto& [k, v] : meta) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

uint64_t TraceFile::TotalRecords() const {
  uint64_t total = 0;
  for (const TraceSegment& seg : segments) {
    total += seg.records.size();
  }
  return total;
}

uint64_t PlatformFingerprint(const PlatformConfig& config, uint32_t dimm_count) {
  // Canonical text over every constant that shapes replay timing; hashing the
  // rendered string keeps the digest independent of struct layout.
  char buf[1024];
  const OptaneDimmConfig& o = config.optane;
  const CpuConfig& c = config.cpu;
  const CacheConfig& h = config.cache;
  std::snprintf(
      buf, sizeof(buf),
      "fp1|%s|gen%u|ghz%.6g|eadr%u|dimms%u|l1:%" PRIu64 "/%u/%" PRIu64 "|l2:%" PRIu64 "/%u/%" PRIu64
      "|l3:%" PRIu64 "/%u/%" PRIu64 "|clwb%u/%" PRIu64 "|pf%u%u%u/%u|rb%" PRIu64 "/%u/%u|wb%" PRIu64
      "/%u/%u/%" PRIu64 "/%u/%.6g|lat%" PRIu64 "/%" PRIu64 "/%" PRIu64 "|ports%u/%u|ait%" PRIu64
      "/%" PRIu64 "|vis%" PRIu64 "|slfs%u/%" PRIu64 "|ovl%" PRIu64 "|dram%" PRIu64 "/%" PRIu64
      "/%" PRIu64 "/%" PRIu64 "/%u/%" PRIu64 "|imc%u/%" PRIu64 "/%" PRIu64 "/%u/%" PRIu64
      "/%" PRIu64 "/%" PRIu64 "|cpu%u/%" PRIu64 "/%" PRIu64 "/%" PRIu64 "/%" PRIu64 "/%" PRIu64
      "/%" PRIu64 "",
      config.name.c_str(), static_cast<unsigned>(config.generation), config.cpu_ghz,
      config.eadr_enabled ? 1u : 0u, dimm_count, h.l1.size_bytes, h.l1.ways, h.l1.hit_latency,
      h.l2.size_bytes, h.l2.ways, h.l2.hit_latency, h.l3.size_bytes, h.l3.ways, h.l3.hit_latency,
      h.clwb_retains_line ? 1u : 0u, h.clwb_dispatch_delay, h.adjacent_line_prefetch ? 1u : 0u,
      h.dcu_streamer_prefetch ? 1u : 0u, h.l2_stream_prefetch ? 1u : 0u, h.stream_prefetch_degree,
      o.read_buffer_bytes, o.read_buffer_eviction, o.read_buffer_exclusive ? 1u : 0u,
      o.write_buffer_bytes, o.write_buffer_partial_reserve, o.periodic_full_writeback ? 1u : 0u,
      o.full_writeback_period, o.batch_evict ? 1u : 0u, o.batch_evict_keep_fraction,
      o.buffer_hit_latency, o.media_read_latency, o.media_write_latency, o.media_read_ports,
      o.media_write_ports, o.ait_cache_coverage_bytes, o.ait_miss_penalty, o.write_visible_delay,
      o.same_line_flush_stall ? 1u : 0u, o.same_line_stall_window, o.unordered_read_overlap,
      config.dram.load_latency, config.dram.store_accept_latency, config.dram.write_visible_delay,
      config.dram.unordered_read_overlap, config.dram.ports, config.dram.port_service,
      config.imc.wpq_entries, config.imc.wpq_accept_latency, config.imc.wpq_drain_latency,
      config.imc.rpq_entries, config.imc.read_overhead, config.imc.interleave_granularity,
      config.imc.numa_hop_latency, c.store_buffer_depth, c.fence_cost, c.store_issue_cost,
      c.store_miss_post_cost, c.nt_store_issue_cost, c.flush_issue_cost, c.simd_copy_cost);
  // FNV-1a 64.
  uint64_t h64 = 0xcbf29ce484222325ull;
  for (const char* p = buf; *p != '\0'; ++p) {
    h64 ^= static_cast<uint8_t>(*p);
    h64 *= 0x100000001b3ull;
  }
  return h64;
}

void TraceRecorder::DeclareThread(uint32_t tid, NodeId node) {
  PMEMSIM_CHECK_MSG(tid < kMaxThreads, "trace thread id out of range");
  if (thread_nodes_.size() <= tid) {
    thread_nodes_.resize(tid + 1, 0);
  }
  thread_nodes_[tid] = node;
}

void TraceRecorder::Record(uint32_t tid, TraceOp op, Addr addr, uint64_t aux, Cycles clock) {
  records_.push_back({op, tid, addr, aux, clock, {}});
}

void TraceRecorder::RecordMulti(uint32_t tid, const Addr* addrs, size_t count, Cycles clock) {
  PMEMSIM_CHECK_MSG(count <= kMaxMultiAddrs, "load_multi address list too long");
  TraceRecord rec{TraceOp::kLoadMulti, tid, 0, count, clock, {}};
  rec.multi.assign(addrs, addrs + count);
  records_.push_back(std::move(rec));
}

TraceSegment TraceRecorder::Take(std::string label,
                                 std::vector<std::pair<std::string, std::string>> meta) {
  TraceSegment seg;
  seg.label = std::move(label);
  seg.meta = std::move(meta);
  seg.thread_nodes = thread_nodes_;
  if (seg.thread_nodes.empty()) {
    seg.thread_nodes.push_back(0);  // a segment always has at least one thread
  }
  seg.records = std::move(records_);
  records_.clear();
  return seg;
}

std::string TraceFile::Serialize() const {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  PutU32(out, header.version);
  PutU64(out, header.fingerprint);
  PutString16(out, header.platform_name);
  PutU8(out, static_cast<uint8_t>(header.generation));
  PutU8(out, header.eadr ? 1 : 0);
  PutU32(out, header.dimm_count);
  PutString16(out, header.scenario);
  PMEMSIM_CHECK_MSG(segments.size() <= kMaxSegments, "too many trace segments");
  PutU32(out, static_cast<uint32_t>(segments.size()));

  for (const TraceSegment& seg : segments) {
    PutString16(out, seg.label);
    PMEMSIM_CHECK_MSG(seg.meta.size() <= kMaxMetaEntries, "too many metadata entries");
    PutU16(out, static_cast<uint16_t>(seg.meta.size()));
    for (const auto& [k, v] : seg.meta) {
      PutString16(out, k);
      PutString16(out, v);
    }
    PMEMSIM_CHECK_MSG(!seg.thread_nodes.empty() && seg.thread_nodes.size() <= kMaxThreads,
                      "bad trace thread table");
    PutU32(out, static_cast<uint32_t>(seg.thread_nodes.size()));
    for (const NodeId node : seg.thread_nodes) {
      PutU8(out, node);
    }

    std::string payload;
    std::vector<Addr> last_addr(seg.thread_nodes.size(), 0);
    std::vector<Cycles> last_clock(seg.thread_nodes.size(), 0);
    for (const TraceRecord& rec : seg.records) {
      PMEMSIM_CHECK_MSG(rec.thread < seg.thread_nodes.size(), "record names undeclared thread");
      PMEMSIM_CHECK_MSG(rec.op < TraceOp::kOpCount, "record has invalid op");
      PMEMSIM_CHECK_MSG(rec.clock >= last_clock[rec.thread], "per-thread clock went backward");
      PutU8(payload, static_cast<uint8_t>(rec.op));
      PutVarint(payload, rec.thread);
      if (TraceOpHasAddr(rec.op)) {
        PutVarint(payload, Zigzag(static_cast<int64_t>(rec.addr - last_addr[rec.thread])));
        last_addr[rec.thread] = rec.addr;
      }
      if (rec.op == TraceOp::kLoadMulti) {
        PutVarint(payload, rec.multi.size());
        for (const Addr a : rec.multi) {
          PutVarint(payload, Zigzag(static_cast<int64_t>(a - last_addr[rec.thread])));
          last_addr[rec.thread] = a;
        }
      } else if (TraceOpHasAux(rec.op)) {
        PutVarint(payload, rec.aux);
      }
      PutVarint(payload, rec.clock - last_clock[rec.thread]);
      last_clock[rec.thread] = rec.clock;
    }
    PutU64(out, seg.records.size());
    PutU64(out, payload.size());
    out.append(payload);
  }

  PutU64(out, TotalRecords());
  out.append(kEndMagic, sizeof(kEndMagic));
  return out;
}

bool TraceFile::WriteTo(const std::string& path, std::string* error) const {
  const std::string bytes = Serialize();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot open " + path + " for writing";
    }
    return false;
  }
  const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  if (std::fclose(f) != 0 || !ok) {
    if (error != nullptr) {
      *error = "short write to " + path;
    }
    return false;
  }
  return true;
}

bool TraceFile::Parse(const std::string& bytes, TraceFile* out, std::string* error) {
  *out = TraceFile();
  Cursor c(bytes);

  std::string magic;
  if (!c.Bytes(&magic, sizeof(kMagic)) || std::memcmp(magic.data(), kMagic, sizeof(kMagic)) != 0) {
    return Fail(error, 0, "bad magic (not a .pmtrace file)");
  }
  out->header.version = c.U32();
  if (!c.ok()) {
    return Fail(error, c.pos(), "truncated header");
  }
  if (out->header.version != kTraceFormatVersion) {
    return Fail(error, c.pos(), "unsupported format version");
  }
  out->header.fingerprint = c.U64();
  if (!c.String16(&out->header.platform_name)) {
    return Fail(error, c.pos(), "bad platform name");
  }
  const uint8_t gen = c.U8();
  if (!c.ok() || gen > 1) {
    return Fail(error, c.pos(), "bad generation");
  }
  out->header.generation = static_cast<Generation>(gen);
  const uint8_t eadr = c.U8();
  if (!c.ok() || eadr > 1) {
    return Fail(error, c.pos(), "bad eadr flag");
  }
  out->header.eadr = eadr != 0;
  out->header.dimm_count = c.U32();
  if (!c.String16(&out->header.scenario)) {
    return Fail(error, c.pos(), "bad scenario name");
  }
  const uint32_t segment_count = c.U32();
  if (!c.ok() || segment_count > kMaxSegments) {
    return Fail(error, c.pos(), "bad segment count");
  }

  for (uint32_t s = 0; s < segment_count; ++s) {
    TraceSegment seg;
    if (!c.String16(&seg.label)) {
      return Fail(error, c.pos(), "bad segment label");
    }
    const uint16_t meta_count = c.U16();
    if (!c.ok() || meta_count > kMaxMetaEntries) {
      return Fail(error, c.pos(), "bad metadata count");
    }
    for (uint16_t m = 0; m < meta_count; ++m) {
      std::string k, v;
      if (!c.String16(&k) || !c.String16(&v)) {
        return Fail(error, c.pos(), "bad metadata entry");
      }
      seg.meta.emplace_back(std::move(k), std::move(v));
    }
    const uint32_t thread_count = c.U32();
    if (!c.ok() || thread_count == 0 || thread_count > kMaxThreads) {
      return Fail(error, c.pos(), "bad thread count");
    }
    for (uint32_t t = 0; t < thread_count; ++t) {
      seg.thread_nodes.push_back(c.U8());
    }
    const uint64_t record_count = c.U64();
    const uint64_t payload_bytes = c.U64();
    if (!c.ok() || payload_bytes > c.remaining()) {
      return Fail(error, c.pos(), "truncated segment payload");
    }
    // Each record is at least 3 bytes (op, thread, clock delta).
    if (record_count > payload_bytes) {
      return Fail(error, c.pos(), "record count exceeds payload capacity");
    }

    const size_t payload_end = c.pos() + payload_bytes;
    std::vector<Addr> last_addr(thread_count, 0);
    std::vector<Cycles> last_clock(thread_count, 0);
    seg.records.reserve(record_count);
    for (uint64_t r = 0; r < record_count; ++r) {
      TraceRecord rec;
      const uint8_t op = c.U8();
      if (!c.ok() || op >= static_cast<uint8_t>(TraceOp::kOpCount)) {
        return Fail(error, c.pos(), "bad op code");
      }
      rec.op = static_cast<TraceOp>(op);
      const uint64_t tid = c.Varint();
      if (!c.ok() || tid >= thread_count) {
        return Fail(error, c.pos(), "record thread out of range");
      }
      rec.thread = static_cast<uint32_t>(tid);
      if (TraceOpHasAddr(rec.op)) {
        rec.addr = last_addr[tid] + static_cast<uint64_t>(Unzigzag(c.Varint()));
        last_addr[tid] = rec.addr;
      }
      if (rec.op == TraceOp::kLoadMulti) {
        const uint64_t count = c.Varint();
        if (!c.ok() || count > kMaxMultiAddrs) {
          return Fail(error, c.pos(), "bad load_multi count");
        }
        rec.aux = count;
        rec.multi.reserve(count);
        for (uint64_t i = 0; i < count; ++i) {
          const Addr a = last_addr[tid] + static_cast<uint64_t>(Unzigzag(c.Varint()));
          rec.multi.push_back(a);
          last_addr[tid] = a;
        }
      } else if (TraceOpHasAux(rec.op)) {
        rec.aux = c.Varint();
        const bool range = rec.op == TraceOp::kRead || rec.op == TraceOp::kWrite ||
                           rec.op == TraceOp::kNtWrite;
        if (range && rec.aux > kMaxRangeBytes) {
          return Fail(error, c.pos(), "range op length over limit");
        }
      }
      rec.clock = last_clock[tid] + c.Varint();
      last_clock[tid] = rec.clock;
      if (!c.ok()) {
        return Fail(error, c.pos(), "truncated record");
      }
      if (c.pos() > payload_end) {
        return Fail(error, c.pos(), "record overruns segment payload");
      }
      seg.records.push_back(std::move(rec));
    }
    if (c.pos() != payload_end) {
      return Fail(error, c.pos(), "segment payload has trailing bytes");
    }
    out->segments.push_back(std::move(seg));
  }

  const uint64_t total = c.U64();
  std::string end_magic;
  if (!c.Bytes(&end_magic, sizeof(kEndMagic)) ||
      std::memcmp(end_magic.data(), kEndMagic, sizeof(kEndMagic)) != 0) {
    return Fail(error, c.pos(), "missing end-of-trace footer");
  }
  if (total != out->TotalRecords()) {
    return Fail(error, c.pos(), "footer record count does not reconcile");
  }
  if (c.remaining() != 0) {
    return Fail(error, c.pos(), "trailing bytes after footer");
  }
  return true;
}

bool TraceFile::Load(const std::string& path, TraceFile* out, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return false;
  }
  std::string bytes;
  char buf[65536];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, n);
  }
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) {
    if (error != nullptr) {
      *error = "read error on " + path;
    }
    return false;
  }
  return Parse(bytes, out, error);
}

}  // namespace pmemsim
