// Figure 6 (paper §3.4): data loaded from the 3D-Xpoint media and through the
// iMC relative to program-demanded data, as each CPU prefetcher is enabled in
// isolation. Random 256 B access blocks; within a block all four cachelines
// are read sequentially (repeatedly, to train prefetchers), then the block is
// flushed from the CPU caches.
//
// Expected shapes (paper):
//  * no prefetch: both ratios ~1 at every WSS (no on-DIMM prefetcher exists);
//  * with a prefetcher: three regions — ~1 while the WSS fits the read
//    buffer; the PM ratio rises while the iMC ratio stays ~1 while the WSS
//    fits the LLC; both rise beyond the LLC, with the PM ratio far higher
//    (a mispredicted cacheline costs 64 B at the iMC but 256 B at the media).
//
// Output: CSV  gen,prefetcher,wss_kb,pm_ratio,imc_ratio

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/sweep_runner.h"
#include "src/common/random.h"
#include "src/core/platform.h"
#include "src/trace/counters.h"

namespace {

using namespace pmemsim;

struct PrefetcherConfig {
  const char* name;
  bool adjacent;
  bool dcu;
  bool stream;
};

struct Ratios {
  double pm = 0;
  double imc = 0;
};

Ratios MeasureRatios(Generation gen, uint64_t wss, const PrefetcherConfig& pf,
                     uint64_t max_visits, uint32_t repeats) {
  auto system = MakeSystem(gen, /*optane_dimm_count=*/1);
  ThreadContext& ctx = system->CreateThread();
  SetPrefetchers(ctx, pf.adjacent, pf.dcu, pf.stream);

  const PmRegion region = system->AllocatePm(wss, kXPLineSize);
  const uint64_t blocks = wss / kXPLineSize;

  std::vector<uint64_t> order(blocks);
  for (uint64_t i = 0; i < blocks; ++i) {
    order[i] = i;
  }
  Rng rng(0xF16 + wss);

  uint64_t visited = 0;
  auto visit_blocks = [&](uint64_t visits) {
    uint64_t done = 0;
    while (done < visits) {
      rng.Shuffle(order);
      for (const uint64_t b : order) {
        const Addr base = region.base + b * kXPLineSize;
        for (uint32_t r = 0; r < repeats; ++r) {
          for (uint64_t cl = 0; cl < kLinesPerXPLine; ++cl) {
            ctx.LoadLine(base + cl * kCacheLineSize);
          }
        }
        // Flush the block so the next visit must leave the CPU caches.
        for (uint64_t cl = 0; cl < kLinesPerXPLine; ++cl) {
          ctx.Clflushopt(base + cl * kCacheLineSize);
        }
        ctx.Sfence();
        if (++done >= visits) {
          break;
        }
      }
    }
    visited += done;
  };

  const uint64_t warm = std::max<uint64_t>(std::min<uint64_t>(blocks, max_visits), 4096);
  const uint64_t measured = std::max<uint64_t>(std::min<uint64_t>(2 * blocks, max_visits), 8192);
  visit_blocks(warm);
  CounterDelta delta(&system->counters());
  visit_blocks(measured);
  const Counters d = delta.Delta();
  const double demand = static_cast<double>(measured) * kXPLineSize;
  return {static_cast<double>(d.media_read_bytes) / demand,
          static_cast<double>(d.imc_read_bytes) / demand};
}

}  // namespace

int main(int argc, char** argv) {
  pmemsim_bench::Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::printf(
        "usage: fig06_prefetch [--gen=g1|g2|both] [--max_mb=1024] [--max_visits=60000] "
        "[--repeats=4]\n%s",
        pmemsim_bench::kTelemetryFlagsHelp);
    return 0;
  }
  const std::string gen_flag = flags.Get("gen", "both");
  const uint64_t max_mb = flags.GetU64("max_mb", 1024);
  const uint64_t max_visits = flags.GetU64("max_visits", 60000);
  const uint32_t repeats = static_cast<uint32_t>(flags.GetU64("repeats", 4));
  pmemsim_bench::BenchReport report(flags, "fig06_prefetch");
  pmemsim_bench::SweepRunner runner(flags);
  flags.RejectUnknown();

  static const PrefetcherConfig kConfigs[] = {
      {"none", false, false, false},
      {"hw-stream", false, false, true},
      {"adjacent", true, false, false},
      {"dcu", false, true, false},
  };

  pmemsim_bench::PrintHeader("Figure 6", "media & iMC read ratios under CPU prefetchers");
  std::printf("gen,prefetcher,wss_kb,pm_ratio,imc_ratio\n");
  for (Generation gen : {Generation::kG1, Generation::kG2}) {
    if ((gen == Generation::kG1 && gen_flag == "g2") ||
        (gen == Generation::kG2 && gen_flag == "g1")) {
      continue;
    }
    for (const PrefetcherConfig& pf : kConfigs) {
      for (uint64_t kb = 4; kb <= max_mb * 1024; kb *= 4) {
        const char* gen_name = gen == Generation::kG1 ? "G1" : "G2";
        const std::string label =
            std::string(gen_name) + "/" + pf.name + "/" + std::to_string(kb) + "kb";
        runner.Add(label, [=](pmemsim_bench::SweepPoint& point) {
          const Ratios r = MeasureRatios(gen, KiB(kb), pf, max_visits, repeats);
          point.Printf("%s,%s,%llu,%.3f,%.3f\n", gen_name, pf.name,
                       static_cast<unsigned long long>(kb), r.pm, r.imc);
          point.AddRow()
              .Set("gen", gen_name)
              .Set("prefetcher", pf.name)
              .Set("wss_kb", kb)
              .Set("pm_ratio", r.pm)
              .Set("imc_ratio", r.imc);
        });
      }
    }
  }
  return runner.Finish(report);
}
