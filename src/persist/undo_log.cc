#include "src/persist/undo_log.h"

#include <cstring>

#include "src/common/check.h"
#include "src/persist/barrier.h"

namespace pmemsim {

Transaction::Transaction(System* system, PmRegion log_region)
    : system_(system), region_(log_region) {
  PMEMSIM_CHECK(system != nullptr);
  PMEMSIM_CHECK(region_.kind == MemoryKind::kOptane);
  PMEMSIM_CHECK(region_.size >= 4 * kRecordSize);
  PMEMSIM_CHECK(IsCacheLineAligned(region_.base));
}

namespace {

// XOR of the record's first 7 words — the torn-record detector (see header).
uint64_t RecordChecksum(const uint8_t* rec) {
  uint64_t sum = 0;
  for (uint64_t off = 0; off < Transaction::kChecksumOffset; off += 8) {
    uint64_t word = 0;
    std::memcpy(&word, rec + off, sizeof(word));
    sum ^= word;
  }
  return sum;
}

}  // namespace

void Transaction::WriteHead(ThreadContext& ctx, uint64_t state, uint64_t seq) {
  uint8_t head[kRecordSize] = {};
  const uint32_t magic = kHeadMagic;
  std::memcpy(head, &magic, sizeof(magic));
  // State and seq share ONE aligned word so they can never tear apart (a
  // torn active-bit paired with a stale seq would roll back the previous
  // transaction — see the header comment).
  const uint64_t packed = (seq << 1) | (state & 1);
  std::memcpy(head + 8, &packed, sizeof(packed));
  ctx.NtStoreLine(region_.base, head);
  ctx.Sfence();
}

void Transaction::Begin(ThreadContext& ctx) {
  PMEMSIM_CHECK_MSG(!active_, "transactions do not nest");
  ++seq_;
  next_record_ = 1;
  shadows_.clear();
  WriteHead(ctx, kStateActive, seq_);
  active_ = true;
}

void Transaction::AppendSnapshotRecord(ThreadContext& ctx, Addr target,
                                       const uint8_t* old_bytes, uint32_t len) {
  PMEMSIM_CHECK_MSG(next_record_ < capacity_records(), "undo log arena full");
  uint8_t rec[kRecordSize] = {};
  std::memcpy(rec, &target, sizeof(target));
  std::memcpy(rec + 8, &len, sizeof(len));
  const uint32_t magic = kSnapMagic;
  std::memcpy(rec + 12, &magic, sizeof(magic));
  std::memcpy(rec + 16, &seq_, sizeof(seq_));
  std::memcpy(rec + 24, old_bytes, len);
  const uint64_t checksum = RecordChecksum(rec);
  std::memcpy(rec + kChecksumOffset, &checksum, sizeof(checksum));
  ctx.NtStoreLine(RecordAddr(next_record_), rec);
  ++next_record_;

  Shadow s;
  s.target = target;
  s.len = len;
  std::memcpy(s.old_bytes, old_bytes, len);
  shadows_.push_back(s);
}

void Transaction::Snapshot(ThreadContext& ctx, Addr addr, uint32_t len) {
  PMEMSIM_CHECK_MSG(active_, "Snapshot outside a transaction");
  PMEMSIM_CHECK(len > 0);
  uint8_t buf[kMaxPayload];
  while (len > 0) {
    const uint32_t chunk = len < kMaxPayload ? len : kMaxPayload;
    ctx.Read(addr, buf, chunk);  // the old image, timed
    AppendSnapshotRecord(ctx, addr, buf, chunk);
    addr += chunk;
    len -= chunk;
  }
  // The snapshot must be durable before the caller's in-place stores.
  ctx.Sfence();
}

void Transaction::Store64(ThreadContext& ctx, Addr addr, uint64_t value) {
  Snapshot(ctx, addr, sizeof(value));
  ctx.Store64(addr, value);
}

void Transaction::Commit(ThreadContext& ctx) {
  PMEMSIM_CHECK_MSG(active_, "Commit outside a transaction");
  // Persist the new in-place data for every snapshotted range.
  for (const Shadow& s : shadows_) {
    FlushRange(ctx, s.target, s.len);
  }
  ctx.Sfence();
  WriteHead(ctx, kStateIdle, seq_);
  active_ = false;
  shadows_.clear();
  next_record_ = 1;
}

void Transaction::Abort(ThreadContext& ctx) {
  PMEMSIM_CHECK_MSG(active_, "Abort outside a transaction");
  // Restore old images in reverse order (overlapping snapshots restore the
  // oldest state last).
  for (auto it = shadows_.rbegin(); it != shadows_.rend(); ++it) {
    ctx.Write(it->target, it->old_bytes, it->len);
    FlushRange(ctx, it->target, it->len);
  }
  ctx.Sfence();
  WriteHead(ctx, kStateIdle, seq_);
  active_ = false;
  shadows_.clear();
  next_record_ = 1;
}

size_t Transaction::Recover(ThreadContext& ctx) {
  uint8_t head[kRecordSize];
  ctx.Read(region_.base, head, sizeof(head));
  uint32_t magic = 0;
  uint64_t packed = 0;
  std::memcpy(&magic, head, sizeof(magic));
  std::memcpy(&packed, head + 8, sizeof(packed));
  const uint64_t state = packed & 1;
  const uint64_t seq = packed >> 1;

  active_ = false;
  shadows_.clear();
  next_record_ = 1;
  if (magic != kHeadMagic || state != kStateActive) {
    seq_ = magic == kHeadMagic ? seq : 0;
    return 0;  // no transaction was in flight
  }

  // Collect this transaction's snapshot records, then roll back in reverse.
  struct Rec {
    Addr target;
    uint32_t len;
    uint8_t bytes[kMaxPayload];
  };
  std::vector<Rec> records;
  for (uint64_t i = 1; i < capacity_records(); ++i) {
    uint8_t rec[kRecordSize];
    ctx.Read(RecordAddr(i), rec, sizeof(rec));
    uint32_t rec_magic = 0, len = 0;
    uint64_t rec_seq = 0;
    std::memcpy(&rec_magic, rec + 12, sizeof(rec_magic));
    std::memcpy(&len, rec + 8, sizeof(len));
    std::memcpy(&rec_seq, rec + 16, sizeof(rec_seq));
    if (rec_magic != kSnapMagic || rec_seq != seq) {
      break;  // end of this transaction's contiguous records
    }
    if (len == 0 || len > kMaxPayload) {
      break;  // torn record: everything after it is unreliable
    }
    uint64_t stored_sum = 0;
    std::memcpy(&stored_sum, rec + kChecksumOffset, sizeof(stored_sum));
    if (stored_sum != RecordChecksum(rec)) {
      break;  // torn payload (only the interrupted Snapshot call can be torn)
    }
    Rec r;
    std::memcpy(&r.target, rec, sizeof(r.target));
    r.len = len;
    std::memcpy(r.bytes, rec + 24, len);
    records.push_back(r);
  }
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    ctx.Write(it->target, it->bytes, it->len);
    FlushRange(ctx, it->target, it->len);
  }
  ctx.Sfence();
  WriteHead(ctx, kStateIdle, seq);
  seq_ = seq;
  return records.size();
}

}  // namespace pmemsim
