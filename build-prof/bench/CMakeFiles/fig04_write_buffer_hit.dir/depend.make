# Empty dependencies file for fig04_write_buffer_hit.
# This may be replaced when dependencies are built.
