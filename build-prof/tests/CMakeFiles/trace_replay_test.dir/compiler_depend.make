# Empty compiler generated dependencies file for trace_replay_test.
# This may be replaced when dependencies are built.
