#include "src/serve/domain_tier.h"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "src/common/check.h"
#include "src/trace/json.h"

namespace pmemsim {
namespace {

// How far an idle worker advances in eager (zero-lookahead) mode when its
// domain has no pending arrival but peers still hold requests in flight.
// Matches the legacy engine's quantum so idle cadence is comparable.
constexpr Cycles kIdleQuantum = 256;

// Persistent barrier-synchronized pool: N-1 host threads plus the caller
// (worker 0). Run(body) executes body(w) for every w in [0, N) and returns
// once all complete; worker exceptions (including captured CHECK failures)
// are rethrown on the caller. All cross-thread state is published under one
// mutex, so every domain write inside body() happens-before the coordinator's
// post-barrier reads — the property that keeps the engine TSan-clean.
class EpochPool {
 public:
  explicit EpochPool(uint32_t n) : n_(n) {
    threads_.reserve(n_ > 0 ? n_ - 1 : 0);
    for (uint32_t w = 1; w < n_; ++w) {
      threads_.emplace_back([this, w] { WorkerLoop(w); });
    }
  }

  ~EpochPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
      ++generation_;
    }
    cv_start_.notify_all();
    for (std::thread& t : threads_) {
      t.join();
    }
  }

  EpochPool(const EpochPool&) = delete;
  EpochPool& operator=(const EpochPool&) = delete;

  void Run(const std::function<void(uint32_t)>& body) {
    if (n_ <= 1) {
      body(0);  // sequential reference path: no threads, no barrier
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      body_ = &body;
      remaining_ = n_ - 1;
      ++generation_;
    }
    cv_start_.notify_all();
    RunBody(0);
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] { return remaining_ == 0; });
    body_ = nullptr;
    if (error_ != nullptr) {
      std::exception_ptr error = std::exchange(error_, nullptr);
      lock.unlock();
      std::rethrow_exception(error);
    }
  }

 private:
  void WorkerLoop(uint32_t w) {
    // CHECK failures inside a domain must not abort the process from a pool
    // thread: capture them as exceptions and let Run() rethrow on the caller
    // (where the sweep runner's own capture scope can isolate the failure).
    ScopedCheckCapture capture;
    uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_start_.wait(lock, [&] { return generation_ != seen; });
        seen = generation_;
        if (stop_) {
          return;
        }
      }
      RunBody(w);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--remaining_ == 0) {
          cv_done_.notify_one();
        }
      }
    }
  }

  void RunBody(uint32_t w) {
    try {
      (*body_)(w);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (error_ == nullptr) {
        error_ = std::current_exception();
      }
    }
  }

  const uint32_t n_;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(uint32_t)>* body_ = nullptr;
  uint32_t remaining_ = 0;
  uint64_t generation_ = 0;
  bool stop_ = false;
  std::exception_ptr error_ = nullptr;
};

}  // namespace

ServeDomain::ServeDomain(const PlatformConfig& platform, uint32_t dimms, const ServeConfig& cfg,
                         uint32_t index, std::vector<uint64_t> load_keys, uint64_t append_budget)
    : cfg_(cfg),
      index_(index),
      system_(platform, dimms),
      queue_(cfg.queue_depth),
      load_keys_(std::move(load_keys)) {
  PMEMSIM_CHECK(cfg_.workers_per_shard > 0);
  workers_.resize(cfg_.workers_per_shard);
  for (uint32_t i = 0; i < cfg_.workers_per_shard; ++i) {
    workers_[i].ctx = &system_.CreateThread();
  }
  store_ = std::make_unique<ShardStore>(&system_, cfg_.store, load_keys_.size(), append_budget,
                                        *workers_[0].ctx);
  owned_sorted_ = load_keys_;
  std::sort(owned_sorted_.begin(), owned_sorted_.end());
}

void ServeDomain::RunLoad() {
  ThreadContext& loader = *workers_[0].ctx;
  for (const uint64_t key : load_keys_) {
    store_->Insert(loader, key, Mix64(key));
  }
  store_->FlushPreload(loader);  // preload durability point before serving
  load_end_ = loader.clock();
}

void ServeDomain::SetObservability(ServeMetrics* metrics, SpanRecorder* spans) {
  metrics_ = metrics;
  span_recorder_ = spans;
}

void ServeDomain::BeginServe(Cycles t0, TierDispatcher* eager_dispatcher,
                             std::function<bool()> all_quiet) {
  eager_dispatcher_ = eager_dispatcher;
  all_quiet_ = std::move(all_quiet);
  // The serve phase is a fresh accounting window (same contract as the
  // legacy engine): preload state must not leak into the measured stats.
  queue_.BeginPhase();
  if (metrics_ != nullptr) {
    metrics_->ObserveQueueDepth(t0, queue_.size());
  }
  for (Worker& wk : workers_) {
    wk.ctx->AdvanceTo(t0);
    wk.ctx->SetAttribution(&attribution_);
    wk.ctx->TraceMarker(kServePhaseMarker);
  }
  if (eager_dispatcher_ == nullptr) {
    jobs_.clear();
    for (Worker& wk : workers_) {
      jobs_.push_back(SimJob{wk.ctx, [this, &wk] { return WorkerStep(wk); }});
    }
    engine_ = std::make_unique<Scheduler>(&jobs_);
  }
}

void ServeDomain::Accept(const Request& r) { pending_.push(r); }

void ServeDomain::RunEpoch(Cycles epoch_end) {
  epoch_end_ = epoch_end;
  // The domain's private scheduler drives the domain's own mem-sampler: the
  // interval series observes this domain's minimum worker clock, exactly as
  // the global sampler observes the legacy engine's lockstep minimum.
  engine_->RunUntil(epoch_end, metrics_ != nullptr ? metrics_->mem_sampler() : nullptr);
}

void ServeDomain::AppendEagerJobs(std::vector<SimJob>* out) {
  for (Worker& wk : workers_) {
    out->push_back(SimJob{wk.ctx, [this, &wk] { return WorkerStep(wk); }});
  }
}

bool ServeDomain::Drained() const {
  return pending_.empty() && queue_.empty() && in_flight_ == 0;
}

void ServeDomain::FinalizeServe() {
  for (Worker& wk : workers_) {
    wk.ctx->SetAttribution(nullptr);
  }
  stats_.offered = queue_.offered();
  stats_.rejected = queue_.rejected();
}

StepResult ServeDomain::WorkerStep(Worker& wk) {
  ThreadContext& ctx = *wk.ctx;
  if (wk.next >= wk.claimed.size()) {
    wk.claimed.clear();
    wk.next = 0;
    if (eager_dispatcher_ != nullptr) {
      // Zero lookahead: this step begins at the globally minimal clock
      // (lockstep invariant across ALL domains), so pumping the dispatcher
      // here delivers open-loop arrivals in exact admission order.
      eager_dispatcher_->Pump(ctx.clock());
      if (metrics_ != nullptr && metrics_->mem_sampler() != nullptr) {
        // No private scheduler in eager mode; the global lockstep minimum is
        // this step's clock, so it is a valid (non-decreasing) observation.
        metrics_->mem_sampler()->AdvanceTo(ctx.clock());
      }
    }
    CatchUpAdmissions(ctx.clock());
    const size_t n = queue_.ClaimBatch(cfg_.batch, &wk.claimed);
    in_flight_ += n;
    if (n > 0 && metrics_ != nullptr) {
      metrics_->ObserveQueueDepth(ctx.clock(), queue_.size());
    }
    if (n == 0) {
      if (eager_dispatcher_ != nullptr) {
        if (all_quiet_()) {
          return StepResult::kDone;
        }
        std::optional<Cycles> next = NextArrivalTime();
        const std::optional<Cycles> hint = eager_dispatcher_->NextArrivalHint();
        if (hint.has_value() && (!next.has_value() || *hint < *next)) {
          next = hint;
        }
        ctx.AdvanceTo(next.has_value() ? std::max(*next, ctx.clock() + 1)
                                       : ctx.clock() + kIdleQuantum);
        return StepResult::kProgress;
      }
      // Epoch mode: park at the next arrival or the window edge, whichever
      // comes first. Workers never retire — the coordinator decides when the
      // tier is drained. This is what keeps an idle domain from stalling the
      // barrier: its workers reach epoch_end in one cheap step each.
      std::optional<Cycles> next = NextArrivalTime();
      Cycles target = epoch_end_;
      if (next.has_value() && *next < target) {
        target = *next;
      }
      ctx.AdvanceTo(std::max(target, ctx.clock() + 1));
      return StepResult::kProgress;
    }
  }
  const Request r = wk.claimed[wk.next++];
  const Cycles start = ctx.clock();
  if (span_recorder_ != nullptr) {
    // Snapshot the attribution totals around this Execute; the delta is this
    // request's stage decomposition (one Execute is one uninterrupted step).
    for (int s = 0; s < AttributionCollector::kStageCount; ++s) {
      span_stage_base_[s] = attribution_.stage_total(static_cast<AttributionCollector::Stage>(s));
    }
  }
  Execute(ctx, r);
  if (ctx.clock() == start) {
    ctx.AddCompute(1);  // scheduler contract: every step advances the clock
  }
  CompleteRequest(r, start, ctx.clock());
  return StepResult::kProgress;
}

void ServeDomain::CatchUpAdmissions(Cycles now) {
  bool folded = false;
  while (!pending_.empty() && pending_.top().arrival <= now) {
    const Request r = pending_.top();
    pending_.pop();
    folded = true;
    if (queue_.Offer(r, now)) {
      if (metrics_ != nullptr) {
        metrics_->RecordAdmission(now);
      }
      continue;
    }
    if (metrics_ != nullptr) {
      metrics_->RecordShed(now);
    }
    // Shed. Open loop: the arrival is dropped. Closed loop: the client
    // observes the shed at the folding worker's clock `now` — not the arrival
    // cycle — and backs off from there. The observation IS the cross-domain
    // signal, and `now < epoch_end` (workers only step below the window edge)
    // keeps the re-dispatch at now + think + D conservatively beyond the
    // epoch horizon.
    if (cfg_.loop == LoopMode::kClosed) {
      if (eager_dispatcher_ != nullptr) {
        eager_dispatcher_->OnEvent(now, r.client);
      } else {
        events_.push_back(DomainEvent{now, r.client});
      }
    }
  }
  if (folded && metrics_ != nullptr) {
    metrics_->ObserveQueueDepth(now, queue_.size());
  }
}

void ServeDomain::Execute(ThreadContext& ctx, const Request& r) {
  uint64_t value = 0;
  switch (r.op) {
    case ServeOp::kRead:
      if (!store_->Get(ctx, r.key, &value)) {
        ++stats_.not_found;
      }
      break;
    case ServeOp::kUpdate:
      if (!store_->Update(ctx, r.key, Mix64(r.key + r.arrival))) {
        ++stats_.not_found;
      }
      break;
    case ServeOp::kInsert:
      store_->Insert(ctx, r.key, Mix64(r.key));
      break;
    case ServeOp::kScan:
      Scan(ctx, r.key, r.scan_len);
      break;
    case ServeOp::kRmw:
      if (!store_->Get(ctx, r.key, &value)) {
        ++stats_.not_found;
      }
      if (!store_->Update(ctx, r.key, value + 1)) {
        ++stats_.not_found;
      }
      break;
  }
}

void ServeDomain::Scan(ThreadContext& ctx, uint64_t from, uint32_t len) {
  if (store_->ordered()) {
    store_->TreeScan(ctx, from, len);
    return;
  }
  // Hash-shaped stores have no key order; emulate the range as `len` point
  // reads over the keys this domain owns (ascending from `from`, wrapping).
  // The partitioned analogue of the legacy consecutive-key emulation: only
  // owned keys exist locally, so consecutive global ids would mostly miss.
  if (owned_sorted_.empty()) {
    return;
  }
  const size_t start =
      std::lower_bound(owned_sorted_.begin(), owned_sorted_.end(), from) - owned_sorted_.begin();
  uint64_t value = 0;
  for (uint32_t i = 0; i < len; ++i) {
    const uint64_t key = owned_sorted_[(start + i) % owned_sorted_.size()];
    if (!store_->Get(ctx, key, &value)) {
      ++stats_.not_found;
    }
  }
}

void ServeDomain::CompleteRequest(const Request& r, Cycles start, Cycles end) {
  stats_.RecordCompletion(r, start, end);
  PMEMSIM_CHECK(in_flight_ > 0);
  --in_flight_;
  if (metrics_ != nullptr) {
    metrics_->RecordCompletion(end, end - r.arrival);
  }
  if (span_recorder_ != nullptr) {
    Cycles deltas[AttributionCollector::kStageCount];
    for (int s = 0; s < AttributionCollector::kStageCount; ++s) {
      deltas[s] = attribution_.stage_total(static_cast<AttributionCollector::Stage>(s)) -
                  span_stage_base_[s];
    }
    span_recorder_->Record(r.client, static_cast<uint8_t>(r.op), r.arrival, r.admit, start, end,
                           deltas);
  }
  if (cfg_.loop == LoopMode::kClosed) {
    if (eager_dispatcher_ != nullptr) {
      eager_dispatcher_->OnEvent(end, r.client);
    } else {
      events_.push_back(DomainEvent{end, r.client});
    }
  }
}

std::optional<Cycles> ServeDomain::NextArrivalTime() const {
  return pending_.empty() ? std::nullopt : std::optional<Cycles>(pending_.top().arrival);
}

DomainTier::DomainTier(const PlatformConfig& platform, uint32_t dimms_per_domain,
                       const ServeConfig& cfg)
    : platform_(platform), cfg_(cfg), dispatcher_(cfg_) {
  PMEMSIM_CHECK(cfg_.shards > 0 && cfg_.workers_per_shard > 0);
  std::vector<std::vector<uint64_t>> keys = dispatcher_.PartitionLoadKeys();
  const uint64_t append_budget = dispatcher_.budget();
  domains_.reserve(cfg_.shards);
  for (uint32_t s = 0; s < cfg_.shards; ++s) {
    domains_.push_back(std::make_unique<ServeDomain>(platform_, dimms_per_domain, cfg_, s,
                                                     std::move(keys[s]), append_budget));
  }
}

void DomainTier::Run() {
  PMEMSIM_CHECK_MSG(!ran_, "DomainTier::Run is one-shot");
  ran_ = true;
  dispatcher_.SetDeliverFn(
      [this](uint32_t shard, const Request& r) { domains_[shard]->Accept(r); });
  if (cfg_.dispatch_latency == 0) {
    RunEager();
  } else {
    RunEpochLoop();
  }
  for (auto& domain : domains_) {
    domain->FinalizeServe();
  }
  if (timeline_ != nullptr) {
    for (auto& domain : domains_) {
      domain->system().SetExtraGaugeSource({});
      domain->SetObservability(nullptr, nullptr);
    }
    // Every domain finalizes at the same engine end, so the per-shard window
    // lists are congruent whatever each domain's local drain time was.
    timeline_->Finalize(serve_end_);
  }
}

void DomainTier::BeginTimeline() {
  if (timeline_ == nullptr) {
    return;
  }
  timeline_->Begin(serve_start_);
  for (uint32_t d = 0; d < cfg_.shards; ++d) {
    ServeDomain* dom = domains_[d].get();
    ServeMetrics* metrics = timeline_->shard(d);
    metrics->AttachMemSampler(&dom->system().counters(),
                              [dom](Cycles now) { return dom->system().ReadGauges(now); });
    dom->system().SetExtraGaugeSource([dom](Cycles, SampleGauges* g) {
      g->serve_queue_depth += dom->queue().size();
    });
    dom->SetObservability(metrics, timeline_->spans(d));
  }
}

void DomainTier::RunEpochLoop() {
  const Cycles window = cfg_.dispatch_latency;
  const uint32_t threads =
      std::min<uint32_t>(std::max<uint32_t>(cfg_.engine_threads, 1), cfg_.shards);
  EpochPool pool(threads);

  // Load phase: domains are fully independent (each on its own System), so
  // they load concurrently with no epoch discipline at all.
  pool.Run([this, threads](uint32_t w) {
    for (size_t d = w; d < domains_.size(); d += threads) {
      domains_[d]->RunLoad();
    }
  });
  load_end_ = 0;
  for (auto& domain : domains_) {
    load_end_ = std::max(load_end_, domain->load_end());
  }
  serve_start_ = load_end_;

  BeginTimeline();
  for (auto& domain : domains_) {
    domain->BeginServe(serve_start_, nullptr, nullptr);
  }
  dispatcher_.StartServing(serve_start_);

  // Conservative epoch loop (see domain_tier.h). The first window is a warm-up
  // bubble — every first arrival lands at >= t0 + D — which costs one barrier.
  std::vector<DomainEvent> merged;
  Cycles epoch = serve_start_;
  for (;;) {
    const Cycles epoch_end = epoch + window;
    dispatcher_.DeliverUpTo(epoch_end);
    pool.Run([this, threads, epoch_end](uint32_t w) {
      for (size_t d = w; d < domains_.size(); d += threads) {
        domains_[d]->RunEpoch(epoch_end);
      }
    });
    merged.clear();
    for (auto& domain : domains_) {
      std::vector<DomainEvent>& events = domain->events();
      merged.insert(merged.end(), events.begin(), events.end());
      events.clear();
    }
    dispatcher_.ProcessEvents(&merged);
    if (dispatcher_.Exhausted() && AllDrained()) {
      serve_end_ = epoch_end;  // the timeline closes at the final barrier
      return;
    }
    epoch = epoch_end;
  }
}

void DomainTier::RunEager() {
  // Zero lookahead: no window to run domains concurrently in, so one combined
  // lockstep run over every domain's workers — global clock order plays the
  // coordinator and the dispatcher is pumped synchronously at admission time.
  for (auto& domain : domains_) {
    domain->RunLoad();
  }
  load_end_ = 0;
  for (auto& domain : domains_) {
    load_end_ = std::max(load_end_, domain->load_end());
  }
  serve_start_ = load_end_;

  const std::function<bool()> all_quiet = [this] {
    return dispatcher_.Exhausted() && AllDrained();
  };
  BeginTimeline();
  for (auto& domain : domains_) {
    domain->BeginServe(serve_start_, &dispatcher_, all_quiet);
  }
  dispatcher_.StartServing(serve_start_);

  std::vector<SimJob> jobs;
  jobs.reserve(static_cast<size_t>(cfg_.shards) * cfg_.workers_per_shard);
  for (auto& domain : domains_) {
    domain->AppendEagerJobs(&jobs);
  }
  serve_end_ = Scheduler::Run(jobs);
}

bool DomainTier::AllDrained() const {
  for (const auto& domain : domains_) {
    if (!domain->Drained()) {
      return false;
    }
  }
  return true;
}

Cycles DomainTier::end_cycle() const {
  Cycles end = serve_start_;
  for (const auto& domain : domains_) {
    end = std::max(end, domain->stats().last_completion);
  }
  return end;
}

ServiceStats DomainTier::GlobalStats() const {
  ServiceStats global;
  for (const auto& domain : domains_) {
    global.Merge(domain->stats());
  }
  return global;
}

void DomainTier::ToJson(JsonWriter& w) const {
  const double ghz = platform_.cpu_ghz;
  w.BeginObject();
  w.Key("config").BeginObject();
  w.Key("store").Value(StoreName(cfg_.store));
  w.Key("loop").Value(LoopModeName(cfg_.loop));
  w.Key("mix").Value(cfg_.mix_name);
  w.Key("shards").Value(static_cast<uint64_t>(cfg_.shards));
  w.Key("workers_per_shard").Value(static_cast<uint64_t>(cfg_.workers_per_shard));
  w.Key("queue_depth").Value(cfg_.queue_depth);
  w.Key("batch").Value(cfg_.batch);
  w.Key("clients").Value(static_cast<uint64_t>(cfg_.clients));
  w.Key("think_cycles").Value(cfg_.think_cycles);
  w.Key("interarrival_cycles").Value(cfg_.interarrival_cycles);
  w.Key("ops").Value(cfg_.ops);
  w.Key("keys").Value(cfg_.keys);
  w.Key("theta").Value(cfg_.theta);
  w.Key("scan_len").Value(static_cast<uint64_t>(cfg_.scan_len));
  w.Key("seed").Value(cfg_.seed);
  // Engine identity — but deliberately NOT engine_threads: the report must
  // byte-compare across host thread counts (the determinism gate).
  w.Key("engine").Value("partitioned");
  w.Key("dispatch_latency").Value(static_cast<uint64_t>(cfg_.dispatch_latency));
  w.EndObject();
  w.Key("load_cycles").Value(static_cast<uint64_t>(load_end_));
  w.Key("serve_start").Value(static_cast<uint64_t>(serve_start_));
  w.Key("end_cycle").Value(static_cast<uint64_t>(end_cycle()));
  w.Key("global");
  GlobalStats().ToJson(w, ghz, serve_start_);
  w.Key("shards").BeginArray();
  for (const auto& domain : domains_) {
    w.BeginObject();
    w.Key("shard").Value(static_cast<uint64_t>(domain->index()));
    w.Key("queue").BeginObject();
    w.Key("depth").Value(static_cast<uint64_t>(domain->queue().depth()));
    w.Key("max_occupancy").Value(domain->queue().max_occupancy());
    w.EndObject();
    w.Key("stats");
    domain->stats().ToJson(w, ghz, serve_start_);
    w.Key("attribution");
    domain->attribution().ToJson(w);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

std::string DomainTier::ToJson() const {
  JsonWriter w;
  ToJson(w);
  return w.str();
}

}  // namespace pmemsim
