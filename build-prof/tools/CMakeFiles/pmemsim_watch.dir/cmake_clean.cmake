file(REMOVE_RECURSE
  "CMakeFiles/pmemsim_watch.dir/pmemsim_watch.cc.o"
  "CMakeFiles/pmemsim_watch.dir/pmemsim_watch.cc.o.d"
  "pmemsim_watch"
  "pmemsim_watch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemsim_watch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
