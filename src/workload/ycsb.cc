#include "src/workload/ycsb.h"

#include "src/common/check.h"
#include "src/workload/zipf.h"

namespace pmemsim {

std::vector<uint64_t> MakeLoadKeys(uint64_t count, uint64_t seed) {
  std::vector<uint64_t> keys(count);
  for (uint64_t i = 0; i < count; ++i) {
    keys[i] = i + 1;  // keys must be non-zero
  }
  Rng rng(seed);
  rng.Shuffle(keys);
  return keys;
}

std::vector<std::vector<uint64_t>> ShardKeys(const std::vector<uint64_t>& keys, uint32_t shards) {
  PMEMSIM_CHECK(shards > 0);
  std::vector<std::vector<uint64_t>> out(shards);
  const uint64_t per = keys.size() / shards;
  for (uint32_t s = 0; s < shards; ++s) {
    const uint64_t begin = s * per;
    const uint64_t end = s + 1 == shards ? keys.size() : begin + per;
    out[s].assign(keys.begin() + static_cast<ptrdiff_t>(begin),
                  keys.begin() + static_cast<ptrdiff_t>(end));
  }
  return out;
}

std::vector<uint64_t> MakeRequestKeys(const std::vector<uint64_t>& loaded, uint64_t count,
                                      KeyDistribution dist, uint64_t seed) {
  PMEMSIM_CHECK(!loaded.empty());
  std::vector<uint64_t> out;
  out.reserve(count);
  if (dist == KeyDistribution::kUniform) {
    Rng rng(seed);
    for (uint64_t i = 0; i < count; ++i) {
      out.push_back(loaded[rng.NextBelow(loaded.size())]);
    }
  } else {
    ZipfGenerator zipf(loaded.size(), 0.99, seed);
    for (uint64_t i = 0; i < count; ++i) {
      out.push_back(loaded[zipf.Next()]);
    }
  }
  return out;
}

}  // namespace pmemsim
