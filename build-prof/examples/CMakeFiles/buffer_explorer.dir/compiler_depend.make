# Empty compiler generated dependencies file for buffer_explorer.
# This may be replaced when dependencies are built.
