file(REMOVE_RECURSE
  "CMakeFiles/fig03_write_amplification.dir/fig03_write_amplification.cc.o"
  "CMakeFiles/fig03_write_amplification.dir/fig03_write_amplification.cc.o.d"
  "fig03_write_amplification"
  "fig03_write_amplification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_write_amplification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
