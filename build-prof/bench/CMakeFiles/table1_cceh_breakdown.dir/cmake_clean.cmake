file(REMOVE_RECURSE
  "CMakeFiles/table1_cceh_breakdown.dir/table1_cceh_breakdown.cc.o"
  "CMakeFiles/table1_cceh_breakdown.dir/table1_cceh_breakdown.cc.o.d"
  "table1_cceh_breakdown"
  "table1_cceh_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_cceh_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
