// Work-sharded sweep runner for the figure benches.
//
// Every fig*/ablation_*/sec33_* bench is a sweep over independent points
// (one simulated System per point, fixed seeds), so the points can run on
// --jobs=N OS worker threads. The runner keeps the observable outputs
// identical to a serial run:
//
//  * each point's stdout text and report rows are buffered on the worker and
//    emitted in submission order, regardless of completion order — the CSV
//    stream and the --stats_json file are byte-identical at any --jobs;
//  * a point that throws (or fails a PMEMSIM_CHECK — workers run inside a
//    ScopedCheckCapture) is isolated: the sweep continues, the point emits an
//    error row {"point": label, "error": message}, an "error," CSV line, and
//    the run exits nonzero with a failure summary on stderr.
//
// Tracing (--trace_out) uses the process-wide TraceEmitter whose event order
// would depend on worker interleaving, so tracing runs are pinned to one job.
//
// Usage, from a bench main() after parsing flags:
//
//   pmemsim_bench::BenchReport report(flags, "fig04_write_buffer_hit");
//   pmemsim_bench::SweepRunner runner(flags);   // reads --jobs (default 1)
//   flags.RejectUnknown();
//   for (...)
//     runner.Add(label, [=](pmemsim_bench::SweepPoint& point) {
//       const double v = Measure(...);          // builds its own System
//       point.Printf("%s,%.3f\n", label.c_str(), v);
//       point.AddRow().Set("value", v);
//     });
//   return runner.Finish(report);               // from main()

#ifndef BENCH_SWEEP_RUNNER_H_
#define BENCH_SWEEP_RUNNER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace pmemsim_bench {

// Per-point output collector. Methods are called from the worker running the
// point; the runner emits the buffered output in submission order.
class SweepPoint {
 public:
  // Buffers printf-formatted text destined for stdout (the CSV rows).
  void Printf(const char* fmt, ...) __attribute__((format(printf, 2, 3)));

  // Buffers a row destined for the bench's --stats_json report.
  BenchReport::Row& AddRow();

 private:
  friend class SweepRunner;
  std::string text_;
  std::vector<BenchReport::Row> rows_;
};

class SweepRunner {
 public:
  // Reads --jobs=N from `flags` (default 1, clamped to >= 1). Tracing runs
  // (--trace_out, already enabled on the global TraceEmitter by BenchReport)
  // are clamped to one job with a note on stderr.
  explicit SweepRunner(const Flags& flags);

  // Queues one sweep point. `label` names the point in error rows and the
  // failure summary; `fn` runs on a worker thread and must only touch state
  // it creates (each point constructs its own System).
  void Add(std::string label, std::function<void(SweepPoint&)> fn);

  // Runs all queued points across the worker threads; emits text and rows in
  // submission order. Returns the number of failed points.
  int Run(BenchReport& report);

  // Run() + failure summary + report.Finish(). Returns the process exit code:
  // nonzero when any point failed or the report could not be written.
  int Finish(BenchReport& report);

  uint32_t jobs() const { return jobs_; }

 private:
  struct Point {
    std::string label;
    std::function<void(SweepPoint&)> fn;
  };

  uint32_t jobs_ = 1;
  std::vector<Point> points_;
  bool ran_ = false;
};

}  // namespace pmemsim_bench

#endif  // BENCH_SWEEP_RUNNER_H_
