file(REMOVE_RECURSE
  "CMakeFiles/pmdk_style.dir/pmdk_style.cc.o"
  "CMakeFiles/pmdk_style.dir/pmdk_style.cc.o.d"
  "pmdk_style"
  "pmdk_style.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmdk_style.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
