// Lockstep multi-thread driver.
//
// The simulator runs in a single OS thread; simulated concurrency interleaves
// whole operations (e.g. one hash-table insert) across ThreadContexts in
// simulated-clock order: the runnable context with the smallest clock executes
// its next step. Shared resources (media ports, WPQs, the shared L3) observe
// the interleaved request times, which is what produces contention effects.
//
// Contract: every Step() call must either advance its context's clock or
// return kDone. A step that is logically blocked (e.g. a helper thread capped
// at its prefetch depth) should AdvanceTo() just past the clock of whatever it
// waits for and return kProgress.
//
// Run() advances the minimum-clock job in batches: while the top job runs,
// every other job is parked, so the runner-up heap key is constant and is
// computed once per batch rather than once per step (see DESIGN.md §9).
//
// The engine also exists in instantiable form for the partitioned serving
// engine (DESIGN.md §11): a Scheduler object keeps its heap across calls, and
// RunUntil(limit) advances jobs only while the minimum clock is below `limit`
// — one conservative epoch window. Within a window the step order is exactly
// Run()'s (clock, job-index) order, and a job left at clock >= limit resumes
// at the same point in the order next window, so splitting a run into any
// sequence of windows replays the identical interleaving.

#ifndef SRC_CPU_SCHEDULER_H_
#define SRC_CPU_SCHEDULER_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/cpu/thread_context.h"

namespace pmemsim {

class Sampler;

namespace internal {
class JobHeap;
}  // namespace internal

enum class StepResult {
  kProgress,
  kDone,
};

struct SimJob {
  ThreadContext* ctx = nullptr;
  std::function<StepResult()> step;
};

class Scheduler {
 public:
  static constexpr Cycles kNoLimit = ~Cycles{0};

  // Runs all jobs to completion. Returns the max final clock across jobs.
  //
  // When `sampler` is non-null, its AdvanceTo is called with the global
  // minimum job clock before every step — the only monotone notion of "now"
  // under interleaving — so interval samples observe events in simulated-time
  // order. The caller still owns Sampler::Finalize (warm-up phases may run
  // before the sampled one).
  static Cycles Run(std::vector<SimJob>& jobs, Sampler* sampler = nullptr);

  // Instantiable form. `jobs` is borrowed, must outlive the scheduler, and
  // must not grow, shrink, or move while any job is unfinished.
  explicit Scheduler(std::vector<SimJob>* jobs);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Steps jobs in (clock, job-index) order while the minimum job clock is
  // below `limit` and unfinished jobs remain. A step may carry its context
  // past `limit` (steps are whole operations); the job is then parked until a
  // later window covers its clock. A job whose step returns kDone leaves the
  // heap permanently. RunUntil(kNoLimit) behaves exactly like Run().
  void RunUntil(Cycles limit, Sampler* sampler = nullptr);

  // True once every job has returned kDone.
  bool AllDone() const;

  // Smallest clock among unfinished jobs — the next event time — or kNoLimit
  // when AllDone().
  Cycles NextEventTime() const;

 private:
  std::vector<SimJob>* jobs_;
  std::unique_ptr<internal::JobHeap> heap_;
  uint64_t stuck_guard_ = 0;
};

}  // namespace pmemsim

#endif  // SRC_CPU_SCHEDULER_H_
