// Per-shard (and merged global) service statistics for the serving tier.
//
// Three latency views per completed request, all in simulated cycles:
//   queue wait = service start - arrival  (admission + queue + batch delay)
//   service    = completion - service start (the datastore op on the worker)
//   sojourn    = completion - arrival     (what the client experiences)
// The exact totals satisfy sojourn == wait + service per request, so the
// summed identity is gated by tests. Tail percentiles (p50/p99/p999) come
// from Histogram::Quantile, the exact-rank extraction added for this tier.

#ifndef SRC_SERVE_SERVICE_STATS_H_
#define SRC_SERVE_SERVICE_STATS_H_

#include <cstdint>
#include <string>

#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/serve/request.h"

namespace pmemsim {

class JsonWriter;

struct ServiceStats {
  uint64_t completed = 0;
  uint64_t op_counts[kServeOpCount] = {};
  uint64_t not_found = 0;  // point reads that missed (diagnostic; 0 in YCSB)
  uint64_t sojourn_total = 0;
  uint64_t wait_total = 0;
  uint64_t service_total = 0;
  Histogram sojourn;
  Histogram wait;
  Histogram service;
  Cycles last_completion = 0;
  // Admission-side counts, copied out of the shard's RequestQueue at the end
  // of the run (kept here so a merged global view is one struct).
  uint64_t offered = 0;
  uint64_t rejected = 0;

  void RecordCompletion(const Request& r, Cycles start, Cycles end);
  void Merge(const ServiceStats& other);

  // Completed ops per second of simulated time over [serve_start,
  // last_completion], at `cpu_ghz` cycles per nanosecond * ghz.
  double OpsPerSec(double cpu_ghz, Cycles serve_start) const;

  // {"offered":..,"rejected":..,"completed":..,"not_found":..,
  //  "ops":{"read":..,..},"ops_per_sec":..,"last_completion":..,
  //  "sojourn_p50":..,"sojourn_p99":..,"sojourn_p999":..,   (exact-rank)
  //  "latency":{"sojourn":{hist},"queue_wait":{hist},"service":{hist}}}
  void ToJson(JsonWriter& w, double cpu_ghz, Cycles serve_start) const;
  std::string ToJson(double cpu_ghz, Cycles serve_start) const;
};

}  // namespace pmemsim

#endif  // SRC_SERVE_SERVICE_STATS_H_
