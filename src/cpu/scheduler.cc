#include "src/cpu/scheduler.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/trace/sampler.h"

namespace pmemsim {
namespace {

// Index min-heap over job clocks. Ties break toward the smaller job index,
// which reproduces the original linear scan's pick (first minimum wins), so
// multi-thread interleavings are identical to the pre-heap scheduler.
class JobHeap {
 public:
  explicit JobHeap(const std::vector<SimJob>& jobs) : jobs_(jobs) {
    heap_.resize(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
      heap_[i] = i;
    }
    for (size_t i = heap_.size() / 2; i-- > 0;) {
      SiftDown(i);
    }
  }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  size_t top() const { return heap_[0]; }

  // Smallest key among all jobs except the top; the top stays the scheduling
  // pick while its key is <= this. Call only with size() >= 2.
  // In a binary heap the runner-up is one of the root's children.
  std::pair<Cycles, size_t> RunnerUp() const {
    std::pair<Cycles, size_t> best = Key(heap_[1]);
    if (heap_.size() > 2) {
      best = std::min(best, Key(heap_[2]));
    }
    return best;
  }

  void PopTop() {
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      SiftDown(0);
    }
  }

  void SiftDownTop() { SiftDown(0); }

 private:
  std::pair<Cycles, size_t> Key(size_t job) const {
    return {jobs_[job].ctx->clock(), job};
  }

  void SiftDown(size_t pos) {
    const size_t n = heap_.size();
    while (true) {
      const size_t l = 2 * pos + 1;
      const size_t r = 2 * pos + 2;
      size_t smallest = pos;
      if (l < n && Key(heap_[l]) < Key(heap_[smallest])) {
        smallest = l;
      }
      if (r < n && Key(heap_[r]) < Key(heap_[smallest])) {
        smallest = r;
      }
      if (smallest == pos) {
        return;
      }
      std::swap(heap_[pos], heap_[smallest]);
      pos = smallest;
    }
  }

  const std::vector<SimJob>& jobs_;
  std::vector<size_t> heap_;
};

}  // namespace

Cycles Scheduler::Run(std::vector<SimJob>& jobs, Sampler* sampler) {
  if (jobs.empty()) {
    return 0;
  }
  JobHeap heap(jobs);
  uint64_t stuck_guard = 0;

  while (!heap.empty()) {
    const size_t i = heap.top();
    SimJob& job = jobs[i];
    // Batched fast path: keep stepping the minimum-clock job while it remains
    // the minimum, re-checking only against the heap's runner-up (O(1)) and
    // touching the heap itself only when the lead changes hands or the job
    // finishes.
    while (true) {
      const Cycles before = job.ctx->clock();
      // `before` is the global minimum clock (this job is the heap top), the
      // only monotone "now": sample boundaries close before any event that
      // can still be generated at a later cycle.
      if (sampler != nullptr) {
        sampler->AdvanceTo(before);
      }
      const StepResult r = job.step();
      if (r == StepResult::kDone) {
        heap.PopTop();
        stuck_guard = 0;
        break;
      }
      // Livelock guard: steps must advance time.
      if (job.ctx->clock() == before) {
        PMEMSIM_CHECK_MSG(++stuck_guard < 1000000, "scheduler livelock: step did not advance clock");
      } else {
        stuck_guard = 0;
      }
      if (heap.size() == 1) {
        continue;  // sole runnable job: no one to yield to
      }
      if (std::make_pair(job.ctx->clock(), i) < heap.RunnerUp()) {
        continue;  // still the unique minimum
      }
      heap.SiftDownTop();
      break;
    }
  }

  Cycles max_clock = 0;
  for (const SimJob& job : jobs) {
    max_clock = std::max(max_clock, job.ctx->clock());
  }
  return max_clock;
}

}  // namespace pmemsim
