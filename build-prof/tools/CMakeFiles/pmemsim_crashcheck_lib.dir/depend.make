# Empty dependencies file for pmemsim_crashcheck_lib.
# This may be replaced when dependencies are built.
