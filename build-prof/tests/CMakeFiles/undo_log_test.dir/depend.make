# Empty dependencies file for undo_log_test.
# This may be replaced when dependencies are built.
