// Cross-module integration tests: each pins one of the paper's claims as an
// executable invariant on the full System (the quick versions of the bench
// experiments), plus failure-injection recovery of a redo-logged B+-tree.

#include <gtest/gtest.h>

#include <string>

#include "src/core/platform.h"
#include "src/cpu/scheduler.h"
#include "src/datastores/chase_list.h"
#include "src/datastores/fast_fair.h"
#include "src/persist/barrier.h"
#include "src/persist/redo_log.h"
#include "src/prefetch/helper_thread.h"
#include "src/trace/counters.h"
#include "src/trace/registry.h"

namespace pmemsim {
namespace {

// C1 (Fig. 2): strided reads show RA = 4/CpX inside the read buffer, 4 beyond.
TEST(PaperClaims, C1ReadBufferAmplification) {
  for (const auto& [wss, cpx, expected] :
       std::vector<std::tuple<uint64_t, uint32_t, double>>{
           {KiB(8), 4u, 1.0}, {KiB(8), 2u, 2.0}, {KiB(24), 4u, 4.0}}) {
    auto system = MakeG1System(1);
    ThreadContext& ctx = system->CreateThread();
    SetPrefetchers(ctx, false, false, false);
    const PmRegion region = system->AllocatePm(wss, kXPLineSize);
    const uint64_t xplines = wss / kXPLineSize;
    auto pattern = [&](int rounds) {
      for (int p = 0; p < rounds; ++p) {
        for (uint32_t cl = 0; cl < cpx; ++cl) {
          for (uint64_t xp = 0; xp < xplines; ++xp) {
            const Addr a = region.base + xp * kXPLineSize + cl * kCacheLineSize;
            ctx.LoadLine(a);
            ctx.Clflushopt(a);
          }
          ctx.Sfence();
        }
      }
    };
    pattern(3);
    CounterDelta d(&system->counters());
    pattern(6);
    EXPECT_NEAR(d.Delta().ReadAmplification(), expected, 0.05)
        << "wss=" << wss << " cpx=" << cpx;
  }
}

// C3 (Fig. 3): G1 partial writes are absorbed below 12 KB; full writes reach
// the media periodically.
TEST(PaperClaims, C3WriteBufferAbsorption) {
  auto run = [](uint64_t wss, uint32_t lines) {
    auto system = MakeG1System(1);
    ThreadContext& ctx = system->CreateThread();
    SetPrefetchers(ctx, false, false, false);
    const PmRegion region = system->AllocatePm(wss, kXPLineSize);
    auto pass = [&](int rounds) {
      for (int p = 0; p < rounds; ++p) {
        for (uint64_t xp = 0; xp < wss / kXPLineSize; ++xp) {
          for (uint32_t cl = 0; cl < lines; ++cl) {
            ctx.NtStore64(region.base + xp * kXPLineSize + cl * kCacheLineSize, p);
          }
        }
        ctx.Sfence();
      }
    };
    pass(3);
    CounterDelta d(&system->counters());
    pass(6);
    return d.Delta().WriteAmplification();
  };
  EXPECT_EQ(run(KiB(8), 1), 0.0);  // absorbed entirely
  // Full writes reach the media via the periodic write-back; write combining
  // across fast passes keeps WA at or slightly below 1.
  const double full = run(KiB(8), 4);
  EXPECT_GT(full, 0.5);
  EXPECT_LE(full, 1.05);
  EXPECT_GT(run(KiB(24), 1), 1.0);  // beyond the knee
}

// C5 (Fig. 7): RAP latency ordering — G1 mfence >> sfence at distance 0; G2
// clwb is flat; nt-store raps on both.
TEST(PaperClaims, C5ReadAfterPersist) {
  auto rap_cost = [](Generation gen, bool use_mfence, bool nt) {
    auto system = MakeSystem(gen, 1);
    ThreadContext& ctx = system->CreateThread();
    SetPrefetchers(ctx, false, false, false);
    const PmRegion region = system->AllocatePm(KiB(4), kXPLineSize);
    Cycles load_cost = 0;
    for (int i = 0; i < 64; ++i) {
      const Addr a = region.base + (i % 64) * kCacheLineSize;
      if (nt) {
        ctx.NtStore64(a, i);
      } else {
        ctx.Store64(a, i);
        ctx.Clwb(a);
      }
      if (use_mfence) {
        ctx.Mfence();
      } else {
        ctx.Sfence();
      }
      const Cycles t = ctx.clock();
      ctx.Load64(a);
      load_cost = ctx.clock() - t;
    }
    return load_cost;
  };
  EXPECT_GT(rap_cost(Generation::kG1, true, false), 1500u);
  EXPECT_LT(rap_cost(Generation::kG1, false, false), 30u);
  EXPECT_LT(rap_cost(Generation::kG2, true, false), 30u);   // clwb retains
  EXPECT_GT(rap_cost(Generation::kG2, true, true), 1000u);  // nt-store still raps
}

// C6 (Fig. 8): relaxed persistency beats strict at small WSS; both converge
// at large WSS where writes are media-bound; reads dominate beyond the LLC.
TEST(PaperClaims, C6PersistencyModels) {
  auto run = [](uint64_t wss, Persistency persistency) {
    auto system = MakeG1System(1);
    ThreadContext& ctx = system->CreateThread();
    const PmRegion region = system->AllocatePm(wss, kXPLineSize);
    ChaseList list(system.get(), region, false, 5);
    list.TraverseUpdate(ctx, 4000, PersistMode::kClwbSfence, persistency);
    const Cycles t = list.TraverseUpdate(ctx, 6000, PersistMode::kClwbSfence, persistency);
    return static_cast<double>(t) / 6000.0;
  };
  const double strict_small = run(KiB(8), Persistency::kStrict);
  const double relaxed_small = run(KiB(8), Persistency::kRelaxed);
  EXPECT_LT(relaxed_small, 0.7 * strict_small);
  const double strict_large = run(MiB(2), Persistency::kStrict);
  const double relaxed_large = run(MiB(2), Persistency::kRelaxed);
  // Both are media-bound at large WSS: the gap collapses from ~3x to <1.4x.
  EXPECT_GT(relaxed_large / strict_large, 0.7);
  EXPECT_GT(relaxed_large, 5.0 * relaxed_small);
}

// Crash consistency: a redo-logged B+-tree whose insert is cut between commit
// and apply recovers the committed updates.
TEST(FailureInjection, RedoLogRecoversTornInsert) {
  auto system = MakeG1System(1);
  ThreadContext& ctx = system->CreateThread();
  const PmRegion data = system->AllocatePm(KiB(4));
  const PmRegion log_region = system->AllocatePm(KiB(8));

  // Simulated node image: log a batch of entry moves, commit, "crash".
  {
    RedoLog log(system.get(), log_region);
    for (uint64_t i = 0; i < 6; ++i) {
      const uint64_t payload[2] = {100 + i, 200 + i};
      log.LogUpdate(ctx, data.base + i * 16, payload, sizeof(payload));
    }
    log.Commit(ctx);
    // Crash: Apply never runs; the destination is untouched.
  }
  for (uint64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(ctx.Load64(data.base + i * 16), 0u);
  }
  RedoLog recovered(system.get(), log_region);
  EXPECT_EQ(recovered.Recover(ctx), 6u);
  for (uint64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(ctx.Load64(data.base + i * 16), 100 + i);
    EXPECT_EQ(ctx.Load64(data.base + i * 16 + 8), 200 + i);
  }
}

// The helper-thread pair preserves work correctness and the depth contract.
TEST(HelperThread, DepthContractAndCompletion) {
  auto system = MakeG1System(1);
  ThreadContext& worker = system->CreateThread();
  ThreadContext& helper = system->CreateThread();
  const size_t count = 500;
  std::vector<int> done(count, 0);
  size_t max_lead = 0;
  size_t worker_idx = 0;

  SpeculativeHelperPair pair(
      &worker, &helper, count,
      [&](ThreadContext& ctx, size_t i) {
        ctx.AddCompute(100);
        done[i] = 1;
        worker_idx = i;
      },
      [&](ThreadContext& ctx, size_t i) {
        ctx.AddCompute(10);
        if (i > worker_idx) {
          max_lead = std::max(max_lead, i - worker_idx);
        }
      },
      HelperConfig{8, 1.0});
  std::vector<SimJob> jobs;
  pair.AppendJobs(jobs);
  Scheduler::Run(jobs);
  for (size_t i = 0; i < count; ++i) {
    EXPECT_EQ(done[i], 1) << i;
  }
  EXPECT_LE(max_lead, 8u);
}

// NUMA: remote accesses are strictly slower (Fig. 7 c/d vs a/b).
TEST(PaperClaims, RemoteAccessSlower) {
  auto measure = [](NodeId node) {
    auto system = MakeG1System(1);
    ThreadContext& ctx = system->CreateThread(node);
    SetPrefetchers(ctx, false, false, false);
    const PmRegion region = system->AllocatePm(MiB(1));
    Cycles total = 0;
    Rng rng(4);
    for (int i = 0; i < 200; ++i) {
      const Cycles t = ctx.clock();
      ctx.Load64(region.base + rng.NextBelow(MiB(1) / 64) * 64);
      total += ctx.clock() - t;
    }
    return total;
  };
  EXPECT_GT(measure(1), measure(0));
}

// Telemetry: the global counters are an aggregation over per-DIMM and
// per-thread scopes; the scoped views must sum exactly to the global totals
// even under an interleaved multi-DIMM, multi-thread workload.
TEST(Telemetry, ScopedCountersSumToGlobal) {
  auto system = MakeG1System(4);
  ThreadContext& t0 = system->CreateThread();
  ThreadContext& t1 = system->CreateThread();
  SetPrefetchers(t0, false, false, false);
  SetPrefetchers(t1, false, false, false);

  const PmRegion region = system->AllocatePm(MiB(1), kXPLineSize);
  for (uint64_t off = 0; off < KiB(512); off += KiB(1)) {
    t0.NtStore64(region.base + off, off);
    t1.LoadLine(region.base + off);
    t1.Clflushopt(region.base + off);
  }
  t0.Sfence();
  t1.Sfence();

  const Counters& global = system->counters();
  Counters dimm_sum;
  for (uint32_t i = 0; i < 4; ++i) {
    const Counters* scope =
        system->counter_registry().FindScope("optane_dimm" + std::to_string(i));
    ASSERT_NE(scope, nullptr) << "dimm " << i;
    dimm_sum += *scope;
    EXPECT_GT(scope->media_write_bytes + scope->media_read_bytes, 0u)
        << "dimm " << i << " saw no traffic despite interleaving";
  }
  EXPECT_EQ(dimm_sum.media_write_bytes, global.media_write_bytes);
  EXPECT_EQ(dimm_sum.media_read_bytes, global.media_read_bytes);
  EXPECT_EQ(dimm_sum.write_buffer_hits + dimm_sum.write_buffer_misses,
            global.write_buffer_hits + global.write_buffer_misses);

  // The whole registry (iMC + DIMMs + DRAM + threads) reproduces the global
  // struct exactly, field for field.
  EXPECT_EQ(system->counter_registry().Aggregate(), global);
}

// Determinism golden: identical runs must export byte-identical telemetry.
// This is the contract the figure-regression CI gate (and the --jobs=N
// determinism cmp) stands on; a hash-order or uninitialized-state leak in any
// hot-path structure would show up here first.
TEST(Determinism, Fig04TrafficIsByteIdenticalAcrossRuns) {
  auto run_once = [](Generation gen) {
    auto system = MakeSystem(gen, /*optane_dimm_count=*/1);
    ThreadContext& ctx = system->CreateThread();
    SetPrefetchers(ctx, false, false, false);
    const PmRegion region = system->AllocatePm(KiB(24), kXPLineSize);
    const uint64_t xplines = KiB(24) / kXPLineSize;
    Rng rng(0xBEEF);
    for (uint64_t i = 0; i < 20 * xplines; ++i) {
      const uint64_t xp = rng.NextBelow(xplines);
      const uint64_t cl = rng.NextBelow(kLinesPerXPLine);
      ctx.NtStore64(region.base + xp * kXPLineSize + cl * kCacheLineSize, i);
      if (i % 7 == 0) {
        ctx.Sfence();
        (void)ctx.Load64(region.base + xp * kXPLineSize);
      }
    }
    ctx.Sfence();
    struct Out {
      std::string json;
      Cycles clock;
    };
    return Out{system->counter_registry().ToJson(), ctx.clock()};
  };
  for (const Generation gen : {Generation::kG1, Generation::kG2}) {
    const auto a = run_once(gen);
    const auto b = run_once(gen);
    ASSERT_FALSE(a.json.empty());
    EXPECT_EQ(a.json, b.json) << "gen=" << (gen == Generation::kG1 ? "G1" : "G2");
    EXPECT_EQ(a.clock, b.clock);
  }
}

}  // namespace
}  // namespace pmemsim
