#include "src/common/backing_store.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/imc/memory_controller.h"

namespace pmemsim {

static_assert(BackingStore::kDramRadixBase == kDramAddressBase,
              "backing-store region split must match the address map");

BackingStore::Page* BackingStore::Radix::Find(uint64_t pageno) const {
  const uint64_t chunk = pageno >> kLeafBits;
  if (chunk >= root_.size() || !root_[chunk]) {
    return nullptr;
  }
  return root_[chunk]->pages[pageno & (kLeafSize - 1)].get();
}

BackingStore::Page& BackingStore::Radix::Ensure(uint64_t pageno, size_t* allocated) {
  const uint64_t chunk = pageno >> kLeafBits;
  if (chunk >= root_.size()) {
    root_.resize(chunk + 1);
  }
  if (!root_[chunk]) {
    root_[chunk] = std::make_unique<Leaf>();
  }
  std::unique_ptr<Page>& slot = root_[chunk]->pages[pageno & (kLeafSize - 1)];
  if (!slot) {
    slot = std::make_unique<Page>();
    slot->fill(0);
    ++*allocated;
  }
  return *slot;
}

void BackingStore::Radix::Drop(uint64_t pageno, size_t* allocated) {
  const uint64_t chunk = pageno >> kLeafBits;
  if (chunk >= root_.size() || !root_[chunk]) {
    return;
  }
  std::unique_ptr<Page>& slot = root_[chunk]->pages[pageno & (kLeafSize - 1)];
  if (slot) {
    slot.reset();
    --*allocated;
  }
}

const BackingStore::Page* BackingStore::FindPage(Addr addr) const {
  const Addr base = PageBase(addr);
  if (base == cached_base_) {
    return cached_page_;
  }
  Page* page = RadixFor(addr).Find(PageNo(addr));
  if (page != nullptr) {
    cached_base_ = base;
    cached_page_ = page;
  }
  return page;
}

BackingStore::Page& BackingStore::EnsurePage(Addr addr) {
  const Addr base = PageBase(addr);
  if (base == cached_base_) {
    return *cached_page_;
  }
  Page& page = RadixFor(addr).Ensure(PageNo(addr), &allocated_);
  cached_base_ = base;
  cached_page_ = &page;
  return page;
}

void BackingStore::DropPage(Addr page_base) {
  if (page_base == cached_base_) {
    cached_base_ = kNoPage;
    cached_page_ = nullptr;
  }
  RadixFor(page_base).Drop(PageNo(page_base), &allocated_);
}

void BackingStore::Read(Addr addr, void* out, size_t len) const {
  uint8_t* dst = static_cast<uint8_t*>(out);
  while (len > 0) {
    const uint64_t in_page = addr - PageBase(addr);
    const size_t chunk = static_cast<size_t>(std::min<uint64_t>(len, kPageSize - in_page));
    if (const Page* page = FindPage(addr)) {
      std::memcpy(dst, page->data() + in_page, chunk);
    } else {
      std::memset(dst, 0, chunk);
    }
    dst += chunk;
    addr += chunk;
    len -= chunk;
  }
}

void BackingStore::Write(Addr addr, const void* data, size_t len) {
  const uint8_t* src = static_cast<const uint8_t*>(data);
  while (len > 0) {
    const uint64_t in_page = addr - PageBase(addr);
    const size_t chunk = static_cast<size_t>(std::min<uint64_t>(len, kPageSize - in_page));
    std::memcpy(EnsurePage(addr).data() + in_page, src, chunk);
    src += chunk;
    addr += chunk;
    len -= chunk;
  }
}

void BackingStore::PrefetchRead(Addr addr) const {
  const Addr base = PageBase(addr);
  const Page* page = base == cached_base_ ? cached_page_ : RadixFor(addr).Find(PageNo(addr));
  if (page != nullptr) {
    __builtin_prefetch(page->data() + (addr - base));
  }
}

uint64_t BackingStore::ReadU64(Addr addr) const {
  // Warm-page fast path: a compare and two array indexes (engine hot path —
  // every simulated load lands here for its data).
  const uint64_t in_page = addr & (kPageSize - 1);
  if (addr - in_page == cached_base_ && in_page <= kPageSize - sizeof(uint64_t)) {
    uint64_t v;
    std::memcpy(&v, cached_page_->data() + in_page, sizeof(v));
    return v;
  }
  uint64_t v = 0;
  Read(addr, &v, sizeof(v));
  return v;
}

void BackingStore::WriteU64(Addr addr, uint64_t value) {
  const uint64_t in_page = addr & (kPageSize - 1);
  if (addr - in_page == cached_base_ && in_page <= kPageSize - sizeof(uint64_t)) {
    std::memcpy(cached_page_->data() + in_page, &value, sizeof(value));
    return;
  }
  Write(addr, &value, sizeof(value));
}

void BackingStore::Zero(Addr addr, uint64_t len) {
  while (len > 0) {
    const uint64_t in_page = addr - PageBase(addr);
    const uint64_t chunk = std::min<uint64_t>(len, kPageSize - in_page);
    if (in_page == 0 && chunk == kPageSize) {
      DropPage(addr);  // whole page: drop it; reads return zeros
    } else if (const Page* page = FindPage(addr)) {
      std::memset(const_cast<Page*>(page)->data() + in_page, 0, static_cast<size_t>(chunk));
    }
    addr += chunk;
    len -= chunk;
  }
}

}  // namespace pmemsim
