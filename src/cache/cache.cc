#include "src/cache/cache.h"

#include <algorithm>
#include <bit>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "src/common/check.h"

namespace pmemsim {

namespace {

// Ask the kernel to back a large long-lived array with huge pages. The block
// array of a realistically sized L3 is tens of megabytes probed at random
// set indices: under 4 KB pages every probe is also a dTLB miss, and x86
// drops software prefetches whose translation misses — which defeats the
// PrefetchSet overlap scheme entirely. 2 MB pages make the whole array a
// handful of dTLB entries. Purely a host-side hint; harmless where
// unsupported.
void AdviseHugePages(void* p, size_t bytes) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  constexpr uintptr_t kHuge = 2u << 20;
  const uintptr_t start = (reinterpret_cast<uintptr_t>(p) + kHuge - 1) & ~(kHuge - 1);
  const uintptr_t end = (reinterpret_cast<uintptr_t>(p) + bytes) & ~(kHuge - 1);
  if (end > start) {
    (void)madvise(reinterpret_cast<void*>(start), end - start, MADV_HUGEPAGE);
  }
#else
  (void)p;
  (void)bytes;
#endif
}

}  // namespace

SetAssocCache::SetAssocCache(const CacheLevelConfig& config) : config_(config) {
  PMEMSIM_CHECK(config.ways > 0);
  PMEMSIM_CHECK(config.ways <= 32);  // valid/ready/pending masks: one bit per way
  PMEMSIM_CHECK(config.size_bytes >= kCacheLineSize * config.ways);
  sets_ = static_cast<size_t>(config.size_bytes / (kCacheLineSize * config.ways));
  PMEMSIM_CHECK(sets_ > 0);
  set_mask_ = (sets_ & (sets_ - 1)) == 0 ? sets_ - 1 : 0;
  stride_ = (4 * config.ways + 7) & ~size_t{7};  // whole 64 B lines per set
  ways_mask_ = config.ways == 32 ? ~0u : (1u << config.ways) - 1u;
  block_words_ = sets_ * stride_;
  blocks_.reset(static_cast<uint64_t*>(
      ::operator new[](block_words_ * sizeof(uint64_t), std::align_val_t{64})));
  AdviseHugePages(blocks_.get(), block_words_ * sizeof(uint64_t));
  std::fill_n(blocks_.get(), block_words_, 0);
  valid_mask_.assign(sets_, 0);
  ready_mask_.assign(sets_, 0);
  pending_mask_.assign(sets_, 0);
}

size_t SetAssocCache::FindWay(Addr line_addr, Cycles now, size_t* set_out) {
  const Addr line = CacheLineBase(line_addr);
  const size_t set = SetIndex(line);
  *set_out = set;
  const size_t base = set * stride_;
  const uint32_t pending = pending_mask_[set];
  for (uint32_t m = valid_mask_[set]; m != 0; m &= m - 1) {
    const uint32_t i = static_cast<uint32_t>(std::countr_zero(m));
    if (TagMatches(Tag(base + i), line)) {
      if ((pending & (1u << i)) != 0 && now >= PendingAt(base + i)) {
        ClearValid(set, base + i);  // the scheduled invalidation has taken effect
        return kNone;
      }
      return base + i;
    }
  }
  return kNone;
}

size_t SetAssocCache::FindWayConst(Addr line_addr, Cycles now) const {
  const Addr line = CacheLineBase(line_addr);
  const size_t set = SetIndex(line);
  const size_t base = set * stride_;
  const uint32_t pending = pending_mask_[set];
  for (uint32_t m = valid_mask_[set]; m != 0; m &= m - 1) {
    const uint32_t i = static_cast<uint32_t>(std::countr_zero(m));
    if (TagMatches(Tag(base + i), line)) {
      if ((pending & (1u << i)) != 0 && now >= PendingAt(base + i)) {
        return kNone;
      }
      return base + i;
    }
  }
  return kNone;
}

bool SetAssocCache::Access(Addr line_addr, Cycles now, bool mark_dirty, bool* was_prefetched,
                           Cycles* available_at) {
  size_t set;
  const size_t w = FindWay(line_addr, now, &set);
  if (w == kNone) {
    if (was_prefetched != nullptr) {
      *was_prefetched = false;
    }
    return false;
  }
  const uint32_t bit = 1u << (w - set * stride_);
  Lru(w) = ++tick_;
  if (mark_dirty) {
    Tag(w) |= kDirty;
    // A new store supersedes any scheduled clwb invalidation.
    pending_mask_[set] &= ~bit;
  }
  if (was_prefetched != nullptr) {
    *was_prefetched = (Tag(w) & kPrefetched) != 0;
  }
  if (available_at != nullptr) {
    *available_at = (ready_mask_[set] & bit) != 0 && ReadyAt(w) > now ? ReadyAt(w) : now;
  }
  Tag(w) &= ~kPrefetched;
  ready_mask_[set] &= ~bit;  // data is (or becomes) demand-visible now
  return true;
}

bool SetAssocCache::Probe(Addr line_addr, Cycles now) const {
  return FindWayConst(line_addr, now) != kNone;
}

EvictedLine SetAssocCache::Insert(Addr line_addr, Cycles now, bool dirty, bool prefetched,
                                  Cycles ready_at) {
  const Addr line = CacheLineBase(line_addr);
  const size_t set = SetIndex(line);
  const size_t base = set * stride_;

  // Already present: refresh in place.
  for (uint32_t m = valid_mask_[set]; m != 0; m &= m - 1) {
    const uint32_t i = static_cast<uint32_t>(std::countr_zero(m));
    Addr& t = Tag(base + i);
    if (TagMatches(t, line)) {
      Lru(base + i) = ++tick_;
      if (dirty) {
        t |= kDirty;
      }
      if (!prefetched) {
        t &= ~kPrefetched;
      }
      pending_mask_[set] &= ~(1u << i);
      return {};
    }
  }

  // Pick the first invalid-or-expired way in way order (expired pending
  // invalidations count as invalid and are dropped, not evicted), else the
  // LRU way.
  uint32_t free = ~valid_mask_[set] & ways_mask_;
  for (uint32_t m = pending_mask_[set] & valid_mask_[set]; m != 0; m &= m - 1) {
    const uint32_t i = static_cast<uint32_t>(std::countr_zero(m));
    if (now >= PendingAt(base + i)) {
      free |= 1u << i;
    }
  }
  size_t victim;
  if (free != 0) {
    victim = base + static_cast<uint32_t>(std::countr_zero(free));
    ClearValid(set, victim);
  } else {
    victim = base;
    for (uint32_t i = 1; i < config_.ways; ++i) {
      if (Lru(base + i) < Lru(victim)) {
        victim = base + i;
      }
    }
  }

  EvictedLine evicted;
  if ((Tag(victim) & kValid) != 0) {
    evicted = {Tag(victim) & kTagMask, true, (Tag(victim) & kDirty) != 0};
  }
  const uint32_t bit = 1u << (victim - base);
  Tag(victim) = line | kValid | (dirty ? kDirty : 0) | (prefetched ? kPrefetched : 0);
  valid_mask_[set] |= bit;
  pending_mask_[set] &= ~bit;
  if (ready_at != 0) {
    ReadyAt(victim) = ready_at;
    ready_mask_[set] |= bit;
  } else {
    ready_mask_[set] &= ~bit;
  }
  Lru(victim) = ++tick_;
  return evicted;
}

SetAssocCache::InvalidateResult SetAssocCache::Invalidate(Addr line_addr) {
  // Invalidation is unconditional: even lines with scheduled (not yet due)
  // invalidations are found by the valid-way scan.
  const Addr line = CacheLineBase(line_addr);
  const size_t set = SetIndex(line);
  const size_t base = set * stride_;
  for (uint32_t m = valid_mask_[set]; m != 0; m &= m - 1) {
    const uint32_t i = static_cast<uint32_t>(std::countr_zero(m));
    Addr& t = Tag(base + i);
    if (TagMatches(t, line)) {
      InvalidateResult r{true, (t & kDirty) != 0};
      t &= ~kDirty;
      ClearValid(set, base + i);
      ClearPending(set, base + i);
      return r;
    }
  }
  return {};
}

SetAssocCache::InvalidateResult SetAssocCache::WriteBack(Addr line_addr, Cycles invalidate_at,
                                                         bool retain) {
  const Addr line = CacheLineBase(line_addr);
  const size_t set = SetIndex(line);
  const size_t base = set * stride_;
  for (uint32_t m = valid_mask_[set]; m != 0; m &= m - 1) {
    const uint32_t i = static_cast<uint32_t>(std::countr_zero(m));
    Addr& t = Tag(base + i);
    if (TagMatches(t, line)) {
      InvalidateResult r{true, (t & kDirty) != 0};
      t &= ~kDirty;
      if (!retain) {
        if (invalidate_at != 0) {
          PendingAt(base + i) = invalidate_at;
          pending_mask_[set] |= 1u << i;
        } else {
          pending_mask_[set] &= ~(1u << i);
        }
      }
      return r;
    }
  }
  return {};
}

bool SetAssocCache::ConsumePrefetchedFlag(Addr line_addr, Cycles now) {
  size_t set;
  const size_t w = FindWay(line_addr, now, &set);
  if (w == kNone || (Tag(w) & kPrefetched) == 0) {
    return false;
  }
  Tag(w) &= ~kPrefetched;
  return true;
}

void SetAssocCache::ApplyPendingInvalidate(Addr line_addr) {
  const Addr line = CacheLineBase(line_addr);
  const size_t set = SetIndex(line);
  const size_t base = set * stride_;
  for (uint32_t m = valid_mask_[set] & pending_mask_[set]; m != 0; m &= m - 1) {
    const uint32_t i = static_cast<uint32_t>(std::countr_zero(m));
    Addr& t = Tag(base + i);
    if (TagMatches(t, line)) {
      t &= ~kDirty;
      ClearValid(set, base + i);
      ClearPending(set, base + i);
      return;
    }
  }
}

void SetAssocCache::Clear() {
  std::fill_n(blocks_.get(), block_words_, 0);
  valid_mask_.assign(valid_mask_.size(), 0);
  ready_mask_.assign(ready_mask_.size(), 0);
  pending_mask_.assign(pending_mask_.size(), 0);
  // tick_ deliberately not reset: LRU order is relative, and Clear() between
  // benchmark configurations must not make two runs' tick streams collide.
}

}  // namespace pmemsim
