// Per-thread cache hierarchy: private L1d + L2 over a shared L3, with the
// flush instruction semantics that drive the paper's G1/G2 differences and
// the prefetch engine attached to the demand stream.

#ifndef SRC_CACHE_HIERARCHY_H_
#define SRC_CACHE_HIERARCHY_H_

#include "src/cache/cache.h"
#include "src/cache/prefetcher.h"
#include "src/common/config.h"
#include "src/common/types.h"
#include "src/imc/memory_controller.h"
#include "src/trace/counters.h"

namespace pmemsim {

struct HierAccessResult {
  Cycles complete_at = 0;
  uint8_t hit_level = 0;   // 1..3 = cache level, 0 = memory
  Cycles stalled_for = 0;  // read-after-persist component
  // Memory-side latency attribution; populated only on full misses
  // (hit_level == 0), where the fields sum to the memory access span.
  MemStageBreakdown mem;
};

struct FlushResult {
  bool wrote = false;      // a write-back entered the WPQ
  Cycles accepted_at = 0;  // persist point, if wrote
  Cycles cost = 0;         // cycles charged to the issuing thread
};

class CacheHierarchy : public PrefetchSink {
 public:
  CacheHierarchy(const CacheConfig& config, SetAssocCache* shared_l3, MemoryController* mc,
                 Counters* counters, NodeId node, uint64_t rng_seed = 0xFEEDF00D);

  // Demand cacheline load/store (store = RFO + dirty mark, write-allocate).
  // `train` = false suppresses prefetcher training (AVX streaming path).
  HierAccessResult Load(Addr addr, Cycles now, bool ordered, bool train = true);
  HierAccessResult Store(Addr addr, Cycles now);

  // clwb: writes back a dirty copy; G1 schedules invalidation after the
  // dispatch window, G2 retains the line clean.
  FlushResult Clwb(Addr addr, Cycles now);
  // clflushopt: writes back a dirty copy and invalidates (same lazy window).
  FlushResult Clflushopt(Addr addr, Cycles now);

  // Removes the line everywhere immediately (nt-store snoop-invalidate).
  void InvalidateAll(Addr addr);

  // Applies any scheduled invalidation for the line (mfence ordering).
  void ForcePendingInvalidate(Addr addr);

  bool ProbeAny(Addr addr, Cycles now) const;

  // Host-side hint that `addr` is about to be accessed: starts fetching the
  // L2/L3 set blocks and the target DIMM's translation state. No simulated
  // effect — callers that know their next address (trace replayers, benchmark
  // loops) issue this one operation ahead so the host DRAM fetches overlap
  // the current operation's simulation work.
  void HostPrefetchHint(Addr addr) const {
    const Addr line = CacheLineBase(addr);
    l2_.PrefetchSet(line);
    l3_->PrefetchSet(line);
    mc_->PrefetchRead(line);
  }

  // PrefetchSink: fills a line into L2 (+L3), or L1 for the DCU streamer.
  // Never charged to the thread clock.
  void PrefetchFill(Addr line_addr, Cycles now, bool into_l1) override;

  PrefetchEngine& prefetch_engine() { return engine_; }
  SetAssocCache& l1() { return l1_; }
  SetAssocCache& l2() { return l2_; }
  SetAssocCache& shared_l3() { return *l3_; }

  // Drops private-cache state (benchmark warm-boundary helper).
  void ClearPrivate();

 private:
  HierAccessResult AccessInternal(Addr addr, Cycles now, bool is_store, bool ordered, bool train);
  // Inserts into a level, cascading dirty evictions downward.
  void FillInto(SetAssocCache& level, int level_idx, Addr line, Cycles now, bool dirty,
                bool prefetched, Cycles ready_at = 0);

  CacheConfig config_;
  SetAssocCache l1_;
  SetAssocCache l2_;
  SetAssocCache* l3_;
  MemoryController* mc_;
  Counters* counters_;
  NodeId node_;
  PrefetchEngine engine_;
  bool in_prefetch_fill_ = false;  // prefetch fills must not re-trigger training
};

}  // namespace pmemsim

#endif  // SRC_CACHE_HIERARCHY_H_
