// Partitioned serving engine (DomainTier) tests: the determinism contract
// (byte-identical reports at any --engine_threads), the zero-lookahead eager
// fallback, epoch-barrier edge cases (idle domains, tiny budgets), and the
// admission accounting identities.

#include <gtest/gtest.h>

#include <string>

#include "src/common/config.h"
#include "src/serve/domain_tier.h"
#include "src/trace/serve_metrics.h"
#include "src/workload/ycsb.h"

namespace pmemsim {
namespace {

ServeConfig SmallConfig(LoopMode loop) {
  ServeConfig cfg;
  cfg.loop = loop;
  cfg.shards = 3;
  cfg.workers_per_shard = 2;
  cfg.keys = 300;   // per shard
  cfg.ops = 300;    // per shard
  cfg.clients = 4;  // per shard (closed loop)
  cfg.queue_depth = 16;
  cfg.batch = 4;
  cfg.mix_name = "b";
  cfg.mix = *MixByName("b");
  cfg.seed = 7;
  return cfg;
}

std::string RunToJson(const ServeConfig& cfg) {
  DomainTier tier(G1Platform(), /*dimms_per_domain=*/1, cfg);
  tier.Run();
  return tier.ToJson();
}

void ExpectAccountingIdentities(const DomainTier& tier) {
  const ServiceStats global = tier.GlobalStats();
  EXPECT_EQ(global.offered, global.completed + global.rejected);
  uint64_t offered = 0, completed = 0, rejected = 0;
  for (const auto& domain : tier.domains()) {
    const ServiceStats& s = domain->stats();
    EXPECT_EQ(s.offered, s.completed + s.rejected) << "shard " << domain->index();
    offered += s.offered;
    completed += s.completed;
    rejected += s.rejected;
  }
  EXPECT_EQ(offered, global.offered);
  EXPECT_EQ(completed, global.completed);
  EXPECT_EQ(rejected, global.rejected);
}

TEST(DomainTierTest, ByteIdenticalReportAcrossEngineThreads) {
  // THE determinism contract: the full tier report (every counter, histogram
  // bucket, and tail percentile) must not depend on how many host threads
  // advanced the domains.
  for (const LoopMode loop : {LoopMode::kClosed, LoopMode::kOpen}) {
    ServeConfig cfg = SmallConfig(loop);
    cfg.engine_threads = 1;
    const std::string baseline = RunToJson(cfg);
    EXPECT_FALSE(baseline.empty());
    for (const uint32_t threads : {2u, 4u}) {
      cfg.engine_threads = threads;
      EXPECT_EQ(RunToJson(cfg), baseline)
          << LoopModeName(loop) << " diverges at engine_threads=" << threads;
    }
  }
}

TEST(DomainTierTest, ClosedLoopCompletesTheOfferedBudget) {
  ServeConfig cfg = SmallConfig(LoopMode::kClosed);
  cfg.engine_threads = 2;
  DomainTier tier(G1Platform(), 1, cfg);
  tier.Run();
  const ServiceStats global = tier.GlobalStats();
  // Closed loop: every one of the ops*shards attempts is offered exactly once
  // (shed attempts retry as NEW offered ops, so offered can only grow if the
  // queue sheds; with depth 16 and 4 clients it never does here).
  EXPECT_EQ(global.offered, uint64_t{cfg.ops} * cfg.shards);
  EXPECT_EQ(global.completed + global.rejected, global.offered);
  ExpectAccountingIdentities(tier);
  EXPECT_GT(tier.end_cycle(), tier.serve_start());
}

TEST(DomainTierTest, OpenLoopIssuesExactlyTheGlobalBudget) {
  ServeConfig cfg = SmallConfig(LoopMode::kOpen);
  cfg.engine_threads = 4;
  DomainTier tier(G1Platform(), 1, cfg);
  tier.Run();
  // Open loop: the dispatcher generates exactly ops*shards arrivals, each
  // delivered (and therefore offered) exactly once somewhere in the tier.
  EXPECT_EQ(tier.GlobalStats().offered, uint64_t{cfg.ops} * cfg.shards);
  ExpectAccountingIdentities(tier);
}

TEST(DomainTierTest, ZeroLookaheadFallsBackToEagerAndCompletes) {
  // dispatch_latency == 0 removes the conservative window; the engine must
  // fall back to the combined sequential run and still satisfy every
  // accounting identity, in both loop modes.
  for (const LoopMode loop : {LoopMode::kClosed, LoopMode::kOpen}) {
    ServeConfig cfg = SmallConfig(loop);
    cfg.dispatch_latency = 0;
    cfg.engine_threads = 4;  // ignored in eager mode
    DomainTier tier(G1Platform(), 1, cfg);
    tier.Run();
    EXPECT_EQ(tier.GlobalStats().offered, uint64_t{cfg.ops} * cfg.shards)
        << LoopModeName(loop);
    ExpectAccountingIdentities(tier);
  }
}

TEST(DomainTierTest, EagerAndEpochModelsAgreeOnOfferedBudget) {
  // Different dispatch latencies are different simulated models (latencies
  // shift arrival times), but the conservation law — every issued request is
  // offered exactly once — holds at any window width, including widths far
  // smaller and far larger than the typical inter-arrival gap.
  for (const Cycles latency : {Cycles{1}, Cycles{512}, Cycles{65536}}) {
    ServeConfig cfg = SmallConfig(LoopMode::kOpen);
    cfg.dispatch_latency = latency;
    cfg.engine_threads = 2;
    DomainTier tier(G1Platform(), 1, cfg);
    tier.Run();
    EXPECT_EQ(tier.GlobalStats().offered, uint64_t{cfg.ops} * cfg.shards)
        << "latency=" << latency;
    ExpectAccountingIdentities(tier);
  }
}

TEST(DomainTierTest, IdleDomainsDoNotStallTheEpochBarrier) {
  // A tiny global budget leaves most domains with zero traffic for most (or
  // all) epochs. The run must terminate promptly — idle domains park at the
  // window edge in one step each — and the report must stay thread-count
  // independent even when only one domain ever works.
  ServeConfig cfg = SmallConfig(LoopMode::kOpen);
  cfg.ops = 2;   // per shard: 6 arrivals across 3 domains — some get none
  cfg.keys = 50;
  cfg.interarrival_cycles = 200000;  // sparse: many empty epochs in between
  cfg.engine_threads = 1;
  const std::string baseline = RunToJson(cfg);
  cfg.engine_threads = 4;
  EXPECT_EQ(RunToJson(cfg), baseline);

  DomainTier tier(G1Platform(), 1, cfg);
  tier.Run();
  EXPECT_EQ(tier.GlobalStats().offered, uint64_t{cfg.ops} * cfg.shards);
  EXPECT_EQ(tier.GlobalStats().rejected, 0u);

  // Closed-loop variant: fewer clients than shards, so at least one domain
  // starts (and may stay) requestless; its workers must still reach every
  // barrier.
  ServeConfig closed = SmallConfig(LoopMode::kClosed);
  closed.clients = 1;  // per-shard population 1 -> 3 clients over 3 domains
  closed.ops = 5;
  closed.keys = 50;
  closed.engine_threads = 1;
  const std::string closed_baseline = RunToJson(closed);
  closed.engine_threads = 4;
  EXPECT_EQ(RunToJson(closed), closed_baseline);
}

TEST(DomainTierTest, ShedFeedbackKeepsClosedLoopLiveUnderTinyQueues) {
  // Depth-1 queues with a large client population force sheds; shed clients
  // must re-issue (through the barrier event path) until the budget drains,
  // and the identity offered == completed + rejected still holds globally.
  ServeConfig cfg = SmallConfig(LoopMode::kClosed);
  cfg.queue_depth = 1;
  cfg.batch = 1;
  cfg.clients = 8;
  cfg.think_cycles = 100;  // hammer the queue
  cfg.engine_threads = 2;
  DomainTier tier(G1Platform(), 1, cfg);
  tier.Run();
  const ServiceStats global = tier.GlobalStats();
  EXPECT_GT(global.rejected, 0u) << "config no longer exercises shedding";
  EXPECT_EQ(global.offered, global.completed + global.rejected);
  EXPECT_EQ(global.offered, uint64_t{cfg.ops} * cfg.shards);
  ExpectAccountingIdentities(tier);
}

TEST(DomainTierTest, ReportExcludesEngineThreadsAndNamesTheEngine) {
  // engine_threads must never appear in the report (it would break the
  // byte-compare contract); the engine identity and its model parameter do.
  ServeConfig cfg = SmallConfig(LoopMode::kClosed);
  cfg.engine_threads = 4;
  const std::string json = RunToJson(cfg);
  EXPECT_EQ(json.find("engine_threads"), std::string::npos);
  EXPECT_NE(json.find("\"engine\":\"partitioned\""), std::string::npos);
  EXPECT_NE(json.find("\"dispatch_latency\":2048"), std::string::npos);
}

// ---------- Serve observability on the partitioned engine ----------

ServeTimeline::Config PartitionedTimelineConfig(const ServeConfig& cfg, Cycles interval) {
  ServeTimeline::Config tc;
  tc.mix = cfg.mix_name;
  tc.loop = LoopModeName(cfg.loop);
  tc.store = StoreName(cfg.store);
  tc.engine = "partitioned";
  tc.shards = cfg.shards;
  tc.interval_cycles = interval;
  return tc;
}

// One observed run: the tier report, the timeline artifact, and the span
// export concatenated — everything the CLI can emit for a point.
std::string RunObservedToJson(const ServeConfig& cfg) {
  ServeTimeline timeline(PartitionedTimelineConfig(cfg, /*interval=*/5000));
  timeline.EnableSpans();
  DomainTier tier(G1Platform(), /*dimms_per_domain=*/1, cfg);
  tier.AttachTimeline(&timeline);
  tier.Run();
  return tier.ToJson() + "\n" + timeline.ToJson() + "\n" + timeline.SpansToJson();
}

TEST(DomainTierTest, TimelineByteIdenticalAcrossEngineThreads) {
  // The observability extension of the determinism contract: the windowed
  // timeline (including the per-domain memory-plane series) and every span
  // must byte-compare across host thread counts, not just the end-of-run
  // report.
  for (const LoopMode loop : {LoopMode::kClosed, LoopMode::kOpen}) {
    ServeConfig cfg = SmallConfig(loop);
    cfg.engine_threads = 1;
    const std::string baseline = RunObservedToJson(cfg);
    EXPECT_FALSE(baseline.empty());
    for (const uint32_t threads : {2u, 4u}) {
      cfg.engine_threads = threads;
      EXPECT_EQ(RunObservedToJson(cfg), baseline)
          << LoopModeName(loop) << " timeline diverges at engine_threads=" << threads;
    }
  }
}

TEST(DomainTierTest, EagerTimelineWellFormedAndConserved) {
  // The zero-lookahead fallback drives the per-domain samplers from worker
  // steps instead of a private scheduler; the timeline identities must hold
  // there too.
  ServeConfig cfg = SmallConfig(LoopMode::kOpen);
  cfg.dispatch_latency = 0;
  cfg.engine_threads = 4;  // ignored in eager mode
  ServeTimeline timeline(PartitionedTimelineConfig(cfg, /*interval=*/5000));
  DomainTier tier(G1Platform(), 1, cfg);
  tier.AttachTimeline(&timeline);
  tier.Run();

  EXPECT_FALSE(timeline.truncated());
  const ServiceStats global = tier.GlobalStats();
  uint64_t completed = 0, shed = 0;
  Cycles prev_end = tier.serve_start();
  for (const ServeWindow& w : timeline.global_windows()) {
    EXPECT_EQ(w.t_begin, prev_end) << "window " << w.index;
    prev_end = w.t_end;
    completed += w.completed;
    shed += w.shed;
  }
  EXPECT_EQ(completed, global.completed);
  EXPECT_EQ(shed, global.rejected);
  // Windows reach the engine's final cycle and partition [serve_start, end).
  EXPECT_EQ(timeline.global_windows().front().t_begin, tier.serve_start());
  EXPECT_GE(prev_end, tier.end_cycle());
}

}  // namespace
}  // namespace pmemsim
