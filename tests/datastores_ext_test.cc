// Extended data-store features: B+-tree range scans, CCEH deletion, eADR
// behavior, and epoch persistency.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/core/platform.h"
#include "src/datastores/cceh.h"
#include "src/datastores/chase_list.h"
#include "src/datastores/fast_fair.h"
#include "src/workload/ycsb.h"

namespace pmemsim {
namespace {

struct Fixture {
  std::unique_ptr<System> system = MakeG1System(1);
  ThreadContext* ctx = &system->CreateThread();
};

// ---------- FastFairTree::Scan ----------

TEST(BtreeScanTest, ScansSortedRange) {
  Fixture f;
  FastFairTree tree(f.system.get(), *f.ctx);
  const auto keys = MakeLoadKeys(3000, 17);
  for (const uint64_t k : keys) {
    tree.Insert(*f.ctx, k * 2, k, BTreeUpdateMode::kInPlace);  // even keys only
  }
  std::pair<uint64_t, uint64_t> out[100];
  const size_t n = tree.Scan(*f.ctx, 1001, 100, out);
  ASSERT_EQ(n, 100u);
  EXPECT_EQ(out[0].first, 1002u);  // first even key >= 1001
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i].first, 1002 + 2 * i);
    EXPECT_EQ(out[i].second, out[i].first / 2);
  }
}

TEST(BtreeScanTest, ScanFromBelowMinAndAboveMax) {
  Fixture f;
  FastFairTree tree(f.system.get(), *f.ctx);
  for (uint64_t k = 10; k <= 50; k += 10) {
    tree.Insert(*f.ctx, k, k, BTreeUpdateMode::kInPlace);
  }
  std::pair<uint64_t, uint64_t> out[10];
  EXPECT_EQ(tree.Scan(*f.ctx, 1, 10, out), 5u);
  EXPECT_EQ(out[0].first, 10u);
  EXPECT_EQ(tree.Scan(*f.ctx, 51, 10, out), 0u);
  EXPECT_EQ(tree.Scan(*f.ctx, 50, 10, out), 1u);
}

TEST(BtreeScanTest, ScanCrossesLeaves) {
  Fixture f;
  FastFairTree tree(f.system.get(), *f.ctx);
  const uint64_t total = 500;  // many leaf splits
  for (uint64_t k = 1; k <= total; ++k) {
    tree.Insert(*f.ctx, k, k, BTreeUpdateMode::kInPlace);
  }
  std::vector<std::pair<uint64_t, uint64_t>> out(total);
  const size_t n = tree.Scan(*f.ctx, 1, total, out.data());
  ASSERT_EQ(n, total);
  for (uint64_t i = 0; i < total; ++i) {
    ASSERT_EQ(out[i].first, i + 1);
  }
}

// ---------- FastFairTree::Update ----------

TEST(BtreeUpdateTest, UpdateOverwritesInPlace) {
  Fixture f;
  FastFairTree tree(f.system.get(), *f.ctx);
  const auto keys = MakeLoadKeys(2000, 3);
  for (const uint64_t k : keys) {
    tree.Insert(*f.ctx, k, k, BTreeUpdateMode::kInPlace);
  }
  const uint64_t nodes_before = tree.node_count();
  for (const uint64_t k : keys) {
    EXPECT_TRUE(tree.Update(*f.ctx, k, k + 7));
  }
  // Updates overwrite the 8-byte value slot: no shifting, no splits, no new
  // nodes, and every key reads back the new value.
  EXPECT_EQ(tree.node_count(), nodes_before);
  EXPECT_EQ(tree.size(), keys.size());
  for (const uint64_t k : keys) {
    uint64_t v = 0;
    ASSERT_TRUE(tree.Get(*f.ctx, k, &v));
    EXPECT_EQ(v, k + 7);
  }
}

TEST(BtreeUpdateTest, UpdateMissingKeyFails) {
  Fixture f;
  FastFairTree tree(f.system.get(), *f.ctx);
  tree.Insert(*f.ctx, 10, 10, BTreeUpdateMode::kInPlace);
  EXPECT_FALSE(tree.Update(*f.ctx, 11, 1));
  uint64_t v = 0;
  ASSERT_TRUE(tree.Get(*f.ctx, 10, &v));
  EXPECT_EQ(v, 10u);
}

TEST(BtreeUpdateTest, UpdatedValueIsPersisted) {
  // The overwrite must reach the persistence domain: after the update's
  // barrier, dropping all volatile cache state must still read the new value.
  Fixture f;
  FastFairTree tree(f.system.get(), *f.ctx);
  for (uint64_t k = 1; k <= 100; ++k) {
    tree.Insert(*f.ctx, k, k, BTreeUpdateMode::kInPlace);
  }
  ASSERT_TRUE(tree.Update(*f.ctx, 42, 4242));
  f.system->ResetMicroarchState();
  uint64_t v = 0;
  ASSERT_TRUE(tree.Get(*f.ctx, 42, &v));
  EXPECT_EQ(v, 4242u);
}

// ---------- CCEH::Erase ----------

TEST(CcehEraseTest, EraseRemovesKey) {
  Fixture f;
  Cceh table(f.system.get(), *f.ctx, 2, MemoryKind::kOptane);
  table.Insert(*f.ctx, 5, 55);
  EXPECT_TRUE(table.Erase(*f.ctx, 5));
  EXPECT_FALSE(table.Get(*f.ctx, 5, nullptr));
  EXPECT_FALSE(table.Erase(*f.ctx, 5));
  EXPECT_EQ(table.size(), 0u);
}

TEST(CcehEraseTest, EraseThenReinsert) {
  Fixture f;
  Cceh table(f.system.get(), *f.ctx, 2, MemoryKind::kOptane);
  for (uint64_t k = 1; k <= 2000; ++k) {
    table.Insert(*f.ctx, k, k);
  }
  for (uint64_t k = 1; k <= 2000; k += 2) {
    ASSERT_TRUE(table.Erase(*f.ctx, k));
  }
  EXPECT_EQ(table.size(), 1000u);
  for (uint64_t k = 1; k <= 2000; k += 2) {
    table.Insert(*f.ctx, k, k * 10);
  }
  uint64_t v = 0;
  ASSERT_TRUE(table.Get(*f.ctx, 7, &v));
  EXPECT_EQ(v, 70u);
  ASSERT_TRUE(table.Get(*f.ctx, 8, &v));
  EXPECT_EQ(v, 8u);
}

// ---------- eADR ----------

TEST(EadrTest, ClwbIsFreeUnderEadr) {
  auto eadr_system = std::make_unique<System>(G2EadrPlatform(), 1);
  ThreadContext& cpu = eadr_system->CreateThread();
  const PmRegion region = eadr_system->AllocatePm(KiB(4));
  cpu.Store64(region.base, 1);
  const Cycles t0 = cpu.clock();
  cpu.Clwb(region.base);
  cpu.Sfence();
  EXPECT_LT(cpu.clock() - t0, 20u);
  // The flush sent nothing to the WPQ.
  EXPECT_EQ(eadr_system->counters().imc_write_bytes, 0u);
}

TEST(EadrTest, NoReadAfterPersistUnderEadr) {
  auto eadr_system = std::make_unique<System>(G2EadrPlatform(), 1);
  ThreadContext& cpu = eadr_system->CreateThread();
  const PmRegion region = eadr_system->AllocatePm(KiB(4));
  cpu.Store64(region.base, 7);
  cpu.Clwb(region.base);
  cpu.Mfence();
  const Cycles t0 = cpu.clock();
  EXPECT_EQ(cpu.Load64(region.base), 7u);
  EXPECT_LT(cpu.clock() - t0, 20u);
}

TEST(EadrTest, StrictPersistencyCostCollapses) {
  auto measure = [](const PlatformConfig& cfg) {
    auto system = std::make_unique<System>(cfg, 1);
    ThreadContext& cpu = system->CreateThread();
    const PmRegion region = system->AllocatePm(KiB(64), kXPLineSize);
    ChaseList list(system.get(), region, false, 3);
    list.TraverseUpdate(cpu, 2000, PersistMode::kClwbSfence, Persistency::kStrict);
    return list.TraverseUpdate(cpu, 4000, PersistMode::kClwbSfence, Persistency::kStrict) / 4000;
  };
  EXPECT_LT(measure(G2EadrPlatform()), measure(G2Platform()) / 2);
}

// ---------- Epoch persistency ----------

TEST(EpochPersistencyTest, BetweenStrictAndRelaxed) {
  auto measure = [](Persistency model, uint64_t epoch) {
    auto system = MakeG1System(1);
    ThreadContext& cpu = system->CreateThread();
    const PmRegion region = system->AllocatePm(KiB(64), kXPLineSize);
    ChaseList list(system.get(), region, false, 3);
    list.TraverseUpdate(cpu, 2000, PersistMode::kClwbSfence, model, epoch);
    return list.TraverseUpdate(cpu, 4000, PersistMode::kClwbSfence, model, epoch) / 4000;
  };
  const Cycles strict = measure(Persistency::kStrict, 1);
  const Cycles epoch8 = measure(Persistency::kEpoch, 8);
  const Cycles relaxed = measure(Persistency::kRelaxed, 0);
  EXPECT_LE(epoch8, strict);
  EXPECT_LE(relaxed, epoch8);
  EXPECT_LT(relaxed, strict);
}

}  // namespace
}  // namespace pmemsim
