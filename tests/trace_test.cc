// Telemetry-layer tests: JSON writer/parser round-trips, per-DIMM and
// per-thread counter scoping/aggregation, and CounterDelta rebase semantics.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/sweep_runner.h"
#include "src/common/stats.h"
#include "src/core/platform.h"
#include "src/cpu/scheduler.h"
#include "src/trace/counters.h"
#include "src/trace/json.h"
#include "src/trace/registry.h"
#include "src/trace/sampler.h"
#include "src/trace/trace_events.h"

namespace pmemsim {
namespace {

// --- JSON writer/parser ---

TEST(Json, WriterProducesParsableNesting) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").Value("fig02");
  w.Key("rows").BeginArray();
  w.BeginObject().Key("wss_kb").Value(uint64_t{16}).Key("ra").Value(4.0).EndObject();
  w.BeginObject().Key("wss_kb").Value(uint64_t{18}).Key("ra").Value(1.0).EndObject();
  w.EndArray();
  w.Key("ok").Value(true);
  w.Key("nothing").Null();
  w.EndObject();
  ASSERT_TRUE(w.complete());

  JsonValue v;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(w.str(), &v, &error)) << error << "\n" << w.str();
  ASSERT_EQ(v.type, JsonValue::Type::kObject);
  EXPECT_EQ(v.Find("name")->string, "fig02");
  ASSERT_EQ(v.Find("rows")->array.size(), 2u);
  EXPECT_EQ(v.Find("rows")->array[0].Find("wss_kb")->AsUint(), 16u);
  EXPECT_DOUBLE_EQ(v.Find("rows")->array[1].Find("ra")->AsDouble(), 1.0);
  EXPECT_TRUE(v.Find("ok")->boolean);
  EXPECT_EQ(v.Find("nothing")->type, JsonValue::Type::kNull);
}

TEST(Json, EscapingRoundTrips) {
  const std::string nasty = "quote\" backslash\\ newline\n tab\t ctrl\x01 end";
  JsonWriter w;
  w.BeginObject().Key("s").Value(nasty).EndObject();
  JsonValue v;
  ASSERT_TRUE(JsonValue::Parse(w.str(), &v));
  EXPECT_EQ(v.Find("s")->string, nasty);
}

TEST(Json, LargeIntegersAreLossless) {
  const uint64_t big = (1ull << 60) + 3;  // not representable as a double
  JsonWriter w;
  w.BeginObject().Key("v").Value(big).EndObject();
  JsonValue v;
  ASSERT_TRUE(JsonValue::Parse(w.str(), &v));
  ASSERT_TRUE(v.Find("v")->is_integer);
  EXPECT_EQ(v.Find("v")->AsUint(), big);
}

TEST(Json, ParserRejectsMalformedInput) {
  JsonValue v;
  EXPECT_FALSE(JsonValue::Parse("{\"a\":}", &v));
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1,}", &v));
  EXPECT_FALSE(JsonValue::Parse("[1 2]", &v));
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1} extra", &v));
  EXPECT_FALSE(JsonValue::Parse("\"unterminated", &v));
  std::string error;
  EXPECT_FALSE(JsonValue::Parse("", &v, &error));
  EXPECT_FALSE(error.empty());
}

// --- serialization round-trips ---

TEST(Serialization, CountersRoundTrip) {
  Counters c;
  // Distinct value per field, including one beyond double precision.
  uint64_t next = (1ull << 55) + 1;
  ForEachCounterField(c, [&next](const char*, uint64_t& field) { field = next++; });

  JsonValue v;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(c.ToJson(), &v, &error)) << error;
  Counters back;
  ASSERT_TRUE(CountersFromJson(v, &back));
  EXPECT_EQ(c, back);

  // The derived block carries the ratio metrics.
  const JsonValue* derived = v.Find("derived");
  ASSERT_NE(derived, nullptr);
  EXPECT_DOUBLE_EQ(derived->Find("write_amplification")->AsDouble(), c.WriteAmplification());
  EXPECT_DOUBLE_EQ(derived->Find("read_buffer_hit_ratio")->AsDouble(), c.ReadBufferHitRatio());
}

TEST(Serialization, CountersFromJsonRejectsMissingField) {
  JsonValue v;
  ASSERT_TRUE(JsonValue::Parse("{\"imc_read_bytes\": 1}", &v));
  Counters c;
  EXPECT_FALSE(CountersFromJson(v, &c));
}

TEST(Serialization, RunningStatRoundTrip) {
  RunningStat s;
  for (const double x : {1.0, 2.0, 3.0, 10.0}) {
    s.Add(x);
  }
  JsonValue v;
  ASSERT_TRUE(JsonValue::Parse(s.ToJson(), &v));
  EXPECT_EQ(v.Find("count")->AsUint(), 4u);
  EXPECT_DOUBLE_EQ(v.Find("mean")->AsDouble(), s.mean());
  EXPECT_DOUBLE_EQ(v.Find("stddev")->AsDouble(), s.stddev());
  EXPECT_DOUBLE_EQ(v.Find("min")->AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(v.Find("max")->AsDouble(), 10.0);
}

TEST(Serialization, HistogramRoundTrip) {
  Histogram h;
  for (uint64_t i = 1; i <= 1000; ++i) {
    h.Add(i);
  }
  JsonValue v;
  ASSERT_TRUE(JsonValue::Parse(h.ToJson(), &v));
  EXPECT_EQ(v.Find("count")->AsUint(), 1000u);
  EXPECT_EQ(v.Find("min")->AsUint(), 1u);
  EXPECT_EQ(v.Find("max")->AsUint(), 1000u);
  EXPECT_EQ(v.Find("p50")->AsUint(), h.Percentile(50));
  EXPECT_EQ(v.Find("p999")->AsUint(), h.Percentile(99.9));
}

TEST(Serialization, EmptyHistogramIsExplicitNotZero) {
  // A store-free --breakdown run leaves whole stage histograms empty; the
  // empty case must be distinguishable from "measured zero latency".
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);  // documented fallback; callers check count()
  EXPECT_EQ(h.Summary(), "n=0 (empty)");

  JsonValue v;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(h.ToJson(), &v, &error)) << error;
  EXPECT_EQ(v.Find("count")->AsUint(), 0u);
  for (const char* key : {"mean", "min", "max", "p50", "p90", "p99", "p999"}) {
    ASSERT_NE(v.Find(key), nullptr) << key;
    EXPECT_EQ(v.Find(key)->type, JsonValue::Type::kNull) << key;
  }

  // One sample flips every statistic to concrete values.
  h.Add(7);
  ASSERT_TRUE(JsonValue::Parse(h.ToJson(), &v));
  EXPECT_EQ(v.Find("count")->AsUint(), 1u);
  EXPECT_EQ(v.Find("p50")->AsUint(), 7u);
  EXPECT_EQ(v.Find("max")->AsUint(), 7u);
}

// --- registry scoping and aggregation ---

TEST(CounterRegistry, ScopesAggregateAndStayStable) {
  CounterRegistry registry;
  Counters* a = registry.CreateScope("a");
  // Force a reallocation-sized number of later scopes: `a` must stay valid.
  std::vector<Counters*> rest;
  for (int i = 0; i < 64; ++i) {
    rest.push_back(registry.CreateScope("scope" + std::to_string(i)));
  }
  a->imc_write_bytes = 64;
  a->demand_stores = 1;
  for (size_t i = 0; i < rest.size(); ++i) {
    rest[i]->imc_write_bytes = 64 * (i + 1);
  }

  const Counters total = registry.Aggregate();
  uint64_t expected = 64;
  for (size_t i = 0; i < rest.size(); ++i) {
    expected += 64 * (i + 1);
  }
  EXPECT_EQ(total.imc_write_bytes, expected);
  EXPECT_EQ(total.demand_stores, 1u);
  EXPECT_EQ(registry.scope_count(), 65u);
  EXPECT_EQ(registry.FindScope("a"), a);
  EXPECT_EQ(registry.FindScope("missing"), nullptr);
}

TEST(CounterRegistry, BoundAggregateSyncsOnRead) {
  CounterRegistry registry;
  Counters* scope = registry.CreateScope("only");
  Counters total;
  total.BindAggregate(&registry);

  scope->imc_read_bytes = 128;
  total.Sync();
  EXPECT_EQ(total.imc_read_bytes, 128u);

  // A copy is a plain snapshot: further scope writes don't reach it.
  const Counters snapshot = total;
  scope->imc_read_bytes = 256;
  total.Sync();
  EXPECT_EQ(total.imc_read_bytes, 256u);
  EXPECT_EQ(snapshot.imc_read_bytes, 128u);
}

TEST(CounterRegistry, JsonListsEveryScope) {
  CounterRegistry registry;
  registry.CreateScope("optane_dimm0")->media_write_bytes = 256;
  registry.CreateScope("thread0")->demand_loads = 7;
  JsonValue v;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(registry.ToJson(), &v, &error)) << error;
  ASSERT_EQ(v.object.size(), 2u);
  EXPECT_EQ(v.Find("optane_dimm0")->Find("media_write_bytes")->AsUint(), 256u);
  EXPECT_EQ(v.Find("thread0")->Find("demand_loads")->AsUint(), 7u);
}

// --- CounterDelta semantics ---

TEST(CounterDelta, DeltaAndRebaseOnPlainCounters) {
  Counters c;
  c.demand_loads = 10;
  CounterDelta d(&c);
  c.demand_loads += 5;
  EXPECT_EQ(d.Delta().demand_loads, 5u);
  d.Rebase();
  EXPECT_EQ(d.Delta().demand_loads, 0u);
  c.demand_loads += 3;
  EXPECT_EQ(d.Delta().demand_loads, 3u);
  // Rebase captures the live value, not the previous base.
  d.Rebase();
  c.demand_loads += 2;
  EXPECT_EQ(d.Delta().demand_loads, 2u);
}

TEST(CounterDelta, SyncsBoundAggregates) {
  CounterRegistry registry;
  Counters* scope = registry.CreateScope("s");
  Counters total;
  total.BindAggregate(&registry);

  scope->media_write_bytes = 256;
  CounterDelta d(&total);  // base must observe the pre-existing 256
  scope->media_write_bytes += 512;
  EXPECT_EQ(d.Delta().media_write_bytes, 512u);
  d.Rebase();
  scope->media_write_bytes += 256;
  EXPECT_EQ(d.Delta().media_write_bytes, 256u);
}

// --- system-level scoping ---

TEST(SystemScopes, PerDimmCountersSumToGlobal) {
  auto system = MakeG1System(/*optane_dimm_count=*/6);
  ThreadContext& ctx = system->CreateThread();
  const PmRegion region = system->AllocatePm(KiB(512), kXPLineSize);
  // Touch every DIMM: strided nt-stores then reads across the interleave.
  for (uint64_t off = 0; off + kCacheLineSize <= region.size; off += KiB(2)) {
    ctx.NtStore64(region.At(off), off);
  }
  ctx.Sfence();
  for (uint64_t off = 0; off + kCacheLineSize <= region.size; off += KiB(2)) {
    ctx.Load64(region.At(off));
  }

  const Counters& global = system->counters();
  Counters dimm_sum;
  size_t dimm_scopes = 0;
  for (const CounterRegistry::Scope& s : system->counter_registry().scopes()) {
    if (s.name.rfind("optane_dimm", 0) == 0) {
      dimm_sum += s.counters;
      ++dimm_scopes;
    }
  }
  EXPECT_EQ(dimm_scopes, 6u);
  // Every DIMM participated.
  for (size_t i = 0; i < system->mc().optane_dimm_count(); ++i) {
    EXPECT_GT(system->mc().optane_dimm_counters(i).imc_write_bytes, 0u) << i;
  }
  // DIMM-owned fields: the per-DIMM scopes are the only writers, so their sum
  // IS the global value.
  EXPECT_EQ(dimm_sum.imc_write_bytes, global.imc_write_bytes);
  EXPECT_EQ(dimm_sum.imc_read_bytes, global.imc_read_bytes);
  EXPECT_EQ(dimm_sum.media_write_bytes, global.media_write_bytes);
  EXPECT_EQ(dimm_sum.media_read_bytes, global.media_read_bytes);
  EXPECT_EQ(dimm_sum.write_buffer_hits + dimm_sum.write_buffer_misses,
            global.write_buffer_hits + global.write_buffer_misses);
  // And the full aggregate equals the sum over every scope.
  EXPECT_EQ(system->counter_registry().Aggregate(), global);
}

TEST(SystemScopes, PerThreadCountersSumToGlobal) {
  auto system = MakeG1System(1);
  ThreadContext& t0 = system->CreateThread();
  ThreadContext& t1 = system->CreateThread();
  const PmRegion region = system->AllocatePm(KiB(64), kXPLineSize);
  for (int i = 0; i < 100; ++i) {
    t0.Load64(region.At(static_cast<uint64_t>(i) * kCacheLineSize));
  }
  for (int i = 0; i < 40; ++i) {
    t1.Load64(region.At(static_cast<uint64_t>(i) * kCacheLineSize));
  }

  const Counters* s0 = system->counter_registry().FindScope("thread0");
  const Counters* s1 = system->counter_registry().FindScope("thread1");
  ASSERT_NE(s0, nullptr);
  ASSERT_NE(s1, nullptr);
  EXPECT_EQ(s0->demand_loads, 100u);
  EXPECT_EQ(s1->demand_loads, 40u);
  EXPECT_EQ(system->counters().demand_loads, 140u);
}

// --- trace emitter ---

TEST(TraceEvents, EmitsValidChromeTraceJson) {
  const std::string path = ::testing::TempDir() + "/pmemsim_trace_test.json";
  TraceEmitter& te = TraceEmitter::Global();
  te.Enable(path);
  const int track = te.RegisterTrack("optane_dimm0");
  te.CounterEvent(track, "wpq_occupancy", 100, 3.0);
  te.Instant(track, "write_buffer_evict", 150, "rmw", 1.0);
  ASSERT_TRUE(te.Disable());

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);

  JsonValue v;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(text, &v, &error)) << error;
  const JsonValue* events = v.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  // Track metadata rows + the two events.
  bool saw_counter = false;
  bool saw_instant = false;
  for (const JsonValue& e : events->array) {
    if (e.Find("ph")->string == "C" && e.Find("name")->string == "wpq_occupancy") {
      saw_counter = true;
      EXPECT_EQ(e.Find("ts")->AsUint(), 100u);
      EXPECT_DOUBLE_EQ(e.Find("args")->Find("value")->AsDouble(), 3.0);
    }
    if (e.Find("ph")->string == "i" && e.Find("name")->string == "write_buffer_evict") {
      saw_instant = true;
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_instant);
  std::remove(path.c_str());
}

// --- interval sampler ---

TEST(Sampler, DeltasPartitionTheRunExactly) {
  auto system = MakeG1System(1);
  ThreadContext& ctx = system->CreateThread();
  const PmRegion region = system->AllocatePm(KiB(128), kXPLineSize);
  // Sampler and reference delta snapshot the same pre-run counter state.
  Sampler sampler(&system->counters(), /*interval_cycles=*/10000);
  sampler.SetGaugeSource(
      [&system](Cycles now) { return system->ReadGauges(now); });
  CounterDelta global(&system->counters());

  for (uint64_t i = 0; i < 500; ++i) {
    const Addr a = region.At((i * kCacheLineSize) % region.size);
    ctx.Store64(a, i);
    ctx.Clwb(a);
    ctx.Sfence();
    sampler.AdvanceTo(ctx.clock());
  }
  sampler.Finalize(ctx.clock());

  // The attribution contract: the per-interval series is a partition of the
  // run, so the field-wise sum of sample deltas IS the global counter delta.
  EXPECT_EQ(sampler.SumOfDeltas(), global.Delta());
  EXPECT_EQ(sampler.SumOfDeltas().demand_stores, 500u);
  EXPECT_EQ(sampler.dropped_samples(), 0u);

  // The samples tile [0, end] contiguously; the final one may be partial.
  ASSERT_GE(sampler.samples().size(), 2u);
  Cycles prev = 0;
  for (const Sample& s : sampler.samples()) {
    EXPECT_EQ(s.t_begin, prev);
    EXPECT_GE(s.t_end, s.t_begin);
    prev = s.t_end;
  }
  EXPECT_EQ(prev, ctx.clock());
  for (size_t i = 0; i + 1 < sampler.samples().size(); ++i) {
    EXPECT_FALSE(sampler.samples()[i].partial) << i;
  }
}

TEST(Sampler, IdleIntervalsEmitZeroDeltas) {
  // ipmwatch prints idle seconds too: a quiet stretch of simulated time must
  // produce zero-delta samples, not a gap in the series.
  Counters c;
  Sampler sampler(&c, /*interval_cycles=*/100);
  c.demand_loads = 5;
  sampler.AdvanceTo(350);  // boundaries at 100, 200, 300
  ASSERT_EQ(sampler.samples().size(), 3u);
  EXPECT_EQ(sampler.samples()[0].delta.demand_loads, 5u);
  const Counters zero;
  EXPECT_EQ(sampler.samples()[1].delta, zero);
  EXPECT_EQ(sampler.samples()[2].delta, zero);
  sampler.Finalize(350);  // closes [300, 350) as a partial sample
  ASSERT_EQ(sampler.samples().size(), 4u);
  EXPECT_TRUE(sampler.samples()[3].partial);
  EXPECT_EQ(sampler.samples()[3].t_end, 350u);
}

TEST(Sampler, BoundaryExactFinalizeAddsNoEmptySample) {
  Counters c;
  Sampler sampler(&c, /*interval_cycles=*/100);
  c.demand_loads = 2;
  sampler.AdvanceTo(200);
  ASSERT_EQ(sampler.samples().size(), 2u);
  sampler.Finalize(200);  // already closed at the boundary: nothing to add
  EXPECT_EQ(sampler.samples().size(), 2u);
}

TEST(Sampler, FinalizeCapturesResidualDeltasAfterLastBoundary) {
  Counters c;
  Sampler sampler(&c, /*interval_cycles=*/100);
  sampler.AdvanceTo(100);
  c.imc_write_bytes = 64;  // lands after the last observation
  sampler.Finalize(100);
  ASSERT_EQ(sampler.samples().size(), 2u);
  EXPECT_TRUE(sampler.samples()[1].partial);
  EXPECT_EQ(sampler.samples()[1].delta.imc_write_bytes, 64u);
  EXPECT_EQ(sampler.SumOfDeltas().imc_write_bytes, 64u);
}

TEST(Sampler, OriginAlignsBoundaries) {
  // The serve timeline joins the memory-plane series at the serve-phase
  // origin: a sampler opened at origin O with interval I must cut boundaries
  // at O + k*I, never at absolute multiples of I.
  Counters c;
  Sampler sampler(&c, /*interval_cycles=*/100, /*origin=*/1000);
  c.imc_read_bytes = 64;
  sampler.AdvanceTo(1150);  // one boundary crossed, at 1100 (not 1000/1100/1200 grid-from-zero)
  ASSERT_EQ(sampler.samples().size(), 1u);
  EXPECT_EQ(sampler.samples()[0].t_begin, 1000u);
  EXPECT_EQ(sampler.samples()[0].t_end, 1100u);
  EXPECT_EQ(sampler.samples()[0].delta.imc_read_bytes, 64u);
  c.imc_read_bytes += 36;
  sampler.Finalize(1230);  // closes [1100,1200) and the partial [1200,1230)
  ASSERT_EQ(sampler.samples().size(), 3u);
  EXPECT_EQ(sampler.samples()[1].t_begin, 1100u);
  EXPECT_EQ(sampler.samples()[1].t_end, 1200u);
  EXPECT_EQ(sampler.samples()[1].delta.imc_read_bytes, 36u);
  EXPECT_TRUE(sampler.samples()[2].partial);
  EXPECT_EQ(sampler.samples()[2].t_begin, 1200u);
  EXPECT_EQ(sampler.samples()[2].t_end, 1230u);
  EXPECT_EQ(sampler.SumOfDeltas().imc_read_bytes, 100u);
}

namespace sampler_determinism {

// One scheduler-driven sampled run: fresh System, fixed workload, fixed
// interval. Returns the serialized sample series.
std::string SampledSeriesJson() {
  auto system = MakeG1System(1);
  ThreadContext& ctx = system->CreateThread();
  const PmRegion region = system->AllocatePm(KiB(128), kXPLineSize);
  Sampler sampler(&system->counters(), /*interval_cycles=*/20000);
  sampler.SetGaugeSource(
      [&system](Cycles now) { return system->ReadGauges(now); });
  uint64_t i = 0;
  std::vector<SimJob> jobs;
  jobs.push_back({&ctx, [&]() {
                    const Addr a = region.At((i * kCacheLineSize) % region.size);
                    ctx.Store64(a, i);
                    ctx.Clwb(a);
                    ctx.Sfence();
                    return ++i < 400 ? StepResult::kProgress : StepResult::kDone;
                  }});
  Scheduler::Run(jobs, &sampler);
  sampler.Finalize(ctx.clock());
  return sampler.ToJson();
}

// Runs the sampled workload as 4 sweep points under the given --jobs level;
// returns each point's series in submission order.
std::vector<std::string> RunSampledSweep(const char* jobs_arg) {
  const char* argv[] = {"trace_test", jobs_arg};
  pmemsim_bench::Flags flags(2, const_cast<char**>(argv));
  pmemsim_bench::BenchReport report(flags, "sampler_determinism_test");
  pmemsim_bench::SweepRunner runner(flags);
  auto out = std::make_shared<std::vector<std::string>>(4);
  for (int p = 0; p < 4; ++p) {
    runner.Add("point" + std::to_string(p),
               [p, out](pmemsim_bench::SweepPoint&) { (*out)[p] = SampledSeriesJson(); });
  }
  EXPECT_EQ(runner.Run(report), 0);
  return *out;
}

}  // namespace sampler_determinism

TEST(Sampler, SeriesByteIdenticalAcrossRunsAndJobs) {
  using sampler_determinism::RunSampledSweep;
  const std::vector<std::string> serial = RunSampledSweep("--jobs=1");
  const std::vector<std::string> parallel = RunSampledSweep("--jobs=4");
  ASSERT_EQ(serial.size(), 4u);
  for (size_t p = 0; p < serial.size(); ++p) {
    EXPECT_FALSE(serial[p].empty()) << p;
    // Worker-thread interleaving must not leak into the sampled series.
    EXPECT_EQ(serial[p], parallel[p]) << "point " << p;
  }
  // Two identical serial runs are byte-identical too.
  EXPECT_EQ(serial, RunSampledSweep("--jobs=1"));

  // The series parses and covers multiple intervals.
  JsonValue v;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(serial[0], &v, &error)) << error;
  ASSERT_EQ(v.type, JsonValue::Type::kArray);
  ASSERT_GE(v.array.size(), 3u);
  EXPECT_EQ(v.array[0].Find("t_begin")->AsUint(), 0u);
  ASSERT_NE(v.array[0].Find("delta"), nullptr);
  ASSERT_NE(v.array[0].Find("gauges")->Find("wpq_occupancy"), nullptr);
}

}  // namespace
}  // namespace pmemsim
