// Per-thread cache hierarchy: private L1d + L2 over a shared L3, with the
// flush instruction semantics that drive the paper's G1/G2 differences and
// the prefetch engine attached to the demand stream.

#ifndef SRC_CACHE_HIERARCHY_H_
#define SRC_CACHE_HIERARCHY_H_

#include "src/cache/cache.h"
#include "src/cache/prefetcher.h"
#include "src/common/access_record.h"
#include "src/common/config.h"
#include "src/common/types.h"
#include "src/imc/memory_controller.h"
#include "src/trace/counters.h"

namespace pmemsim {

// The hierarchy's access result is the shared in-place record every memory
// layer writes into (see src/common/access_record.h for the field list).
using HierAccessResult = AccessRecord;

struct FlushResult {
  bool wrote = false;      // a write-back entered the WPQ
  Cycles accepted_at = 0;  // persist point, if wrote
  Cycles cost = 0;         // cycles charged to the issuing thread
};

class CacheHierarchy : public PrefetchSink {
 public:
  CacheHierarchy(const CacheConfig& config, SetAssocCache* shared_l3, MemoryController* mc,
                 Counters* counters, NodeId node, uint64_t rng_seed = 0xFEEDF00D);

  // Demand cacheline load/store (store = RFO + dirty mark, write-allocate).
  // `train` = false suppresses prefetcher training (AVX streaming path).
  // The in-place forms write into `out`, which must arrive value-initialized
  // (arena-allocated records are); the value forms wrap them.
  void Load(Addr addr, Cycles now, bool ordered, bool train, HierAccessResult* out);
  void Store(Addr addr, Cycles now, HierAccessResult* out);
  HierAccessResult Load(Addr addr, Cycles now, bool ordered, bool train = true) {
    HierAccessResult r;
    Load(addr, now, ordered, train, &r);
    return r;
  }
  HierAccessResult Store(Addr addr, Cycles now) {
    HierAccessResult r;
    Store(addr, now, &r);
    return r;
  }

  // clwb: writes back a dirty copy; G1 schedules invalidation after the
  // dispatch window, G2 retains the line clean.
  FlushResult Clwb(Addr addr, Cycles now);
  // clflushopt: writes back a dirty copy and invalidates (same lazy window).
  FlushResult Clflushopt(Addr addr, Cycles now);

  // Removes the line everywhere immediately (nt-store snoop-invalidate).
  void InvalidateAll(Addr addr);

  // Applies any scheduled invalidation for the line (mfence ordering).
  void ForcePendingInvalidate(Addr addr);

  bool ProbeAny(Addr addr, Cycles now) const;

  // Host-side hint that `addr` is about to be accessed: starts fetching the
  // L2/L3 set blocks and the target DIMM's translation state. No simulated
  // effect — callers that know their next address (trace replayers, benchmark
  // loops) issue this one operation ahead so the host DRAM fetches overlap
  // the current operation's simulation work.
  void HostPrefetchHint(Addr addr) const {
    const Addr line = CacheLineBase(addr);
    l2_.PrefetchSet(line);
    l3_->PrefetchSet(line);
    mc_->PrefetchRead(line);
    last_hint_line_ = line;
  }

  // PrefetchSink: fills a line into L2 (+L3), or L1 for the DCU streamer.
  // Never charged to the thread clock.
  void PrefetchFill(Addr line_addr, Cycles now, bool into_l1) override;

  PrefetchEngine& prefetch_engine() { return engine_; }
  SetAssocCache& l1() { return l1_; }
  SetAssocCache& l2() { return l2_; }
  SetAssocCache& shared_l3() { return *l3_; }

  // Drops private-cache state (benchmark warm-boundary helper).
  void ClearPrivate();

 private:
  void AccessInternal(Addr addr, Cycles now, bool is_store, bool ordered, bool train,
                      HierAccessResult* out);
  // Trains the prefetch engine on a demand access; with every prefetcher
  // disabled it collapses to the one state change that path performs.
  void TrainEngine(const PrefetchEngine::DemandInfo& info) {
    if (engine_.any_enabled()) {
      engine_.OnDemandAccess(info);
    } else {
      engine_.NoteDemandOnly(info.line);
    }
  }
  // Inserts into a level, cascading dirty evictions downward.
  void FillInto(SetAssocCache& level, int level_idx, Addr line, Cycles now, bool dirty,
                bool prefetched, Cycles ready_at = 0);

  CacheConfig config_;
  SetAssocCache l1_;
  SetAssocCache l2_;
  SetAssocCache* l3_;
  MemoryController* mc_;
  Counters* counters_;
  NodeId node_;
  PrefetchEngine engine_;
  bool in_prefetch_fill_ = false;  // prefetch fills must not re-trigger training
  // Last line already warmed by an explicit HostPrefetchHint: the miss-path
  // fan-out skips re-issuing those fetches. Host-only state (mutable so the
  // const hint entry point can record it); never read by timing code.
  mutable Addr last_hint_line_ = ~Addr{0};
};

}  // namespace pmemsim

#endif  // SRC_CACHE_HIERARCHY_H_
