// Tests for the crash-consistency subsystem: PersistTracker durable-image
// semantics (ADR vs eADR), CrashInjector determinism, torn-write modeling,
// and the recovery validators across every crash workload.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/common/config.h"
#include "src/common/random.h"
#include "src/core/system.h"
#include "src/crash/crash_injector.h"
#include "src/crash/persist_tracker.h"
#include "src/crash/recovery_validator.h"
#include "src/crash/workloads.h"

namespace pmemsim {
namespace {

struct Calibration {
  uint64_t events = 0;
  uint64_t acked = 0;
  PersistTracker::Stats stats;
};

Calibration Calibrate(const PlatformConfig& platform, const std::string& store,
                      const CrashWorkloadOptions& opts) {
  System system(platform);
  PersistTracker tracker(platform.eadr_enabled);
  tracker.Attach(&system);
  ThreadContext& ctx = system.CreateThread();
  auto workload = CrashWorkload::Create(store, opts);
  workload->Setup(system, ctx);
  CrashInjector counter;
  tracker.StartEvents(&counter);
  workload->Run(ctx);
  Calibration result;
  result.events = counter.events_seen();
  result.acked = workload->acked_ops();
  result.stats = tracker.stats();
  return result;
}

struct PointResult {
  bool crashed = false;
  CrashEventKind kind = CrashEventKind::kWpqAccept;
  Cycles crash_cycles = 0;
  ValidationReport report;
};

PointResult RunPoint(const PlatformConfig& platform, const std::string& store,
                     const CrashWorkloadOptions& opts, uint64_t event_index,
                     uint64_t tear_seed,
                     PersistTracker::TearGranularity granularity =
                         PersistTracker::TearGranularity::kWord) {
  System system(platform);
  PersistTracker tracker(platform.eadr_enabled);
  tracker.Attach(&system);
  ThreadContext& ctx = system.CreateThread();
  auto workload = CrashWorkload::Create(store, opts);
  workload->Setup(system, ctx);
  CrashInjector injector;
  injector.Arm(event_index);
  tracker.StartEvents(&injector);
  PointResult result;
  try {
    workload->Run(ctx);
  } catch (const CrashSignal&) {
    result.crashed = true;
  }
  EXPECT_TRUE(result.crashed) << store << ": event " << event_index << " never fired";
  if (!result.crashed) {
    return result;
  }
  result.kind = injector.fired_kind();
  result.crash_cycles = injector.crash_now();
  System fresh(platform);
  tracker.Materialize(&fresh.backing(), injector.crash_now(), tear_seed, granularity);
  ThreadContext& vctx = fresh.CreateThread();
  workload->Validate(fresh, vctx, &result.report);
  return result;
}

TEST(PlatformByNameTest, ResolvesPresetsCaseInsensitively) {
  ASSERT_TRUE(PlatformByName("g1").has_value());
  EXPECT_EQ(PlatformByName("g1")->generation, Generation::kG1);
  ASSERT_TRUE(PlatformByName("G2").has_value());
  EXPECT_FALSE(PlatformByName("G2")->eadr_enabled);
  ASSERT_TRUE(PlatformByName("g2-eadr").has_value());
  EXPECT_TRUE(PlatformByName("g2-eadr")->eadr_enabled);
  ASSERT_TRUE(PlatformByName("G2-eADR").has_value());
  EXPECT_FALSE(PlatformByName("g3").has_value());
  EXPECT_FALSE(PlatformByName("").has_value());
}

TEST(PersistTrackerTest, AdrUnflushedStoreIsLost) {
  const PlatformConfig platform = G1Platform();
  System system(platform);
  PersistTracker tracker(platform.eadr_enabled);
  tracker.Attach(&system);
  ThreadContext& ctx = system.CreateThread();
  const PmRegion pm = system.AllocatePm(KiB(4));
  ctx.Store64(pm.base, 0xD1DD1Dull);
  // No flush, no fence: the line never reached the iMC.
  System fresh(platform);
  tracker.Materialize(&fresh.backing(), ctx.clock() + 1000000, 1,
                      PersistTracker::TearGranularity::kWord);
  EXPECT_EQ(fresh.backing().ReadU64(pm.base), 0u);
}

TEST(PersistTrackerTest, AdrStoreDurableAtWpqAccept) {
  const PlatformConfig platform = G1Platform();
  System system(platform);
  PersistTracker tracker(platform.eadr_enabled);
  tracker.Attach(&system);
  ThreadContext& ctx = system.CreateThread();
  const PmRegion pm = system.AllocatePm(KiB(4));
  ctx.Store64(pm.base, 0xD0D0ull);
  ctx.Clwb(pm.base);
  ctx.Sfence();
  // After the fence the write-back was accepted: durable at any later crash.
  System fresh(platform);
  tracker.Materialize(&fresh.backing(), ctx.clock(), 1,
                      PersistTracker::TearGranularity::kWord);
  EXPECT_EQ(fresh.backing().ReadU64(pm.base), 0xD0D0ull);
  // But a crash at cycle 0 predates the WPQ acceptance: nothing is durable
  // with certainty (the write may surface torn or complete, seed-dependent).
  EXPECT_EQ(tracker.recorded_writes(), 1u);
}

TEST(PersistTrackerTest, EadrStoreDurableAtRetire) {
  const PlatformConfig platform = G2EadrPlatform();
  System system(platform);
  PersistTracker tracker(platform.eadr_enabled);
  tracker.Attach(&system);
  ThreadContext& ctx = system.CreateThread();
  const PmRegion pm = system.AllocatePm(KiB(4));
  ctx.Store64(pm.base, 0xEADEADull);
  // No flush needed: the caches are in the persistence domain.
  System fresh(platform);
  tracker.Materialize(&fresh.backing(), 0, 1, PersistTracker::TearGranularity::kWord);
  EXPECT_EQ(fresh.backing().ReadU64(pm.base), 0xEADEADull);
}

TEST(PersistTrackerTest, TornWritesRespectWordGranularity) {
  const PlatformConfig platform = G1Platform();
  uint8_t ones[kCacheLineSize];
  std::memset(ones, 0xFF, sizeof(ones));
  for (uint64_t seed = 0; seed < 24; ++seed) {
    System system(platform);
    PersistTracker tracker(platform.eadr_enabled);
    tracker.Attach(&system);
    ThreadContext& ctx = system.CreateThread();
    const PmRegion pm = system.AllocatePm(KiB(4));
    ctx.NtStoreLine(pm.base, ones);
    // Crash at cycle 0: the nt-store is in flight; whatever fate the seed
    // draws, each aligned 8-byte word must be all-ones or all-zeros.
    System fresh(platform);
    tracker.Materialize(&fresh.backing(), 0, seed, PersistTracker::TearGranularity::kWord);
    for (uint64_t w = 0; w < kCacheLineSize; w += 8) {
      const uint64_t word = fresh.backing().ReadU64(pm.base + w);
      EXPECT_TRUE(word == 0 || word == ~0ull) << "seed " << seed << " word " << w;
    }
    // Sub-word mode: a word may additionally keep a byte prefix (0xFF bytes
    // followed by zeros — never an interior hole).
    System fresh_sub(platform);
    tracker.Materialize(&fresh_sub.backing(), 0, seed,
                        PersistTracker::TearGranularity::kSubword);
    for (uint64_t w = 0; w < kCacheLineSize; w += 8) {
      uint8_t bytes[8];
      fresh_sub.backing().Read(pm.base + w, bytes, sizeof(bytes));
      bool seen_zero = false;
      for (const uint8_t b : bytes) {
        EXPECT_TRUE(b == 0x00 || b == 0xFF);
        EXPECT_FALSE(seen_zero && b == 0xFF) << "interior hole, seed " << seed;
        seen_zero = seen_zero || b == 0x00;
      }
    }
  }
}

TEST(PersistTrackerTest, MaterializeIsDeterministicForSameSeed) {
  const PlatformConfig platform = G1Platform();
  CrashWorkloadOptions opts;
  opts.ops = 200;
  opts.seed = 11;
  const Calibration cal = Calibrate(platform, "flatlog", opts);
  ASSERT_GT(cal.events, 0u);

  auto image_at = [&](uint64_t tear_seed) {
    System system(platform);
    PersistTracker tracker(platform.eadr_enabled);
    tracker.Attach(&system);
    ThreadContext& ctx = system.CreateThread();
    auto workload = CrashWorkload::Create("flatlog", opts);
    workload->Setup(system, ctx);
    CrashInjector injector;
    injector.Arm(cal.events / 2);
    tracker.StartEvents(&injector);
    bool crashed = false;
    try {
      workload->Run(ctx);
    } catch (const CrashSignal&) {
      crashed = true;
    }
    EXPECT_TRUE(crashed);
    System fresh(platform);
    tracker.Materialize(&fresh.backing(), injector.crash_now(), tear_seed,
                        PersistTracker::TearGranularity::kWord);
    std::vector<uint8_t> image(MiB(1));
    fresh.backing().Read(kPageSize, image.data(), image.size());
    return image;
  };
  EXPECT_EQ(image_at(42), image_at(42));
}

TEST(CrashInjectorTest, FiresDeterministicallyAcrossRuns) {
  const PlatformConfig platform = G1Platform();
  CrashWorkloadOptions opts;
  opts.ops = 64;
  opts.seed = 5;
  const Calibration first = Calibrate(platform, "redo", opts);
  const Calibration second = Calibrate(platform, "redo", opts);
  EXPECT_EQ(first.events, second.events);
  ASSERT_GT(first.events, 4u);

  const uint64_t index = first.events / 2;
  const PointResult a = RunPoint(platform, "redo", opts, index, 3);
  const PointResult b = RunPoint(platform, "redo", opts, index, 3);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.crash_cycles, b.crash_cycles);
  EXPECT_EQ(a.report.checks, b.report.checks);
  EXPECT_EQ(a.report.violations, b.report.violations);
}

TEST(RecoveryValidatorTest, AllStoresPassAtSampledCrashPoints) {
  CrashWorkloadOptions opts;
  opts.ops = 240;
  opts.seed = 9;
  for (const std::string& platform_name : {std::string("g1"), std::string("g2-eadr")}) {
    const PlatformConfig platform = *PlatformByName(platform_name);
    for (const std::string& store : CrashWorkload::StoreNames()) {
      const Calibration cal = Calibrate(platform, store, opts);
      ASSERT_GT(cal.events, 4u) << store << " on " << platform_name;
      for (const uint64_t index : {cal.events / 4, cal.events / 2, cal.events - 1}) {
        const PointResult r =
            RunPoint(platform, store, opts, index, Mix64(opts.seed ^ index));
        EXPECT_EQ(r.report.violations, 0u)
            << store << " on " << platform_name << " at event " << index << ": "
            << (r.report.messages.empty() ? "" : r.report.messages.front());
        EXPECT_GT(r.report.checks, 0u);
      }
    }
  }
}

TEST(RecoveryValidatorTest, SubwordTearsAlsoPass) {
  // Sub-8-byte tears may only surface where recovery is robust to them; the
  // validators must stay clean (magic words and flags sit in aligned words).
  const PlatformConfig platform = G1Platform();
  CrashWorkloadOptions opts;
  opts.ops = 240;
  opts.seed = 13;
  for (const std::string& store : CrashWorkload::StoreNames()) {
    const Calibration cal = Calibrate(platform, store, opts);
    ASSERT_GT(cal.events, 2u);
    const PointResult r =
        RunPoint(platform, store, opts, cal.events / 2, Mix64(opts.seed),
                 PersistTracker::TearGranularity::kSubword);
    EXPECT_EQ(r.report.violations, 0u)
        << store << ": " << (r.report.messages.empty() ? "" : r.report.messages.front());
  }
}

TEST(RecoveryValidatorTest, BrokenPersistVariantIsCaught) {
  // Dropping the CCEH slot-commit barrier must produce violations: acked
  // inserts sit in volatile caches and vanish at the crash.
  const PlatformConfig platform = G1Platform();
  CrashWorkloadOptions opts;
  opts.ops = 2000;
  opts.seed = 7;
  opts.break_persist = true;
  const Calibration cal = Calibrate(platform, "cceh", opts);
  ASSERT_GT(cal.events, 0u);
  const PointResult r = RunPoint(platform, "cceh", opts, cal.events - 1, 7);
  EXPECT_GT(r.report.violations, 0u);
}

TEST(PersistTrackerTest, EadrVulnerableWindowStrictlySmaller) {
  // The eADR-vs-ADR contract: the vulnerable-byte window under eADR must be
  // strictly smaller (zero: nothing volatile holds persistent state).
  CrashWorkloadOptions opts;
  opts.ops = 240;
  opts.seed = 21;
  const Calibration adr = Calibrate(*PlatformByName("g2"), "cceh", opts);
  const Calibration eadr = Calibrate(*PlatformByName("g2-eadr"), "cceh", opts);
  EXPECT_GT(adr.stats.max_vulnerable_bytes, 0u);
  EXPECT_EQ(eadr.stats.max_vulnerable_bytes, 0u);
  EXPECT_LT(eadr.stats.max_vulnerable_bytes, adr.stats.max_vulnerable_bytes);
  EXPECT_GT(adr.stats.events, 0u);
  EXPECT_GT(eadr.stats.events, 0u);
}

}  // namespace
}  // namespace pmemsim
