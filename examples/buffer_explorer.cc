// Interactive-ish tour of the on-DIMM buffers: sweeps a working set across
// the read- and write-buffer capacities and prints the amplification story of
// paper §3.1-§3.2 in one screen.
//
//   $ ./build/examples/buffer_explorer [g1|g2]

#include <cstdio>
#include <cstring>

#include "src/core/platform.h"
#include "src/trace/counters.h"

using namespace pmemsim;

namespace {

double ReadAmp(Generation gen, uint64_t wss) {
  auto system = MakeSystem(gen, 1);
  ThreadContext& cpu = system->CreateThread();
  SetPrefetchers(cpu, false, false, false);
  const PmRegion region = system->AllocatePm(wss, kXPLineSize);
  auto round = [&](int n) {
    for (int p = 0; p < n; ++p) {
      for (Addr a = region.base; a < region.end(); a += kXPLineSize) {
        cpu.LoadLine(a);
        cpu.Clflushopt(a);
      }
      cpu.Sfence();
    }
  };
  round(3);
  CounterDelta d(&system->counters());
  round(6);
  return d.Delta().ReadAmplification();
}

double WriteAmp(Generation gen, uint64_t wss) {
  auto system = MakeSystem(gen, 1);
  ThreadContext& cpu = system->CreateThread();
  const PmRegion region = system->AllocatePm(wss, kXPLineSize);
  auto round = [&](int n) {
    for (int p = 0; p < n; ++p) {
      for (Addr a = region.base; a < region.end(); a += kXPLineSize) {
        cpu.NtStore64(a, p);  // 25% partial write
      }
      cpu.Sfence();
    }
  };
  round(3);
  CounterDelta d(&system->counters());
  round(6);
  return d.Delta().WriteAmplification();
}

}  // namespace

int main(int argc, char** argv) {
  const Generation gen =
      argc > 1 && std::strcmp(argv[1], "g2") == 0 ? Generation::kG2 : Generation::kG1;
  const PlatformConfig platform = PlatformFor(gen);

  std::printf("=== %s on-DIMM buffer explorer ===\n", platform.name.c_str());
  std::printf("read buffer %llu KB | write buffer %llu KB (%u entries reserved)\n\n",
              (unsigned long long)(platform.optane.read_buffer_bytes / 1024),
              (unsigned long long)(platform.optane.write_buffer_bytes / 1024),
              platform.optane.write_buffer_partial_reserve);

  std::printf("%8s  %18s  %20s\n", "WSS", "read amp (1 CpX)", "write amp (25%% part.)");
  for (uint64_t kb = 2; kb <= 32; kb += 2) {
    std::printf("%6llu KB  %18.2f  %20.2f\n", (unsigned long long)kb, ReadAmp(gen, KiB(kb)),
                WriteAmp(gen, KiB(kb)));
  }
  std::printf(
      "\nReading 1 of 4 cachelines per XPLine always re-fetches 256 B (amp 4);\n"
      "the cliff marks the read-buffer capacity. Partial writes are absorbed\n"
      "(amp 0) until the write buffer's usable capacity, then climb toward 4.\n");
  return 0;
}
