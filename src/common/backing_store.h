// Sparse byte-addressable backing store for the simulated physical address
// space. Timing is handled elsewhere; this holds the actual data so persistent
// data structures built on the simulator are functionally real.
//
// Pages materialize on first write; reads of untouched pages return zeros
// without allocating (large cold regions stay cheap).
//
// Layout: every simulated load/store touches this store for its data, so the
// lookup is engine-hot-path. Pages hang off a two-level radix per address
// region (PM below kDramAddressBase, DRAM above, both dense from their base):
// root vector -> 512-page leaf -> page, all array indexing. A one-entry
// last-page cache short-circuits the common case — ReadU64/WriteU64 on the
// page touched last is a compare and two array indexes, no hashing. The
// cache is per-store state, so a BackingStore (like the System owning it) is
// single-threaded; parallel sweeps build one System per worker.

#ifndef SRC_COMMON_BACKING_STORE_H_
#define SRC_COMMON_BACKING_STORE_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "src/common/types.h"

namespace pmemsim {

class BackingStore {
 public:
  void Read(Addr addr, void* out, size_t len) const;
  void Write(Addr addr, const void* data, size_t len);

  uint64_t ReadU64(Addr addr) const;
  void WriteU64(Addr addr, uint64_t value);

  // Zero-fills a range (drops whole pages where possible).
  void Zero(Addr addr, uint64_t len);

  // Host-side hint: start fetching the data word at `addr` so a ReadU64 at
  // the end of a simulated access finds it warm. No simulated effect.
  void PrefetchRead(Addr addr) const;

  size_t allocated_pages() const { return allocated_; }

  // Mirrors imc/memory_controller.h's kDramAddressBase without the layering
  // inversion of including it here; pinned by a static_assert in the .cc.
  static constexpr Addr kDramRadixBase = 1ull << 46;

 private:
  using Page = std::array<uint8_t, kPageSize>;

  // Two-level radix over the page numbers of one dense-from-zero region.
  class Radix {
   public:
    Page* Find(uint64_t pageno) const;
    // Returns the page, materializing (zero-filled) if needed; bumps
    // `*allocated` on materialization.
    Page& Ensure(uint64_t pageno, size_t* allocated);
    // Frees the page if present; decrements `*allocated` on success.
    void Drop(uint64_t pageno, size_t* allocated);

   private:
    static constexpr uint64_t kLeafBits = 9;  // 512 pages = 2 MiB per leaf
    static constexpr uint64_t kLeafSize = 1ull << kLeafBits;

    struct Leaf {
      std::array<std::unique_ptr<Page>, kLeafSize> pages;
    };

    std::vector<std::unique_ptr<Leaf>> root_;
  };

  const Page* FindPage(Addr addr) const;
  Page& EnsurePage(Addr addr);
  void DropPage(Addr page_base);

  Radix& RadixFor(Addr addr) { return addr < kDramRadixBase ? pm_ : dram_; }
  const Radix& RadixFor(Addr addr) const { return addr < kDramRadixBase ? pm_ : dram_; }
  static uint64_t PageNo(Addr addr) {
    return (addr < kDramRadixBase ? addr : addr - kDramRadixBase) >> 12;
  }

  static constexpr Addr kNoPage = ~Addr{0};

  Radix pm_;
  Radix dram_;
  size_t allocated_ = 0;

  // Last-page cache (single-threaded; see header comment). Mutable so const
  // reads can keep it warm — it caches lookup work, never data.
  mutable Addr cached_base_ = kNoPage;
  mutable Page* cached_page_ = nullptr;
};

}  // namespace pmemsim

#endif  // SRC_COMMON_BACKING_STORE_H_
