// Tests for the on-DIMM read and write buffers — the paper's central
// structures. Includes parameterized property sweeps over working set sizes
// reproducing the Fig. 2/3/4 invariants at the unit level.

#include <gtest/gtest.h>

#include "src/buffers/read_buffer.h"
#include "src/buffers/write_buffer.h"
#include "src/common/random.h"

namespace pmemsim {
namespace {

// ---------- ReadBuffer ----------

TEST(ReadBufferTest, MissOnEmpty) {
  Counters c;
  ReadBuffer buf(KiB(16), &c);
  EXPECT_FALSE(buf.ConsumeLine(0));
  EXPECT_EQ(c.read_buffer_misses, 1u);
}

TEST(ReadBufferTest, FillMakesAllFourLinesHit) {
  Counters c;
  ReadBuffer buf(KiB(16), &c);
  buf.Fill(512);
  for (uint64_t cl = 0; cl < 4; ++cl) {
    EXPECT_TRUE(buf.ConsumeLine(512 + cl * kCacheLineSize)) << cl;
  }
}

TEST(ReadBufferTest, ExclusiveDelivery) {
  // A consumed line is gone (exclusive with the CPU caches): re-reading
  // always costs a refetch — the reason RA never drops below 1 (§3.1).
  Counters c;
  ReadBuffer buf(KiB(16), &c);
  buf.Fill(0);
  EXPECT_TRUE(buf.ConsumeLine(0));
  EXPECT_FALSE(buf.ConsumeLine(0));
  // Other lines of the XPLine are still valid.
  EXPECT_TRUE(buf.ConsumeLine(64));
}

TEST(ReadBufferTest, RefillRefreshesConsumedLines) {
  Counters c;
  ReadBuffer buf(KiB(16), &c);
  buf.Fill(0);
  EXPECT_TRUE(buf.ConsumeLine(0));
  buf.Fill(0);  // refetch refreshes in place
  EXPECT_TRUE(buf.ConsumeLine(0));
}

TEST(ReadBufferTest, FifoEviction) {
  Counters c;
  ReadBuffer buf(KiB(1), &c);  // 4 XPLine slots
  for (uint64_t i = 0; i < 5; ++i) {
    buf.Fill(i * kXPLineSize);
  }
  EXPECT_FALSE(buf.Probe(0));                 // oldest evicted
  EXPECT_TRUE(buf.Probe(1 * kXPLineSize));    // rest remain
  EXPECT_TRUE(buf.Probe(4 * kXPLineSize));
}

TEST(ReadBufferTest, RemoveForTransition) {
  Counters c;
  ReadBuffer buf(KiB(16), &c);
  buf.Fill(0);
  EXPECT_TRUE(buf.ContainsXPLine(128));
  EXPECT_TRUE(buf.Remove(128));
  EXPECT_FALSE(buf.ContainsXPLine(0));
  EXPECT_FALSE(buf.Remove(0));
}

TEST(ReadBufferTest, FreedSlotsRefillInFifoOrder) {
  // Pins the fill sequence around §3.3 transitions: slots vacated by Remove
  // are reused in the order they were freed (FIFO), before the eviction hand
  // touches any live slot. Layout below: A,B,C,D land in slots 0..3.
  Counters c;
  ReadBuffer buf(KiB(1), &c);  // 4 XPLine slots
  const Addr a = 0 * kXPLineSize, b = 1 * kXPLineSize, cc = 2 * kXPLineSize,
             d = 3 * kXPLineSize, e = 4 * kXPLineSize, f = 5 * kXPLineSize,
             g = 6 * kXPLineSize, h = 7 * kXPLineSize;
  for (const Addr x : {a, b, cc, d}) {
    buf.Fill(x);
  }
  ASSERT_TRUE(buf.Remove(b));   // slot 1 freed first
  ASSERT_TRUE(buf.Remove(cc));  // slot 2 freed second
  buf.Fill(e);                  // reuses slot 1 (freed first), evicts nothing
  buf.Fill(f);                  // reuses slot 2, evicts nothing
  EXPECT_TRUE(buf.Probe(a));
  EXPECT_TRUE(buf.Probe(d));
  EXPECT_TRUE(buf.Probe(e));
  EXPECT_TRUE(buf.Probe(f));
  // Free list exhausted: the FIFO hand resumes at slot 0 and walks by slot
  // position. G evicts A (slot 0); H evicts E — which sits in slot 1 exactly
  // because the free list replayed B's slot before C's. A LIFO free list
  // would have put F there and this sequence pins the difference.
  buf.Fill(g);
  EXPECT_FALSE(buf.Probe(a));
  buf.Fill(h);
  EXPECT_FALSE(buf.Probe(e));
  EXPECT_TRUE(buf.Probe(d));
  EXPECT_TRUE(buf.Probe(f));
  EXPECT_TRUE(buf.Probe(g));
  EXPECT_TRUE(buf.Probe(h));
}

TEST(ReadBufferTest, FillForDeliveryMatchesFillPlusConsume) {
  // FillForDelivery must leave the buffer in exactly the state of
  // Fill + ConsumeLine, with only the counter bookkeeping differing —
  // OptaneDimm::Read relies on this to skip the post-fill lookup.
  Counters c1, c2;
  ReadBuffer x(KiB(1), &c1);
  ReadBuffer y(KiB(1), &c2);
  const Addr addrs[] = {64, 3 * kXPLineSize + 128, 9 * kXPLineSize, 64, 5 * kXPLineSize + 192};
  for (const Addr addr : addrs) {
    x.FillForDelivery(addr);
    y.Fill(addr);
    ASSERT_TRUE(y.ConsumeLine(addr));
    for (uint64_t xp = 0; xp < 12; ++xp) {
      for (uint64_t cl = 0; cl < 4; ++cl) {
        const Addr probe = xp * kXPLineSize + cl * kCacheLineSize;
        EXPECT_EQ(x.Probe(probe), y.Probe(probe)) << "addr=" << addr << " probe=" << probe;
      }
    }
  }
  EXPECT_EQ(c1.read_buffer_hits, 0u);  // deliveries are not hits
}

// Property: for any WSS <= capacity, the strided CpX pattern yields exactly
// one miss per XPLine per full round (RA = 4/CpX); for WSS > capacity, every
// access misses (RA = 4) — the Fig. 2 law.
class ReadBufferRaProperty : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>> {};

TEST_P(ReadBufferRaProperty, Fig2Law) {
  const uint64_t wss = std::get<0>(GetParam());
  const uint32_t cpx = std::get<1>(GetParam());
  const uint64_t capacity = KiB(16);

  Counters c;
  ReadBuffer buf(capacity, &c);
  const uint64_t xplines = wss / kXPLineSize;

  auto round = [&]() {
    for (uint32_t cl = 0; cl < cpx; ++cl) {
      for (uint64_t xp = 0; xp < xplines; ++xp) {
        const Addr line = xp * kXPLineSize + cl * kCacheLineSize;
        if (!buf.ConsumeLine(line)) {
          buf.Fill(line);
          ASSERT_TRUE(buf.ConsumeLine(line));
        }
      }
    }
  };

  for (int warm = 0; warm < 3; ++warm) {
    round();
  }
  const uint64_t misses_before = c.read_buffer_misses;
  const uint64_t hits_before = c.read_buffer_hits;
  const int rounds = 4;
  for (int r = 0; r < rounds; ++r) {
    round();
  }
  const uint64_t misses = c.read_buffer_misses - misses_before;
  const uint64_t accesses = (c.read_buffer_hits - hits_before) + misses;
  // Counter bookkeeping inside the helper counts each miss retry as hit too;
  // reconstruct demanded accesses directly.
  const uint64_t demanded = static_cast<uint64_t>(rounds) * cpx * xplines;
  const double ra = 4.0 * static_cast<double>(misses) / static_cast<double>(demanded);
  (void)accesses;
  if (wss <= capacity) {
    EXPECT_NEAR(ra, 4.0 / cpx, 0.01) << "wss=" << wss << " cpx=" << cpx;
  } else {
    EXPECT_NEAR(ra, 4.0, 0.01) << "wss=" << wss << " cpx=" << cpx;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReadBufferRaProperty,
                         ::testing::Combine(::testing::Values(KiB(4), KiB(8), KiB(12), KiB(16),
                                                              KiB(17), KiB(24), KiB(32)),
                                            ::testing::Values(1u, 2u, 3u, 4u)));

// ---------- WriteBuffer ----------

WriteBufferConfig G1WbConfig() {
  WriteBufferConfig cfg;
  cfg.capacity_bytes = KiB(16);
  cfg.partial_reserve_entries = 16;
  cfg.periodic_full_writeback = true;
  cfg.full_writeback_period = 5000;
  cfg.batch_evict = true;
  return cfg;
}

WriteBufferConfig G2WbConfig() {
  WriteBufferConfig cfg;
  cfg.capacity_bytes = KiB(16);
  cfg.partial_reserve_entries = 0;
  cfg.periodic_full_writeback = false;
  cfg.batch_evict = false;
  return cfg;
}

TEST(WriteBufferTest, MergeIsAHit) {
  Counters c;
  WriteBuffer buf(G1WbConfig(), &c);
  std::vector<WritebackRequest> wb;
  EXPECT_FALSE(buf.Write(0, 0, 100, wb));
  EXPECT_TRUE(buf.Write(64, 1, 101, wb));  // same XPLine
  EXPECT_TRUE(buf.Write(0, 2, 102, wb));   // same line again
  EXPECT_EQ(c.write_buffer_hits, 2u);
  EXPECT_EQ(c.write_buffer_misses, 1u);
  EXPECT_TRUE(wb.empty());
}

TEST(WriteBufferTest, VisibleAtIsPerCacheline) {
  Counters c;
  WriteBuffer buf(G1WbConfig(), &c);
  std::vector<WritebackRequest> wb;
  buf.Write(0, 0, 1000, wb);
  buf.Write(64, 0, 2000, wb);
  EXPECT_EQ(buf.VisibleAt(0), 1000u);
  EXPECT_EQ(buf.VisibleAt(64), 2000u);
  EXPECT_EQ(buf.VisibleAt(128), 0u);  // line not written
}

TEST(WriteBufferTest, PartialCapacityKnee) {
  // G1: partial XPLines are absorbed without any write-back until the usable
  // 48-entry (12 KB) capacity is exceeded (Fig. 3).
  Counters c;
  WriteBuffer buf(G1WbConfig(), &c);
  std::vector<WritebackRequest> wb;
  for (uint64_t xp = 0; xp < 47; ++xp) {
    buf.Write(xp * kXPLineSize, 0, 0, wb);
  }
  EXPECT_TRUE(wb.empty());
  for (uint64_t xp = 47; xp < 52; ++xp) {
    buf.Write(xp * kXPLineSize, 0, 0, wb);
  }
  EXPECT_FALSE(wb.empty());
  for (const WritebackRequest& r : wb) {
    EXPECT_TRUE(r.needs_rmw);  // partial lines need the RMW fetch
    EXPECT_FALSE(r.periodic);
  }
}

TEST(WriteBufferTest, PeriodicWritebackOfFullLines) {
  Counters c;
  WriteBuffer buf(G1WbConfig(), &c);
  std::vector<WritebackRequest> wb;
  for (uint64_t cl = 0; cl < 4; ++cl) {
    buf.Write(cl * kCacheLineSize, 10, 100, wb);  // fully written XPLine
  }
  EXPECT_TRUE(wb.empty());
  buf.Tick(10000, wb);  // past the period
  ASSERT_EQ(wb.size(), 1u);
  EXPECT_TRUE(wb[0].periodic);
  EXPECT_FALSE(wb[0].needs_rmw);
  EXPECT_EQ(c.periodic_writebacks, 1u);
  // The entry stays resident (clean) and still serves reads.
  EXPECT_TRUE(buf.HoldsLine(0));
}

TEST(WriteBufferTest, G2NoPeriodicWriteback) {
  Counters c;
  WriteBuffer buf(G2WbConfig(), &c);
  std::vector<WritebackRequest> wb;
  for (uint64_t cl = 0; cl < 4; ++cl) {
    buf.Write(cl * kCacheLineSize, 10, 100, wb);
  }
  buf.Tick(1000000, wb);
  EXPECT_TRUE(wb.empty());
}

TEST(WriteBufferTest, G2FullCapacitySingleEviction) {
  Counters c;
  WriteBuffer buf(G2WbConfig(), &c);
  std::vector<WritebackRequest> wb;
  for (uint64_t xp = 0; xp < 64; ++xp) {
    buf.Write(xp * kXPLineSize, 0, 0, wb);
  }
  EXPECT_TRUE(wb.empty());  // 64 entries fit exactly
  buf.Write(64 * kXPLineSize, 0, 0, wb);
  EXPECT_EQ(wb.size(), 1u);  // one random victim
}

TEST(WriteBufferTest, AbsorbFillCompletesEntry) {
  Counters c;
  WriteBuffer buf(G1WbConfig(), &c);
  std::vector<WritebackRequest> wb;
  buf.Write(0, 0, 100, wb);
  EXPECT_FALSE(buf.HoldsLine(64));
  EXPECT_TRUE(buf.AbsorbFill(64));
  EXPECT_TRUE(buf.HoldsLine(64));
  EXPECT_FALSE(buf.AbsorbFill(100 * kXPLineSize));  // not resident
  // Evicting an absorbed entry needs no RMW.
  buf.DrainAll(wb);
  ASSERT_EQ(wb.size(), 1u);
  EXPECT_FALSE(wb[0].needs_rmw);
}

TEST(WriteBufferTest, InstallTransitionHoldsWholeXPLine) {
  Counters c;
  WriteBuffer buf(G1WbConfig(), &c);
  std::vector<WritebackRequest> wb;
  buf.InstallTransition(64, 0, 500, wb);
  EXPECT_TRUE(buf.HoldsLine(0));
  EXPECT_TRUE(buf.HoldsLine(192));
  EXPECT_EQ(buf.VisibleAt(64), 500u);
  EXPECT_EQ(buf.VisibleAt(0), 0u);  // unwritten lines are visible data
  EXPECT_EQ(c.read_write_transitions, 1u);
}

// Property: steady-state hit ratio under uniform random single-line writes
// decays with WSS beyond capacity (the Fig. 4 law), and G1's batch eviction
// keeps occupancy below G2's.
class WriteBufferHitProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WriteBufferHitProperty, Fig4Law) {
  const uint64_t wss = GetParam();
  for (const bool g1 : {true, false}) {
    Counters c;
    WriteBuffer buf(g1 ? G1WbConfig() : G2WbConfig(), &c);
    std::vector<WritebackRequest> wb;
    Rng rng(7 + wss);
    const uint64_t xplines = wss / kXPLineSize;
    for (int i = 0; i < 20000; ++i) {
      buf.Write(rng.NextBelow(xplines) * kXPLineSize, static_cast<Cycles>(i), 0, wb);
      wb.clear();
    }
    const double hit = c.WriteBufferHitRatio();
    const uint64_t usable = g1 ? 48 : 64;
    if (xplines <= usable) {
      EXPECT_GT(hit, 0.95) << "g1=" << g1 << " wss=" << wss;
    } else {
      EXPECT_LT(hit, 0.95) << "g1=" << g1 << " wss=" << wss;
      EXPECT_GT(hit, 0.5 * static_cast<double>(usable) / static_cast<double>(xplines));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, WriteBufferHitProperty,
                         ::testing::Values(KiB(4), KiB(8), KiB(12), KiB(20), KiB(32), KiB(64)));

// Regression: the buffer must replay bit-for-bit for identical seeds. Tick,
// EvictOne's clean-entry scan, and DrainAll used to walk the unordered map_,
// whose iteration order is a stdlib implementation detail — eviction and
// write-back sequences could differ across toolchains for the same seed.
// They now walk keys_, whose order is a pure function of the operation
// history, so two identically seeded buffers must emit identical sequences.
std::vector<WritebackRequest> ReplayMixedWorkload(const WriteBufferConfig& cfg) {
  Counters c;
  WriteBuffer buf(cfg, &c);
  std::vector<WritebackRequest> all;
  std::vector<WritebackRequest> wb;
  Rng rng(0xD373C7);
  for (int i = 0; i < 5000; ++i) {
    const Addr xpline = rng.NextBelow(96) * kXPLineSize;
    const uint64_t cl = rng.NextBelow(kLinesPerXPLine);
    buf.Write(xpline + cl * kCacheLineSize, static_cast<Cycles>(i * 7),
              static_cast<Cycles>(i * 7 + 50), wb);
    if (i % 97 == 0) {
      buf.Tick(static_cast<Cycles>(i * 7), wb);
    }
    all.insert(all.end(), wb.begin(), wb.end());
    wb.clear();
  }
  buf.DrainAll(wb);
  all.insert(all.end(), wb.begin(), wb.end());
  return all;
}

TEST(WriteBufferTest, DeterministicWritebackSequence) {
  for (const bool g1 : {true, false}) {
    const WriteBufferConfig cfg = [&] {
      WriteBufferConfig c = g1 ? G1WbConfig() : G2WbConfig();
      c.eviction = WriteBufferEviction::kRandom;
      return c;
    }();
    const std::vector<WritebackRequest> a = ReplayMixedWorkload(cfg);
    const std::vector<WritebackRequest> b = ReplayMixedWorkload(cfg);
    ASSERT_EQ(a.size(), b.size()) << "g1=" << g1;
    ASSERT_FALSE(a.empty()) << "workload produced no write-backs; test is vacuous";
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].xpline, b[i].xpline) << "g1=" << g1 << " i=" << i;
      EXPECT_EQ(a[i].needs_rmw, b[i].needs_rmw) << "g1=" << g1 << " i=" << i;
      EXPECT_EQ(a[i].periodic, b[i].periodic) << "g1=" << g1 << " i=" << i;
    }
  }
}

TEST(WriteBufferTest, DeterministicOldestEvictionSequence) {
  // The kOldest ablation policy must also replay identically.
  WriteBufferConfig cfg = G2WbConfig();
  cfg.eviction = WriteBufferEviction::kOldest;
  const std::vector<WritebackRequest> a = ReplayMixedWorkload(cfg);
  const std::vector<WritebackRequest> b = ReplayMixedWorkload(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].xpline, b[i].xpline) << i;
  }
}

TEST(WriteBufferTest, DrainAllOrderFollowsKeyList) {
  // DrainAll walks keys_ (deterministic), not map_. With no evictions the
  // key list is insertion-ordered, so the drain order is the write order.
  Counters c;
  WriteBuffer buf(G2WbConfig(), &c);
  std::vector<WritebackRequest> wb;
  const Addr xplines[] = {7 * kXPLineSize, 3 * kXPLineSize, 11 * kXPLineSize, 1 * kXPLineSize};
  for (const Addr xp : xplines) {
    buf.Write(xp, 0, 0, wb);
  }
  ASSERT_TRUE(wb.empty());
  buf.DrainAll(wb);
  ASSERT_EQ(wb.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(wb[i].xpline, xplines[i]) << i;
  }
}

}  // namespace
}  // namespace pmemsim
