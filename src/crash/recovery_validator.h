// Per-structure recovery invariant checkers.
//
// Each Validate* function inspects a MATERIALIZED durable image (a fresh
// System whose BackingStore was populated by PersistTracker::Materialize) and
// checks the structure's crash-consistency contract against what the workload
// knows it did:
//
//  - acked operations (the call returned before the crash) must be fully
//    visible with their exact values;
//  - attempted-but-unacked operations may surface completely, partially
//    (torn), or not at all — but only in states the recovery procedure is
//    specified to tolerate;
//  - nothing else may appear (no phantoms).
//
// All violation messages are emitted in a deterministic order (sorted or
// program-order scans — never unordered-container iteration), so crashcheck
// JSON output is byte-reproducible.

#ifndef SRC_CRASH_RECOVERY_VALIDATOR_H_
#define SRC_CRASH_RECOVERY_VALIDATOR_H_

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/types.h"
#include "src/core/system.h"
#include "src/cpu/thread_context.h"

namespace pmemsim {

struct ValidationReport {
  uint64_t checks = 0;
  uint64_t violations = 0;
  std::vector<std::string> messages;  // first kMaxMessages violation messages

  static constexpr size_t kMaxMessages = 4;

  // Records one invariant check; on failure counts it and keeps the message.
  void Check(bool ok, const std::string& message) {
    ++checks;
    if (!ok) {
      Fail(message);
    }
  }
  void Fail(const std::string& message) {
    ++violations;
    if (messages.size() < kMaxMessages) {
      messages.push_back(message);
    }
  }
};

// ---- CCEH ----
// Invariants: every acked insert is found by the probe procedure with its
// exact value; every non-empty slot in every live segment holds an attempted
// key (no phantoms). Unacked attempted keys may be present with any value
// (the torn slot may pair a committed key word with a stale value word).
struct CcehExpectation {
  Addr directory = 0;
  uint32_t global_depth = 0;
  std::vector<std::pair<uint64_t, uint64_t>> acked;  // key -> value, ack order
  std::unordered_set<uint64_t> attempted;            // every key ever attempted
};
void ValidateCceh(ThreadContext& ctx, const CcehExpectation& exp, ValidationReport* report);

// ---- FAST&FAIR ----
// Walks the leaf chain from the leftmost leaf, filters transient duplicate
// entries with the no-duplicate invariant, and checks: valid entries are
// non-strictly sorted per node, every valid key is an attempted key with its
// exact planned value, and every acked key is present.
struct FastFairExpectation {
  Addr meta = 0;
  std::vector<std::pair<uint64_t, uint64_t>> acked;
  std::unordered_map<uint64_t, uint64_t> attempted;  // key -> planned value
  uint64_t max_nodes = 0;                            // chain-walk budget (cycle guard)
};
void ValidateFastFair(ThreadContext& ctx, const FastFairExpectation& exp,
                      ValidationReport* report);

// ---- FlatLog ----
// Byte-compares every acked (batch-flushed) slot against the exact image the
// workload staged; structurally checks the unacked tail (a valid-looking slot
// must carry an attempted key, or key 0 from a torn write over fresh zeros);
// then runs the real FlatLog::Recover on the image and point-reads every
// acked key.
struct FlatLogExpectation {
  PmRegion region;
  uint64_t acked_slots = 0;  // slots [0, acked_slots) were batch-flushed
  std::vector<std::array<uint8_t, 64>> slot_images;  // expected, per appended slot
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> acked_kv;  // ack order
  std::unordered_set<uint64_t> attempted;
};
void ValidateFlatLog(System* fresh, ThreadContext& ctx, const FlatLogExpectation& exp,
                     ValidationReport* report);

// ---- RedoLog ----
// Runs RedoLog::Recover on the image, then checks every target word: targets
// not covered by the in-flight transaction must hold their last committed
// value; targets covered by it must hold either the old or the new value,
// new only if the workload had reached Commit(), and all-or-nothing across
// the transaction (redo groups replay atomically).
struct RedoExpectation {
  PmRegion log_region;
  std::vector<Addr> targets;
  std::vector<uint64_t> committed;  // parallel to targets: last acked value
  bool inflight_reached_commit = false;
  std::vector<std::pair<size_t, uint64_t>> inflight;  // (target index, new value)
};
void ValidateRedo(System* fresh, ThreadContext& ctx, const RedoExpectation& exp,
                  ValidationReport* report);

// ---- Undo log ----
// Runs Transaction::Recover on the image, then requires the field image to
// equal exactly the last committed state A, or — only if the workload had
// reached Commit() — exactly the in-flight state B. Anything in between is a
// rollback failure.
struct UndoExpectation {
  PmRegion log_region;
  std::vector<Addr> fields;
  std::vector<uint64_t> committed;  // state A, parallel to fields
  bool inflight_reached_commit = false;
  std::vector<std::pair<size_t, uint64_t>> inflight;  // B = A + these deltas
};
void ValidateUndo(System* fresh, ThreadContext& ctx, const UndoExpectation& exp,
                  ValidationReport* report);

}  // namespace pmemsim

#endif  // SRC_CRASH_RECOVERY_VALIDATOR_H_
