file(REMOVE_RECURSE
  "CMakeFiles/attribution_test.dir/attribution_test.cc.o"
  "CMakeFiles/attribution_test.dir/attribution_test.cc.o.d"
  "attribution_test"
  "attribution_test.pdb"
  "attribution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attribution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
