// A libpmem-flavoured convenience layer over the simulator, for code that
// wants to read like PMDK-era persistent-memory programming:
//
//   PmemRegion file = PmemMapFile(system, MiB(64));
//   PmemMemcpyPersist(cpu, file.base, buf, len);
//   ...
//   PmemFlush(cpu, addr, len);
//   PmemDrain(cpu);
//
// Semantics follow libpmem on an ADR platform: persist = flush + drain, the
// drain returns at WPQ acceptance, and large copies switch to non-temporal
// stores past a threshold exactly as pmem_memcpy does. On an eADR platform
// (PlatformConfig::eadr_enabled) flushes are unnecessary and PmemHasAutoFlush
// reports true.

#ifndef SRC_API_PMEM_H_
#define SRC_API_PMEM_H_

#include <cstddef>

#include "src/core/system.h"
#include "src/cpu/thread_context.h"

namespace pmemsim {

// Past this size pmem_memcpy-style copies use non-temporal stores (PMDK uses
// a comparable movnt threshold) to avoid polluting the caches and to skip the
// flush pass.
inline constexpr size_t kPmemMovntThreshold = 256;

// Equivalent of pmem_map_file(..., PMEM_FILE_CREATE): reserves a PM range.
PmRegion PmemMapFile(System& system, uint64_t size);

// True when stores are persistent without flushes (eADR platforms).
bool PmemHasAutoFlush(const System& system);

// pmem_flush: initiate write-back of [addr, addr+len) cachelines.
void PmemFlush(ThreadContext& cpu, Addr addr, size_t len);

// pmem_drain: wait until previously initiated flushes are accepted to the
// power-fail-protected domain.
void PmemDrain(ThreadContext& cpu);

// pmem_persist = pmem_flush + pmem_drain.
void PmemPersist(ThreadContext& cpu, Addr addr, size_t len);

// pmem_memcpy_persist: copy into PM and make it durable. Small copies go
// through the caches and are flushed; large copies stream with nt-stores.
void PmemMemcpyPersist(ThreadContext& cpu, Addr dst, const void* src, size_t len);

// pmem_memset_persist.
void PmemMemsetPersist(ThreadContext& cpu, Addr dst, int c, size_t len);

// pmem_memcpy_nodrain: like the above without the trailing drain (callers
// batch several copies and drain once).
void PmemMemcpyNodrain(ThreadContext& cpu, Addr dst, const void* src, size_t len);

}  // namespace pmemsim

#endif  // SRC_API_PMEM_H_
