// A persistent key-value store on CCEH — the paper's §4.1 workload as an
// application. Loads a dataset, serves lookups, then demonstrates the
// speculative helper-thread prefetcher speeding up the insert path.
//
//   $ ./build/examples/kv_store [keys]

#include <cstdio>
#include <cstdlib>

#include "src/core/platform.h"
#include "src/cpu/scheduler.h"
#include "src/datastores/cceh.h"
#include "src/prefetch/helper_thread.h"
#include "src/workload/ycsb.h"

using namespace pmemsim;

int main(int argc, char** argv) {
  const uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;

  std::unique_ptr<System> system = MakeG1System(/*optane_dimm_count=*/6);
  ThreadContext& cpu = system->CreateThread();
  Cceh store(system.get(), cpu, /*initial_depth=*/6, MemoryKind::kOptane);

  // Load phase: n unique keys in random order (the YCSB load).
  const std::vector<uint64_t> keys = MakeLoadKeys(n, /*seed=*/2026);
  Cycles t0 = cpu.clock();
  for (const uint64_t key : keys) {
    store.Insert(cpu, key, key * 31);
  }
  std::printf("loaded %llu keys: %.0f cycles/insert, %llu segments, depth %u\n",
              static_cast<unsigned long long>(n),
              static_cast<double>(cpu.clock() - t0) / static_cast<double>(n),
              static_cast<unsigned long long>(store.segment_count()), store.global_depth());

  // Read phase: zipfian lookups (a skewed production mix).
  const std::vector<uint64_t> reqs = MakeRequestKeys(keys, n / 2, KeyDistribution::kZipfian, 7);
  t0 = cpu.clock();
  uint64_t hits = 0;
  for (const uint64_t key : reqs) {
    uint64_t value = 0;
    hits += store.Get(cpu, key, &value) && value == key * 31 ? 1 : 0;
  }
  std::printf("served %zu lookups (%llu ok): %.0f cycles/lookup\n", reqs.size(),
              static_cast<unsigned long long>(hits),
              static_cast<double>(cpu.clock() - t0) / static_cast<double>(reqs.size()));

  // Insert another batch with a helper thread prefetching the probe path
  // (paper §4.1): the helper replays only the index-walk loads, depth 8.
  const std::vector<uint64_t> more = MakeLoadKeys(n / 2, /*seed=*/99);
  std::vector<uint64_t> shifted(more.size());
  for (size_t i = 0; i < more.size(); ++i) {
    shifted[i] = more[i] + n;  // fresh keys
  }
  ThreadContext& worker = system->CreateThread();
  ThreadContext& helper = system->CreateSmtSibling(worker);
  const Cycles w0 = worker.clock();
  SpeculativeHelperPair pair(
      &worker, &helper, shifted.size(),
      [&](ThreadContext& ctx, size_t i) { store.Insert(ctx, shifted[i], shifted[i]); },
      [&](ThreadContext& ctx, size_t i) { store.PrefetchProbePath(ctx, shifted[i]); });
  std::vector<SimJob> jobs;
  pair.AppendJobs(jobs);
  Scheduler::Run(jobs);
  std::printf("helper-prefetched inserts: %.0f cycles/insert\n",
              static_cast<double>(worker.clock() - w0) / static_cast<double>(shifted.size()));

  std::printf("\ncounters: %s\n", system->counters().ToString().c_str());
  return 0;
}
