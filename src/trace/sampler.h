// Interval sampler: the simulator's `ipmwatch -i <interval>`.
//
// The paper's methodology is *interval* observation — media/controller
// counters sampled once per second, with every buffering inference (read
// buffer size, write-buffer eviction regimes, G1's periodic write-back)
// derived from how WA/RA and traffic evolve over a run, not from end-of-run
// totals. The sampler reproduces that view in simulated time: every
// `interval_cycles` of the global simulated clock it snapshots the counter
// *deltas* accumulated since the previous boundary, plus instantaneous
// occupancy gauges (WPQ entries, buffer residency) supplied by the owner.
//
// Attribution contract: an event is charged to the interval that was open
// when the sampler next observed the clock, so the per-interval series is a
// partition of the run — the field-wise sum over all samples (including the
// closing partial interval emitted by Finalize) equals the global counter
// delta over the sampled span *exactly*. Tests and scripts/check_samples.py
// gate on that identity.
//
// Driving: Scheduler::Run(jobs, &sampler) calls AdvanceTo with the global
// minimum job clock before every step, so boundaries are observed in
// simulated-time order regardless of thread interleaving; single-threaded
// loops may call AdvanceTo directly. Idle intervals emit zero-delta samples
// (ipmwatch prints idle seconds too); a run crossing more than kMaxSamples
// boundaries drops the excess and counts them in dropped_samples().

#ifndef SRC_TRACE_SAMPLER_H_
#define SRC_TRACE_SAMPLER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/trace/counters.h"

namespace pmemsim {

class JsonWriter;

// Instantaneous occupancy values read at each interval boundary — gauges, as
// opposed to the monotone counter deltas. Filled by the gauge source the
// owner installs (typically summing over a System's DIMMs/WPQs).
struct SampleGauges {
  double wpq_occupancy = 0.0;       // entries across the Optane WPQs
  uint64_t read_buffer_entries = 0; // occupied on-DIMM read-buffer slots
  uint64_t write_buffer_entries = 0;// occupied on-DIMM write-buffer entries
  uint64_t serve_queue_depth = 0;   // serving-tier request-queue occupancy
};

struct Sample {
  uint64_t index = 0;   // interval number, 0-based
  Cycles t_begin = 0;   // inclusive start of the interval
  Cycles t_end = 0;     // exclusive end (the boundary, or Finalize's clock)
  bool partial = false; // closing interval cut short by Finalize
  Counters delta;       // counter deltas accumulated within the interval
  SampleGauges gauges;  // read at t_end
};

class Sampler {
 public:
  using GaugeFn = std::function<SampleGauges(Cycles now)>;
  using SampleFn = std::function<void(const Sample&)>;

  // `counters` is the source snapshot (usually the System's registry-bound
  // aggregate; CounterDelta Sync()s it on every read). `interval_cycles` > 0.
  // `origin` anchors the boundary grid: intervals are [origin + k*interval,
  // origin + (k+1)*interval), so a series opened mid-run (the serve phase)
  // aligns its samples with other series sharing the origin.
  Sampler(const Counters* counters, Cycles interval_cycles, Cycles origin = 0);

  // Installs the gauge source consulted at each boundary (optional).
  void SetGaugeSource(GaugeFn fn) { gauge_fn_ = std::move(fn); }
  // Streaming consumer called as each sample is emitted (pmemsim_watch's
  // per-interval rows). The sample is also retained in samples().
  void SetOnSample(SampleFn fn) { on_sample_ = std::move(fn); }

  // Observes the simulated clock: emits one sample per interval boundary in
  // [previous boundary, now]. Must be called with non-decreasing `now`.
  void AdvanceTo(Cycles now);

  // Closes the series at `end`: emits the final (possibly partial) interval
  // so the sample deltas partition the whole run. Idempotent per boundary —
  // calling with `end` on an exact boundary emits no empty extra sample
  // unless residual deltas arrived after the last AdvanceTo.
  void Finalize(Cycles end);

  const std::vector<Sample>& samples() const { return samples_; }
  uint64_t dropped_samples() const { return dropped_; }
  Cycles interval_cycles() const { return interval_; }

  // Field-wise sum of every emitted sample's delta (== the global counter
  // delta over the sampled span; the invariant CI gates on).
  Counters SumOfDeltas() const;

  // JSON array of samples: [{"index":..,"t_begin":..,"t_end":..,
  // "partial":..,"delta":{counters...},"gauges":{...}}, ...].
  void ToJson(JsonWriter& w) const;
  std::string ToJson() const;

 private:
  // Bounds memory for pathological interval/run-length combinations.
  static constexpr uint64_t kMaxSamples = 1ull << 20;

  void Emit(Cycles t_end, bool partial);

  const Counters* counters_;
  Cycles interval_;
  Cycles last_boundary_ = 0;   // t_begin of the currently open interval
  Cycles next_boundary_;
  CounterDelta delta_;
  uint64_t index_ = 0;
  uint64_t dropped_ = 0;
  bool finalized_ = false;
  GaugeFn gauge_fn_;
  SampleFn on_sample_;
  std::vector<Sample> samples_;
};

}  // namespace pmemsim

#endif  // SRC_TRACE_SAMPLER_H_
