file(REMOVE_RECURSE
  "CMakeFiles/ablation_eadr.dir/ablation_eadr.cc.o"
  "CMakeFiles/ablation_eadr.dir/ablation_eadr.cc.o.d"
  "ablation_eadr"
  "ablation_eadr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_eadr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
