// On-DIMM read buffer (paper §3.1).
//
// Findings modeled here:
//  * capacity of 16 KB (G1) / 22 KB (G2), organized as 256 B XPLine entries;
//  * FIFO eviction: a working set one entry larger than capacity misses on
//    every access (the sharp RA jump in Fig. 2);
//  * exclusivity with the CPU caches: delivering a cacheline to the iMC
//    invalidates that cacheline's copy in the buffer, so re-reading a line
//    always costs a fresh 256 B media fetch — RA never drops below 1.
//
// The buffer is a FIFO ring of XPLine slots; each slot carries a 4-bit valid
// mask (one bit per cacheline).

#ifndef SRC_BUFFERS_READ_BUFFER_H_
#define SRC_BUFFERS_READ_BUFFER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"
#include "src/trace/counters.h"

namespace pmemsim {

// Replacement policy knobs (the shipped hardware behaves FIFO + exclusive,
// per §3.1; the alternatives exist for the ablation benches).
enum class ReadBufferEviction : uint8_t { kFifo, kLru };

class ReadBuffer {
 public:
  ReadBuffer(uint64_t capacity_bytes, Counters* counters,
             ReadBufferEviction eviction = ReadBufferEviction::kFifo, bool exclusive = true);

  // True if the cacheline at `line_addr` can be served from the buffer.
  bool Probe(Addr line_addr) const;

  // Serves the cacheline: on hit, clears its valid bit (exclusive delivery)
  // and returns true. On miss returns false.
  bool ConsumeLine(Addr line_addr);

  // Installs (or refreshes) the XPLine containing `addr` with all four
  // cachelines valid, FIFO-evicting the oldest slot if the ring is full.
  void Fill(Addr addr);

  // True if the XPLine containing `addr` occupies a slot (any valid bits).
  bool ContainsXPLine(Addr addr) const;

  // Removes the XPLine containing `addr` (used when a write transitions the
  // XPLine to the write buffer, paper §3.3). Returns true if it was present.
  bool Remove(Addr addr);

  void Clear();

  size_t capacity_entries() const { return static_cast<size_t>(slots_.size()); }
  size_t occupied_entries() const { return map_.size(); }

 private:
  struct Slot {
    Addr xpline = 0;
    uint64_t last_touch = 0;  // LRU bookkeeping
    uint8_t valid_mask = 0;   // bit i = cacheline i valid
    bool in_use = false;
  };

  size_t PickVictim();

  Counters* counters_;
  ReadBufferEviction eviction_;
  bool exclusive_;
  std::vector<Slot> slots_;
  size_t next_fill_ = 0;   // FIFO cursor
  uint64_t touch_tick_ = 0;
  std::unordered_map<Addr, size_t> map_;  // XPLine base -> slot index
};

}  // namespace pmemsim

#endif  // SRC_BUFFERS_READ_BUFFER_H_
