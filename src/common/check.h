// Lightweight invariant-checking macros.
//
// The simulator is deterministic; invariant violations are programming errors,
// so CHECK aborts with a message rather than throwing. DCHECK compiles away in
// release builds and is used on hot paths.

#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define PMEMSIM_CHECK(cond)                                                              \
  do {                                                                                   \
    if (!(cond)) {                                                                       \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__, __LINE__, #cond);    \
      std::abort();                                                                      \
    }                                                                                    \
  } while (0)

#define PMEMSIM_CHECK_MSG(cond, msg)                                                     \
  do {                                                                                   \
    if (!(cond)) {                                                                       \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__, __LINE__, #cond, \
                   (msg));                                                               \
      std::abort();                                                                      \
    }                                                                                    \
  } while (0)

#ifdef NDEBUG
#define PMEMSIM_DCHECK(cond) \
  do {                       \
  } while (0)
#else
#define PMEMSIM_DCHECK(cond) PMEMSIM_CHECK(cond)
#endif

#endif  // SRC_COMMON_CHECK_H_
