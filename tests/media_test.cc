// Tests for src/media: port scheduling (bandwidth/contention model) and the
// AIT translation cache.

#include <gtest/gtest.h>

#include "src/media/ait.h"
#include "src/media/xpoint_media.h"

namespace pmemsim {
namespace {

TEST(PortPoolTest, UncontendedLatency) {
  PortPool pool(2, 100);
  EXPECT_EQ(pool.Schedule(1000), 1100u);
}

TEST(PortPoolTest, ParallelPortsOverlap) {
  PortPool pool(2, 100);
  EXPECT_EQ(pool.Schedule(0), 100u);
  EXPECT_EQ(pool.Schedule(0), 100u);   // second port
  EXPECT_EQ(pool.Schedule(0), 200u);   // queues behind the first
}

TEST(PortPoolTest, BandwidthCeiling) {
  PortPool pool(2, 100);
  Cycles last = 0;
  for (int i = 0; i < 10; ++i) {
    last = pool.Schedule(0);
  }
  // 10 requests over 2 ports at 100 cycles each: the last finishes at 500.
  EXPECT_EQ(last, 500u);
}

TEST(PortPoolTest, IdlePortsRecover) {
  PortPool pool(1, 100);
  pool.Schedule(0);
  // Arriving long after the port freed: no queueing.
  EXPECT_EQ(pool.Schedule(10000), 10100u);
}

TEST(PortPoolTest, PipelinedCompletion) {
  PortPool pool(1, 50);
  // Port occupied 50 cycles, completion 200 after start.
  EXPECT_EQ(pool.Schedule(0, 200), 200u);
  EXPECT_EQ(pool.Schedule(0, 200), 250u);  // starts at 50
}

TEST(PortPoolTest, EarliestFreeAndReset) {
  PortPool pool(2, 100);
  pool.Schedule(0);
  EXPECT_EQ(pool.EarliestFree(), 0u);  // second port still free
  pool.Schedule(0);
  EXPECT_EQ(pool.EarliestFree(), 100u);
  pool.Reset();
  EXPECT_EQ(pool.EarliestFree(), 0u);
}

TEST(AitTest, HitAfterMiss) {
  Counters counters;
  Ait ait(/*coverage=*/kPageSize * 4, /*penalty=*/100, &counters);
  EXPECT_EQ(ait.Access(0), 100u);
  EXPECT_EQ(ait.Access(64), 0u);  // same page
  EXPECT_EQ(counters.ait_misses, 1u);
  EXPECT_EQ(counters.ait_hits, 1u);
}

TEST(AitTest, CapacityEviction) {
  Counters counters;
  Ait ait(kPageSize * 2, 100, &counters);
  ASSERT_EQ(ait.capacity(), 2u);
  ait.Access(0 * kPageSize);
  ait.Access(1 * kPageSize);
  ait.Access(2 * kPageSize);  // evicts page 0 (LRU)
  EXPECT_EQ(ait.Access(0 * kPageSize), 100u);
}

TEST(AitTest, LruOrderRespected) {
  Counters counters;
  Ait ait(kPageSize * 2, 100, &counters);
  ait.Access(0 * kPageSize);
  ait.Access(1 * kPageSize);
  ait.Access(0 * kPageSize);  // refresh page 0
  ait.Access(2 * kPageSize);  // evicts page 1
  EXPECT_EQ(ait.Access(0 * kPageSize), 0u);
  EXPECT_EQ(ait.Access(1 * kPageSize), 100u);
}

TEST(AitTest, CoverageWorkingSetProperty) {
  // Working sets within coverage eventually stop missing; beyond, they miss
  // on every revisit (the 16 MB knee mechanism of Fig. 8).
  Counters counters;
  const uint64_t coverage = kPageSize * 64;
  Ait ait(coverage, 100, &counters);
  for (int pass = 0; pass < 3; ++pass) {
    for (uint64_t p = 0; p < 64; ++p) {
      ait.Access(p * kPageSize);
    }
  }
  EXPECT_EQ(counters.ait_misses, 64u);  // only the cold pass misses

  counters = Counters{};
  Ait small(kPageSize * 16, 100, &counters);
  for (int pass = 0; pass < 3; ++pass) {
    for (uint64_t p = 0; p < 64; ++p) {
      small.Access(p * kPageSize);
    }
  }
  EXPECT_EQ(counters.ait_misses, 3u * 64u);  // sequential sweep thrashes LRU
}

TEST(XpointMediaTest, CountsBytes) {
  Counters counters;
  XpointMedia media(2, 100, 1, 300, &counters);
  media.ReadXPLine(0, 0);
  media.WriteXPLine(256, 0);
  EXPECT_EQ(counters.media_read_bytes, kXPLineSize);
  EXPECT_EQ(counters.media_write_bytes, kXPLineSize);
}

TEST(XpointMediaTest, WriteConcurrencyLimited) {
  Counters counters;
  XpointMedia media(4, 100, 1, 300, &counters);
  EXPECT_EQ(media.WriteXPLine(0, 0), 300u);
  EXPECT_EQ(media.WriteXPLine(0, 0), 600u);  // single write port serializes
  EXPECT_EQ(media.ReadXPLine(0, 0), 100u);   // reads unaffected
}

}  // namespace
}  // namespace pmemsim
