// CounterRegistry: named, stable Counters scopes — one per writer (each
// Optane DIMM with its WPQ, the DRAM channel, the iMC itself, each simulated
// thread). This is the simulator's analogue of per-DIMM `ipmwatch` output:
// the paper's §2.4 counter deltas exist per DIMM on real hardware, and model
// regressions localized to one DIMM or one thread are invisible in a global
// sum.
//
// Writers increment only their own scope; the system-wide view is an
// aggregation over scopes (see Counters::BindAggregate), so per-scope values
// sum exactly to the global by construction.

#ifndef SRC_TRACE_REGISTRY_H_
#define SRC_TRACE_REGISTRY_H_

#include <deque>
#include <string>

#include "src/trace/counters.h"

namespace pmemsim {

class CounterRegistry {
 public:
  struct Scope {
    std::string name;
    Counters counters;
  };

  CounterRegistry() = default;
  CounterRegistry(const CounterRegistry&) = delete;
  CounterRegistry& operator=(const CounterRegistry&) = delete;

  // Creates a scope and returns its Counters (address stable for the
  // registry's lifetime). Names must be unique within the registry.
  Counters* CreateScope(const std::string& name);

  // nullptr when no scope has that name.
  const Counters* FindScope(const std::string& name) const;

  size_t scope_count() const { return scopes_.size(); }
  const std::deque<Scope>& scopes() const { return scopes_; }

  Counters Aggregate() const;
  // Sums all scopes into `*out`'s fields (preserving any aggregate binding
  // `*out` carries — assignment copies values only).
  void AggregateInto(Counters* out) const;

  // {"scope_name": {counters...}, ...} in creation order.
  void ToJson(JsonWriter& w) const;
  std::string ToJson() const;

 private:
  // deque: scope Counters addresses must survive later CreateScope calls.
  std::deque<Scope> scopes_;
};

}  // namespace pmemsim

#endif  // SRC_TRACE_REGISTRY_H_
