file(REMOVE_RECURSE
  "CMakeFiles/dimm_test.dir/dimm_test.cc.o"
  "CMakeFiles/dimm_test.dir/dimm_test.cc.o.d"
  "dimm_test"
  "dimm_test.pdb"
  "dimm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
