// Crash-consistency workloads: the structures crashcheck can interrupt.
//
// A CrashWorkload drives one persistent structure while keeping enough
// bookkeeping to validate a durable image afterwards:
//  - Setup() builds the structure (its persists are recorded by the tracker
//    but are not crash points — call it before StartEvents);
//  - Run() performs the operations and may be abandoned mid-flight by a
//    CrashSignal thrown from the injector;
//  - Validate() checks the structure's recovery contract against a fresh
//    System holding the materialized durable image.
//
// Bookkeeping discipline: an operation is recorded as *attempted* before the
// call and promoted to *acked* only after the call returns, so at any crash
// point the expectation splits operations exactly into must-be-visible and
// may-be-partial.

#ifndef SRC_CRASH_WORKLOADS_H_
#define SRC_CRASH_WORKLOADS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/system.h"
#include "src/cpu/thread_context.h"
#include "src/crash/recovery_validator.h"

namespace pmemsim {

struct CrashWorkloadOptions {
  uint64_t ops = 2000;  // inserts (cceh/fastfair/flatlog) or log writes (redo/undo)
  uint64_t seed = 1;
  // Deliberately drop the slot-commit persist barrier (cceh only): the
  // validator must then report violations — crashcheck's self-test.
  bool break_persist = false;
};

class CrashWorkload {
 public:
  virtual ~CrashWorkload() = default;

  virtual const char* name() const = 0;
  virtual void Setup(System& system, ThreadContext& ctx) = 0;
  virtual void Run(ThreadContext& ctx) = 0;
  virtual void Validate(System& fresh, ThreadContext& ctx, ValidationReport* report) = 0;

  // Acked operations at the time Run() stopped (for reporting).
  virtual uint64_t acked_ops() const = 0;

  // Factory: store is one of StoreNames(). Returns nullptr for unknown names.
  static std::unique_ptr<CrashWorkload> Create(std::string_view store,
                                               const CrashWorkloadOptions& opts);
  static std::vector<std::string> StoreNames();
};

}  // namespace pmemsim

#endif  // SRC_CRASH_WORKLOADS_H_
