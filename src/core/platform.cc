#include "src/core/platform.h"

namespace pmemsim {

std::unique_ptr<System> MakeG1System(uint32_t optane_dimm_count) {
  return std::make_unique<System>(G1Platform(), optane_dimm_count);
}

std::unique_ptr<System> MakeG2System(uint32_t optane_dimm_count) {
  return std::make_unique<System>(G2Platform(), optane_dimm_count);
}

std::unique_ptr<System> MakeSystem(Generation gen, uint32_t optane_dimm_count) {
  return std::make_unique<System>(PlatformFor(gen), optane_dimm_count);
}

void SetPrefetchers(ThreadContext& ctx, bool adjacent, bool dcu, bool stream) {
  ctx.hierarchy().prefetch_engine().SetEnabled(adjacent, dcu, stream);
}

}  // namespace pmemsim
