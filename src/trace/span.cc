#include "src/trace/span.h"

#include "src/common/check.h"

namespace pmemsim {

void SpanRecorder::Record(uint32_t client, uint8_t op, Cycles arrival, Cycles admit, Cycles start,
                          Cycles end, const Cycles* stage_deltas) {
  PMEMSIM_CHECK_MSG(arrival <= admit && admit <= start && start <= end,
                    "span lifecycle out of order");
  if (spans_.size() >= kMaxSpans) {
    ++dropped_;
    return;
  }
  RequestSpan span;
  span.shard = shard_;
  span.client = client;
  span.op = op;
  span.arrival = arrival;
  span.admit = admit;
  span.start = start;
  span.end = end;
  Cycles staged = 0;
  for (int s = 0; s < AttributionCollector::kStageCount; ++s) {
    span.stages[s] = stage_deltas[s];
    staged += stage_deltas[s];
  }
  const Cycles service = end - start;
  PMEMSIM_CHECK_MSG(staged <= service, "attributed stages exceed the request's service time");
  // Unattributed service time (AddCompute advances, issue costs outside the
  // per-access identity) lands in core, making sum(stages) == service exact.
  span.stages[AttributionCollector::kCore] += service - staged;
  spans_.push_back(span);
}

}  // namespace pmemsim
