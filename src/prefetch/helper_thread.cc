#include "src/prefetch/helper_thread.h"

#include "src/common/check.h"

namespace pmemsim {

SpeculativeHelperPair::SpeculativeHelperPair(ThreadContext* worker, ThreadContext* helper,
                                             size_t count, WorkFn work, WorkFn prefetch,
                                             HelperConfig config)
    : worker_(worker),
      helper_(helper),
      count_(count),
      work_(std::move(work)),
      prefetch_(std::move(prefetch)),
      config_(config) {
  PMEMSIM_CHECK(worker != nullptr);
  PMEMSIM_CHECK(helper != nullptr);
  PMEMSIM_CHECK(config_.prefetch_depth > 0);
  worker_->SetSmtScale(config_.smt_scale);
  helper_->SetSmtScale(config_.smt_scale);
}

StepResult SpeculativeHelperPair::WorkerStep() {
  if (worker_index_ >= count_) {
    worker_->SetSmtScale(1.0);
    return StepResult::kDone;
  }
  work_(*worker_, worker_index_);
  ++worker_index_;
  return StepResult::kProgress;
}

StepResult SpeculativeHelperPair::HelperStep() {
  if (helper_index_ >= count_ || worker_index_ >= count_) {
    helper_->SetSmtScale(1.0);
    return StepResult::kDone;
  }
  if (helper_index_ >= worker_index_ + config_.prefetch_depth) {
    // Depth cap reached: idle alongside the worker.
    helper_->AdvanceTo(worker_->clock() + 1);
    return StepResult::kProgress;
  }
  if (helper_index_ < worker_index_) {
    // Fell behind: prefetching already-visited keys is useless; skip ahead.
    helper_index_ = worker_index_;
  }
  prefetch_(*helper_, helper_index_);
  ++helper_index_;
  return StepResult::kProgress;
}

void SpeculativeHelperPair::AppendJobs(std::vector<SimJob>& jobs) {
  jobs.push_back({worker_, [this] { return WorkerStep(); }});
  jobs.push_back({helper_, [this] { return HelperStep(); }});
}

}  // namespace pmemsim
