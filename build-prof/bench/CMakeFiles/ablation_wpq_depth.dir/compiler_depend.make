# Empty compiler generated dependencies file for ablation_wpq_depth.
# This may be replaced when dependencies are built.
