#include "src/crash/crash_injector.h"

namespace pmemsim {

const char* CrashEventKindName(CrashEventKind kind) {
  switch (kind) {
    case CrashEventKind::kWpqAccept:
      return "wpq_accept";
    case CrashEventKind::kWpqDrain:
      return "wpq_drain";
    case CrashEventKind::kFence:
      return "fence";
  }
  return "unknown";
}

void CrashInjector::OnEvent(CrashEventKind kind, Cycles crash_now) {
  const uint64_t index = count_++;
  if (armed_ && !fired_ && index == target_) {
    fired_ = true;
    fired_kind_ = kind;
    crash_now_ = crash_now;
    throw CrashSignal{};
  }
}

}  // namespace pmemsim
