#include "src/imc/memory_controller.h"

#include <string>

#include "src/common/check.h"
#include "src/trace/registry.h"
#include "src/trace/trace_events.h"

namespace pmemsim {

MemoryController::MemoryController(const PlatformConfig& platform, CounterRegistry* registry,
                                   uint32_t optane_dimm_count)
    : MemoryController(platform, registry, /*counters=*/nullptr, optane_dimm_count) {}

MemoryController::MemoryController(const PlatformConfig& platform, Counters* counters,
                                   uint32_t optane_dimm_count)
    : MemoryController(platform, /*registry=*/nullptr, counters, optane_dimm_count) {}

MemoryController::MemoryController(const PlatformConfig& platform, CounterRegistry* registry,
                                   Counters* counters, uint32_t optane_dimm_count)
    : config_(platform.imc) {
  PMEMSIM_CHECK(registry != nullptr || counters != nullptr);
  counters_ = registry != nullptr ? registry->CreateScope("imc") : counters;
  const uint32_t n = optane_dimm_count ? optane_dimm_count : config_.optane_dimm_count;
  PMEMSIM_CHECK(n > 0);
  const WpqConfig wpq_config{config_.wpq_entries, config_.wpq_accept_latency,
                             config_.wpq_drain_latency};
  TraceEmitter& trace = TraceEmitter::Global();
  for (uint32_t i = 0; i < n; ++i) {
    const std::string scope_name = "optane_dimm" + std::to_string(i);
    Counters* scope = registry != nullptr ? registry->CreateScope(scope_name) : counters;
    optane_scope_counters_.push_back(scope);
    optane_dimms_.push_back(
        std::make_unique<OptaneDimm>(platform.optane, scope, 0xD1337 + i * 0x9E37));
    optane_wpqs_.push_back(std::make_unique<Wpq>(wpq_config, scope));
    if (trace.enabled()) {
      const int track = trace.RegisterTrack(scope_name);
      optane_dimms_[i]->SetTraceTrack(track);
      optane_wpqs_[i]->SetTraceTrack(track);
    }
  }
  Counters* dram_scope = registry != nullptr ? registry->CreateScope("dram") : counters;
  dram_scope_counters_ = dram_scope;
  dram_dimm_ = std::make_unique<DramDimm>(platform.dram, dram_scope);
  dram_wpq_ = std::make_unique<Wpq>(wpq_config, dram_scope);
  if (optane_dimms_.size() == 1) {
    sole_optane_ = optane_dimms_[0].get();
  }
}

size_t MemoryController::OptaneIndexFor(Addr addr) const {
  return static_cast<size_t>((addr / config_.interleave_granularity) % optane_dimms_.size());
}

McReadResult MemoryController::Read(Addr addr, Cycles now, NodeId requester, bool ordered) {
  AccessRecord rec;
  ReadInto(addr, now, requester, ordered, &rec);
  McReadResult result;
  result.complete_at = rec.complete_at;
  result.stalled_for = rec.stalled_for;
  result.stages = rec.mem;
  return result;
}

void MemoryController::ReadInto(Addr addr, Cycles now, NodeId requester, bool ordered,
                                AccessRecord* out) {
  const Cycles hop = requester == home_node_ ? 0 : config_.numa_hop_latency;
  const Cycles issue = now + hop + config_.read_overhead;

  if (addr >= kDramAddressBase) {
    dram_dimm_->ReadInto(addr, issue, ordered, out);
  } else {
    OptaneDimm* dimm =
        sole_optane_ != nullptr ? sole_optane_ : optane_dimms_[OptaneIndexFor(addr)].get();
    dimm->ReadInto(addr, issue, ordered, out);
  }
  out->complete_at += hop;
  // The iMC's own share: overhead + both hop crossings (the DIMM's stages
  // already sum to its span, so the whole record sums to complete_at - now).
  out->mem.imc_transit = 2 * hop + config_.read_overhead;
}

McWriteResult MemoryController::Write(Addr addr, Cycles now, NodeId requester) {
  const Cycles hop = requester == home_node_ ? 0 : config_.numa_hop_latency;
  const Cycles arrival = now + hop;

  Wpq* wpq = nullptr;
  Dimm* dimm = nullptr;
  if (KindOf(addr) == MemoryKind::kDram) {
    wpq = dram_wpq_.get();
    dimm = dram_dimm_.get();
  } else {
    const size_t i = OptaneIndexFor(addr);
    wpq = optane_wpqs_[i].get();
    dimm = optane_dimms_[i].get();
  }

  Cycles effective_arrival = arrival;
  const Cycles same_line_until = dimm->SameLineStallUntil(addr);
  if (same_line_until > effective_arrival) {
    counters_->wpq_stall_cycles += same_line_until - effective_arrival;
    effective_arrival = same_line_until;
  }
  const Wpq::AcceptResult accept = wpq->Accept(effective_arrival, /*dimm_backpressure_until=*/0);
  const DimmWriteResult w = dimm->Write(addr, accept.drained_at);
  if (w.backpressure_until > accept.drained_at) {
    wpq->DelayDrain(w.backpressure_until);
  }
  McWriteResult result;
  // The store's persist point includes the interconnect crossing.
  result.accepted_at = accept.accepted_at + hop;
  result.visible_at = w.visible_at;
  if (persist_hook_ && KindOf(addr) == MemoryKind::kOptane) {
    persist_hook_(CacheLineBase(addr), now, result.accepted_at, accept.drained_at);
  }
  return result;
}

void MemoryController::Reset() {
  for (auto& d : optane_dimms_) {
    d->Reset();
  }
  for (auto& q : optane_wpqs_) {
    q->Reset();
  }
  dram_dimm_->Reset();
  dram_wpq_->Reset();
}

}  // namespace pmemsim
