#include "src/datastores/flat_log.h"

#include <cstring>

#include "src/common/check.h"

namespace pmemsim {

FlatLog::FlatLog(System* system, PmRegion log_region) : system_(system), region_(log_region) {
  PMEMSIM_CHECK(system != nullptr);
  PMEMSIM_CHECK(region_.kind == MemoryKind::kOptane);
  PMEMSIM_CHECK(IsXPLineAligned(region_.base));
  PMEMSIM_CHECK(region_.size >= kXPLineSize);
  staged_.reserve(kXPLineSize);
}

bool FlatLog::Put(ThreadContext& ctx, uint64_t key, const void* value, uint32_t len) {
  PMEMSIM_CHECK(len > 0 && len <= kMaxPayload);
  if (next_slot_ + kSlotsPerBatch > capacity_slots() &&
      next_slot_ + staged_.size() / kSlotSize >= capacity_slots()) {
    return false;  // log full
  }

  uint8_t slot[kSlotSize] = {};
  std::memcpy(slot, &key, sizeof(key));
  std::memcpy(slot + 8, &len, sizeof(len));
  const uint32_t magic = kRecordMagic;
  std::memcpy(slot + 12, &magic, sizeof(magic));
  std::memcpy(slot + 16, value, len);

  // Stage in DRAM (cheap cached stores into a reusable buffer — modeled as
  // pure compute since the staging buffer is core-resident).
  ctx.AddCompute(6);
  const uint64_t slot_index = next_slot_ + staged_.size() / kSlotSize;
  staged_.insert(staged_.end(), slot, slot + kSlotSize);
  index_[key] = SlotAddr(slot_index);
  ++appended_;

  if (staged_.size() == kXPLineSize) {
    FlushBatch(ctx);
  }
  return true;
}

void FlatLog::FlushBatch(ThreadContext& ctx) {
  if (staged_.empty()) {
    return;
  }
  // One full-XPLine nt-store burst + a single fence for the whole batch.
  staged_.resize(kXPLineSize, 0);  // pad a partial batch
  ctx.NtWrite(SlotAddr(next_slot_), staged_.data(), staged_.size());
  ctx.Sfence();
  next_slot_ += kSlotsPerBatch;
  staged_.clear();
}

void FlatLog::Flush(ThreadContext& ctx) { FlushBatch(ctx); }

bool FlatLog::Get(ThreadContext& ctx, uint64_t key, void* out, uint32_t* len_out) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    return false;
  }
  uint8_t slot[kSlotSize];
  // Staged (not yet flushed) records still resolve: the index points at the
  // future slot address and the backing store only holds flushed data, so
  // serve staged records from the DRAM buffer.
  const uint64_t slot_index = (it->second - region_.base) / kSlotSize;
  if (slot_index >= next_slot_) {
    const uint64_t offset = (slot_index - next_slot_) * kSlotSize;
    PMEMSIM_CHECK(offset < staged_.size());
    std::memcpy(slot, staged_.data() + offset, kSlotSize);
    ctx.AddCompute(4);
  } else {
    ctx.Read(it->second, slot, sizeof(slot));
  }
  uint32_t len = 0;
  std::memcpy(&len, slot + 8, sizeof(len));
  PMEMSIM_CHECK(len <= kMaxPayload);
  if (len_out != nullptr) {
    *len_out = len;
  }
  std::memcpy(out, slot + 16, len);
  return true;
}

size_t FlatLog::Recover(ThreadContext& ctx) {
  index_.clear();
  staged_.clear();
  size_t indexed = 0;
  uint64_t slot_index = 0;
  for (; slot_index < capacity_slots(); ++slot_index) {
    uint8_t slot[kSlotSize];
    ctx.Read(SlotAddr(slot_index), slot, sizeof(slot));
    uint32_t magic = 0, len = 0;
    std::memcpy(&magic, slot + 12, sizeof(magic));
    std::memcpy(&len, slot + 8, sizeof(len));
    if (magic != kRecordMagic || len == 0 || len > kMaxPayload) {
      // Padding or unwritten space. Batches are contiguous, but padding slots
      // inside a flushed batch must be skipped rather than ending the scan:
      // only stop at an XPLine whose first slot is unwritten.
      if (slot_index % kSlotsPerBatch == 0) {
        break;
      }
      continue;
    }
    uint64_t key = 0;
    std::memcpy(&key, slot, sizeof(key));
    index_[key] = SlotAddr(slot_index);  // later records overwrite: newest wins
    ++indexed;
  }
  next_slot_ = AlignUp(slot_index, kSlotsPerBatch);
  return indexed;
}

}  // namespace pmemsim
