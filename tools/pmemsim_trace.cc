// pmemsim_trace: record, replay, and inspect .pmtrace operation traces.
//
//   pmemsim_trace record --scenario=<name> --out=<file.pmtrace> [...]
//   pmemsim_trace replay --in=<file.pmtrace> [--stats_json=<path>] [--jobs=N]
//   pmemsim_trace info   --in=<file.pmtrace>
//
// Scenarios (one sweep point = one trace segment = one System run):
//   fig04              random partial nt-stores vs WSS (the Figure 4 loop)
//   log_store          persistent log append with rotating commit counters
//   circular_writes    Raft-style circular log rewrites
//   cacheline_versions per-cacheline version stamping
//
// The determinism contract: `replay` of a recorded file reproduces the
// recording run's --stats_json byte-for-byte, at any --jobs level on either
// side. Both paths build their stats rows through the same EmitRow code from
// the same inputs (segment metadata + counter snapshots at markers + final
// counters + end clock), and the replayer verifies every op's clock against
// the recorded stream, so a divergence fails loudly rather than producing
// subtly different rows.
//
// Exit codes: 0 success, 1 replay divergence or point failure, 2 usage error
// or unreadable/invalid/mismatched trace file.

#include <cinttypes>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "bench/sweep_runner.h"
#include "src/common/random.h"
#include "src/core/platform.h"
#include "src/cpu/scheduler.h"
#include "src/trace/recorder.h"
#include "src/trace/replayer.h"
#include "src/workload/log_patterns.h"

namespace {

using namespace pmemsim;

using Meta = std::vector<std::pair<std::string, std::string>>;

uint64_t MetaU64(const TraceSegment& seg, const std::string& key) {
  const std::string* v = seg.FindMeta(key);
  if (v == nullptr) {
    throw std::runtime_error("segment '" + seg.label + "' missing metadata key '" + key + "'");
  }
  return std::strtoull(v->c_str(), nullptr, 10);
}

std::string MetaStr(const TraceSegment& seg, const std::string& key) {
  const std::string* v = seg.FindMeta(key);
  return v == nullptr ? std::string() : *v;
}

// Counter snapshots gathered identically by the record and replay paths.
struct Snapshots {
  std::vector<Counters> at_marker;
  Counters final_counters;
  Cycles end_clock = 0;
  uint64_t records = 0;
};

// ---------------------------------------------------------------------------
// Scenario execution (record side). Each scenario reads its parameters from
// the segment metadata — the single source of truth shared with replay.
// ---------------------------------------------------------------------------

using MarkFn = std::function<void(ThreadContext&, uint32_t)>;

// The Figure 4 measurement loop: random partial nt-stores over a working set,
// warm-up then a marker then the measured phase (bench/fig04_write_buffer_hit
// keeps the same constants; the marker makes the phase split replayable).
Cycles RunFig04(System& system, const TraceSegment& seg, const MarkFn& mark) {
  const uint64_t wss_bytes = KiB(MetaU64(seg, "wss_kb"));
  ThreadContext& ctx = system.CreateThread();
  SetPrefetchers(ctx, false, false, false);

  const PmRegion region = system.AllocatePm(wss_bytes, kXPLineSize);
  const uint64_t xplines = wss_bytes / kXPLineSize;
  Rng rng(0xBEEF + wss_bytes);
  auto run_writes = [&](uint64_t writes) {
    for (uint64_t i = 0; i < writes; ++i) {
      const uint64_t xp = rng.NextBelow(xplines);
      const uint64_t cl = rng.NextBelow(kLinesPerXPLine);
      ctx.NtStore64(region.base + xp * kXPLineSize + cl * kCacheLineSize, i);
    }
    ctx.Sfence();
  };

  run_writes(4 * xplines + 512);
  mark(ctx, 0);
  run_writes(16 * xplines + 2048);
  return ctx.clock();
}

LogPatternOptions OptionsFromMeta(const TraceSegment& seg) {
  LogPatternOptions opts;
  opts.ops = MetaU64(seg, "ops");
  opts.seed = MetaU64(seg, "seed");
  const std::string scenario = MetaStr(seg, "scenario");
  if (scenario == "log_store") {
    opts.value_bytes = MetaU64(seg, "value_bytes");
    opts.counter_slots = MetaU64(seg, "counter_slots");
  } else if (scenario == "circular_writes") {
    opts.write_bytes = MetaU64(seg, "write_bytes");
    opts.num_buffers = MetaU64(seg, "num_buffers");
  } else if (scenario == "cacheline_versions") {
    opts.buffer_bytes = KiB(MetaU64(seg, "buffer_kb"));
  }
  return opts;
}

// Multi-threaded workload run: one private workload instance per thread
// (disjoint regions from the bump allocator), interleaved one operation at a
// time by the clock-ordered Scheduler.
Cycles RunLogPattern(System& system, const TraceSegment& seg, const MarkFn& mark) {
  const std::string scenario = MetaStr(seg, "scenario");
  const uint64_t threads = MetaU64(seg, "threads");
  const LogPatternOptions opts = OptionsFromMeta(seg);

  std::vector<std::unique_ptr<LogPatternWorkload>> workloads;
  std::vector<ThreadContext*> ctxs;
  for (uint64_t t = 0; t < threads; ++t) {
    auto w = LogPatternWorkload::Create(scenario, opts);
    if (w == nullptr) {
      throw std::runtime_error("unknown workload scenario '" + scenario + "'");
    }
    w->Setup(system);
    workloads.push_back(std::move(w));
    ctxs.push_back(&system.CreateThread());
  }

  mark(*ctxs[0], 0);
  if (threads == 1) {
    workloads[0]->Run(*ctxs[0]);
  } else {
    std::vector<SimJob> jobs;
    for (uint64_t t = 0; t < threads; ++t) {
      LogPatternWorkload* w = workloads[t].get();
      ThreadContext* ctx = ctxs[t];
      uint64_t i = 0;
      jobs.push_back({ctx, [w, ctx, i]() mutable {
                        w->RunOne(*ctx, i);
                        return ++i < w->ops() ? StepResult::kProgress : StepResult::kDone;
                      }});
    }
    Scheduler::Run(jobs);
  }

  Cycles end = 0;
  for (const ThreadContext* ctx : ctxs) {
    end = std::max(end, ctx->clock());
  }
  return end;
}

Cycles RunScenarioPoint(System& system, const TraceSegment& seg, const MarkFn& mark) {
  const std::string scenario = MetaStr(seg, "scenario");
  if (scenario == "fig04") {
    return RunFig04(system, seg, mark);
  }
  return RunLogPattern(system, seg, mark);
}

// ---------------------------------------------------------------------------
// Stats emission — shared verbatim by record and replay.
// ---------------------------------------------------------------------------

const char* CsvHeader(const std::string& scenario) {
  if (scenario == "fig04") {
    return "scenario,wss_kb,hit_ratio,records,end_clock\n";
  }
  if (scenario == "log_store") {
    return "scenario,counter_slots,threads,ops,write_amplification,buffer_hit_ratio,records,"
           "end_clock\n";
  }
  if (scenario == "circular_writes") {
    return "scenario,write_bytes,num_buffers,write_amplification,buffer_hit_ratio,records,"
           "end_clock\n";
  }
  return "scenario,buffer_kb,write_amplification,buffer_hit_ratio,records,end_clock\n";
}

void EmitRow(pmemsim_bench::SweepPoint& point, const TraceSegment& seg, const Snapshots& snaps) {
  const std::string scenario = MetaStr(seg, "scenario");
  if (scenario == "fig04") {
    if (snaps.at_marker.empty()) {
      throw std::runtime_error("fig04 segment carries no phase marker");
    }
    const uint64_t wss_kb = MetaU64(seg, "wss_kb");
    const double ratio = (snaps.final_counters - snaps.at_marker[0]).WriteBufferHitRatio();
    point.Printf("fig04,%" PRIu64 ",%.3f,%" PRIu64 ",%" PRIu64 "\n", wss_kb, ratio, snaps.records,
                 static_cast<uint64_t>(snaps.end_clock));
    point.AddRow()
        .Set("scenario", "fig04")
        .Set("wss_kb", wss_kb)
        .Set("hit_ratio", ratio)
        .Set("records", snaps.records)
        .Set("end_clock", static_cast<uint64_t>(snaps.end_clock));
    return;
  }
  const double wa = snaps.final_counters.WriteAmplification();
  const double hit = snaps.final_counters.WriteBufferHitRatio();
  if (scenario == "log_store") {
    const uint64_t slots = MetaU64(seg, "counter_slots");
    const uint64_t threads = MetaU64(seg, "threads");
    const uint64_t ops = MetaU64(seg, "ops");
    point.Printf("log_store,%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%.3f,%.3f,%" PRIu64 ",%" PRIu64
                 "\n",
                 slots, threads, ops, wa, hit, snaps.records,
                 static_cast<uint64_t>(snaps.end_clock));
    point.AddRow()
        .Set("scenario", "log_store")
        .Set("counter_slots", slots)
        .Set("threads", threads)
        .Set("ops", ops)
        .Set("write_amplification", wa)
        .Set("buffer_hit_ratio", hit)
        .Set("records", snaps.records)
        .Set("end_clock", static_cast<uint64_t>(snaps.end_clock));
  } else if (scenario == "circular_writes") {
    const uint64_t write_bytes = MetaU64(seg, "write_bytes");
    const uint64_t num_buffers = MetaU64(seg, "num_buffers");
    point.Printf("circular_writes,%" PRIu64 ",%" PRIu64 ",%.3f,%.3f,%" PRIu64 ",%" PRIu64 "\n",
                 write_bytes, num_buffers, wa, hit, snaps.records,
                 static_cast<uint64_t>(snaps.end_clock));
    point.AddRow()
        .Set("scenario", "circular_writes")
        .Set("write_bytes", write_bytes)
        .Set("num_buffers", num_buffers)
        .Set("write_amplification", wa)
        .Set("buffer_hit_ratio", hit)
        .Set("records", snaps.records)
        .Set("end_clock", static_cast<uint64_t>(snaps.end_clock));
  } else if (scenario == "cacheline_versions") {
    const uint64_t buffer_kb = MetaU64(seg, "buffer_kb");
    point.Printf("cacheline_versions,%" PRIu64 ",%.3f,%.3f,%" PRIu64 ",%" PRIu64 "\n", buffer_kb,
                 wa, hit, snaps.records, static_cast<uint64_t>(snaps.end_clock));
    point.AddRow()
        .Set("scenario", "cacheline_versions")
        .Set("buffer_kb", buffer_kb)
        .Set("write_amplification", wa)
        .Set("buffer_hit_ratio", hit)
        .Set("records", snaps.records)
        .Set("end_clock", static_cast<uint64_t>(snaps.end_clock));
  } else {
    throw std::runtime_error("unknown scenario '" + scenario + "' in segment metadata");
  }
}

// ---------------------------------------------------------------------------
// Point-spec construction (record side).
// ---------------------------------------------------------------------------

struct PointSpec {
  std::string label;
  Meta meta;
};

std::vector<PointSpec> BuildPoints(const std::string& scenario, const pmemsim_bench::Flags& flags) {
  std::vector<PointSpec> points;
  const uint64_t seed = flags.GetU64("seed", 1);
  auto u64s = [](uint64_t v) { return std::to_string(v); };
  if (scenario == "fig04") {
    const uint64_t max_kb = flags.GetU64("max_kb", 8);
    for (uint64_t kb = 2; kb <= max_kb; ++kb) {
      points.push_back({"fig04/" + u64s(kb) + "kb",
                        {{"scenario", "fig04"}, {"wss_kb", u64s(kb)}, {"prefetchers", "off"}}});
    }
  } else if (scenario == "log_store") {
    const uint64_t ops = flags.GetU64("ops", 400);
    const uint64_t threads = flags.GetU64("threads", 2);
    const uint64_t value_bytes = flags.GetU64("value_bytes", 128);
    for (const uint64_t slots : {uint64_t{1}, uint64_t{2}, uint64_t{8}}) {
      points.push_back({"log_store/slots" + u64s(slots),
                        {{"scenario", "log_store"},
                         {"counter_slots", u64s(slots)},
                         {"threads", u64s(threads)},
                         {"ops", u64s(ops)},
                         {"value_bytes", u64s(value_bytes)},
                         {"seed", u64s(seed)}}});
    }
  } else if (scenario == "circular_writes") {
    const uint64_t ops = flags.GetU64("ops", 300);
    const uint64_t num_buffers = flags.GetU64("buffers", 16);
    for (const uint64_t wb : {uint64_t{64}, uint64_t{256}, uint64_t{1024}}) {
      points.push_back({"circular_writes/" + u64s(wb) + "b",
                        {{"scenario", "circular_writes"},
                         {"write_bytes", u64s(wb)},
                         {"num_buffers", u64s(num_buffers)},
                         {"threads", "1"},
                         {"ops", u64s(ops)},
                         {"seed", u64s(seed)}}});
    }
  } else if (scenario == "cacheline_versions") {
    const uint64_t ops = flags.GetU64("ops", 40);
    for (const uint64_t kb : {uint64_t{4}, uint64_t{16}}) {
      points.push_back({"cacheline_versions/" + u64s(kb) + "kb",
                        {{"scenario", "cacheline_versions"},
                         {"buffer_kb", u64s(kb)},
                         {"threads", "1"},
                         {"ops", u64s(ops)},
                         {"seed", u64s(seed)}}});
    }
  }
  return points;
}

// ---------------------------------------------------------------------------
// Subcommands.
// ---------------------------------------------------------------------------

void PrintUsage() {
  std::printf(
      "usage: pmemsim_trace <record|replay|info> [flags]\n"
      "  record --scenario=fig04|log_store|circular_writes|cacheline_versions\n"
      "         --out=<file.pmtrace> [--platform=g1|g2|g2-eadr] [--dimms=1]\n"
      "         [--max_kb=8] [--ops=N] [--threads=N] [--value_bytes=128]\n"
      "         [--buffers=16] [--seed=1] [--jobs=N]\n"
      "  replay --in=<file.pmtrace> [--jobs=N]\n"
      "  info   --in=<file.pmtrace>\n%s",
      pmemsim_bench::kTelemetryFlagsHelp);
}

int RunRecord(pmemsim_bench::Flags& flags) {
  const std::string scenario = flags.Get("scenario", "");
  const std::string out_path = flags.Get("out", "");
  const std::string platform_name = flags.Get("platform", "g1");
  const uint32_t dimms = static_cast<uint32_t>(flags.GetU64("dimms", 1));
  const auto config = PlatformByName(platform_name);
  if (config == std::nullopt) {
    pmemsim_bench::Flags::BadValue("platform", platform_name, "g1, g2, or g2-eadr");
  }
  const std::vector<PointSpec> points = BuildPoints(scenario, flags);
  if (points.empty()) {
    pmemsim_bench::Flags::BadValue("scenario", scenario,
                                   "fig04, log_store, circular_writes, or cacheline_versions");
  }
  if (out_path.empty()) {
    std::fprintf(stderr, "error: record requires --out=<file.pmtrace>\n");
    return 2;
  }

  pmemsim_bench::BenchReport report(flags, "pmemsim_trace");
  pmemsim_bench::SweepRunner runner(flags);
  flags.RejectUnknown();

  TraceFile file;
  file.header.fingerprint = PlatformFingerprint(*config, dimms);
  file.header.platform_name = platform_name;
  file.header.generation = config->generation;
  file.header.eadr = config->eadr_enabled;
  file.header.dimm_count = dimms;
  file.header.scenario = scenario;
  file.segments.resize(points.size());

  // Header text is subcommand-neutral so record and replay stdout (and the
  // stats reports) are comparable byte-for-byte.
  std::printf("# pmemsim_trace — scenario %s on %s\n", scenario.c_str(), platform_name.c_str());
  std::printf("%s", CsvHeader(scenario));
  for (size_t i = 0; i < points.size(); ++i) {
    // Each point owns segment slot `i`: the trace file layout is submission
    // order, byte-identical at any --jobs, exactly like the stats rows.
    runner.Add(points[i].label, [&, i](pmemsim_bench::SweepPoint& point) {
      TraceSegment spec;  // carries label+meta into the shared scenario code
      spec.label = points[i].label;
      spec.meta = points[i].meta;

      System system(*config, dimms);
      TraceRecorder recorder;
      system.SetTraceRecorder(&recorder);

      Snapshots snaps;
      const Cycles end = RunScenarioPoint(system, spec, [&](ThreadContext& ctx, uint32_t id) {
        ctx.TraceMarker(id);
        snaps.at_marker.push_back(system.counters());
      });
      snaps.final_counters = system.counters();
      snaps.end_clock = end;
      snaps.records = recorder.record_count();

      file.segments[i] = recorder.Take(points[i].label, points[i].meta);
      EmitRow(point, spec, snaps);
    });
  }
  const int failed = runner.Run(report);
  if (failed != 0) {
    std::fprintf(stderr, "error: %d point(s) failed; trace not written\n", failed);
    report.Finish();
    return 1;
  }

  std::string error;
  if (!file.WriteTo(out_path, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s: %zu segment(s), %" PRIu64 " records\n", out_path.c_str(),
               file.segments.size(), file.TotalRecords());
  return report.Finish();
}

// Loads --in and validates its header against the current build's platform
// presets. Exits 2 directly on any file-level problem.
TraceFile LoadOrDie(pmemsim_bench::Flags& flags, PlatformConfig* config_out) {
  const std::string in_path = flags.Get("in", "");
  if (in_path.empty()) {
    std::fprintf(stderr, "error: --in=<file.pmtrace> is required\n");
    std::exit(2);
  }
  TraceFile file;
  std::string error;
  if (!TraceFile::Load(in_path, &file, &error)) {
    std::fprintf(stderr, "error: %s: %s\n", in_path.c_str(), error.c_str());
    std::exit(2);
  }
  const auto config = PlatformByName(file.header.platform_name);
  if (config == std::nullopt) {
    std::fprintf(stderr, "error: %s: unknown platform '%s' in header\n", in_path.c_str(),
                 file.header.platform_name.c_str());
    std::exit(2);
  }
  const uint64_t fp = PlatformFingerprint(*config, file.header.dimm_count);
  if (fp != file.header.fingerprint) {
    std::fprintf(stderr,
                 "error: %s: platform fingerprint mismatch (file %016" PRIx64 ", this build "
                 "%016" PRIx64 ") — the timing model changed since recording\n",
                 in_path.c_str(), file.header.fingerprint, fp);
    std::exit(2);
  }
  if (config_out != nullptr) {
    *config_out = *config;
  }
  return file;
}

int RunReplay(pmemsim_bench::Flags& flags) {
  PlatformConfig config;
  const TraceFile file = LoadOrDie(flags, &config);

  pmemsim_bench::BenchReport report(flags, "pmemsim_trace");
  pmemsim_bench::SweepRunner runner(flags);
  flags.RejectUnknown();

  std::printf("# pmemsim_trace — scenario %s on %s\n", file.header.scenario.c_str(),
              file.header.platform_name.c_str());
  std::printf("%s", CsvHeader(file.header.scenario));
  for (const TraceSegment& seg : file.segments) {
    runner.Add(seg.label, [&](pmemsim_bench::SweepPoint& point) {
      System system(config, file.header.dimm_count);
      Snapshots snaps;
      ReplayOptions opts;
      opts.on_marker = [&](uint32_t, uint32_t) { snaps.at_marker.push_back(system.counters()); };
      if (MetaStr(seg, "prefetchers") == "off") {
        opts.on_thread_created = [](ThreadContext& ctx, uint32_t) {
          SetPrefetchers(ctx, false, false, false);
        };
      }
      const ReplayResult res = ReplaySegment(seg, system, opts);
      if (!res.ok) {
        throw std::runtime_error(res.error);
      }
      snaps.final_counters = system.counters();
      snaps.end_clock = res.end_clock;
      snaps.records = res.records_applied;
      EmitRow(point, seg, snaps);
    });
  }
  return runner.Finish(report);
}

int RunInfo(pmemsim_bench::Flags& flags) {
  const TraceFile file = LoadOrDie(flags, nullptr);
  flags.RejectUnknown();

  const TraceFileHeader& h = file.header;
  std::printf("format_version: %u\n", h.version);
  std::printf("platform: %s (gen %s%s), %u dimm(s)\n", h.platform_name.c_str(),
              h.generation == Generation::kG1 ? "G1" : "G2", h.eadr ? ", eADR" : "",
              h.dimm_count);
  std::printf("fingerprint: %016" PRIx64 "\n", h.fingerprint);
  std::printf("scenario: %s\n", h.scenario.c_str());
  std::printf("segments: %zu, total records: %" PRIu64 "\n", file.segments.size(),
              file.TotalRecords());
  for (const TraceSegment& seg : file.segments) {
    uint64_t op_histo[static_cast<size_t>(TraceOp::kOpCount)] = {};
    for (const TraceRecord& rec : seg.records) {
      ++op_histo[static_cast<size_t>(rec.op)];
    }
    std::printf("  segment '%s': %zu thread(s), %zu records\n", seg.label.c_str(),
                seg.thread_nodes.size(), seg.records.size());
    for (const auto& [key, value] : seg.meta) {
      std::printf("    meta %s=%s\n", key.c_str(), value.c_str());
    }
    for (size_t op = 0; op < static_cast<size_t>(TraceOp::kOpCount); ++op) {
      if (op_histo[op] != 0) {
        std::printf("    op %-16s %" PRIu64 "\n", TraceOpName(static_cast<TraceOp>(op)),
                    op_histo[op]);
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::string(argv[1]) == "--help") {
    PrintUsage();
    return argc < 2 ? 2 : 0;
  }
  const std::string cmd = argv[1];
  pmemsim_bench::Flags flags(argc - 1, argv + 1);
  if (flags.Has("help")) {
    PrintUsage();
    return 0;
  }
  if (cmd == "record") {
    return RunRecord(flags);
  }
  if (cmd == "replay") {
    return RunReplay(flags);
  }
  if (cmd == "info") {
    return RunInfo(flags);
  }
  std::fprintf(stderr, "error: unknown subcommand '%s' (record|replay|info)\n", cmd.c_str());
  PrintUsage();
  return 2;
}
