// Engine-throughput harness (not a paper figure): measures how many simulated
// operations per wall-clock second the cycle-level engine sustains on the
// hot-path workload shapes — sequential loads, random loads over an
// AIT-overflowing working set, dependent pointer chasing, ntstore+fence
// streams, and a mixed CCEH insert/lookup phase. The sweep scale of the
// figure grid is bounded by this number, so the harness writes a trajectory
// baseline (BENCH_hotpath.json at the repo root) that CI's perf-smoke job
// gates against scripts/check_perf.py with a generous regression margin.
//
// Output: CSV  workload,ops,wall_ms,sim_mops_per_sec,cycles_per_op
//
// Per-layer context goes into the JSON rows: simulated cycles, stall-cycle
// shares (RAP + WPQ), and the media/AIT traffic the ops generated — enough to
// see *where* simulated time and wall time go when the trajectory moves.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/core/platform.h"
#include "src/datastores/cceh.h"
#include "src/datastores/chase_list.h"
#include "src/trace/counters.h"

namespace {

using namespace pmemsim;

struct WorkloadResult {
  uint64_t ops = 0;
  double wall_sec = 0.0;
  Cycles sim_cycles = 0;
  Counters delta;
};

using WorkloadFn = std::function<WorkloadResult(uint64_t ops)>;

double Now() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Sequential 64 B-strided loads over a read-buffer/L3-exceeding region.
WorkloadResult RunSeqLoad(uint64_t ops) {
  auto system = MakeG1System(/*optane_dimm_count=*/1);
  ThreadContext& ctx = system->CreateThread();
  const PmRegion region = system->AllocatePm(MiB(16), kXPLineSize);
  const uint64_t lines = region.size / kCacheLineSize;

  WorkloadResult r;
  CounterDelta delta(&system->counters());
  const Cycles start_cycles = ctx.clock();
  const double t0 = Now();
  for (uint64_t i = 0; i < ops; ++i) {
    ctx.Load64(region.base + (i % lines) * kCacheLineSize);
  }
  r.wall_sec = Now() - t0;
  r.ops = ops;
  r.sim_cycles = ctx.clock() - start_cycles;
  r.delta = delta.Delta();
  return r;
}

// Uniform random loads over 64 MiB: past AIT coverage and L3, so nearly every
// op walks cache miss -> AIT -> media -> read-buffer fill.
WorkloadResult RunRandLoad(uint64_t ops) {
  auto system = MakeG1System(/*optane_dimm_count=*/1);
  ThreadContext& ctx = system->CreateThread();
  SetPrefetchers(ctx, false, false, false);
  const PmRegion region = system->AllocatePm(MiB(64), kXPLineSize);
  const uint64_t lines = region.size / kCacheLineSize;
  Rng rng(0x5EED0001);

  WorkloadResult r;
  CounterDelta delta(&system->counters());
  const Cycles start_cycles = ctx.clock();
  const double t0 = Now();
  // Software-pipelined: the next address is known one op ahead (it only
  // depends on the RNG), so hint it before issuing the current load and the
  // host-side fetches of the next op's set blocks and page data overlap this
  // op's simulation work. The RNG sequence — and thus every simulated result
  // — is identical to the straight-line loop.
  Addr next = region.base + rng.NextBelow(lines) * kCacheLineSize;
  for (uint64_t i = 0; i < ops; ++i) {
    const Addr addr = next;
    next = region.base + rng.NextBelow(lines) * kCacheLineSize;
    ctx.HostPrefetchHint(next);
    ctx.Load64(addr);
  }
  r.wall_sec = Now() - t0;
  r.ops = ops;
  r.sim_cycles = ctx.clock() - start_cycles;
  r.delta = delta.Delta();
  return r;
}

// Dependent pointer chase over a random-permutation circular list (Fig. 8's
// element shape): no MLP, every element is a full-latency round trip.
WorkloadResult RunChase(uint64_t ops) {
  auto system = MakeG1System(/*optane_dimm_count=*/1);
  ThreadContext& ctx = system->CreateThread();
  SetPrefetchers(ctx, false, false, false);
  const PmRegion region = system->AllocatePm(MiB(32), kXPLineSize);
  ChaseList list(system.get(), region, /*sequential=*/false, /*seed=*/0x5EED0002);

  WorkloadResult r;
  CounterDelta delta(&system->counters());
  const Cycles start_cycles = ctx.clock();
  const double t0 = Now();
  list.TraverseRead(ctx, ops);
  r.wall_sec = Now() - t0;
  r.ops = ops;
  r.sim_cycles = ctx.clock() - start_cycles;
  r.delta = delta.Delta();
  return r;
}

// Random partial nt-stores with an sfence every 4: the write-buffer /
// WPQ / media-write-port pipeline, WSS past the buffer knee.
WorkloadResult RunNtStore(uint64_t ops) {
  auto system = MakeG1System(/*optane_dimm_count=*/1);
  ThreadContext& ctx = system->CreateThread();
  const PmRegion region = system->AllocatePm(MiB(1), kXPLineSize);
  const uint64_t lines = region.size / kCacheLineSize;
  Rng rng(0x5EED0003);

  WorkloadResult r;
  CounterDelta delta(&system->counters());
  const Cycles start_cycles = ctx.clock();
  const double t0 = Now();
  for (uint64_t i = 0; i < ops; ++i) {
    ctx.NtStore64(region.base + rng.NextBelow(lines) * kCacheLineSize, i);
    if ((i & 3) == 3) {
      ctx.Sfence();
    }
  }
  ctx.Sfence();
  r.wall_sec = Now() - t0;
  r.ops = ops;
  r.sim_cycles = ctx.clock() - start_cycles;
  r.delta = delta.Delta();
  return r;
}

// Mixed CCEH phase: 1 insert : 3 lookups, uniform keys — the §4.1 index
// workload; exercises every layer at once (caches, buffers, AIT, WPQ).
WorkloadResult RunCcehMixed(uint64_t ops) {
  auto system = MakeG1System(/*optane_dimm_count=*/1);
  ThreadContext& ctx = system->CreateThread();
  Cceh table(system.get(), ctx, /*initial_depth=*/4, MemoryKind::kOptane);
  Rng rng(0x5EED0004);

  WorkloadResult r;
  CounterDelta delta(&system->counters());
  const Cycles start_cycles = ctx.clock();
  const double t0 = Now();
  uint64_t next_key = 1;
  for (uint64_t i = 0; i < ops; ++i) {
    if ((i & 3) == 0) {
      table.Insert(ctx, next_key++, i);
    } else {
      uint64_t value = 0;
      (void)table.Get(ctx, 1 + rng.NextBelow(next_key), &value);
    }
  }
  r.wall_sec = Now() - t0;
  r.ops = ops;
  r.sim_cycles = ctx.clock() - start_cycles;
  r.delta = delta.Delta();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  pmemsim_bench::Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::printf(
        "usage: perf_hotpath [--quick] [--ops_scale=<pct>] [--workload=<name>] [--reps=<n>]\n"
        "  --quick          1/16 of the default op counts (the CI perf-smoke mode)\n"
        "  --ops_scale=N    scale default op counts to N%% (overrides --quick)\n"
        "  --workload=name  run only one of: seq_load rand_load chase ntstore cceh_mixed\n"
        "  --reps=N         repetitions per workload (default 5), interleaved\n"
        "                   round-robin so ambient host load drifts across all\n"
        "                   workloads equally; reported throughput is the median\n"
        "  --stats_json defaults to BENCH_hotpath.json (pass --stats_json= to disable)\n%s",
        pmemsim_bench::kTelemetryFlagsHelp);
    return 0;
  }
  const bool quick = flags.Has("quick");
  const uint64_t ops_scale = flags.GetU64("ops_scale", quick ? 100 / 16 : 100);
  const uint64_t reps = std::max<uint64_t>(1, flags.GetU64("reps", 5));
  const std::string only = flags.Get("workload", "");
  pmemsim_bench::BenchReport report(flags, "perf_hotpath", "BENCH_hotpath.json");
  flags.RejectUnknown();

  struct Spec {
    const char* name;
    uint64_t default_ops;
    WorkloadFn fn;
  };
  const std::vector<Spec> specs = {
      {"seq_load", 4'000'000, RunSeqLoad},       {"rand_load", 2'000'000, RunRandLoad},
      {"chase", 1'000'000, RunChase},            {"ntstore", 2'000'000, RunNtStore},
      {"cceh_mixed", 1'000'000, RunCcehMixed},
  };
  if (!only.empty()) {
    bool known = false;
    for (const Spec& s : specs) {
      known |= only == s.name;
    }
    if (!known) {
      pmemsim_bench::Flags::BadValue("workload", only, "a known workload name");
    }
  }

  pmemsim_bench::PrintHeader("perf_hotpath", "simulated-ops-per-wall-second engine throughput");
  std::printf("workload,ops,wall_ms,sim_mops_per_sec,cycles_per_op\n");
  int rc = 0;

  // Interleaved repetitions: run rep 0 of every workload, then rep 1, and so
  // on, so a host-load drift over the run biases every workload's sample set
  // the same way instead of landing wholly on the last workloads. Reported
  // wall time (and thus throughput) is the per-workload median; everything
  // simulated must be bit-identical across reps and is checked below.
  std::vector<std::vector<WorkloadResult>> samples(specs.size());
  for (uint64_t rep = 0; rep < reps; ++rep) {
    for (size_t si = 0; si < specs.size(); ++si) {
      if (!only.empty() && only != specs[si].name) {
        continue;
      }
      const uint64_t ops = std::max<uint64_t>(1, specs[si].default_ops * ops_scale / 100);
      samples[si].push_back(specs[si].fn(ops));
    }
  }

  for (size_t si = 0; si < specs.size(); ++si) {
    const Spec& spec = specs[si];
    if (samples[si].empty()) {
      continue;
    }
    const WorkloadResult& r = samples[si].front();
    bool bad = r.ops == 0;
    std::vector<double> walls;
    for (const WorkloadResult& s : samples[si]) {
      bad |= s.wall_sec <= 0.0;
      if (s.sim_cycles != r.sim_cycles) {
        std::fprintf(stderr, "error: workload %s is nondeterministic across reps (%llu vs %llu)\n",
                     spec.name, static_cast<unsigned long long>(s.sim_cycles),
                     static_cast<unsigned long long>(r.sim_cycles));
        bad = true;
      }
      walls.push_back(s.wall_sec);
    }
    if (bad) {
      std::fprintf(stderr, "error: workload %s measured nothing\n", spec.name);
      rc = 1;
      continue;
    }
    std::sort(walls.begin(), walls.end());
    const double wall_sec = walls.size() % 2 == 1
                                ? walls[walls.size() / 2]
                                : 0.5 * (walls[walls.size() / 2 - 1] + walls[walls.size() / 2]);
    const double mops = static_cast<double>(r.ops) / wall_sec / 1e6;
    const double cycles_per_op =
        static_cast<double>(r.sim_cycles) / static_cast<double>(r.ops);
    std::printf("%s,%llu,%.1f,%.3f,%.1f\n", spec.name, static_cast<unsigned long long>(r.ops),
                wall_sec * 1e3, mops, cycles_per_op);
    const double sim_cycles = static_cast<double>(r.sim_cycles);
    report.AddRow()
        .Set("workload", spec.name)
        .Set("ops", r.ops)
        .Set("reps", reps)
        .Set("wall_ms", wall_sec * 1e3)
        .Set("sim_mops_per_sec", mops)
        .Set("sim_cycles", r.sim_cycles)
        .Set("cycles_per_op", cycles_per_op)
        .Set("rap_stall_share", sim_cycles > 0
                                    ? static_cast<double>(r.delta.rap_stall_cycles) / sim_cycles
                                    : 0.0)
        .Set("wpq_stall_share", sim_cycles > 0
                                    ? static_cast<double>(r.delta.wpq_stall_cycles) / sim_cycles
                                    : 0.0)
        .Set("media_read_bytes", r.delta.media_read_bytes)
        .Set("media_write_bytes", r.delta.media_write_bytes)
        .Set("ait_misses", r.delta.ait_misses)
        .Set("read_buffer_hit_ratio", r.delta.ReadBufferHitRatio())
        .Set("write_buffer_hit_ratio", r.delta.WriteBufferHitRatio());
  }
  const int finish_rc = report.Finish();
  return rc != 0 ? rc : finish_rc;
}
