file(REMOVE_RECURSE
  "CMakeFiles/persistent_log.dir/persistent_log.cc.o"
  "CMakeFiles/persistent_log.dir/persistent_log.cc.o.d"
  "persistent_log"
  "persistent_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistent_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
