#include "src/trace/counters.h"

#include <cstdio>

#include "src/trace/json.h"
#include "src/trace/registry.h"

namespace pmemsim {

namespace {
// Applies `op(lhs_field, rhs_field)` across every counter field, keeping the
// subtraction/addition code in one place so new fields can't be missed in one
// of the operators.
template <typename Op>
void ForEachFieldPair(Counters& lhs, const Counters& rhs, Op op) {
#define PMEMSIM_PAIR_FIELD(name) op(lhs.name, rhs.name);
  PMEMSIM_COUNTER_FIELDS(PMEMSIM_PAIR_FIELD)
#undef PMEMSIM_PAIR_FIELD
}
}  // namespace

Counters::Counters(const Counters& other) {
  ForEachFieldPair(*this, other, [](uint64_t& a, const uint64_t& b) { a = b; });
}

Counters& Counters::operator=(const Counters& other) {
  ForEachFieldPair(*this, other, [](uint64_t& a, const uint64_t& b) { a = b; });
  return *this;
}

Counters Counters::operator-(const Counters& rhs) const {
  Counters out = *this;
  ForEachFieldPair(out, rhs, [](uint64_t& a, const uint64_t& b) { a -= b; });
  return out;
}

Counters& Counters::operator+=(const Counters& rhs) {
  ForEachFieldPair(*this, rhs, [](uint64_t& a, const uint64_t& b) { a += b; });
  return *this;
}

bool Counters::operator==(const Counters& rhs) const {
  bool equal = true;
  ForEachFieldPair(const_cast<Counters&>(*this), rhs,
                   [&equal](const uint64_t& a, const uint64_t& b) { equal = equal && a == b; });
  return equal;
}

void Counters::BindAggregate(const CounterRegistry* registry) { aggregate_source_ = registry; }

void Counters::Sync() const {
  if (aggregate_source_ == nullptr) {
    return;
  }
  // Logically const: re-materializes the cached sum over scopes.
  aggregate_source_->AggregateInto(const_cast<Counters*>(this));
}

std::string Counters::ToString() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "imc r/w: %llu/%llu B, media r/w: %llu/%llu B (RA=%.2f WA=%.2f), "
                "rdbuf h/m: %llu/%llu, wrbuf h/m/e: %llu/%llu/%llu, ait h/m: %llu/%llu",
                static_cast<unsigned long long>(imc_read_bytes),
                static_cast<unsigned long long>(imc_write_bytes),
                static_cast<unsigned long long>(media_read_bytes),
                static_cast<unsigned long long>(media_write_bytes), ReadAmplification(),
                WriteAmplification(), static_cast<unsigned long long>(read_buffer_hits),
                static_cast<unsigned long long>(read_buffer_misses),
                static_cast<unsigned long long>(write_buffer_hits),
                static_cast<unsigned long long>(write_buffer_misses),
                static_cast<unsigned long long>(write_buffer_evictions),
                static_cast<unsigned long long>(ait_hits),
                static_cast<unsigned long long>(ait_misses));
  return buf;
}

void Counters::ToJson(JsonWriter& w) const {
  w.BeginObject();
  ForEachCounterField(*this, [&w](const char* name, uint64_t value) {
    w.Key(name).Value(value);
  });
  w.Key("derived").BeginObject();
  w.Key("write_amplification").Value(WriteAmplification());
  w.Key("read_amplification").Value(ReadAmplification());
  w.Key("write_buffer_hit_ratio").Value(WriteBufferHitRatio());
  w.Key("read_buffer_hit_ratio").Value(ReadBufferHitRatio());
  w.EndObject();
  w.EndObject();
}

std::string Counters::ToJson() const {
  JsonWriter w;
  ToJson(w);
  return w.str();
}

bool CountersFromJson(const JsonValue& v, Counters* out) {
  if (v.type != JsonValue::Type::kObject) {
    return false;
  }
  bool ok = true;
  ForEachCounterField(*out, [&](const char* name, uint64_t& field) {
    const JsonValue* f = v.Find(name);
    if (f == nullptr || f->type != JsonValue::Type::kNumber || !f->is_integer) {
      ok = false;
      return;
    }
    field = f->integer;
  });
  return ok;
}

}  // namespace pmemsim
