// Tests for the FlatStore-style coalescing log.

#include <gtest/gtest.h>

#include <cstring>
#include <unordered_map>

#include "src/core/platform.h"
#include "src/datastores/flat_log.h"
#include "src/trace/counters.h"

namespace pmemsim {
namespace {

struct Fixture {
  std::unique_ptr<System> system = MakeG1System(1);
  ThreadContext* ctx = &system->CreateThread();
  PmRegion log_region = system->AllocatePm(KiB(64), kXPLineSize);
};

TEST(FlatLogTest, PutGetRoundTrip) {
  Fixture f;
  FlatLog log(f.system.get(), f.log_region);
  const char msg[] = "hello, xpline";
  ASSERT_TRUE(log.Put(*f.ctx, 42, msg, sizeof(msg)));
  char out[FlatLog::kMaxPayload];
  uint32_t len = 0;
  ASSERT_TRUE(log.Get(*f.ctx, 42, out, &len));  // staged record readable
  EXPECT_EQ(len, sizeof(msg));
  EXPECT_STREQ(out, msg);
  EXPECT_FALSE(log.Get(*f.ctx, 43, out, &len));
}

TEST(FlatLogTest, NewestRecordWins) {
  Fixture f;
  FlatLog log(f.system.get(), f.log_region);
  for (uint64_t v = 1; v <= 10; ++v) {
    log.Put(*f.ctx, 7, &v, sizeof(v));
  }
  uint64_t out = 0;
  uint32_t len = 0;
  ASSERT_TRUE(log.Get(*f.ctx, 7, &out, &len));
  EXPECT_EQ(out, 10u);
}

TEST(FlatLogTest, BatchesPersistAsFullXPLines) {
  Fixture f;
  FlatLog log(f.system.get(), f.log_region);
  CounterDelta delta(&f.system->counters());
  const uint64_t v = 1;
  for (uint64_t k = 1; k <= 4; ++k) {  // exactly one batch
    log.Put(*f.ctx, k, &v, sizeof(v));
  }
  const Counters d = delta.Delta();
  EXPECT_EQ(d.imc_write_bytes, kXPLineSize);  // one 256 B burst
  EXPECT_EQ(f.ctx->outstanding_persists(), 0u);
}

TEST(FlatLogTest, CoalescedWritesHaveUnitAmplification) {
  Fixture bigger;
  const PmRegion big_log = bigger.system->AllocatePm(MiB(8), kXPLineSize);
  FlatLog log(bigger.system.get(), big_log);
  CounterDelta delta(&bigger.system->counters());
  for (uint64_t k = 1; k <= 60000; ++k) {
    log.Put(*bigger.ctx, k, &k, sizeof(k));
  }
  log.Flush(*bigger.ctx);
  EXPECT_NEAR(delta.Delta().WriteAmplification(), 1.0, 0.05);
}

TEST(FlatLogTest, FlushMakesPartialBatchDurable) {
  Fixture f;
  {
    FlatLog log(f.system.get(), f.log_region);
    const uint64_t v = 0xD00D;
    log.Put(*f.ctx, 9, &v, sizeof(v));
    log.Flush(*f.ctx);
    // Crash after the flush.
  }
  FlatLog recovered(f.system.get(), f.log_region);
  EXPECT_EQ(recovered.Recover(*f.ctx), 1u);
  uint64_t out = 0;
  uint32_t len = 0;
  ASSERT_TRUE(recovered.Get(*f.ctx, 9, &out, &len));
  EXPECT_EQ(out, 0xD00Du);
}

TEST(FlatLogTest, UnflushedRecordsLostOnCrash) {
  Fixture f;
  {
    FlatLog log(f.system.get(), f.log_region);
    const uint64_t v = 1;
    log.Put(*f.ctx, 1, &v, sizeof(v));
    log.Put(*f.ctx, 2, &v, sizeof(v));
    log.Put(*f.ctx, 3, &v, sizeof(v));
    log.Put(*f.ctx, 4, &v, sizeof(v));  // batch flushed here
    log.Put(*f.ctx, 5, &v, sizeof(v));  // staged only
    // Crash without Flush().
  }
  FlatLog recovered(f.system.get(), f.log_region);
  EXPECT_EQ(recovered.Recover(*f.ctx), 4u);
  uint64_t out = 0;
  EXPECT_TRUE(recovered.Get(*f.ctx, 4, &out, nullptr));
  EXPECT_FALSE(recovered.Get(*f.ctx, 5, &out, nullptr));  // the tradeoff
}

TEST(FlatLogTest, RecoveryMatchesReference) {
  Fixture f;
  std::unordered_map<uint64_t, uint64_t> ref;
  {
    FlatLog log(f.system.get(), f.log_region);
    Rng rng(99);
    for (int i = 0; i < 500; ++i) {
      const uint64_t key = 1 + rng.NextBelow(64);
      const uint64_t value = rng.Next();
      log.Put(*f.ctx, key, &value, sizeof(value));
      ref[key] = value;
    }
    log.Flush(*f.ctx);
  }
  FlatLog recovered(f.system.get(), f.log_region);
  recovered.Recover(*f.ctx);
  for (const auto& [key, value] : ref) {
    uint64_t out = 0;
    ASSERT_TRUE(recovered.Get(*f.ctx, key, &out, nullptr)) << key;
    EXPECT_EQ(out, value) << key;
  }
}

TEST(FlatLogTest, AppendAfterRecovery) {
  Fixture f;
  {
    FlatLog log(f.system.get(), f.log_region);
    const uint64_t v = 11;
    log.Put(*f.ctx, 1, &v, sizeof(v));
    log.Flush(*f.ctx);
  }
  FlatLog log(f.system.get(), f.log_region);
  log.Recover(*f.ctx);
  const uint64_t v2 = 22;
  ASSERT_TRUE(log.Put(*f.ctx, 2, &v2, sizeof(v2)));
  log.Flush(*f.ctx);
  uint64_t out = 0;
  EXPECT_TRUE(log.Get(*f.ctx, 1, &out, nullptr));
  EXPECT_EQ(out, 11u);
  EXPECT_TRUE(log.Get(*f.ctx, 2, &out, nullptr));
  EXPECT_EQ(out, 22u);
}

TEST(FlatLogTest, FullLogRejectsAppends) {
  Fixture f;
  const PmRegion tiny = f.system->AllocatePm(kXPLineSize, kXPLineSize);
  FlatLog log(f.system.get(), tiny);
  const uint64_t v = 1;
  for (uint64_t k = 1; k <= 4; ++k) {
    EXPECT_TRUE(log.Put(*f.ctx, k, &v, sizeof(v)));
  }
  EXPECT_FALSE(log.Put(*f.ctx, 5, &v, sizeof(v)));
}

}  // namespace
}  // namespace pmemsim
