#include "src/cache/cache.h"

#include "src/common/check.h"

namespace pmemsim {

SetAssocCache::SetAssocCache(const CacheLevelConfig& config) : config_(config) {
  PMEMSIM_CHECK(config.ways > 0);
  PMEMSIM_CHECK(config.size_bytes >= kCacheLineSize * config.ways);
  sets_ = static_cast<size_t>(config.size_bytes / (kCacheLineSize * config.ways));
  PMEMSIM_CHECK(sets_ > 0);
  ways_.resize(sets_ * config.ways);
}

SetAssocCache::Way* SetAssocCache::Find(Addr line_addr, Cycles now) {
  const Addr line = CacheLineBase(line_addr);
  Way* base = &ways_[SetIndex(line) * config_.ways];
  for (uint32_t i = 0; i < config_.ways; ++i) {
    Way& w = base[i];
    if (w.valid && w.tag == line) {
      if (w.pending_invalidate_at != 0 && now >= w.pending_invalidate_at) {
        w.valid = false;  // the scheduled invalidation has taken effect
        return nullptr;
      }
      return &w;
    }
  }
  return nullptr;
}

const SetAssocCache::Way* SetAssocCache::FindConst(Addr line_addr, Cycles now) const {
  const Addr line = CacheLineBase(line_addr);
  const Way* base = &ways_[SetIndex(line) * config_.ways];
  for (uint32_t i = 0; i < config_.ways; ++i) {
    const Way& w = base[i];
    if (w.valid && w.tag == line) {
      if (w.pending_invalidate_at != 0 && now >= w.pending_invalidate_at) {
        return nullptr;
      }
      return &w;
    }
  }
  return nullptr;
}

bool SetAssocCache::Access(Addr line_addr, Cycles now, bool mark_dirty, bool* was_prefetched,
                           Cycles* available_at) {
  Way* w = Find(line_addr, now);
  if (w == nullptr) {
    if (was_prefetched != nullptr) {
      *was_prefetched = false;
    }
    return false;
  }
  w->lru = ++tick_;
  if (mark_dirty) {
    w->dirty = true;
    // A new store supersedes any scheduled clwb invalidation.
    w->pending_invalidate_at = 0;
  }
  if (was_prefetched != nullptr) {
    *was_prefetched = w->prefetched;
  }
  if (available_at != nullptr) {
    *available_at = w->ready_at > now ? w->ready_at : now;
  }
  w->prefetched = false;
  w->ready_at = 0;
  return true;
}

bool SetAssocCache::Probe(Addr line_addr, Cycles now) const {
  return FindConst(line_addr, now) != nullptr;
}

EvictedLine SetAssocCache::Insert(Addr line_addr, Cycles now, bool dirty, bool prefetched,
                                  Cycles ready_at) {
  const Addr line = CacheLineBase(line_addr);
  Way* base = &ways_[SetIndex(line) * config_.ways];

  // Already present: refresh in place.
  for (uint32_t i = 0; i < config_.ways; ++i) {
    Way& w = base[i];
    if (w.valid && w.tag == line) {
      w.lru = ++tick_;
      w.dirty = w.dirty || dirty;
      w.prefetched = prefetched && w.prefetched;
      w.pending_invalidate_at = 0;
      return {};
    }
  }

  // Pick an invalid way, else the LRU way (expired pending invalidations count
  // as invalid).
  Way* victim = nullptr;
  for (uint32_t i = 0; i < config_.ways; ++i) {
    Way& w = base[i];
    if (!w.valid || (w.pending_invalidate_at != 0 && now >= w.pending_invalidate_at)) {
      victim = &w;
      victim->valid = false;
      break;
    }
  }
  if (victim == nullptr) {
    victim = base;
    for (uint32_t i = 1; i < config_.ways; ++i) {
      if (base[i].lru < victim->lru) {
        victim = &base[i];
      }
    }
  }

  EvictedLine evicted;
  if (victim->valid) {
    evicted = {victim->tag, true, victim->dirty};
  }
  victim->tag = line;
  victim->valid = true;
  victim->dirty = dirty;
  victim->prefetched = prefetched;
  victim->pending_invalidate_at = 0;
  victim->ready_at = ready_at;
  victim->lru = ++tick_;
  return evicted;
}

SetAssocCache::InvalidateResult SetAssocCache::Invalidate(Addr line_addr) {
  // Invalidation is unconditional; pass now=0 so even lines with scheduled
  // invalidations are found.
  const Addr line = CacheLineBase(line_addr);
  Way* base = &ways_[SetIndex(line) * config_.ways];
  for (uint32_t i = 0; i < config_.ways; ++i) {
    Way& w = base[i];
    if (w.valid && w.tag == line) {
      InvalidateResult r{true, w.dirty};
      w.valid = false;
      w.dirty = false;
      w.pending_invalidate_at = 0;
      return r;
    }
  }
  return {};
}

SetAssocCache::InvalidateResult SetAssocCache::WriteBack(Addr line_addr, Cycles invalidate_at,
                                                         bool retain) {
  const Addr line = CacheLineBase(line_addr);
  Way* base = &ways_[SetIndex(line) * config_.ways];
  for (uint32_t i = 0; i < config_.ways; ++i) {
    Way& w = base[i];
    if (w.valid && w.tag == line) {
      InvalidateResult r{true, w.dirty};
      w.dirty = false;
      if (!retain) {
        w.pending_invalidate_at = invalidate_at;
      }
      return r;
    }
  }
  return {};
}

bool SetAssocCache::ConsumePrefetchedFlag(Addr line_addr, Cycles now) {
  Way* w = Find(line_addr, now);
  if (w == nullptr || !w->prefetched) {
    return false;
  }
  w->prefetched = false;
  return true;
}

void SetAssocCache::ApplyPendingInvalidate(Addr line_addr) {
  const Addr line = CacheLineBase(line_addr);
  Way* base = &ways_[SetIndex(line) * config_.ways];
  for (uint32_t i = 0; i < config_.ways; ++i) {
    Way& w = base[i];
    if (w.valid && w.tag == line && w.pending_invalidate_at != 0) {
      w.valid = false;
      w.dirty = false;
      w.pending_invalidate_at = 0;
      return;
    }
  }
}

void SetAssocCache::Clear() {
  for (Way& w : ways_) {
    w = Way{};
  }
}

}  // namespace pmemsim
