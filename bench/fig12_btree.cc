// Figure 12 (paper §4.2): FAST&FAIR-style B+-tree insert throughput and
// latency, in-place shifting (barrier per shift) vs out-of-place redo
// logging, on G1 and G2, single Optane DIMM, 1-9 threads.
//
// Expected shapes (paper): on G1 redo logging wins (~38.8% lower latency,
// ~60.8% higher throughput at low thread counts, the gap narrowing as threads
// contend for Optane bandwidth); on G2 (clwb retains the line, same-line
// persists merge) there is no benefit and a slight slowdown at high thread
// counts from the doubled PM writes.
//
// Output: CSV  gen,mode,threads,cycles_per_insert,mops

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "bench/sweep_runner.h"
#include "src/core/platform.h"
#include "src/cpu/scheduler.h"
#include "src/datastores/fast_fair.h"
#include "src/persist/redo_log.h"
#include "src/workload/ycsb.h"

namespace {

using namespace pmemsim;

struct Result {
  double cycles_per_insert = 0;
  double mops = 0;
};

Result RunTree(Generation gen, BTreeUpdateMode mode, uint32_t threads, uint64_t total_keys) {
  auto system = MakeSystem(gen, /*optane_dimm_count=*/1);
  ThreadContext& init_ctx = system->CreateThread();
  FastFairTree tree(system.get(), init_ctx, MemoryKind::kOptane);

  const std::vector<uint64_t> keys = MakeLoadKeys(total_keys, /*seed=*/0xB7EE);
  const std::vector<std::vector<uint64_t>> shards = ShardKeys(keys, threads);

  std::vector<ThreadContext*> ctxs;
  std::vector<std::unique_ptr<RedoLog>> logs;
  for (uint32_t t = 0; t < threads; ++t) {
    ctxs.push_back(&system->CreateThread());
    logs.push_back(std::make_unique<RedoLog>(
        system.get(), system->AllocatePm(KiB(16), kCacheLineSize)));
  }

  Cycles start_max = 0;
  for (ThreadContext* c : ctxs) {
    start_max = std::max(start_max, c->clock());
  }

  std::vector<size_t> cursors(threads, 0);
  std::vector<SimJob> jobs;
  for (uint32_t t = 0; t < threads; ++t) {
    jobs.push_back({ctxs[t], [&, t]() {
                      if (cursors[t] >= shards[t].size()) {
                        return StepResult::kDone;
                      }
                      const uint64_t key = shards[t][cursors[t]++];
                      tree.Insert(*ctxs[t], key, key + 1, mode, logs[t].get());
                      return StepResult::kProgress;
                    }});
  }
  Scheduler::Run(jobs);

  Cycles worker_cycles = 0;
  Cycles end_max = 0;
  for (ThreadContext* c : ctxs) {
    worker_cycles += c->clock();
    end_max = std::max(end_max, c->clock());
  }
  const double ghz = gen == Generation::kG1 ? 2.1 : 3.0;
  return {static_cast<double>(worker_cycles) / static_cast<double>(total_keys),
          static_cast<double>(total_keys) * ghz * 1e3 / static_cast<double>(end_max - start_max)};
}

}  // namespace

int main(int argc, char** argv) {
  pmemsim_bench::Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::printf("usage: fig12_btree [--gen=g1|g2|both] [--keys=200000] [--max_threads=9]\n%s",
                pmemsim_bench::kTelemetryFlagsHelp);
    return 0;
  }
  const std::string gen_flag = flags.Get("gen", "both");
  const uint64_t keys = flags.GetU64("keys", 120000);
  const uint32_t max_threads = static_cast<uint32_t>(flags.GetU64("max_threads", 9));
  pmemsim_bench::BenchReport report(flags, "fig12_btree");
  pmemsim_bench::SweepRunner runner(flags);
  flags.RejectUnknown();

  pmemsim_bench::PrintHeader("Figure 12",
                             "FAST&FAIR inserts: in-place vs out-of-place redo logging");
  std::printf("gen,mode,threads,cycles_per_insert,mops\n");
  for (Generation gen : {Generation::kG1, Generation::kG2}) {
    if ((gen == Generation::kG1 && gen_flag == "g2") ||
        (gen == Generation::kG2 && gen_flag == "g1")) {
      continue;
    }
    for (const BTreeUpdateMode mode : {BTreeUpdateMode::kInPlace, BTreeUpdateMode::kRedoLog}) {
      for (uint32_t t = 1; t <= max_threads; t += 2) {
        const char* gen_name = gen == Generation::kG1 ? "G1" : "G2";
        const char* mode_name = mode == BTreeUpdateMode::kInPlace ? "in-place" : "out-of-place";
        const std::string label =
            std::string(gen_name) + "/" + mode_name + "/t" + std::to_string(t);
        runner.Add(label, [=](pmemsim_bench::SweepPoint& point) {
          const Result r = RunTree(gen, mode, t, keys);
          point.Printf("%s,%s,%u,%.0f,%.3f\n", gen_name, mode_name, t, r.cycles_per_insert,
                       r.mops);
          point.AddRow()
              .Set("gen", gen_name)
              .Set("mode", mode_name)
              .Set("threads", t)
              .Set("cycles_per_insert", r.cycles_per_insert)
              .Set("mops", r.mops);
        });
      }
    }
  }
  return runner.Finish(report);
}
